package repro_test

import (
	"fmt"

	"repro"
)

// A metric is any margin function over independent standard Normal
// variation coordinates; this one fails when x₀ + x₁ exceeds 6 (exact
// failure probability Φ(−6/√2) ≈ 1.1e-5).
func ExampleEstimate() {
	metric := repro.MetricFunc{M: 2, F: func(x []float64) float64 {
		return 6 - x[0] - x[1]
	}}
	res, err := repro.Estimate(metric, repro.Options{
		Method: repro.GS,
		K:      500,
		N:      20000,
		Seed:   1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("order of magnitude: 1e%d\n", int(orderOf(res.Pf)))
	fmt.Printf("stages recorded: %v\n", res.Stage1Sims > 0 && res.Stage2Sims == 20000)
	// Output:
	// order of magnitude: 1e-5
	// stages recorded: true
}

// Target mode stops the second stage as soon as the paper's accuracy
// criterion (99% CI relative error) is met.
func ExampleEstimate_target() {
	metric := repro.MetricFunc{M: 2, F: func(x []float64) float64 {
		return 5 - x[0]
	}}
	res, err := repro.Estimate(metric, repro.Options{
		Method: repro.GC,
		Target: 0.10,
		N:      200000, // cap
		Seed:   2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("reached 10%% target: %v\n", res.RelErr99 <= 0.10)
	fmt.Printf("stopped before the cap: %v\n", res.N < 200000)
	// Output:
	// reached 10% target: true
	// stopped before the cap: true
}

func ExampleParseMethod() {
	m, err := repro.ParseMethod("g-s")
	fmt.Println(m, err)
	_, err = repro.ParseMethod("bogus")
	fmt.Println(err != nil)
	// Output:
	// g-s <nil>
	// true
}

func orderOf(v float64) float64 {
	e := 0.0
	for v < 1 {
		v *= 10
		e--
	}
	return e
}
