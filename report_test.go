package repro

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/surrogate"
)

func TestRunReportAttached(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6.5}
	res, err := Estimate(lin, Options{Method: GS, K: 300, N: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("successful estimate must carry a run-report")
	}
	if rep.Method != "g-s" || rep.Seed != 11 {
		t.Fatalf("report identity: method %q seed %d", rep.Method, rep.Seed)
	}
	if rep.Pf != res.Pf || rep.TotalSims != res.TotalSims {
		t.Fatal("report must restate the result's estimate and cost")
	}
	if rep.RelErr99 == nil {
		t.Fatal("converged run must report a finite relerr99")
	}
	if rep.RHat == nil || *rep.RHat <= 0 {
		t.Fatalf("Gibbs run must report a split R-hat, got %v (note %q)", rep.RHat, rep.RHatNote)
	}
	if rep.ChainESS == nil || *rep.ChainESS <= 0 {
		t.Fatal("Gibbs run must report a chain ESS")
	}
	if rep.WeightESS <= 0 {
		t.Fatal("IS run must report a positive weight ESS")
	}
	if rep.MaxWeightFrac <= 0 || rep.MaxWeightFrac > 1 {
		t.Fatalf("max weight fraction out of range: %v", rep.MaxWeightFrac)
	}
	if rep.SimsTo90 <= 0 {
		t.Fatal("converged run must project a sims-to-90-percent-confidence figure")
	}
	if rep.TotalSeconds <= 0 || rep.Stage1Seconds <= 0 || rep.Stage2Seconds <= 0 {
		t.Fatalf("wall-time split missing: total %v stage1 %v stage2 %v",
			rep.TotalSeconds, rep.Stage1Seconds, rep.Stage2Seconds)
	}
}

func TestRunReportNoChainForMC(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 2}
	res, err := Estimate(lin, Options{Method: MC, N: 5000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("MC estimate must carry a run-report")
	}
	if rep.RHat != nil || rep.ChainESS != nil {
		t.Fatal("MC has no Gibbs chain: R-hat and chain ESS must be absent")
	}
}

func TestRunReportNoFailures(t *testing.T) {
	// A wall at 40σ: plain MC sees no failures — the report must say so
	// without non-finite JSON values.
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 40}
	res, err := Estimate(lin, Options{Method: MC, N: 2000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("report missing")
	}
	if rep.RelErr99 != nil {
		t.Fatal("no-failure run has unbounded relerr99: field must be null")
	}
	if rep.SimsTo90 != 0 {
		t.Fatal("no estimate to project from: SimsTo90 must be 0")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "no failures") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a no-failures warning, got %v", rep.Warnings)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("report must always be JSON-serializable: %v", err)
	}
}

// The deterministic part of the report must be byte-identical across
// worker counts for a fixed seed — the property the bench harness and
// the job service lean on.
func TestRunReportDeterministicAcrossWorkers(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6.5}
	render := func(workers int) string {
		t.Helper()
		res, err := Estimate(lin, Options{Method: GS, K: 200, N: 3000, Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Report.Deterministic().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one, four, seven := render(1), render(4), render(7)
	if one != four || one != seven {
		t.Fatalf("report differs across worker counts:\n1: %s\n4: %s\n7: %s", one, four, seven)
	}
	if strings.Contains(one, `"stage1_seconds": 0.0`) {
		t.Fatalf("deterministic render should zero timings cleanly: %s", one)
	}
}

func TestRunReportWriteText(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6.5}
	res, err := Estimate(lin, Options{Method: GC, K: 200, N: 3000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Report.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"run report (g-c, seed 31)", "split R-hat", "weights", "cost", "stage1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestHillTailIndex(t *testing.T) {
	if _, ok := hillTailIndex([]float64{3, 2, 1}); ok {
		t.Fatal("fewer than five weights must not estimate a tail index")
	}
	if _, ok := hillTailIndex([]float64{2, 2, 2, 2, 2}); ok {
		t.Fatal("equal weights have no measurable tail")
	}
	// Exact Pareto order statistics w_i = (k/i)^(1/α) with w_k = 1: the
	// Hill estimator recovers α exactly because
	// Σ ln(w_i/w_k) = (1/α)·Σ ln(k/i).
	const alpha = 1.5
	k := 10
	top := make([]float64, k)
	sum := 0.0
	for i := range top {
		top[i] = math.Pow(float64(k)/float64(i+1), 1/alpha)
		if i < k-1 {
			sum += math.Log(float64(k) / float64(i+1))
		}
	}
	got, ok := hillTailIndex(top)
	if !ok {
		t.Fatal("tail index expected")
	}
	want := float64(k-1) / (sum / alpha)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("hill = %v, want %v", got, want)
	}
}

func TestSimsTo90Projection(t *testing.T) {
	// Already past the bar: z90·stderr < 0.1·pf ⇒ projection < N.
	res := &Result{Pf: 1e-6, StdErr: 1e-8, N: 10000, Stage1Sims: 500}
	got := simsTo90(res)
	ratio := z90 * 1e-8 / (0.1 * 1e-6)
	want := int64(500) + int64(math.Ceil(10000*ratio*ratio))
	if got != want {
		t.Fatalf("simsTo90 = %d, want %d", got, want)
	}
	if simsTo90(&Result{Pf: 0, StdErr: 1, N: 100}) != 0 {
		t.Fatal("zero estimate must project 0")
	}
	if simsTo90(&Result{Pf: 1e-6, StdErr: math.Inf(1), N: 100}) != 0 {
		t.Fatal("infinite stderr must project 0")
	}
}
