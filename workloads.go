package repro

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/sram"
)

// ErrUnknownWorkload is reported (wrapped) by WorkloadByName when the
// name matches no registered workload; test with errors.Is.
var ErrUnknownWorkload = errors.New("repro: unknown workload")

// Workload is one registered metric constructor: the name used on CLI
// flags and in the estimation-service API, a one-line description, the
// dimensionality of the variation space, and the constructor itself.
// Metrics are built fresh per call — a Workload carries no solver state.
type Workload struct {
	// Name is the registry key ("rnm", "readcurrent", ...).
	Name string
	// Description is a one-line human summary.
	Description string
	// Dim is the dimensionality of the variation space.
	Dim int
	// New constructs a fresh Metric for one estimation run.
	New func() Metric
}

// workloadRegistry lists the built-in SRAM workloads in presentation
// order. The CLIs, the experiments driver and the estimation service all
// resolve workload names here, so the set has a single home.
var workloadRegistry = []Workload{
	{
		Name:        "rnm",
		Description: "read noise margin of the stable 6-T cell (§V-A)",
		Dim:         6,
		New:         func() Metric { return sram.RNMWorkload() },
	},
	{
		Name:        "wnm",
		Description: "write margin of the stable 6-T cell (§V-A)",
		Dim:         6,
		New:         func() Metric { return sram.WNMWorkload() },
	},
	{
		Name:        "readcurrent",
		Description: "single-path read current of the fast-read cell, non-convex banana region (§V-B)",
		Dim:         2,
		New:         func() Metric { return sram.ReadCurrentWorkload() },
	},
	{
		Name:        "dualread",
		Description: "dual-sided read current min(I_read0, I_read1), two-lobe region (§V-B headline)",
		Dim:         2,
		New:         func() Metric { return sram.DualReadCurrentWorkload() },
	},
	{
		Name:        "access",
		Description: "transient bitline-discharge access time (dynamic extension)",
		Dim:         2,
		New:         func() Metric { return sram.AccessTimeWorkload() },
	},
}

// Workloads lists the built-in workloads (a copy, in presentation
// order). The registry is the single source of workload names for the
// CLIs and the estimation service's GET /v1/workloads endpoint.
func Workloads() []Workload {
	return append([]Workload(nil), workloadRegistry...)
}

// WorkloadNames lists the registered names in presentation order.
func WorkloadNames() []string {
	names := make([]string, len(workloadRegistry))
	for i, w := range workloadRegistry {
		names[i] = w.Name
	}
	return names
}

// WorkloadByName constructs the named workload's metric. The error wraps
// ErrUnknownWorkload.
func WorkloadByName(name string) (Metric, error) {
	for _, w := range workloadRegistry {
		if w.Name == name {
			return w.New(), nil
		}
	}
	return nil, fmt.Errorf("%w %q (want %s)", ErrUnknownWorkload, name, strings.Join(WorkloadNames(), ", "))
}

// RNMWorkload returns the paper's §V-A read-noise-margin metric: a 6-D
// variation space over the transistor threshold mismatches of the
// simulated 90 nm-class 6-T cell.
func RNMWorkload() Metric { return sram.RNMWorkload() }

// WNMWorkload returns the §V-A write-margin metric (6-D).
func WNMWorkload() Metric { return sram.WNMWorkload() }

// ReadCurrentWorkload returns the single-path read-current metric: a 2-D
// variation space {ΔVth1, ΔVth3} on the read-marginal cell variant, whose
// failure region is a mildly non-convex banana.
func ReadCurrentWorkload() Metric { return sram.ReadCurrentWorkload() }

// DualReadCurrentWorkload returns the headline §V-B metric: the
// dual-sided read current min(I_read0, I_read1) over the access pair
// {ΔVth3, ΔVth4}. Its strongly non-convex two-lobe failure region traps
// mean-shift importance sampling and Cartesian Gibbs sampling while
// spherical Gibbs sampling stays correct.
func DualReadCurrentWorkload() Metric { return sram.DualReadCurrentWorkload() }

// AccessTimeWorkload returns the dynamic (transient-simulation) metric:
// bitline-discharge access time over the read-path pair {ΔVth1, ΔVth3},
// failing when the cell is slower than the calibrated timing budget.
func AccessTimeWorkload() Metric { return sram.AccessTimeWorkload() }
