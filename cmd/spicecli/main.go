// Command spicecli runs the circuit-simulation substrate on a
// SPICE-flavored netlist file: DC operating points, DC sweeps and
// transient analyses.
//
//	spicecli -op circuit.sp
//	spicecli -sweep vin:0:1:51 circuit.sp
//	spicecli -tran 1n:10p -probe out circuit.sp
//
// See internal/spice.ParseNetlist for the accepted netlist syntax.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"repro/internal/spice"
	"repro/internal/telemetry"
)

func main() {
	var (
		doOP     = flag.Bool("op", false, "print the DC operating point")
		sweep    = flag.String("sweep", "", "DC sweep: SOURCE:START:STOP:STEPS")
		tran     = flag.String("tran", "", "transient: STOP:STEP (seconds, suffixes ok)")
		probe    = flag.String("probe", "", "comma-separated nodes to print (default: all)")
		teleOut  = flag.String("telemetry", "", "write structured solver events (JSONL) to this file")
		traceOut = flag.String("trace", "", "write a span trace to this file (Chrome trace JSON, or JSONL with a .jsonl suffix)")
		stats    = flag.Bool("stats", false, "print solver telemetry (iterations, strategies, latencies) after the run")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spicecli [-op] [-sweep src:a:b:n] [-tran stop:step] [-probe nodes] netlist.sp")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	ckt, err := spice.ParseNetlist(f)
	if err != nil {
		fatal(err)
	}
	nodes := probeList(*probe, ckt)

	cli, err := telemetry.StartCLI(*teleOut, *traceOut, "", *stats)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C flushes telemetry and exits instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
		cli.Close()
		fmt.Fprintln(os.Stderr, "spicecli: interrupted")
		os.Exit(130)
	}()
	dc := &spice.DCOptions{Telemetry: cli.Registry}

	ran := false
	if *doOP || (*sweep == "" && *tran == "") {
		ran = true
		op, err := ckt.SolveDC(dc)
		if err != nil {
			fatal(err)
		}
		fmt.Println("DC operating point:")
		for _, n := range nodes {
			fmt.Printf("  V(%s) = %.6g V\n", n, op.Voltage(n))
		}
		fmt.Printf("  converged via %s in %d Newton iterations (residual %.3g)\n",
			op.Strategy(), op.NewtonIterations(), op.Residual())
	}
	if *sweep != "" {
		ran = true
		parts := strings.Split(*sweep, ":")
		if len(parts) != 4 {
			fatal(fmt.Errorf("bad -sweep %q", *sweep))
		}
		start, err1 := spice.ParseValue(parts[1])
		stop, err2 := spice.ParseValue(parts[2])
		steps, err3 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || err3 != nil {
			fatal(fmt.Errorf("bad -sweep %q", *sweep))
		}
		fmt.Printf("%12s", parts[0])
		for _, n := range nodes {
			fmt.Printf(" %12s", "V("+n+")")
		}
		fmt.Println()
		err = ckt.Sweep(parts[0], start, stop, steps, dc, func(v float64, op *spice.OperatingPoint) bool {
			fmt.Printf("%12.5g", v)
			for _, n := range nodes {
				fmt.Printf(" %12.5g", op.Voltage(n))
			}
			fmt.Println()
			return true
		})
		if err != nil {
			fatal(err)
		}
	}
	if *tran != "" {
		ran = true
		parts := strings.Split(*tran, ":")
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -tran %q", *tran))
		}
		stop, err1 := spice.ParseValue(parts[0])
		step, err2 := spice.ParseValue(parts[1])
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -tran %q", *tran))
		}
		fmt.Printf("%12s", "t")
		for _, n := range nodes {
			fmt.Printf(" %12s", "V("+n+")")
		}
		fmt.Println()
		err = ckt.SolveTran(spice.TranOptions{Stop: stop, Step: step, Method: spice.Trapezoidal, DC: dc},
			func(p spice.TranPoint) bool {
				fmt.Printf("%12.5g", p.T)
				for _, n := range nodes {
					fmt.Printf(" %12.5g", p.OP.Voltage(n))
				}
				fmt.Println()
				return true
			})
		if err != nil {
			fatal(err)
		}
	}
	_ = ran
	if cli.Registry != nil {
		fmt.Println()
		cli.Registry.WriteTable(os.Stdout)
	}
	if err := cli.Close(); err != nil {
		fatal(err)
	}
}

func probeList(probe string, ckt *spice.Circuit) []string {
	if probe != "" {
		return strings.Split(probe, ",")
	}
	nodes := ckt.NodeNames()
	sort.Strings(nodes)
	return nodes
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spicecli:", err)
	os.Exit(1)
}
