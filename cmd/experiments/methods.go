package main

import (
	"context"
	"encoding/csv"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/baselines"
	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/stat"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// methodNames is the paper's comparison order.
var methodNames = []string{"MIS", "MNIS", "G-C", "G-S"}

// budgets carries the paper's stage sizing (§V: MIS 5000 / MNIS 1000
// first-stage simulations; G-C/G-S 5000 including the starting-point
// model).
type budgets struct {
	misStage1  int
	mnisTrainN int
	gibbsSims  int64
	stage2     int // fixed second-stage size (trace experiments)
	stage2Max  int // cap for until-target runs
	traceEvery int // second-stage snapshot stride
	gibbsKCap  int // upper bound on Gibbs sample count
	workers    int // evaluation-pool size (0 = all cores)
	tele       *telemetry.Registry
}

func defaultBudgets(c config) budgets {
	return budgets{
		misStage1:  c.scale(5000, 300),
		mnisTrainN: c.scale(900, 100),
		gibbsSims:  int64(c.scale(5000, 300)),
		stage2:     c.scale(20000, 1000),
		stage2Max:  c.scale(100000, 4000),
		traceEvery: c.scale(500, 100),
		gibbsKCap:  1 << 20,
		workers:    c.workers,
		tele:       c.tele,
	}
}

// methodRun is the uniform result row used by every experiment.
type methodRun struct {
	name       string
	pf         float64
	relErr     float64
	stage1     int64
	stage2     int64
	trace      []mc.TracePoint
	distortion *stat.MVNormal
	gibbs      [][]float64
	mix        *mixing // chain mixing quality (G-C/G-S only)
}

// mixing summarizes the quality of one Gibbs chain: effective sample
// size, worst per-coordinate integrated autocorrelation time, and the
// fraction of coordinate updates that actually resampled (drew from a
// failure interval).
type mixing struct {
	ess, tau, acceptance float64
}

// chainCounterValues snapshots the gibbs-scope interval-search counters;
// taking before/after deltas isolates one run on a shared registry.
func chainCounterValues(reg *telemetry.Registry) (updates, resampled int64) {
	s := reg.Scope(wire.ScopeGibbs)
	return s.Counter("updates_total").Value(), s.Counter("resampled_total").Value()
}

// newMixing derives the mixing row from the chain's counter deltas and
// sample stream.
func newMixing(reg *telemetry.Registry, updates0, resampled0 int64, samples [][]float64) *mixing {
	m := &mixing{}
	u1, r1 := chainCounterValues(reg)
	if du := u1 - updates0; du > 0 {
		m.acceptance = float64(r1-resampled0) / float64(du)
	}
	if ess, err := gibbs.EffectiveSampleSize(samples); err == nil {
		m.ess = ess
		m.tau = float64(len(samples)) / ess
	}
	return m
}

// runMethod executes one method with fixed second-stage size n.
func runMethod(ctx context.Context, name string, metric mc.Metric, b budgets, n int, traceEvery mc.TraceEvery, seed int64) (*methodRun, error) {
	counter := mc.NewCounter(metric)
	rng := rand.New(rand.NewSource(seed))
	out := &methodRun{name: name}
	switch name {
	case "MIS":
		r, err := baselines.MISContext(ctx, counter, baselines.MISOptions{
			Stage1: b.misStage1, N: n, TraceEvery: traceEvery, Workers: b.workers,
			Telemetry: b.tele,
		}, rng)
		if err != nil {
			return nil, err
		}
		out.pf, out.relErr = r.Pf, r.RelErr99
		out.stage1, out.stage2 = r.Stage1Sims, r.Stage2Sims
		out.trace, out.distortion = r.Trace, r.GNor
	case "MNIS":
		r, err := baselines.MNISContext(ctx, counter, baselines.MNISOptions{
			Start: &model.StartOptions{TrainN: b.mnisTrainN},
			N:     n, TraceEvery: traceEvery, Workers: b.workers,
			Telemetry: b.tele,
		}, rng)
		if err != nil {
			return nil, err
		}
		out.pf, out.relErr = r.Pf, r.RelErr99
		out.stage1, out.stage2 = r.Stage1Sims, r.Stage2Sims
		out.trace, out.distortion = r.Trace, r.GNor
	case "G-C", "G-S":
		coord := gibbs.Cartesian
		if name == "G-S" {
			coord = gibbs.Spherical
		}
		// Mixing diagnostics always run off a registry: the shared one
		// when telemetry is on, a private one otherwise (runs are
		// sequential, so counter deltas isolate this run either way).
		reg := b.tele
		if reg == nil {
			reg = telemetry.New()
		}
		u0, r0 := chainCounterValues(reg)
		r, err := gibbs.TwoStageContext(ctx, counter, gibbs.TwoStageOptions{
			Coord: coord, K: b.gibbsKCap, Stage1Budget: b.gibbsSims,
			N: n, TraceEvery: traceEvery, Workers: b.workers,
			Telemetry: reg,
		}, rng)
		if err != nil {
			return nil, err
		}
		out.pf, out.relErr = r.Pf, r.RelErr99
		out.stage1, out.stage2 = r.Stage1Sims, r.Stage2Sims
		out.trace, out.distortion = r.Trace, r.GNor
		out.gibbs = r.Samples
		out.mix = newMixing(reg, u0, r0, r.Samples)
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
	return out, nil
}

// runMethodUntil executes one method with a convergence-target second
// stage (Table I style).
func runMethodUntil(ctx context.Context, name string, metric mc.Metric, b budgets, target float64, seed int64) (*methodRun, error) {
	counter := mc.NewCounter(metric)
	rng := rand.New(rand.NewSource(seed))
	out := &methodRun{name: name}
	const minN = 500
	switch name {
	case "MIS":
		r, err := baselines.MISUntilContext(ctx, counter, baselines.MISOptions{Stage1: b.misStage1, Workers: b.workers, Telemetry: b.tele},
			target, minN, b.stage2Max, rng)
		if err != nil {
			return nil, err
		}
		out.pf, out.relErr = r.Pf, r.RelErr99
		out.stage1, out.stage2 = r.Stage1Sims, r.Stage2Sims
		out.distortion = r.GNor
	case "MNIS":
		r, err := baselines.MNISUntilContext(ctx, counter, baselines.MNISOptions{
			Start: &model.StartOptions{TrainN: b.mnisTrainN}, Workers: b.workers,
			Telemetry: b.tele,
		}, target, minN, b.stage2Max, rng)
		if err != nil {
			return nil, err
		}
		out.pf, out.relErr = r.Pf, r.RelErr99
		out.stage1, out.stage2 = r.Stage1Sims, r.Stage2Sims
		out.distortion = r.GNor
	case "G-C", "G-S":
		coord := gibbs.Cartesian
		if name == "G-S" {
			coord = gibbs.Spherical
		}
		reg := b.tele
		if reg == nil {
			reg = telemetry.New()
		}
		u0, r0 := chainCounterValues(reg)
		r, err := gibbs.TwoStageUntilContext(ctx, counter, gibbs.TwoStageOptions{
			Coord: coord, K: b.gibbsKCap, Stage1Budget: b.gibbsSims, Workers: b.workers,
			Telemetry: reg,
		}, target, minN, b.stage2Max, rng)
		if err != nil {
			return nil, err
		}
		out.pf, out.relErr = r.Pf, r.RelErr99
		out.stage1, out.stage2 = r.Stage1Sims, r.Stage2Sims
		out.distortion = r.GNor
		out.gibbs = r.Samples
		out.mix = newMixing(reg, u0, r0, r.Samples)
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
	return out, nil
}

// writeCSV writes rows under the output directory.
func writeCSV(cfg config, name string, header []string, rows [][]string) error {
	path := filepath.Join(cfg.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
	return nil
}

func f64(v float64) string { return fmt.Sprintf("%.6g", v) }
