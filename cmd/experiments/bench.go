package main

// The bench mode is the perf-regression harness: it runs a fixed suite
// of canonical workload × method configurations, measures throughput and
// solve-latency quantiles from each run's private telemetry registry,
// and writes a schema-versioned BENCH_<label>.json next to the committed
// baseline (BENCH_seed.json). scripts/bench.sh wraps it and validates
// the schema; CI runs the quick variant on every push.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro"
	"repro/internal/mc"
	"repro/internal/telemetry"
)

// benchSchema versions the BENCH file format; bump it when a field
// changes meaning.
const benchSchema = "repro-bench/v1"

// goldenReadCurrentPf is the frozen high-accuracy reference for the
// read-current workload: a G-S run at 10x the bench budget (K=3000,
// N=200000, seed 9, 99% relative error 3.7%), validated against 20M
// samples of brute-force Monte Carlo (45 failures, Pf 2.250e-6, 99% CI
// [1.39e-6, 3.11e-6], which covers it).
const goldenReadCurrentPf = 2.737839e-6

// goldenPf maps workloads to their frozen references, used for the
// rel_error_vs_golden column. Workloads without an entry report null.
var goldenPf = map[string]float64{
	"readcurrent": goldenReadCurrentPf,
}

// benchSpec is one suite entry.
type benchSpec struct {
	workload string
	method   repro.Method
	k, n     int
	fullOnly bool // skipped in -quick mode (too slow for CI smoke)
}

// benchSuite is the canonical perf suite: the 2-D read-current workload
// under the paper's three IS methods, plus the 6-D read-noise-margin
// workload under G-S as the high-dimensional data point.
var benchSuite = []benchSpec{
	{workload: "readcurrent", method: repro.GS, k: 1000, n: 20000},
	{workload: "readcurrent", method: repro.GC, k: 1000, n: 20000},
	{workload: "readcurrent", method: repro.MNIS, k: 1000, n: 20000},
	{workload: "rnm", method: repro.GS, k: 600, n: 4000, fullOnly: true},
}

// kernelSuite measures the batched SPICE kernel itself: raw ValueBatch
// throughput on standard-Normal samples through the mc dispatch layer,
// with no estimator logic (training, chains, weighting) in the way.
// These are the rows the ≥5×/≥10× speedup acceptance gates read.
var kernelSuite = []struct {
	workload string
	n        int
	fullOnly bool
}{
	{workload: "readcurrent", n: 100000},
	{workload: "rnm", n: 4000, fullOnly: true},
}

// benchRun is one measured configuration in the BENCH file.
type benchRun struct {
	Workload string `json:"workload"`
	Method   string `json:"method"`
	K        int    `json:"k"`
	N        int    `json:"n"`

	Pf       float64  `json:"pf"`
	RelErr99 *float64 `json:"relerr99"`

	GoldenPf         *float64 `json:"golden_pf"`
	RelErrorVsGolden *float64 `json:"rel_error_vs_golden"`

	Sims          int64   `json:"sims"`
	WallSeconds   float64 `json:"wall_seconds"`
	SimsPerSecond float64 `json:"sims_per_second"`

	// Solve-latency quantiles, reconstructed from the spice
	// solve_seconds histogram of the run's private registry.
	SolveP50Seconds float64 `json:"solve_p50_seconds"`
	SolveP99Seconds float64 `json:"solve_p99_seconds"`

	// Statistical health, restated from the run-report.
	RHat      *float64 `json:"rhat"`
	WeightESS float64  `json:"weight_ess"`
	SimsTo90  int64    `json:"sims_to_90,omitempty"`

	// Batch-kernel health. KernelBatches counts ValueBatch dispatches
	// (mc kernel_batches_total); the rates split warm-start attempts
	// into hits and cold fallbacks (spice warm_hit_total /
	// warm_fallback_total over their sum; both 0 when the workload
	// never offers an anchor).
	KernelBatches    int64   `json:"kernel_batches"`
	WarmHitRate      float64 `json:"warm_hit_rate"`
	WarmFallbackRate float64 `json:"warm_fallback_rate"`
}

// benchFile is the BENCH_<label>.json document.
type benchFile struct {
	Schema    string     `json:"schema"`
	Label     string     `json:"label"`
	GoVersion string     `json:"go_version"`
	NumCPU    int        `json:"num_cpu"`
	Quick     bool       `json:"quick"`
	Seed      int64      `json:"seed"`
	Workers   int        `json:"workers"`
	Runs      []benchRun `json:"runs"`
}

// runBench executes the suite and writes BENCH_<label>.json to the
// bench output directory.
func runBench(ctx context.Context, cfg config) error {
	doc := benchFile{
		Schema:    benchSchema,
		Label:     cfg.label,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     cfg.quick,
		Seed:      cfg.seed,
		Workers:   cfg.workers,
	}
	fmt.Printf("%-14s %-6s %10s %10s %12s %12s %12s\n",
		"workload", "method", "pf", "sims", "sims/sec", "p50 solve", "p99 solve")
	for _, spec := range benchSuite {
		if cfg.quick && spec.fullOnly {
			fmt.Printf("%-14s %-6s  (skipped in -quick mode)\n", spec.workload, spec.method)
			continue
		}
		run, err := benchOne(ctx, cfg, spec)
		if err != nil {
			return fmt.Errorf("bench %s/%s: %w", spec.workload, spec.method, err)
		}
		doc.Runs = append(doc.Runs, *run)
		fmt.Printf("%-14s %-6s %10.3e %10d %12.0f %12.3g %12.3g\n",
			run.Workload, run.Method, run.Pf, run.Sims, run.SimsPerSecond,
			run.SolveP50Seconds, run.SolveP99Seconds)
	}
	for _, spec := range kernelSuite {
		if cfg.quick && spec.fullOnly {
			fmt.Printf("%-14s %-6s  (skipped in -quick mode)\n", spec.workload, "batch-kernel")
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		run, err := benchKernelOne(cfg, spec.workload, spec.n)
		if err != nil {
			return fmt.Errorf("bench %s/batch-kernel: %w", spec.workload, err)
		}
		doc.Runs = append(doc.Runs, *run)
		fmt.Printf("%-14s %-6s %10.3e %10d %12.0f %12.3g %12.3g\n",
			run.Workload, run.Method, run.Pf, run.Sims, run.SimsPerSecond,
			run.SolveP50Seconds, run.SolveP99Seconds)
	}

	path := filepath.Join(cfg.benchOut, "BENCH_"+cfg.label+".json")
	if err := os.MkdirAll(cfg.benchOut, 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d runs)\n", path, len(doc.Runs))
	return nil
}

// benchOne measures a single configuration on a fresh private registry
// so latency quantiles are per-run, not cumulative.
func benchOne(ctx context.Context, cfg config, spec benchSpec) (*benchRun, error) {
	metric, err := repro.WorkloadByName(spec.workload)
	if err != nil {
		return nil, err
	}
	reg := telemetry.New()
	k := cfg.scale(spec.k, 200)
	n := cfg.scale(spec.n, 2000)
	t0 := time.Now()
	res, err := repro.EstimateContext(ctx, metric, repro.Options{
		Method: spec.method, K: k, N: n,
		Seed: cfg.seed, Workers: cfg.workers, Telemetry: reg,
	})
	if err != nil {
		return nil, err
	}
	wall := time.Since(t0).Seconds()

	run := &benchRun{
		Workload: spec.workload, Method: spec.method.String(), K: k, N: n,
		Pf:          res.Pf,
		Sims:        res.TotalSims,
		WallSeconds: wall,
	}
	if wall > 0 {
		run.SimsPerSecond = float64(res.TotalSims) / wall
	}
	harvestKernelTelemetry(run, reg)
	if rep := res.Report; rep != nil {
		run.RelErr99 = rep.RelErr99
		run.RHat = rep.RHat
		run.WeightESS = rep.WeightESS
		run.SimsTo90 = rep.SimsTo90
	}
	if golden, ok := goldenPf[spec.workload]; ok && golden > 0 {
		g := golden
		rel := (res.Pf - g) / g
		run.GoldenPf, run.RelErrorVsGolden = &g, &rel
	}
	return run, nil
}

// benchKernelOne measures raw batched-kernel throughput for a workload:
// n index-seeded standard-Normal samples dispatched through the mc
// batch evaluator, exactly as an estimator chunk would be, but with no
// estimator on top. Pf restates the observed failure fraction (usually
// 0 at these budgets — the workloads live at Pf ≈ 1e-6).
func benchKernelOne(cfg config, workload string, n int) (*benchRun, error) {
	metric, err := repro.WorkloadByName(workload)
	if err != nil {
		return nil, err
	}
	reg := telemetry.New()
	if tm, ok := metric.(interface{ SetTelemetry(*telemetry.Registry) }); ok {
		tm.SetTelemetry(reg)
	}
	ev := mc.NewEvaluator(metric, cfg.workers).WithTelemetry(reg)
	dim := metric.Dim()
	draw := func(rng *rand.Rand, _ int) []float64 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		return x
	}
	if cfg.quick {
		n = max(n/10, 1000)
	}
	t0 := time.Now()
	evals := mc.MapBatch(ev, cfg.seed, 0, n,
		draw, func(_ int, _ []float64, v float64) bool { return v < 0 })
	wall := time.Since(t0).Seconds()
	failures := 0
	for _, fail := range evals {
		if fail {
			failures++
		}
	}
	run := &benchRun{
		Workload: workload, Method: "batch-kernel", N: n,
		Pf:          float64(failures) / float64(n),
		Sims:        int64(n),
		WallSeconds: wall,
	}
	if wall > 0 {
		run.SimsPerSecond = float64(n) / wall
	}
	harvestKernelTelemetry(run, reg)
	return run, nil
}

// harvestKernelTelemetry fills the solve-latency quantiles and
// batch-kernel health fields from a run's private registry.
func harvestKernelTelemetry(run *benchRun, reg *telemetry.Registry) {
	var warmHits, warmFalls float64
	for _, m := range reg.Snapshot() {
		switch {
		case m.Scope == "spice" && m.Name == "solve_seconds" && m.Count > 0:
			run.SolveP50Seconds, run.SolveP99Seconds = m.P50, m.P99
		case m.Scope == "spice" && m.Name == "warm_hit_total":
			warmHits = m.Value
		case m.Scope == "spice" && m.Name == "warm_fallback_total":
			warmFalls = m.Value
		case m.Scope == "mc" && m.Name == "kernel_batches_total":
			run.KernelBatches = int64(m.Value)
		}
	}
	if attempts := warmHits + warmFalls; attempts > 0 {
		run.WarmHitRate = warmHits / attempts
		run.WarmFallbackRate = warmFalls / attempts
	}
}
