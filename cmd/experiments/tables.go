package main

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mc"
	"repro/internal/sram"
)

// runTable1 regenerates the paper's Table I: the number of simulations
// each method needs in both stages to reach 5% relative error (99% CI) on
// the RNM and WNM workloads.
func runTable1(ctx context.Context, cfg config) error {
	b := defaultBudgets(cfg)
	target := 0.05
	if cfg.quick {
		target = 0.20
	}
	type row struct {
		stage1      int64
		second, tot map[string]int64
		mix         map[string]*mixing
	}
	rows := map[string]*row{}
	metrics := map[string]mc.Metric{
		"RNM": sram.RNMWorkload(),
		"WNM": sram.WNMWorkload(),
	}
	for _, name := range methodNames {
		rows[name] = &row{second: map[string]int64{}, tot: map[string]int64{}, mix: map[string]*mixing{}}
		for _, mname := range []string{"RNM", "WNM"} {
			r, err := runMethodUntil(ctx, name, metrics[mname], b, target, cfg.seed)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mname, err)
			}
			rows[name].stage1 = r.stage1
			rows[name].second[mname] = r.stage2
			rows[name].tot[mname] = r.stage1 + r.stage2
			rows[name].mix[mname] = r.mix
			fmt.Printf("  %-5s %-3s Pf=%.3g relerr=%.1f%% stage1=%d stage2=%d\n",
				name, mname, r.pf, 100*r.relErr, r.stage1, r.stage2)
		}
	}
	fmt.Printf("\nTable I: simulations to reach %.0f%% error (99%% CI)\n", 100*target)
	fmt.Printf("%-16s %12s %12s %12s %12s %12s\n",
		"", "First Stage", "2nd (RNM)", "2nd (WNM)", "Total (RNM)", "Total (WNM)")
	var csvRows [][]string
	for _, name := range methodNames {
		r := rows[name]
		fmt.Printf("%-16s %12d %12d %12d %12d %12d\n",
			label(name), r.stage1, r.second["RNM"], r.second["WNM"], r.tot["RNM"], r.tot["WNM"])
		csvRow := []string{
			name, fmt.Sprint(r.stage1),
			fmt.Sprint(r.second["RNM"]), fmt.Sprint(r.second["WNM"]),
			fmt.Sprint(r.tot["RNM"]), fmt.Sprint(r.tot["WNM"]),
		}
		for _, mname := range []string{"RNM", "WNM"} {
			if m := r.mix[mname]; m != nil {
				csvRow = append(csvRow, f64(m.ess), f64(m.tau), f64(m.acceptance))
			} else {
				csvRow = append(csvRow, "", "", "")
			}
		}
		csvRows = append(csvRows, csvRow)
	}

	// Stage-1 mixing quality of the proposed chains: effective sample
	// size, worst integrated autocorrelation time, and the fraction of
	// coordinate updates that resampled from a failure interval.
	fmt.Printf("\nchain mixing (stage 1):\n")
	fmt.Printf("%-16s %18s %18s %18s\n", "", "ESS (RNM/WNM)", "tau (RNM/WNM)", "accept (RNM/WNM)")
	for _, name := range methodNames {
		r := rows[name]
		mr, mw := r.mix["RNM"], r.mix["WNM"]
		if mr == nil || mw == nil {
			continue
		}
		fmt.Printf("%-16s %8.0f / %7.0f %8.1f / %7.1f %7.0f%% / %5.0f%%\n",
			label(name), mr.ess, mw.ess, mr.tau, mw.tau, 100*mr.acceptance, 100*mw.acceptance)
	}
	// Speedup band over the traditional methods (the paper's 1.4–4.9×).
	minTrad, maxRatio := math.Inf(1), 0.0
	for _, mname := range []string{"RNM", "WNM"} {
		trad := math.Min(float64(rows["MIS"].tot[mname]), float64(rows["MNIS"].tot[mname]))
		prop := math.Min(float64(rows["G-C"].tot[mname]), float64(rows["G-S"].tot[mname]))
		ratio := trad / prop
		if ratio < minTrad {
			minTrad = ratio
		}
		trad = math.Max(float64(rows["MIS"].tot[mname]), float64(rows["MNIS"].tot[mname]))
		prop = math.Min(float64(rows["G-C"].tot[mname]), float64(rows["G-S"].tot[mname]))
		if r := trad / prop; r > maxRatio {
			maxRatio = r
		}
	}
	fmt.Printf("\nspeedup of proposed over traditional: %.1f–%.1fx (paper: 1.4–4.9x)\n",
		minTrad, maxRatio)
	return writeCSV(cfg, "table1.csv",
		[]string{"method", "stage1", "stage2_rnm", "stage2_wnm", "total_rnm", "total_wnm",
			"ess_rnm", "tau_rnm", "accept_rnm", "ess_wnm", "tau_wnm", "accept_wnm"},
		csvRows)
}

// runTable2 regenerates the paper's Table II on the dual read-current
// workload: each method's estimate at fixed budgets, against a
// brute-force golden reference.
func runTable2(ctx context.Context, cfg config) error {
	b := defaultBudgets(cfg)
	n := c2(cfg.quick, 2000, 10000)
	fmt.Printf("Table II: dual read-current failure probability (Ith = %.2f µA)\n\n",
		sram.DualReadCurrentSpec*1e6)
	fmt.Printf("%-16s %12s %12s %14s %12s\n",
		"", "First Stage", "Second Stage", "Failure Rate", "Rel. Error")
	var csvRows [][]string
	for _, name := range methodNames {
		r, err := runMethod(ctx, name, sram.DualReadCurrentWorkload(), b, n, 0, cfg.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-16s %12d %12d %14.3g %11.1f%%\n",
			label(name), r.stage1, r.stage2, r.pf, 100*r.relErr)
		csvRows = append(csvRows, []string{name,
			fmt.Sprint(r.stage1), fmt.Sprint(r.stage2), f64(r.pf), f64(r.relErr)})
	}
	golden := cfg.golden
	if cfg.quick {
		golden = 500000
	}
	gr, err := mc.ParallelMCContext(ctx, sram.DualReadCurrentWorkload(), golden, cfg.seed, cfg.workers, cfg.tele)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %12d %12s %14.3g %11.1f%%   (%d failures)\n",
		"Brute-force MC", gr.N, "—", gr.Pf, 100*gr.RelErr99, gr.Failures)
	csvRows = append(csvRows, []string{"MC",
		fmt.Sprint(gr.N), "0", f64(gr.Pf), f64(gr.RelErr99)})
	fmt.Println("\nexpected shape (paper Table II): G-S ≈ brute force; MIS, MNIS and")
	fmt.Println("G-C underestimate or scatter — G-C confidently reports a single lobe.")
	return writeCSV(cfg, "table2.csv",
		[]string{"method", "stage1", "stage2", "pf", "relerr99"}, csvRows)
}

func label(name string) string {
	switch name {
	case "G-C", "G-S":
		return name + " (proposed)"
	default:
		return name
	}
}

func c2(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}
