package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/surrogate"
)

// runExtDimScaling quantifies the paper's §VI limitation: "the proposed
// Gibbs sampling technique can be computationally inefficient for
// high-dimensional problems … (e.g., M ≥ 30)". On a spherical-shell
// region with exact P_f held fixed across dimensions, it measures the
// G-S first-stage cost per Gibbs sample and the estimate quality at a
// fixed sample budget as M grows.
func runExtDimScaling(ctx context.Context, cfg config) error {
	k := c2(cfg.quick, 200, 800)
	n := c2(cfg.quick, 1000, 4000)
	fmt.Printf("G-S dimensionality scaling on shell regions with Pf ≈ 1e-6 (K=%d, N=%d):\n\n", k, n)
	fmt.Printf("%4s %10s %14s %14s %12s %14s\n",
		"M", "radius", "exact Pf", "estimate", "rel. error", "sims/sample")
	var rows [][]string
	for _, m := range []int{2, 6, 12, 24, 48} {
		// Radius such that Chi(M).SF(R) = 1e-6 keeps the problem equally
		// rare in every dimension.
		r := chiQuantileSF(m, 1e-6)
		shell := &surrogate.Shell{M: m, R: r}
		exact := shell.ExactPf()
		counter := mc.NewCounter(shell)
		rng := rand.New(rand.NewSource(cfg.seed))
		res, err := gibbs.TwoStageContext(ctx, counter, gibbs.TwoStageOptions{
			Coord: gibbs.Spherical, K: k, N: n, Workers: cfg.workers,
			// High-dimensional shells sit beyond the default 10σ
			// starting-point search radius.
			Start: &model.StartOptions{MaxRadius: r + 5},
		}, rng)
		if err != nil {
			return fmt.Errorf("M=%d: %w", m, err)
		}
		perSample := float64(res.Stage1Sims) / float64(len(res.Samples))
		fmt.Printf("%4d %10.3f %14.3g %14.3g %11.1f%% %14.1f\n",
			m, r, exact, res.Pf, 100*res.RelErr99, perSample)
		rows = append(rows, []string{
			fmt.Sprint(m), f64(r), f64(exact), f64(res.Pf), f64(res.RelErr99), f64(perSample),
		})
	}
	fmt.Println("\nexpected shape (paper §VI): cost per sample stays bounded (one")
	fmt.Println("coordinate at a time) but a full Gibbs sweep needs M+1 updates, so")
	fmt.Println("effective mixing — and with it estimate quality at fixed K — degrades")
	fmt.Println("as M grows.")
	return writeCSV(cfg, "ext_dimscaling.csv",
		[]string{"m", "radius", "exact_pf", "estimate", "relerr99", "sims_per_sample"}, rows)
}

// chiQuantileSF returns r with Chi(m).SF(r) = p via bisection on the
// survival function.
func chiQuantileSF(m int, p float64) float64 {
	lo, hi := 0.0, 60.0
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if sf := shellSF(m, mid); sf > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

func shellSF(m int, r float64) float64 {
	return (&surrogate.Shell{M: m, R: r}).ExactPf()
}
