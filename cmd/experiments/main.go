// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index):
//
//	experiments table1          Table I: #sims to reach 5% error (RNM, WNM)
//	experiments table2          Table II: read-current Pf per method + golden MC
//	experiments fig3            Fig. 3: conditional arc scatter (quadrant region)
//	experiments fig6            Fig. 6: estimate vs stage-2 sims (RNM, WNM)
//	experiments fig7            Fig. 7: 99% relative error vs stage-2 sims
//	experiments fig8to11        Figs. 8–11: stage-2 sample scatter per method
//	experiments fig12           Fig. 12: read-current estimate vs stage-2 sims
//	experiments fig13           Fig. 13: failure-region map + per-method samples
//	experiments fig14           Fig. 14: first three Gibbs samples, G-C vs G-S
//	experiments ext-mixture     extension: single Normal vs Gaussian-mixture fit
//	experiments ext-access      extension: transient access-time workload
//	experiments ext-baselines   extension: blockade + subset simulation
//	experiments ext-dimscaling  extension: §VI high-dimensional scaling study
//	experiments bench           perf-regression suite → BENCH_<label>.json
//	experiments all             everything above (except bench)
//
// Flags:
//
//	-seed N     RNG seed (default 1)
//	-quick      scale budgets down ~10× for a fast smoke run
//	-out DIR    write CSV series/scatter data under DIR (default "out")
//	-golden N   brute-force golden sample count for table2 (default 8.7e6)
//	-workers N  evaluation-pool workers, 0 = all cores (estimates are
//	            identical for every worker count)
//	-label S    label for the bench output file (default "local")
//	-bench-out DIR  directory for BENCH_<label>.json (default ".")
//
// Text tables go to stdout; figures are emitted as CSV files that plot
// directly (the repository is stdlib-only, so no plotting code).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/telemetry"
)

type config struct {
	seed     int64
	quick    bool
	outDir   string
	golden   int
	workers  int
	label    string
	benchOut string
	tele     *telemetry.Registry
}

func main() {
	cfg := config{}
	var (
		teleOut   string
		traceOut  string
		debugAddr string
		stats     bool
	)
	flag.Int64Var(&cfg.seed, "seed", 1, "RNG seed")
	flag.BoolVar(&cfg.quick, "quick", false, "scale budgets down for a fast smoke run")
	flag.StringVar(&cfg.outDir, "out", "out", "directory for CSV outputs")
	flag.IntVar(&cfg.golden, "golden", 8_700_000, "brute-force golden samples for table2")
	flag.IntVar(&cfg.workers, "workers", 0, "evaluation-pool workers for every sampling stage (0 = all cores)")
	flag.StringVar(&cfg.label, "label", "local", "label for the bench output file (bench mode)")
	flag.StringVar(&cfg.benchOut, "bench-out", ".", "directory for BENCH_<label>.json (bench mode)")
	flag.StringVar(&teleOut, "telemetry", "", "write structured run events (JSONL) to this file")
	flag.StringVar(&traceOut, "trace", "", "write a span trace to this file (Chrome trace JSON, or JSONL with a .jsonl suffix)")
	flag.StringVar(&debugAddr, "debug-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address while running")
	flag.BoolVar(&stats, "stats", false, "print the run-telemetry metric table at the end")
	flag.Parse()

	cli, err := telemetry.StartCLI(teleOut, traceOut, debugAddr, stats)
	if err != nil {
		fatal(err)
	}
	cfg.tele = cli.Registry

	if flag.NArg() != 1 {
		usage()
	}
	// Ctrl-C cancels the current experiment at the next evaluation
	// chunk; a second ctrl-C kills the process outright.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	runners := map[string]func(context.Context, config) error{
		"table1":         runTable1,
		"table2":         runTable2,
		"fig3":           runFig3,
		"fig6":           runFig6,
		"fig7":           runFig7,
		"fig8to11":       runFig8to11,
		"fig12":          runFig12,
		"fig13":          runFig13,
		"fig14":          runFig14,
		"ext-mixture":    runExtMixture,
		"ext-access":     runExtAccess,
		"ext-baselines":  runExtBaselines,
		"ext-dimscaling": runExtDimScaling,
		"bench":          runBench,
	}
	order := []string{"fig3", "fig6", "fig7", "fig8to11", "table1", "fig12", "fig13", "fig14", "table2",
		"ext-mixture", "ext-access", "ext-baselines", "ext-dimscaling"}

	name := flag.Arg(0)
	if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
		fatal(err)
	}
	start := time.Now()
	if name == "all" {
		for _, n := range order {
			fmt.Printf("\n================= %s =================\n", n)
			if err := runners[n](ctx, cfg); err != nil {
				if errors.Is(err, context.Canceled) {
					fmt.Fprintln(os.Stderr, "experiments: interrupted")
					os.Exit(130)
				}
				fatal(fmt.Errorf("%s: %w", n, err))
			}
		}
	} else {
		run, ok := runners[name]
		if !ok {
			usage()
		}
		if err := run(ctx, cfg); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "experiments: interrupted")
				os.Exit(130)
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
	if cfg.tele != nil {
		fmt.Println()
		cfg.tele.WriteTable(os.Stdout)
	}
	if err := cli.Close(); err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [flags] table1|table2|fig3|fig6|fig7|fig8to11|fig12|fig13|fig14|ext-mixture|ext-access|ext-baselines|bench|all")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// scale returns n, or n/10 (at least lo) in quick mode.
func (c config) scale(n, lo int) int {
	if !c.quick {
		return n
	}
	s := n / 10
	if s < lo {
		s = lo
	}
	return s
}
