package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/sram"
	"repro/internal/surrogate"
)

// Extension experiments beyond the paper's evaluation (EXPERIMENTS.md
// "Extensions" section): the §IV-C Gaussian-mixture distortion, the
// transient access-time workload, and the extra baselines (statistical
// blockade, subset simulation) on a common analytic reference.

// runExtMixture contrasts the single-Normal Algorithm 5 fit with the
// Gaussian-mixture extension on the dual read-current workload.
func runExtMixture(ctx context.Context, cfg config) error {
	metric := sram.DualReadCurrentWorkload()
	k := c2(cfg.quick, 400, 2000)
	n := c2(cfg.quick, 2000, 10000)
	fmt.Printf("G-S distortion fit on the two-lobe dual read-current workload (K=%d, N=%d):\n\n", k, n)
	fmt.Printf("%-22s %14s %12s\n", "", "Failure Rate", "Rel. Error")
	var rows [][]string
	for _, mixture := range []int{0, 2} {
		counter := mc.NewCounter(metric)
		rng := rand.New(rand.NewSource(cfg.seed))
		res, err := gibbs.TwoStageContext(ctx, counter, gibbs.TwoStageOptions{
			Coord: gibbs.Spherical, K: k, N: n, Mixture: mixture, Workers: cfg.workers,
		}, rng)
		if err != nil {
			return err
		}
		name := "single Normal"
		if mixture >= 2 {
			name = fmt.Sprintf("%d-component mixture", mixture)
		}
		fmt.Printf("%-22s %14.3g %11.1f%%\n", name, res.Pf, 100*res.RelErr99)
		rows = append(rows, []string{name, f64(res.Pf), f64(res.RelErr99)})
	}
	fmt.Println("\nexpected shape: both unbiased (closed form 1.59e-6); the mixture has")
	fmt.Println("the tighter interval because each component hugs one lobe.")
	return writeCSV(cfg, "ext_mixture.csv", []string{"fit", "pf", "relerr99"}, rows)
}

// runExtAccess runs the dynamic access-time workload (transient bitline
// discharge) through G-C and G-S.
func runExtAccess(ctx context.Context, cfg config) error {
	metric := sram.AccessTimeWorkload()
	k := c2(cfg.quick, 150, 600)
	n := c2(cfg.quick, 500, 3000)
	fmt.Printf("access-time workload (transient simulation; spec %.1f ps):\n\n", 39.7)
	fmt.Printf("%-6s %14s %12s %16s\n", "method", "Failure Rate", "Rel. Error", "simulations")
	var rows [][]string
	for _, coord := range []gibbs.Coord{gibbs.Cartesian, gibbs.Spherical} {
		counter := mc.NewCounter(metric)
		rng := rand.New(rand.NewSource(cfg.seed))
		res, err := gibbs.TwoStageContext(ctx, counter, gibbs.TwoStageOptions{
			Coord: coord, K: k, N: n, Workers: cfg.workers,
		}, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %14.3g %11.1f%% %8d + %d\n",
			coord, res.Pf, 100*res.RelErr99, res.Stage1Sims, res.Stage2Sims)
		rows = append(rows, []string{coord.String(), f64(res.Pf), f64(res.RelErr99)})
	}
	return writeCSV(cfg, "ext_access.csv", []string{"method", "pf", "relerr99"}, rows)
}

// runExtBaselines compares the extra rare-event baselines (blockade,
// subset simulation) with G-S and the closed form on an analytic metric,
// so their behaviour is auditable independent of the circuit.
func runExtBaselines(ctx context.Context, cfg config) error {
	lin := &surrogate.Linear{W: []float64{1, 1, 1}, B: 8} // Pf = Φ(−8/√3) ≈ 1.93e-6
	exact := lin.ExactPf()
	fmt.Printf("extra baselines on a linear metric (exact Pf = %.3g):\n\n", exact)
	fmt.Printf("%-10s %14s %12s %12s\n", "method", "Failure Rate", "Rel. Error", "simulations")
	var rows [][]string
	record := func(name string, pf, rel float64, sims int64) {
		fmt.Printf("%-10s %14.3g %11.1f%% %12d\n", name, pf, 100*rel, sims)
		rows = append(rows, []string{name, f64(pf), f64(rel), fmt.Sprint(sims)})
	}

	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(cfg.seed))
	sub, err := baselines.SubsetContext(ctx, counter, baselines.SubsetOptions{
		Particles: c2(cfg.quick, 300, 1000), Workers: cfg.workers,
	}, rng)
	if err != nil {
		return err
	}
	record("subset", sub.Pf, sub.RelErr99, sub.Sims)

	counter = mc.NewCounter(lin)
	rng = rand.New(rand.NewSource(cfg.seed))
	bl, err := baselines.BlockadeContext(ctx, counter, baselines.BlockadeOptions{
		Train: 800, N: c2(cfg.quick, 300000, 3000000), Workers: cfg.workers,
	}, rng)
	if err != nil {
		return err
	}
	record("blockade", bl.Pf, bl.RelErr99, bl.TrainSims+bl.TailSims)

	counter = mc.NewCounter(lin)
	rng = rand.New(rand.NewSource(cfg.seed))
	gs, err := gibbs.TwoStageContext(ctx, counter, gibbs.TwoStageOptions{
		Coord: gibbs.Spherical, K: c2(cfg.quick, 200, 800), N: c2(cfg.quick, 1000, 5000),
		Workers: cfg.workers,
	}, rng)
	if err != nil {
		return err
	}
	record("g-s", gs.Pf, gs.RelErr99, gs.Stage1Sims+gs.Stage2Sims)

	return writeCSV(cfg, "ext_baselines.csv",
		[]string{"method", "pf", "relerr99", "sims"}, rows)
}
