package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/sram"
	"repro/internal/stat"
)

// runFig3 regenerates the paper's Fig. 3: 100 samples of the conditional
// g^OPT(α₁ | r, α₂) for the quadrant failure region of eq. (18), at r = 1
// with α₂ = 1 and α₂ = 3, plotted as (x₁, x₂) scatter. With x₂ ≥ 0
// guaranteed by α₂ > 0, the conditional failure interval of α₁ is
// [0, ζ], so the samples spread along an arc whose length shrinks as α₂
// grows — the mechanism that lets the spherical chain slide along
// probability contours.
func runFig3(ctx context.Context, cfg config) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	const n = 100
	const zeta = 8.0
	r := 1.0
	for _, alpha2 := range []float64{1, 3} {
		var rows [][]string
		minT, maxT := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			a1 := stat.TruncNormSample(0, zeta, rng.Float64())
			x, err := gibbs.CartesianFromSpherical(r, []float64{a1, alpha2})
			if err != nil {
				return err
			}
			th := math.Atan2(x[1], x[0])
			minT, maxT = math.Min(minT, th), math.Max(maxT, th)
			rows = append(rows, []string{f64(x[0]), f64(x[1])})
		}
		name := fmt.Sprintf("fig3_alpha2_%.0f.csv", alpha2)
		if err := writeCSV(cfg, name, []string{"x1", "x2"}, rows); err != nil {
			return err
		}
		fmt.Printf("  α₂ = %.0f: arc angular span %.1f°\n", alpha2, (maxT-minT)*180/math.Pi)
	}
	fmt.Println("expected shape (paper Fig. 3): the α₂ = 1 arc is much longer than α₂ = 3.")
	return nil
}

// traceFig runs the four methods with convergence tracing on a metric and
// writes one CSV per method plus a printed summary; shared by Figs 6, 7
// and 12 (the same run yields both the estimate and the error series).
func traceFig(ctx context.Context, cfg config, metric mc.Metric, tag string, n int) error {
	b := defaultBudgets(cfg)
	for _, name := range methodNames {
		r, err := runMethod(ctx, name, metric, b, n, mc.TraceEvery(b.traceEvery), cfg.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		var rows [][]string
		for _, tp := range r.trace {
			rel := tp.RelErr99
			if math.IsInf(rel, 1) {
				rel = -1 // CSV-friendly sentinel for "no failures yet"
			}
			rows = append(rows, []string{fmt.Sprint(tp.N), f64(tp.Estimate), f64(rel)})
		}
		file := fmt.Sprintf("%s_%s.csv", tag, sanitize(name))
		if err := writeCSV(cfg, file, []string{"n", "estimate", "relerr99"}, rows); err != nil {
			return err
		}
		fmt.Printf("  %-5s final: Pf=%.3g relerr=%.1f%% (stage1 %d sims)\n",
			name, r.pf, 100*r.relErr, r.stage1)
	}
	return nil
}

// runFig6 regenerates Fig. 6: estimated failure probability vs the number
// of second-stage simulations for RNM (a) and WNM (b).
func runFig6(ctx context.Context, cfg config) error {
	n := c2(cfg.quick, 2000, 20000)
	fmt.Println("Fig. 6(a) RNM:")
	if err := traceFig(ctx, cfg, sram.RNMWorkload(), "fig6a_rnm", n); err != nil {
		return err
	}
	fmt.Println("Fig. 6(b) WNM:")
	return traceFig(ctx, cfg, sram.WNMWorkload(), "fig6b_wnm", n)
}

// runFig7 regenerates Fig. 7: the 99%-CI relative error vs second-stage
// simulations. The series are produced by the same runs as Fig. 6 (the
// CSV files contain both columns); this entry point re-runs them under
// the fig7 name for users who only want the error series.
func runFig7(ctx context.Context, cfg config) error {
	n := c2(cfg.quick, 2000, 20000)
	fmt.Println("Fig. 7(a) RNM:")
	if err := traceFig(ctx, cfg, sram.RNMWorkload(), "fig7a_rnm", n); err != nil {
		return err
	}
	fmt.Println("Fig. 7(b) WNM:")
	return traceFig(ctx, cfg, sram.WNMWorkload(), "fig7b_wnm", n)
}

// runFig8to11 regenerates Figs. 8–11: second-stage sample scatter for
// each method, projected on the metric's critical mismatch pair and
// labeled pass/fail. RNM projects on (ΔVth1, ΔVth3); WNM on
// (ΔVth3, ΔVth5).
func runFig8to11(ctx context.Context, cfg config) error {
	b := defaultBudgets(cfg)
	nScatter := c2(cfg.quick, 150, 500)
	figOfMethod := map[string]int{"MIS": 8, "MNIS": 9, "G-C": 10, "G-S": 11}
	type proj struct {
		metric mc.Metric
		ax, ay int // indices into the 6-D variation vector
		lx, ly string
	}
	projs := map[string]proj{
		"rnm": {sram.RNMWorkload(), sram.M1, sram.M3, "dvth1", "dvth3"},
		"wnm": {sram.WNMWorkload(), sram.M3, sram.M5, "dvth3", "dvth5"},
	}
	for _, mname := range []string{"rnm", "wnm"} {
		p := projs[mname]
		for _, name := range methodNames {
			// Build the method's distortion with a minimal second stage,
			// then draw a fresh labeled scatter from it (distributionally
			// identical to the stage-2 stream).
			r, err := runMethod(ctx, name, p.metric, b, 10, 0, cfg.seed)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, mname, err)
			}
			rng := rand.New(rand.NewSource(cfg.seed + 17))
			var rows [][]string
			fails := 0
			for i := 0; i < nScatter; i++ {
				x := r.distortion.Sample(rng)
				fail := 0
				if p.metric.Value(x) < 0 {
					fail = 1
					fails++
				}
				rows = append(rows, []string{
					f64(x[p.ax]), f64(x[p.ay]), fmt.Sprint(fail),
				})
			}
			file := fmt.Sprintf("fig%d_%s_%s.csv", figOfMethod[name], mname, sanitize(name))
			if err := writeCSV(cfg, file, []string{p.lx, p.ly, "fail"}, rows); err != nil {
				return err
			}
			fmt.Printf("  fig%d %s %-5s: %d/%d scatter samples fail\n",
				figOfMethod[name], mname, name, fails, nScatter)
		}
	}
	fmt.Println("expected shape (paper Figs. 8–11): MIS/MNIS scatter mostly 'pass'")
	fmt.Println("(covariance ignored); G-C/G-S scatter concentrates in the failure region.")
	return nil
}

// runFig12 regenerates Fig. 12: estimated dual read-current failure
// probability vs second-stage simulations — the experiment where the
// methods visibly diverge.
func runFig12(ctx context.Context, cfg config) error {
	n := c2(cfg.quick, 2000, 10000)
	fmt.Println("Fig. 12 dual read current:")
	if err := traceFig(ctx, cfg, sram.DualReadCurrentWorkload(), "fig12_dualread", n); err != nil {
		return err
	}
	fmt.Println("expected shape (paper Fig. 12): G-S converges to the brute-force value;")
	fmt.Println("MIS/MNIS scatter; G-C plateaus at roughly half the true failure rate.")
	return nil
}

// runFig13 regenerates Fig. 13: the 2-D failure-region map of the dual
// read-current workload (uniform region scan) plus each method's
// second-stage failure points.
func runFig13(ctx context.Context, cfg config) error {
	metric := sram.DualReadCurrentWorkload()
	// Region map: uniform grid scan (the paper's green squares are
	// uniform samples of the failure region; a grid is the deterministic
	// equivalent).
	step := 0.25
	if cfg.quick {
		step = 0.5
	}
	var rows [][]string
	for x4 := -2.0; x4 <= 8.0+1e-9; x4 += step {
		for x3 := -2.0; x3 <= 8.0+1e-9; x3 += step {
			if metric.Value([]float64{x3, x4}) < 0 {
				rows = append(rows, []string{f64(x3), f64(x4)})
			}
		}
	}
	if err := writeCSV(cfg, "fig13_region.csv", []string{"dvth3", "dvth4"}, rows); err != nil {
		return err
	}
	// Per-method failure points from the fitted distortions.
	b := defaultBudgets(cfg)
	nScatter := c2(cfg.quick, 200, 1000)
	for _, name := range methodNames {
		r, err := runMethod(ctx, name, metric, b, 10, 0, cfg.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rng := rand.New(rand.NewSource(cfg.seed + 29))
		var pts [][]string
		for i := 0; i < nScatter; i++ {
			x := r.distortion.Sample(rng)
			if metric.Value(x) < 0 {
				pts = append(pts, []string{f64(x[0]), f64(x[1])})
			}
		}
		file := fmt.Sprintf("fig13_points_%s.csv", sanitize(name))
		if err := writeCSV(cfg, file, []string{"dvth3", "dvth4"}, pts); err != nil {
			return err
		}
		// Lobe coverage summary: fraction of failure points in each lobe.
		var lobeA, lobeB int
		for _, p := range pts {
			if p[0] > p[1] {
				lobeA++
			} else {
				lobeB++
			}
		}
		fmt.Printf("  %-5s failure points: %d (lobe x3: %d, lobe x4: %d)\n",
			name, len(pts), lobeA, lobeB)
	}
	fmt.Println("expected shape (paper Fig. 13): G-S covers both lobes of the")
	fmt.Println("high-probability failure region; the others cover only part of it.")
	return nil
}

// runFig14 regenerates Fig. 14: the first three Gibbs samples of G-C and
// G-S from the same starting point on the dual read-current workload,
// illustrating why the spherical chain escapes along probability contours
// while the Cartesian chain stays near its lobe's boundary.
func runFig14(ctx context.Context, cfg config) error {
	metric := sram.DualReadCurrentWorkload()
	// A deterministic start inside one lobe, as Algorithm 4 would find.
	start := []float64{0.3, 5.2}
	if metric.Value(start) >= 0 {
		return fmt.Errorf("fig14 start point unexpectedly passes")
	}
	for _, name := range []string{"G-C", "G-S"} {
		counter := mc.NewCounter(metric)
		rng := rand.New(rand.NewSource(cfg.seed))
		var (
			samples [][]float64
			err     error
		)
		if name == "G-C" {
			samples, err = gibbs.CartesianChain(counter, start, 3, nil, rng)
		} else {
			samples, err = gibbs.SphericalChain(counter, start, 3, nil, rng)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows := [][]string{{f64(start[0]), f64(start[1]), "start"}}
		for i, s := range samples {
			rows = append(rows, []string{f64(s[0]), f64(s[1]), fmt.Sprintf("sample%d", i+1)})
		}
		file := fmt.Sprintf("fig14_%s.csv", sanitize(name))
		if err := writeCSV(cfg, file, []string{"dvth3", "dvth4", "label"}, rows); err != nil {
			return err
		}
		d := dist(start, samples[len(samples)-1])
		fmt.Printf("  %-5s start %v -> third sample %.2f away\n", name, start, d)
	}
	fmt.Println("expected shape (paper Fig. 14): the G-S samples move far along the")
	fmt.Println("probability contour; the G-C samples stay near the starting point.")
	return nil
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r == '-':
			// drop
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
