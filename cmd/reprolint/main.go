// Command reprolint runs the repository's custom static-analysis suite
// (internal/lint): project-specific analyzers that mechanically enforce
// the determinism, cancellation and nil-safety invariants the estimator
// stack depends on.
//
// Usage:
//
//	reprolint [-json] [-v] [pattern ...]
//	reprolint -suppressions [pattern ...]
//	reprolint -fix-annotations [pattern ...]
//	reprolint -list
//
// Patterns follow the go tool's shape: "./..." (the default) lints every
// non-test package in the module; "./internal/mc" or "internal/mc"
// lints one package; a trailing "/..." lints a subtree. Test files are
// never loaded — the invariants are about production code.
//
// -suppressions audits the //reprolint:ignore inventory: it prints every
// active suppression with its justification and fails if any directive
// is malformed, names an unknown analyzer, or suppresses nothing.
//
// -fix-annotations lists mutex-adjacent struct fields that carry no
// "guarded by" comment — the worklist for adopting lockguard in a
// package. It is advisory and always exits 0 unless loading fails.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "write machine-readable reprolint/v1 JSON to stdout")
	verbose := fs.Bool("v", false, "also list suppressed findings with their justifications")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	suppressions := fs.Bool("suppressions", false, "audit the suppression inventory: list every active ignore directive and fail on stale or malformed ones")
	fixAnnotations := fs.Bool("fix-annotations", false, "list mutex-adjacent struct fields missing a \"guarded by\" annotation")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: reprolint [-json] [-v] [-suppressions] [-fix-annotations] [pattern ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}

	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := filterPackages(pkgs, patterns, root, cwd)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}

	if *fixAnnotations {
		cands := lint.AnnotationCandidates(selected)
		for _, c := range cands {
			fmt.Fprintf(stdout, "%s: %s.%s // guarded by %s\n", c.Pos, c.Struct, c.Field, c.Mutex)
		}
		fmt.Fprintf(stderr, "reprolint: %d unannotated field(s) next to a lone mutex in %d package(s)\n",
			len(cands), len(selected))
		return 0
	}

	res := lint.Run(selected, lint.Analyzers())

	if *suppressions {
		return auditSuppressions(res, stdout)
	}

	if *jsonOut {
		if err := lint.WriteJSON(stdout, res); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
		// Keep the human summary visible when stdout is redirected to
		// an artifact file.
		fmt.Fprintf(stderr, "reprolint: %d finding(s), %d suppressed, %d package(s)\n",
			len(res.Diags), len(res.Suppressed), len(selected))
	} else {
		lint.WriteText(stdout, res.Diags)
		if *verbose {
			for _, d := range res.Suppressed {
				fmt.Fprintf(stdout, "%s (suppressed: %s)\n", d.String(), d.Reason)
			}
		}
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}

// auditSuppressions prints the active suppression inventory and fails
// if the directive machinery itself reported anything: a malformed
// directive, an unknown analyzer name, or a suppression that matches no
// finding. Real (non-directive) findings are left to the plain run —
// this gate is only about keeping the ignore inventory honest.
func auditSuppressions(res lint.Result, stdout *os.File) int {
	for _, d := range res.Suppressed {
		fmt.Fprintf(stdout, "%s (suppressed: %s)\n", d.String(), d.Reason)
	}
	bad := 0
	for _, d := range res.Diags {
		if d.Analyzer == lint.DirectiveAnalyzer {
			fmt.Fprintln(stdout, d.String())
			bad++
		}
	}
	fmt.Fprintf(stdout, "reprolint: %d active suppression(s), %d directive problem(s)\n",
		len(res.Suppressed), bad)
	if bad > 0 {
		return 1
	}
	return 0
}

// filterPackages selects the loaded packages matching the go-style
// patterns, resolved relative to cwd inside the module rooted at root.
func filterPackages(pkgs []*lint.Package, patterns []string, root, cwd string) ([]*lint.Package, error) {
	keep := make(map[*lint.Package]bool)
	for _, pat := range patterns {
		matched := false
		for _, p := range pkgs {
			ok, err := patternMatches(pat, p, root, cwd)
			if err != nil {
				return nil, err
			}
			if ok {
				keep[p] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if keep[p] {
			out = append(out, p)
		}
	}
	return out, nil
}

func patternMatches(pat string, p *lint.Package, root, cwd string) (bool, error) {
	recursive := false
	if pat == "all" {
		recursive = true
		pat = "."
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" {
			pat = "."
		}
	}
	// Resolve the pattern to a directory inside the module.
	base := cwd
	if filepath.IsAbs(pat) {
		base = ""
	}
	dir := filepath.Clean(filepath.Join(base, pat))
	pdir, err := filepath.Abs(p.Dir)
	if err != nil {
		return false, err
	}
	if pdir == dir {
		return true, nil
	}
	if recursive && strings.HasPrefix(pdir+string(filepath.Separator), dir+string(filepath.Separator)) {
		return true, nil
	}
	return false, nil
}
