// Command loadtest hammers a sramserverd instance with concurrent job
// submissions through the typed client and reports latency percentiles
// plus a lost-job check: every submission must come back terminal, and
// every accepted job must be findable afterwards.
//
//	loadtest -server http://localhost:8080 -jobs 200 -concurrency 16
//
// With -drain-after N and -drain-pid P the run crosses a graceful
// shutdown: after N jobs complete, the server gets SIGTERM while
// submissions continue. Jobs accepted before the drain must still
// finish (zero lost), and submissions after it must be rejected with
// the clean "draining" problem+json — connection errors before the
// listener closes, or any other failure, are hard failures.
//
// Exit status is non-zero when any job is lost or fails (or, in drain
// mode, when no clean draining rejection was observed), so the smoke
// scripts can assert the guarantees directly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/jobs"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "sramserverd base URL")
	workload := flag.String("workload", "rnm", "workload submitted by every job")
	method := flag.String("method", "g-s", "estimator method")
	k := flag.Int("k", 200, "first-stage budget")
	n := flag.Int("n", 2000, "second-stage samples")
	total := flag.Int("jobs", 100, "jobs to submit")
	concurrency := flag.Int("concurrency", 8, "in-flight submissions")
	seedBase := flag.Int64("seed", 1, "first seed; job i uses seed+i (use -same-seed to exercise the result cache)")
	sameSeed := flag.Bool("same-seed", false, "submit identical requests so a result cache serves all but the first")
	drainAfter := flag.Int("drain-after", 0, "drain-crossing mode: SIGTERM -drain-pid after this many jobs complete (0 disables)")
	drainPid := flag.Int("drain-pid", 0, "drain-crossing mode: the server PID to SIGTERM")
	flag.Parse()
	drainMode := *drainAfter > 0 && *drainPid > 0

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := client.New(*server, nil)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		ids       []string
		cached    atomic.Int64
		failed    atomic.Int64
		drained   atomic.Int64 // clean "draining" problem+json rejections
		refused   atomic.Int64 // connection errors after the drain signal
		doneCount atomic.Int64
		signaled  atomic.Bool
		drainOnce sync.Once
	)
	sem := make(chan struct{}, max(*concurrency, 1))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *total; i++ {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			seed := *seedBase
			if !*sameSeed {
				seed += int64(i)
			}
			t0 := time.Now()
			snap, err := c.SubmitWait(ctx, jobs.Request{
				Workload: *workload, Method: *method, K: *k, N: *n, Seed: seed,
			})
			lat := time.Since(t0)
			if err != nil || snap.State != jobs.StateDone {
				switch {
				case client.IsProblem(err, "draining"):
					// The guarantee under test: a submission that crosses
					// the drain boundary gets a clean typed rejection.
					drained.Add(1)
				case signaled.Load() && err != nil && !isProblem(err):
					// After the drain completes the listener closes;
					// transport errors from then on are expected.
					refused.Add(1)
				default:
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "loadtest: job %d: state %s err %v\n", i, snap.State, err)
				}
				return
			}
			if snap.Cached {
				cached.Add(1)
			}
			if drainMode && doneCount.Add(1) == int64(*drainAfter) {
				drainOnce.Do(func() {
					signaled.Store(true)
					fmt.Fprintf(os.Stderr, "loadtest: %d jobs done — SIGTERM pid %d (drain crossing)\n", *drainAfter, *drainPid)
					if err := syscall.Kill(*drainPid, syscall.SIGTERM); err != nil {
						fmt.Fprintf(os.Stderr, "loadtest: SIGTERM failed: %v\n", err)
					}
				})
			}
			mu.Lock()
			latencies = append(latencies, lat)
			ids = append(ids, snap.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Lost-job check: every accepted job is still known to the server.
	// In drain mode the server is gone by now — there, "not lost" means
	// every accepted job came back terminal, which SubmitWait already
	// guaranteed for each entry of ids.
	lost := 0
	if !drainMode {
		for _, id := range ids {
			if _, err := c.Get(context.Background(), id); err != nil {
				lost++
				fmt.Fprintf(os.Stderr, "loadtest: job %s lost: %v\n", id, err)
			}
		}
	}

	done := len(latencies)
	fmt.Printf("jobs              %d submitted, %d done, %d failed, %d lost\n",
		*total, done, failed.Load(), lost)
	fmt.Printf("cached            %d\n", cached.Load())
	if drainMode {
		fmt.Printf("drain crossing    %d clean draining rejections, %d post-drain connection errors\n",
			drained.Load(), refused.Load())
	}
	fmt.Printf("wall time         %v (%.1f jobs/s)\n",
		elapsed.Round(time.Millisecond), float64(done)/elapsed.Seconds())
	if done > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			return latencies[min(int(p*float64(done)), done-1)]
		}
		fmt.Printf("latency           p50 %v  p90 %v  p99 %v  max %v\n",
			pct(0.50).Round(time.Millisecond), pct(0.90).Round(time.Millisecond),
			pct(0.99).Round(time.Millisecond), latencies[done-1].Round(time.Millisecond))
	}
	switch {
	case failed.Load() > 0 || lost > 0:
		os.Exit(1)
	case drainMode && drained.Load() == 0:
		fmt.Fprintln(os.Stderr, "loadtest: drain crossing saw no clean draining rejection")
		os.Exit(1)
	case !drainMode && done != *total:
		os.Exit(1)
	}
}

// isProblem reports whether err is a typed service problem (of any
// slug), as opposed to a transport error.
func isProblem(err error) bool {
	var p *jobs.Problem
	return errors.As(err, &p)
}
