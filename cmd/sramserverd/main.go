// Command sramserverd serves SRAM failure-rate estimation as a
// long-running HTTP/JSON service: jobs are submitted to a bounded queue,
// run by a fixed executor pool with per-job cancellation and deadlines,
// and observed live (running Pf, 99% relative error, simulations
// consumed) while they run.
//
//	sramserverd -addr :8080 -queue 64 -executors 2
//
//	curl -s localhost:8080/v1/workloads
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workload":"readcurrent","method":"g-s","seed":1}'
//	curl -s localhost:8080/v1/jobs/j000001            # live progress
//	curl -s -X DELETE localhost:8080/v1/jobs/j000001  # cancel
//
// The live observability plane is on by default (-event-ring 256): each
// job carries a private event bus whose stream is served as Server-Sent
// Events on /v1/jobs/{id}/events (all jobs merged: /v1/events), a
// watchdog turns mid-run statistical pathologies into health.* events,
// and the last -event-ring events per job form a flight recorder dumped
// to -flight-dir on job failure, watchdog alert, or SIGQUIT. With
// -alert-profile the first watchdog alert of each kind additionally
// captures pprof CPU+heap profiles into -flight-dir. Logs are
// structured (log/slog) with -log-format text|json and carry
// job/lease/worker/trace correlation fields.
//
// With -dist the server also acts as the distributed coordinator:
// sramworkerd workers poll /v1/dist for chunk-range leases, and jobs
// submitted with "distribute": true are sharded across them — the
// folded result is bit-identical to a single-node run. Workers report
// their metrics and health on lease renewals; the coordinator
// republishes them per-worker and cluster-aggregated at /metrics and
// GET /v1/cluster, and stitches worker-uploaded spans into each job's
// trace (GET /v1/jobs/{id}/trace spans the whole fleet). -result-cache
// N adds a content-addressed result cache so a repeat of an identical
// request (same module version, workload, options, seed) returns
// instantly with zero new simulations.
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected with
// 503 while the listener stays up (drain-crossing clients see clean
// problem+json rejections, not connection errors), running jobs get
// -drain-timeout to finish, then are cancelled (their partial
// simulation cost is preserved in the final snapshot). The -telemetry
// JSONL event log and the -trace span file are flushed after the drain
// completes, so the last events of in-flight jobs are never lost.
// SIGQUIT does not kill the server: it dumps flight recorders and keeps
// serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/jobs"
	"repro/internal/obslog"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	queue := flag.Int("queue", 64, "bounded job-queue capacity")
	executors := flag.Int("executors", 1, "jobs run concurrently (each already fans out across -workers)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline (0 = none; jobs may override)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
	teleOut := flag.String("telemetry", "", "write structured run events (JSONL) to this file, flushed on drain")
	traceOut := flag.String("trace", "", "write the server's span trace to this file on shutdown (Chrome trace JSON, or JSONL with a .jsonl suffix)")
	eventRing := flag.Int("event-ring", 256, "per-job live-event ring size (SSE resume window and flight recorder; 0 disables event streaming)")
	flightDir := flag.String("flight-dir", "", "write flight-recorder dumps (JSONL) into this directory on job failure, watchdog alert, or SIGQUIT")
	alertProfile := flag.Duration("alert-profile", 0, "capture pprof CPU (this long) + heap profiles into -flight-dir on the first watchdog alert of each kind (0 disables)")
	retention := flag.Duration("retention", 0, "garbage-collect terminal jobs this long after they finish (0 = keep forever)")
	heartbeat := flag.Duration("sse-heartbeat", 15*time.Second, "SSE comment-heartbeat period")
	distOn := flag.Bool("dist", false, "serve the /v1/dist coordinator so sramworkerd workers can run jobs submitted with \"distribute\": true")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "distributed lease time-to-live (an unrenewed lease requeues its range)")
	resultCache := flag.Int("result-cache", 0, "content-addressed result-cache capacity (0 disables; repeat submissions of an identical request return instantly)")
	logFormat := flag.String("log-format", obslog.FormatText, "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	cfg := serverConfig{
		addr: *addr, queue: *queue, executors: *executors,
		jobTimeout: *jobTimeout, drainTimeout: *drainTimeout,
		teleOut: *teleOut, traceOut: *traceOut,
		eventRing: *eventRing, flightDir: *flightDir,
		alertProfile: *alertProfile,
		retention:    *retention, heartbeat: *heartbeat,
		dist: *distOn, leaseTTL: *leaseTTL, resultCache: *resultCache,
		logFormat: *logFormat, logLevel: *logLevel,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sramserverd:", err)
		os.Exit(1)
	}
}

type serverConfig struct {
	addr                     string
	queue, executors         int
	jobTimeout, drainTimeout time.Duration
	teleOut, traceOut        string
	eventRing                int
	flightDir                string
	alertProfile             time.Duration
	retention                time.Duration
	heartbeat                time.Duration
	dist                     bool
	leaseTTL                 time.Duration
	resultCache              int
	logFormat, logLevel      string
}

func run(cfg serverConfig) error {
	log, err := obslog.New(os.Stderr, cfg.logFormat, cfg.logLevel)
	if err != nil {
		return err
	}
	log = log.With("service", "sramserverd")
	// The CLI bundle owns the JSONL event sink and the span-trace file;
	// closing it after the drain is what guarantees the flush.
	cli, err := telemetry.StartCLI(cfg.teleOut, cfg.traceOut, "", false)
	if err != nil {
		return err
	}
	reg := cli.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	if cfg.flightDir != "" {
		if err := os.MkdirAll(cfg.flightDir, 0o755); err != nil {
			cli.Close()
			return err
		}
	}
	// The coordinator exists before the manager so distributed jobs can
	// hand their sharding to it; workers poll /v1/dist while the jobs
	// API stays at the mux root.
	var coord *dist.Coordinator
	mgrCfg := jobs.Config{
		QueueSize:    cfg.queue,
		Executors:    cfg.executors,
		JobTimeout:   cfg.jobTimeout,
		Registry:     reg,
		EventRing:    cfg.eventRing,
		FlightDir:    cfg.flightDir,
		AlertProfile: cfg.alertProfile,
		Retention:    cfg.retention,
		Heartbeat:    cfg.heartbeat,
		CacheSize:    cfg.resultCache,
		Log:          log,
	}
	if cfg.dist {
		coord = dist.NewCoordinator(dist.Config{LeaseTTL: cfg.leaseTTL, Registry: reg, Log: log})
		mgrCfg.Distributor = coord.Run
	}
	mgr := jobs.NewManager(mgrCfg)

	mux := http.NewServeMux()
	if coord != nil {
		mux.Handle("/v1/dist/", coord.Handler())
		mux.Handle("/v1/cluster", coord.Handler())
	}
	mux.Handle("/", jobs.Handler(mgr))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		cli.Close()
		return err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT is the operator's "what is going on in there": dump every
	// flight recorder to -flight-dir and keep serving.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			paths := mgr.DumpFlight("sigquit")
			log.Info("SIGQUIT flight dump", "dumps", len(paths), "dir", cfg.flightDir)
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("sramserverd: serving %d workloads, %d methods on http://%s\n",
		len(repro.Workloads()), len(repro.AllMethods()), ln.Addr())
	log.Info("serving", "addr", ln.Addr().String(),
		"workloads", len(repro.Workloads()), "dist", cfg.dist)

	select {
	case err := <-errc:
		cli.Close()
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	log.Info("draining", "timeout", cfg.drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// Drain order matters for clients that cross the shutdown boundary:
	// first flip the manager to draining while the listener is still up,
	// so new submissions get clean 503 problem+json rejections instead
	// of connection errors; then wait for queued and running jobs (SSE
	// streams end when the drain closes the bus); only then shut the
	// HTTP server down.
	mgr.BeginDrain()
	if err := mgr.Drain(drainCtx); err != nil {
		log.Warn("drain deadline hit, running jobs cancelled")
	}
	shutdownErr := srv.Shutdown(drainCtx)
	if coord != nil {
		coord.Stop()
	}
	// Flush the event log and write the trace only after the drain: the
	// last events of in-flight jobs land in the sink during Drain, and a
	// flush any earlier would lose them.
	if err := cli.Close(); err != nil {
		log.Warn("telemetry flush failed", "error", err.Error())
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	log.Info("drained, bye")
	return nil
}
