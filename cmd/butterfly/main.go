// Command butterfly dumps the 6-T cell's transfer curves and stability
// metrics for a given mismatch vector — a window into the
// transistor-level simulation substrate behind the statistical library.
//
//	butterfly                         # nominal cell, read configuration
//	butterfly -config hold
//	butterfly -dvth 0.03,0,-0.02,0,0,0
//	butterfly -cell fastread -csv butterfly.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/sram"
	"repro/internal/telemetry"
)

func main() {
	var (
		configName = flag.String("config", "read", "bias configuration: hold, read or write")
		cellName   = flag.String("cell", "default", "cell variant: default or fastread")
		dvthFlag   = flag.String("dvth", "", "comma-separated ΔVth for M1..M6 in volts")
		csvPath    = flag.String("csv", "", "write the two transfer curves as CSV")
		points     = flag.Int("points", 41, "sweep points per curve")
		teleOut    = flag.String("telemetry", "", "write structured solver events (JSONL) to this file")
		traceOut   = flag.String("trace", "", "write a span trace to this file (Chrome trace JSON, or JSONL with a .jsonl suffix)")
		stats      = flag.Bool("stats", false, "print solver telemetry after the run")
	)
	flag.Parse()

	cli, err := telemetry.StartCLI(*teleOut, *traceOut, "", *stats)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C flushes telemetry and exits instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
		cli.Close()
		fmt.Fprintln(os.Stderr, "butterfly: interrupted")
		os.Exit(130)
	}()

	cell := sram.Default90nm()
	if *cellName == "fastread" {
		cell = sram.FastRead90nm()
	} else if *cellName != "default" {
		fatal(fmt.Errorf("unknown cell %q", *cellName))
	}
	cell.Grid = *points
	cell.Telemetry = cli.Registry

	var cfg sram.BiasConfig
	switch *configName {
	case "hold":
		cfg = sram.HoldConfig
	case "read":
		cfg = sram.ReadConfig
	case "write":
		cfg = sram.WriteConfig
	default:
		fatal(fmt.Errorf("unknown config %q", *configName))
	}

	var dvth [sram.NumTransistors]float64
	if *dvthFlag != "" {
		parts := strings.Split(*dvthFlag, ",")
		if len(parts) != sram.NumTransistors {
			fatal(fmt.Errorf("-dvth wants %d values, got %d", sram.NumTransistors, len(parts)))
		}
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fatal(err)
			}
			dvth[i] = v
		}
	}

	g1, g2, err := sram.TransferCurves(cell, cfg, dvth)
	if err != nil {
		fatal(err)
	}
	margins, err := cell.NoiseMargins(cfg, dvth)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("cell %s, %s configuration, ΔVth = %v\n\n", *cellName, cfg, dvth)
	fmt.Printf("butterfly eyes:   state-0 %.4f V, state-1 %.4f V (SNM %.4f V)\n",
		margins.Eye0, margins.Eye1, margins.Min())
	if ir, err := cell.ReadCurrent(dvth); err == nil {
		fmt.Printf("read current:     %.2f µA\n", ir*1e6)
	}
	if wt, err := cell.WriteTrip(dvth); err == nil {
		fmt.Printf("write trip:       %.4f V\n", wt)
	}

	fmt.Printf("\n%8s %10s %10s\n", "Vin", "QB=g1(Q)", "Q=g2(QB)")
	for i := range g1.X {
		fmt.Printf("%8.3f %10.4f %10.4f\n", g1.X[i], g1.Y[i], g2.Y[i])
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		_ = w.Write([]string{"vin", "g1_qb", "g2_q"})
		for i := range g1.X {
			_ = w.Write([]string{
				fmt.Sprintf("%.5f", g1.X[i]),
				fmt.Sprintf("%.5f", g1.Y[i]),
				fmt.Sprintf("%.5f", g2.Y[i]),
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fatal(err)
		}
		fmt.Println("\nwrote", *csvPath)
	}

	if cli.Registry != nil {
		fmt.Println()
		cli.Registry.WriteTable(os.Stdout)
	}
	if err := cli.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "butterfly:", err)
	os.Exit(1)
}
