// Command calibrate regenerates the workload calibration recorded in
// EXPERIMENTS.md: nominal metric values, per-σ gradients, the linearized
// distance-to-failure implied by each spec, and (for the 2-D read-current
// workloads) the failure probability by grid quadrature.
//
//	calibrate            # all workloads
//	calibrate -grid      # include the slow 2-D quadrature
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"

	"repro/internal/mc"
	"repro/internal/sram"
	"repro/internal/stat"
	"repro/internal/telemetry"
)

func main() {
	grid := flag.Bool("grid", false, "run the 2-D grid quadratures (slower)")
	workers := flag.Int("workers", 0, "evaluation-pool workers for the quadratures (0 = all cores)")
	teleOut := flag.String("telemetry", "", "write structured solver events (JSONL) to this file")
	traceOut := flag.String("trace", "", "write a span trace to this file (Chrome trace JSON, or JSONL with a .jsonl suffix)")
	stats := flag.Bool("stats", false, "print solver telemetry after the run")
	flag.Parse()

	cli, err := telemetry.StartCLI(*teleOut, *traceOut, "", *stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}

	// Ctrl-C flushes telemetry and exits instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
		cli.Close()
		fmt.Fprintln(os.Stderr, "calibrate: interrupted")
		os.Exit(130)
	}()
	reg = cli.Registry

	fmt.Println("== static noise margins (Default90nm, σVth = 30 mV) ==")
	cell := sram.Default90nm()
	cell.Telemetry = reg
	calibrateStatic("RNM", cell, sram.RNMSpec, func(d [sram.NumTransistors]float64) (float64, error) {
		return cell.ReadSNM(d)
	})
	calibrateStatic("WNM (write trip)", cell, sram.WNMSpec, func(d [sram.NumTransistors]float64) (float64, error) {
		return cell.WriteTrip(d)
	})

	fmt.Println("\n== read currents ==")
	fast := sram.FastRead90nm()
	fast.Telemetry = reg
	calibrateStatic("single-path read current (FastRead90nm, µA)", fast,
		sram.ReadCurrentSpec*1e6, func(d [sram.NumTransistors]float64) (float64, error) {
			v, err := fast.ReadCurrent(d)
			return v * 1e6, err
		})
	calibrateStatic("dual read current (Default90nm, µA)", cell,
		sram.DualReadCurrentSpec*1e6, func(d [sram.NumTransistors]float64) (float64, error) {
			v, err := cell.DualReadCurrent(d)
			return v * 1e6, err
		})

	fmt.Println("\n== access time (FastRead90nm, ps; fails HIGH) ==")
	calibrateStaticDir("access time", fast, 39.7, true, func(d [sram.NumTransistors]float64) (float64, error) {
		v, err := fast.AccessTime(nil, d)
		return v * 1e12, err
	})

	if *grid {
		fmt.Println("\n== 2-D grid quadratures ==")
		quadrature("single-path read current", sram.ReadCurrentWorkload(), *workers)
		quadrature("dual read current", sram.DualReadCurrentWorkload(), *workers)
	}

	if reg != nil {
		fmt.Println()
		reg.WriteTable(os.Stdout)
	}
	if err := cli.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

// reg is the optional run-telemetry registry shared by every solve and
// quadrature in the command (nil when not requested).
var reg *telemetry.Registry

type rawMetric func(d [sram.NumTransistors]float64) (float64, error)

// calibrateStatic prints the nominal value, the per-σ gradient for every
// transistor, and the linearized failure distance β = (nominal −
// spec)/‖∇‖ with the Pf ≈ Φ(−β) it implies, for metrics that fail low.
func calibrateStatic(name string, cell *sram.Cell, spec float64, f rawMetric) {
	calibrateStaticDir(name, cell, spec, false, f)
}

// calibrateStaticDir is calibrateStatic with an explicit failure
// direction (failHigh for timing metrics, where exceeding the spec
// fails).
func calibrateStaticDir(name string, cell *sram.Cell, spec float64, failHigh bool, f rawMetric) {
	var zero [sram.NumTransistors]float64
	nominal, err := f(zero)
	if err != nil {
		fmt.Fprintf(os.Stderr, "calibrate: %s: %v\n", name, err)
		return
	}
	grad := make([]float64, sram.NumTransistors)
	norm := 0.0
	for i := 0; i < sram.NumTransistors; i++ {
		var dp, dm [sram.NumTransistors]float64
		dp[i], dm[i] = cell.SigmaVth*0.5, -cell.SigmaVth*0.5
		fp, err1 := f(dp)
		fm, err2 := f(dm)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "calibrate: %s gradient %d failed\n", name, i)
			return
		}
		grad[i] = fp - fm
		norm += grad[i] * grad[i]
	}
	norm = math.Sqrt(norm)
	beta := math.Inf(1)
	if norm > 0 {
		if failHigh {
			beta = (spec - nominal) / norm
		} else {
			beta = (nominal - spec) / norm
		}
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  nominal %.4g, spec %.4g\n", nominal, spec)
	fmt.Printf("  grad/σ per transistor: %.4g\n", grad)
	fmt.Printf("  ‖∇‖ = %.4g/σ; linearized β = %.2fσ → Pf ≈ %.2g\n",
		norm, beta, stat.NormSF(beta))
}

// quadrature integrates a 2-D workload's failure probability on a grid.
// Rows of the grid evaluate on the batch engine — one simulation per
// cell is exactly the workload the Evaluator parallelizes — and the row
// sums fold in index order, so the result does not depend on workers.
func quadrature(name string, m mc.Metric, workers int) {
	if m.Dim() != 2 {
		fmt.Fprintf(os.Stderr, "calibrate: %s is not 2-D\n", name)
		return
	}
	if tm, ok := m.(interface{ SetTelemetry(*telemetry.Registry) }); ok {
		tm.SetTelemetry(reg)
	}
	const step = 0.25
	const x2lo, x2hi, x1lo, x1hi = -10.0, 10.0, -6.0, 12.0
	rows := int((x2hi-x2lo)/step) + 1
	ev := mc.NewEvaluator(m, workers).WithTelemetry(reg)
	partial := mc.Map(ev, 0, 0, rows, func(_ *rand.Rand, r int) float64 {
		x2 := x2lo + float64(r)*step
		row := 0.0
		for x1 := x1lo; x1 <= x1hi; x1 += step {
			if m.Value([]float64{x1, x2}) < 0 {
				row += stat.NormPDF(x1) * stat.NormPDF(x2) * step * step
			}
		}
		return row
	})
	pf := 0.0
	for _, p := range partial {
		pf += p
	}
	fmt.Printf("  %s: Pf ≈ %.3g (grid step %.2fσ)\n", name, pf, step)
}
