package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dist"
)

// watchCluster renders the -watch-cluster fleet dashboard: a live
// multi-line terminal view of GET /v1/cluster (workers, leases, folded
// sampling rate) refreshed about once a second, with the tail of the
// server's global SSE firehose underneath. Ctrl-C exits.
func watchCluster(base string) {
	c := client.New(base, nil)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The event tail rides the global firehose in the background; a
	// server without the event plane just leaves it empty.
	tail := &eventTail{}
	go func() {
		for ctx.Err() == nil {
			c.Events(ctx, "", -1, func(ev client.Event) error {
				tail.add(ev)
				return nil
			})
			select {
			case <-ctx.Done():
			case <-time.After(time.Second):
			}
		}
	}()

	drawn := 0
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		sum, err := c.Cluster(ctx)
		var lines []string
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			lines = []string{fmt.Sprintf("cluster @ %s: %v", base, err)}
		} else {
			lines = renderCluster(base, sum, tail.snapshot())
		}
		// In-place redraw: climb back over the previous frame, then
		// overwrite line by line (clearing each), so the dashboard
		// repaints without scrolling.
		if drawn > 0 {
			fmt.Fprintf(os.Stderr, "\x1b[%dA", drawn)
		}
		for _, l := range lines {
			fmt.Fprintf(os.Stderr, "\r\x1b[K%s\n", l)
		}
		for i := len(lines); i < drawn; i++ {
			fmt.Fprint(os.Stderr, "\r\x1b[K\n")
		}
		if d := drawn - len(lines); d > 0 {
			fmt.Fprintf(os.Stderr, "\x1b[%dA", d)
		}
		drawn = len(lines)

		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr)
			return
		case <-ticker.C:
		}
	}
	fmt.Fprintln(os.Stderr)
}

// renderCluster formats one dashboard frame.
func renderCluster(base string, sum dist.ClusterSummary, events []client.Event) []string {
	lines := []string{
		fmt.Sprintf("cluster @ %s   jobs %d   leases %d active / %d pending   %.0f sims/s   granted %d done %d expired %d failed %d",
			base, sum.DistJobs, sum.ActiveLeases, sum.PendingRanges, sum.SimsPerSec,
			sum.LeasesGranted, sum.LeasesCompleted, sum.LeasesExpired, sum.LeasesFailed),
	}
	if len(sum.Workers) == 0 {
		lines = append(lines, "  (no workers registered)")
	} else {
		lines = append(lines, fmt.Sprintf("  %-20s %5s %4s %6s %5s %5s %12s %10s %9s  %s",
			"WORKER", "CORES", "ACT", "DONE", "FAIL", "EXP", "SIMS", "RATE", "CLOCK", "HEALTH"))
		for _, w := range sum.Workers {
			health := "-"
			if n := len(w.Health); n > 0 {
				health = w.Health[n-1].Kind
			}
			lines = append(lines, fmt.Sprintf("  %-20s %5d %4d %6d %5d %5d %12d %8.0f/s %8dµs  %s",
				clip(w.ID, 20), w.Cores, w.Active, w.Completed, w.Failed, w.Expired,
				w.Sims, w.SimsPerSec, w.ClockOffsetUS, health))
		}
	}
	if len(events) > 0 {
		lines = append(lines, "  recent events:")
		for _, ev := range events {
			lines = append(lines, clip(fmt.Sprintf("    #%d %s %s", ev.ID, ev.Name, ev.Data), 160))
		}
	}
	return lines
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// eventTail is a small concurrent ring of the last firehose events.
type eventTail struct {
	mu   sync.Mutex
	evs  []client.Event
	keep int
}

func (t *eventTail) add(ev client.Event) {
	// Heartbeat-ish frames with no name carry nothing to show.
	if strings.TrimSpace(ev.Name) == "" {
		return
	}
	t.mu.Lock()
	if t.keep == 0 {
		t.keep = 5
	}
	t.evs = append(t.evs, ev)
	if len(t.evs) > t.keep {
		t.evs = t.evs[len(t.evs)-t.keep:]
	}
	t.mu.Unlock()
}

func (t *eventTail) snapshot() []client.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]client.Event(nil), t.evs...)
}
