package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"os/signal"
	"time"

	"repro/internal/client"
	"repro/internal/jobs"
	"repro/internal/wire"
)

// remoteJob carries the CLI flags of a -remote submission.
type remoteJob struct {
	workload, method string
	k, n             int
	target           float64
	seed             int64
	quadratic        bool
	workers, mixture int
	distribute       bool
	idemKey          string
	watch            bool
}

// runRemote submits the job to a sramserverd instance through the typed
// client and renders the final snapshot the way a local run would.
// Ctrl-C cancels the remote job before exiting.
func runRemote(base string, rj remoteJob) {
	c := client.New(base, nil)
	req := jobs.Request{
		Workload: rj.workload, Method: rj.method,
		K: rj.k, N: rj.n, Target: rj.target, Seed: rj.seed,
		Quadratic: rj.quadratic, Workers: rj.workers, Mixture: rj.mixture,
		Distribute: rj.distribute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	snap, replayed, err := c.Submit(ctx, req, rj.idemKey)
	if err != nil {
		fatal(err)
	}
	switch {
	case replayed:
		fmt.Fprintf(os.Stderr, "sramfail: idempotent replay of job %s\n", snap.ID)
	case snap.Cached:
		fmt.Fprintf(os.Stderr, "sramfail: job %s served from the result cache\n", snap.ID)
	default:
		fmt.Fprintf(os.Stderr, "sramfail: job %s submitted to %s\n", snap.ID, base)
	}

	var watchDone chan struct{}
	if rj.watch && !snap.State.Terminal() {
		watchDone = make(chan struct{})
		go func() {
			defer close(watchDone)
			watchRemote(ctx, c, snap.ID)
		}()
	}

	final, err := c.Wait(ctx, snap.ID, 250*time.Millisecond)
	if watchDone != nil {
		<-watchDone
	}
	if ctx.Err() != nil {
		// Best-effort cancel with a fresh context: ctx is already dead.
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if cs, cerr := c.Cancel(cctx, snap.ID); cerr == nil {
			fmt.Fprintf(os.Stderr, "sramfail: interrupted, job cancelled after %d simulations\n", cs.Sims)
		}
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	if final.State != jobs.StateDone {
		fatal(fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error))
	}
	printRemote(base, final, time.Since(start))
}

// printRemote mirrors the local result block from a job snapshot.
func printRemote(base string, snap jobs.Snapshot, elapsed time.Duration) {
	res := snap.Result
	fmt.Printf("server            %s (job %s", base, snap.ID)
	if snap.Distributed {
		fmt.Printf(", distributed")
	}
	if snap.Cached {
		fmt.Printf(", cached")
	}
	fmt.Printf(")\n")
	fmt.Printf("metric            %s\n", snap.Workload)
	fmt.Printf("method            %s\n", snap.Method)
	fmt.Printf("failure rate      %.4g\n", res.Pf)
	if res.RelErr99 == nil {
		fmt.Printf("relerr (99%% CI)   inf (no failures observed)\n")
	} else {
		fmt.Printf("relerr (99%% CI)   %.2f%%\n", 100**res.RelErr99)
	}
	fmt.Printf("failures          %d / %d stage-2 samples\n", res.Failures, res.N)
	fmt.Printf("simulations       stage1 %d + stage2 %d = %d\n",
		res.Stage1Sims, res.Stage2Sims, res.TotalSims)
	fmt.Printf("wall time         %v (round trip)\n", elapsed.Round(time.Millisecond))
	if snap.Elapsed > 0 {
		fmt.Printf("server time       %.3fs\n", snap.Elapsed)
	}
}

// watchRemote renders the job's SSE progress events as the same
// in-place status line the local -watch mode draws.
func watchRemote(ctx context.Context, c *client.Client, id string) {
	wrote := false
	err := c.Events(ctx, id, -1, func(ev client.Event) error {
		if ev.Name == wire.EvJobDone || ev.Name == "job.failed" || ev.Name == "job.cancelled" {
			return errWatchDone
		}
		if ev.Name != wire.EvProgress {
			return nil
		}
		var fields map[string]any
		if json.Unmarshal(ev.Data, &fields) != nil {
			return nil
		}
		stage, _ := fields["stage"].(string)
		line := fmt.Sprintf("%s %d/%d", stage, int(watchNum(fields, "n")), int(watchNum(fields, "total")))
		if pf, ok := fields["pf"]; ok {
			line += fmt.Sprintf("  pf %.3g", watchFloat(pf))
			if re := watchNum(fields, "relerr99"); !math.IsInf(re, 0) && re > 0 {
				line += fmt.Sprintf(" ±%.1f%%", 100*re)
			}
		}
		line += fmt.Sprintf("  %.0f sims/s  eta %.1fs", watchNum(fields, "sims_per_sec"), watchNum(fields, "eta_seconds"))
		fmt.Fprintf(os.Stderr, "\r\x1b[K%s", line)
		wrote = true
		return nil
	})
	if wrote {
		fmt.Fprint(os.Stderr, "\n")
	}
	if err != nil && !errors.Is(err, errWatchDone) && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "sramfail: event stream:", err)
	}
}

var errWatchDone = errors.New("watch done")
