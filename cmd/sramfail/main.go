// Command sramfail estimates the failure rate of the built-in 6-T SRAM
// cell metrics with any of the library's estimators.
//
// Usage:
//
//	sramfail -metric rnm -method g-s -k 1000 -n 10000 -seed 1
//	sramfail -metric readcurrent -method mnis -n 10000
//	sramfail -metric wnm -method g-s -target 0.05 -n 200000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	var (
		metricName = flag.String("metric", "rnm", "metric: "+strings.Join(repro.WorkloadNames(), ", "))
		methodName = flag.String("method", "g-s", "estimator: mc, mis, mnis, g-c, g-s or blockade")
		k          = flag.Int("k", 0, "first-stage budget (0 = method default)")
		n          = flag.Int("n", 10000, "second-stage samples (cap when -target is set)")
		target     = flag.Float64("target", 0, "stop when the 99% relative error reaches this (0 = fixed N)")
		seed       = flag.Int64("seed", 1, "RNG seed")
		quadratic  = flag.Bool("quadratic", false, "use a quadratic response surface for the starting point")
		workers    = flag.Int("workers", 0, "evaluation-pool workers for every method (0 = all cores)")
		mixture    = flag.Int("mixture", 0, "Gaussian-mixture components for the G-C/G-S distortion (0/1 = single Normal)")
		teleOut    = flag.String("telemetry", "", "write structured run events (JSONL) to this file")
		traceOut   = flag.String("trace", "", "write a span trace to this file (Chrome trace JSON, or JSONL with a .jsonl suffix)")
		reportOut  = flag.String("report", "", "write the statistical run-report (JSON) to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address during the run")
		stats      = flag.Bool("stats", false, "print the run-telemetry metric table after the run")
		watch      = flag.Bool("watch", false, "render live progress (stage, samples, running Pf, sims/s, ETA) as an in-place status line on stderr")
		remote     = flag.String("remote", "", "submit the job to this sramserverd base URL instead of estimating locally")
		distribute = flag.Bool("distribute", false, "with -remote: shard the job across the server's registered workers")
		idemKey    = flag.String("idempotency-key", "", "with -remote: Idempotency-Key for at-most-once submission")
		watchClu   = flag.Bool("watch-cluster", false, "with -remote: render the live fleet dashboard (GET /v1/cluster + global event stream) instead of submitting a job")
	)
	flag.Parse()

	if *watchClu {
		if *remote == "" {
			fatal(errors.New("-watch-cluster needs -remote (the dashboard reads the server's /v1/cluster)"))
		}
		watchCluster(*remote)
		return
	}
	if *remote != "" {
		runRemote(*remote, remoteJob{
			workload: *metricName, method: *methodName,
			k: *k, n: *n, target: *target, seed: *seed,
			quadratic: *quadratic, workers: *workers, mixture: *mixture,
			distribute: *distribute, idemKey: *idemKey, watch: *watch,
		})
		return
	}
	if *distribute {
		fatal(errors.New("-distribute needs -remote (local runs already use every core)"))
	}

	metric, err := repro.WorkloadByName(*metricName)
	if err != nil {
		fatal(err)
	}
	method, err := repro.ParseMethod(*methodName)
	if err != nil {
		fatal(err)
	}

	cli, err := telemetry.StartCLI(*teleOut, *traceOut, *debugAddr, *stats)
	if err != nil {
		fatal(err)
	}

	// -watch rides the same live event bus the server streams over SSE:
	// a registry (created on demand), a bus on it, and a renderer
	// goroutine turning "progress" events into one in-place status line.
	reg := cli.Registry
	var watchStop func()
	if *watch {
		if reg == nil {
			reg = telemetry.New()
		}
		watchStop = startWatch(reg)
	}

	// Ctrl-C cancels the run at the next evaluation chunk; a second
	// ctrl-C kills the process outright (NotifyContext stops catching
	// once cancelled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := repro.EstimateContext(ctx, metric, repro.Options{
		Method: method, K: *k, N: *n, Target: *target,
		Seed: *seed, Quadratic: *quadratic, Workers: *workers,
		Mixture: *mixture, Telemetry: reg,
	})
	if watchStop != nil {
		watchStop()
	}
	if errors.Is(err, context.Canceled) {
		cli.Close()
		fmt.Fprintf(os.Stderr, "sramfail: interrupted after %d simulations\n", res.TotalSims)
		os.Exit(130)
	}
	if err != nil {
		cli.Close()
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("metric            %s\n", *metricName)
	fmt.Printf("method            %s\n", method)
	fmt.Printf("failure rate      %.4g\n", res.Pf)
	if math.IsInf(res.RelErr99, 1) {
		fmt.Printf("relerr (99%% CI)   inf (no failures observed)\n")
	} else {
		fmt.Printf("relerr (99%% CI)   %.2f%%\n", 100*res.RelErr99)
	}
	fmt.Printf("failures          %d / %d stage-2 samples\n", res.Failures, res.N)
	fmt.Printf("simulations       stage1 %d + stage2 %d = %d\n",
		res.Stage1Sims, res.Stage2Sims, res.TotalSims)
	fmt.Printf("wall time         %v\n", elapsed.Round(time.Millisecond))
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("solve throughput  %.0f sims/s\n", float64(res.TotalSims)/secs)
	}

	if rep := res.Report; rep != nil {
		fmt.Println()
		rep.WriteText(os.Stdout)
		if *reportOut != "" {
			f, err := os.Create(*reportOut)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}

	if cli.Registry != nil {
		fmt.Println()
		// The footer's throughput comes from the same "progress" scope
		// estimator that feeds the SSE streams and the server's status
		// JSON, so every surface agrees on the rate.
		if rate := cli.Registry.Scope(wire.ScopeProgress).Gauge("sims_per_sec").Value(); rate > 0 {
			fmt.Printf("stage throughput  %.0f samples/s (live estimator)\n\n", rate)
		}
		cli.Registry.WriteTable(os.Stdout)
	}
	if err := cli.Close(); err != nil {
		fatal(err)
	}
}

// startWatch installs a live event bus on reg and starts the terminal
// renderer: each "progress" event overwrites one stderr status line.
// The returned stop function ends the stream, waits for the renderer,
// and finishes the line so the result table starts on a fresh row.
func startWatch(reg *telemetry.Registry) func() {
	bus := reg.Bus()
	if bus == nil {
		bus = telemetry.NewBus(0)
		reg.SetBus(bus)
	}
	sub := bus.Subscribe(256)
	done := make(chan struct{})
	go func() {
		defer close(done)
		wrote := false
		for ev := range sub.Events() {
			if ev.Name != wire.EvProgress {
				continue
			}
			stage, _ := ev.Fields["stage"].(string)
			n := watchNum(ev.Fields, "n")
			total := watchNum(ev.Fields, "total")
			line := fmt.Sprintf("%s %d/%d", stage, int(n), int(total))
			if pf, ok := ev.Fields["pf"]; ok {
				line += fmt.Sprintf("  pf %.3g", watchFloat(pf))
				if re := watchNum(ev.Fields, "relerr99"); !math.IsInf(re, 0) && re > 0 {
					line += fmt.Sprintf(" ±%.1f%%", 100*re)
				}
			}
			line += fmt.Sprintf("  %.0f sims/s  eta %.1fs", watchNum(ev.Fields, "sims_per_sec"), watchNum(ev.Fields, "eta_seconds"))
			// \r + clear-to-end keeps a shrinking line from leaving
			// stale characters behind.
			fmt.Fprintf(os.Stderr, "\r\x1b[K%s", line)
			wrote = true
		}
		if wrote {
			fmt.Fprint(os.Stderr, "\n")
		}
	}()
	return func() {
		sub.Close()
		<-done
	}
}

// watchNum reads a numeric progress field (0 when absent).
func watchNum(fields map[string]any, key string) float64 {
	return watchFloat(fields[key])
}

func watchFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sramfail:", err)
	os.Exit(1)
}
