// Command sramworkerd is a distributed-estimation worker: it polls a
// sramserverd coordinator (started with -dist) for chunk-range leases,
// replays each job's deterministic first stage locally, evaluates the
// leased sample range, and streams the partial statistics back. Any
// number of workers can serve one coordinator; adding or killing
// workers never changes the estimate — only how fast it arrives.
//
//	sramworkerd -coordinator http://host:8080 -id worker-a
//
// The worker carries its own observability plane. Each lease is
// evaluated under the trace context the coordinator granted and the
// finished spans upload with the result, so the job's stitched trace
// spans the whole fleet. Lease renewals federate the worker's metrics
// and health alerts back to the coordinator. Locally, -event-ring keeps
// a flight-recorder ring of the worker's last events, dumped to
// -flight-dir on a watchdog alert or SIGQUIT (with -alert-profile, an
// alert also captures pprof CPU+heap profiles there). Logs are
// structured (log/slog) behind -log-format text|json.
//
// SIGINT/SIGTERM stop the worker after its current chunk; the
// coordinator reassigns any unfinished lease once it expires. SIGQUIT
// dumps the flight recorder and keeps working.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obslog"
	"repro/internal/telemetry"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8080", "coordinator base URL (sramserverd -dist)")
	id := flag.String("id", "", "worker ID (default: hostname-pid)")
	cores := flag.Int("cores", runtime.NumCPU(), "evaluation cores reported to the coordinator")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle delay between lease polls")
	debugAddr := flag.String("debug-addr", "", "serve /metrics (Prometheus text) on this address")
	eventRing := flag.Int("event-ring", 256, "flight-recorder ring size (retained worker events; 0 disables the event plane)")
	flightDir := flag.String("flight-dir", "", "write flight-recorder dumps (JSONL) into this directory on watchdog alert or SIGQUIT")
	alertProfile := flag.Duration("alert-profile", 0, "capture pprof CPU (this long) + heap profiles into -flight-dir on the first watchdog alert of each kind (0 disables)")
	logFormat := flag.String("log-format", obslog.FormatText, "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	log, err := obslog.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sramworkerd:", err)
		os.Exit(1)
	}
	log = log.With("service", "sramworkerd", "worker", *id)

	reg := telemetry.New()
	// The event plane: a ring bus on the worker's registry. The health
	// watchdog evaluates it mid-lease, RunWorker forwards its health.*
	// alerts to the coordinator on renewals, and the retained ring is
	// the flight recorder dumped below.
	var bus *telemetry.Bus
	if *eventRing > 0 {
		bus = telemetry.NewBus(*eventRing)
		reg.SetBus(bus)
	}
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sramworkerd:", err)
			os.Exit(1)
		}
	}
	dump := func(reason string) string {
		if bus == nil || *flightDir == "" {
			return ""
		}
		name := fmt.Sprintf("worker-%s-%s-%s.jsonl",
			sanitize(*id), sanitize(reason), time.Now().UTC().Format("20060102T150405.000000000"))
		path := filepath.Join(*flightDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Warn("flight dump failed", "error", err.Error())
			return ""
		}
		defer f.Close()
		if err := bus.WriteJSONL(f); err != nil {
			log.Warn("flight dump failed", "error", err.Error())
			return ""
		}
		return path
	}
	profiler := telemetry.NewProfiler(*flightDir, *alertProfile)
	if *alertProfile <= 0 {
		profiler = nil
	}
	// The watchdog turns the worker's own statistical pathologies into
	// health.* events (forwarded to the coordinator's firehose via the
	// renew heartbeat) and snapshots the flight ring + profiles locally.
	watchdog := telemetry.StartWatchdog(reg, telemetry.WatchdogConfig{
		OnAlert: func(a telemetry.Alert) {
			log.Warn("watchdog alert", "kind", a.Kind, "detail", a.Detail)
			if path := dump("alert-" + a.Kind); path != "" {
				log.Info("flight dump written", "path", path)
			}
			if profiler != nil {
				//reprolint:ignore goroutinelife profile capture self-terminates after the sampling window; joining it would stall alert handling
				go profiler.Capture("worker-" + sanitize(*id) + "-" + a.Kind)
			}
		},
	})
	defer watchdog.Stop()

	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.MetricsHandler())
		//reprolint:ignore goroutinelife debug listener lives for the process; ListenAndServe returns on process exit
		go func() {
			srv := &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Warn("debug server failed", "error", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the flight recorder and keeps working, mirroring
	// sramserverd.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			if path := dump("sigquit"); path != "" {
				log.Info("SIGQUIT flight dump", "path", path)
			} else {
				log.Info("SIGQUIT flight dump skipped (no -flight-dir or -event-ring)")
			}
		}
	}()

	fmt.Printf("sramworkerd: %s polling %s (%d cores)\n", *id, *coordinator, *cores)
	err = dist.RunWorker(ctx, dist.WorkerConfig{
		Coordinator:  *coordinator,
		ID:           *id,
		Cores:        *cores,
		PollInterval: *poll,
		Registry:     reg,
		Log:          log,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Error("worker failed", "error", err.Error())
		os.Exit(1)
	}
	log.Info("stopped")
}

// sanitize keeps file-name components portable: anything outside
// [a-zA-Z0-9._-] becomes '-'.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}
