// Command sramworkerd is a distributed-estimation worker: it polls a
// sramserverd coordinator (started with -dist) for chunk-range leases,
// replays each job's deterministic first stage locally, evaluates the
// leased sample range, and streams the partial statistics back. Any
// number of workers can serve one coordinator; adding or killing
// workers never changes the estimate — only how fast it arrives.
//
//	sramworkerd -coordinator http://host:8080 -id worker-a
//
// SIGINT/SIGTERM stop the worker after its current chunk; the
// coordinator reassigns any unfinished lease once it expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/telemetry"
)

func main() {
	coordinator := flag.String("coordinator", "http://localhost:8080", "coordinator base URL (sramserverd -dist)")
	id := flag.String("id", "", "worker ID (default: hostname-pid)")
	cores := flag.Int("cores", runtime.NumCPU(), "evaluation cores reported to the coordinator")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle delay between lease polls")
	debugAddr := flag.String("debug-addr", "", "serve /metrics (Prometheus text) on this address")
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	reg := telemetry.New()
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.MetricsHandler())
		go func() {
			srv := &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "sramworkerd: debug server:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("sramworkerd: %s polling %s (%d cores)\n", *id, *coordinator, *cores)
	err := dist.RunWorker(ctx, dist.WorkerConfig{
		Coordinator:  *coordinator,
		ID:           *id,
		Cores:        *cores,
		PollInterval: *poll,
		Registry:     reg,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "sramworkerd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "sramworkerd: stopped")
}
