package repro

// Integration tests: full pipelines across substrate boundaries — the
// circuit simulator feeding real metrics into every estimator, with
// cross-validation between independent estimates. Budgets are scaled so
// `go test .` stays fast; -short skips the slowest ones.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/spice"
	"repro/internal/sram"
	"repro/internal/stat"
)

// The dual read-current workload has a grid-quadrature reference of
// ≈1.6e-6; G-S must land on it, and G-C must land on ≈ half of it (the
// single-lobe trap) — the paper's Table II contrast as a regression test.
func TestIntegrationDualReadTable2Shape(t *testing.T) {
	metric := DualReadCurrentWorkload()

	gs, err := Estimate(metric, Options{Method: GS, K: 1500, N: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gc, err := Estimate(metric, Options{Method: GC, K: 1500, N: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const reference = 1.59e-6 // 2·Φ(−4.8) − Φ(−4.8)², the calibrated L
	if math.Abs(gs.Pf-reference)/reference > 0.35 {
		t.Fatalf("G-S %v should track the reference %v", gs.Pf, reference)
	}
	ratio := gc.Pf / reference
	if ratio < 0.3 || ratio > 0.75 {
		t.Fatalf("G-C should report roughly one lobe (~0.5×): got ratio %.2f", ratio)
	}
}

// The run-report on the real 6-T cell must show a healthy run for both
// Gibbs variants: converged chain (split R-hat < 1.1) and live
// importance weights (weight ESS > 0).
func TestIntegrationRunReport6T(t *testing.T) {
	metric := ReadCurrentWorkload()
	for _, m := range []Method{GC, GS} {
		res, err := Estimate(metric, Options{Method: m, K: 600, N: 4000, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		rep := res.Report
		if rep == nil {
			t.Fatalf("%s: no run-report", m)
		}
		if rep.RHat == nil {
			t.Fatalf("%s: R-hat unavailable: %s", m, rep.RHatNote)
		}
		if *rep.RHat >= 1.1 {
			t.Fatalf("%s: split R-hat %.3f, want < 1.1 on the 6-T workload", m, *rep.RHat)
		}
		if rep.WeightESS <= 0 {
			t.Fatalf("%s: weight ESS %v, want > 0", m, rep.WeightESS)
		}
	}
}

// The Gibbs distortion must place its samples inside the real circuit's
// failure region.
func TestIntegrationGibbsSamplesFail(t *testing.T) {
	metric := sram.ReadCurrentWorkload()
	counter := mc.NewCounter(metric)
	rng := rand.New(rand.NewSource(4))
	res, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
		Coord: gibbs.Spherical, K: 120, N: 10,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, s := range res.Samples {
		if metric.Value(s) >= 0 {
			bad++
		}
	}
	// The recovery scan may leave an occasional passing sample when an
	// arc interval misses; the bulk must fail.
	if frac := float64(bad) / float64(len(res.Samples)); frac > 0.05 {
		t.Fatalf("%.0f%% of Gibbs samples pass — chain is not tracking Ω", 100*frac)
	}
}

// The same cell built through the netlist parser and through the sram
// package must agree on the solved read state.
func TestIntegrationNetlistMatchesBuilder(t *testing.T) {
	ckt, err := spice.ParseNetlistString(`
.model ndrv nmos vt0=0.32 kp=300u w=240n l=100n lambda=0.10 n=1.30
.model nacc nmos vt0=0.35 kp=300u w=130n l=100n lambda=0.10 n=1.30
.model pld  pmos vt0=0.33 kp=80u  w=120n l=100n lambda=0.12 n=1.35
Vdd vdd 0 1.0
Vwl wl 0 1.0
Vbl bl 0 1.0
Vblb blb 0 1.0
M1 q qb 0 0 ndrv
M2 qb q 0 0 ndrv
M3 bl wl q 0 nacc
M4 blb wl qb 0 nacc
M5 q qb vdd vdd pld
M6 qb q vdd vdd pld
`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := ckt.SolveDC(&spice.DCOptions{InitialGuess: map[string]float64{"q": 0, "qb": 1}})
	if err != nil {
		t.Fatal(err)
	}
	cell := sram.Default90nm()
	q, qb, err := cell.StaticNodeVoltages(sram.ReadConfig, [sram.NumTransistors]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage("q")-q) > 1e-6 || math.Abs(op.Voltage("qb")-qb) > 1e-6 {
		t.Fatalf("netlist (%v, %v) vs builder (%v, %v)",
			op.Voltage("q"), op.Voltage("qb"), q, qb)
	}
}

// Blockade through the facade on a circuit metric must agree with the
// importance-sampling estimate of the same (moderate) probability. A
// loosened read-current spec raises Pf so both estimators converge with
// small budgets.
func TestIntegrationBlockadeVsGS(t *testing.T) {
	if testing.Short() {
		t.Skip("moderately slow circuit integration")
	}
	cell := sram.FastRead90nm()
	metric := &sram.Metric{
		Cell: cell, Kind: sram.ReadCurrent, Spec: 42e-6,
		Which: []int{sram.M1, sram.M3}, Scale: 1e6,
	}
	counter := mc.NewCounter(metric)
	bl, err := baselines.Blockade(counter, baselines.BlockadeOptions{
		Train: 600, N: 150000, TrainScale: 1.3,
	}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Estimate(metric, Options{Method: GS, K: 400, N: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if bl.Pf <= 0 {
		t.Fatal("blockade found no failures")
	}
	if math.Abs(bl.Pf-gs.Pf)/gs.Pf > 0.5 {
		t.Fatalf("blockade %v vs G-S %v disagree", bl.Pf, gs.Pf)
	}
	// Blockade's reason to exist: far fewer sims than candidates.
	total := bl.TrainSims + bl.TailSims
	if total > int64(bl.N)/3 {
		t.Fatalf("blockade did not block: %d sims of %d candidates", total, bl.N)
	}
}

// The transient access-time workload must correlate with the static read
// current: cells ordered by current are inversely ordered by delay.
func TestIntegrationStaticDynamicConsistency(t *testing.T) {
	cell := sram.FastRead90nm()
	type pt struct{ x1, x3 float64 }
	pts := []pt{{0, 0}, {2, 1}, {4, 2}, {5, 4}}
	var lastI, lastT float64 = math.Inf(1), -1
	for _, p := range pts {
		var d [sram.NumTransistors]float64
		d[sram.M1] = cell.SigmaVth * p.x1
		d[sram.M3] = cell.SigmaVth * p.x3
		i, err := cell.ReadCurrent(d)
		if err != nil {
			t.Fatal(err)
		}
		at, err := cell.AccessTime(nil, d)
		if err != nil {
			t.Fatal(err)
		}
		if i >= lastI {
			t.Fatalf("read current should decrease along the weak path: %v -> %v", lastI, i)
		}
		if at <= lastT {
			t.Fatalf("access time should increase along the weak path: %v -> %v", lastT, at)
		}
		lastI, lastT = i, at
	}
}

// The importance-sampling identity: reweighting with the fitted distortion
// recovers the plain-MC estimate of a moderate-probability circuit event.
func TestIntegrationISIdentityOnCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("moderately slow circuit integration")
	}
	cell := sram.FastRead90nm()
	metric := &sram.Metric{
		Cell: cell, Kind: sram.ReadCurrent, Spec: 45e-6,
		Which: []int{sram.M1, sram.M3}, Scale: 1e6,
	} // Pf ~ 1e-3: plain MC feasible
	rng := rand.New(rand.NewSource(6))
	plain, err := mc.PlainMC(metric, 40000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	counter := mc.NewCounter(metric)
	res, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
		Coord: gibbs.Spherical, K: 300, N: 4000,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	tol := 4*plain.StdErr + 4*res.StdErr
	if math.Abs(plain.Pf-res.Pf) > tol {
		t.Fatalf("plain %v vs IS %v (tol %v)", plain.Pf, res.Pf, tol)
	}
	_ = stat.Z99
}
