package repro

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/surrogate"
)

// slowMetric burns a few microseconds of CPU per simulation (spinning,
// not sleeping — timer granularity would inflate a 64k-sample chunk far
// past the drain bound) so a mid-run cancellation lands while the
// estimator is still consuming budget.
type slowMetric struct {
	m    Metric
	spin int
}

func (s *slowMetric) Dim() int { return s.m.Dim() }
func (s *slowMetric) Value(x []float64) float64 {
	v := 1.0
	for i := 0; i < s.spin; i++ {
		v = math.Sqrt(v + float64(i))
	}
	if v < 0 {
		panic("unreachable")
	}
	return s.m.Value(x)
}

// cancelOptions gives every method a budget far beyond what fits in the
// test's cancellation window, so only a working ctx check can return.
func cancelOptions(m Method) Options {
	return Options{Method: m, K: 1 << 18, N: 1 << 22, Seed: 1, Workers: 2}
}

// Every method must return promptly with context.Canceled — and its
// partial simulation cost — when cancelled mid-run.
func TestEstimateContextCancelAllMethods(t *testing.T) {
	for _, m := range AllMethods() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			lin := &surrogate.Linear{W: []float64{1, 1}, B: 3}
			slow := &slowMetric{m: lin, spin: 2000}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			res, err := EstimateContext(ctx, slow, cancelOptions(m))
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			// Generous bound (slow CI, -race): the budgets above would
			// take minutes uncancelled, so finishing inside it proves
			// the cancel cut the run short within a chunk.
			if elapsed > 30*time.Second {
				t.Fatalf("cancel took %v, not chunk-prompt", elapsed)
			}
			if res == nil {
				t.Fatal("cancelled run must still report partial cost")
			}
			if res.TotalSims <= 0 {
				t.Fatalf("partial TotalSims = %d, want > 0", res.TotalSims)
			}
			if res.Pf != 0 || res.N != 0 {
				t.Fatalf("cancelled result must carry cost only, got Pf=%v N=%d", res.Pf, res.N)
			}
		})
	}
}

// An expired deadline surfaces as context.DeadlineExceeded with the
// same partial-cost contract.
func TestEstimateContextDeadline(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 3}
	slow := &slowMetric{m: lin, spin: 2000}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	res, err := EstimateContext(ctx, slow, cancelOptions(GS))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if res == nil || res.TotalSims <= 0 {
		t.Fatalf("deadline abort must report partial cost, got %+v", res)
	}
}

// An uncancelled EstimateContext must be bit-identical to Estimate for
// every worker count: the context checks sit between chunks and never
// consume randomness.
func TestEstimateContextDeterminism(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 4.5}
	for _, m := range AllMethods() {
		opts := Options{Method: m, Seed: 11, K: 400, N: 4000}
		if m == Subset {
			opts.K = 500 // particles; the ladder needs p0·K ≥ 2
		}
		workerSets := []int{1, 3}
		if m == MC {
			// MC switches algorithm (sequential vs parallel) at
			// Workers == 1 by design; compare inside the parallel family.
			workerSets = []int{2, 3}
		}
		opts.Workers = workerSets[0]
		base, err := Estimate(lin, opts)
		if err != nil {
			t.Fatalf("%s: baseline: %v", m, err)
		}
		for _, w := range workerSets {
			o := opts
			o.Workers = w
			ctx, cancel := context.WithCancel(context.Background())
			res, err := EstimateContext(ctx, lin, o)
			cancel()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m, w, err)
			}
			if res.Pf != base.Pf || res.N != base.N || res.TotalSims != base.TotalSims {
				t.Fatalf("%s workers=%d: Pf=%v N=%d sims=%d, want Pf=%v N=%d sims=%d",
					m, w, res.Pf, res.N, res.TotalSims, base.Pf, base.N, base.TotalSims)
			}
		}
	}
}

// Validate must report every out-of-range field in one error.
func TestOptionsValidateAllAtOnce(t *testing.T) {
	bad := Options{
		Method: Method("bogus"), K: -1, N: -2, Target: -0.5,
		TraceEvery: -3, Workers: -4, Mixture: -5,
		StartPoint: []float64{0, math.Inf(1)},
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("must wrap ErrInvalidOptions: %v", err)
	}
	if !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("bad method must wrap ErrUnknownMethod: %v", err)
	}
	msg := err.Error()
	for _, field := range []string{"Method", "K:", "N:", "Target:", "TraceEvery:", "Workers:", "Mixture:", "StartPoint[1]"} {
		if !strings.Contains(msg, field) {
			t.Fatalf("message missing %q: %s", field, msg)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options must validate: %v", err)
	}
	if _, err := Estimate(&surrogate.Linear{W: []float64{1}, B: 3}, Options{K: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("Estimate must reject invalid options: %v", err)
	}
}

// The method set and the workload registry are what the estimation
// service's introspection endpoints serve.
func TestMethodSetAndWorkloadRegistry(t *testing.T) {
	if len(AllMethods()) != 7 {
		t.Fatalf("AllMethods lists %d methods", len(AllMethods()))
	}
	for _, m := range AllMethods() {
		if !m.Valid() {
			t.Fatalf("%s must be valid", m)
		}
		if m.Describe() == "" {
			t.Fatalf("%s has no description", m)
		}
		if got, err := ParseMethod(m.String()); err != nil || got != m {
			t.Fatalf("round-trip %s: %v", m, err)
		}
	}
	if Method("bogus").Valid() {
		t.Fatal("bogus must be invalid")
	}
	if _, err := ParseMethod("bogus"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("ParseMethod must wrap ErrUnknownMethod: %v", err)
	}

	ws := Workloads()
	wantDims := map[string]int{"rnm": 6, "wnm": 6, "readcurrent": 2, "dualread": 2, "access": 2}
	if len(ws) != len(wantDims) {
		t.Fatalf("Workloads lists %d entries", len(ws))
	}
	for i, w := range ws {
		if wantDims[w.Name] != w.Dim {
			t.Fatalf("%s: dim %d, want %d", w.Name, w.Dim, wantDims[w.Name])
		}
		if w.Description == "" || w.New == nil {
			t.Fatalf("%s: incomplete registry entry", w.Name)
		}
		if WorkloadNames()[i] != w.Name {
			t.Fatal("WorkloadNames order must match Workloads")
		}
		metric, err := WorkloadByName(w.Name)
		if err != nil || metric.Dim() != w.Dim {
			t.Fatalf("WorkloadByName(%s): %v", w.Name, err)
		}
	}
	if _, err := WorkloadByName("bogus"); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("must wrap ErrUnknownWorkload: %v", err)
	}
}
