package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/gibbs"
)

// z90 is the two-sided 90%-confidence Normal quantile used by the
// paper-style figure of merit (simulations to reach 90% confidence at
// 10% relative error).
const z90 = 1.6448536269514722

// RunReport bundles the statistical health diagnostics of one estimation
// run: chain convergence (split-chain Gelman–Rubin R-hat, chain ESS),
// importance-weight health (weight ESS, max-weight fraction, Hill tail
// index), the per-stage cost split, and the paper's figure of merit —
// projected simulations to reach 90% confidence. It is attached to every
// successful Result and is what the -report CLI flag and the job
// service's /report endpoint render.
//
// Every statistical field is derived deterministically from the run's
// samples, so for a fixed seed the report is byte-identical across
// worker counts once the wall-clock fields are zeroed (Deterministic).
type RunReport struct {
	// Method and Seed identify the run.
	Method string `json:"method"`
	Seed   int64  `json:"seed"`

	// Pf, StdErr and RelErr99 restate the headline estimate; RelErr99
	// is null until the estimate is nonzero (it would be +Inf).
	Pf       float64  `json:"pf"`
	StdErr   float64  `json:"stderr"`
	RelErr99 *float64 `json:"relerr99"`

	// RHat is the worst per-coordinate split-chain Gelman–Rubin
	// statistic of the first-stage Gibbs samples (Gibbs methods only;
	// null otherwise or when the chain is degenerate — RHatNote then
	// says why). Values above 1.1 mean the chain had not converged.
	RHat     *float64 `json:"rhat,omitempty"`
	RHatNote string   `json:"rhat_note,omitempty"`
	// ChainESS is the autocorrelation-adjusted effective sample size of
	// the Gibbs chain (Gibbs methods only).
	ChainESS *float64 `json:"chain_ess,omitempty"`

	// WeightESS is the Kish effective sample size of the second-stage
	// importance weights; MaxWeightFrac the share of the estimate
	// carried by the single largest weight; WeightTailIndex the Hill
	// tail-index estimate over the largest weights (≤ 1 flags a
	// heavy-tailed, unreliable weight distribution; null when too few
	// distinct weights were observed).
	WeightESS       float64  `json:"weight_ess"`
	MaxWeightFrac   float64  `json:"max_weight_frac"`
	WeightTailIndex *float64 `json:"weight_tail_index,omitempty"`

	// Cost accounting: the simulation split the paper's tables use,
	// plus wall time per stage. The seconds fields are the only
	// non-deterministic part of the report.
	Stage1Sims    int64   `json:"stage1_sims"`
	Stage2Sims    int64   `json:"stage2_sims"`
	TotalSims     int64   `json:"total_sims"`
	Stage1Seconds float64 `json:"stage1_seconds"`
	Stage2Seconds float64 `json:"stage2_seconds"`
	TotalSeconds  float64 `json:"total_seconds"`

	// SimsTo90 is the paper-style figure of merit: the projected total
	// simulation count for the run to reach 90% confidence (±10% at
	// z = 1.645), assuming the standard error keeps its 1/√N decay.
	// 0 when the run has no estimate to project from.
	SimsTo90 int64 `json:"sims_to_90,omitempty"`

	// Warnings lists human-readable statistical health flags (empty for
	// a clean run).
	Warnings []string `json:"warnings,omitempty"`
}

// buildReport derives the run-report from a finished result. It never
// fails: degenerate inputs turn into null fields and warnings.
func buildReport(res *Result, o Options, totalSeconds float64) *RunReport {
	r := &RunReport{
		Method: string(o.Method),
		Seed:   o.Seed,
		Pf:     res.Pf,
		StdErr: res.StdErr,

		WeightESS: res.WeightESS,

		Stage1Sims:    res.Stage1Sims,
		Stage2Sims:    res.Stage2Sims,
		TotalSims:     res.TotalSims,
		Stage1Seconds: res.Stage1Seconds,
		Stage2Seconds: res.Stage2Seconds,
		TotalSeconds:  totalSeconds,
	}
	if v := res.RelErr99; !math.IsNaN(v) && !math.IsInf(v, 0) {
		r.RelErr99 = &v
	}
	if res.Failures == 0 && res.N > 0 {
		r.warn("no failures observed: the estimate is zero and its relative error unbounded")
	}

	if len(res.GibbsSamples) > 0 {
		if rhat, err := gibbs.MaxSplitRHat(res.GibbsSamples); err != nil {
			r.RHatNote = err.Error()
		} else {
			r.RHat = &rhat
			if rhat > 1.1 {
				r.warn(fmt.Sprintf("Gibbs chain not converged: split R-hat %.3f > 1.1 — raise K or check the start point", rhat))
			}
		}
		if ess, err := gibbs.EffectiveSampleSize(res.GibbsSamples); err == nil {
			r.ChainESS = &ess
		}
	}

	// Weight health. Σw = Pf·N because Pf is the mean weight.
	if wsum := res.Pf * float64(res.N); wsum > 0 && res.MaxWeight > 0 {
		r.MaxWeightFrac = res.MaxWeight / wsum
		if r.MaxWeightFrac > 0.2 {
			r.warn(fmt.Sprintf("a single importance weight carries %.0f%% of the estimate — the distortion may miss part of the failure region", 100*r.MaxWeightFrac))
		}
	}
	if res.N > 0 && res.Failures > 0 && r.WeightESS > 0 && r.WeightESS < 0.01*float64(res.N) {
		r.warn(fmt.Sprintf("weight ESS %.1f is below 1%% of the %d second-stage samples", r.WeightESS, res.N))
	}
	if alpha, ok := hillTailIndex(res.TopWeights); ok {
		r.WeightTailIndex = &alpha
		if alpha <= 1 {
			r.warn(fmt.Sprintf("heavy-tailed importance weights (Hill tail index %.2f ≤ 1): the variance estimate is unreliable", alpha))
		}
	}

	r.SimsTo90 = simsTo90(res)
	return r
}

// warn appends one warning line.
func (r *RunReport) warn(msg string) { r.Warnings = append(r.Warnings, msg) }

// hillTailIndex computes the Hill estimator of the weight tail index
// from the largest observed weights (descending order):
// α̂ = (k−1) / Σ_{i<k} ln(w_i / w_k). It needs at least five distinct
// positive weights to say anything; ok is false otherwise.
func hillTailIndex(top []float64) (alpha float64, ok bool) {
	const minTail = 5
	if len(top) < minTail {
		return 0, false
	}
	wk := top[len(top)-1]
	if wk <= 0 {
		return 0, false
	}
	s := 0.0
	for _, w := range top[:len(top)-1] {
		s += math.Log(w / wk)
	}
	if s <= 0 { // all weights equal — no tail to measure
		return 0, false
	}
	return float64(len(top)-1) / s, true
}

// simsTo90 projects the total simulation count needed to reach the
// paper's 90%-confidence bar (z90·stderr ≤ 10%·Pf), assuming the
// standard error keeps its 1/√N decay: N′ = N·(z90·stderr/(0.1·Pf))²,
// plus the already-spent first stage. Runs with no estimate (or no
// stderr) report 0.
func simsTo90(res *Result) int64 {
	if res.Pf <= 0 || res.StdErr <= 0 || res.N <= 0 {
		return 0
	}
	if math.IsNaN(res.StdErr) || math.IsInf(res.StdErr, 0) {
		return 0
	}
	ratio := z90 * res.StdErr / (0.1 * res.Pf)
	n2 := float64(res.N) * ratio * ratio
	if n2 > math.MaxInt64/2 {
		return 0
	}
	return res.Stage1Sims + int64(math.Ceil(n2))
}

// Deterministic returns a copy of the report with every wall-clock field
// zeroed — the part that is byte-identical across worker counts and
// machines for a fixed seed.
func (r *RunReport) Deterministic() *RunReport {
	c := *r
	c.Stage1Seconds, c.Stage2Seconds, c.TotalSeconds = 0, 0, 0
	return &c
}

// WriteJSON renders the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable summary the CLIs print.
func (r *RunReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "run report (%s, seed %d)\n", r.Method, r.Seed)
	if r.RelErr99 != nil {
		fmt.Fprintf(w, "  estimate   Pf %.6e  stderr %.3e  relerr99 %.2f%%\n", r.Pf, r.StdErr, 100**r.RelErr99)
	} else {
		fmt.Fprintf(w, "  estimate   Pf %.6e  stderr %.3e  relerr99 n/a\n", r.Pf, r.StdErr)
	}
	switch {
	case r.RHat != nil && r.ChainESS != nil:
		fmt.Fprintf(w, "  chain      split R-hat %.4f  ESS %.1f\n", *r.RHat, *r.ChainESS)
	case r.RHat != nil:
		fmt.Fprintf(w, "  chain      split R-hat %.4f\n", *r.RHat)
	case r.RHatNote != "":
		fmt.Fprintf(w, "  chain      R-hat unavailable: %s\n", r.RHatNote)
	}
	fmt.Fprintf(w, "  weights    ESS %.1f  max frac %.4f", r.WeightESS, r.MaxWeightFrac)
	if r.WeightTailIndex != nil {
		fmt.Fprintf(w, "  tail index %.2f", *r.WeightTailIndex)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  cost       stage1 %d sims (%.2fs)  stage2 %d sims (%.2fs)  total %d (%.2fs)\n",
		r.Stage1Sims, r.Stage1Seconds, r.Stage2Sims, r.Stage2Seconds, r.TotalSims, r.TotalSeconds)
	if r.SimsTo90 > 0 {
		fmt.Fprintf(w, "  sims to 90%% confidence: %d\n", r.SimsTo90)
	}
	for _, msg := range r.Warnings {
		fmt.Fprintf(w, "  warning: %s\n", msg)
	}
}
