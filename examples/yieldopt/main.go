// Yield optimization (the paper's concluding direction: "the Gibbs
// sampling technique can be further incorporated into a statistical
// optimization environment for accurate and efficient parametric yield
// optimization"): size the access transistors of the 6-T cell so the
// dual-sided read-current failure rate meets a target, using spherical
// Gibbs sampling as the yield oracle inside a bisection loop.
//
//	go run ./examples/yieldopt [-target 1e-7] [-seed 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/sram"
)

func main() {
	target := flag.Float64("target", 1e-7, "maximum acceptable failure probability")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	// Yield oracle: G-S estimate of the dual read-current failure rate
	// for a given access width.
	totalSims := int64(0)
	estimate := func(accessWidth float64) float64 {
		cell := sram.Default90nm()
		cell.Access.W = accessWidth
		metric := &sram.Metric{
			Cell: cell, Kind: sram.DualRead, Spec: sram.DualReadCurrentSpec,
			Which: []int{sram.M3, sram.M4}, Scale: 1e6,
		}
		counter := mc.NewCounter(metric)
		res, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
			Coord: gibbs.Spherical, K: 800, N: 4000,
		}, rand.New(rand.NewSource(*seed)))
		totalSims += counter.Count()
		if errors.Is(err, model.ErrNoFailureFound) {
			// No failure anywhere within the 10σ search radius: the
			// failure probability is below ~1e-23, i.e. effectively 0.
			return 0
		}
		if err != nil {
			log.Fatalf("W=%.0fnm: %v", accessWidth*1e9, err)
		}
		return res.Pf
	}

	fmt.Printf("target failure rate: %.2g\n\n", *target)
	fmt.Printf("%12s %14s\n", "Waccess", "Pf (G-S)")

	// Wider access ⇒ more read current ⇒ lower failure rate: bisection
	// over the width finds the minimum-area passing design.
	lo, hi := 130e-9, 200e-9
	pfLo := estimate(lo)
	fmt.Printf("%10.0fnm %14.3g\n", lo*1e9, pfLo)
	if pfLo <= *target {
		fmt.Println("\nbaseline design already meets the target")
		return
	}
	pfHi := estimate(hi)
	fmt.Printf("%10.0fnm %14.3g\n", hi*1e9, pfHi)
	if pfHi > *target {
		log.Fatalf("even W=%.0fnm misses the target (%.3g)", hi*1e9, pfHi)
	}
	for i := 0; i < 6; i++ {
		mid := 0.5 * (lo + hi)
		pf := estimate(mid)
		fmt.Printf("%10.0fnm %14.3g\n", mid*1e9, pf)
		if pf > *target {
			lo = mid
		} else {
			hi = mid
		}
	}
	fmt.Printf("\nminimum passing access width ≈ %.0f nm\n", hi*1e9)
	fmt.Printf("total transistor-level simulations spent: %d\n", totalSims)
	fmt.Println("\n(a brute-force yield oracle would need >1e7 simulations per probe)")
}
