// Noise-margin study (the paper's §V-A workload): estimate the read- and
// write-margin failure rates of the 6-T cell with all four importance
// sampling methods and compare their accuracy and cost — a miniature of
// the paper's Fig. 6/7 and Table I.
//
//	go run ./examples/noisemargin [-n 5000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 5000, "second-stage samples per method")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	workloads := []struct {
		name   string
		metric repro.Metric
	}{
		{"read noise margin (RNM)", repro.RNMWorkload()},
		{"write margin (WNM)", repro.WNMWorkload()},
	}

	for _, w := range workloads {
		fmt.Printf("\n=== %s ===\n", w.name)
		fmt.Printf("%-6s %12s %10s %14s\n", "method", "Pf", "relerr", "simulations")
		for _, m := range repro.Methods() {
			res, err := repro.Estimate(w.metric, repro.Options{
				Method: m,
				N:      *n,
				Seed:   *seed,
			})
			if err != nil {
				log.Fatalf("%s: %v", m, err)
			}
			fmt.Printf("%-6s %12.3g %9.1f%% %7d + %d\n",
				m, res.Pf, 100*res.RelErr99, res.Stage1Sims, res.Stage2Sims)
		}
	}
	fmt.Println("\nAll four methods agree on these well-behaved (single-lobe) failure")
	fmt.Println("regions; the Gibbs methods reach a given accuracy with fewer samples")
	fmt.Println("because they fit the covariance of the optimal distribution, not just")
	fmt.Println("its mean (paper §V-A).")
}
