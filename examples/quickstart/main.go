// Quickstart: estimate the read-noise-margin failure rate of the built-in
// 6-T SRAM cell with the paper's spherical Gibbs sampling (G-S) method.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The RNM workload simulates a 90 nm-class 6-T cell at every sample:
	// six independent Normal threshold mismatches, failing when the read
	// noise margin drops below the calibrated spec.
	metric := repro.RNMWorkload()

	res, err := repro.Estimate(metric, repro.Options{
		Method: repro.GS, // spherical Gibbs sampling (Algorithm 2 + 5)
		K:      300,      // first-stage Gibbs samples
		N:      2000,     // second-stage importance samples
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("estimated SRAM read failure rate: %.3g\n", res.Pf)
	fmt.Printf("99%% confidence relative error:    %.1f%%\n", 100*res.RelErr99)
	fmt.Printf("transistor-level simulations:     %d (stage 1) + %d (stage 2)\n",
		res.Stage1Sims, res.Stage2Sims)
	fmt.Printf("\nA brute-force Monte Carlo run would need roughly %.0f simulations\n",
		30/res.Pf)
	fmt.Println("for similar confidence; the two-stage Gibbs flow needed", res.TotalSims, ".")
}
