// Custom-metric example: plug your own performance model into the
// library through the public Metric interface. Here an analytic
// 8-transistor register-file cell model (a behavioural stand-in for a
// SPICE deck you might own) is analyzed with the two Gibbs variants and
// validated against the closed-form failure probability.
//
//	go run ./examples/customcell
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

// registerFileCell is a behavioural margin model of an 8-T register-file
// read port: the read margin degrades linearly with the read-stack
// threshold shifts and quadratically with the cross-coupled pair
// imbalance. Failure when margin < 0. Because the model is analytic we
// can also integrate the exact failure probability for comparison.
type registerFileCell struct {
	stackSens   [2]float64 // read-stack sensitivities (per σ)
	imbalance   float64    // quadratic imbalance coefficient
	nominal     float64    // nominal margin (in σ-units of the stack)
	imbalancedM int        // total number of mismatch coordinates
}

func newRegisterFileCell() *registerFileCell {
	return &registerFileCell{
		stackSens:   [2]float64{1.0, 0.8},
		imbalance:   0.05,
		nominal:     5.4,
		imbalancedM: 4,
	}
}

// Dim implements repro.Metric: 2 read-stack + 2 cross-couple coordinates.
func (c *registerFileCell) Dim() int { return c.imbalancedM }

// Value implements repro.Metric.
func (c *registerFileCell) Value(x []float64) float64 {
	m := c.nominal - c.stackSens[0]*x[0] - c.stackSens[1]*x[1]
	d := x[2] - x[3]
	return m - c.imbalance*d*d
}

// exactPf integrates the failure probability: conditioned on d = x₂−x₃
// (Normal with variance 2), failure is the linear tail event
// s·(x₀,x₁) > nominal − imbalance·d², so
// Pf = E_d[ Φ(−(nominal − imb·d²)/‖s‖) ], evaluated by quadrature.
func (c *registerFileCell) exactPf() float64 {
	norm := math.Hypot(c.stackSens[0], c.stackSens[1])
	const h = 1e-3
	sigma := math.Sqrt2
	sum := 0.0
	for d := -10.0; d < 10; d += h {
		pd := math.Exp(-0.5*(d/sigma)*(d/sigma)) / (sigma * math.Sqrt(2*math.Pi))
		tail := 0.5 * math.Erfc((c.nominal-c.imbalance*d*d)/norm/math.Sqrt2)
		sum += pd * tail * h
	}
	return sum
}

func main() {
	cell := newRegisterFileCell()
	exact := cell.exactPf()
	fmt.Printf("exact failure probability (quadrature): %.4g\n\n", exact)

	for _, m := range []repro.Method{repro.GC, repro.GS} {
		res, err := repro.Estimate(cell, repro.Options{
			Method: m, K: 800, N: 20000, Seed: 3,
		})
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		fmt.Printf("%-4s Pf = %.4g (err vs exact %+.1f%%), relerr %.1f%%, %d + %d sims\n",
			m, res.Pf, 100*(res.Pf/exact-1), 100*res.RelErr99,
			res.Stage1Sims, res.Stage2Sims)
	}

	fmt.Println("\nAnything satisfying repro.Metric — a SPICE wrapper, a behavioural")
	fmt.Println("model, a lookup table — gets the same two-stage analysis.")
}
