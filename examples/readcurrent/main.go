// Read-current study (the paper's §V-B workload): the dual-sided
// read-current failure region is a single connected but strongly
// non-convex L — two orthogonal high-probability lobes. Mean-shift
// importance sampling and Cartesian Gibbs sampling get trapped in one
// lobe and report roughly half the true failure rate with high
// confidence; spherical Gibbs sampling slides along probability contours
// through both lobes and matches brute-force Monte Carlo.
//
//	go run ./examples/readcurrent [-n 10000] [-golden 2000000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	n := flag.Int("n", 10000, "second-stage samples per method")
	golden := flag.Int("golden", 2_000_000, "brute-force Monte Carlo samples (0 to skip)")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	metric := repro.DualReadCurrentWorkload()

	fmt.Printf("%-16s %12s %10s %14s\n", "method", "Pf", "relerr", "simulations")
	for _, m := range repro.Methods() {
		res, err := repro.Estimate(metric, repro.Options{Method: m, N: *n, Seed: *seed})
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		fmt.Printf("%-16s %12.3g %9.1f%% %7d + %d\n",
			m, res.Pf, 100*res.RelErr99, res.Stage1Sims, res.Stage2Sims)
	}

	if *golden > 0 {
		res, err := repro.Estimate(metric, repro.Options{Method: repro.MC, N: *golden, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.3g %9.1f%%   (%d failures in %d samples)\n",
			"brute-force MC", res.Pf, 100*res.RelErr99, res.Failures, res.N)
	}

	fmt.Println("\nExpected shape (paper Table II): G-S ≈ brute force; G-C confidently")
	fmt.Println("reports a single lobe (≈ half the true rate); MIS and MNIS scatter.")
}
