package repro

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/mc"
	"repro/internal/surrogate"
)

// canonical renders a Result for bit-level comparison: wall-clock fields
// zeroed (they are the one legitimately non-deterministic part of a
// run), everything else — estimates, moments, weights, traces, the full
// report — compared through exact JSON, which round-trips float64 bits.
func canonical(t *testing.T, res *Result) string {
	t.Helper()
	r := *res
	r.Stage1Seconds, r.Stage2Seconds = 0, 0
	if r.Report != nil {
		r.Report = r.Report.Deterministic()
	}
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// splits enumerates coverings of [0, total): single range, halves, three
// uneven pieces, and a deliberately shuffled order (folds sort by Start).
func splits(total int) [][]ShardRange {
	if total == 1 {
		return [][]ShardRange{{{Lo: 0, Hi: 1}}}
	}
	a, b := total/3, 2*total/3
	return [][]ShardRange{
		{{Lo: 0, Hi: total}},
		{{Lo: 0, Hi: total / 2}, {Lo: total / 2, Hi: total}},
		{{Lo: 0, Hi: a}, {Lo: a, Hi: b}, {Lo: b, Hi: total}},
		{{Lo: b, Hi: total}, {Lo: 0, Hi: a}, {Lo: a, Hi: b}},
	}
}

// TestShardFoldBitIdentical is the distributed-serving equivalence
// claim: for every method, evaluating the terminal stage as disjoint
// partials — in any grouping, each with its own replayed prefix — and
// folding must reproduce the single-node Result bit for bit, report
// included.
func TestShardFoldBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, method := range AllMethods() {
		t.Run(string(method), func(t *testing.T) {
			t.Parallel()
			// Brute-force methods need a reachable failure region at
			// N=3000 — zero failures would leave RelErr99 infinite and
			// unmarshalable, and prove nothing about the fold.
			b := 5.5
			if method == MC || method == Blockade {
				b = 2.5
			}
			lin := &surrogate.Linear{W: []float64{1, 1}, B: b}
			opts := Options{Method: method, Seed: 11, K: 300, N: 3000}
			want, err := EstimateContext(ctx, lin, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON := canonical(t, want)
			total, err := ShardPlan(opts)
			if err != nil {
				t.Fatal(err)
			}
			for si, ranges := range splits(total) {
				// One EstimatePartial call per range: each worker
				// replays the prefix independently, as real nodes do.
				var prefix Prefix
				var chunks []mc.Partial
				for wi, r := range ranges {
					run, err := EstimatePartial(ctx, lin, opts, []ShardRange{r})
					if err != nil {
						t.Fatalf("split %d: %v", si, err)
					}
					if wi == 0 {
						prefix = run.Prefix
					} else if run.Prefix.Digest() != prefix.Digest() {
						t.Fatalf("split %d: prefix digest diverged between workers", si)
					}
					chunks = append(chunks, run.Chunks...)
				}
				got, err := FoldPartials(opts, prefix, chunks, 0)
				if err != nil {
					t.Fatalf("split %d: fold: %v", si, err)
				}
				if gotJSON := canonical(t, got); gotJSON != wantJSON {
					t.Fatalf("split %d: folded result differs from single-node\n got: %s\nwant: %s", si, gotJSON, wantJSON)
				}
			}
		})
	}
}

// A traced importance-sampling run shards too — the trace is part of the
// index-ordered replay.
func TestShardFoldWithTrace(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 5}
	opts := Options{Method: GS, Seed: 3, K: 300, N: 2000, TraceEvery: 512}
	want, err := Estimate(lin, opts)
	if err != nil {
		t.Fatal(err)
	}
	run, err := EstimatePartial(context.Background(), lin, opts, []ShardRange{{Lo: 0, Hi: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FoldPartials(opts, run.Prefix, run.Chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace) == 0 || canonical(t, got) != canonical(t, want) {
		t.Fatalf("traced fold differs\n got: %s\nwant: %s", canonical(t, got), canonical(t, want))
	}
}

func TestShardPlanRejections(t *testing.T) {
	cases := []Options{
		{Method: GS, N: 1000, Target: 0.1},     // until-target
		{Method: MC, N: 1000, TraceEvery: 100}, // sequential traced MC
		{Method: MC, N: 1000, Workers: 1},      // sequential single-worker MC
	}
	for _, opts := range cases {
		if _, err := ShardPlan(opts); !errors.Is(err, ErrNotShardable) {
			t.Fatalf("%+v: want ErrNotShardable, got %v", opts, err)
		}
	}
	if _, err := ShardPlan(Options{Method: "nope", N: 10}); err == nil {
		t.Fatal("invalid method accepted")
	}
	if total, err := ShardPlan(Options{Method: Subset, N: 4000}); err != nil || total != 1 {
		t.Fatalf("subset plan: %d, %v", total, err)
	}
}

func TestFoldRejectsBadCover(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 5.5}
	opts := Options{Method: GS, Seed: 11, K: 300, N: 3000}
	run, err := EstimatePartial(context.Background(), lin, opts, []ShardRange{{Lo: 0, Hi: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FoldPartials(opts, run.Prefix, run.Chunks, 0); !errors.Is(err, mc.ErrBadCover) {
		t.Fatalf("gap accepted: %v", err)
	}
	if _, err := EstimatePartial(context.Background(), lin, opts, []ShardRange{{Lo: -1, Hi: 5}}); !errors.Is(err, mc.ErrBadRange) {
		t.Fatal("bad range accepted")
	}
}

func TestSplitRanges(t *testing.T) {
	for _, tc := range []struct{ total, parts, grain, want int }{
		{10000, 4, 0, 4}, {10000, 3, 256, 3}, {100, 8, 256, 1}, {1, 4, 0, 1},
	} {
		rs := SplitRanges(tc.total, tc.parts, tc.grain)
		if len(rs) == 0 || len(rs) > tc.parts {
			t.Fatalf("SplitRanges(%d,%d,%d) = %v", tc.total, tc.parts, tc.grain, rs)
		}
		next := 0
		for _, r := range rs {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("not a tiling: %v", rs)
			}
			next = r.Hi
		}
		if next != tc.total {
			t.Fatalf("covers %d of %d", next, tc.total)
		}
	}
}
