package repro

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/surrogate"
	"repro/internal/telemetry"
)

// TestTelemetryDoesNotPerturbEstimates is the observability contract at
// the top of the stack: attaching a registry (with a live event sink)
// must not change a single bit of the statistical output, at any worker
// count. Telemetry observes the run; it never touches RNG streams or
// sample ordering.
func TestTelemetryDoesNotPerturbEstimates(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6.5}
	base := Options{Method: GS, K: 200, N: 4000, Seed: 11}

	bare, err := Estimate(lin, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7, 0} {
		opts := base
		opts.Workers = workers
		opts.Telemetry = NewTelemetry()
		var buf strings.Builder
		opts.Telemetry.SetSink(telemetry.NewEventSink(&buf))
		got, err := Estimate(lin, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Pf != bare.Pf || got.StdErr != bare.StdErr || got.RelErr99 != bare.RelErr99 {
			t.Fatalf("workers=%d: telemetry changed the estimate: Pf %v vs %v, StdErr %v vs %v",
				workers, got.Pf, bare.Pf, got.StdErr, bare.StdErr)
		}
		if got.N != bare.N || got.Failures != bare.Failures || got.TotalSims != bare.TotalSims {
			t.Fatalf("workers=%d: telemetry changed accounting: N %d vs %d, sims %d vs %d",
				workers, got.N, bare.N, got.TotalSims, bare.TotalSims)
		}
		if buf.Len() == 0 {
			t.Fatalf("workers=%d: instrumented run emitted no events", workers)
		}
	}
}

// TestEventBusDoesNotPerturbEstimates extends the contract to the live
// observability plane: a registry with an event bus attached — fed by
// every Emit, fanned out to subscribers, watched by a health watchdog —
// must still produce bit-identical statistical output. The bus only
// observes marshaled copies of what the sink already sees.
func TestEventBusDoesNotPerturbEstimates(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6.5}
	base := Options{Method: GS, K: 200, N: 4000, Seed: 11}

	bare, err := Estimate(lin, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 0} {
		opts := base
		opts.Workers = workers
		opts.Telemetry = NewTelemetry()
		bus := telemetry.NewBus(512)
		opts.Telemetry.SetBus(bus)
		// A live subscriber with a deliberately tiny queue: overflow
		// drops must also leave the estimate untouched.
		sub := bus.Subscribe(1)
		defer sub.Close()
		wd := telemetry.StartWatchdog(opts.Telemetry, telemetry.WatchdogConfig{})
		got, err := Estimate(lin, opts)
		wd.Stop()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Pf != bare.Pf || got.StdErr != bare.StdErr || got.RelErr99 != bare.RelErr99 {
			t.Fatalf("workers=%d: event bus changed the estimate: Pf %v vs %v, StdErr %v vs %v",
				workers, got.Pf, bare.Pf, got.StdErr, bare.StdErr)
		}
		if got.N != bare.N || got.Failures != bare.Failures || got.TotalSims != bare.TotalSims {
			t.Fatalf("workers=%d: event bus changed accounting: N %d vs %d, sims %d vs %d",
				workers, got.N, bare.N, got.TotalSims, bare.TotalSims)
		}
		if bus.Seq() == 0 {
			t.Fatalf("workers=%d: instrumented run published no bus events", workers)
		}
	}
}

// TestRunEventLogCoversBothStages runs an instrumented two-stage
// estimate and checks the JSONL stream line by line: every line parses,
// seq matches file order, and the log covers the full lifecycle — run
// start, stage 1, stage 2 and the final result.
func TestRunEventLogCoversBothStages(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6.5}
	reg := NewTelemetry()
	var buf strings.Builder
	reg.SetSink(telemetry.NewEventSink(&buf))
	res, err := Estimate(lin, Options{Method: GS, K: 200, N: 4000, Seed: 11, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	seen := map[string]int{}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if seq := int(obj["seq"].(float64)); seq != i {
			t.Fatalf("line %d has seq %d", i, seq)
		}
		name, _ := obj["event"].(string)
		seen[name]++
	}
	for _, want := range []string{
		"run.start", "stage1.start", "stage1.start_point", "gibbs.chain",
		"stage1.done", "stage2.start", "estimator.done", "run.done",
	} {
		if seen[want] == 0 {
			t.Fatalf("event log missing %q; saw %v", want, seen)
		}
	}

	// The final run.done event must agree with the returned result.
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["event"] != "run.done" {
		t.Fatalf("last event is %v, want run.done", last["event"])
	}
	if pf := last["pf"].(float64); pf != res.Pf {
		t.Fatalf("run.done pf %v != result %v", pf, res.Pf)
	}

	// A surrogate metric never reaches the spice layer, so the registry
	// should hold gibbs- and mc-scope metrics here (spice joins in for
	// transistor-level runs; see the CLI smoke coverage).
	snap := reg.Snapshot()
	scopes := map[string]bool{}
	for _, m := range snap {
		scopes[m.Scope] = true
	}
	for _, s := range []string{"gibbs", "mc"} {
		if !scopes[s] {
			t.Fatalf("no %q-scope metrics recorded; scopes: %v", s, scopes)
		}
	}
}
