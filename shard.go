package repro

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"math"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Distributed estimation: the library splits a run into a deterministic
// replicated prefix (every stage before the terminal sampling loop —
// starting-point search, Gibbs chain, distortion fit, MIS exploration,
// blockade training) plus a shardable terminal stage whose samples are
// pure functions of (seed, absolute index, prefix). EstimatePartial
// evaluates only a set of index ranges of that terminal stage;
// FoldPartials reassembles a full Result — bit-identical to
// EstimateContext — from the prefix and a covering set of partials.
// internal/dist runs this seam over HTTP between a coordinator and
// worker processes.

// ErrNotShardable is reported (wrapped) by ShardPlan for options a
// distributed run cannot honor bit-identically; test with errors.Is.
var ErrNotShardable = errors.New("repro: options not distributable")

// ShardRange is a half-open [Lo, Hi) interval of terminal-stage sample
// indices (an alias of the evaluation engine's range type, so partials
// flow through without conversion).
type ShardRange = mc.Range

// Prefix carries the deterministic first-stage products a distributed
// fold needs: the cost split and the fitted-distortion descriptors that
// feed the Result and its RunReport. For whole-job methods (subset
// simulation, which is sequential by construction) Final carries the
// complete estimate instead. Every worker that replays a job's prefix
// must arrive at these exact bytes — Digest is the cross-check.
type Prefix struct {
	// Stage1Sims is the simulation cost of the replicated prefix (as a
	// single-node run would report it — replication across workers does
	// not multiply it).
	Stage1Sims int64 `json:"stage1_sims,omitempty"`
	// GibbsSamples are the first-stage chain samples (G-C/G-S only);
	// the fold re-derives the report's chain diagnostics from them.
	GibbsSamples [][]float64 `json:"gibbs_samples,omitempty"`
	// DistortionMean is the fitted g^NOR mean (importance-sampling
	// methods only).
	DistortionMean []float64 `json:"distortion_mean,omitempty"`
	// Final is the complete estimate for whole-job methods (subset);
	// nil for shardable methods.
	Final *Result `json:"final,omitempty"`
}

// Digest returns a hex SHA-256 over a canonical binary encoding of the
// prefix (exact float64 bits, not decimal renderings). Two workers that
// disagree — version skew, a non-deterministic metric — disagree here,
// before their partials can silently corrupt a fold.
func (p *Prefix) Digest() string {
	h := sha256.New()
	var buf [8]byte
	putInt := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	putFloat := func(v float64) {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	putVec := func(v []float64) {
		putInt(int64(len(v)))
		for _, x := range v {
			putFloat(x)
		}
	}
	putInt(p.Stage1Sims)
	putInt(int64(len(p.GibbsSamples)))
	for _, row := range p.GibbsSamples {
		putVec(row)
	}
	putVec(p.DistortionMean)
	if p.Final != nil {
		putInt(1)
		digestResult(h, putInt, putFloat, putVec, p.Final)
	} else {
		putInt(0)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func digestResult(_ hash.Hash, putInt func(int64), putFloat func(float64), putVec func([]float64), r *Result) {
	putFloat(r.Pf)
	putFloat(r.StdErr)
	putFloat(r.RelErr99)
	putInt(int64(r.N))
	putInt(int64(r.Failures))
	putFloat(r.WeightESS)
	putFloat(r.MaxWeight)
	putVec(r.TopWeights)
	putInt(r.Stage1Sims)
	putInt(r.Stage2Sims)
	putInt(r.TotalSims)
}

// PartialRun is one worker's contribution to a distributed estimate:
// the replayed prefix plus the partial statistics of the ranges it
// leased.
type PartialRun struct {
	Prefix Prefix       `json:"prefix"`
	Chunks []mc.Partial `json:"chunks,omitempty"`
}

// ShardPlan validates that opts describes an estimation a distributed
// run can reproduce bit-identically and returns the terminal-stage
// sample count to shard (1 for whole-job methods). Until-target runs
// (Target > 0) are rejected — the stop decision folds global state at
// every chunk boundary — as is traced brute-force MC, whose sequential
// engine draws from one generator stream.
func ShardPlan(opts Options) (total int, err error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	o := opts.withDefaults()
	if o.Target > 0 {
		return 0, fmt.Errorf("%w: until-target runs (Target > 0) stop on a global convergence test", ErrNotShardable)
	}
	switch o.Method {
	case Subset:
		// Sequential adaptive ladder: distributed as one whole-job range.
		return 1, nil
	case MC:
		// Workers==1 (like tracing) selects the sequential single-stream
		// engine, whose bits the index-seeded fold cannot reproduce.
		if o.TraceEvery > 0 || o.Workers == 1 {
			return 0, fmt.Errorf("%w: sequential-engine MC (TraceEvery > 0 or Workers == 1)", ErrNotShardable)
		}
		return o.N, nil
	default:
		return o.N, nil
	}
}

// EstimatePartial runs opts' deterministic prefix in full and evaluates
// only the given terminal-stage ranges, the way a distributed worker
// does. The ranges may be any well-formed subset of [0, ShardPlan(opts))
// — they do not need to cover it. An aborted run returns the context's
// error, exactly like EstimateContext.
func EstimatePartial(ctx context.Context, metric Metric, opts Options, ranges []ShardRange) (*PartialRun, error) {
	if metric == nil {
		return nil, fmt.Errorf("%w: nil metric", ErrInvalidOptions)
	}
	total, err := ShardPlan(opts)
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.Telemetry != nil {
		if tm, ok := metric.(interface{ SetTelemetry(*telemetry.Registry) }); ok {
			tm.SetTelemetry(o.Telemetry)
		}
	}
	counter := mc.NewCounter(metric)
	rng := rand.New(rand.NewSource(o.Seed))
	run := &PartialRun{}

	switch o.Method {
	case MC:
		ev := mc.NewEvaluator(counter, o.Workers).WithTelemetry(o.Telemetry)
		run.Chunks, err = mc.ParallelMCPartial(ctx, ev, o.N, o.Seed, ranges)
		if err != nil {
			return nil, err
		}

	case MIS:
		mo := baselines.MISOptions{Stage1: o.K, N: o.N, Workers: o.Workers, Telemetry: o.Telemetry}
		res, parts, err := baselines.MISPartial(ctx, counter, mo, rng, ranges)
		if err != nil {
			return nil, err
		}
		run.Prefix = Prefix{Stage1Sims: res.Stage1Sims, DistortionMean: res.Mean}
		run.Chunks = parts

	case MNIS:
		mo := baselines.MNISOptions{
			Start: &model.StartOptions{TrainN: o.K, UseQuadratic: o.Quadratic},
			N:     o.N, Workers: o.Workers, Telemetry: o.Telemetry,
		}
		res, parts, err := baselines.MNISPartial(ctx, counter, mo, rng, ranges)
		if err != nil {
			return nil, err
		}
		run.Prefix = Prefix{Stage1Sims: res.Stage1Sims, DistortionMean: res.Mean}
		run.Chunks = parts

	case Blockade:
		bo := baselines.BlockadeOptions{Train: o.K, N: o.N, Workers: o.Workers, Telemetry: o.Telemetry}
		res, parts, err := baselines.BlockadePartial(ctx, counter, bo, rng, ranges)
		if err != nil {
			return nil, err
		}
		run.Prefix = Prefix{Stage1Sims: res.TrainSims}
		run.Chunks = parts

	case Subset:
		// Whole-job: the single range [0,1) stands for the entire run.
		if len(ranges) != 1 || ranges[0] != (ShardRange{Lo: 0, Hi: 1}) {
			return nil, fmt.Errorf("%w: subset simulation runs as one whole-job range [0,1)", mc.ErrBadRange)
		}
		res, err := estimate(ctx, counter, o)
		if err != nil {
			return nil, err
		}
		// The wall-clock split is the only non-deterministic Result
		// field; zero it so every worker's prefix digest agrees.
		res.Stage1Seconds, res.Stage2Seconds = 0, 0
		run.Prefix = Prefix{Final: res}

	case GC, GS:
		coord := gibbs.Cartesian
		if o.Method == GS {
			coord = gibbs.Spherical
		}
		to := gibbs.TwoStageOptions{
			Coord: coord, K: o.K, N: o.N,
			Start:      &model.StartOptions{UseQuadratic: o.Quadratic},
			StartPoint: o.StartPoint,
			Mixture:    o.Mixture,
			Workers:    o.Workers,
			Telemetry:  o.Telemetry,
		}
		res, parts, err := gibbs.TwoStagePartial(ctx, counter, to, rng, ranges)
		if err != nil {
			return nil, err
		}
		run.Prefix = Prefix{
			Stage1Sims:     res.Stage1Sims,
			GibbsSamples:   res.Samples,
			DistortionMean: res.GNor.Mean,
		}
		run.Chunks = parts

	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownMethod, string(o.Method))
	}
	_ = total
	return run, nil
}

// FoldPartials reassembles the full estimate from a job's prefix and a
// set of partials covering [0, ShardPlan(opts)), replaying the
// single-node reduction in strict sample-index order. The returned
// Result — including its RunReport — is bit-identical to an uncancelled
// EstimateContext run of the same options once wall-clock fields are set
// aside (the Seconds fields are zero here; totalSeconds only feeds the
// report's TotalSeconds, which Deterministic() already excludes).
func FoldPartials(opts Options, prefix Prefix, chunks []mc.Partial, totalSeconds float64) (*Result, error) {
	if _, err := ShardPlan(opts); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	var res *Result

	switch o.Method {
	case Subset:
		if prefix.Final == nil {
			return nil, fmt.Errorf("%w: missing whole-job result in prefix", mc.ErrBadCover)
		}
		r := *prefix.Final
		res = &r

	case MC:
		m, err := mc.FoldParallelMC(o.N, chunks)
		if err != nil {
			return nil, err
		}
		res = &Result{
			Pf: m.Pf, StdErr: m.StdErr, RelErr99: m.RelErr99,
			N: m.N, Failures: m.Failures, WeightESS: m.WeightESS,
			Stage2Sims: int64(m.N), TotalSims: int64(m.N),
		}

	case Blockade:
		m, err := mc.FoldBernoulli(o.N, chunks)
		if err != nil {
			return nil, err
		}
		stage2 := int64(0)
		for _, c := range chunks {
			stage2 += c.Sims
		}
		res = &Result{
			Pf: m.Pf, StdErr: m.StdErr, RelErr99: m.RelErr99,
			N: m.N, Failures: m.Failures,
			Stage1Sims: prefix.Stage1Sims, Stage2Sims: stage2,
			TotalSims: prefix.Stage1Sims + stage2,
		}

	case MIS, MNIS, GC, GS:
		m, err := mc.FoldImportanceSample(o.N, chunks, mc.TraceEvery(o.TraceEvery))
		if err != nil {
			return nil, err
		}
		stage2 := int64(0)
		for _, c := range chunks {
			stage2 += c.Sims
		}
		res = &Result{
			Pf: m.Pf, StdErr: m.StdErr, RelErr99: m.RelErr99,
			N: m.N, Failures: m.Failures, WeightESS: m.WeightESS,
			MaxWeight: m.MaxWeight, TopWeights: m.TopWeights,
			Stage1Sims: prefix.Stage1Sims, Stage2Sims: stage2,
			TotalSims:      prefix.Stage1Sims + stage2,
			GibbsSamples:   prefix.GibbsSamples,
			DistortionMean: prefix.DistortionMean,
			Trace:          m.Trace,
		}

	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownMethod, string(o.Method))
	}
	res.Report = buildReport(res, o, totalSeconds)
	return res, nil
}

// SplitRanges cuts [0, total) into at most parts contiguous ranges
// whose boundaries land on multiples of grain (the final range absorbs
// the remainder), the unit of work a distributed coordinator leases
// out. grain ≤ 0 selects the evaluation engine's chunk size. Boundary
// alignment is cosmetic — any covering split folds to the same bits —
// but chunk-aligned leases keep each worker's kernel batches full.
func SplitRanges(total, parts, grain int) []ShardRange {
	if total <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = mc.ChunkSize
	}
	if parts <= 0 {
		parts = 1
	}
	size := (total + parts - 1) / parts
	size = (size + grain - 1) / grain * grain
	out := make([]ShardRange, 0, parts)
	for lo := 0; lo < total; lo += size {
		out = append(out, ShardRange{Lo: lo, Hi: min(lo+size, total)})
	}
	return out
}
