package repro

import (
	"math"
	"testing"

	"repro/internal/surrogate"
)

// The facade must drive every method to the analytic answer on a linear
// metric.
func TestEstimateAllMethodsOnLinear(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6.5} // Pf ≈ 2.1e-6
	exact := lin.ExactPf()
	for _, m := range []Method{MIS, MNIS, GC, GS} {
		opts := Options{Method: m, N: 40000, Seed: 7}
		if m == MIS {
			opts.K = 4000
		}
		res, err := Estimate(lin, opts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if math.Abs(res.Pf-exact)/exact > 0.25 {
			t.Fatalf("%s: Pf %v, exact %v", m, res.Pf, exact)
		}
		if res.TotalSims != res.Stage1Sims+res.Stage2Sims {
			t.Fatalf("%s: sim accounting inconsistent", m)
		}
		if res.Stage1Sims <= 0 || res.Stage2Sims <= 0 {
			t.Fatalf("%s: stages not recorded: %d/%d", m, res.Stage1Sims, res.Stage2Sims)
		}
	}
}

func TestEstimateMC(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 2} // Pf ≈ 2.28e-2
	res, err := Estimate(lin, Options{Method: MC, N: 200000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.05 {
		t.Fatalf("MC Pf %v, exact %v", res.Pf, exact)
	}
	if res.TotalSims != 200000 {
		t.Fatalf("MC total sims %d", res.TotalSims)
	}
}

func TestEstimateMCSequentialWithTrace(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 1.5}
	res, err := Estimate(lin, Options{Method: MC, N: 5000, Seed: 4, TraceEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 5 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
}

func TestEstimateTargetMode(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	res, err := Estimate(lin, Options{Method: GS, Target: 0.05, N: 500000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelErr99 > 0.05 {
		t.Fatalf("target missed: %v", res.RelErr99)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.15 {
		t.Fatalf("Pf %v vs %v", res.Pf, exact)
	}
}

func TestEstimateGibbsExtras(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	res, err := Estimate(lin, Options{Method: GC, K: 200, N: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GibbsSamples) != 200 {
		t.Fatalf("gibbs samples %d", len(res.GibbsSamples))
	}
	if len(res.DistortionMean) != 2 {
		t.Fatalf("distortion mean %v", res.DistortionMean)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(nil, Options{}); err == nil {
		t.Fatal("nil metric must error")
	}
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	if _, err := Estimate(lin, Options{Method: Method("bogus")}); err == nil {
		t.Fatal("bogus method must error")
	}
}

func TestParseMethod(t *testing.T) {
	for _, s := range []string{"mc", "mis", "mnis", "g-c", "g-s"} {
		if _, err := ParseMethod(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("expected parse error")
	}
	if len(Methods()) != 4 {
		t.Fatal("Methods should list the four compared estimators")
	}
}

func TestDeterminism(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 5}
	a, err := Estimate(lin, Options{Method: GS, K: 150, N: 1500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(lin, Options{Method: GS, K: 150, N: 1500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Pf != b.Pf || a.TotalSims != b.TotalSims {
		t.Fatalf("same seed must reproduce: %v/%d vs %v/%d", a.Pf, a.TotalSims, b.Pf, b.TotalSims)
	}
	c, err := Estimate(lin, Options{Method: GS, K: 150, N: 1500, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Pf == c.Pf {
		t.Fatal("different seeds should differ")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if RNMWorkload().Dim() != 6 || WNMWorkload().Dim() != 6 || ReadCurrentWorkload().Dim() != 2 {
		t.Fatal("workload dims wrong")
	}
	if DualReadCurrentWorkload().Dim() != 2 || AccessTimeWorkload().Dim() != 2 {
		t.Fatal("extended workload dims wrong")
	}
}

func TestEstimateBlockade(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 3} // Pf ≈ 1.35e-3
	res, err := Estimate(lin, Options{Method: Blockade, K: 500, N: 200000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.2 {
		t.Fatalf("blockade Pf %v vs %v", res.Pf, exact)
	}
	if res.TotalSims >= int64(res.N) {
		t.Fatal("blockade should simulate fewer points than it streams")
	}
}

func TestEstimateMixtureOption(t *testing.T) {
	two := &surrogate.SeriesStack{A: 4.0}
	res, err := Estimate(two, Options{Method: GS, K: 1000, N: 5000, Seed: 10, Mixture: 2})
	if err != nil {
		t.Fatal(err)
	}
	exact := two.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.3 {
		t.Fatalf("mixture G-S Pf %v vs %v", res.Pf, exact)
	}
}
