#!/usr/bin/env bash
# Perf-regression bench harness: builds the experiments CLI, runs the
# canonical bench suite, and validates the emitted BENCH_<label>.json
# against the repro-bench/v1 schema.
#
# Usage: scripts/bench.sh [-quick] [-label NAME] [-out DIR]
#
#   -quick       scale budgets down ~10x (the CI smoke configuration)
#   -label NAME  output file label (BENCH_<NAME>.json; default "local")
#   -out DIR     output directory (default "bench-out")
#
# After the schema check, the readcurrent rows are gated against the
# committed baseline (BENCH_batch.json, falling back to BENCH_seed.json):
# a sims_per_second drop of more than BENCH_GATE_PCT percent (default 10)
# on any row present in both files fails the script. Set BENCH_GATE=off
# to record numbers without gating, or BENCH_BASELINE to gate against a
# different file.
set -euo pipefail

QUICK=""
LABEL="local"
OUT="bench-out"
while [ $# -gt 0 ]; do
  case "$1" in
    -quick) QUICK="-quick" ;;
    -label) LABEL="$2"; shift ;;
    -out)   OUT="$2"; shift ;;
    *) echo "usage: $0 [-quick] [-label NAME] [-out DIR]" >&2; exit 2 ;;
  esac
  shift
done

cd "$(dirname "$0")/.."
mkdir -p "$OUT"

echo "== building experiments CLI"
go build -o "$OUT/experiments" ./cmd/experiments

echo "== running bench suite (label=$LABEL${QUICK:+, quick})"
"$OUT/experiments" $QUICK -label "$LABEL" -bench-out "$OUT" bench

FILE="$OUT/BENCH_${LABEL}.json"
echo "== validating $FILE against repro-bench/v1"
python3 - "$FILE" <<'PY'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

def check(cond, msg):
    if not cond:
        sys.exit(f"schema violation in {path}: {msg}")

check(doc.get("schema") == "repro-bench/v1", f"schema is {doc.get('schema')!r}")
check(isinstance(doc.get("label"), str) and doc["label"], "label missing")
check(isinstance(doc.get("go_version"), str) and doc["go_version"].startswith("go"),
      "go_version missing")
check(isinstance(doc.get("seed"), int), "seed missing")
check(isinstance(doc.get("runs"), list) and doc["runs"], "runs empty")

for i, r in enumerate(doc["runs"]):
    where = f"runs[{i}]"
    for key in ("workload", "method"):
        check(isinstance(r.get(key), str) and r[key], f"{where}.{key} missing")
    for key in ("pf", "wall_seconds", "sims_per_second",
                "solve_p50_seconds", "solve_p99_seconds", "weight_ess"):
        v = r.get(key)
        check(isinstance(v, (int, float)) and math.isfinite(v),
              f"{where}.{key} = {v!r}")
    check(r.get("sims", 0) > 0, f"{where}.sims")
    check(r["wall_seconds"] > 0 and r["sims_per_second"] > 0,
          f"{where} throughput not positive")
    check(r["solve_p50_seconds"] <= r["solve_p99_seconds"],
          f"{where} p50 > p99")
    # Batch-kernel telemetry (repro-bench/v1 additions): batch count and
    # warm-start rates, the latter proper fractions.
    check(isinstance(r.get("kernel_batches"), int) and r["kernel_batches"] >= 0,
          f"{where}.kernel_batches = {r.get('kernel_batches')!r}")
    for key in ("warm_hit_rate", "warm_fallback_rate"):
        v = r.get(key)
        check(isinstance(v, (int, float)) and math.isfinite(v) and 0 <= v <= 1,
              f"{where}.{key} = {v!r}")
    # Optional nullable fields must be numeric when present.
    for key in ("relerr99", "golden_pf", "rel_error_vs_golden", "rhat"):
        v = r.get(key)
        check(v is None or (isinstance(v, (int, float)) and math.isfinite(v)),
              f"{where}.{key} = {v!r}")

print(f"schema OK: {path} ({len(doc['runs'])} runs)")
PY

if [ "${BENCH_GATE:-on}" = "off" ]; then
  echo "== gate disabled (BENCH_GATE=off)"
else
  BASELINE="${BENCH_BASELINE:-}"
  if [ -z "$BASELINE" ]; then
    if [ -f BENCH_batch.json ]; then BASELINE="BENCH_batch.json"
    else BASELINE="BENCH_seed.json"; fi
  fi
  if [ ! -f "$BASELINE" ]; then
    echo "== no baseline ($BASELINE missing); skipping regression gate"
  else
    echo "== gating readcurrent throughput against $BASELINE (tolerance ${BENCH_GATE_PCT:-10}%)"
    python3 - "$FILE" "$BASELINE" "${BENCH_GATE_PCT:-10}" <<'PY'
import json, sys

cur_path, base_path, pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(cur_path) as f:
    cur = json.load(f)
with open(base_path) as f:
    base = json.load(f)

# Gate readcurrent rows: the 2-D workload is the paper's headline
# benchmark and the least noisy. The batch-kernel row is gated
# unconditionally — its per-sim cost is independent of the sample
# budget, so quick and full runs are comparable. Estimator rows are
# startup-dominated under -quick (a ~5k-sample run spends a visible
# fraction of its wall time on anchors and fitting), so they are gated
# only when both files ran in the same mode.
floor = 1 - pct / 100
modes_match = bool(cur.get("quick")) == bool(base.get("quick"))
baseline = {(r["workload"], r["method"]): r["sims_per_second"]
            for r in base["runs"] if r["workload"] == "readcurrent"}
failures, compared = [], 0
for r in cur["runs"]:
    key = (r["workload"], r["method"])
    want = baseline.get(key)
    if want is None:
        continue
    compared += 1
    gated = key[1] == "batch-kernel" or modes_match
    got = r["sims_per_second"]
    verdict = "ok" if gated else "info only (quick/full mode mismatch)"
    if gated and got < floor * want:
        verdict = "REGRESSION"
        failures.append(key)
    print(f"  {key[0]}/{key[1]}: {got:,.0f} sims/s vs baseline {want:,.0f} ({got/want:.2f}x) {verdict}")
if compared == 0:
    print(f"  no readcurrent rows shared with {base_path}; nothing gated")
if failures:
    names = ", ".join("/".join(k) for k in failures)
    sys.exit(f"throughput regression >{pct:.0f}% vs {base_path}: {names}")
PY
  fi
fi

echo "== done: $FILE"
