#!/usr/bin/env bash
# Perf-regression bench harness: builds the experiments CLI, runs the
# canonical bench suite, and validates the emitted BENCH_<label>.json
# against the repro-bench/v1 schema.
#
# Usage: scripts/bench.sh [-quick] [-label NAME] [-out DIR]
#
#   -quick       scale budgets down ~10x (the CI smoke configuration)
#   -label NAME  output file label (BENCH_<NAME>.json; default "local")
#   -out DIR     output directory (default "bench-out")
#
# Compare the fresh file against the committed BENCH_seed.json to spot
# throughput or latency regressions; sims_per_second and the solve
# latency quantiles are the guarded numbers.
set -euo pipefail

QUICK=""
LABEL="local"
OUT="bench-out"
while [ $# -gt 0 ]; do
  case "$1" in
    -quick) QUICK="-quick" ;;
    -label) LABEL="$2"; shift ;;
    -out)   OUT="$2"; shift ;;
    *) echo "usage: $0 [-quick] [-label NAME] [-out DIR]" >&2; exit 2 ;;
  esac
  shift
done

cd "$(dirname "$0")/.."
mkdir -p "$OUT"

echo "== building experiments CLI"
go build -o "$OUT/experiments" ./cmd/experiments

echo "== running bench suite (label=$LABEL${QUICK:+, quick})"
"$OUT/experiments" $QUICK -label "$LABEL" -bench-out "$OUT" bench

FILE="$OUT/BENCH_${LABEL}.json"
echo "== validating $FILE against repro-bench/v1"
python3 - "$FILE" <<'PY'
import json, math, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

def check(cond, msg):
    if not cond:
        sys.exit(f"schema violation in {path}: {msg}")

check(doc.get("schema") == "repro-bench/v1", f"schema is {doc.get('schema')!r}")
check(isinstance(doc.get("label"), str) and doc["label"], "label missing")
check(isinstance(doc.get("go_version"), str) and doc["go_version"].startswith("go"),
      "go_version missing")
check(isinstance(doc.get("seed"), int), "seed missing")
check(isinstance(doc.get("runs"), list) and doc["runs"], "runs empty")

for i, r in enumerate(doc["runs"]):
    where = f"runs[{i}]"
    for key in ("workload", "method"):
        check(isinstance(r.get(key), str) and r[key], f"{where}.{key} missing")
    for key in ("pf", "wall_seconds", "sims_per_second",
                "solve_p50_seconds", "solve_p99_seconds", "weight_ess"):
        v = r.get(key)
        check(isinstance(v, (int, float)) and math.isfinite(v),
              f"{where}.{key} = {v!r}")
    check(r.get("sims", 0) > 0, f"{where}.sims")
    check(r["wall_seconds"] > 0 and r["sims_per_second"] > 0,
          f"{where} throughput not positive")
    check(r["solve_p50_seconds"] <= r["solve_p99_seconds"],
          f"{where} p50 > p99")
    # Optional nullable fields must be numeric when present.
    for key in ("relerr99", "golden_pf", "rel_error_vs_golden", "rhat"):
        v = r.get(key)
        check(v is None or (isinstance(v, (int, float)) and math.isfinite(v)),
              f"{where}.{key} = {v!r}")

print(f"schema OK: {path} ({len(doc['runs'])} runs)")
PY

echo "== done: $FILE"
