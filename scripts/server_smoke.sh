#!/usr/bin/env bash
# End-to-end smoke test of cmd/sramserverd: build, serve, submit a small
# readcurrent G-S job, watch live progress, check the result against the
# seed-pinned bracket, check determinism across submissions, then SIGTERM
# and require a clean drain. Needs curl + jq. Used by CI (see
# .github/workflows/ci.yml) and runnable locally: scripts/server_smoke.sh
set -euo pipefail

ADDR="localhost:${SMOKE_PORT:-18931}"
BIN="$(mktemp -d)/sramserverd"
JOBSPEC='{"workload":"readcurrent","method":"g-s","seed":1,"k":500,"n":100000}'
# Seed-pinned expectation: readcurrent with these options lands at
# Pf ≈ 2.6e-6 (golden MC agrees); the bracket is generous, the exact
# value is pinned by the determinism check below instead.
PF_LO=5e-7
PF_HI=1e-5

fail() { echo "server_smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/sramserverd
"$BIN" -addr "$ADDR" -drain-timeout 30s &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null || fail "server never came up"

[ "$(curl -fsS "http://$ADDR/v1/workloads" | jq length)" -eq 5 ] || fail "workload registry"
[ "$(curl -fsS "http://$ADDR/v1/methods" | jq length)" -eq 7 ] || fail "method registry"

submit() {
  curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$JOBSPEC" | jq -r .id
}

JOB=$(submit)
[ -n "$JOB" ] && [ "$JOB" != null ] || fail "submission returned no id"

# Poll to completion, recording the live sims counter on the way; the
# counter must never move backwards.
LAST_SIMS=0
STATE=queued
for _ in $(seq 1 600); do
  SNAP=$(curl -fsS "http://$ADDR/v1/jobs/$JOB")
  STATE=$(jq -r .state <<<"$SNAP")
  SIMS=$(jq -r .sims <<<"$SNAP")
  [ "$SIMS" -ge "$LAST_SIMS" ] || fail "sims went backwards: $LAST_SIMS -> $SIMS"
  LAST_SIMS=$SIMS
  [ "$STATE" = done ] || [ "$STATE" = failed ] || [ "$STATE" = cancelled ] && break
  sleep 0.1
done
[ "$STATE" = done ] || fail "job ended in state $STATE: $(jq -c . <<<"$SNAP")"
[ "$LAST_SIMS" -gt 0 ] || fail "no simulations recorded"

PF=$(jq -r .result.pf <<<"$SNAP")
python3 - "$PF" "$PF_LO" "$PF_HI" <<'EOF' || fail "Pf $PF outside [$PF_LO, $PF_HI]"
import sys
pf, lo, hi = map(float, sys.argv[1:4])
sys.exit(0 if lo <= pf <= hi else 1)
EOF
echo "server_smoke: job $JOB done, Pf=$PF sims=$LAST_SIMS"

# Per-job and global telemetry are scrapeable.
curl -fsS "http://$ADDR/v1/jobs/$JOB/metrics" | grep -q repro_mc_samples_total \
  || fail "per-job metrics missing"
curl -fsS "http://$ADDR/metrics" | grep -q 'repro_jobs_completed_total 1' \
  || fail "global jobs metrics missing"

# Determinism: an identical submission must reproduce Pf bit-for-bit.
JOB2=$(submit)
for _ in $(seq 1 600); do
  SNAP2=$(curl -fsS "http://$ADDR/v1/jobs/$JOB2")
  [ "$(jq -r .state <<<"$SNAP2")" = done ] && break
  sleep 0.1
done
PF2=$(jq -r .result.pf <<<"$SNAP2")
[ "$PF" = "$PF2" ] || fail "same seed, different Pf: $PF vs $PF2"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
[ "$RC" -eq 0 ] || fail "server exited $RC on SIGTERM"
trap - EXIT
echo "server_smoke: PASS"
