#!/usr/bin/env bash
# End-to-end smoke test of cmd/sramserverd: build, serve, submit a small
# readcurrent G-S job, watch live progress over both the status JSON and
# the SSE event stream (heartbeats, monotonic progress, terminal event),
# check the result against the seed-pinned bracket, fetch the
# statistical run-report and span trace, check determinism across
# submissions, exercise the SIGQUIT flight-recorder dump, then SIGTERM
# and require a clean drain that flushes the JSONL event log. Needs
# curl + jq. Used by CI (see .github/workflows/ci.yml) and runnable
# locally: scripts/server_smoke.sh
set -euo pipefail

ADDR="localhost:${SMOKE_PORT:-18931}"
WORK="$(mktemp -d)"
BIN="$WORK/sramserverd"
JOBSPEC='{"workload":"readcurrent","method":"g-s","seed":1,"k":500,"n":100000}'
# Seed-pinned expectation: readcurrent with these options lands at
# Pf ≈ 2.6e-6 (golden MC agrees); the bracket is generous, the exact
# value is pinned by the determinism check below instead.
PF_LO=5e-7
PF_HI=1e-5

fail() { echo "server_smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/sramserverd
"$BIN" -addr "$ADDR" -drain-timeout 30s \
  -telemetry "$WORK/events.jsonl" -trace "$WORK/trace.json" \
  -flight-dir "$WORK/flight" -sse-heartbeat 500ms &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null || fail "server never came up"

[ "$(curl -fsS "http://$ADDR/v1/workloads" | jq length)" -eq 5 ] || fail "workload registry"
[ "$(curl -fsS "http://$ADDR/v1/methods" | jq length)" -eq 7 ] || fail "method registry"

submit() {
  curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$JOBSPEC" | jq -r .id
}

JOB=$(submit)
[ -n "$JOB" ] && [ "$JOB" != null ] || fail "submission returned no id"

# Attach to the job's live SSE stream while it runs. The stream must
# self-terminate on the job.done event, so this curl exits on its own
# once the job finishes (the max-time is a hang guard, not the exit
# mechanism).
SSE="$WORK/stream.sse"
curl -fsS -N --max-time 120 "http://$ADDR/v1/jobs/$JOB/events" >"$SSE" &
SSE_PID=$!

# Poll to completion, recording the live sims counter on the way; the
# counter must never move backwards.
LAST_SIMS=0
STATE=queued
for _ in $(seq 1 600); do
  SNAP=$(curl -fsS "http://$ADDR/v1/jobs/$JOB")
  STATE=$(jq -r .state <<<"$SNAP")
  SIMS=$(jq -r .sims <<<"$SNAP")
  [ "$SIMS" -ge "$LAST_SIMS" ] || fail "sims went backwards: $LAST_SIMS -> $SIMS"
  LAST_SIMS=$SIMS
  [ "$STATE" = done ] || [ "$STATE" = failed ] || [ "$STATE" = cancelled ] && break
  sleep 0.1
done
[ "$STATE" = done ] || fail "job ended in state $STATE: $(jq -c . <<<"$SNAP")"
[ "$LAST_SIMS" -gt 0 ] || fail "no simulations recorded"

PF=$(jq -r .result.pf <<<"$SNAP")
python3 - "$PF" "$PF_LO" "$PF_HI" <<'EOF' || fail "Pf $PF outside [$PF_LO, $PF_HI]"
import sys
pf, lo, hi = map(float, sys.argv[1:4])
sys.exit(0 if lo <= pf <= hi else 1)
EOF
echo "server_smoke: job $JOB done, Pf=$PF sims=$LAST_SIMS"

# The SSE stream must have self-terminated on job.done (curl exits 0;
# a 28 here means the stream hung past max-time).
wait "$SSE_PID" || fail "SSE stream did not terminate on job.done (curl rc=$?)"
grep -q '^: hb' "$SSE" || fail "SSE stream carried no heartbeats"
grep -q '^event: progress$' "$SSE" || fail "SSE stream carried no progress event"
[ "$(tail -n 5 "$SSE" | grep -c '^event: job.done$')" -eq 1 ] \
  || fail "SSE stream did not end with job.done"
# Progress events must count monotonically upward within each pipeline
# stage (n resets when stage1's Gibbs updates hand off to stage2's
# samples) and quote a finite, non-negative ETA from the live
# throughput estimator.
python3 - "$SSE" <<'EOF' || fail "SSE progress events malformed"
import json, math, sys
last_n, seen = {}, 0
event = None
for line in open(sys.argv[1]):
    line = line.strip()
    if line.startswith("event: "):
        event = line[len("event: "):]
    elif line.startswith("data: ") and event == "progress":
        ev = json.loads(line[len("data: "):])
        stage, n, eta = ev["stage"], ev["n"], ev["eta_seconds"]
        assert n >= last_n.get(stage, -1), \
            f"{stage} progress n went backwards: {last_n[stage]} -> {n}"
        assert math.isfinite(eta) and eta >= 0, f"bad eta_seconds: {eta}"
        last_n[stage], seen = n, seen + 1
assert seen >= 1, "no progress payloads parsed"
EOF
echo "server_smoke: SSE stream OK ($(grep -c '^event: ' "$SSE") events)"

# The global firehose serves the same events tagged with the job id.
GLOBAL=$(curl -fsS -N --max-time 2 "http://$ADDR/v1/events?after=-1" 2>/dev/null || true)
grep -q '"job":' <<<"$GLOBAL" || fail "global SSE stream missing job-tagged events"

# The statistical run-report is served once the job is done, with the
# chain-health and weight-health fields populated for a Gibbs method.
REPORT=$(curl -fsS "http://$ADDR/v1/jobs/$JOB/report")
[ "$(jq -r .method <<<"$REPORT")" = g-s ] || fail "report method: $(jq -c . <<<"$REPORT")"
jq -e '.rhat | type == "number"' <<<"$REPORT" >/dev/null \
  || fail "report rhat missing/non-numeric: $(jq -c .rhat <<<"$REPORT")"
jq -e '.weight_ess > 0' <<<"$REPORT" >/dev/null \
  || fail "report weight_ess not positive: $(jq -c .weight_ess <<<"$REPORT")"
jq -e '.total_sims > 0' <<<"$REPORT" >/dev/null || fail "report total_sims"
echo "server_smoke: report OK (rhat=$(jq -r .rhat <<<"$REPORT") weight_ess=$(jq -r .weight_ess <<<"$REPORT"))"

# The per-job span trace is a Chrome trace-event file with the pipeline
# span taxonomy.
TRACE=$(curl -fsS "http://$ADDR/v1/jobs/$JOB/trace")
jq -e '.traceEvents | map(.name) | (index("estimate") != null) and (index("stage2") != null)' \
  <<<"$TRACE" >/dev/null || fail "job trace missing pipeline spans"

# Per-job and global telemetry are scrapeable.
curl -fsS "http://$ADDR/v1/jobs/$JOB/metrics" | grep -q repro_mc_samples_total \
  || fail "per-job metrics missing"
curl -fsS "http://$ADDR/metrics" | grep -q 'repro_jobs_completed_total 1' \
  || fail "global jobs metrics missing"

# Determinism: an identical submission must reproduce Pf bit-for-bit.
JOB2=$(submit)
for _ in $(seq 1 600); do
  SNAP2=$(curl -fsS "http://$ADDR/v1/jobs/$JOB2")
  [ "$(jq -r .state <<<"$SNAP2")" = done ] && break
  sleep 0.1
done
PF2=$(jq -r .result.pf <<<"$SNAP2")
[ "$PF" = "$PF2" ] || fail "same seed, different Pf: $PF vs $PF2"

# SIGQUIT dumps the flight recorder without stopping the server.
kill -QUIT "$SERVER_PID"
for _ in $(seq 1 50); do
  ls "$WORK"/flight/server-sigquit.jsonl >/dev/null 2>&1 && break
  sleep 0.1
done
ls "$WORK"/flight/server-sigquit.jsonl >/dev/null 2>&1 \
  || fail "SIGQUIT produced no flight dump in $WORK/flight"
jq -es 'length > 0' "$WORK"/flight/server-sigquit.jsonl >/dev/null \
  || fail "flight dump has unparseable lines"
curl -fsS "http://$ADDR/healthz" >/dev/null || fail "server died on SIGQUIT"
echo "server_smoke: SIGQUIT flight dump OK"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
[ "$RC" -eq 0 ] || fail "server exited $RC on SIGTERM"
trap - EXIT

# The drain must have flushed the JSONL event sink and written the span
# trace: every event line parses, and job lifecycle events are present.
[ -s "$WORK/events.jsonl" ] || fail "event log empty after drain"
jq -es 'length > 0' "$WORK/events.jsonl" >/dev/null \
  || fail "event log has unparseable lines (unflushed partial write?)"
grep -q '"event":"job.done"' "$WORK/events.jsonl" || fail "job.done event not flushed"
jq -e '.traceEvents | length > 0' "$WORK/trace.json" >/dev/null \
  || fail "trace file empty after drain"
echo "server_smoke: drain flushed $(wc -l <"$WORK/events.jsonl") events + trace"
echo "server_smoke: PASS"
