#!/usr/bin/env bash
# End-to-end smoke test of distributed serving: build sramserverd (with
# -dist), sramworkerd, sramfail and loadtest; run a single-node baseline
# job; restart with two workers and prove the distributed result is
# byte-identical; check the stitched cross-process trace and the
# /v1/cluster federation summary; kill one worker mid-job and require
# the same bytes again with a reassigned lease; then exercise the
# idempotency keys and the content-addressed result cache (a repeat
# submission must do zero new simulations); finally cross a graceful
# drain under load and require zero lost jobs. Needs curl + jq. Used by
# CI (see .github/workflows/ci.yml) and runnable locally:
# scripts/dist_smoke.sh
set -euo pipefail

ADDR="localhost:${DIST_SMOKE_PORT:-18932}"
WORK="$(mktemp -d)"
JOBSPEC='{"workload":"readcurrent","method":"g-s","seed":7,"k":500,"n":60000}'

fail() { echo "dist_smoke: FAIL: $*" >&2; exit 1; }

go build -o "$WORK/sramserverd" ./cmd/sramserverd
go build -o "$WORK/sramworkerd" ./cmd/sramworkerd
go build -o "$WORK/sramfail" ./cmd/sramfail
go build -o "$WORK/loadtest" ./cmd/loadtest

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

start_server() { # args: extra server flags
  "$WORK/sramserverd" -addr "$ADDR" -drain-timeout 30s "$@" &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  for _ in $(seq 1 100); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.1
  done
  curl -fsS "http://$ADDR/healthz" >/dev/null || fail "server never came up"
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
}

start_worker() { # args: worker id -> echoes pid
  "$WORK/sramworkerd" -coordinator "http://$ADDR" -id "$1" -poll 100ms \
    >"$WORK/$1.log" 2>&1 &
  PIDS+=("$!")
  echo "$!"
}

# canonical_result strips wall-clock noise from a terminal snapshot so
# results can be compared byte-for-byte.
canonical_result() { jq -cS '.result' <<<"$1"; }

submit_wait() { # args: extra JSON fields merged into JOBSPEC
  curl -fsS -X POST "http://$ADDR/v1/jobs?wait=1" \
    -d "$(jq -c ". + $1" <<<"$JOBSPEC")"
}

# ---- Phase 1: byte-identical distributed serving + worker kill. ----
# The result cache stays OFF here so the single-node baseline really
# recomputes instead of replaying the distributed job's cached bytes.
start_server -dist -lease-ttl 2s

BASE_SNAP=$(submit_wait '{}')
[ "$(jq -r .state <<<"$BASE_SNAP")" = done ] || fail "baseline job: $(jq -c . <<<"$BASE_SNAP")"
BASELINE=$(canonical_result "$BASE_SNAP")
echo "dist_smoke: single-node baseline Pf=$(jq -r .pf <<<"$BASELINE")"

W1=$(start_worker smoke-w1)
W2=$(start_worker smoke-w2)

DIST_SNAP=$(submit_wait '{"seed":7,"distribute":true}')
[ "$(jq -r .state <<<"$DIST_SNAP")" = done ] || fail "distributed job: $(jq -c . <<<"$DIST_SNAP")"
[ "$(jq -r .distributed <<<"$DIST_SNAP")" = true ] || fail "job not marked distributed"
[ "$(canonical_result "$DIST_SNAP")" = "$BASELINE" ] \
  || fail "distributed result differs from single-node baseline"
WORKERS=$(curl -fsS "http://$ADDR/v1/dist/workers")
[ "$(jq 'map(.completed) | add' <<<"$WORKERS")" -gt 0 ] || fail "no worker completed a lease"
echo "dist_smoke: 2-worker result byte-identical ($(jq 'length' <<<"$WORKERS") workers registered)"

# The stitched trace: one Chrome trace for the distributed job, with
# the workers' clock-normalized spans grafted in and tagged.
DIST_ID=$(jq -r .id <<<"$DIST_SNAP")
TRACE=$(curl -fsS "http://$ADDR/v1/jobs/$DIST_ID/trace")
jq -e '.traceEvents | length > 0' <<<"$TRACE" >/dev/null || fail "stitched trace is empty"
TRACE_WORKERS=$(jq -r '[.traceEvents[].args.worker // empty] | unique | join(",")' <<<"$TRACE")
[ -n "$TRACE_WORKERS" ] || fail "stitched trace has no worker-tagged spans"
echo "dist_smoke: stitched trace carries spans from [$TRACE_WORKERS]"

# Metrics federation: the cluster summary folds both workers' totals.
CLUSTER=$(curl -fsS "http://$ADDR/v1/cluster")
[ "$(jq '.workers | length' <<<"$CLUSTER")" = 2 ] || fail "cluster summary missing workers: $(jq -c . <<<"$CLUSTER")"
jq -e '.samples > 0 and .leases_completed > 0' <<<"$CLUSTER" >/dev/null \
  || fail "cluster summary has no federated throughput: $(jq -c . <<<"$CLUSTER")"
echo "dist_smoke: /v1/cluster folds $(jq -r .samples <<<"$CLUSTER") samples across the fleet"

# Kill one worker mid-job: submit asynchronously, wait until the doomed
# worker holds a lease, SIGKILL it, and require the same bytes again.
KILL_JOB=$(curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$(jq -c '. + {distribute:true, n:200000}' <<<"$JOBSPEC")" | jq -r .id)
for _ in $(seq 1 200); do
  ACTIVE=$(curl -fsS "http://$ADDR/v1/dist/workers" | jq '[.[] | select(.id=="smoke-w1")][0].active // 0')
  [ "$ACTIVE" -gt 0 ] && break
  sleep 0.05
done
kill -9 "$W1" 2>/dev/null || true
echo "dist_smoke: killed smoke-w1 while active=$ACTIVE"

for _ in $(seq 1 1200); do
  KILL_SNAP=$(curl -fsS "http://$ADDR/v1/jobs/$KILL_JOB")
  STATE=$(jq -r .state <<<"$KILL_SNAP")
  [ "$STATE" = done ] || [ "$STATE" = failed ] && break
  sleep 0.1
done
[ "$STATE" = done ] || fail "post-kill job ended in state $STATE: $(jq -c . <<<"$KILL_SNAP")"

BIG_BASE=$(submit_wait '{"n":200000}')
[ "$(canonical_result "$KILL_SNAP")" = "$(canonical_result "$BIG_BASE")" ] \
  || fail "post-kill distributed result differs from single-node baseline"
echo "dist_smoke: worker-kill survived, result still byte-identical"

stop_server

# ---- Phase 2: idempotency keys + content-addressed result cache. ----
start_server -result-cache 64

FIRST=$(curl -fsS -D "$WORK/h1" -X POST "http://$ADDR/v1/jobs?wait=1" \
  -H 'Idempotency-Key: smoke-key-1' -d "$JOBSPEC")
[ "$(jq -r .state <<<"$FIRST")" = done ] || fail "idempotent first submit"
grep -qi '^Idempotent-Replay' "$WORK/h1" && fail "first submit must not be a replay"

REPLAY=$(curl -fsS -D "$WORK/h2" -X POST "http://$ADDR/v1/jobs" \
  -H 'Idempotency-Key: smoke-key-1' -d "$JOBSPEC")
grep -qi '^Idempotent-Replay: true' "$WORK/h2" || fail "replay header missing"
[ "$(jq -r .id <<<"$REPLAY")" = "$(jq -r .id <<<"$FIRST")" ] || fail "replay returned a different job"

# Reusing the key with a different body must be a 409 problem document.
CONFLICT_CODE=$(curl -sS -o "$WORK/conflict.json" -w '%{http_code}' \
  -X POST "http://$ADDR/v1/jobs" -H 'Idempotency-Key: smoke-key-1' \
  -d "$(jq -c '.seed=99' <<<"$JOBSPEC")")
[ "$CONFLICT_CODE" = 409 ] || fail "idempotency conflict returned $CONFLICT_CODE"
jq -e '.type == "urn:repro:problem:idempotency-conflict"' "$WORK/conflict.json" >/dev/null \
  || fail "conflict is not a problem+json document: $(cat "$WORK/conflict.json")"

# A fresh submission of the identical request hits the result cache:
# terminal at submit time, marked cached, zero new simulations.
BEFORE=$(curl -fsS "http://$ADDR/metrics" | awk '/^repro_mc_samples_total/ {print $2}')
CACHED=$(curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$JOBSPEC")
[ "$(jq -r .state <<<"$CACHED")" = done ] || fail "cache hit not terminal at submit"
[ "$(jq -r .cached <<<"$CACHED")" = true ] || fail "cache hit not marked cached"
[ "$(canonical_result "$CACHED")" = "$(canonical_result "$FIRST")" ] \
  || fail "cached result differs from the original"
AFTER=$(curl -fsS "http://$ADDR/metrics" | awk '/^repro_mc_samples_total/ {print $2}')
[ "${AFTER:-0}" = "${BEFORE:-0}" ] || fail "cache hit ran new simulations ($BEFORE -> $AFTER)"
echo "dist_smoke: idempotency + result cache OK (0 new simulations on repeat)"

# A problem document also comes back for plain validation errors.
BAD_CODE=$(curl -sS -o "$WORK/bad.json" -w '%{http_code}' \
  -X POST "http://$ADDR/v1/jobs" -d '{"workload":"readcurrent","k":-4}')
[ "$BAD_CODE" = 400 ] || fail "invalid options returned $BAD_CODE"
jq -e '.type == "urn:repro:problem:invalid-request" and (.errors | length) > 0' "$WORK/bad.json" >/dev/null \
  || fail "validation problem malformed: $(cat "$WORK/bad.json")"

# The typed client under load: every job done, none lost.
"$WORK/loadtest" -server "http://$ADDR" -jobs 20 -concurrency 4 \
  -workload readcurrent -k 200 -n 2000 || fail "loadtest lost or failed jobs"
# And the same requests again, now all served by the cache.
"$WORK/loadtest" -server "http://$ADDR" -jobs 20 -concurrency 4 \
  -workload readcurrent -k 200 -n 2000 | tee "$WORK/lt2.out" || fail "cached loadtest"
grep -q 'cached            20' "$WORK/lt2.out" || fail "repeat loadtest not fully cached"

# sramfail -remote drives the same API through the typed client.
"$WORK/sramfail" -remote "http://$ADDR" -metric readcurrent -method g-s \
  -k 200 -n 2000 -seed 3 >"$WORK/remote.out" || fail "sramfail -remote"
grep -q '^failure rate' "$WORK/remote.out" || fail "sramfail -remote printed no result"

stop_server

# ---- Phase 3: drain crossing under load. ----
# loadtest SIGTERMs the server itself after 10 completions; every job
# accepted before the signal must still finish, later submissions must
# get the typed draining problem, and nothing may be lost. loadtest
# exits non-zero if any of that fails.
start_server
"$WORK/loadtest" -server "http://$ADDR" -jobs 30 -concurrency 4 \
  -workload readcurrent -k 200 -n 20000 \
  -drain-after 10 -drain-pid "$SERVER_PID" | tee "$WORK/lt3.out" \
  || fail "drain-crossing loadtest lost or failed jobs"
wait "$SERVER_PID" || fail "server exited non-zero after drain"
grep -q 'drain crossing' "$WORK/lt3.out" || fail "loadtest did not run in drain mode"
echo "dist_smoke: drain crossing OK (zero lost jobs, clean rejections)"

trap - EXIT
cleanup
echo "dist_smoke: PASS"
