package sram

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mc"
	"repro/internal/spice"
	"repro/internal/telemetry"
)

// MetricKind selects which cell performance the Metric evaluates.
type MetricKind int

// Supported circuit metrics.
const (
	// RNM: read noise margin (state-0 butterfly eye under read bias).
	RNM MetricKind = iota
	// WNM: write margin (collapsed state-1 eye under write bias).
	WNM
	// ReadCurrent: |I(M3)| in the read configuration.
	ReadCurrent
	// HoldSNM: retention margin with the word line off.
	Hold
	// DualReadCurrent: min of the two single-sided read currents.
	DualRead
)

func (k MetricKind) String() string {
	switch k {
	case RNM:
		return "rnm"
	case WNM:
		return "wnm"
	case ReadCurrent:
		return "readcurrent"
	case Hold:
		return "hold"
	case DualRead:
		return "dualread"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// Metric adapts a cell metric to the mc.Metric margin convention: the
// sample fails when the margin (metric value minus Spec) is negative.
// Variation coordinates are standard-Normal; coordinate j drives
// transistor Which[j] with ΔVth = SigmaVth·x_j.
//
// Metrics are safe for concurrent use and must not be copied after first
// use: evaluation leans on a shared engine free list and a once-computed
// warm-start anchor pool (see plan.go).
type Metric struct {
	Cell *Cell
	Kind MetricKind
	// Spec is the pass/fail threshold in the metric's own unit (volts
	// for margins, amperes for read current).
	Spec float64
	// Which lists the transistors exposed as variation coordinates; the
	// remaining transistors stay at nominal ΔVth = 0.
	Which []int
	// Scale converts the raw margin to a well-conditioned magnitude for
	// response-surface fitting (default 1).
	Scale float64

	// Engine free list and the deterministic warm-start anchors
	// (plan.go). Zero values are ready to use, keeping literal
	// construction working.
	mu         sync.Mutex
	engines    []*metricEngine
	anchorOnce sync.Once
	anchors    []spice.BatchAnchor
}

// AllTransistors is the full 6-dimensional variation space.
func AllTransistors() []int { return []int{M1, M2, M3, M4, M5, M6} }

// NewRNMMetric builds the paper's §V-A read-noise-margin workload: all six
// ΔVth as variation coordinates, failing when RNM < spec.
func NewRNMMetric(cell *Cell, spec float64) *Metric {
	return &Metric{Cell: cell, Kind: RNM, Spec: spec, Which: AllTransistors()}
}

// NewWNMMetric builds the §V-A write-margin workload.
func NewWNMMetric(cell *Cell, spec float64) *Metric {
	return &Metric{Cell: cell, Kind: WNM, Spec: spec, Which: AllTransistors()}
}

// NewReadCurrentMetric builds the §V-B read-current workload: a 2-D
// variation space over {ΔVth1, ΔVth3} (driver and access of the read
// path), failing when the read current drops below ith amperes.
func NewReadCurrentMetric(cell *Cell, ith float64) *Metric {
	return &Metric{
		Cell: cell, Kind: ReadCurrent, Spec: ith,
		Which: []int{M1, M3},
		// Read currents are µA-scale; rescale so margins are O(1) for
		// the response-surface solver.
		Scale: 1e6,
	}
}

// Dim implements mc.Metric.
func (m *Metric) Dim() int { return len(m.Which) }

// Value implements mc.Metric: the signed margin at normalized variation
// point x. Simulation failures (non-convergence) are treated as circuit
// failures with a finite, physically-grounded worst-case raw value
// (errorValue); keeping the margin finite protects the response-surface
// fits in Algorithm 4 from being poisoned by an occasional hard corner.
//
// Value is literally ValueBatch with a batch of one — the same engine
// code against the same anchor pool — which is what makes batched and
// scalar evaluation bit-identical per sample.
func (m *Metric) Value(x []float64) float64 {
	var out [1]float64
	xs := [1][]float64{x}
	m.ValueBatch(xs[:], out[:])
	return out[0]
}

// ValueBatch implements mc.BatchMetric: margins for a whole batch of
// samples, evaluated on one reusable engine (prebuilt netlist templates,
// cached solver workspaces, nominal-corner warm starts). out must have
// at least len(xs) entries. Each sample's result depends only on its own
// coordinates; see the determinism contract in plan.go.
func (m *Metric) ValueBatch(xs [][]float64, out []float64) {
	if len(out) < len(xs) {
		panic(fmt.Sprintf("sram: batch output length %d < %d samples", len(out), len(xs)))
	}
	out = out[:len(xs)]
	m.ensureAnchors()
	e := m.getEngine()
	defer m.putEngine(e)
	rows := e.dvthRows(m, xs)
	errs := make([]error, len(xs))
	m.rawBatch(e, rows, out, errs)
	scale := m.Scale
	//reprolint:ignore floateq Scale is user-assigned configuration, never computed; exact 0 is the unset sentinel
	if scale == 0 {
		scale = 1
	}
	for i, raw := range out {
		if errs[i] != nil || math.IsNaN(raw) || math.IsInf(raw, 0) {
			raw = m.errorValue()
		}
		out[i] = (raw - m.Spec) * scale
	}
}

// errorValue is the raw metric value substituted when a simulation fails
// to converge: the metric's physical worst case.
func (m *Metric) errorValue() float64 {
	switch m.Kind {
	case WNM:
		return WriteTripFloor // write never succeeds
	case ReadCurrent, DualRead:
		return 0 // no read current at all
	default:
		return -m.Cell.VDD // fully collapsed noise margin
	}
}

// SetTelemetry threads a telemetry registry into the cell's SPICE solves
// (solver iteration counts, fallback strategies, solve latencies). The
// top-level flow calls it when run telemetry is enabled; it is purely
// observational.
func (m *Metric) SetTelemetry(reg *telemetry.Registry) { m.Cell.Telemetry = reg }

// SetTelemetry is the TranMetric counterpart of Metric.SetTelemetry.
func (m *TranMetric) SetTelemetry(reg *telemetry.Registry) { m.Cell.Telemetry = reg }

var (
	_ mc.BatchMetric = (*Metric)(nil)
	_ mc.BatchMetric = (*TranMetric)(nil)
)
