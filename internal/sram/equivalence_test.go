package sram

import (
	"math/rand"
	"testing"

	"repro/internal/mc"
	"repro/internal/telemetry"
)

// batchMetric is the surface the equivalence suite exercises: both
// *Metric and *TranMetric expose scalar and batched evaluation.
type batchMetric interface {
	mc.Metric
	ValueBatch(xs [][]float64, out []float64)
}

// equivalenceSamples draws n seeded variation points with a deliberate
// mix of regimes: mostly mild (|x| ≲ 2.5σ, the warm-start sweet spot),
// with a tail of hard corners (≈ ±6σ) that trip the warm-start guard,
// the cold-solve escalation ladder, and — for write metrics — the
// bisection's bifurcation handling. The equivalence claim has to hold on
// every one of those paths, not just the easy ones.
func equivalenceSamples(seed int64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		for j := range x {
			x[j] = 2.5 * rng.NormFloat64()
		}
		// Every 8th sample is pushed to a hard corner.
		if i%8 == 7 {
			for j := range x {
				x[j] = 6 - 12*float64(j%2)
			}
		}
		xs[i] = x
	}
	return xs
}

// TestBatchScalarBitIdentical is the heart of the equivalence suite:
// for every workload, evaluating a set of samples through ValueBatch —
// partitioned into batches of 1, 7 and 256 — must reproduce the scalar
// Value results bit for bit (exact ==, no tolerance). This is what
// licenses the estimators to dispatch whole chunks to the batch kernel
// without perturbing any published number.
func TestBatchScalarBitIdentical(t *testing.T) {
	holdMetric := &Metric{Cell: Default90nm(), Kind: Hold, Spec: 0.08, Which: AllTransistors()}
	cases := []struct {
		name string
		m    batchMetric
		n    int
	}{
		{"readcurrent", ReadCurrentWorkload(), 256},
		{"dualread", DualReadCurrentWorkload(), 64},
		{"rnm", RNMWorkload(), 24},
		{"wnm", WNMWorkload(), 24},
		{"hold", holdMetric, 16},
		{"access", AccessTimeWorkload(), 24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			xs := equivalenceSamples(11, tc.n, tc.m.Dim())
			want := make([]float64, tc.n)
			for i, x := range xs {
				want[i] = tc.m.Value(x)
			}
			for _, bs := range []int{1, 7, 256} {
				got := make([]float64, tc.n)
				for lo := 0; lo < tc.n; lo += bs {
					hi := min(lo+bs, tc.n)
					tc.m.ValueBatch(xs[lo:hi], got[lo:hi])
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("batch size %d, sample %d: batch %v != scalar %v (x=%v)",
							bs, i, got[i], want[i], xs[i])
					}
				}
			}
		})
	}
}

// TestBatchInputRowsUntouched: ValueBatch must not mutate caller-owned
// sample rows — the estimators hand the same backing slices to telemetry
// and reducers after evaluation.
func TestBatchInputRowsUntouched(t *testing.T) {
	m := ReadCurrentWorkload()
	xs := equivalenceSamples(5, 32, m.Dim())
	saved := make([][]float64, len(xs))
	for i, x := range xs {
		saved[i] = append([]float64(nil), x...)
	}
	out := make([]float64, len(xs))
	m.ValueBatch(xs, out)
	for i := range xs {
		for j := range xs[i] {
			if xs[i][j] != saved[i][j] {
				t.Fatalf("sample %d coordinate %d mutated: %v -> %v", i, j, saved[i][j], xs[i][j])
			}
		}
	}
}

// TestBatchShortOutputPanics: handing ValueBatch an undersized output
// slice is a programming error and must fail loudly, not truncate.
func TestBatchShortOutputPanics(t *testing.T) {
	m := ReadCurrentWorkload()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for short output slice")
		}
	}()
	m.ValueBatch(make([][]float64, 2, 2), make([]float64, 1))
}

// TestWarmStartTelemetryPaths forces both warm-start outcomes through
// the read-current kernel and checks (a) the telemetry counters see
// them and (b) batch/scalar equivalence survives both paths.
//
// Nominal-ish samples sit next to the ΔVth=0 anchor, so the warm Newton
// converges and passes the read-disturb guard: warm_hit_total advances.
// A +6σ driver / −6σ access corner flips the cell during the read, so
// the guard rejects the warm solution and the kernel re-solves cold:
// warm_fallback_total advances — and the recorded current must still
// equal the scalar path's bit for bit.
func TestWarmStartTelemetryPaths(t *testing.T) {
	m := ReadCurrentWorkload()
	reg := telemetry.New()
	m.SetTelemetry(reg)
	hits := reg.Scope("spice").Counter("warm_hit_total")
	falls := reg.Scope("spice").Counter("warm_fallback_total")

	easy := [][]float64{{0.1, -0.2}, {0.5, 0.3}, {-0.4, 0.1}}
	out := make([]float64, len(easy))
	m.ValueBatch(easy, out)
	if hits.Value() == 0 {
		t.Fatalf("nominal-ish batch recorded no warm-start hits (fallbacks=%d)", falls.Value())
	}

	hard := [][]float64{{6, -6}, {7, -7}}
	before := falls.Value()
	outHard := make([]float64, len(hard))
	m.ValueBatch(hard, outHard)
	if falls.Value() == before {
		t.Fatalf("hard corner batch recorded no warm-start fallbacks (hits=%d)", hits.Value())
	}

	for i, x := range append(append([][]float64{}, easy...), hard...) {
		want := m.Value(x)
		var got float64
		if i < len(easy) {
			got = out[i]
		} else {
			got = outHard[i-len(easy)]
		}
		if got != want {
			t.Fatalf("sample %v: batch %v != scalar %v", x, got, want)
		}
	}
}

// TestCounterValueBatchDelegation: mc.Counter must count every sample of
// a batched evaluation exactly once and still return bit-identical
// values, whether the wrapped metric is batch-capable or scalar-only.
func TestCounterValueBatchDelegation(t *testing.T) {
	m := ReadCurrentWorkload()
	xs := equivalenceSamples(3, 16, m.Dim())
	want := make([]float64, len(xs))
	for i, x := range xs {
		want[i] = m.Value(x)
	}

	for _, tc := range []struct {
		name   string
		metric mc.Metric
	}{
		{"batched", m},
		{"scalar-only", scalarOnly{m}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := mc.NewCounter(tc.metric)
			got := make([]float64, len(xs))
			c.ValueBatch(xs, got)
			if c.Count() != int64(len(xs)) {
				t.Fatalf("counter saw %d evaluations, want %d", c.Count(), len(xs))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
				}
			}
		})
	}
}

// scalarOnly hides the ValueBatch fast path, leaving only mc.Metric.
type scalarOnly struct{ m *Metric }

func (s scalarOnly) Dim() int                  { return s.m.Dim() }
func (s scalarOnly) Value(x []float64) float64 { return s.m.Value(x) }
