package sram

import (
	"math"
	"testing"
)

// DualReadCurrent must be exactly symmetric under swapping the two
// access-transistor mismatches (the property that makes the two lobes of
// the §V-B region identical).
func TestDualReadSymmetry(t *testing.T) {
	c := Default90nm()
	for _, pair := range [][2]float64{{0.05, -0.02}, {0.12, 0.03}, {-0.04, 0.09}} {
		var a, b [NumTransistors]float64
		a[M3], a[M4] = pair[0], pair[1]
		b[M3], b[M4] = pair[1], pair[0]
		ia, err := c.DualReadCurrent(a)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := c.DualReadCurrent(b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ia-ib) > 1e-9*math.Abs(ia) {
			t.Fatalf("dual read not symmetric: %v vs %v for %v", ia, ib, pair)
		}
	}
}

// The dual current equals the min of the two sides, and a weak side drags
// it below the nominal single-sided value.
func TestDualReadIsMin(t *testing.T) {
	c := Default90nm()
	var z [NumTransistors]float64
	i0, err := c.DualReadCurrent(z)
	if err != nil {
		t.Fatal(err)
	}
	single, err := c.ReadCurrent(z)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i0-single) > 1e-9 {
		t.Fatalf("nominal dual %v should equal single-sided %v", i0, single)
	}
	var d [NumTransistors]float64
	d[M4] = 0.12 // weaken only the B side
	id, err := c.DualReadCurrent(d)
	if err != nil {
		t.Fatal(err)
	}
	if id >= i0 {
		t.Fatalf("weak B side should reduce the dual current: %v vs %v", id, i0)
	}
	// The A-side current is unchanged; the dual must be the B side.
	ia, err := c.ReadCurrent(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ia-i0)/i0 > 0.02 {
		t.Fatalf("A side should be unaffected by ΔVth4: %v vs %v", ia, i0)
	}
}

func TestMirrorInvolution(t *testing.T) {
	d := [NumTransistors]float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06}
	m := mirror(mirror(d))
	if m != d {
		t.Fatalf("mirror is not an involution: %v", m)
	}
	single := mirror(d)
	if single[M1] != d[M2] || single[M3] != d[M4] || single[M5] != d[M6] {
		t.Fatalf("mirror mapping wrong: %v", single)
	}
}

func TestStringers(t *testing.T) {
	if HoldConfig.String() != "hold" || ReadConfig.String() != "read" || WriteConfig.String() != "write" {
		t.Fatal("BiasConfig names wrong")
	}
	if BiasConfig(99).String() == "" {
		t.Fatal("unknown config should still print")
	}
	for k, want := range map[MetricKind]string{
		RNM: "rnm", WNM: "wnm", ReadCurrent: "readcurrent", Hold: "hold", DualRead: "dualread",
	} {
		if k.String() != want {
			t.Fatalf("MetricKind %d prints %q", k, k.String())
		}
	}
	if MetricKind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestMetricErrorValueFloors(t *testing.T) {
	cell := Default90nm()
	cases := map[MetricKind]float64{
		WNM:         WriteTripFloor,
		ReadCurrent: 0,
		DualRead:    0,
		RNM:         -cell.VDD,
		Hold:        -cell.VDD,
	}
	for kind, want := range cases {
		m := &Metric{Cell: cell, Kind: kind, Which: []int{M1}}
		if got := m.errorValue(); got != want {
			t.Fatalf("%v error floor %v, want %v", kind, got, want)
		}
	}
}

func TestMetricUnknownKindFailsClosed(t *testing.T) {
	m := &Metric{Cell: Default90nm(), Kind: MetricKind(99), Spec: 0, Which: []int{M1}}
	if v := m.Value([]float64{0}); v >= 0 {
		t.Fatalf("unknown kind should produce a failing margin, got %v", v)
	}
}

func TestTransferCurvesExported(t *testing.T) {
	c := Default90nm()
	g1, g2, err := TransferCurves(c, ReadConfig, [NumTransistors]float64{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.X) != c.Grid || len(g2.X) != c.Grid {
		t.Fatalf("curve lengths %d/%d, want %d", len(g1.X), len(g2.X), c.Grid)
	}
	// Monotone decreasing from the top rail down to the read-disturb
	// floor (the access transistor holds the output ≈0.1 V above ground
	// in the read configuration).
	if g1.Y[0] < 0.95 || g1.Y[len(g1.Y)-1] > 0.2 {
		t.Fatalf("g1 endpoints implausible: %v..%v", g1.Y[0], g1.Y[len(g1.Y)-1])
	}
	for i := 1; i < len(g1.Y); i++ {
		if g1.Y[i] > g1.Y[i-1]+1e-6 {
			t.Fatal("g1 not monotone")
		}
	}
}

func TestGridDefault(t *testing.T) {
	c := Default90nm()
	c.Grid = 0
	if c.grid() != 41 {
		t.Fatalf("default grid %d", c.grid())
	}
	c.Grid = 4 // below the floor
	if c.grid() != 41 {
		t.Fatalf("tiny grid should fall back: %d", c.grid())
	}
	c.Grid = 21
	if c.grid() != 21 {
		t.Fatalf("explicit grid ignored: %d", c.grid())
	}
}
