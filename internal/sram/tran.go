package sram

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/spice"
)

// Dynamic (transient) cell metrics. The paper motivates the read-current
// experiment through access-time failure — "the read current directly
// impacts the discharge speed of bit lines during a read operation"
// (§V-B). These metrics close that loop: they simulate the actual
// bitline discharge and write transition instead of using the static
// current as a proxy.

// TranSpec holds the transient test-bench parameters.
type TranSpec struct {
	// CBit is the bitline capacitance in farads (default 10 fF).
	CBit float64
	// CCell is the internal storage-node capacitance (default 0.2 fF).
	CCell float64
	// Step and Stop are the integration step and end time (defaults
	// 2 ps and 1 ns).
	Step, Stop float64
	// WLEdge is when the word line rises (default 50 ps, 20 ps ramp).
	WLEdge float64
	// Sense is the bitline differential that ends a read (default
	// 100 mV).
	Sense float64
}

func (s *TranSpec) defaults() TranSpec {
	d := TranSpec{CBit: 10e-15, CCell: 0.2e-15, Step: 2e-12, Stop: 1e-9, WLEdge: 50e-12, Sense: 0.1}
	if s == nil {
		return d
	}
	out := *s
	if out.CBit <= 0 {
		out.CBit = d.CBit
	}
	if out.CCell <= 0 {
		out.CCell = d.CCell
	}
	if out.Step <= 0 {
		out.Step = d.Step
	}
	if out.Stop <= 0 {
		out.Stop = d.Stop
	}
	if out.WLEdge <= 0 {
		out.WLEdge = d.WLEdge
	}
	if out.Sense <= 0 {
		out.Sense = d.Sense
	}
	return out
}

// buildTran assembles the cell with capacitive bitlines. When driveBL is
// true the bitlines are driven by sources (write); otherwise they float
// on their precharge capacitors (read sensing).
func (c *Cell) buildTran(spec TranSpec, dvth [NumTransistors]float64, driveBL bool, blLevel float64) *spice.Circuit {
	ckt := spice.NewCircuit()
	ckt.AddVSource("vdd", "vdd", "0", c.VDD)
	wl := ckt.AddVSource("vwl", "wl", "0", 0)
	wl.Waveform = spice.StepWaveform(0, c.VDD, spec.WLEdge, 20e-12)
	if driveBL {
		ckt.AddVSource("vbl", "bl", "0", blLevel)
		ckt.AddVSource("vblb", "blb", "0", c.VDD)
	}
	ckt.AddCapacitor("cbl", "bl", "0", spec.CBit)
	ckt.AddCapacitor("cblb", "blb", "0", spec.CBit)
	ckt.AddCapacitor("cq", "q", "0", spec.CCell)
	ckt.AddCapacitor("cqb", "qb", "0", spec.CCell)

	ckt.AddMOSFET("m1", "q", "qb", "0", "0", c.Driver).DeltaVth = dvth[M1]
	ckt.AddMOSFET("m2", "qb", "q", "0", "0", c.Driver).DeltaVth = dvth[M2]
	ckt.AddMOSFET("m3", "bl", "wl", "q", "0", c.Access).DeltaVth = dvth[M3]
	ckt.AddMOSFET("m4", "blb", "wl", "qb", "0", c.Access).DeltaVth = dvth[M4]
	ckt.AddMOSFET("m5", "q", "qb", "vdd", "vdd", c.Load).DeltaVth = dvth[M5]
	ckt.AddMOSFET("m6", "qb", "q", "vdd", "vdd", c.Load).DeltaVth = dvth[M6]
	return ckt
}

// AccessTime simulates a read of a stored 0: the precharged floating
// bitlines are released onto the cell when the word line rises, and the
// returned value is the time (from the WL edge) for the bitline
// differential to reach spec.Sense. If the differential never develops
// within spec.Stop — a read access failure — the remaining-window value
// spec.Stop − spec.WLEdge is returned, keeping the metric finite and
// monotone.
func (c *Cell) AccessTime(spec *TranSpec, dvth [NumTransistors]float64) (float64, error) {
	s := spec.defaults()
	ckt := c.buildTran(s, dvth, false, 0)
	tCross := -1.0
	prevT, prevD := 0.0, 0.0
	err := ckt.SolveTran(spice.TranOptions{
		Stop: s.Stop, Step: s.Step, Method: spice.BackwardEuler,
		DC: &spice.DCOptions{Telemetry: c.Telemetry},
		InitialConditions: map[string]float64{
			"bl": c.VDD, "blb": c.VDD, "q": 0, "qb": c.VDD,
		},
	}, func(p spice.TranPoint) bool {
		d := p.OP.Voltage("blb") - p.OP.Voltage("bl")
		if p.T > s.WLEdge && d >= s.Sense {
			// Linear interpolation of the crossing keeps the metric
			// smooth in the mismatch variables (no step-quantization
			// plateaus, which would break binary search and model fits).
			tCross = p.T
			if d > prevD {
				tCross = prevT + (s.Sense-prevD)*(p.T-prevT)/(d-prevD)
			}
			return false
		}
		prevT, prevD = p.T, d
		return true
	})
	if err != nil {
		return 0, fmt.Errorf("sram: access-time transient: %w", err)
	}
	if tCross < 0 {
		return s.Stop - s.WLEdge, nil
	}
	return tCross - s.WLEdge, nil
}

// WriteDelay simulates writing a 0 into a cell storing 1 (BL driven low)
// and returns the time from the WL edge until Q falls through VDD/2. A
// cell that never flips within spec.Stop returns the remaining-window
// value spec.Stop − spec.WLEdge (a write failure under any realistic
// timing spec).
func (c *Cell) WriteDelay(spec *TranSpec, dvth [NumTransistors]float64) (float64, error) {
	s := spec.defaults()
	ckt := c.buildTran(s, dvth, true, 0)
	tFlip := -1.0
	prevT, prevQ := 0.0, c.VDD
	err := ckt.SolveTran(spice.TranOptions{
		Stop: s.Stop, Step: s.Step, Method: spice.BackwardEuler,
		DC: &spice.DCOptions{Telemetry: c.Telemetry},
		InitialConditions: map[string]float64{
			"q": c.VDD, "qb": 0, "bl": 0, "blb": c.VDD,
		},
	}, func(p spice.TranPoint) bool {
		q := p.OP.Voltage("q")
		if p.T > s.WLEdge && q < 0.5*c.VDD {
			tFlip = p.T
			if q < prevQ {
				tFlip = prevT + (prevQ-0.5*c.VDD)*(p.T-prevT)/(prevQ-q)
			}
			return false
		}
		prevT, prevQ = p.T, q
		return true
	})
	if err != nil {
		return 0, fmt.Errorf("sram: write-delay transient: %w", err)
	}
	if tFlip < 0 {
		return s.Stop - s.WLEdge, nil
	}
	return tFlip - s.WLEdge, nil
}

// TranMetric adapts a dynamic metric to mc.Metric: margin = Spec − delay
// (fail when the cell is slower than Spec). Coordinates map to
// transistors through Which with ΔVth = SigmaVth·x, like the static
// Metric.
//
// Like Metric, a TranMetric is safe for concurrent use and must not be
// copied after first use: batched evaluation reuses transient test
// benches from a free list.
type TranMetric struct {
	Cell *Cell
	// Kind selects AccessTime ("access") or WriteDelay ("write").
	Kind string
	// Spec is the timing budget in seconds.
	Spec float64
	// Bench tunes the transient test bench (nil = defaults).
	Bench *TranSpec
	// Which lists the transistors exposed as variation coordinates.
	Which []int
	// Scale converts seconds to well-conditioned units for response
	// surfaces (default 1e12: picoseconds).
	Scale float64

	mu      sync.Mutex
	engines []*tranEngine
}

// Dim implements mc.Metric.
func (m *TranMetric) Dim() int { return len(m.Which) }

// Value implements mc.Metric: ValueBatch with a batch of one, so scalar
// and batched evaluation share one code path (and one result).
func (m *TranMetric) Value(x []float64) float64 {
	var out [1]float64
	xs := [1][]float64{x}
	m.ValueBatch(xs[:], out[:])
	return out[0]
}

// tranEngine is one worker's reusable transient test bench: the cell
// with capacitive bitlines built once, re-biased per sample by the batch
// kernel. The transient itself needs no warm-start anchors — every step
// already warm-chains from the previous one.
type tranEngine struct {
	ckt    *spice.Circuit
	ms     [NumTransistors]*spice.MOSFET
	rowBuf []float64
	rows   [][]float64
	err    error
}

func (m *TranMetric) newEngine(s TranSpec) *tranEngine {
	e := &tranEngine{}
	switch m.Kind {
	case "access":
		e.ckt = m.Cell.buildTran(s, [NumTransistors]float64{}, false, 0)
	case "write":
		e.ckt = m.Cell.buildTran(s, [NumTransistors]float64{}, true, 0)
	default:
		e.err = errors.New("sram: unknown tran metric kind")
		return e
	}
	for i, name := range [NumTransistors]string{"m1", "m2", "m3", "m4", "m5", "m6"} {
		mos, err := e.ckt.MOSFETByName(name)
		if err != nil {
			e.err = err
			return e
		}
		e.ms[i] = mos
	}
	return e
}

func (m *TranMetric) getEngine(s TranSpec) *tranEngine {
	m.mu.Lock()
	if n := len(m.engines); n > 0 {
		e := m.engines[n-1]
		m.engines = m.engines[:n-1]
		m.mu.Unlock()
		return e
	}
	m.mu.Unlock()
	return m.newEngine(s)
}

func (m *TranMetric) putEngine(e *tranEngine) {
	m.mu.Lock()
	m.engines = append(m.engines, e)
	m.mu.Unlock()
}

// ValueBatch implements mc.BatchMetric: margins for a batch of samples on
// one reusable test bench. The transient kernel adds a two-rate step
// schedule — coarse steps across the quiescent pre-wordline lead-in,
// fine steps once the cell is active — and the crossing detector stops
// each sample's integration as soon as its delay is resolved.
func (m *TranMetric) ValueBatch(xs [][]float64, out []float64) {
	if len(out) < len(xs) {
		panic(fmt.Sprintf("sram: batch output length %d < %d samples", len(out), len(xs)))
	}
	out = out[:len(xs)]
	s := m.Bench.defaults()
	e := m.getEngine(s)
	defer m.putEngine(e)
	e.rowBuf, e.rows = buildDvthRows(e.rowBuf, e.rows, m.Which, m.Cell.SigmaVth, xs, "tran metric")

	delays := make([]float64, len(xs))
	var errs []error
	if e.err == nil {
		errs = m.runTranBatch(e, s, delays)
	}
	scale := m.Scale
	//reprolint:ignore floateq Scale is user-assigned configuration, never computed; exact 0 is the unset sentinel
	if scale == 0 {
		scale = 1e12
	}
	for i := range out {
		delay := delays[i]
		if e.err != nil || errs[i] != nil {
			// Non-convergence means the cell is broken: maximal delay.
			delay = s.Stop
		}
		out[i] = (m.Spec - delay) * scale
	}
}

// runTranBatch integrates every sample's transient on the engine's bench
// and extracts the per-sample delay (crossing time minus the WL edge,
// interpolated; the remaining window on no crossing). Returns per-sample
// solve errors.
func (m *TranMetric) runTranBatch(e *tranEngine, s TranSpec, delays []float64) []error {
	c := m.Cell
	opts := spice.TranBatchOptions{
		Tran: spice.TranOptions{
			Stop: s.Stop, Step: s.Step, Method: spice.BackwardEuler,
			// Only node voltages are read, per step and per crossing.
			DC: &spice.DCOptions{Telemetry: c.Telemetry, NoBranchCurrents: true},
			// Nothing moves before the word line rises, so the lead-in is
			// integrated at a fifth of the resolution; the fine step takes
			// over exactly at the WL edge (the first waveform breakpoint).
			CoarseStep:  s.WLEdge / 5,
			CoarseUntil: s.WLEdge,
		},
		MOSFETs: e.ms[:],
	}
	// Per-sample crossing state, reset when the kernel moves to the next
	// sample. The detector mirrors AccessTime/WriteDelay exactly,
	// including the linear interpolation that keeps the metric smooth.
	cur := -1
	var prevT, prevV float64
	for i := range delays {
		delays[i] = s.Stop - s.WLEdge
	}
	var fn func(i int, p spice.TranPoint) bool
	switch m.Kind {
	case "access":
		opts.Tran.InitialConditions = map[string]float64{
			"bl": c.VDD, "blb": c.VDD, "q": 0, "qb": c.VDD,
		}
		fn = func(i int, p spice.TranPoint) bool {
			if i != cur {
				cur, prevT, prevV = i, 0, 0
			}
			d := p.OP.Voltage("blb") - p.OP.Voltage("bl")
			if p.T > s.WLEdge && d >= s.Sense {
				t := p.T
				if d > prevV {
					t = prevT + (s.Sense-prevV)*(p.T-prevT)/(d-prevV)
				}
				delays[i] = t - s.WLEdge
				return false
			}
			prevT, prevV = p.T, d
			return true
		}
	case "write":
		opts.Tran.InitialConditions = map[string]float64{
			"q": c.VDD, "qb": 0, "bl": 0, "blb": c.VDD,
		}
		fn = func(i int, p spice.TranPoint) bool {
			if i != cur {
				cur, prevT, prevV = i, 0, c.VDD
			}
			q := p.OP.Voltage("q")
			if p.T > s.WLEdge && q < 0.5*c.VDD {
				t := p.T
				if q < prevV {
					t = prevT + (prevV-0.5*c.VDD)*(p.T-prevT)/(prevV-q)
				}
				delays[i] = t - s.WLEdge
				return false
			}
			prevT, prevV = p.T, q
			return true
		}
	}
	return e.ckt.SolveTranBatch(e.rows, &opts, fn)
}

// AccessTimeWorkload is the dynamic counterpart of the read-current
// experiment: access-time failure over the read-path pair {ΔVth1, ΔVth3}
// of the fast-read cell. The spec is calibrated like the static
// workloads (see EXPERIMENTS.md): nominal ≈ 31.3 ps with a
// ‖∇‖ ≈ 1.44 ps/σ gradient, so a 39.7 ps budget puts the boundary near
// 4.7σ along the steepest direction.
func AccessTimeWorkload() *TranMetric {
	return &TranMetric{
		Cell: FastRead90nm(), Kind: "access", Spec: 39.7e-12,
		Which: []int{M1, M3},
	}
}
