package sram

import (
	"errors"
	"math"
)

// Array-level yield modeling: the reason cell failure rates must reach
// the 1e-8..1e-6 regime at all (paper §I: "roughly half of the area of an
// advanced microprocessor chip is occupied by SRAM"). Given a per-cell
// failure probability from any estimator, these helpers compute the
// probability that a memory array — optionally with redundant repair
// rows — is fully functional.

// ArrayYield returns the probability that all cells of an array with the
// given cell count work, Y = (1−pf)^cells, computed in log space so
// billions of cells at pf ≈ 1e-6 do not underflow.
func ArrayYield(pf float64, cells int64) (float64, error) {
	if pf < 0 || pf > 1 {
		return 0, errors.New("sram: failure probability outside [0, 1]")
	}
	if cells < 0 {
		return 0, errors.New("sram: negative cell count")
	}
	//reprolint:ignore floateq exact probability-boundary fast path; Log1p handles every value strictly between 0 and 1
	if pf == 0 || cells == 0 {
		return 1, nil
	}
	//reprolint:ignore floateq exact probability-boundary fast path; Log1p handles every value strictly between 0 and 1
	if pf == 1 {
		return 0, nil
	}
	return math.Exp(float64(cells) * math.Log1p(-pf)), nil
}

// RedundantArrayYield returns the yield of an array organized as rows of
// rowCells cells with spare redundant rows: the array works when at most
// spareRows rows contain any failing cell. Row failures are Poisson-
// binomial; with identical cells the defective-row count is binomial
// with p_row = 1 − (1−pf)^rowCells, and for large row counts the Poisson
// tail is used to keep the computation stable.
func RedundantArrayYield(pf float64, rows, rowCells int64, spareRows int) (float64, error) {
	if rows <= 0 || rowCells <= 0 {
		return 0, errors.New("sram: rows and rowCells must be positive")
	}
	if spareRows < 0 {
		return 0, errors.New("sram: negative spare count")
	}
	rowOK, err := ArrayYield(pf, rowCells)
	if err != nil {
		return 0, err
	}
	pRow := 1 - rowOK
	// λ = rows·pRow; for realistic arrays λ is small and the Poisson
	// approximation of the binomial is accurate to O(pRow).
	lambda := float64(rows) * pRow
	if lambda > 700 {
		return 0, nil // effectively zero yield
	}
	sum := 0.0
	term := math.Exp(-lambda) // k = 0
	for k := 0; k <= spareRows; k++ {
		if k > 0 {
			term *= lambda / float64(k)
		}
		sum += term
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// RequiredPf inverts ArrayYield: the per-cell failure probability needed
// for the target yield over the given number of cells,
// pf = 1 − yield^(1/cells).
func RequiredPf(targetYield float64, cells int64) (float64, error) {
	if targetYield <= 0 || targetYield >= 1 {
		return 0, errors.New("sram: target yield must be in (0, 1)")
	}
	if cells <= 0 {
		return 0, errors.New("sram: cell count must be positive")
	}
	return -math.Expm1(math.Log(targetYield) / float64(cells)), nil
}
