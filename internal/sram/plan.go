package sram

import (
	"fmt"

	"repro/internal/spice"
)

// This file is the metric-side half of the batched solve kernel (the
// spice side is internal/spice/batch.go). Each Metric owns a set of
// reusable simulation engines — prebuilt circuit templates plus solver
// workspaces — and a deterministic anchor pool of nominal-corner
// solutions used to warm-start every sample's Newton solves.
//
// Determinism contract: Value IS ValueBatch with a batch of one. Both
// route every sample through the same engine code against the same
// anchor pool, so a sample's result is a pure function of its own
// coordinates — bit-identical across batch sizes, sample order and
// worker counts. That is only possible because anchors are computed once
// per Metric from the nominal (ΔVth = 0) cell, never harvested from
// other samples in the batch; see DESIGN.md §12 for why chunk-history
// warm-starting was rejected.
//
// Warm-start policy by metric kind:
//
//	readcurrent/dualread  warm from the nominal read operating point,
//	                      guarded to the intended storage basin
//	rnm/hold              each transfer-curve point warms from the same
//	                      point of the nominal butterfly sweep
//	wnm                   never warm-started: the write-trip bisection
//	                      probes a bistable circuit near its bifurcation,
//	                      where warm continuation would track the
//	                      vanishing state-1 branch past the trip point
//	                      and bias the margin (hysteresis); probes stay
//	                      cold and gain only template/workspace reuse
//	access (transient)    template reuse plus the two-rate integrator
//	                      schedule; the transient itself warm-chains
//	                      step to step as it always has

// cellTemplate is a prebuilt 6-T netlist reused across samples: only the
// MOSFETs' ΔVth (and, for write probes, the BL source) change per sample.
type cellTemplate struct {
	ckt *spice.Circuit
	ms  [NumTransistors]*spice.MOSFET
	vbl *spice.VSource
	blE float64 // vbl's build-time value, restored before each sample
}

func newCellTemplate(c *Cell, cfg BiasConfig) (*cellTemplate, error) {
	ckt, ms := c.build(cfg, [NumTransistors]float64{})
	vbl, err := ckt.VSourceByName("vbl")
	if err != nil {
		return nil, err
	}
	return &cellTemplate{ckt: ckt, ms: ms, vbl: vbl, blE: vbl.E}, nil
}

func (t *cellTemplate) setDvth(row []float64) {
	for i, m := range t.ms {
		m.DeltaVth = row[i]
	}
}

// sweepTemplate is a prebuilt transfer-curve netlist: the cell plus a
// forcing source on one storage node.
type sweepTemplate struct {
	ckt      *spice.Circuit
	ms       [NumTransistors]*spice.MOSFET
	force    *spice.VSource
	measured string
	guess    map[string]float64
}

func newSweepTemplate(c *Cell, cfg BiasConfig, forced, measured string) (*sweepTemplate, error) {
	ckt, ms := c.build(cfg, [NumTransistors]float64{})
	ckt.AddVSource("vforce", forced, "0", 0)
	force, err := ckt.VSourceByName("vforce")
	if err != nil {
		return nil, err
	}
	return &sweepTemplate{
		ckt: ckt, ms: ms, force: force, measured: measured,
		guess: map[string]float64{measured: c.VDD},
	}, nil
}

// metricEngine is one worker's reusable simulation state for a Metric.
// An engine serves one sample at a time; Metric keeps a free list so
// concurrent callers each hold their own.
type metricEngine struct {
	read   *cellTemplate // readcurrent / dualread / wnm
	g1, g2 *sweepTemplate
	c1, c2 curve // per-sample transfer-curve buffers

	rowBuf []float64   // backing store for rows
	rows   [][]float64 // per-sample ΔVth rows handed to the batch kernel
	err    error       // template construction failure (poisons every sample)
}

func (m *Metric) newEngine() *metricEngine {
	e := &metricEngine{}
	switch m.Kind {
	case ReadCurrent, DualRead, WNM:
		e.read, e.err = newCellTemplate(m.Cell, ReadConfig)
	case RNM:
		e.g1, e.err = newSweepTemplate(m.Cell, ReadConfig, "q", "qb")
		if e.err == nil {
			e.g2, e.err = newSweepTemplate(m.Cell, ReadConfig, "qb", "q")
		}
	case Hold:
		e.g1, e.err = newSweepTemplate(m.Cell, HoldConfig, "q", "qb")
		if e.err == nil {
			e.g2, e.err = newSweepTemplate(m.Cell, HoldConfig, "qb", "q")
		}
	}
	return e
}

func (m *Metric) getEngine() *metricEngine {
	m.mu.Lock()
	if n := len(m.engines); n > 0 {
		e := m.engines[n-1]
		m.engines = m.engines[:n-1]
		m.mu.Unlock()
		return e
	}
	m.mu.Unlock()
	return m.newEngine()
}

func (m *Metric) putEngine(e *metricEngine) {
	m.mu.Lock()
	m.engines = append(m.engines, e)
	m.mu.Unlock()
}

// dvthRows maps normalized coordinates to per-transistor ΔVth rows,
// reusing the engine's backing storage.
func (e *metricEngine) dvthRows(m *Metric, xs [][]float64) [][]float64 {
	e.rowBuf, e.rows = buildDvthRows(e.rowBuf, e.rows, m.Which, m.Cell.SigmaVth, xs, "metric")
	return e.rows
}

// buildDvthRows is the shared coordinate→ΔVth mapper behind the static
// and transient engines: row i holds all NumTransistors mismatches of
// sample i (unlisted transistors stay nominal). The backing buffers are
// reused; a sample with the wrong coordinate count is an API-misuse
// panic, matching the scalar Value contract.
func buildDvthRows(rowBuf []float64, rows [][]float64, which []int, sigma float64, xs [][]float64, label string) ([]float64, [][]float64) {
	need := len(xs) * NumTransistors
	if cap(rowBuf) < need {
		rowBuf = make([]float64, need)
		rows = make([][]float64, 0, len(xs))
	}
	rowBuf = rowBuf[:need]
	for i := range rowBuf {
		rowBuf[i] = 0
	}
	rows = rows[:0]
	for i, x := range xs {
		if len(x) != len(which) {
			panic(fmt.Sprintf("sram: %s got %d coordinates, want %d", label, len(x), len(which)))
		}
		row := rowBuf[i*NumTransistors : (i+1)*NumTransistors]
		for j, tr := range which {
			row[tr] = sigma * x[j]
		}
		rows = append(rows, row)
	}
	return rowBuf, rows
}

// readGuess is the initial guess selecting the read-0 state.
func readGuess(c *Cell) map[string]float64 {
	return map[string]float64{"q": 0.05, "qb": c.VDD}
}

// ensureAnchors computes the metric's warm-start anchor pool exactly
// once: nominal-corner solutions that every sample (scalar or batched)
// warms from. Anchor solves are plain cold solves on throwaway
// templates; a failure simply leaves the pool empty and samples solve
// cold.
func (m *Metric) ensureAnchors() {
	m.anchorOnce.Do(func() {
		c := m.Cell
		switch m.Kind {
		case ReadCurrent, DualRead:
			t, err := newCellTemplate(c, ReadConfig)
			if err != nil {
				return
			}
			op, err := t.ckt.SolveDC(&spice.DCOptions{
				InitialGuess: readGuess(c), Telemetry: c.Telemetry,
			})
			if err != nil {
				return
			}
			m.anchors = []spice.BatchAnchor{
				{DeltaVth: make([]float64, NumTransistors), OP: op},
			}
		}
		// RNM and Hold need no anchor pool: their transfer-curve sweeps
		// warm-chain each grid point from the sample's own previous
		// point (see sweepCurve), which is deterministic per sample by
		// construction.
	})
}

// readCurrentBatch solves one read configuration for every row through
// the spice batch kernel and writes |I(M3)| per sample into out.
// outErrs[i] reports sample i's solve failure.
func (m *Metric) readCurrentBatch(t *cellTemplate, rows [][]float64, out []float64, outErrs []error) {
	c := m.Cell
	t.vbl.E = t.blE
	guard := func(op *spice.OperatingPoint) bool {
		// The warm start must have stayed in the read-0 basin; a flip
		// means the anchor was a bad seed for this corner, and the cold
		// path (which may legitimately land flipped) decides.
		return op.Voltage("q") < 0.5*c.VDD
	}
	res := t.ckt.SolveDCBatch(rows, &spice.BatchOptions{
		// The metric reads only node voltages (MOSFET.Current recomputes
		// from them), so branch-current recovery is skipped batch-wide.
		DC: &spice.DCOptions{
			InitialGuess: readGuess(c), Telemetry: c.Telemetry,
			NoBranchCurrents: true,
		},
		MOSFETs: t.ms[:],
		Anchors: m.anchors,
		Guard:   guard,
	})
	for i, op := range res.Ops {
		if res.Errs[i] != nil {
			outErrs[i] = fmt.Errorf("sram: read-current operating point: %w", res.Errs[i])
			continue
		}
		// Current reads the device model at the sample's ΔVth, which the
		// kernel has since overwritten with the final row's; restore it.
		t.setDvth(rows[i])
		cur := t.ms[M3].Current(op)
		if cur < 0 {
			cur = -cur
		}
		out[i], outErrs[i] = cur, nil
	}
}

// mirrorRow is mirror() for flat rows: swap the A and B sides in place.
func mirrorRow(row []float64) {
	row[M1], row[M2] = row[M2], row[M1]
	row[M3], row[M4] = row[M4], row[M3]
	row[M5], row[M6] = row[M6], row[M5]
}

// rawBatch computes the raw metric value for every row, writing values
// into out and per-sample failures into outErrs.
func (m *Metric) rawBatch(e *metricEngine, rows [][]float64, out []float64, outErrs []error) {
	if e.err != nil {
		for i := range rows {
			outErrs[i] = e.err
		}
		return
	}
	switch m.Kind {
	case ReadCurrent:
		m.readCurrentBatch(e.read, rows, out, outErrs)
	case DualRead:
		m.readCurrentBatch(e.read, rows, out, outErrs)
		ia := append([]float64(nil), out[:len(rows)]...)
		iaErrs := append([]error(nil), outErrs[:len(rows)]...)
		for _, row := range rows {
			mirrorRow(row)
		}
		m.readCurrentBatch(e.read, rows, out, outErrs)
		for i := range rows {
			if outErrs[i] == nil {
				outErrs[i] = iaErrs[i]
			}
			if ia[i] < out[i] {
				out[i] = ia[i]
			}
		}
	case RNM, Hold:
		for i, row := range rows {
			out[i], outErrs[i] = m.snmSample(e, row)
		}
	case WNM:
		for i, row := range rows {
			out[i], outErrs[i] = m.writeSample(e, row)
		}
	default:
		for i := range rows {
			outErrs[i] = fmt.Errorf("sram: unknown metric kind %v", m.Kind)
		}
	}
}

// snmSample extracts the state-0 butterfly eye for one sample on the
// engine's transfer-curve templates.
func (m *Metric) snmSample(e *metricEngine, row []float64) (float64, error) {
	if err := m.sweepCurve(e.g1, row, &e.c1); err != nil {
		return 0, err
	}
	if err := m.sweepCurve(e.g2, row, &e.c2); err != nil {
		return 0, err
	}
	return eyeSquare(&e.c1, &e.c2, 0, m.Cell.VDD), nil
}

// sweepCurve traces one transfer curve on the engine template: point 0
// solves cold from the bias-state initial guess, point 1 warm-starts
// from point 0, and every later point warm-starts from the secant
// extrapolation of the sample's own two previous points — the classic
// predictor-corrector continuation sweep. Chaining stays strictly
// inside the sample (no state crosses sample boundaries), so results
// are independent of batch size, sample order and worker count; and
// because the predicted point tracks the perturbed curve itself, it is
// closer than any fixed nominal anchor, cutting Newton iterations per
// grid point well below an anchor-pool policy.
func (m *Metric) sweepCurve(t *sweepTemplate, row []float64, out *curve) error {
	c := m.Cell
	for i, ms := range t.ms {
		ms.DeltaVth = row[i]
	}
	n := c.grid()
	if cap(out.xs) < n {
		out.xs = make([]float64, n)
		out.ys = make([]float64, n)
	}
	out.xs, out.ys = out.xs[:n], out.ys[:n]
	orig := t.force.E
	defer func() { t.force.E = orig }()
	// Only the measured node voltage is read per point; skipping branch
	// recovery drops one full device stamp from every grid solve.
	opts := &spice.DCOptions{
		InitialGuess: t.guess, Telemetry: c.Telemetry,
		NoBranchCurrents: true,
	}
	var prev, prev2 *spice.OperatingPoint
	for i := 0; i < n; i++ {
		// The same grid formula as spice.Sweep.
		v := (c.VDD) * float64(i) / float64(n-1)
		t.force.E = v
		anchor := prev
		if prev2 != nil {
			anchor = prev.PredictFrom(prev2)
		}
		op, err := t.ckt.SolveDCFrom(anchor, 0, nil, opts)
		if err != nil {
			return fmt.Errorf("sram: %v transfer curve point %d: %w", m.Kind, i, err)
		}
		prev2, prev = prev, op
		out.xs[i] = v
		out.ys[i] = op.Voltage(t.measured)
	}
	return nil
}

// writeSample ports Cell.WriteTrip onto the engine template: the same
// cold bisection for the bitline trip voltage, minus the per-sample
// netlist rebuild. Probes are never warm-started (see the policy note in
// the file comment).
func (m *Metric) writeSample(e *metricEngine, row []float64) (float64, error) {
	c := m.Cell
	t := e.read
	t.setDvth(row)
	t.vbl.E = t.blE // undo the previous sample's bisection
	opts := &spice.DCOptions{
		InitialGuess: map[string]float64{"q": c.VDD, "qb": 0},
		Telemetry:    c.Telemetry,
		// Probes only compare V(q) against the trip threshold.
		NoBranchCurrents: true,
	}
	flipped := func(bl float64) (bool, error) {
		t.vbl.E = bl
		op, err := t.ckt.SolveDC(opts)
		if err != nil {
			return false, fmt.Errorf("sram: write-trip solve at BL=%.3f: %w", bl, err)
		}
		return op.Voltage("q") < 0.5*c.VDD, nil
	}
	lo, hi := WriteTripFloor, c.VDD
	if f, err := flipped(hi); err != nil {
		return 0, err
	} else if f {
		return hi, nil
	}
	if f, err := flipped(lo); err != nil {
		return 0, err
	} else if !f {
		return lo, nil // saturated: cannot write even at the floor
	}
	for i := 0; i < 14; i++ {
		mid := 0.5 * (lo + hi)
		f, err := flipped(mid)
		if err != nil {
			// Same classification as Cell.WriteTrip: non-convergence at
			// the bifurcation counts as flipped.
			f = true
		}
		if f {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}
