package sram

// Calibrated experiment workloads. The paper's 90 nm PDK sets its specs
// implicitly; our compact model needs explicit calibration so each failure
// probability lands in the paper's 1e-7..1e-6 decade (see EXPERIMENTS.md
// for the calibration measurements):
//
//   - RNM:  nominal 215 mV, ‖∇RNM‖ ≈ 21.8 mV/σ ⇒ spec 111 mV puts the
//     nearest failure boundary at ≈ 4.75σ.
//   - WNM:  nominal write-trip 316 mV, ‖∇WTV‖ ≈ 25.4 mV/σ (linear out to
//     8σ) ⇒ spec 195 mV.
//   - Read current: FastRead90nm cell, nominal 50.4 µA; Ith = 34.5 µA
//     puts the 2-D failure probability at ≈ 2e-6 by grid quadrature. The
//     failure region is the non-convex banana of §V-B: its boundary bends
//     from the weak-driver lobe on the +x1 axis (r ≈ 4.7σ) symmetrically
//     into both half-planes, reaching the read-disturb flip lobes at
//     |x3| ≈ 6–8σ, so the high-probability failure band wraps ≈ ±50°
//     around the most-likely failure point.
const (
	// RNMSpec is the read-noise-margin pass threshold in volts.
	RNMSpec = 0.111
	// WNMSpec is the write-trip pass threshold in volts.
	WNMSpec = 0.195
	// ReadCurrentSpec is the read-current pass threshold in amperes.
	ReadCurrentSpec = 34.5e-6
	// DualReadCurrentSpec is the dual-sided read-current threshold in
	// amperes: the stable cell's single-path current at a 4.8σ access
	// mismatch, putting each of the two symmetric lobes at ≈ 7.9e-7 and
	// the union at ≈ 1.6e-6.
	DualReadCurrentSpec = 29.42e-6
)

// FastRead90nm returns the read-current experiment variant of the cell: a
// deliberately read-marginal sizing (wide low-VT access, narrow high-VT
// driver) whose read-current failure boundary bends around the origin,
// reproducing the irregular non-convex region of the paper's §V-B.
func FastRead90nm() *Cell {
	c := Default90nm()
	c.Access.W = 360e-9
	c.Access.VT0 = 0.28
	c.Driver.W = 130e-9
	c.Driver.VT0 = 0.38
	return c
}

// RNMWorkload is the §V-A read-noise-margin experiment: 6-D variation
// space on the stable cell.
func RNMWorkload() *Metric { return NewRNMMetric(Default90nm(), RNMSpec) }

// WNMWorkload is the §V-A write-margin experiment: 6-D variation space on
// the stable cell.
func WNMWorkload() *Metric { return NewWNMMetric(Default90nm(), WNMSpec) }

// ReadCurrentWorkload is the single-path read-current experiment: 2-D
// variation space {ΔVth1, ΔVth3} on the fast-read cell. Its failure
// region is the mildly non-convex banana of Fig. 13's style; all four
// methods eventually converge on it (the easier regime of §V-B).
func ReadCurrentWorkload() *Metric {
	return NewReadCurrentMetric(FastRead90nm(), ReadCurrentSpec)
}

// DualReadCurrentWorkload is the headline §V-B experiment of this
// reproduction: the dual-sided read current min(I_read0, I_read1) over
// the access-transistor pair {ΔVth3, ΔVth4} of the stable cell. The
// failure region is a single connected, strongly non-convex L — two
// orthogonal high-probability lobes joined only at an improbable corner —
// on which mean-shift importance sampling and Cartesian Gibbs sampling
// underestimate the failure rate while spherical Gibbs sampling stays
// correct, reproducing the paper's Table II contrast.
func DualReadCurrentWorkload() *Metric {
	return &Metric{
		Cell: Default90nm(), Kind: DualRead, Spec: DualReadCurrentSpec,
		Which: []int{M3, M4}, Scale: 1e6,
	}
}
