package sram

import "testing"

func TestRetentionVoltageNominal(t *testing.T) {
	c := Default90nm()
	drv, err := c.RetentionVoltage(zero)
	if err != nil {
		t.Fatal(err)
	}
	if drv < 0.04 || drv > 0.6 {
		t.Fatalf("nominal DRV %v outside plausible range", drv)
	}
}

func TestRetentionVoltageWorsensWithMismatch(t *testing.T) {
	c := Default90nm()
	drv0, err := c.RetentionVoltage(zero)
	if err != nil {
		t.Fatal(err)
	}
	// Strongly skewed cell: driver A weak, driver B strong — the hold
	// loop is imbalanced and needs more supply to stay bistable.
	var d [NumTransistors]float64
	d[M1] = 0.15
	d[M2] = -0.15
	d[M5] = -0.15
	d[M6] = 0.15
	drv1, err := c.RetentionVoltage(d)
	if err != nil {
		t.Fatal(err)
	}
	if drv1 <= drv0 {
		t.Fatalf("skewed cell should need more retention supply: %v -> %v", drv0, drv1)
	}
}

func TestRetentionVoltageBrokenCellSaturates(t *testing.T) {
	c := Default90nm()
	var d [NumTransistors]float64
	d[M1] = 0.9  // driver A dead: nothing holds Q low
	d[M5] = -0.9 // load A absurdly strong: pulls Q up regardless
	drv, err := c.RetentionVoltage(d)
	if err != nil {
		t.Fatal(err)
	}
	if drv != c.VDD {
		t.Fatalf("unretentive cell should saturate at VDD: %v", drv)
	}
}
