package sram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArrayYieldKnown(t *testing.T) {
	// 1e-6 per cell over 1M cells: Y = (1−1e-6)^1e6 ≈ e^{−1} ≈ 0.3679.
	y, err := ArrayYield(1e-6, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-math.Exp(-1)) > 1e-4 {
		t.Fatalf("yield %v, want ≈ e^-1", y)
	}
	if y, _ := ArrayYield(0, 1e9); y != 1 {
		t.Fatal("zero pf should give unit yield")
	}
	if y, _ := ArrayYield(1, 10); y != 0 {
		t.Fatal("certain failure should give zero yield")
	}
	if y, _ := ArrayYield(0.5, 0); y != 1 {
		t.Fatal("empty array always yields")
	}
}

func TestArrayYieldValidation(t *testing.T) {
	if _, err := ArrayYield(-0.1, 10); err == nil {
		t.Fatal("negative pf should error")
	}
	if _, err := ArrayYield(1.1, 10); err == nil {
		t.Fatal("pf>1 should error")
	}
	if _, err := ArrayYield(0.5, -1); err == nil {
		t.Fatal("negative cells should error")
	}
}

func TestArrayYieldNoUnderflow(t *testing.T) {
	// A billion cells at 1e-9: Y ≈ e^{−1}; naive (1−p)^n would be fine,
	// but 1e-15 per cell over 1e12 cells must not underflow either.
	y, err := ArrayYield(1e-15, 1_000_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-math.Exp(-1e-3)) > 1e-9 {
		t.Fatalf("yield %v", y)
	}
}

func TestRedundantArrayYieldImproves(t *testing.T) {
	pf := 2e-6
	var rows, rowCells int64 = 4096, 256
	y0, err := RedundantArrayYield(pf, rows, rowCells, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero spares must equal the plain array yield.
	plain, _ := ArrayYield(pf, rows*rowCells)
	if math.Abs(y0-plain) > 1e-3 {
		t.Fatalf("0-spare redundant yield %v vs plain %v", y0, plain)
	}
	prev := y0
	for _, spares := range []int{1, 2, 4, 8} {
		y, err := RedundantArrayYield(pf, rows, rowCells, spares)
		if err != nil {
			t.Fatal(err)
		}
		if y <= prev {
			t.Fatalf("%d spares should improve yield: %v -> %v", spares, prev, y)
		}
		prev = y
	}
	if prev < 0.99 {
		t.Fatalf("8 spares at λ≈2 should nearly saturate yield: %v", prev)
	}
}

func TestRedundantArrayYieldValidation(t *testing.T) {
	if _, err := RedundantArrayYield(1e-6, 0, 10, 1); err == nil {
		t.Fatal("zero rows should error")
	}
	if _, err := RedundantArrayYield(1e-6, 10, 0, 1); err == nil {
		t.Fatal("zero rowCells should error")
	}
	if _, err := RedundantArrayYield(1e-6, 10, 10, -1); err == nil {
		t.Fatal("negative spares should error")
	}
	if y, _ := RedundantArrayYield(0.9, 1_000_000, 1024, 2); y != 0 {
		t.Fatal("hopeless array should yield 0")
	}
}

func TestRequiredPfRoundTrip(t *testing.T) {
	f := func(u uint16) bool {
		target := 0.5 + 0.49*float64(u)/65535
		cells := int64(1_000_000)
		pf, err := RequiredPf(target, cells)
		if err != nil {
			return false
		}
		y, err := ArrayYield(pf, cells)
		if err != nil {
			return false
		}
		return math.Abs(y-target) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := RequiredPf(0, 10); err == nil {
		t.Fatal("target 0 should error")
	}
	if _, err := RequiredPf(0.9, 0); err == nil {
		t.Fatal("zero cells should error")
	}
}

// The headline sanity: a 10 Mb cache at the paper's 1e-6 failure decade
// needs redundancy; at 1e-8 it mostly does not.
func TestArrayYieldPaperRegime(t *testing.T) {
	cells := int64(10 * 1024 * 1024)
	yHigh, _ := ArrayYield(1e-6, cells)
	yLow, _ := ArrayYield(1e-8, cells)
	if yHigh > 0.01 {
		t.Fatalf("1e-6 per cell should doom a 10 Mb array: %v", yHigh)
	}
	if yLow < 0.85 {
		t.Fatalf("1e-8 per cell should mostly yield: %v", yLow)
	}
}
