package sram

import (
	"math"
	"testing"
)

func TestAccessTimeNominal(t *testing.T) {
	c := FastRead90nm()
	at, err := c.AccessTime(nil, zero)
	if err != nil {
		t.Fatal(err)
	}
	if at < 5e-12 || at > 100e-12 {
		t.Fatalf("nominal access time %v outside plausible range", at)
	}
}

func TestAccessTimeMonotoneInReadPath(t *testing.T) {
	c := FastRead90nm()
	prev := -1.0
	for _, dv := range []float64{-0.06, 0, 0.06, 0.12} {
		var d [NumTransistors]float64
		d[M3] = dv
		at, err := c.AccessTime(nil, d)
		if err != nil {
			t.Fatal(err)
		}
		if at <= prev {
			t.Fatalf("access time should grow with weaker access: %v then %v", prev, at)
		}
		prev = at
	}
}

func TestAccessTimeSaturatesOnDeadCell(t *testing.T) {
	c := FastRead90nm()
	var d [NumTransistors]float64
	d[M3] = 1.0 // access never turns on
	at, err := c.AccessTime(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	s := (&TranSpec{}).defaults()
	if at != s.Stop-s.WLEdge {
		t.Fatalf("dead cell should saturate at the window: %v", at)
	}
}

func TestWriteDelayNominalAndSensitivity(t *testing.T) {
	c := Default90nm()
	wd0, err := c.WriteDelay(nil, zero)
	if err != nil {
		t.Fatal(err)
	}
	if wd0 <= 0 || wd0 > 200e-12 {
		t.Fatalf("nominal write delay %v outside plausible range", wd0)
	}
	// Weaker access slows the write.
	var d [NumTransistors]float64
	d[M3] = 0.12
	wd1, err := c.WriteDelay(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if wd1 <= wd0 {
		t.Fatalf("weak access should slow the write: %v -> %v", wd0, wd1)
	}
}

func TestWriteDelayUnwritableSaturates(t *testing.T) {
	c := Default90nm()
	var d [NumTransistors]float64
	d[M3] = 0.8
	d[M5] = -0.5
	wd, err := c.WriteDelay(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	s := (&TranSpec{}).defaults()
	if wd != s.Stop-s.WLEdge {
		t.Fatalf("unwritable cell should saturate: %v", wd)
	}
}

func TestTranMetricConvention(t *testing.T) {
	m := AccessTimeWorkload()
	if m.Dim() != 2 {
		t.Fatal("dim")
	}
	// Nominal passes with margin.
	if v := m.Value([]float64{0, 0}); v <= 0 {
		t.Fatalf("nominal should pass: %v", v)
	}
	// Deep weak corner fails.
	if v := m.Value([]float64{6, 6}); v >= 0 {
		t.Fatalf("6σ/6σ corner should fail: %v", v)
	}
}

func TestTranMetricSmooth(t *testing.T) {
	// The interpolated crossing must vary smoothly (no step plateaus):
	// consecutive evaluations along a line should all differ.
	m := AccessTimeWorkload()
	var prev float64 = math.Inf(-1)
	for _, x := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		v := m.Value([]float64{x, x})
		if v == prev {
			t.Fatalf("metric plateaued at x=%v", x)
		}
		if v > prev && x > 0 {
			t.Fatalf("margin should shrink along the weak diagonal at x=%v", x)
		}
		prev = v
	}
}

func TestTranMetricDimPanics(t *testing.T) {
	m := AccessTimeWorkload()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Value([]float64{0})
}

func TestTranMetricUnknownKind(t *testing.T) {
	m := &TranMetric{Cell: Default90nm(), Kind: "bogus", Spec: 1e-10, Which: []int{M1}}
	// Unknown kind degrades to the maximal delay: a strongly failing
	// margin, not a panic.
	if v := m.Value([]float64{0}); v >= 0 {
		t.Fatalf("unknown kind should fail closed: %v", v)
	}
}
