package sram

import (
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

// Kernel-row benchmarks: ValueBatch over a fixed chunk with telemetry
// attached, the exact shape of the "batch-kernel" rows in
// BENCH_batch.json (minus mc dispatch). Useful for profiling the solve
// kernel without estimator noise; scripts/bench.sh holds the committed
// regression gate.

func benchKernel(b *testing.B, m *Metric, chunk int) {
	b.Helper()
	reg := telemetry.New()
	m.SetTelemetry(reg)
	rng := rand.New(rand.NewSource(1))
	xs := make([][]float64, chunk)
	for i := range xs {
		x := make([]float64, m.Dim())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	out := make([]float64, len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ValueBatch(xs, out)
	}
	b.ReportMetric(float64(b.N*chunk)/b.Elapsed().Seconds(), "sims/s")
}

func BenchmarkReadCurrentKernel(b *testing.B) { benchKernel(b, ReadCurrentWorkload(), 64) }

func BenchmarkRNMKernel(b *testing.B) { benchKernel(b, RNMWorkload(), 64) }
