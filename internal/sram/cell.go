// Package sram models the paper's test vehicle: a 6-T SRAM cell whose
// stability metrics (read noise margin, write noise margin, read current)
// are extracted with transistor-level DC simulation (package spice).
//
// Transistor naming follows the paper's Fig. 5 usage:
//
//	M1: pull-down (driver) NMOS on the Q side      (gate = QB)
//	M2: pull-down (driver) NMOS on the QB side     (gate = Q)
//	M3: access NMOS between BL and Q               (gate = WL)
//	M4: access NMOS between BLB and QB             (gate = WL)
//	M5: pull-up (load) PMOS on the Q side          (gate = QB)
//	M6: pull-up (load) PMOS on the QB side         (gate = Q)
//
// so that the paper's critical pairs hold: RNM is dominated by
// {ΔVth1, ΔVth3}, WNM by {ΔVth3, ΔVth5}, and the read current is the
// current through M3 (in series with M1) when WL = BL = BLB = VDD.
//
// The variation space is the paper's: independent standard Normal
// coordinates x, mapped to per-transistor threshold mismatches
// ΔVth_i = SigmaVth·x_i (eq. 1 after PCA whitening).
package sram

import (
	"fmt"

	"repro/internal/spice"
	"repro/internal/telemetry"
)

// Transistor indices into mismatch vectors.
const (
	M1 = iota // driver, Q side
	M2        // driver, QB side
	M3        // access, BL–Q
	M4        // access, BLB–QB
	M5        // load, Q side
	M6        // load, QB side
	NumTransistors
)

// Cell holds the design parameters of a 6-T cell.
type Cell struct {
	// VDD is the supply voltage in volts.
	VDD float64
	// Driver, Access are the NMOS model cards; Load is the PMOS card.
	Driver, Access *spice.MOSModel
	Load           *spice.MOSModel
	// SigmaVth is the 1σ local threshold mismatch in volts; normalized
	// variation coordinates are multiplied by it.
	SigmaVth float64
	// Grid is the number of points per transfer-curve sweep used in
	// noise-margin extraction (default 41).
	Grid int
	// Telemetry, when non-nil, is threaded into every DC/transient solve
	// the cell performs (per-solve Newton iterations, fallback counts,
	// solve latencies in the "spice" scope). Purely observational.
	Telemetry *telemetry.Registry
}

// Default90nm returns the cell used throughout the experiments: a
// 90 nm-class design (VDD 1.0 V, minimum-length devices, cell ratio ≈ 1.9,
// pull-up ratio ≈ 0.6) with σ(ΔVth) = 30 mV.
func Default90nm() *Cell {
	return &Cell{
		VDD: 1.0,
		Driver: &spice.MOSModel{
			Type: spice.NMOS, VT0: 0.32, KP: 300e-6, W: 240e-9, L: 100e-9,
			Lambda: 0.10, N: 1.30,
		},
		Access: &spice.MOSModel{
			Type: spice.NMOS, VT0: 0.35, KP: 300e-6, W: 130e-9, L: 100e-9,
			Lambda: 0.10, N: 1.30,
		},
		Load: &spice.MOSModel{
			Type: spice.PMOS, VT0: 0.33, KP: 80e-6, W: 120e-9, L: 100e-9,
			Lambda: 0.12, N: 1.35,
		},
		SigmaVth: 0.030,
		Grid:     41,
	}
}

func (c *Cell) grid() int {
	if c.Grid >= 8 {
		return c.Grid
	}
	return 41
}

// BiasConfig selects the cell's terminal biasing.
type BiasConfig int

// Cell bias configurations.
const (
	// HoldConfig: WL low, bitlines precharged.
	HoldConfig BiasConfig = iota
	// ReadConfig: WL high, both bitlines precharged high.
	ReadConfig
	// WriteConfig: WL high, BL driven low, BLB high (writing 0 into Q).
	WriteConfig
)

func (b BiasConfig) String() string {
	switch b {
	case HoldConfig:
		return "hold"
	case ReadConfig:
		return "read"
	case WriteConfig:
		return "write"
	default:
		return fmt.Sprintf("BiasConfig(%d)", int(b))
	}
}

// build assembles the full 6-T netlist in the given configuration with the
// given per-transistor ΔVth (volts). It returns the circuit and the six
// transistor instances indexed M1..M6.
func (c *Cell) build(cfg BiasConfig, dvth [NumTransistors]float64) (*spice.Circuit, [NumTransistors]*spice.MOSFET) {
	ckt := spice.NewCircuit()
	ckt.AddVSource("vdd", "vdd", "0", c.VDD)
	wl, bl, blb := 0.0, c.VDD, c.VDD
	switch cfg {
	case ReadConfig:
		wl = c.VDD
	case WriteConfig:
		wl, bl = c.VDD, 0
	}
	ckt.AddVSource("vwl", "wl", "0", wl)
	ckt.AddVSource("vbl", "bl", "0", bl)
	ckt.AddVSource("vblb", "blb", "0", blb)

	var ms [NumTransistors]*spice.MOSFET
	ms[M1] = ckt.AddMOSFET("m1", "q", "qb", "0", "0", c.Driver)
	ms[M2] = ckt.AddMOSFET("m2", "qb", "q", "0", "0", c.Driver)
	ms[M3] = ckt.AddMOSFET("m3", "bl", "wl", "q", "0", c.Access)
	ms[M4] = ckt.AddMOSFET("m4", "blb", "wl", "qb", "0", c.Access)
	ms[M5] = ckt.AddMOSFET("m5", "q", "qb", "vdd", "vdd", c.Load)
	ms[M6] = ckt.AddMOSFET("m6", "qb", "q", "vdd", "vdd", c.Load)
	for i := range ms {
		ms[i].DeltaVth = dvth[i]
	}
	return ckt, ms
}

// transferCurveQtoQB sweeps a forcing source on Q and records QB,
// producing the inverter-B transfer curve g1 in the given configuration.
// transferCurveQBtoQ mirrors it for g2.
func (c *Cell) transferCurveQtoQB(cfg BiasConfig, dvth [NumTransistors]float64) (*curve, error) {
	return c.transferCurve(cfg, dvth, "q", "qb")
}

func (c *Cell) transferCurveQBtoQ(cfg BiasConfig, dvth [NumTransistors]float64) (*curve, error) {
	return c.transferCurve(cfg, dvth, "qb", "q")
}

func (c *Cell) transferCurve(cfg BiasConfig, dvth [NumTransistors]float64, forced, measured string) (*curve, error) {
	ckt, _ := c.build(cfg, dvth)
	ckt.AddVSource("vforce", forced, "0", 0)
	n := c.grid()
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	// Seed the measured node opposite to the forced node's start so the
	// first solve lands on the inverter's natural output.
	opts := &spice.DCOptions{InitialGuess: map[string]float64{measured: c.VDD}, Telemetry: c.Telemetry}
	err := ckt.Sweep("vforce", 0, c.VDD, n, opts, func(v float64, op *spice.OperatingPoint) bool {
		xs = append(xs, v)
		ys = append(ys, op.Voltage(measured))
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("sram: %s transfer curve (%s→%s): %w", cfg, forced, measured, err)
	}
	return &curve{xs: xs, ys: ys}, nil
}

// WriteTripFloor is the lowest artificial bitline voltage probed by
// WriteTrip. Letting the bisection continue below 0 V keeps the write
// margin continuous (and hence searchable) past the physical write-fail
// boundary.
const WriteTripFloor = -0.6

// WriteTrip returns the bitline write-trip voltage: the highest BL voltage
// at which the cell storing a 1 at Q flips when the word line is asserted
// (writing a 0 through M3 against load M5). A healthy cell flips with BL
// well above 0 V; a write-failing cell does not flip even at BL = 0, in
// which case the returned value is negative (down to WriteTripFloor, where
// it saturates). Each probe is one DC solve seeded in the state-1 basin.
func (c *Cell) WriteTrip(dvth [NumTransistors]float64) (float64, error) {
	ckt, _ := c.build(ReadConfig, dvth) // WL high, both bitlines start at VDD
	vbl, err := ckt.VSourceByName("vbl")
	if err != nil {
		return 0, err
	}
	flipped := func(bl float64) (bool, error) {
		vbl.E = bl
		op, err := ckt.SolveDC(&spice.DCOptions{
			InitialGuess: map[string]float64{"q": c.VDD, "qb": 0},
			Telemetry:    c.Telemetry,
		})
		if err != nil {
			return false, fmt.Errorf("sram: write-trip solve at BL=%.3f: %w", bl, err)
		}
		return op.Voltage("q") < 0.5*c.VDD, nil
	}
	lo, hi := WriteTripFloor, c.VDD
	// The cell must hold its state with BL at VDD (otherwise it is
	// read-unstable, which the write metric treats as flipping at VDD).
	if f, err := flipped(hi); err != nil {
		return 0, err
	} else if f {
		return hi, nil
	}
	if f, err := flipped(lo); err != nil {
		return 0, err
	} else if !f {
		return lo, nil // saturated: cannot write even at the floor
	}
	for i := 0; i < 14; i++ {
		mid := 0.5 * (lo + hi)
		f, err := flipped(mid)
		if err != nil {
			// Non-convergence this close to the trip bifurcation means
			// the state-1 solution is marginal; classifying the point as
			// flipped moves the trip estimate by at most the current
			// bisection interval.
			f = true
		}
		if f {
			lo = mid // flips at mid: trip voltage is at or above mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// ReadCurrent solves the read operating point with the cell holding a 0 at
// Q and returns the magnitude of the current through access transistor M3
// (the series M3–M1 read path), in amperes.
func (c *Cell) ReadCurrent(dvth [NumTransistors]float64) (float64, error) {
	ckt, ms := c.build(ReadConfig, dvth)
	op, err := ckt.SolveDC(&spice.DCOptions{
		InitialGuess: map[string]float64{"q": 0.05, "qb": c.VDD},
		Telemetry:    c.Telemetry,
	})
	if err != nil {
		return 0, fmt.Errorf("sram: read-current operating point: %w", err)
	}
	i := ms[M3].Current(op)
	if i < 0 {
		i = -i
	}
	return i, nil
}

// RetentionVoltage returns the data-retention voltage (DRV): the lowest
// supply at which the cell still holds a stored 0 in the hold
// configuration, found by bisection on VDD. Cells with a DRV above the
// standby supply lose data in low-power retention mode; the margin
// convention is "fail when DRV > spec". The search floor is 50 mV; cells
// retaining below it return the floor.
func (c *Cell) RetentionVoltage(dvth [NumTransistors]float64) (float64, error) {
	ckt, _ := c.build(HoldConfig, dvth)
	vdd, err := ckt.VSourceByName("vdd")
	if err != nil {
		return 0, err
	}
	holds := func(supply float64) (bool, error) {
		vdd.E = supply
		op, err := ckt.SolveDC(&spice.DCOptions{
			InitialGuess: map[string]float64{"q": 0, "qb": supply},
			Telemetry:    c.Telemetry,
		})
		if err != nil {
			return false, err
		}
		// The state survives if QB stays in the upper half and Q low.
		return op.Voltage("qb") > 0.5*supply && op.Voltage("q") < 0.5*supply, nil
	}
	const floor = 0.05
	lo, hi := floor, c.VDD
	if ok, err := holds(hi); err != nil {
		return 0, err
	} else if !ok {
		return hi, nil // cannot retain even at full supply
	}
	if ok, err := holds(lo); err == nil && ok {
		return lo, nil // retains all the way down to the floor
	}
	for i := 0; i < 12; i++ {
		mid := 0.5 * (lo + hi)
		ok, err := holds(mid)
		if err != nil {
			// Non-convergence this deep in the supply sweep counts as
			// data loss at mid.
			ok = false
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// mirror swaps the A-side and B-side mismatches: the cell is
// topologically symmetric, so the B-side read current equals the A-side
// read current of the mirrored cell.
func mirror(dvth [NumTransistors]float64) [NumTransistors]float64 {
	return [NumTransistors]float64{
		M1: dvth[M2], M2: dvth[M1],
		M3: dvth[M4], M4: dvth[M3],
		M5: dvth[M6], M6: dvth[M5],
	}
}

// DualReadCurrent returns the worse of the two read currents: reading a 0
// (current through M3 into the Q side) and reading a 1 (current through
// M4 into the QB side, computed on the mirrored cell). A cell must read
// both data values at speed, so the access-time failure criterion is
// min(I_read0, I_read1) < Ith. Over the access-transistor pair
// (ΔVth3, ΔVth4) this produces a symmetric, single-connected but strongly
// non-convex failure region — two orthogonal half-plane lobes joined at
// the far corner — which is this library's stand-in for the irregular
// §V-B region of the paper (see DESIGN.md).
func (c *Cell) DualReadCurrent(dvth [NumTransistors]float64) (float64, error) {
	ia, err := c.ReadCurrent(dvth)
	if err != nil {
		return 0, err
	}
	ib, err := c.ReadCurrent(mirror(dvth))
	if err != nil {
		return 0, err
	}
	if ib < ia {
		return ib, nil
	}
	return ia, nil
}

// StaticNodeVoltages solves the DC state of the cell in the given
// configuration starting from a stored 0 (Q low) and returns (Q, QB).
func (c *Cell) StaticNodeVoltages(cfg BiasConfig, dvth [NumTransistors]float64) (q, qb float64, err error) {
	ckt, _ := c.build(cfg, dvth)
	op, err := ckt.SolveDC(&spice.DCOptions{
		InitialGuess: map[string]float64{"q": 0, "qb": c.VDD},
		Telemetry:    c.Telemetry,
	})
	if err != nil {
		return 0, 0, err
	}
	return op.Voltage("q"), op.Voltage("qb"), nil
}
