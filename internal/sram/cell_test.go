package sram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var zero [NumTransistors]float64

func TestNominalCellState(t *testing.T) {
	c := Default90nm()
	q, qb, err := c.StaticNodeVoltages(ReadConfig, zero)
	if err != nil {
		t.Fatal(err)
	}
	// Read-disturb bump: Q must rise above ground but stay well below the
	// inverter trip; QB must hold at the rail.
	if q < 0.01 || q > 0.35 {
		t.Fatalf("read bump q = %v", q)
	}
	if qb < 0.95*c.VDD {
		t.Fatalf("qb = %v, want ≈ VDD", qb)
	}
	qh, qbh, err := c.StaticNodeVoltages(HoldConfig, zero)
	if err != nil {
		t.Fatal(err)
	}
	if qh > 0.02 || qbh < 0.98*c.VDD {
		t.Fatalf("hold state q=%v qb=%v", qh, qbh)
	}
}

func TestNominalMargins(t *testing.T) {
	c := Default90nm()
	rs, err := c.ReadSNM(zero)
	if err != nil {
		t.Fatal(err)
	}
	if rs < 0.15 || rs > 0.35 {
		t.Fatalf("nominal read SNM %v outside plausible range", rs)
	}
	hs, err := c.HoldSNM(zero)
	if err != nil {
		t.Fatal(err)
	}
	if hs <= rs {
		t.Fatalf("hold SNM %v must exceed read SNM %v", hs, rs)
	}
	wm, err := c.WriteMargin(zero)
	if err != nil {
		t.Fatal(err)
	}
	if wm < 0.2 || wm > 0.6 {
		t.Fatalf("nominal write-trip %v outside plausible range", wm)
	}
	ir, err := c.ReadCurrent(zero)
	if err != nil {
		t.Fatal(err)
	}
	if ir < 20e-6 || ir > 100e-6 {
		t.Fatalf("nominal read current %v outside plausible range", ir)
	}
}

func TestNominalEyesSymmetric(t *testing.T) {
	c := Default90nm()
	s, err := c.NoiseMargins(ReadConfig, zero)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Eye0-s.Eye1) > 1e-3 {
		t.Fatalf("nominal butterfly eyes asymmetric: %+v", s)
	}
	if s.Min() != math.Min(s.Eye0, s.Eye1) {
		t.Fatal("SNM.Min wrong")
	}
}

// Mirror symmetry: swapping the roles of side A and side B mismatches must
// exchange the two eyes.
func TestEyeMirrorSymmetry(t *testing.T) {
	c := Default90nm()
	d := [NumTransistors]float64{}
	d[M1], d[M3], d[M5] = 0.04, -0.03, 0.02
	s1, err := c.NoiseMargins(ReadConfig, d)
	if err != nil {
		t.Fatal(err)
	}
	m := [NumTransistors]float64{}
	m[M2], m[M4], m[M6] = d[M1], d[M3], d[M5]
	s2, err := c.NoiseMargins(ReadConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Eye0-s2.Eye1) > 2e-3 || math.Abs(s1.Eye1-s2.Eye0) > 2e-3 {
		t.Fatalf("mirror symmetry broken: %+v vs %+v", s1, s2)
	}
}

func TestReadSNMSensitivities(t *testing.T) {
	c := Default90nm()
	r0, err := c.ReadSNM(zero)
	if err != nil {
		t.Fatal(err)
	}
	// Weaker driver M1 hurts the state-0 eye.
	d := [NumTransistors]float64{}
	d[M1] = 0.09
	r1, err := c.ReadSNM(d)
	if err != nil {
		t.Fatal(err)
	}
	if r1 >= r0 {
		t.Fatalf("weak driver should reduce RNM: %v -> %v", r0, r1)
	}
	// Stronger access M3 hurts it too.
	d = [NumTransistors]float64{}
	d[M3] = -0.09
	r3, err := c.ReadSNM(d)
	if err != nil {
		t.Fatal(err)
	}
	if r3 >= r0 {
		t.Fatalf("strong access should reduce RNM: %v -> %v", r0, r3)
	}
}

func TestWriteTripSensitivities(t *testing.T) {
	c := Default90nm()
	w0, err := c.WriteTrip(zero)
	if err != nil {
		t.Fatal(err)
	}
	// Weaker access M3 makes writing harder (lower trip voltage).
	d := [NumTransistors]float64{}
	d[M3] = 0.12
	w1, err := c.WriteTrip(d)
	if err != nil {
		t.Fatal(err)
	}
	if w1 >= w0 {
		t.Fatalf("weak access should reduce write trip: %v -> %v", w0, w1)
	}
	// Stronger load M5 fights the write: harder still.
	d[M5] = -0.12
	w2, err := c.WriteTrip(d)
	if err != nil {
		t.Fatal(err)
	}
	if w2 >= w1 {
		t.Fatalf("strong load should reduce write trip further: %v -> %v", w1, w2)
	}
}

func TestWriteTripSaturatesAtFloor(t *testing.T) {
	c := Default90nm()
	// Moderately broken cell: write fails at any physical bitline voltage
	// (negative trip), but the continuous extension below 0 V still
	// resolves it.
	d := [NumTransistors]float64{}
	d[M3] = 0.8
	d[M5] = -0.5
	w, err := c.WriteTrip(d)
	if err != nil {
		t.Fatal(err)
	}
	if w >= 0 {
		t.Fatalf("broken cell should have negative trip, got %v", w)
	}
	// Absurdly dead access transistor: even the floor cannot flip it.
	d[M3] = 1.5
	w, err = c.WriteTrip(d)
	if err != nil {
		t.Fatal(err)
	}
	if w != WriteTripFloor {
		t.Fatalf("expected floor %v, got %v", WriteTripFloor, w)
	}
}

func TestReadCurrentSensitivities(t *testing.T) {
	c := FastRead90nm()
	i0, err := c.ReadCurrent(zero)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []int{M1, M3} {
		d := [NumTransistors]float64{}
		d[tr] = 0.09
		i1, err := c.ReadCurrent(d)
		if err != nil {
			t.Fatal(err)
		}
		if i1 >= i0 {
			t.Fatalf("weaker M%d should reduce read current: %v -> %v", tr+1, i0, i1)
		}
	}
	// Unrelated transistor M6 barely matters.
	d := [NumTransistors]float64{}
	d[M6] = 0.09
	i6, err := c.ReadCurrent(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i6-i0)/i0 > 0.02 {
		t.Fatalf("M6 should not drive read current: %v -> %v", i0, i6)
	}
}

// Read-disturb flip: extreme weak-driver/strong-access corner collapses
// the read current — the mechanism that bends the §V-B failure region.
func TestReadFlipCollapsesCurrent(t *testing.T) {
	c := FastRead90nm()
	d := [NumTransistors]float64{}
	d[M1] = c.SigmaVth * 8
	d[M3] = -c.SigmaVth * 8
	i, err := c.ReadCurrent(d)
	if err != nil {
		t.Fatal(err)
	}
	if i > 5e-6 {
		t.Fatalf("flipped cell should carry ≈no read current, got %v", i)
	}
}

func TestMetricMarginConvention(t *testing.T) {
	m := NewReadCurrentMetric(FastRead90nm(), ReadCurrentSpec)
	if m.Dim() != 2 {
		t.Fatalf("read-current dim = %d", m.Dim())
	}
	// Nominal passes.
	if v := m.Value([]float64{0, 0}); v <= 0 {
		t.Fatalf("nominal should pass, margin %v", v)
	}
	// Deep weak-access corner fails.
	if v := m.Value([]float64{0, 8}); v >= 0 {
		t.Fatalf("weak access at 8σ should fail, margin %v", v)
	}
}

func TestMetricDimPanics(t *testing.T) {
	m := RNMWorkload()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong dimensionality")
		}
	}()
	m.Value([]float64{0, 0})
}

func TestWorkloadDims(t *testing.T) {
	if RNMWorkload().Dim() != 6 || WNMWorkload().Dim() != 6 {
		t.Fatal("noise-margin workloads must be 6-D")
	}
	if ReadCurrentWorkload().Dim() != 2 {
		t.Fatal("read-current workload must be 2-D")
	}
}

func TestWorkloadSpecsNearCalibration(t *testing.T) {
	// The calibrated specs must keep the nominal point passing with
	// meaningful margin (the 4.75σ design intent).
	if v := RNMWorkload().Value(make([]float64, 6)); v < 0.05 {
		t.Fatalf("nominal RNM margin too small: %v", v)
	}
	if v := WNMWorkload().Value(make([]float64, 6)); v < 0.05 {
		t.Fatalf("nominal WNM margin too small: %v", v)
	}
	if v := ReadCurrentWorkload().Value(make([]float64, 2)); v < 5 {
		t.Fatalf("nominal read-current margin too small: %v µA", v)
	}
}

// Property: curve interpolation is exact at knots, clamped outside, and
// bounded by neighbors inside.
func TestCurveInterpolation(t *testing.T) {
	cv := &curve{xs: []float64{0, 1, 2, 3}, ys: []float64{5, 3, 2, 0}}
	for i, x := range cv.xs {
		if cv.at(x) != cv.ys[i] {
			t.Fatalf("knot %d: %v", i, cv.at(x))
		}
	}
	if cv.at(-1) != 5 || cv.at(4) != 0 {
		t.Fatal("clamping broken")
	}
	if v := cv.at(0.5); v != 4 {
		t.Fatalf("midpoint: %v", v)
	}
	f := func(u uint16) bool {
		x := 3 * float64(u) / 65535
		v := cv.at(x)
		return v >= 0 && v <= 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// eyeSquare against hand-computable step curves: ideal rail-to-rail
// inverters with trip at VDD/2 give square eyes of side VDD/2.
func TestEyeSquareStepCurves(t *testing.T) {
	// Steep (but sampled) step at 0.5.
	xs := []float64{0, 0.499, 0.501, 1}
	g1 := &curve{xs: xs, ys: []float64{1, 1, 0, 0}}
	g2 := &curve{xs: xs, ys: []float64{1, 1, 0, 0}}
	e0 := eyeSquare(g1, g2, 0, 1.0)
	e1 := eyeSquare(g1, g2, 1, 1.0)
	if math.Abs(e0-0.5) > 0.01 || math.Abs(e1-0.5) > 0.01 {
		t.Fatalf("step eyes: %v, %v, want 0.5", e0, e1)
	}
}

// Degenerate identical diagonal curves: y = VDD − x for both gives zero
// eyes.
func TestEyeSquareDegenerate(t *testing.T) {
	xs := []float64{0, 0.5, 1}
	g := &curve{xs: xs, ys: []float64{1, 0.5, 0}}
	if e := eyeSquare(g, g, 0, 1.0); math.Abs(e) > 1e-9 {
		t.Fatalf("diagonal eye should be 0, got %v", e)
	}
}

// The read-current metric must be safe for concurrent use (the parallel
// brute-force golden run depends on it).
func TestMetricConcurrentUse(t *testing.T) {
	m := ReadCurrentWorkload()
	rng := rand.New(rand.NewSource(5))
	pts := make([][]float64, 16)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = m.Value(p)
	}
	done := make(chan bool, len(pts))
	for i, p := range pts {
		go func(i int, p []float64) {
			done <- math.Abs(m.Value(p)-want[i]) < 1e-12
		}(i, p)
	}
	for range pts {
		if !<-done {
			t.Fatal("concurrent evaluation mismatch")
		}
	}
}
