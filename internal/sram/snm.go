package sram

import "sort"

// curve is a sampled transfer curve y(x) with clamped linear
// interpolation. Cell VTCs are monotone, but interpolation only assumes
// sorted x.
type curve struct {
	xs, ys []float64 // xs strictly increasing
}

// at evaluates the curve at x, clamping outside the sampled range (the
// rails extend flat, which is physically what the inverter does).
func (c *curve) at(x float64) float64 {
	n := len(c.xs)
	if n == 0 {
		panic("sram: empty curve")
	}
	if x <= c.xs[0] {
		return c.ys[0]
	}
	if x >= c.xs[n-1] {
		return c.ys[n-1]
	}
	i := sort.SearchFloat64s(c.xs, x)
	// xs[i-1] < x ≤ xs[i]
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// eyeSquare computes the signed side of the largest axis-aligned square
// nested in one eye of the butterfly plot formed by the transfer curves
// g1: y = g1(x) and g2: x = g2(y) (both monotone decreasing).
//
// For the state-0 eye (x low, y high; lobe = 0) a square of side s fits
// with its bottom edge at y = b iff b + s ≤ g1(g2(b) + s); the largest
// such s at a given b is the root of the decreasing function
// h(s) = g1(g2(b) + s) − b − s, found by bisection on interpolated curves
// only (no circuit simulation). The eye size is max over b. The state-1
// eye (lobe = 1) follows by exchanging the curves' roles.
//
// The returned value is continuous through zero: when the eye has
// collapsed (monostable cell) it is negative, measuring how far the
// curves overlap — exactly the margin polarity the failure indicator
// needs. vdd scales the search ranges.
func eyeSquare(g1, g2 *curve, lobe int, vdd float64) float64 {
	outer, inner := g1, g2
	if lobe == 1 {
		outer, inner = g2, g1
	}
	sAt := func(b float64) float64 { return eyeSide(outer, inner, b) }
	// Coarse scan of the square's base coordinate followed by ternary
	// refinement around the best cell.
	const coarse = 81
	bestB, bestS := 0.0, sAt(0)
	for i := 1; i < coarse; i++ {
		b := vdd * float64(i) / float64(coarse-1)
		if s := sAt(b); s > bestS {
			bestB, bestS = b, s
		}
	}
	step := vdd / float64(coarse-1)
	// Clamp the refinement bracket to the physical base range: outside
	// [0, vdd] the clamped curves make sAt report spurious positive
	// sides (the flat rails overlap trivially), which the exact root
	// finder would otherwise faithfully maximize.
	lo, hi := bestB-step, bestB+step
	if lo < 0 {
		lo = 0
	}
	if hi > vdd {
		hi = vdd
	}
	for i := 0; i < 40; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if sAt(m1) < sAt(m2) {
			lo = m1
		} else {
			hi = m2
		}
	}
	if s := sAt(0.5 * (lo + hi)); s > bestS {
		bestS = s
	}
	return bestS
}

// eyeSide returns the exact root of h(s) = outer.at(inner.at(b)+s) − b − s,
// the largest square side anchored at base coordinate b. h is strictly
// decreasing in s (dh/ds ≤ −1, curves monotone decreasing), and with the
// substitution u = inner.at(b) + s the root condition becomes
// φ(u) = outer.at(u) − u + (inner.at(b) − b) = 0 — piecewise linear and
// strictly decreasing in u, with its knot values readable directly off the
// sample arrays. A binary search over the knots followed by one linear
// solve replaces the 60-round bisection this routine previously ran (and
// the ~120 interpolations it cost); eyeSquare calls sAt a few hundred
// times per eye, so this is the dominant cost of every noise-margin
// metric evaluation.
func eyeSide(outer, inner *curve, b float64) float64 {
	a := inner.at(b)
	c := a - b // φ(u) = outer.at(u) − u + c
	xs, ys := outer.xs, outer.ys
	n := len(xs)
	// Beyond the sampled range the curve clamps flat, so φ is linear with
	// slope −1: the root is read off directly.
	if ys[0]-xs[0]+c < 0 {
		return ys[0] - b // u = ys[0] + c, s = u − a
	}
	if ys[n-1]-xs[n-1]+c > 0 {
		return ys[n-1] + c - a
	}
	// Largest knot k with φ(xs[k]) ≥ 0; the root lies in [xs[k], xs[k+1]].
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ys[mid]-xs[mid]+c >= 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	x0, x1 := xs[lo], xs[hi]
	y0, y1 := ys[lo], ys[hi]
	m := (y1 - y0) / (x1 - x0)
	// φ on the segment: y0 + m(u−x0) − u + c = 0. The slope m is ≤ 0 for
	// a monotone-decreasing curve, so 1 − m ≥ 1 and the division is
	// well-conditioned even across a near-vertical VTC transition.
	u := (y0 - m*x0 + c) / (1 - m)
	return u - a
}

// Curve is a sampled transfer curve exposed to external consumers (the
// butterfly command and plots).
type Curve struct {
	X, Y []float64
}

// TransferCurves returns the two butterfly curves in the given
// configuration: g1 maps a forced Q to the resulting QB, g2 maps a forced
// QB to the resulting Q.
func TransferCurves(c *Cell, cfg BiasConfig, dvth [NumTransistors]float64) (g1, g2 *Curve, err error) {
	c1, err := c.transferCurveQtoQB(cfg, dvth)
	if err != nil {
		return nil, nil, err
	}
	c2, err := c.transferCurveQBtoQ(cfg, dvth)
	if err != nil {
		return nil, nil, err
	}
	return &Curve{X: c1.xs, Y: c1.ys}, &Curve{X: c2.xs, Y: c2.ys}, nil
}

// SNM holds the two eye sizes of a butterfly plot.
type SNM struct {
	// Eye0 is the signed square side of the eye around the state Q=0
	// crossing; Eye1 around Q=1. Negative means the eye has collapsed.
	Eye0, Eye1 float64
}

// Min returns the classical static noise margin: the smaller eye.
func (s SNM) Min() float64 {
	if s.Eye0 < s.Eye1 {
		return s.Eye0
	}
	return s.Eye1
}

// NoiseMargins extracts both butterfly eyes in the given configuration.
func (c *Cell) NoiseMargins(cfg BiasConfig, dvth [NumTransistors]float64) (SNM, error) {
	g1, err := c.transferCurveQtoQB(cfg, dvth)
	if err != nil {
		return SNM{}, err
	}
	g2, err := c.transferCurveQBtoQ(cfg, dvth)
	if err != nil {
		return SNM{}, err
	}
	return SNM{
		Eye0: eyeSquare(g1, g2, 0, c.VDD),
		Eye1: eyeSquare(g1, g2, 1, c.VDD),
	}, nil
}

// ReadSNM returns the read-stability margin for the cell storing 0: the
// state-0 eye of the butterfly under read bias. The paper analyzes one
// failure mechanism at a time (§IV-A); the symmetric read-1 failure rate
// is obtained by doubling.
func (c *Cell) ReadSNM(dvth [NumTransistors]float64) (float64, error) {
	s, err := c.NoiseMargins(ReadConfig, dvth)
	if err != nil {
		return 0, err
	}
	return s.Eye0, nil
}

// WriteMargin returns the write-noise-margin proxy used by the WNM
// experiments: the bitline write-trip voltage (see WriteTrip). A larger
// value means an easier write; the cell write-fails when the margin drops
// below the spec threshold.
func (c *Cell) WriteMargin(dvth [NumTransistors]float64) (float64, error) {
	return c.WriteTrip(dvth)
}

// HoldSNM returns the data-retention margin (WL off) for the state-0 eye.
func (c *Cell) HoldSNM(dvth [NumTransistors]float64) (float64, error) {
	s, err := c.NoiseMargins(HoldConfig, dvth)
	if err != nil {
		return 0, err
	}
	return s.Eye0, nil
}
