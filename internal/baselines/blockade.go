package baselines

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/stat"
	"repro/internal/telemetry"
)

// Statistical blockade (Singhee & Rutenbar, DATE 2007 — the paper's
// reference [9]): train a cheap classifier on a moderate Monte Carlo
// sample, then run a huge Monte Carlo stream but *simulate only the
// samples the classifier cannot confidently pass* ("unblocked"). The
// failure estimate is the plain MC tally with blocked samples counted as
// passes; the simulation count collapses because the classifier filters
// out the bulk of the distribution.
//
// This implementation uses a linear response surface as the classifier
// with a conservative guard band, which matches the library's other
// model-based stages and keeps the method honest: a guard band that is
// too tight silently biases the estimate low, which the Blockade result
// reports through the Unblocked/Misblocked diagnostics.

// BlockadeOptions configures the run.
type BlockadeOptions struct {
	// Train is the number of training simulations (default 1000).
	Train int
	// N is the number of Monte Carlo candidates streamed through the
	// classifier (classifier evaluations are free; only unblocked
	// candidates cost a simulation).
	N int
	// GuardSigmas widens the classification threshold: a candidate is
	// simulated when its predicted margin is below GuardSigmas times the
	// training residual σ (default 3).
	GuardSigmas float64
	// TrainScale is the σ-multiplier of the training distribution
	// (default 2). Strongly curved metrics benefit from a tighter
	// training cloud: the linear classifier's residual — and with it the
	// guard band and the unblocked fraction — shrinks.
	TrainScale float64
	// Workers sizes the evaluation pool (0 = GOMAXPROCS) for the
	// training batch and the candidate stream; the estimate is identical
	// for every pool size.
	Workers int
	// Telemetry, when non-nil, observes the evaluation pool; estimates
	// are unchanged.
	Telemetry *telemetry.Registry
}

// BlockadeResult reports the estimate and its cost split.
type BlockadeResult struct {
	mc.Result
	// TrainSims and TailSims split the simulation cost; Unblocked is the
	// number of candidates that needed simulation.
	TrainSims, TailSims int64
	// ResidualSigma is the training residual of the classifier — large
	// values mean the linear blockade filter is untrustworthy.
	ResidualSigma float64
}

// Blockade runs the method against a metric.
func Blockade(counter *mc.Counter, opts BlockadeOptions, rng *rand.Rand) (*BlockadeResult, error) {
	return BlockadeContext(context.Background(), counter, opts, rng)
}

// blockadeChunk bounds one candidate-stream dispatch: the stream runs
// millions of classifier-filtered candidates, so it is tallied chunk by
// chunk with a cancellation check between chunks.
const blockadeChunk = 1 << 16

// blockadePlan is the deterministic prefix of a blockade run: the
// trained classifier folded into the candidate predicate, the seeded
// stream, and the result shell with the training cost filled in. Both
// the full run and the distributed partials build on it, so the
// candidate stream they filter is the same stream bit for bit.
type blockadePlan struct {
	res        *BlockadeResult
	ev         *mc.Evaluator
	candidate  func(rng *rand.Rand, i int) bool
	streamSeed int64
	n          int
}

// blockadeTrain runs the training stage and classifier fit, consuming
// rng exactly as BlockadeContext always has (train seed, then stream
// seed), and returns the plan for the candidate stream.
func blockadeTrain(ctx context.Context, counter *mc.Counter, opts BlockadeOptions, rng *rand.Rand) (*blockadePlan, error) {
	train := opts.Train
	if train <= 0 {
		train = 1000
	}
	if opts.N <= 0 {
		return nil, errors.New("baselines: blockade needs a positive candidate count")
	}
	guard := opts.GuardSigmas
	if guard <= 0 {
		guard = 3
	}
	scale := opts.TrainScale
	if scale <= 0 {
		scale = 2
	}
	dim := counter.Dim()

	// Training set: widened Normal sampling so the tail side of the spec
	// is represented, evaluated sample-parallel in chunks.
	ev := mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry)
	trainDraw := func(rng *rand.Rand, _ int) []float64 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = scale * rng.NormFloat64()
		}
		return x
	}
	trainSeed := rng.Int63()
	xs := make([][]float64, 0, train)
	ys := make([]float64, 0, train)
	for start := 0; start < train; start += mc.ChunkSize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		count := min(mc.ChunkSize, train-start)
		for _, s := range ev.Batch(trainSeed, start, count, trainDraw) {
			xs = append(xs, s.X)
			ys = append(ys, s.Value)
		}
	}
	lin, err := model.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	// Residual spread sets the guard band.
	var resid stat.Running
	for i, x := range xs {
		resid.Push(ys[i] - lin.Eval(x))
	}
	sigma := residSigma(&resid)
	res := &BlockadeResult{TrainSims: counter.Count(), ResidualSigma: sigma}

	band := guard * sigma
	streamSeed := rng.Int63()
	candidate := func(rng *rand.Rand, _ int) bool {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		// Unblocked: needs a real simulation.
		return lin.Eval(x) < band && counter.Value(x) < 0
	}
	return &blockadePlan{res: res, ev: ev, candidate: candidate, streamSeed: streamSeed, n: opts.N}, nil
}

// BlockadeContext is Blockade with cancellation: ctx is polled between
// training chunks and between candidate-stream chunks, so a cancel
// aborts within one chunk while an uncancelled run stays bit-identical
// to Blockade for every worker count.
func BlockadeContext(ctx context.Context, counter *mc.Counter, opts BlockadeOptions, rng *rand.Rand) (*BlockadeResult, error) {
	plan, err := blockadeTrain(ctx, counter, opts, rng)
	if err != nil {
		return nil, err
	}
	res := plan.res

	// Candidate stream: classifier evaluations are free and happen for
	// every candidate; only unblocked candidates cost a simulation. The
	// stream runs on the pool in blockadeChunk dispatches — each
	// candidate draws from its own indexed generator — and the tally
	// folds in index order, so chunking never changes the estimate.
	var tally stat.Running
	failures := 0
	for start := 0; start < plan.n; start += blockadeChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		count := min(blockadeChunk, plan.n-start)
		for _, fail := range mc.Map(plan.ev, plan.streamSeed, start, count, plan.candidate) {
			ind := 0.0
			if fail {
				ind = 1
				failures++
			}
			tally.Push(ind)
		}
	}
	res.TailSims = counter.Count() - res.TrainSims
	res.Result = mc.Result{
		Pf: tally.Mean(), StdErr: tally.StdErr(), RelErr99: tally.RelErr99(),
		N: tally.N(), Failures: failures,
	}
	return res, nil
}

func residSigma(r *stat.Running) float64 {
	v := r.Var()
	if v <= 0 {
		return 1e-9
	}
	return sqrt(v)
}

func sqrt(v float64) float64 { return math.Sqrt(v) }
