// Package baselines implements the two traditional importance-sampling
// methods the paper compares against:
//
//   - MIS, mixture importance sampling (Kanj, Joshi, Nassif, DAC 2006
//     [8]): a broad first-stage exploration of the variation space
//     locates failing samples; their f-weighted centroid becomes the mean
//     of a mean-shifted Normal distortion.
//   - MNIS, minimum-norm importance sampling (Qazi et al., DATE 2010
//     [14], after Dolecek et al. [10]): a model-based norm minimization
//     finds the most-likely failure point, which becomes the mean of the
//     distortion.
//
// Both construct g^NOR = N(μ, I): as the paper stresses (§V-A), "these
// two traditional methods only identify the mean value of g^OPT(x),
// while the covariance matrix is completely ignored" — the property that
// the Gibbs two-stage flow improves on.
package baselines

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/stat"
	"repro/internal/telemetry"
)

// ErrNoFailures is returned when the MIS exploration stage finds no
// failing sample (the budget or spread is too small for the failure
// rate).
var ErrNoFailures = errors.New("baselines: first stage found no failures")

// Result reports a baseline estimate with the paper's stage accounting.
type Result struct {
	mc.Result
	// Mean is the distortion mean found by the first stage.
	Mean []float64
	// GNor is the mean-shifted unit-covariance distortion.
	GNor *stat.MVNormal
	// Stage1Sims and Stage2Sims split the simulation cost.
	Stage1Sims, Stage2Sims int64
	// Stage1Seconds and Stage2Seconds split the wall time the same way
	// (for the run-report; no statistical meaning).
	Stage1Seconds, Stage2Seconds float64
}

// MISOptions configures mixture importance sampling.
type MISOptions struct {
	// Stage1 is the number of exploratory simulations (paper Table I:
	// 5000).
	Stage1 int
	// N is the number of second-stage importance samples.
	N int
	// Spread scales the exploration distribution: stage-1 samples are
	// drawn from N(0, Spread²·I) ∪ U(−URange, URange) as a 50/50
	// mixture (default Spread 3, URange 6).
	Spread, URange float64
	// Workers sizes the evaluation pool for both stages
	// (0 = GOMAXPROCS); the estimate is identical for every pool size.
	Workers int
	// TraceEvery records second-stage convergence snapshots (0 off).
	TraceEvery mc.TraceEvery
	// Telemetry, when non-nil, observes both stages (throughput counters,
	// chunk latencies, estimator progress); estimates are unchanged.
	Telemetry *telemetry.Registry
}

func (o *MISOptions) defaults() MISOptions {
	d := *o
	if d.Spread <= 0 {
		d.Spread = 3
	}
	if d.URange <= 0 {
		d.URange = 6
	}
	return d
}

// MIS runs mixture importance sampling: explore, take the f-weighted
// centroid of the failing samples as the distortion mean, and run the
// second importance-sampling stage with unit covariance.
func MIS(counter *mc.Counter, opts MISOptions, rng *rand.Rand) (*Result, error) {
	return MISContext(context.Background(), counter, opts, rng)
}

// MISContext is MIS with cancellation: ctx is polled once per evaluation
// chunk in both the exploration and the importance-sampling stage, so a
// cancel aborts within one chunk while an uncancelled run stays
// bit-identical to MIS for every worker count.
func MISContext(ctx context.Context, counter *mc.Counter, opts MISOptions, rng *rand.Rand) (*Result, error) {
	o := opts.defaults()
	if o.N <= 0 {
		return nil, errors.New("baselines: MIS sample count must be positive")
	}
	res, err := misExplore(ctx, counter, &o, rng)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res.Result, err = mc.ImportanceSampleContext(ctx, mc.NewEvaluator(counter, o.Workers).WithTelemetry(o.Telemetry), res.GNor, o.N, rng, o.TraceEvery)
	if err != nil {
		return nil, err
	}
	res.Stage2Seconds = time.Since(t0).Seconds()
	res.Stage2Sims = counter.Count() - res.Stage1Sims
	return res, nil
}

// MNISOptions configures minimum-norm importance sampling.
type MNISOptions struct {
	// Start tunes the model-based norm minimization; its TrainN is the
	// stage-1 budget (paper Table I: 1000).
	Start *model.StartOptions
	// N is the number of second-stage importance samples.
	N int
	// TraceEvery records second-stage convergence snapshots (0 off).
	TraceEvery mc.TraceEvery
	// Workers sizes the second-stage evaluation pool (0 = GOMAXPROCS);
	// the norm-minimization first stage is sequential.
	Workers int
	// Telemetry, when non-nil, observes the second stage; estimates are
	// unchanged.
	Telemetry *telemetry.Registry
}

// MNIS runs minimum-norm importance sampling: find the minimum-norm
// failure point with a fitted performance model (plus simulation-verified
// ray refinement), then run the mean-shifted unit-covariance second
// stage.
func MNIS(counter *mc.Counter, opts MNISOptions, rng *rand.Rand) (*Result, error) {
	return MNISContext(context.Background(), counter, opts, rng)
}

// MNISContext is MNIS with cancellation: ctx is polled between
// norm-minimization training simulations and once per second-stage
// evaluation chunk. Uncancelled runs are bit-identical to MNIS.
func MNISContext(ctx context.Context, counter *mc.Counter, opts MNISOptions, rng *rand.Rand) (*Result, error) {
	if opts.N <= 0 {
		return nil, errors.New("baselines: MNIS sample count must be positive")
	}
	res, err := mnisStage1(ctx, counter, &opts, rng)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res.Result, err = mc.ImportanceSampleContext(ctx, mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry), res.GNor, opts.N, rng, opts.TraceEvery)
	if err != nil {
		return nil, err
	}
	res.Stage2Seconds = time.Since(t0).Seconds()
	res.Stage2Sims = counter.Count() - res.Stage1Sims
	return res, nil
}

// mnisStage1 runs the model-based norm minimization (the MNIS first
// stage) under a "stage1" span and reports its cost.
func mnisStage1(ctx context.Context, counter *mc.Counter, opts *MNISOptions, rng *rand.Rand) (*Result, error) {
	t0 := time.Now()
	spanCtx, span := telemetry.StartSpan(ctx, opts.Telemetry, "stage1")
	span.SetAttr("method", "mnis")
	mean, err := model.FindFailurePointContext(spanCtx, counter, opts.Start, rng)
	span.SetAttr("sims", counter.Count())
	span.End()
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("baselines: MNIS norm minimization: %w", err)
	}
	gnor, err := stat.NewMVNormal(mean, linalg.Identity(len(mean)))
	if err != nil {
		return nil, err
	}
	return &Result{
		Mean: mean, GNor: gnor,
		Stage1Sims: counter.Count(), Stage1Seconds: time.Since(t0).Seconds(),
	}, nil
}

// MISUntil is MIS with a convergence-target second stage (Table I).
func MISUntil(counter *mc.Counter, opts MISOptions, target float64, minN, maxN int, rng *rand.Rand) (*Result, error) {
	return MISUntilContext(context.Background(), counter, opts, target, minN, maxN, rng)
}

// MISUntilContext is MISUntil with cancellation, checked at the same
// chunk boundaries as MISContext.
func MISUntilContext(ctx context.Context, counter *mc.Counter, opts MISOptions, target float64, minN, maxN int, rng *rand.Rand) (*Result, error) {
	o := opts.defaults()
	o.N = 1
	// Run the exploration exactly as MIS does, then substitute the
	// until-target second stage.
	res, err := misExplore(ctx, counter, &o, rng)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res.Result, err = mc.ImportanceSampleUntilContext(ctx, mc.NewEvaluator(counter, o.Workers).WithTelemetry(o.Telemetry), res.GNor, target, minN, maxN, rng)
	if err != nil {
		return nil, err
	}
	res.Stage2Seconds = time.Since(t0).Seconds()
	res.Stage2Sims = counter.Count() - res.Stage1Sims
	return res, nil
}

// MNISUntil is MNIS with a convergence-target second stage (Table I).
func MNISUntil(counter *mc.Counter, opts MNISOptions, target float64, minN, maxN int, rng *rand.Rand) (*Result, error) {
	return MNISUntilContext(context.Background(), counter, opts, target, minN, maxN, rng)
}

// MNISUntilContext is MNISUntil with cancellation, checked at the same
// boundaries as MNISContext.
func MNISUntilContext(ctx context.Context, counter *mc.Counter, opts MNISOptions, target float64, minN, maxN int, rng *rand.Rand) (*Result, error) {
	res, err := mnisStage1(ctx, counter, &opts, rng)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res.Result, err = mc.ImportanceSampleUntilContext(ctx, mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry), res.GNor, target, minN, maxN, rng)
	if err != nil {
		return nil, err
	}
	res.Stage2Seconds = time.Since(t0).Seconds()
	res.Stage2Sims = counter.Count() - res.Stage1Sims
	return res, nil
}

// misExplore factors the MIS first stage for reuse by MISUntil. The
// exploratory simulations run on the evaluation pool in ChunkSize
// dispatches — ctx is polled between chunks, never inside — and the
// f-weighted centroid is accumulated in sample-index order, so it is
// bit-identical for every worker count and for any chunking.
func misExplore(ctx context.Context, counter *mc.Counter, o *MISOptions, rng *rand.Rand) (*Result, error) {
	if o.Stage1 <= 0 {
		return nil, errors.New("baselines: MIS stage sizes must be positive")
	}
	t0 := time.Now()
	ctx, span := telemetry.StartSpan(ctx, o.Telemetry, "stage1")
	defer span.End()
	span.SetAttr("method", "mis")
	span.SetAttr("stage1", o.Stage1)
	dim := counter.Dim()
	ev := mc.NewEvaluator(counter, o.Workers).WithTelemetry(o.Telemetry)
	draw := func(rng *rand.Rand, _ int) []float64 {
		x := make([]float64, dim)
		if rng.Intn(2) == 0 {
			for j := range x {
				x[j] = o.Spread * rng.NormFloat64()
			}
		} else {
			for j := range x {
				x[j] = o.URange * (2*rng.Float64() - 1)
			}
		}
		return x
	}
	seed := rng.Int63()
	mean := make([]float64, dim)
	wsum := 0.0
	for start := 0; start < o.Stage1; start += mc.ChunkSize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		count := min(mc.ChunkSize, o.Stage1-start)
		for _, s := range ev.Batch(seed, start, count, draw) {
			if s.Value < 0 {
				w := stat.StdNormPDF(s.X)
				wsum += w
				for j, v := range s.X {
					mean[j] += w * v
				}
			}
		}
	}
	//reprolint:ignore floateq wsum is exactly 0 iff no failing sample contributed a weight; sentinel for "no failures seen"
	if wsum == 0 {
		return nil, ErrNoFailures
	}
	linalg.Scale(mean, 1/wsum)
	gnor, err := stat.NewMVNormal(mean, linalg.Identity(dim))
	if err != nil {
		return nil, err
	}
	span.SetAttr("sims", counter.Count())
	return &Result{
		Mean: mean, GNor: gnor,
		Stage1Sims: counter.Count(), Stage1Seconds: time.Since(t0).Seconds(),
	}, nil
}
