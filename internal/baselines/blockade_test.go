package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mc"
	"repro/internal/surrogate"
)

func TestBlockadeOnLinearMetric(t *testing.T) {
	// Pf = Φ(−3.5) ≈ 2.33e-4: rare enough that blockade saves sims, yet
	// common enough that the candidate stream sees many failures.
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 3.5 * math.Sqrt2}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(1))
	res, err := Blockade(counter, BlockadeOptions{Train: 800, N: 400000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	se := math.Sqrt(exact * (1 - exact) / 400000)
	if math.Abs(res.Pf-exact) > 5*se {
		t.Fatalf("blockade Pf %v vs exact %v", res.Pf, exact)
	}
	// The whole point: simulations ≪ candidates.
	total := res.TrainSims + res.TailSims
	if total > int64(res.N)/4 {
		t.Fatalf("blockade did not block: %d sims for %d candidates", total, res.N)
	}
	if res.TailSims == 0 {
		t.Fatal("no tail simulations at all — estimate cannot contain failures")
	}
}

func TestBlockadeExactClassifierStillUnbiased(t *testing.T) {
	// The metric is exactly linear, so the classifier is perfect; the
	// guard band must still simulate every true failure.
	lin := &surrogate.Linear{W: []float64{2, -1}, B: 7}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(2))
	res, err := Blockade(counter, BlockadeOptions{Train: 500, N: 300000, GuardSigmas: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against plain MC with the same stream size.
	rng2 := rand.New(rand.NewSource(2))
	plain, err := mc.PlainMC(lin, 300000, rng2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both are MC tallies of the same probability: they agree within
	// joint noise.
	d := math.Abs(res.Pf - plain.Pf)
	se := plain.StdErr*3 + res.StdErr*3 + 1e-9
	if d > se {
		t.Fatalf("blockade %v vs plain %v (tol %v)", res.Pf, plain.Pf, se)
	}
}

func TestBlockadeValidation(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 3}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(3))
	if _, err := Blockade(counter, BlockadeOptions{Train: 100, N: 0}, rng); err == nil {
		t.Fatal("expected N validation error")
	}
}

func TestBlockadeReportsResidual(t *testing.T) {
	// A strongly nonlinear metric leaves a large classifier residual,
	// which the result must surface.
	sh := &surrogate.Shell{M: 2, R: 2.5}
	counter := mc.NewCounter(sh)
	rng := rand.New(rand.NewSource(4))
	res, err := Blockade(counter, BlockadeOptions{Train: 500, N: 50000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualSigma < 0.3 {
		t.Fatalf("shell metric should leave a big linear residual, got %v", res.ResidualSigma)
	}
}
