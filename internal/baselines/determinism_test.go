package baselines

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/mc"
	"repro/internal/surrogate"
)

// Every baseline routes its simulations through the shared evaluation
// pool, so the worker count must never change an estimate — only how
// fast it arrives. Each sweep compares against a fresh workers=1 run.

func poolSizes() []int { return []int{1, 2, 7, runtime.GOMAXPROCS(0)} }

func TestMISWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *Result {
		lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
		counter := mc.NewCounter(lin)
		rng := rand.New(rand.NewSource(41))
		res, err := MIS(counter, MISOptions{Stage1: 2000, N: 20000, Workers: workers}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range poolSizes()[1:] {
		res := run(workers)
		if res.Pf != ref.Pf || res.N != ref.N || res.Failures != ref.Failures {
			t.Fatalf("workers=%d diverged: got (Pf=%v N=%d F=%d), want (Pf=%v N=%d F=%d)",
				workers, res.Pf, res.N, res.Failures, ref.Pf, ref.N, ref.Failures)
		}
		for j := range res.Mean {
			if res.Mean[j] != ref.Mean[j] {
				t.Fatalf("workers=%d shifted the stage-1 centroid", workers)
			}
		}
	}
}

func TestSubsetWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *SubsetResult {
		lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
		counter := mc.NewCounter(lin)
		rng := rand.New(rand.NewSource(42))
		res, err := Subset(counter, SubsetOptions{Particles: 400, Workers: workers}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range poolSizes()[1:] {
		res := run(workers)
		if res.Pf != ref.Pf || res.Sims != ref.Sims || len(res.Levels) != len(ref.Levels) {
			t.Fatalf("workers=%d diverged: got (Pf=%v sims=%d levels=%d), want (Pf=%v sims=%d levels=%d)",
				workers, res.Pf, res.Sims, len(res.Levels), ref.Pf, ref.Sims, len(ref.Levels))
		}
		for i := range res.Levels {
			if res.Levels[i] != ref.Levels[i] {
				t.Fatalf("workers=%d ladder level %d diverged", workers, i)
			}
		}
	}
}

func TestBlockadeWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *BlockadeResult {
		lin := &surrogate.Linear{W: []float64{1, 1}, B: 3}
		counter := mc.NewCounter(lin)
		rng := rand.New(rand.NewSource(43))
		res, err := Blockade(counter, BlockadeOptions{Train: 500, N: 20000, Workers: workers}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range poolSizes()[1:] {
		res := run(workers)
		if res.Pf != ref.Pf || res.N != ref.N || res.Failures != ref.Failures {
			t.Fatalf("workers=%d diverged: got (Pf=%v N=%d F=%d), want (Pf=%v N=%d F=%d)",
				workers, res.Pf, res.N, res.Failures, ref.Pf, ref.N, ref.Failures)
		}
		if res.TrainSims != ref.TrainSims || res.TailSims != ref.TailSims ||
			res.ResidualSigma != ref.ResidualSigma {
			t.Fatalf("workers=%d cost split diverged: train %d/%d tail %d/%d",
				workers, res.TrainSims, ref.TrainSims, res.TailSims, ref.TailSims)
		}
	}
}
