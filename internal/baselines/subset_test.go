package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mc"
	"repro/internal/surrogate"
)

func TestSubsetOnLinearMetric(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6} // Pf ≈ 1.10e-5
	exact := lin.ExactPf()
	// Average a few runs: subset simulation has chain-correlation noise.
	var avg float64
	const runs = 4
	for s := int64(0); s < runs; s++ {
		counter := mc.NewCounter(lin)
		rng := rand.New(rand.NewSource(100 + s))
		res, err := Subset(counter, SubsetOptions{Particles: 800}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sims <= 0 || len(res.Levels) == 0 {
			t.Fatal("missing diagnostics")
		}
		avg += res.Pf / runs
	}
	if math.Abs(avg-exact)/exact > 0.4 {
		t.Fatalf("subset avg %v vs exact %v", avg, exact)
	}
}

func TestSubsetLadderDescends(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 5}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(1))
	res, err := Subset(counter, SubsetOptions{Particles: 600}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i] >= res.Levels[i-1] {
			t.Fatalf("ladder not descending: %v", res.Levels)
		}
	}
	if last := res.Levels[len(res.Levels)-1]; last != 0 {
		t.Fatalf("ladder must end at the true level: %v", last)
	}
}

func TestSubsetModerateProbabilityShortLadder(t *testing.T) {
	// Pf ≈ 0.16: the very first population already fails enough, so the
	// ladder has a single level.
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 1}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(2))
	res, err := Subset(counter, SubsetOptions{Particles: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 1 {
		t.Fatalf("expected single-level ladder, got %v", res.Levels)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.25 {
		t.Fatalf("Pf %v vs %v", res.Pf, exact)
	}
}

func TestSubsetValidation(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 3}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(3))
	if _, err := Subset(counter, SubsetOptions{Particles: 5, P0: 0.1}, rng); err == nil {
		t.Fatal("expected keep<2 validation error")
	}
	// A region that is unreachable within the stage cap must error, not
	// loop forever.
	never := mc.MetricFunc{M: 2, F: func(x []float64) float64 { return 1 + x[0]*0 }}
	counterN := mc.NewCounter(never)
	if _, err := Subset(counterN, SubsetOptions{Particles: 100, MaxStages: 3}, rng); err == nil {
		t.Fatal("expected ladder-exhaustion error")
	}
}

// Subset simulation's selling point: rare events with far fewer
// simulations than 1/Pf.
func TestSubsetSimBudget(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1, 1}, B: 8} // Pf ≈ 1.9e-6
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(4))
	res, err := Subset(counter, SubsetOptions{Particles: 600}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sims > 30000 {
		t.Fatalf("subset burned %d sims — defeats its purpose", res.Sims)
	}
	if res.Pf <= 0 {
		t.Fatal("zero estimate")
	}
}
