package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/surrogate"
)

func TestMISOnLinearMetric(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6} // Pf = Φ(−6/√2) ≈ 1.10e-5
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(1))
	res, err := MIS(counter, MISOptions{Stage1: 3000, N: 30000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.2 {
		t.Fatalf("MIS estimate %v, exact %v", res.Pf, exact)
	}
	if res.Stage1Sims != 3000 || res.Stage2Sims != 30000 {
		t.Fatalf("stage accounting: %d/%d", res.Stage1Sims, res.Stage2Sims)
	}
	// The centroid must point along (1,1).
	if res.Mean[0] < 2 || math.Abs(res.Mean[0]-res.Mean[1]) > 1.0 {
		t.Fatalf("MIS mean implausible: %v", res.Mean)
	}
}

func TestMNISOnLinearMetric(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{2, 1}, B: 9} // boundary at 9/√5 ≈ 4.02σ
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(2))
	res, err := MNIS(counter, MNISOptions{N: 30000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.2 {
		t.Fatalf("MNIS estimate %v, exact %v", res.Pf, exact)
	}
	// Mean must sit at the min-norm boundary point.
	if math.Abs(linalg.Norm2(res.Mean)-9/math.Sqrt(5)) > 0.15 {
		t.Fatalf("MNIS mean norm %v, want ≈%v", linalg.Norm2(res.Mean), 9/math.Sqrt(5))
	}
}

func TestMISNoFailures(t *testing.T) {
	never := mc.MetricFunc{M: 2, F: func([]float64) float64 { return 1 }}
	counter := mc.NewCounter(never)
	rng := rand.New(rand.NewSource(3))
	if _, err := MIS(counter, MISOptions{Stage1: 200, N: 100}, rng); err != ErrNoFailures {
		t.Fatalf("want ErrNoFailures, got %v", err)
	}
}

func TestMISValidation(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(4))
	if _, err := MIS(counter, MISOptions{Stage1: 0, N: 10}, rng); err == nil {
		t.Fatal("expected stage1 validation error")
	}
	if _, err := MIS(counter, MISOptions{Stage1: 10, N: 0}, rng); err == nil {
		t.Fatal("expected N validation error")
	}
	if _, err := MNIS(counter, MNISOptions{N: 0}, rng); err == nil {
		t.Fatal("expected MNIS N validation error")
	}
}

func TestMISUntilTarget(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4.2}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(5))
	res, err := MISUntil(counter, MISOptions{Stage1: 2000}, 0.10, 500, 500000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelErr99 > 0.10 {
		t.Fatalf("target missed: %v after %d", res.RelErr99, res.N)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.2 {
		t.Fatalf("estimate %v, exact %v", res.Pf, exact)
	}
}

func TestMNISUntilTarget(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0.5}, B: 5}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(6))
	res, err := MNISUntil(counter, MNISOptions{}, 0.10, 500, 500000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelErr99 > 0.10 {
		t.Fatalf("target missed: %v", res.RelErr99)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.2 {
		t.Fatalf("estimate %v, exact %v", res.Pf, exact)
	}
}

// Mean-shift methods underestimate on the wide arc (the §V-B failure
// mode) while still converging on well-behaved regions — the contrast the
// paper's Table II reports.
func TestMNISUnderestimatesOnArc(t *testing.T) {
	arc := &surrogate.Arc{R: 4.2, HalfAngle: 2.8}
	exact := arc.ExactPf()
	var avg float64
	const nSeeds = 3
	for s := int64(0); s < nSeeds; s++ {
		counter := mc.NewCounter(arc)
		rng := rand.New(rand.NewSource(50 + s))
		res, err := MNIS(counter, MNISOptions{N: 8000}, rng)
		if err != nil {
			t.Fatal(err)
		}
		avg += res.Pf / nSeeds
	}
	if avg > 0.8*exact {
		t.Fatalf("MNIS should underestimate on the arc: %v vs %v", avg, exact)
	}
}
