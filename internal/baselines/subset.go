package baselines

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mc"
	"repro/internal/stat"
	"repro/internal/telemetry"
)

// Subset simulation — the sequential-sampling family the paper cites as
// [13] (Katayama et al., sequential importance sampling). The failure
// probability is decomposed into a product of conditional probabilities
// over a descending ladder of intermediate margin levels,
//
//	P(M < 0) = P(M < L₁) · Π_k P(M < L_{k+1} | M < L_k),
//
// each estimated from a particle population evolved by a
// Metropolis-within-Gibbs random walk conditioned on the current level.
// Levels are chosen adaptively as the p0-quantile of the population, so
// every stage solves a moderate-probability problem.

// SubsetOptions configures subset simulation.
type SubsetOptions struct {
	// Particles per stage (default 500).
	Particles int
	// P0 is the conditional level probability (default 0.1).
	P0 float64
	// MaxStages bounds the ladder (default 12).
	MaxStages int
	// Step is the random-walk proposal σ (default 0.8).
	Step float64
	// Workers sizes the evaluation pool (0 = GOMAXPROCS): the stage-0
	// population evaluates sample-parallel and each level's seed chains
	// walk chain-parallel. Estimates are identical for every pool size.
	Workers int
	// Telemetry, when non-nil, observes the evaluation pool; estimates
	// are unchanged.
	Telemetry *telemetry.Registry
}

// SubsetResult reports the estimate and ladder diagnostics.
type SubsetResult struct {
	mc.Result
	// Levels is the adaptive margin ladder (descending, ending at 0).
	Levels []float64
	// Sims is the total simulation count.
	Sims int64
}

type particle struct {
	x []float64
	m float64 // cached margin
}

// Subset runs subset simulation on the metric.
func Subset(counter *mc.Counter, opts SubsetOptions, rng *rand.Rand) (*SubsetResult, error) {
	return SubsetContext(context.Background(), counter, opts, rng)
}

// subsetChunk bounds one population dispatch: the stage-0 population
// and each level's chain fan-out run chunk by chunk with a cancellation
// check between chunks. Chunking never changes the populations because
// every particle/chain draws from a generator seeded by its absolute
// index.
const subsetChunk = 1 << 12

// SubsetContext is Subset with cancellation: ctx is polled between
// population chunks and between chain-dispatch chunks, so a cancel
// aborts within one chunk while an uncancelled ladder stays
// bit-identical to Subset for every worker count.
func SubsetContext(ctx context.Context, counter *mc.Counter, opts SubsetOptions, rng *rand.Rand) (*SubsetResult, error) {
	n := opts.Particles
	if n <= 0 {
		n = 500
	}
	p0 := opts.P0
	if p0 <= 0 || p0 >= 1 {
		p0 = 0.1
	}
	maxStages := opts.MaxStages
	if maxStages <= 0 {
		maxStages = 12
	}
	step := opts.Step
	if step <= 0 {
		step = 0.8
	}
	dim := counter.Dim()
	keep := int(math.Round(p0 * float64(n)))
	if keep < 2 {
		return nil, errors.New("baselines: subset needs p0·particles ≥ 2")
	}

	// Stage 0: plain Monte Carlo population, evaluated sample-parallel
	// in subsetChunk dispatches.
	ev := mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry)
	popSeed := rng.Int63()
	pop := make([]particle, 0, n)
	for start := 0; start < n; start += subsetChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		count := min(subsetChunk, n-start)
		pop = append(pop, mc.Map(ev, popSeed, start, count, func(rng *rand.Rand, _ int) particle {
			x := make([]float64, dim)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			return particle{x: x, m: counter.Value(x)}
		})...)
	}

	res := &SubsetResult{}
	logPf := 0.0
	for stage := 0; stage < maxStages; stage++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sort.Slice(pop, func(i, j int) bool { return pop[i].m < pop[j].m })
		// Count how many particles already fail outright.
		nFail := sort.Search(len(pop), func(i int) bool { return pop[i].m >= 0 })
		if nFail >= keep {
			// Final stage: the failure fraction is a plain estimate.
			logPf += math.Log(float64(nFail) / float64(n))
			res.Levels = append(res.Levels, 0)
			return finishSubset(res, counter, logPf, n, len(res.Levels))
		}
		// Intermediate level at the p0-quantile of the margins. The
		// early levels are positive (relaxed specs); the ladder descends
		// toward the true level 0.
		level := pop[keep-1].m
		res.Levels = append(res.Levels, level)
		logPf += math.Log(p0)

		// Seed the next population from the keepers by
		// Metropolis-within-Gibbs conditioned on M < level: each of the
		// keep seeds runs a chain of n/keep states (repeats on rejected
		// moves, standard subset-simulation MCMC). Chains are mutually
		// independent, so they walk on the pool in parallel — each with a
		// generator seeded by its chain index, keeping the populations
		// identical for every worker count.
		seeds := pop[:keep]
		chainLen := n / keep
		walk := func(rng *rand.Rand, c int) []particle {
			cur := seeds[c]
			walker := particle{x: append([]float64(nil), cur.x...), m: cur.m}
			states := make([]particle, 0, chainLen)
			for s := 0; s < chainLen; s++ {
				prop := append([]float64(nil), walker.x...)
				// Component-wise Normal random walk with the standard
				// Normal target: accept with min(1, φ(y)/φ(x)) and then
				// enforce the conditioning event.
				for j := range prop {
					cand := prop[j] + step*rng.NormFloat64()
					logAccept := 0.5 * (prop[j]*prop[j] - cand*cand)
					if math.Log(rng.Float64()+1e-300) < logAccept {
						prop[j] = cand
					}
				}
				m := counter.Value(prop)
				if m < level {
					walker = particle{x: prop, m: m}
				}
				states = append(states, walker)
			}
			return states
		}
		chainSeed := rng.Int63()
		next := make([]particle, 0, n)
		for start := 0; start < keep; start += subsetChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			count := min(subsetChunk, keep-start)
			for _, states := range mc.Map(ev, chainSeed, start, count, walk) {
				next = append(next, states...)
			}
		}
		// Round-off from n/keep: top up by continuing the last chain.
		for len(next) < n {
			next = append(next, next[len(next)-1])
		}
		pop = next
	}
	return nil, errors.New("baselines: subset simulation did not reach the failure level")
}

func finishSubset(res *SubsetResult, counter *mc.Counter, logPf float64, n, stages int) (*SubsetResult, error) {
	pf := math.Exp(logPf)
	// Delta-method error bar: each stage contributes roughly
	// (1−p0)/(p0·n) of squared coefficient of variation; correlated
	// chains inflate it, so this is a lower bound the caller should
	// treat as indicative (standard subset-simulation practice).
	cv2 := 0.0
	for s := 0; s < stages; s++ {
		cv2 += (1 - 0.1) / (0.1 * float64(n))
	}
	se := pf * math.Sqrt(cv2)
	rel := math.Inf(1)
	if pf > 0 {
		rel = stat.Z99 * se / pf
	}
	res.Result = mc.Result{Pf: pf, StdErr: se, RelErr99: rel, N: n * stages}
	res.Sims = counter.Count()
	return res, nil
}
