package baselines

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/mc"
)

// Partial variants of the baseline estimators, for distributed serving:
// each replays its (deterministic, seeded) first stage exactly as the
// single-node flow does — consuming rng in the same order — and then
// evaluates only the requested terminal-stage index ranges. The caller
// folds the returned mc.Partial slices with the matching mc.Fold*
// function; the fold is bit-identical to the single-node run.

// MISPartial is the distributed form of MISContext: the exploration
// stage runs in full (it is the prefix every node must agree on), then
// only the given second-stage ranges are simulated. The returned Result
// carries the stage-1 products (Mean, GNor, Stage1Sims); its mc.Result
// stays zero for the caller to fold.
func MISPartial(ctx context.Context, counter *mc.Counter, opts MISOptions, rng *rand.Rand, ranges []mc.Range) (*Result, []mc.Partial, error) {
	o := opts.defaults()
	if o.N <= 0 {
		return nil, nil, errors.New("baselines: MIS sample count must be positive")
	}
	res, err := misExplore(ctx, counter, &o, rng)
	if err != nil {
		return nil, nil, err
	}
	parts, err := mc.ImportanceSamplePartial(ctx, mc.NewEvaluator(counter, o.Workers).WithTelemetry(o.Telemetry), res.GNor, o.N, rng, ranges)
	if err != nil {
		return nil, nil, err
	}
	return res, parts, nil
}

// MNISPartial is the distributed form of MNISContext, with the
// model-based norm minimization as the replicated prefix.
func MNISPartial(ctx context.Context, counter *mc.Counter, opts MNISOptions, rng *rand.Rand, ranges []mc.Range) (*Result, []mc.Partial, error) {
	if opts.N <= 0 {
		return nil, nil, errors.New("baselines: MNIS sample count must be positive")
	}
	res, err := mnisStage1(ctx, counter, &opts, rng)
	if err != nil {
		return nil, nil, err
	}
	parts, err := mc.ImportanceSamplePartial(ctx, mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry), res.GNor, opts.N, rng, ranges)
	if err != nil {
		return nil, nil, err
	}
	return res, parts, nil
}

// BlockadePartial is the distributed form of BlockadeContext: training
// and classifier fit run in full (the replicated prefix), then only the
// given candidate-stream ranges are filtered and simulated. Partial.Sims
// counts the simulations the range actually cost — its unblocked
// candidates — which is itself deterministic because the classifier is.
// Fold the partials with mc.FoldBernoulli.
func BlockadePartial(ctx context.Context, counter *mc.Counter, opts BlockadeOptions, rng *rand.Rand, ranges []mc.Range) (*BlockadeResult, []mc.Partial, error) {
	plan, err := blockadeTrain(ctx, counter, opts, rng)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi <= r.Lo || r.Hi > plan.n {
			return nil, nil, mc.ErrBadRange
		}
	}
	parts := make([]mc.Partial, 0, len(ranges))
	for _, r := range ranges {
		p := mc.Partial{Start: r.Lo, Count: r.Count()}
		before := counter.Count()
		for start := r.Lo; start < r.Hi; start += blockadeChunk {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			count := min(blockadeChunk, r.Hi-start)
			for j, fail := range mc.Map(plan.ev, plan.streamSeed, start, count, plan.candidate) {
				if fail {
					p.FailIdx = append(p.FailIdx, start+j)
				}
			}
		}
		p.Sims = counter.Count() - before
		parts = append(parts, p)
	}
	return plan.res, parts, nil
}
