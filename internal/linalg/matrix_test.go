package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %+v", m)
	}
	m.Set(0, 0, 5)
	m.Add(0, 0, 1)
	if m.At(0, 0) != 6 {
		t.Fatalf("Set/Add wrong: got %v", m.At(0, 0))
	}
	c := m.Clone()
	c.Set(1, 1, 99)
	if m.At(1, 1) == 99 {
		t.Fatal("Clone aliases original")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero did not clear")
		}
	}
}

func TestIdentityMul(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	i3 := Identity(3)
	if a.Mul(i3).MaxAbsDiff(a) != 0 {
		t.Fatal("A*I != A")
	}
	if i3.Mul(a).MaxAbsDiff(a) != 0 {
		t.Fatal("I*A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	if got.MaxAbsDiff(want) > 1e-15 {
		t.Fatalf("Mul wrong: %+v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec wrong: %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %+v", at)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewMatrix(r, c)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		return a.Transpose().Transpose().MaxAbsDiff(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotNormScale(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
	x := Scale([]float64{1, 2}, 3)
	if x[0] != 3 || x[1] != 6 {
		t.Fatal("Scale wrong")
	}
	y := AXPY([]float64{1, 1}, 2, []float64{3, 4})
	if y[0] != 7 || y[1] != 9 {
		t.Fatal("AXPY wrong")
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 1, 1}, {1, 3, 2}, {1, 0, 0}})
	b := []float64{4, 5, 6}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A x == b.
	ax := a.MulVec(x)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-12) {
			t.Fatalf("Ax != b: %v vs %v", ax, b)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 3}, {6, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Fatalf("det wrong: %v", f.Det())
	}
}

// Property: for random well-conditioned A and random x, solving A b = (A x)
// recovers x.
func TestLUSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // diagonal dominance => well conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mul(inv).MaxAbsDiff(Identity(2)) > 1e-12 {
		t.Fatalf("A*A^-1 != I: %+v", a.Mul(inv))
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 2}, {2, 3}})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L Lᵀ must reconstruct A.
	rec := c.L.Mul(c.L.Transpose())
	if rec.MaxAbsDiff(a) > 1e-12 {
		t.Fatalf("LLᵀ != A: %+v", rec)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	a := NewMatrixFrom([][]float64{{6, 2, 1}, {2, 5, 2}, {1, 2, 4}})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := c.Solve(b)
	ax := a.MulVec(x)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-12) {
			t.Fatalf("Cholesky solve wrong: %v", ax)
		}
	}
}

func TestCholeskyRegularized(t *testing.T) {
	// Rank-deficient covariance (as from too few Gibbs samples).
	a := NewMatrixFrom([][]float64{{1, 1}, {1, 1}})
	c, added, err := FactorCholeskyRegularized(a, 1e-9, 60)
	if err != nil {
		t.Fatal(err)
	}
	if added <= 0 {
		t.Fatal("expected jitter to be added")
	}
	if c == nil {
		t.Fatal("nil factor")
	}
}

// Property: LLᵀ reconstructs random SPD matrices built as GᵀG + I.
func TestCholeskyReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.Transpose().Mul(g)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		c, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		return c.L.Mul(c.L.Transpose()).MaxAbsDiff(a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 0}, {0, 9}})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.LogDet(), math.Log(36), 1e-12) {
		t.Fatalf("LogDet wrong: %v", c.LogDet())
	}
}

func TestCholeskyMulVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 2}, {2, 3}})
	c, _ := FactorCholesky(a)
	z := []float64{1, -1}
	lz := c.MulVec(z)
	want := c.L.MulVec(z)
	for i := range want {
		if !almostEq(lz[i], want[i], 1e-14) {
			t.Fatalf("MulVec mismatch: %v vs %v", lz, want)
		}
	}
}

func TestSymEigenKnown(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 1}, {1, 2}}) // eigenvalues 3 and 1
	vals, vecs := SymEigen(a)
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues wrong: %v", vals)
	}
	// A v = λ v for each column.
	for j := 0; j < 2; j++ {
		v := []float64{vecs.At(0, j), vecs.At(1, j)}
		av := a.MulVec(v)
		for i := range v {
			if !almostEq(av[i], vals[j]*v[i], 1e-9) {
				t.Fatalf("A v != λ v for column %d", j)
			}
		}
	}
}

// Property: eigen-decomposition reconstructs random symmetric matrices and
// the trace equals the eigenvalue sum.
func TestSymEigenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := SymEigen(a)
		tr, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
			sum += vals[i]
		}
		if !almostEq(tr, sum, 1e-8) {
			return false
		}
		// V diag(vals) Vᵀ == A
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		rec := vecs.Mul(d).Mul(vecs.Transpose())
		return rec.MaxAbsDiff(a) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresExactRecovery(t *testing.T) {
	// Overdetermined consistent system recovers the generating coefficients.
	rng := rand.New(rand.NewSource(7))
	n, p := 60, 4
	truth := []float64{1.5, -2, 0.25, 3}
	a := NewMatrix(n, p)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = Dot(a.Row(i), truth)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if !almostEq(x[j], truth[j], 1e-8) {
			t.Fatalf("coef %d: got %v want %v", j, x[j], truth[j])
		}
	}
}

func TestRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, p := 40, 3
	a := NewMatrix(n, p)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	x0, err := RidgeLeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := RidgeLeastSquares(a, b, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(x1) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink: %v vs %v", Norm2(x1), Norm2(x0))
	}
}
