package linalg

import "math"

// LU holds an LU factorization with partial pivoting of a square matrix,
// PA = LU. It is the workhorse of the circuit simulator's Newton iteration.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// FactorLU computes the LU factorization of a (which is not modified).
// It returns ErrSingular when a pivot underflows.
func FactorLU(a *Matrix) (*LU, error) {
	f := &LU{}
	if err := FactorInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto recomputes the factorization of a into f, reusing f's
// matrix, pivot and sign storage when the capacity allows. It performs
// exactly the same floating-point operations as FactorLU — a solve
// through a reused factorization is bit-identical to one through a fresh
// allocation — which is what lets the batched Newton kernel keep one LU
// workspace across a whole batch of samples. a is not modified.
func FactorInto(f *LU, a *Matrix) error {
	if a.Rows != a.Cols {
		panic("linalg: LU of non-square matrix")
	}
	n := a.Rows
	if f.lu == nil || cap(f.lu.Data) < n*n {
		f.lu = a.Clone()
	} else {
		f.lu.Rows, f.lu.Cols = n, n
		f.lu.Data = f.lu.Data[:n*n]
		copy(f.lu.Data, a.Data)
	}
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	}
	f.piv = f.piv[:n]
	f.sign = 1
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > pmax {
				p, pmax = i, v
			}
		}
		//reprolint:ignore floateq an exactly-zero pivot column means structural singularity; rank-tolerance decisions belong to the caller
		if pmax == 0 || math.IsNaN(pmax) {
			return ErrSingular
		}
		if p != k {
			rp, rk := lu.Row(p), lu.Row(k)
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			//reprolint:ignore floateq sparsity fast path: skipping an exactly-zero multiplier cannot change the elimination result
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// Solve solves A x = b for x using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.lu.Rows)
	f.SolveInto(x, b)
	return x
}

// SolveInto solves A x = b into a caller-owned x, allocating nothing.
// The floating-point operations are identical to Solve's. x and b must
// not alias and must both have the factored dimension.
func (f *LU) SolveInto(x, b []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: LU solve length mismatch")
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear is a convenience wrapper: it factors a and solves a x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns the inverse of a, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
