package linalg

// LeastSquares solves min ‖A x − b‖₂ via the normal equations with a small
// Tikhonov ridge for numerical robustness. A has more rows than columns in
// all library call sites (response-surface fitting of circuit metrics).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return RidgeLeastSquares(a, b, 0)
}

// RidgeLeastSquares solves min ‖A x − b‖² + ridge·‖x‖² through the normal
// equations (AᵀA + ridge·I) x = Aᵀb, factored by Cholesky with automatic
// jitter escalation.
func RidgeLeastSquares(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if a.Rows != len(b) {
		panic("linalg: least-squares shape mismatch")
	}
	n := a.Cols
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		for i := 0; i < n; i++ {
			//reprolint:ignore floateq sparsity fast path: skipping exact zeros cannot change the accumulated sums
			if row[i] == 0 {
				continue
			}
			atb[i] += row[i] * b[r]
			for j := i; j < n; j++ {
				ata.Add(i, j, row[i]*row[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		ata.Add(i, i, ridge)
		for j := i + 1; j < n; j++ {
			ata.Set(j, i, ata.At(i, j))
		}
	}
	chol, _, err := FactorCholeskyRegularized(ata, 1e-12, 40)
	if err != nil {
		return nil, err
	}
	return chol.Solve(atb), nil
}
