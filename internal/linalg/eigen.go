package linalg

import (
	"math"
	"sort"
)

// SymEigen computes all eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi method. Eigenvalues are returned in descending
// order; column j of the returned matrix is the eigenvector for values[j].
// This backs PCA whitening of correlated process variations (paper §II:
// correlated jointly-Normal variables are transformed by PCA).
func SymEigen(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: SymEigen of non-square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-28*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sv := make([]float64, n)
	vectors = NewMatrix(n, n)
	for jNew, jOld := range idx {
		sv[jNew] = values[jOld]
		for i := 0; i < n; i++ {
			vectors.Set(i, jNew, v.At(i, jOld))
		}
	}
	return sv, vectors
}
