package linalg

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ. It backs both multivariate-Normal sampling and
// Normal-density evaluation in the two-stage Monte Carlo flow.
type Cholesky struct {
	L *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric positive
// definite matrix. Only the lower triangle of a is read.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{L: l}, nil
}

// FactorCholeskyRegularized factors a, adding jitter*I (doubling on each
// failure, up to maxTries attempts) when a is not numerically positive
// definite. This is how the two-stage flow copes with near-singular sample
// covariances estimated from few Gibbs samples. It returns the factor and
// the total jitter that was added to the diagonal.
func FactorCholeskyRegularized(a *Matrix, jitter float64, maxTries int) (*Cholesky, float64, error) {
	if c, err := FactorCholesky(a); err == nil {
		return c, 0, nil
	}
	added := jitter
	for try := 0; try < maxTries; try++ {
		b := a.Clone()
		for i := 0; i < b.Rows; i++ {
			b.Add(i, i, added)
		}
		if c, err := FactorCholesky(b); err == nil {
			return c, added, nil
		}
		added *= 2
	}
	return nil, 0, ErrNotPositiveDefinite
}

// Solve solves A x = b via the factorization (two triangular solves).
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("linalg: Cholesky solve length mismatch")
	}
	x := CopyVec(b)
	// L y = b
	for i := 0; i < n; i++ {
		row := c.L.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	// Lᵀ x = y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.L.At(j, i) * x[j]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// MulVec returns L*z; with z ~ N(0, I) this yields a sample with covariance
// A = L Lᵀ.
func (c *Cholesky) MulVec(z []float64) []float64 {
	n := c.L.Rows
	if len(z) != n {
		panic("linalg: Cholesky mulvec length mismatch")
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		row := c.L.Row(i)
		s := 0.0
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		out[i] = s
	}
	return out
}

// LogDet returns log det(A) = 2 Σ log L_ii for the factored matrix.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
