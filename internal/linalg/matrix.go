// Package linalg provides the small dense linear-algebra kernel used by the
// SRAM failure-rate library: vectors, dense matrices, LU and Cholesky
// factorizations, a Jacobi symmetric eigensolver, and least-squares fitting.
//
// Everything is written against plain float64 slices so that callers (the
// circuit simulator's Newton loop, the covariance fitting in the two-stage
// Monte Carlo flow, the response-surface optimizer) pay no interface cost.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have the
// same length.
func NewMatrixFrom(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to zero, keeping the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			//reprolint:ignore floateq sparsity fast path: skipping exact zeros cannot change the product
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: mulvec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and b; it panics if the shapes differ.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: shape mismatch")
	}
	d := 0.0
	for i, v := range m.Data {
		if a := math.Abs(v - b.Data[i]); a > d {
			d = a
		}
	}
	return d
}

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of x by a, in place, and returns x.
func Scale(x []float64, a float64) []float64 {
	for i := range x {
		x[i] *= a
	}
	return x
}

// AXPY computes y += a*x in place and returns y.
func AXPY(y []float64, a float64, x []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: axpy length mismatch")
	}
	for i := range y {
		y[i] += a * x[i]
	}
	return y
}

// CopyVec returns a fresh copy of x.
func CopyVec(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}
