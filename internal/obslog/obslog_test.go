package obslog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNewJSONFormatAndLevel checks that the JSON handler emits parseable
// records, the minimum level filters, and With-attached attributes ride
// every record.
func TestNewJSONFormatAndLevel(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, FormatJSON, "warn")
	if err != nil {
		t.Fatal(err)
	}
	log = log.With("service", "testd", "job", "j42")
	log.Info("dropped")          // below warn
	log.Debug("dropped as well") // below warn
	log.Warn("kept", "kind", "chain_stalled")
	log.Error("kept too")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d records, want 2 (info/debug filtered):\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("json record not parseable: %v\n%s", err, lines[0])
	}
	if rec["msg"] != "kept" || rec["level"] != "WARN" {
		t.Fatalf("record = %v, want msg=kept level=WARN", rec)
	}
	if rec["service"] != "testd" || rec["job"] != "j42" || rec["kind"] != "chain_stalled" {
		t.Fatalf("record lost correlation fields: %v", rec)
	}
}

// TestNewTextDefaults checks the zero-config path: empty format and
// level mean text at info.
func TestNewTextDefaults(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("filtered at default level")
	log.Info("visible", "worker", "w0")
	out := buf.String()
	if strings.Contains(out, "filtered") {
		t.Fatalf("default level let debug through:\n%s", out)
	}
	if !strings.Contains(out, "msg=visible") || !strings.Contains(out, "worker=w0") {
		t.Fatalf("text record malformed:\n%s", out)
	}
}

// TestNewRejectsUnknownConfig checks the fail-fast contract for the
// -log-format / -log-level flags.
func TestNewRejectsUnknownConfig(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(&buf, "yaml", "info"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := New(&buf, FormatText, "loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

// TestNilLoggerNoOps drives the whole API through a nil receiver — the
// library-side "logging off" contract.
func TestNilLoggerNoOps(t *testing.T) {
	var log *Logger
	if log.With("k", "v") != nil {
		t.Fatal("nil With must return nil")
	}
	log.Debug("x")
	log.Info("x")
	log.Warn("x")
	log.Error("x", "k", 1)
}

// TestDiscard checks the explicit non-nil sink: usable, silent.
func TestDiscard(t *testing.T) {
	log := Discard()
	if log == nil {
		t.Fatal("Discard returned nil")
	}
	log.With("k", "v").Error("dropped")
}
