// Package obslog is the repo's structured-logging front door: a thin,
// nil-safe wrapper over log/slog used by the daemons (sramserverd,
// sramworkerd) and the serving layers (internal/jobs, internal/dist).
//
// Two conventions distinguish it from bare slog:
//
//   - A nil *Logger no-ops every method, the same contract as
//     internal/telemetry, so library code logs unconditionally and the
//     caller decides whether logging exists. No conditionals at call
//     sites, no package-level default logger.
//   - Correlation first: records about a job carry "job", records about
//     a lease carry "lease"+"worker", records inside a distributed
//     trace carry "trace". With -log-format json the records are
//     machine-parseable and these fields join log lines to the trace
//     and event-bus views of the same run.
package obslog

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Logger is a nil-safe structured logger. The zero value is not useful;
// build one with New (or Discard for tests).
type Logger struct {
	s *slog.Logger
}

// Formats accepted by New.
const (
	FormatText = "text"
	FormatJSON = "json"
)

// New returns a logger writing to w in the given format ("text" or
// "json") at the given minimum level ("debug", "info", "warn",
// "error"; "" means info). Unknown formats or levels are errors so a
// bad -log-format flag fails fast instead of silently logging nothing.
func New(w io.Writer, format, level string) (*Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obslog: unknown level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", FormatText:
		h = slog.NewTextHandler(w, opts)
	case FormatJSON:
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obslog: unknown format %q (want text or json)", format)
	}
	return &Logger{s: slog.New(h)}, nil
}

// Discard returns a logger that drops everything — equivalent to nil
// but non-nil, for tests that want to pass "a logger" explicitly.
func Discard() *Logger {
	return &Logger{s: slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))}
}

// With returns a logger whose records all carry the given key/value
// attributes — how job/lease/trace correlation fields attach once
// instead of at every call site. Nil-safe (returns nil).
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// Debug logs at debug level (nil-safe).
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, args...)
}

// Info logs at info level (nil-safe).
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at warn level (nil-safe).
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at error level (nil-safe).
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}
