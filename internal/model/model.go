// Package model implements the response-surface machinery behind the
// paper's starting-point selection (Algorithm 4, after Zhang et al. [18])
// and the minimum-norm importance-sampling baseline: linear and quadratic
// performance models fitted from a handful of simulations, minimum-norm
// points on their zero-level sets (paper eq. 29), and simulation-verified
// refinement of the resulting failure point.
package model

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/mc"
)

// finiteVec reports whether every coordinate is a normal float.
func finiteVec(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ErrNoFailureFound is returned when a search cannot locate any failing
// sample.
var ErrNoFailureFound = errors.New("model: no failure point found")

// Linear is the affine performance model y ≈ C0 + Wᵀx.
type Linear struct {
	C0 float64
	W  []float64
}

// Eval returns the model prediction at x.
func (l *Linear) Eval(x []float64) float64 { return l.C0 + linalg.Dot(l.W, x) }

// Grad returns the gradient (a copy of W).
func (l *Linear) Grad(x []float64) []float64 { return linalg.CopyVec(l.W) }

// FitLinear fits the model by least squares from sample points xs and
// responses ys.
func FitLinear(xs [][]float64, ys []float64) (*Linear, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("model: bad training set")
	}
	m := len(xs[0])
	a := linalg.NewMatrix(len(xs), m+1)
	for i, x := range xs {
		a.Set(i, 0, 1)
		for j, v := range x {
			a.Set(i, j+1, v)
		}
	}
	c, err := linalg.RidgeLeastSquares(a, ys, 1e-10)
	if err != nil {
		return nil, fmt.Errorf("model: linear fit: %w", err)
	}
	return &Linear{C0: c[0], W: c[1:]}, nil
}

// MinNormZero returns the minimum-norm point on the hyperplane
// {x : C0 + Wᵀx = 0}: x* = −C0·W/‖W‖².
func (l *Linear) MinNormZero() ([]float64, error) {
	n2 := linalg.Dot(l.W, l.W)
	//reprolint:ignore floateq dot(W,W) is exactly 0 only for an all-zero gradient; degenerate-model guard
	if n2 == 0 {
		return nil, errors.New("model: linear model has zero gradient")
	}
	x := linalg.CopyVec(l.W)
	return linalg.Scale(x, -l.C0/n2), nil
}

// Quadratic is the full second-order model y ≈ C0 + Wᵀx + xᵀAx with A
// symmetric.
type Quadratic struct {
	C0 float64
	W  []float64
	A  *linalg.Matrix
}

// Eval returns the model prediction at x.
func (q *Quadratic) Eval(x []float64) float64 {
	v := q.C0 + linalg.Dot(q.W, x)
	ax := q.A.MulVec(x)
	return v + linalg.Dot(x, ax)
}

// Grad returns ∇y = W + 2Ax.
func (q *Quadratic) Grad(x []float64) []float64 {
	g := q.A.MulVec(x)
	linalg.Scale(g, 2)
	return linalg.AXPY(g, 1, q.W)
}

// FitQuadratic fits the model by least squares. The training set must
// contain at least 1 + M + M(M+1)/2 points.
func FitQuadratic(xs [][]float64, ys []float64) (*Quadratic, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, errors.New("model: bad training set")
	}
	m := len(xs[0])
	ncoef := 1 + m + m*(m+1)/2
	if len(xs) < ncoef {
		return nil, fmt.Errorf("model: quadratic fit needs ≥ %d points, have %d", ncoef, len(xs))
	}
	a := linalg.NewMatrix(len(xs), ncoef)
	for i, x := range xs {
		a.Set(i, 0, 1)
		col := 1
		for j := 0; j < m; j++ {
			a.Set(i, col, x[j])
			col++
		}
		for j := 0; j < m; j++ {
			for k := j; k < m; k++ {
				v := x[j] * x[k]
				if j != k {
					v *= 2 // symmetric off-diagonal appears twice
				}
				a.Set(i, col, v)
				col++
			}
		}
	}
	c, err := linalg.RidgeLeastSquares(a, ys, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("model: quadratic fit: %w", err)
	}
	q := &Quadratic{C0: c[0], W: make([]float64, m), A: linalg.NewMatrix(m, m)}
	copy(q.W, c[1:1+m])
	col := 1 + m
	for j := 0; j < m; j++ {
		for k := j; k < m; k++ {
			q.A.Set(j, k, c[col])
			q.A.Set(k, j, c[col])
			col++
		}
	}
	return q, nil
}

// Surface is a fitted performance model with gradients — what the
// minimum-norm solver needs.
type Surface interface {
	Eval(x []float64) float64
	Grad(x []float64) []float64
}

// MinNormZeroSQP finds an approximate minimum-norm point on the zero-level
// set of a smooth surface by sequential linearization (paper eq. 29 with a
// quadratic model, solved as in [18]): at each step the constraint is
// linearized at x_k and the exact min-norm point of the linearized
// constraint becomes x_{k+1}, with damping for stability.
func MinNormZeroSQP(s Surface, dim, iters int) ([]float64, error) {
	x := make([]float64, dim)
	// Start from the linear-part solution when available, otherwise a
	// small perturbation to escape the saddle at the origin.
	g0 := s.Grad(x)
	//reprolint:ignore floateq Norm2 is exactly 0 only for the all-zero gradient at the origin saddle; exact sentinel
	if linalg.Norm2(g0) == 0 {
		for i := range x {
			x[i] = 1e-3
		}
	} else {
		v := s.Eval(x)
		n2 := linalg.Dot(g0, g0)
		x = linalg.Scale(linalg.CopyVec(g0), -v/n2)
	}
	for k := 0; k < iters; k++ {
		v := s.Eval(x)
		g := s.Grad(x)
		n2 := linalg.Dot(g, g)
		if n2 < 1e-24 {
			return nil, errors.New("model: vanishing gradient in min-norm iteration")
		}
		// Min-norm point of {z : v + gᵀ(z − x) = 0}: z = g·(gᵀx − v)/‖g‖².
		t := (linalg.Dot(g, x) - v) / n2
		z := linalg.Scale(linalg.CopyVec(g), t)
		// Damped update.
		for i := range x {
			x[i] = 0.5*x[i] + 0.5*z[i]
		}
		if math.IsNaN(x[0]) {
			return nil, errors.New("model: min-norm iteration diverged")
		}
	}
	return x, nil
}

// StartOptions configures FindFailurePoint.
type StartOptions struct {
	// TrainN is the number of training simulations for the response
	// surface (default 10·M for linear, 3·#coef for quadratic).
	TrainN int
	// TrainScale is the sampling radius multiplier for the training set:
	// points are drawn from N(0, TrainScale²·I) (default 3, wide enough
	// to see the failure side of the spec).
	TrainScale float64
	// UseQuadratic selects the quadratic model (default linear).
	UseQuadratic bool
	// MaxRadius bounds the outward search for a verified failure point
	// (default 10).
	MaxRadius float64
	// Bisections refines the ray crossing (default 10).
	Bisections int
}

func (o *StartOptions) defaults(dim int) StartOptions {
	d := StartOptions{TrainScale: 3, MaxRadius: 10, Bisections: 10}
	if o != nil {
		d = *o
		if d.TrainScale <= 0 {
			d.TrainScale = 3
		}
		if d.MaxRadius <= 0 {
			d.MaxRadius = 10
		}
		if d.Bisections <= 0 {
			d.Bisections = 10
		}
	}
	if d.TrainN <= 0 {
		if d.UseQuadratic {
			d.TrainN = 3 * (1 + dim + dim*(dim+1)/2)
		} else {
			d.TrainN = 10 * dim
		}
	}
	return d
}

// FindFailurePoint implements the model-based optimization of the paper's
// Algorithm 4 steps 1–2: fit a performance model from a few simulations,
// solve the norm-minimization problem (29) on it, then verify and refine
// the point against the real metric by walking the ray from the origin and
// bisecting the actual pass/fail boundary. The returned point is a
// simulation-verified failure point close to the most-likely failure
// point; the total simulation cost is metric-visible (pass a *mc.Counter).
func FindFailurePoint(metric mc.Metric, opts *StartOptions, rng *rand.Rand) ([]float64, error) {
	return FindFailurePointContext(context.Background(), metric, opts, rng)
}

// FindFailurePointContext is FindFailurePoint with cancellation: ctx is
// polled between training simulations (the search is sequential, so one
// simulation is the natural chunk). A cancel aborts with the context's
// error; an uncancelled search is bit-identical to FindFailurePoint.
func FindFailurePointContext(ctx context.Context, metric mc.Metric, opts *StartOptions, rng *rand.Rand) ([]float64, error) {
	dim := metric.Dim()
	o := opts.defaults(dim)

	xs := make([][]float64, o.TrainN)
	ys := make([]float64, o.TrainN)
	for i := range xs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x := make([]float64, dim)
		for j := range x {
			x[j] = o.TrainScale * rng.NormFloat64()
		}
		xs[i] = x
		ys[i] = metric.Value(x)
	}

	var (
		x0  []float64
		err error
	)
	if o.UseQuadratic {
		var q *Quadratic
		q, err = FitQuadratic(xs, ys)
		if err == nil {
			x0, err = MinNormZeroSQP(q, dim, 50)
		}
	} else {
		var l *Linear
		l, err = FitLinear(xs, ys)
		if err == nil {
			x0, err = l.MinNormZero()
		}
	}
	if err != nil {
		return nil, err
	}
	if !finiteVec(x0) {
		return nil, fmt.Errorf("model: response-surface solution is not finite (training data may contain non-finite margins)")
	}
	return RefineAlongRay(metric, x0, o.MaxRadius, o.Bisections)
}

// RefineAlongRay walks the ray from the origin through x0, locating the
// true pass/fail boundary by expansion and bisection, and returns a point
// just inside the failure region. It falls back to training-sample
// directions only through the caller; if the ray never fails within
// maxRadius it returns ErrNoFailureFound.
func RefineAlongRay(metric mc.Metric, x0 []float64, maxRadius float64, bisections int) ([]float64, error) {
	dim := metric.Dim()
	r0 := linalg.Norm2(x0)
	//reprolint:ignore floateq Norm2 is exactly 0 only for the all-zero start point; degenerate-solution guard
	if r0 == 0 || math.IsNaN(r0) || math.IsInf(r0, 0) {
		return nil, fmt.Errorf("%w (degenerate model solution, ‖x0‖ = %v)", ErrNoFailureFound, r0)
	}
	dir := linalg.Scale(linalg.CopyVec(x0), 1/r0)
	at := func(t float64) []float64 {
		p := linalg.CopyVec(dir)
		return linalg.Scale(p, t)
	}
	fails := func(t float64) bool { return metric.Value(at(t)) < 0 }

	// Find a failing radius at or beyond the model's estimate.
	tFail := math.NaN()
	for t := math.Min(r0, maxRadius); t <= maxRadius; t *= 1.25 {
		if fails(t) {
			tFail = t
			break
		}
	}
	if math.IsNaN(tFail) {
		if !fails(maxRadius) {
			return nil, ErrNoFailureFound
		}
		tFail = maxRadius
	}
	// Walk inward: find the innermost failing radius via bisection
	// between a passing inner radius and the failing one.
	tPass := 0.0
	for i := 0; i < bisections; i++ {
		mid := 0.5 * (tPass + tFail)
		if fails(mid) {
			tFail = mid
		} else {
			tPass = mid
		}
	}
	if dim == 0 {
		return nil, ErrNoFailureFound
	}
	return at(tFail), nil
}
