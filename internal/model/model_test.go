package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/surrogate"
)

func TestFitLinearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := &Linear{C0: 2.5, W: []float64{1, -2, 0.5}}
	xs := make([][]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		xs[i] = x
		ys[i] = truth.Eval(x)
	}
	got, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.C0-truth.C0) > 1e-6 {
		t.Fatalf("C0: %v", got.C0)
	}
	for j := range truth.W {
		if math.Abs(got.W[j]-truth.W[j]) > 1e-6 {
			t.Fatalf("W[%d]: %v", j, got.W[j])
		}
	}
}

func TestFitLinearBadInput(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := FitLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestLinearMinNormZero(t *testing.T) {
	l := &Linear{C0: -4, W: []float64{3, 4}}
	x, err := l.MinNormZero()
	if err != nil {
		t.Fatal(err)
	}
	// Boundary at 3x+4y=4; min-norm point at distance 4/5 along (3,4)/5.
	if math.Abs(l.Eval(x)) > 1e-12 {
		t.Fatalf("not on boundary: %v", l.Eval(x))
	}
	if math.Abs(linalg.Norm2(x)-0.8) > 1e-12 {
		t.Fatalf("norm: %v", linalg.Norm2(x))
	}
	if _, err := (&Linear{C0: 1, W: []float64{0, 0}}).MinNormZero(); err == nil {
		t.Fatal("expected zero-gradient error")
	}
}

func TestFitQuadraticExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := linalg.NewMatrixFrom([][]float64{{1, 0.5}, {0.5, -2}})
	truth := &Quadratic{C0: 1, W: []float64{-1, 2}, A: a}
	n := 60
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		xs[i] = x
		ys[i] = truth.Eval(x)
	}
	got, err := FitQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if math.Abs(got.Eval(x)-truth.Eval(x)) > 1e-5 {
			t.Fatalf("prediction mismatch at %v", x)
		}
	}
	if got.A.MaxAbsDiff(a) > 1e-5 {
		t.Fatalf("A mismatch: %+v", got.A)
	}
}

func TestFitQuadraticNeedsEnoughPoints(t *testing.T) {
	xs := [][]float64{{1, 2}, {3, 4}}
	ys := []float64{1, 2}
	if _, err := FitQuadratic(xs, ys); err == nil {
		t.Fatal("expected too-few-points error")
	}
}

func TestQuadraticGradFiniteDifference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		a := linalg.NewMatrix(m, m)
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		w := make([]float64, m)
		x := make([]float64, m)
		for i := range w {
			w[i] = rng.NormFloat64()
			x[i] = rng.NormFloat64()
		}
		q := &Quadratic{C0: rng.NormFloat64(), W: w, A: a}
		g := q.Grad(x)
		const h = 1e-6
		for j := 0; j < m; j++ {
			xp := linalg.CopyVec(x)
			xm := linalg.CopyVec(x)
			xp[j] += h
			xm[j] -= h
			num := (q.Eval(xp) - q.Eval(xm)) / (2 * h)
			if math.Abs(num-g[j]) > 1e-5*(1+math.Abs(num)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMinNormZeroSQPSphere(t *testing.T) {
	// q(x) = ‖x‖² − 9: boundary is the radius-3 sphere; every point on it
	// is min-norm.
	a := linalg.Identity(3)
	q := &Quadratic{C0: -9, W: []float64{0, 0, 0}, A: a}
	x, err := MinNormZeroSQP(q, 3, 80)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linalg.Norm2(x)-3) > 1e-6 {
		t.Fatalf("sphere min-norm radius: %v", linalg.Norm2(x))
	}
}

func TestMinNormZeroSQPShiftedPlane(t *testing.T) {
	// Quadratic that is actually affine: must reproduce the linear
	// closed form.
	q := &Quadratic{C0: -4, W: []float64{3, 4}, A: linalg.NewMatrix(2, 2)}
	x, err := MinNormZeroSQP(q, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linalg.Norm2(x)-0.8) > 1e-9 {
		t.Fatalf("min-norm: %v (want 0.8)", linalg.Norm2(x))
	}
}

func TestFindFailurePointLinearMetric(t *testing.T) {
	// Failure when 2x₁ + x₂ > 5: min-norm failure point at distance
	// 5/√5 = √5 along (2,1)/√5.
	lin := &surrogate.Linear{W: []float64{2, 1}, B: 5}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(3))
	x, err := FindFailurePoint(counter, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Value(x) >= 0 {
		t.Fatalf("returned point does not fail: %v", x)
	}
	if math.Abs(linalg.Norm2(x)-math.Sqrt(5)) > 0.1 {
		t.Fatalf("distance %v, want √5", linalg.Norm2(x))
	}
	if counter.Count() == 0 {
		t.Fatal("simulations were not counted")
	}
}

func TestFindFailurePointQuadraticOnShell(t *testing.T) {
	sh := &surrogate.Shell{M: 3, R: 4}
	counter := mc.NewCounter(sh)
	rng := rand.New(rand.NewSource(4))
	x, err := FindFailurePoint(counter, &StartOptions{UseQuadratic: true, TrainScale: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Value(x) >= 0 {
		t.Fatalf("point does not fail: %v", x)
	}
	if math.Abs(linalg.Norm2(x)-4) > 0.2 {
		t.Fatalf("shell failure point radius %v, want ≈4", linalg.Norm2(x))
	}
}

func TestFindFailurePointNoFailure(t *testing.T) {
	// A metric that never fails within the search radius.
	never := mc.MetricFunc{M: 2, F: func(x []float64) float64 { return 1 }}
	rng := rand.New(rand.NewSource(5))
	if _, err := FindFailurePoint(mc.NewCounter(never), &StartOptions{MaxRadius: 6}, rng); err == nil {
		t.Fatal("expected failure-not-found error")
	}
}

func TestRefineAlongRayBisects(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 3}
	// Start from a deliberately bad guess in the right direction.
	x, err := RefineAlongRay(lin, []float64{8, 0}, 12, 20)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Value(x) >= 0 {
		t.Fatal("refined point passes")
	}
	if math.Abs(x[0]-3) > 0.01 {
		t.Fatalf("boundary at %v, want 3", x[0])
	}
	if _, err := RefineAlongRay(lin, []float64{0, 0}, 12, 10); err == nil {
		t.Fatal("expected error for zero start")
	}
}
