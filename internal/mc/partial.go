package mc

// Partial-statistics export and fold: the seam distributed serving is
// built on.
//
// Every terminal sampling stage in this library evaluates sample i with
// a generator seeded from (seed, i) — never from the worker id or the
// chunk it happened to ride in — so the outcome of each sample is a pure
// function of (seed, absolute index, stage parameters). A Partial
// captures the outcomes of one contiguous index range reduced to exactly
// what the single-node fold consumes: which indices failed and, for
// importance sampling, their weights. A Partial computed on any machine,
// with any local worker count, therefore carries the same bits the
// single-node loop would have produced for those indices.
//
// The Fold* functions reassemble a full run from partials by replaying
// the single-node reduction — Welford moment pushes (including the zero
// weight of every non-failure), top-weight tracking and trace snapshots
// — in strict sample-index order. Floating-point addition is not
// associative, so the replay is the correctness argument: the folded
// Result is bit-identical to the corresponding single-node estimator,
// not merely statistically equivalent.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/stat"
)

// Fold and range errors; test with errors.Is.
var (
	// ErrBadRange is reported for a malformed or out-of-bounds sample
	// range.
	ErrBadRange = errors.New("mc: bad sample range")
	// ErrBadCover is reported when a set of partials does not tile the
	// stage's index space exactly (gap, overlap or out-of-order failure
	// indices) — folding anything else would silently change the bits.
	ErrBadCover = errors.New("mc: partials do not cover the stage")
)

// Range is a half-open interval [Lo, Hi) of absolute sample indices.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Count returns the number of samples in the range.
func (r Range) Count() int { return r.Hi - r.Lo }

// checkRanges validates that every range is well-formed and inside
// [0, n).
func checkRanges(n int, ranges []Range) error {
	if len(ranges) == 0 {
		return fmt.Errorf("%w: no ranges", ErrBadRange)
	}
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi <= r.Lo || r.Hi > n {
			return fmt.Errorf("%w: [%d,%d) outside [0,%d)", ErrBadRange, r.Lo, r.Hi, n)
		}
	}
	return nil
}

// Partial is the outcome of evaluating one contiguous range
// [Start, Start+Count) of a terminal sampling stage. FailIdx lists the
// absolute indices of failing samples in ascending order; W carries the
// matching importance weights (importance-sampling stages only — weights
// can be exactly zero even for a failure when the log-weight underflows,
// so failure membership and weight are recorded independently). Sims is
// the number of transistor-level simulations the range cost: Count for
// stages that simulate every sample, the unblocked-candidate count for
// statistical blockade.
type Partial struct {
	Start   int       `json:"start"`
	Count   int       `json:"count"`
	Sims    int64     `json:"sims"`
	FailIdx []int     `json:"fail_idx,omitempty"`
	W       []float64 `json:"w,omitempty"`
}

// checkCover sorts the partials by Start and validates that they tile
// [0, n) exactly with well-formed failure indices. withWeights also
// requires one weight per failure.
func checkCover(n int, parts []Partial, withWeights bool) ([]Partial, error) {
	sorted := make([]Partial, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	next := 0
	for _, p := range sorted {
		if p.Start != next || p.Count <= 0 {
			return nil, fmt.Errorf("%w: want [%d,…), got [%d,%d+%d)", ErrBadCover, next, p.Start, p.Start, p.Count)
		}
		if withWeights && len(p.W) != len(p.FailIdx) {
			return nil, fmt.Errorf("%w: %d failure indices with %d weights at start %d", ErrBadCover, len(p.FailIdx), len(p.W), p.Start)
		}
		last := p.Start - 1
		for _, i := range p.FailIdx {
			if i <= last || i >= p.Start+p.Count {
				return nil, fmt.Errorf("%w: failure index %d outside ascending [%d,%d)", ErrBadCover, i, p.Start, p.Start+p.Count)
			}
			last = i
		}
		next += p.Count
	}
	if next != n {
		return nil, fmt.Errorf("%w: %d samples covered, stage has %d", ErrBadCover, next, n)
	}
	return sorted, nil
}

// ImportanceSamplePartial evaluates only the given index ranges of the
// importance-sampling stage ImportanceSampleContext would run over
// [0, n), returning one Partial per range. It consumes exactly one seed
// draw from rng — the same single draw the full stage makes — so a
// caller that replays the preceding pipeline (chain, fits, exploration)
// and then calls this sees the identical per-sample stream. ctx is
// polled once per ChunkSize dispatch.
func ImportanceSamplePartial(ctx context.Context, ev *Evaluator, g Distortion, n int, rng *rand.Rand, ranges []Range) ([]Partial, error) {
	if ev == nil {
		return nil, errors.New("mc: nil evaluator")
	}
	if n <= 0 {
		return nil, ErrBadSampleCount
	}
	if g.Dim() != ev.Dim() {
		return nil, errors.New("mc: distortion dimensionality does not match metric")
	}
	if err := checkRanges(n, ranges); err != nil {
		return nil, err
	}
	draw, post := isJob(g)
	seed := rng.Int63()
	out := make([]Partial, 0, len(ranges))
	for _, r := range ranges {
		p := Partial{Start: r.Lo, Count: r.Count(), Sims: int64(r.Count())}
		for start := r.Lo; start < r.Hi; start += ChunkSize {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			count := min(ChunkSize, r.Hi-start)
			for j, s := range MapBatch(ev, seed, start, count, draw, post) {
				if s.fail {
					p.FailIdx = append(p.FailIdx, start+j)
					p.W = append(p.W, s.w)
				}
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// FoldImportanceSample folds importance-sampling partials covering
// [0, n) back into the Result ImportanceSampleContext would have
// produced, by replaying the index-ordered reduction: every sample
// pushes its weight (zero for non-failures) through the same Welford
// accumulator, top-weight tracker and trace recorder.
func FoldImportanceSample(n int, parts []Partial, traceEvery TraceEvery) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	sorted, err := checkCover(n, parts, true)
	if err != nil {
		return Result{}, err
	}
	var run stat.Running
	failures := 0
	var tw topWeights
	var trace []TracePoint
	batch := make([]isWeight, 0, ChunkSize)
	for _, p := range sorted {
		k := 0
		for i := p.Start; i < p.Start+p.Count; i++ {
			var s isWeight
			if k < len(p.FailIdx) && p.FailIdx[k] == i {
				s = isWeight{w: p.W[k], fail: true}
				k++
			}
			batch = append(batch, s)
			if len(batch) == ChunkSize {
				trace = pushWeights(&run, batch, &failures, &tw, traceEvery, trace)
				batch = batch[:0]
			}
		}
	}
	trace = pushWeights(&run, batch, &failures, &tw, traceEvery, trace)
	res := resultFrom(&run, failures, trace)
	res.MaxWeight, res.TopWeights = tw.max(), tw.w
	return res, nil
}

// ParallelMCPartial evaluates only the given index ranges of the
// brute-force stream ParallelMCContext runs over [0, n): the same
// standard-Normal draw per (seed, index), failure recorded when the
// margin is negative. rng is not consumed — ParallelMC seeds the stream
// from the run seed directly. ctx is polled once per dispatched chunk.
func ParallelMCPartial(ctx context.Context, ev *Evaluator, n int, seed int64, ranges []Range) ([]Partial, error) {
	if ev == nil {
		return nil, errors.New("mc: nil evaluator")
	}
	if n <= 0 {
		return nil, ErrBadSampleCount
	}
	if err := checkRanges(n, ranges); err != nil {
		return nil, err
	}
	dim := ev.Dim()
	draw := func(rng *rand.Rand, _ int) []float64 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		return x
	}
	post := func(_ int, _ []float64, v float64) bool { return v < 0 }
	out := make([]Partial, 0, len(ranges))
	for _, r := range ranges {
		p := Partial{Start: r.Lo, Count: r.Count(), Sims: int64(r.Count())}
		for start := r.Lo; start < r.Hi; start += mcChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			count := min(mcChunk, r.Hi-start)
			for j, fail := range MapBatch(ev, seed, start, count, draw, post) {
				if fail {
					p.FailIdx = append(p.FailIdx, start+j)
				}
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// FoldParallelMC folds brute-force partials covering [0, n) into the
// Result ParallelMCContext would have produced. The Bernoulli tally is
// pure integer counting, so only the final mean/stderr arithmetic — an
// exact replica of the single-node formula — touches floats.
func FoldParallelMC(n int, parts []Partial) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	sorted, err := checkCover(n, parts, false)
	if err != nil {
		return Result{}, err
	}
	failures := 0
	for _, p := range sorted {
		failures += len(p.FailIdx)
	}
	p := float64(failures) / float64(n)
	se := 0.0
	if n > 1 {
		se = sqrt(p * (1 - p) / float64(n))
	}
	rel := math.Inf(1)
	if p > 0 {
		rel = stat.Z99 * se / p
	}
	return Result{Pf: p, StdErr: se, RelErr99: rel, N: n, Failures: failures, WeightESS: float64(failures)}, nil
}

// FoldBernoulli folds 0/1 indicator partials covering [0, n) through a
// Welford accumulator in index order — the statistical-blockade tally,
// which (unlike ParallelMC's closed-form Bernoulli) accumulates its
// moments incrementally and is therefore order-dependent.
func FoldBernoulli(n int, parts []Partial) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	sorted, err := checkCover(n, parts, false)
	if err != nil {
		return Result{}, err
	}
	var tally stat.Running
	failures := 0
	for _, p := range sorted {
		k := 0
		for i := p.Start; i < p.Start+p.Count; i++ {
			ind := 0.0
			if k < len(p.FailIdx) && p.FailIdx[k] == i {
				ind = 1
				failures++
				k++
			}
			tally.Push(ind)
		}
	}
	return Result{
		Pf: tally.Mean(), StdErr: tally.StdErr(), RelErr99: tally.RelErr99(),
		N: tally.N(), Failures: failures,
	}, nil
}
