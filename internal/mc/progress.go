package mc

import (
	"time"

	"repro/internal/stat"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// stageProgress is the throughput estimator behind the live
// observability plane: it publishes one "progress" snapshot per
// dispatched evaluation chunk with the measured sims/sec and the ETA
// derived from it, alongside the running estimate. The same numbers
// back the job service's status JSON (eta_seconds, sims_per_sec
// gauges), the SSE streams and the CLI -stats footer, so every surface
// reports one consistent estimate.
//
// A nil *stageProgress (telemetry disabled) is fully inert, and an
// enabled one only reads the wall clock and the accumulated tallies —
// it never touches the random stream, so estimates are bit-identical
// with progress reporting on or off.
type stageProgress struct {
	reg   *telemetry.Registry
	stage string
	total int
	start time.Time

	chunks int

	// Legacy estimator gauges ("mc" scope), kept for /metrics scrapers.
	gN, gPf, gRel *telemetry.Gauge
	// Shared throughput gauges ("progress" scope), read by the job
	// snapshot API and the -stats footer.
	gProgN, gProgTotal, gChunks, gRate, gETA *telemetry.Gauge
}

// newStageProgress starts the throughput clock for one estimation
// stage. total is the stage's sample budget (the cap for until-target
// runs — the ETA is then the worst case, shrinking as the run
// converges). Returns nil — fully inert — when reg is nil.
func newStageProgress(reg *telemetry.Registry, stage string, total int) *stageProgress {
	if reg == nil {
		return nil
	}
	mcScope := reg.Scope(wire.ScopeMC)
	prog := reg.Scope(wire.ScopeProgress)
	p := &stageProgress{
		reg:   reg,
		stage: stage,
		total: total,
		start: time.Now(),

		gN:   mcScope.Gauge("stage2_n"),
		gPf:  mcScope.Gauge("stage2_pf"),
		gRel: mcScope.Gauge("stage2_relerr99"),

		gProgN:     prog.Gauge("n"),
		gProgTotal: prog.Gauge("total"),
		gChunks:    prog.Gauge("chunks_done"),
		gRate:      prog.Gauge("sims_per_sec"),
		gETA:       prog.Gauge("eta_seconds"),
	}
	p.gProgTotal.Set(float64(total))
	return p
}

// publish records one chunk boundary: refresh the gauges and emit the
// "progress" event. n is the samples consumed so far, pf/relerr the
// running estimate, and maxWFrac the share of the estimate carried by
// the largest single importance weight (0 when not applicable). The
// ETA is always finite: remaining samples over measured throughput,
// zero until the first chunk lands or once the budget is consumed.
func (p *stageProgress) publish(n, failures int, pf, relerr, maxWFrac float64) {
	if p == nil {
		return
	}
	p.chunks++
	elapsed := time.Since(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(n) / elapsed
	}
	eta := 0.0
	if rate > 0 && p.total > n {
		eta = float64(p.total-n) / rate
	}

	p.gN.Set(float64(n))
	p.gPf.Set(pf)
	p.gRel.Set(relerr)
	p.gProgN.Set(float64(n))
	p.gChunks.Set(float64(p.chunks))
	p.gRate.Set(rate)
	p.gETA.Set(eta)

	p.reg.Emit(wire.EvProgress, map[string]any{
		"stage": p.stage, "chunks": p.chunks, "n": n, "total": p.total,
		"failures": failures, "pf": pf, "relerr99": relerr,
		"max_weight_frac": maxWFrac,
		"sims_per_sec":    rate, "eta_seconds": eta,
	})
}

// publishRun is publish fed from a Running weight accumulator plus the
// top-weight tracker — the importance-sampling stage shape.
func (p *stageProgress) publishRun(run *stat.Running, failures int, tw *topWeights) {
	if p == nil {
		return
	}
	maxWFrac := 0.0
	if wsum := run.Mean() * float64(run.N()); wsum > 0 && tw != nil {
		maxWFrac = tw.max() / wsum
	}
	p.publish(run.N(), failures, run.Mean(), run.RelErr99(), maxWFrac)
}

// done zeroes the ETA (the stage finished — nothing remains) and emits
// the closing "estimator.done" event.
func (p *stageProgress) done(res *Result) {
	if p == nil {
		return
	}
	p.gETA.Set(0)
	p.reg.Emit(wire.EvEstimatorDone, map[string]any{
		"stage": p.stage, "n": res.N, "pf": res.Pf, "relerr99": res.RelErr99,
		"failures": res.Failures, "weight_ess": res.WeightESS,
	})
}
