package mc

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/stat"
)

func TestParallelMCMatchesAnalytic(t *testing.T) {
	m := MetricFunc{M: 2, F: func(x []float64) float64 { return x[0] + x[1] + 1 }}
	res, err := ParallelMC(m, 400000, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Pf = P(x₀+x₁ < −1) = Φ(−1/√2) ≈ 0.2398.
	want := stat.NormCDF(-1 / math.Sqrt(2))
	if math.Abs(res.Pf-want) > 0.004 {
		t.Fatalf("parallel Pf %v, want %v", res.Pf, want)
	}
	if res.N != 400000 {
		t.Fatalf("N = %d", res.N)
	}
}

func TestParallelMCBadSampleCount(t *testing.T) {
	m := MetricFunc{M: 2, F: func(x []float64) float64 { return 1 }}
	if _, err := ParallelMC(m, 0, 1, 4); err != ErrBadSampleCount {
		t.Fatal("want ErrBadSampleCount for n = 0")
	}
	if _, err := ParallelMC(m, -5, 1, 4); err != ErrBadSampleCount {
		t.Fatal("want ErrBadSampleCount for n < 0")
	}
}

// The estimate must be bit-identical for every worker count, including
// counts that do not divide n and counts larger than n.
func TestParallelMCWorkerCountInvariant(t *testing.T) {
	m := MetricFunc{M: 3, F: func(x []float64) float64 { return x[0] + 0.5*x[1] - 0.2*x[2] + 1.5 }}
	const n = 1003 // prime-ish: n % workers != 0 for every tested pool
	ref, err := ParallelMC(m, n, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.N != n {
		t.Fatalf("N = %d, want %d", ref.N, n)
	}
	for _, workers := range []int{2, 3, 7, 16, runtime.GOMAXPROCS(0)} {
		res, err := ParallelMC(m, n, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pf != ref.Pf || res.N != ref.N || res.Failures != ref.Failures {
			t.Fatalf("workers=%d diverged: got (Pf=%v N=%d F=%d), want (Pf=%v N=%d F=%d)",
				workers, res.Pf, res.N, res.Failures, ref.Pf, ref.N, ref.Failures)
		}
		if res.StdErr != ref.StdErr || res.RelErr99 != ref.RelErr99 {
			t.Fatalf("workers=%d error bars diverged", workers)
		}
	}
}

// More workers than samples must clamp the pool, not break the tally.
func TestParallelMCWorkersExceedSamples(t *testing.T) {
	m := MetricFunc{M: 1, F: func(x []float64) float64 { return 1 }}
	res, err := ParallelMC(m, 3, 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 3 || res.Failures != 0 {
		t.Fatalf("edge partition: %+v", res)
	}
	if !math.IsInf(res.RelErr99, 1) {
		t.Fatal("zero-failure relerr should be +Inf")
	}
}

// ParallelMC must agree with the serial PlainMC estimator on an analytic
// linear metric (statistically — the engines use different streams).
func TestParallelMCAgreesWithSerial(t *testing.T) {
	m := MetricFunc{M: 1, F: func(x []float64) float64 { return x[0] + 1 }}
	const n = 200000
	par, err := ParallelMC(m, n, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := stat.NormCDF(-1)
	if math.Abs(par.Pf-want) > 0.003 {
		t.Fatalf("parallel Pf %v, want %v", par.Pf, want)
	}
	if par.Failures != int(math.Round(par.Pf*float64(par.N))) {
		t.Fatalf("failure count inconsistent: %d vs %v", par.Failures, par.Pf*float64(par.N))
	}
	// Exact simulation-count accounting survives the pool.
	c := NewCounter(m)
	if _, err := ParallelMC(c, n, 11, 4); err != nil {
		t.Fatal(err)
	}
	if c.Count() != n {
		t.Fatalf("counter saw %d sims, want %d", c.Count(), n)
	}
}
