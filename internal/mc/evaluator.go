package mc

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Evaluator is the shared batch-evaluation engine: a worker pool over
// Metric.Value with deterministic per-sample RNG streams. Every sample
// index i gets its own generator seeded from (seed, i) — never from the
// worker id — so an estimate computed through the Evaluator is
// bit-identical for every worker count, including 1. All estimators in
// the library run their simulation batches through this type; the worker
// count is the single knob that maps simulator solves onto cores.
//
// Thread-safety contract: the wrapped Metric (and any Distortion sampled
// inside a batch) must be safe for concurrent Value/Sample/LogPDF calls.
// The library's metrics honor this by construction — sram.Metric and
// sram.TranMetric check reusable simulation engines out of a free list so
// concurrent callers never share solver state, and Counter counts
// atomically — but a custom Metric that caches solver state must keep
// that state per-call (or per-goroutine).
//
// When the metric also implements BatchMetric, sample dispatch switches
// from one-sample-at-a-time to groups of KernelBatch handed to
// ValueBatch, which amortizes circuit templates and warm-start anchors
// across the group. Per-sample RNG seeding and index-ordered results are
// identical in both modes, so the estimate never depends on which path
// ran.
type Evaluator struct {
	metric  Metric
	workers int
	tele    *evalTelemetry
}

// NewEvaluator wraps metric with a pool of the given size; workers ≤ 0
// selects GOMAXPROCS.
func NewEvaluator(metric Metric, workers int) *Evaluator {
	return &Evaluator{metric: metric, workers: workers}
}

// evalTelemetry holds the engine's metric handles in the "mc" scope:
// samples_total / chunks_total counters and the chunk-latency histogram,
// plus the running estimator gauges the estimators update between
// chunks. Handles are resolved once at WithTelemetry, so the dispatch
// path pays one nil check when disabled and plain atomic ops when
// enabled.
type evalTelemetry struct {
	reg          *telemetry.Registry
	samples      *telemetry.Counter
	chunks       *telemetry.Counter
	batches      *telemetry.Counter
	chunkSeconds *telemetry.Histogram
}

var chunkSecondsBuckets = telemetry.ExpBuckets(1e-6, 10, 8) // 1µs .. 10s

// WithTelemetry attaches a telemetry registry to the evaluator and
// returns it (nil-safe on both sides, so callers can chain it
// unconditionally). Telemetry only observes: throughput counters, the
// chunk-latency histogram and progress events never touch the
// samples, so estimates are bit-identical with telemetry on or off.
func (e *Evaluator) WithTelemetry(reg *telemetry.Registry) *Evaluator {
	if e == nil || reg == nil {
		return e
	}
	s := reg.Scope(wire.ScopeMC)
	e.tele = &evalTelemetry{
		reg:          reg,
		samples:      s.Counter("samples_total"),
		chunks:       s.Counter("chunks_total"),
		batches:      s.Counter("kernel_batches_total"),
		chunkSeconds: s.Histogram("chunk_seconds", chunkSecondsBuckets),
	}
	s.Gauge("workers").Set(float64(e.Workers()))
	return e
}

// Telemetry returns the attached registry (nil when disabled).
func (e *Evaluator) Telemetry() *telemetry.Registry {
	if e == nil || e.tele == nil {
		return nil
	}
	return e.tele.reg
}

// Metric returns the wrapped metric.
func (e *Evaluator) Metric() Metric { return e.metric }

// Dim returns the wrapped metric's dimensionality.
func (e *Evaluator) Dim() int { return e.metric.Dim() }

// Workers resolves the configured pool size (0 → GOMAXPROCS).
func (e *Evaluator) Workers() int {
	if e == nil || e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// ChunkSize is the number of samples dispatched between convergence
// checks in the until-target estimators. It is a fixed constant — not a
// function of the worker count — because the early-stop decision points
// must land on the same sample indices for every pool size to keep
// estimates worker-count-independent.
const ChunkSize = 256

// KernelBatch is the group size handed to BatchMetric.ValueBatch: large
// enough to amortize engine checkout across samples, small enough that a
// ChunkSize dispatch still splits into ChunkSize/KernelBatch units of
// parallel work. Like ChunkSize it is a fixed constant — group
// boundaries land on the same sample indices for every worker count.
const KernelBatch = 32

// sampleSeed derives the RNG seed of sample i from the batch seed by a
// splitmix64-style finalizer. Distinct (seed, i) pairs land on
// well-separated streams; the same pair always lands on the same stream,
// which is the root of the engine's determinism guarantee.
func sampleSeed(seed int64, i int) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(int64(i)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sampleSource is a splitmix64 rand.Source64. Unlike the stdlib source
// (whose Seed walks a 607-word table), reseeding is a single store, so a
// worker can reuse one source — and one rand.Rand — across every sample
// it evaluates.
type sampleSource struct{ state uint64 }

func (s *sampleSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *sampleSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *sampleSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Map evaluates fn for every sample index in [start, start+n) across the
// pool and returns the results in index order. Each call receives a
// generator deterministically seeded from (seed, index), so the output —
// including every random draw fn makes — is identical for every worker
// count. fn must be safe for concurrent invocation.
func Map[T any](e *Evaluator, seed int64, start, n int, fn func(rng *rand.Rand, i int) T) []T {
	if n <= 0 {
		return nil
	}
	if e != nil && e.tele != nil {
		sw := e.tele.chunkSeconds.Start()
		defer func() {
			sw.Stop()
			e.tele.samples.Add(int64(n))
			e.tele.chunks.Inc()
		}()
	}
	out := make([]T, n)
	workers := e.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		src := &sampleSource{}
		rng := rand.New(src)
		for k := 0; k < n; k++ {
			src.state = sampleSeed(seed, start+k)
			out[k] = fn(rng, start+k)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			src := &sampleSource{}
			rng := rand.New(src)
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				src.state = sampleSeed(seed, start+k)
				out[k] = fn(rng, start+k)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapBatch draws and evaluates samples [start, start+n): for each index
// i, x = draw(rng_i, i) with rng_i seeded from (seed, i), v = the
// metric's margin at x, and the result is post(i, x, v). Results come
// back in index order.
//
// This is the dispatch seam of the batched kernel: when the metric
// implements BatchMetric, samples are processed in groups of KernelBatch
// — a worker reseeds and draws every x in its group, hands the whole
// group to ValueBatch, then post-processes. Otherwise each sample runs
// through Metric.Value individually on the Map pool. Per-sample RNG
// streams, group boundaries and the output order are all independent of
// the worker count and of which path ran, so both modes produce the same
// bits. draw must hand over the returned slice (not reuse it); post must
// be pure and safe for concurrent calls.
func MapBatch[T any](e *Evaluator, seed int64, start, n int, draw func(rng *rand.Rand, i int) []float64, post func(i int, x []float64, v float64) T) []T {
	bm, batched := e.metric.(BatchMetric)
	if !batched {
		m := e.metric
		return Map(e, seed, start, n, func(rng *rand.Rand, i int) T {
			x := draw(rng, i)
			return post(i, x, m.Value(x))
		})
	}
	if n <= 0 {
		return nil
	}
	if e.tele != nil {
		sw := e.tele.chunkSeconds.Start()
		defer func() {
			sw.Stop()
			e.tele.samples.Add(int64(n))
			e.tele.chunks.Inc()
		}()
	}
	out := make([]T, n)
	groups := (n + KernelBatch - 1) / KernelBatch
	workers := e.Workers()
	if workers > groups {
		workers = groups
	}
	// runGroup processes group g on one worker: reseed-and-draw each
	// sample (the exact per-index streams of the scalar path), one
	// ValueBatch over the group, then the per-sample reduction.
	runGroup := func(src *sampleSource, rng *rand.Rand, xs [][]float64, vals []float64, g int) {
		lo := g * KernelBatch
		hi := lo + KernelBatch
		if hi > n {
			hi = n
		}
		xs = xs[:0]
		for k := lo; k < hi; k++ {
			src.state = sampleSeed(seed, start+k)
			xs = append(xs, draw(rng, start+k))
		}
		vals = vals[:hi-lo]
		bm.ValueBatch(xs, vals)
		if e.tele != nil {
			e.tele.batches.Inc()
		}
		for j, x := range xs {
			out[lo+j] = post(start+lo+j, x, vals[j])
		}
	}
	if workers == 1 {
		src := &sampleSource{}
		rng := rand.New(src)
		xs := make([][]float64, 0, KernelBatch)
		vals := make([]float64, KernelBatch)
		for g := 0; g < groups; g++ {
			runGroup(src, rng, xs, vals, g)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			src := &sampleSource{}
			rng := rand.New(src)
			xs := make([][]float64, 0, KernelBatch)
			vals := make([]float64, KernelBatch)
			for {
				g := int(next.Add(1)) - 1
				if g >= groups {
					return
				}
				runGroup(src, rng, xs, vals, g)
			}
		}()
	}
	wg.Wait()
	return out
}

// Eval is one evaluated sample: the variation point and its margin.
type Eval struct {
	X     []float64
	Value float64
}

// Batch draws and evaluates samples [start, start+n): x_i = draw(rng_i)
// and Value_i = the metric's margin at x_i, in index order, deterministic
// in the worker count. Batch-capable metrics are dispatched in KernelBatch
// groups (see MapBatch). draw must not retain or reuse the returned slice.
func (e *Evaluator) Batch(seed int64, start, n int, draw func(rng *rand.Rand, i int) []float64) []Eval {
	return MapBatch(e, seed, start, n, draw, func(_ int, x []float64, v float64) Eval {
		return Eval{X: x, Value: v}
	})
}
