package mc

import (
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/stat"
	"repro/internal/telemetry"
)

// mcChunk bounds the per-dispatch memory of the brute-force engine: the
// golden reference runs millions of samples, so indicators are tallied
// chunk by chunk instead of being held all at once.
const mcChunk = 1 << 16

// ParallelMC runs brute-force Monte Carlo on the batch-evaluation engine
// (workers 0 = GOMAXPROCS). It powers the Table II golden reference (the
// paper's 8.7-million-sample run), which would otherwise dominate
// wall-clock time. The metric must be safe for concurrent use; each
// sample gets an independent generator seeded from (seed, index), so the
// tally is bit-identical for every worker count.
func ParallelMC(metric Metric, n int, seed int64, workers int) (Result, error) {
	return ParallelMCContext(context.Background(), metric, n, seed, workers, nil)
}

// ParallelMCTelemetry is ParallelMC with a telemetry registry attached
// to the evaluation pool: throughput counters, chunk latencies and
// running-tally progress events, with the tally itself untouched.
func ParallelMCTelemetry(metric Metric, n int, seed int64, workers int, reg *telemetry.Registry) (Result, error) {
	return ParallelMCContext(context.Background(), metric, n, seed, workers, reg)
}

// ParallelMCContext is the primary brute-force engine: ParallelMC with
// an optional telemetry registry and cancellation. ctx is polled once
// per dispatched chunk (64k samples), so a cancel aborts within one
// chunk while an uncancelled tally stays bit-identical for every worker
// count.
func ParallelMCContext(ctx context.Context, metric Metric, n int, seed int64, workers int, reg *telemetry.Registry) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	ev := NewEvaluator(metric, workers).WithTelemetry(reg)
	ctx, span := telemetry.StartSpan(ctx, reg, "stage2")
	defer span.End()
	span.SetAttr("n", n)
	span.SetAttr("workers", ev.Workers())
	chunkAgg := span.Agg("chunk")
	dim := metric.Dim()
	draw := func(rng *rand.Rand, _ int) []float64 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		return x
	}
	post := func(_ int, _ []float64, v float64) bool { return v < 0 }
	prog := newStageProgress(reg, "stage2", n)
	failures := 0
	done := 0
	for start := 0; start < n; start += mcChunk {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		count := min(mcChunk, n-start)
		t0 := time.Now()
		batch := MapBatch(ev, seed, start, count, draw, post)
		chunkAgg.Observe(time.Since(t0).Seconds())
		for _, fail := range batch {
			if fail {
				failures++
			}
		}
		done += count
		pf := float64(failures) / float64(done)
		relerr := math.Inf(1)
		if failures > 0 && done > 1 {
			relerr = stat.Z99 * sqrt(pf*(1-pf)/float64(done)) / pf
		}
		prog.publish(done, failures, pf, relerr, 0)
	}
	// Bernoulli tally: mean p, variance p(1−p)/n.
	p := float64(failures) / float64(n)
	se := 0.0
	if n > 1 {
		se = sqrt(p * (1 - p) / float64(n))
	}
	rel := math.Inf(1)
	if p > 0 {
		rel = stat.Z99 * se / p
	}
	res := Result{Pf: p, StdErr: se, RelErr99: rel, N: n, Failures: failures, WeightESS: float64(failures)}
	prog.done(&res)
	return res, nil
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
