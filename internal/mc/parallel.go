package mc

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/stat"
)

// ParallelMC runs brute-force Monte Carlo across workers goroutines
// (0 = GOMAXPROCS), merging the per-worker tallies. It powers the
// Table II golden reference (the paper's 8.7-million-sample run), which
// would otherwise dominate wall-clock time. The metric must be safe for
// concurrent use; each worker gets an independent deterministic stream
// seeded from seed.
func ParallelMC(metric Metric, n int, seed int64, workers int) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	type tally struct {
		n, failures int
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		count := n / workers
		if w < n%workers {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1000003))
			dim := metric.Dim()
			x := make([]float64, dim)
			failures := 0
			for i := 0; i < count; i++ {
				for j := range x {
					x[j] = rng.NormFloat64()
				}
				if metric.Value(x) < 0 {
					failures++
				}
			}
			tallies[w] = tally{n: count, failures: failures}
		}(w, count)
	}
	wg.Wait()
	total, failures := 0, 0
	for _, t := range tallies {
		total += t.n
		failures += t.failures
	}
	// Bernoulli tally: mean p, variance p(1−p)/n.
	p := float64(failures) / float64(total)
	se := 0.0
	if total > 1 {
		se = sqrt(p * (1 - p) / float64(total))
	}
	rel := math.Inf(1)
	if p > 0 {
		rel = stat.Z99 * se / p
	}
	return Result{Pf: p, StdErr: se, RelErr99: rel, N: total, Failures: failures}, nil
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
