package mc

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stat"
	"repro/internal/surrogate"
)

// workerCounts are the pool sizes every determinism test sweeps.
func workerCounts() []int { return []int{1, 2, 7, runtime.GOMAXPROCS(0)} }

// sameResult compares the fields the determinism guarantee covers.
func sameResult(a, b Result) bool {
	return a.Pf == b.Pf && a.StdErr == b.StdErr && a.RelErr99 == b.RelErr99 &&
		a.N == b.N && a.Failures == b.Failures && a.WeightESS == b.WeightESS
}

func TestImportanceSampleWorkerCountInvariant(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	g, err := stat.NewMVNormal([]float64{4, 0}, linalg.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	var ref Result
	for k, workers := range workerCounts() {
		rng := rand.New(rand.NewSource(21))
		res, err := ImportanceSample(NewEvaluator(lin, workers), g, 5000, rng, TraceEvery(500))
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			ref = res
			continue
		}
		if !sameResult(res, ref) {
			t.Fatalf("workers=%d diverged: got (Pf=%v N=%d F=%d), want (Pf=%v N=%d F=%d)",
				workers, res.Pf, res.N, res.Failures, ref.Pf, ref.N, ref.Failures)
		}
		if len(res.Trace) != len(ref.Trace) {
			t.Fatalf("workers=%d trace length diverged", workers)
		}
		for i := range res.Trace {
			if res.Trace[i] != ref.Trace[i] {
				t.Fatalf("workers=%d trace point %d diverged", workers, i)
			}
		}
	}
}

func TestImportanceSampleUntilWorkerCountInvariant(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	g, err := stat.NewMVNormal([]float64{4, 0}, linalg.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	var ref Result
	for k, workers := range workerCounts() {
		rng := rand.New(rand.NewSource(22))
		res, err := ImportanceSampleUntil(NewEvaluator(lin, workers), g, 0.05, 100, 1000000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.RelErr99 > 0.05 {
			t.Fatalf("workers=%d missed target: %v after %d", workers, res.RelErr99, res.N)
		}
		if k == 0 {
			ref = res
			continue
		}
		if !sameResult(res, ref) {
			t.Fatalf("workers=%d diverged: got (Pf=%v N=%d F=%d), want (Pf=%v N=%d F=%d)",
				workers, res.Pf, res.N, res.Failures, ref.Pf, ref.N, ref.Failures)
		}
	}
}

// The early-stop loop dispatches whole chunks, so N is always a chunk
// multiple (or maxN) and the simulation count matches N exactly — the
// cost accounting the paper's tables rely on.
func TestImportanceSampleUntilChunkAccounting(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	g, err := stat.NewMVNormal([]float64{4, 0}, linalg.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(lin)
	rng := rand.New(rand.NewSource(23))
	res, err := ImportanceSampleUntil(NewEvaluator(c, 4), g, 0.05, 100, 1000000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.N) != c.Count() {
		t.Fatalf("N = %d but counter saw %d sims", res.N, c.Count())
	}
	if res.N%ChunkSize != 0 {
		t.Fatalf("N = %d is not a multiple of ChunkSize %d", res.N, ChunkSize)
	}
}
