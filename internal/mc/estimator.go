package mc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/stat"
	"repro/internal/telemetry"
)

// ErrBadSampleCount is returned when an estimator is asked for a
// non-positive number of samples.
var ErrBadSampleCount = errors.New("mc: sample count must be positive")

// TracePoint records an estimator's state after n samples; sequences of
// TracePoints regenerate the paper's convergence figures (Figs. 6, 7, 12).
type TracePoint struct {
	// N is the number of samples (transistor-level simulations in this
	// stage) consumed so far.
	N int
	// Estimate is the running failure-probability estimate.
	Estimate float64
	// RelErr99 is the paper's accuracy metric: the half-width of the 99%
	// confidence interval divided by the estimate (+Inf while the
	// estimate is zero).
	RelErr99 float64
}

// Result is the outcome of a Monte Carlo or importance-sampling run.
type Result struct {
	// Pf is the estimated failure probability.
	Pf float64
	// StdErr is the standard error of Pf.
	StdErr float64
	// RelErr99 is stat.Z99·StdErr/Pf (+Inf if Pf is 0).
	RelErr99 float64
	// N is the number of samples drawn in this stage.
	N int
	// Failures is the number of samples that fell in the failure region.
	Failures int
	// WeightESS is the effective sample size of the importance weights,
	// (Σw)²/Σw² (Kish). For plain Monte Carlo it equals the failure
	// count; for importance sampling it is the standard diagnostic of
	// distortion quality — a tiny ESS with a confident CI flags the
	// §V-B failure mode where g misses part of the failure region.
	WeightESS float64
	// MaxWeight is the largest importance weight observed (0 for plain
	// Monte Carlo or when no sample failed).
	MaxWeight float64
	// TopWeights holds the largest nonzero importance weights in
	// descending order (at most maxTopWeights of them) — the input to
	// the run-report's weight-tail diagnostics. Nil for plain MC.
	TopWeights []float64
	// Trace holds convergence snapshots if tracing was requested.
	Trace []TracePoint
}

// resultFrom finalizes a Result from a Running accumulator. The weight
// ESS is reconstructed from the tracked moments: Σw = n·mean and
// Σw² = (n−1)·var + n·mean².
func resultFrom(r *stat.Running, failures int, trace []TracePoint) Result {
	n := float64(r.N())
	sumW := n * r.Mean()
	sumW2 := (n-1)*r.Var() + n*r.Mean()*r.Mean()
	ess := 0.0
	if sumW2 > 0 {
		ess = sumW * sumW / sumW2
	}
	return Result{
		Pf:        r.Mean(),
		StdErr:    r.StdErr(),
		RelErr99:  r.RelErr99(),
		N:         r.N(),
		Failures:  failures,
		WeightESS: ess,
		Trace:     trace,
	}
}

// TraceEvery returns a trace-recording stride: 0 disables tracing,
// otherwise a snapshot is stored every stride samples.
type TraceEvery int

// PlainMC estimates Pf by direct Monte Carlo from the process-variation
// distribution f(x) = N(0, I) (paper eq. 5). This is the brute-force
// golden engine of Table II.
func PlainMC(metric Metric, n int, rng *rand.Rand, traceEvery TraceEvery) (Result, error) {
	return PlainMCContext(context.Background(), metric, n, rng, traceEvery)
}

// PlainMCContext is PlainMC with cancellation: ctx is polled every
// ChunkSize samples, so a cancel (or deadline) aborts within one chunk
// with the context's error. An uncancelled run is bit-identical to
// PlainMC — the check never touches the random stream.
func PlainMCContext(ctx context.Context, metric Metric, n int, rng *rand.Rand, traceEvery TraceEvery) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	// Sequential golden engine: the stage span comes from the context
	// (the estimate root) when tracing is on.
	ctx, span := telemetry.StartSpan(ctx, nil, "stage2")
	defer span.End()
	span.SetAttr("n", n)
	dim := metric.Dim()
	var run stat.Running
	failures := 0
	var trace []TracePoint
	x := make([]float64, dim)
	for i := 0; i < n; i++ {
		if i%ChunkSize == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		ind := 0.0
		if metric.Value(x) < 0 {
			ind = 1
			failures++
		}
		run.Push(ind)
		if traceEvery > 0 && (i+1)%int(traceEvery) == 0 {
			trace = append(trace, TracePoint{N: i + 1, Estimate: run.Mean(), RelErr99: run.RelErr99()})
		}
	}
	return resultFrom(&run, failures, trace), nil
}

// Distortion is a sampling distribution usable as the importance
// distribution g(x): the Normal g^NOR of Algorithm 5, or richer families
// such as the Gaussian mixture of the paper's §IV-C extension. Sample and
// LogPDF must be safe for concurrent use — the second stage evaluates
// them from the Evaluator's worker pool.
type Distortion interface {
	Dim() int
	LogPDF(x []float64) float64
	Sample(rng *rand.Rand) []float64
}

// isWeight is one importance sample reduced to what the estimate needs.
type isWeight struct {
	w    float64
	fail bool
}

// isJob builds the draw/reduce pair of the importance-sampling stage for
// MapBatch: draw from g, simulate (scalar or batched — the dispatcher
// decides), and weight failures by f(x)/g(x). The weight is computed in
// log space: the ratio of a deep tail density to a shifted density
// overflows naive division.
func isJob(g Distortion) (draw func(rng *rand.Rand, i int) []float64, post func(i int, x []float64, v float64) isWeight) {
	draw = func(rng *rand.Rand, _ int) []float64 { return g.Sample(rng) }
	post = func(_ int, x []float64, v float64) isWeight {
		if v < 0 {
			return isWeight{w: math.Exp(stat.StdNormLogPDF(x) - g.LogPDF(x)), fail: true}
		}
		return isWeight{}
	}
	return draw, post
}

// maxTopWeights bounds how many of the largest weights the estimator
// keeps for the run-report's tail diagnostics.
const maxTopWeights = 32

// topWeights tracks the largest nonzero importance weights seen, in
// descending order. Weights arrive in index order (pushWeights), so the
// tracked set — like everything else in the reduction — is identical for
// every worker count.
type topWeights struct {
	w []float64
}

func (t *topWeights) push(w float64) {
	if w <= 0 {
		return
	}
	if len(t.w) == maxTopWeights && w <= t.w[maxTopWeights-1] {
		return
	}
	// Insertion point in the descending order: first index with a
	// smaller value (ties keep the earlier arrival first).
	i := 0
	for i < len(t.w) && t.w[i] >= w {
		i++
	}
	if len(t.w) < maxTopWeights {
		t.w = append(t.w, 0)
	}
	copy(t.w[i+1:], t.w[i:])
	t.w[i] = w
}

func (t *topWeights) max() float64 {
	if len(t.w) == 0 {
		return 0
	}
	return t.w[0]
}

// pushWeights folds a batch of weights into the accumulator in index
// order (so the floating-point reduction never depends on worker
// scheduling), recording trace snapshots and tail weights on the way.
func pushWeights(run *stat.Running, batch []isWeight, failures *int, tw *topWeights, traceEvery TraceEvery, trace []TracePoint) []TracePoint {
	for _, s := range batch {
		if s.fail {
			*failures++
		}
		run.Push(s.w)
		tw.push(s.w)
		if traceEvery > 0 && run.N()%int(traceEvery) == 0 {
			trace = append(trace, TracePoint{N: run.N(), Estimate: run.Mean(), RelErr99: run.RelErr99()})
		}
	}
	return trace
}

// ImportanceSample estimates Pf by sampling the distorted distribution g
// and averaging the weights I(x)·f(x)/g(x) (paper eqs. 7 and 33); f is
// the standard Normal of eq. (1). The simulations run on ev's worker
// pool; the estimate is identical for every worker count (the caller's
// rng only contributes the batch seed).
func ImportanceSample(ev *Evaluator, g Distortion, n int, rng *rand.Rand, traceEvery TraceEvery) (Result, error) {
	return ImportanceSampleContext(context.Background(), ev, g, n, rng, traceEvery)
}

// ImportanceSampleContext is ImportanceSample with cancellation: ctx is
// polled once per dispatched chunk (never inside the hot sample loop),
// so a cancel aborts within one chunk of ChunkSize simulations and an
// uncancelled run stays bit-identical for every worker count.
func ImportanceSampleContext(ctx context.Context, ev *Evaluator, g Distortion, n int, rng *rand.Rand, traceEvery TraceEvery) (Result, error) {
	if ev == nil {
		return Result{}, errors.New("mc: nil evaluator")
	}
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	if g.Dim() != ev.Dim() {
		return Result{}, errors.New("mc: distortion dimensionality does not match metric")
	}
	ctx, span := telemetry.StartSpan(ctx, ev.Telemetry(), "stage2")
	defer span.End()
	span.SetAttr("n", n)
	span.SetAttr("workers", ev.Workers())
	chunkAgg := span.Agg("chunk")
	draw, post := isJob(g)
	seed := rng.Int63()
	prog := newStageProgress(ev.Telemetry(), "stage2", n)
	var run stat.Running
	failures := 0
	var tw topWeights
	var trace []TracePoint
	for start := 0; start < n; start += ChunkSize {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		count := min(ChunkSize, n-start)
		t0 := time.Now()
		batch := MapBatch(ev, seed, start, count, draw, post)
		chunkAgg.Observe(time.Since(t0).Seconds())
		trace = pushWeights(&run, batch, &failures, &tw, traceEvery, trace)
		prog.publishRun(&run, failures, &tw)
	}
	res := resultFrom(&run, failures, trace)
	res.MaxWeight, res.TopWeights = tw.max(), tw.w
	span.SetAttr("failures", res.Failures)
	prog.done(&res)
	return res, nil
}

// ImportanceSampleUntil draws samples from g until the 99% relative error
// drops to target or n reaches maxN, returning the result. It implements
// the paper's "number of simulations to reach 5% error" experiments
// (Table I) without fixing N in advance. minN guards against spuriously
// early convergence claims from the first few weights.
//
// Samples are dispatched to ev's pool in chunks of ChunkSize and the
// convergence test runs between chunks, so the stopping point — and with
// it Pf, N and Failures — is the same for every worker count.
func ImportanceSampleUntil(ev *Evaluator, g Distortion, target float64, minN, maxN int, rng *rand.Rand) (Result, error) {
	return ImportanceSampleUntilContext(context.Background(), ev, g, target, minN, maxN, rng)
}

// ImportanceSampleUntilContext is ImportanceSampleUntil with
// cancellation, polled at the same chunk boundaries as the convergence
// test: a cancel aborts within one chunk, an uncancelled run stops at
// the same sample index — and the same estimate — as the plain variant.
func ImportanceSampleUntilContext(ctx context.Context, ev *Evaluator, g Distortion, target float64, minN, maxN int, rng *rand.Rand) (Result, error) {
	if ev == nil {
		return Result{}, errors.New("mc: nil evaluator")
	}
	if maxN <= 0 || minN < 0 {
		return Result{}, ErrBadSampleCount
	}
	if g.Dim() != ev.Dim() {
		return Result{}, errors.New("mc: distortion dimensionality does not match metric")
	}
	ctx, span := telemetry.StartSpan(ctx, ev.Telemetry(), "stage2")
	defer span.End()
	span.SetAttr("target", target)
	span.SetAttr("max_n", maxN)
	span.SetAttr("workers", ev.Workers())
	chunkAgg := span.Agg("chunk")
	draw, post := isJob(g)
	seed := rng.Int63()
	prog := newStageProgress(ev.Telemetry(), "stage2", maxN)
	var run stat.Running
	failures := 0
	var tw topWeights
	for start := 0; start < maxN; start += ChunkSize {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		count := min(ChunkSize, maxN-start)
		t0 := time.Now()
		batch := MapBatch(ev, seed, start, count, draw, post)
		chunkAgg.Observe(time.Since(t0).Seconds())
		pushWeights(&run, batch, &failures, &tw, 0, nil)
		prog.publishRun(&run, failures, &tw)
		if run.N() >= minN && run.RelErr99() <= target {
			break
		}
	}
	res := resultFrom(&run, failures, nil)
	res.MaxWeight, res.TopWeights = tw.max(), tw.w
	span.SetAttr("failures", res.Failures)
	prog.done(&res)
	return res, nil
}
