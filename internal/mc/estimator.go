package mc

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/stat"
)

// ErrBadSampleCount is returned when an estimator is asked for a
// non-positive number of samples.
var ErrBadSampleCount = errors.New("mc: sample count must be positive")

// TracePoint records an estimator's state after n samples; sequences of
// TracePoints regenerate the paper's convergence figures (Figs. 6, 7, 12).
type TracePoint struct {
	// N is the number of samples (transistor-level simulations in this
	// stage) consumed so far.
	N int
	// Estimate is the running failure-probability estimate.
	Estimate float64
	// RelErr99 is the paper's accuracy metric: the half-width of the 99%
	// confidence interval divided by the estimate (+Inf while the
	// estimate is zero).
	RelErr99 float64
}

// Result is the outcome of a Monte Carlo or importance-sampling run.
type Result struct {
	// Pf is the estimated failure probability.
	Pf float64
	// StdErr is the standard error of Pf.
	StdErr float64
	// RelErr99 is stat.Z99·StdErr/Pf (+Inf if Pf is 0).
	RelErr99 float64
	// N is the number of samples drawn in this stage.
	N int
	// Failures is the number of samples that fell in the failure region.
	Failures int
	// WeightESS is the effective sample size of the importance weights,
	// (Σw)²/Σw² (Kish). For plain Monte Carlo it equals the failure
	// count; for importance sampling it is the standard diagnostic of
	// distortion quality — a tiny ESS with a confident CI flags the
	// §V-B failure mode where g misses part of the failure region.
	WeightESS float64
	// Trace holds convergence snapshots if tracing was requested.
	Trace []TracePoint
}

// resultFrom finalizes a Result from a Running accumulator. The weight
// ESS is reconstructed from the tracked moments: Σw = n·mean and
// Σw² = (n−1)·var + n·mean².
func resultFrom(r *stat.Running, failures int, trace []TracePoint) Result {
	n := float64(r.N())
	sumW := n * r.Mean()
	sumW2 := (n-1)*r.Var() + n*r.Mean()*r.Mean()
	ess := 0.0
	if sumW2 > 0 {
		ess = sumW * sumW / sumW2
	}
	return Result{
		Pf:        r.Mean(),
		StdErr:    r.StdErr(),
		RelErr99:  r.RelErr99(),
		N:         r.N(),
		Failures:  failures,
		WeightESS: ess,
		Trace:     trace,
	}
}

// TraceEvery returns a trace-recording stride: 0 disables tracing,
// otherwise a snapshot is stored every stride samples.
type TraceEvery int

// PlainMC estimates Pf by direct Monte Carlo from the process-variation
// distribution f(x) = N(0, I) (paper eq. 5). This is the brute-force
// golden engine of Table II.
func PlainMC(metric Metric, n int, rng *rand.Rand, traceEvery TraceEvery) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	dim := metric.Dim()
	var run stat.Running
	failures := 0
	var trace []TracePoint
	x := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		ind := 0.0
		if metric.Value(x) < 0 {
			ind = 1
			failures++
		}
		run.Push(ind)
		if traceEvery > 0 && (i+1)%int(traceEvery) == 0 {
			trace = append(trace, TracePoint{N: i + 1, Estimate: run.Mean(), RelErr99: run.RelErr99()})
		}
	}
	return resultFrom(&run, failures, trace), nil
}

// Distortion is a sampling distribution usable as the importance
// distribution g(x): the Normal g^NOR of Algorithm 5, or richer families
// such as the Gaussian mixture of the paper's §IV-C extension.
type Distortion interface {
	Dim() int
	LogPDF(x []float64) float64
	Sample(rng *rand.Rand) []float64
}

// ImportanceSample estimates Pf by sampling the distorted distribution g
// and averaging the weights I(x)·f(x)/g(x) (paper eqs. 7 and 33); f is
// the standard Normal of eq. (1).
func ImportanceSample(metric Metric, g Distortion, n int, rng *rand.Rand, traceEvery TraceEvery) (Result, error) {
	if n <= 0 {
		return Result{}, ErrBadSampleCount
	}
	if g.Dim() != metric.Dim() {
		return Result{}, errors.New("mc: distortion dimensionality does not match metric")
	}
	var run stat.Running
	failures := 0
	var trace []TracePoint
	for i := 0; i < n; i++ {
		x := g.Sample(rng)
		w := 0.0
		if metric.Value(x) < 0 {
			failures++
			// w = f(x)/g(x), computed in log space: the ratio of a deep
			// tail density to a shifted density overflows naive division.
			w = math.Exp(stat.StdNormLogPDF(x) - g.LogPDF(x))
		}
		run.Push(w)
		if traceEvery > 0 && (i+1)%int(traceEvery) == 0 {
			trace = append(trace, TracePoint{N: i + 1, Estimate: run.Mean(), RelErr99: run.RelErr99()})
		}
	}
	return resultFrom(&run, failures, trace), nil
}

// ImportanceSampleUntil draws samples from g until the 99% relative error
// drops to target or n reaches maxN, returning the result. It implements
// the paper's "number of simulations to reach 5% error" experiments
// (Table I) without fixing N in advance. minN guards against spuriously
// early convergence claims from the first few weights.
func ImportanceSampleUntil(metric Metric, g Distortion, target float64, minN, maxN int, rng *rand.Rand) (Result, error) {
	if maxN <= 0 || minN < 0 {
		return Result{}, ErrBadSampleCount
	}
	if g.Dim() != metric.Dim() {
		return Result{}, errors.New("mc: distortion dimensionality does not match metric")
	}
	var run stat.Running
	failures := 0
	for i := 0; i < maxN; i++ {
		x := g.Sample(rng)
		w := 0.0
		if metric.Value(x) < 0 {
			failures++
			w = math.Exp(stat.StdNormLogPDF(x) - g.LogPDF(x))
		}
		run.Push(w)
		if run.N() >= minN && run.RelErr99() <= target {
			break
		}
	}
	return resultFrom(&run, failures, nil), nil
}
