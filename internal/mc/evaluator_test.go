package mc

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestMapReturnsIndexOrder(t *testing.T) {
	ev := NewEvaluator(MetricFunc{M: 1, F: func(x []float64) float64 { return 0 }}, 4)
	out := Map(ev, 1, 10, 20, func(_ *rand.Rand, i int) int { return i })
	if len(out) != 20 {
		t.Fatalf("len = %d", len(out))
	}
	for k, v := range out {
		if v != 10+k {
			t.Fatalf("out[%d] = %d, want %d", k, v, 10+k)
		}
	}
	if Map(ev, 1, 0, 0, func(_ *rand.Rand, i int) int { return i }) != nil {
		t.Fatal("n = 0 should return nil")
	}
	if Map(ev, 1, 0, -3, func(_ *rand.Rand, i int) int { return i }) != nil {
		t.Fatal("n < 0 should return nil")
	}
}

// The per-sample RNG stream must depend only on (seed, index): any
// worker count, any chunking of the index range, same draws.
func TestMapDeterministicAcrossWorkers(t *testing.T) {
	ev1 := NewEvaluator(nil, 1)
	draw := func(rng *rand.Rand, i int) [3]float64 {
		return [3]float64{rng.NormFloat64(), rng.Float64(), float64(rng.Intn(1000))}
	}
	ref := Map(ev1, 99, 0, 500, draw)
	for _, workers := range []int{2, 3, 7, runtime.GOMAXPROCS(0)} {
		got := Map(NewEvaluator(nil, workers), 99, 0, 500, draw)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d sample %d diverged: %v vs %v", workers, i, got[i], ref[i])
			}
		}
	}
	// Splitting the range into chunks must not change the streams.
	head := Map(ev1, 99, 0, 123, draw)
	tail := Map(ev1, 99, 123, 500-123, draw)
	for i, v := range append(head, tail...) {
		if v != ref[i] {
			t.Fatalf("chunked sample %d diverged", i)
		}
	}
}

func TestMapDistinctSeedsAndIndices(t *testing.T) {
	ev := NewEvaluator(nil, 1)
	draw := func(rng *rand.Rand, _ int) float64 { return rng.NormFloat64() }
	a := Map(ev, 1, 0, 100, draw)
	b := Map(ev, 2, 0, 100, draw)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide on %d/100 samples", same)
	}
	for i := 1; i < len(a); i++ {
		if a[i] == a[0] {
			t.Fatalf("samples 0 and %d drew the identical value", i)
		}
	}
}

func TestBatchEvaluatesMetric(t *testing.T) {
	m := MetricFunc{M: 2, F: func(x []float64) float64 { return x[0] - x[1] }}
	ev := NewEvaluator(m, 3)
	batch := ev.Batch(5, 0, 64, func(rng *rand.Rand, i int) []float64 {
		return []float64{float64(i), rng.Float64()}
	})
	if len(batch) != 64 {
		t.Fatalf("len = %d", len(batch))
	}
	for i, s := range batch {
		if s.X[0] != float64(i) {
			t.Fatalf("batch out of order at %d", i)
		}
		if s.Value != s.X[0]-s.X[1] {
			t.Fatalf("value not evaluated at %d", i)
		}
	}
}

func TestEvaluatorWorkersResolution(t *testing.T) {
	if w := NewEvaluator(nil, 0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers(0) = %d", w)
	}
	if w := NewEvaluator(nil, 5).Workers(); w != 5 {
		t.Fatalf("workers(5) = %d", w)
	}
	if w := (*Evaluator)(nil).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("nil evaluator workers = %d", w)
	}
}

// The pool must actually run samples concurrently: with a metric that
// blocks (simulating solver latency), 8 workers over 8 samples must beat
// 8 serial evaluations by a wide margin. Sleeping does not hold the OS
// thread, so this holds even on a single-core machine.
func TestMapRunsConcurrently(t *testing.T) {
	const blockFor = 30 * time.Millisecond
	slow := MetricFunc{M: 1, F: func(x []float64) float64 {
		time.Sleep(blockFor)
		return x[0]
	}}
	job := func(rng *rand.Rand, _ int) float64 { return slow.Value([]float64{rng.NormFloat64()}) }

	start := time.Now()
	Map(NewEvaluator(slow, 8), 1, 0, 8, job)
	parallel := time.Since(start)

	if parallel > 4*blockFor {
		t.Fatalf("8 workers over 8 blocking samples took %v; want ≈ %v (serial would be %v)",
			parallel, blockFor, 8*blockFor)
	}
}

// Counter must not lose increments under concurrent Value calls (run
// with -race in CI to also catch unsynchronized access).
func TestCounterConcurrentIncrements(t *testing.T) {
	c := NewCounter(MetricFunc{M: 1, F: func(x []float64) float64 { return x[0] }})
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			x := []float64{1}
			for i := 0; i < perG; i++ {
				c.Value(x)
			}
		}()
	}
	wg.Wait()
	if c.Count() != goroutines*perG {
		t.Fatalf("lost increments: %d, want %d", c.Count(), goroutines*perG)
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset failed")
	}
}
