package mc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stat"
	"repro/internal/surrogate"
)

func TestCounterCounts(t *testing.T) {
	m := MetricFunc{M: 2, F: func(x []float64) float64 { return x[0] }}
	c := NewCounter(m)
	if c.Dim() != 2 {
		t.Fatal("dim")
	}
	c.Value([]float64{1, 2})
	c.Value([]float64{-1, 2})
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFailHelper(t *testing.T) {
	m := MetricFunc{M: 1, F: func(x []float64) float64 { return x[0] }}
	if !Fail(m, []float64{-1}) || Fail(m, []float64{1}) {
		t.Fatal("Fail convention broken")
	}
}

func TestPlainMCOnKnownProbability(t *testing.T) {
	// Fail when x₀ < −1: Pf = Φ(−1) ≈ 0.1587.
	m := MetricFunc{M: 1, F: func(x []float64) float64 { return x[0] + 1 }}
	rng := rand.New(rand.NewSource(1))
	res, err := PlainMC(m, 200000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := stat.NormCDF(-1)
	if math.Abs(res.Pf-want) > 0.003 {
		t.Fatalf("Pf %v, want %v", res.Pf, want)
	}
	if res.Failures != int(math.Round(res.Pf*float64(res.N))) {
		t.Fatalf("failure count inconsistent: %d vs %v", res.Failures, res.Pf*float64(res.N))
	}
}

func TestPlainMCValidation(t *testing.T) {
	m := MetricFunc{M: 1, F: func(x []float64) float64 { return 1 }}
	rng := rand.New(rand.NewSource(2))
	if _, err := PlainMC(m, 0, rng, 0); err != ErrBadSampleCount {
		t.Fatal("want ErrBadSampleCount")
	}
}

func TestPlainMCTrace(t *testing.T) {
	m := MetricFunc{M: 1, F: func(x []float64) float64 { return x[0] }}
	rng := rand.New(rand.NewSource(3))
	res, err := PlainMC(m, 1000, rng, TraceEvery(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 10 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	for i, tp := range res.Trace {
		if tp.N != (i+1)*100 {
			t.Fatalf("trace N wrong at %d: %d", i, tp.N)
		}
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Estimate != res.Pf {
		t.Fatal("final trace point disagrees with result")
	}
}

func TestImportanceSampleExactOnLinear(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4} // Pf = Φ(−4) ≈ 3.17e-5
	// Distort with the mean shifted to the boundary.
	g, err := stat.NewMVNormal([]float64{4, 0}, linalg.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	res, err := ImportanceSample(NewEvaluator(lin, 0), g, 100000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.05 {
		t.Fatalf("IS estimate %v, exact %v", res.Pf, exact)
	}
	if res.RelErr99 <= 0 || math.IsInf(res.RelErr99, 1) {
		t.Fatalf("relerr: %v", res.RelErr99)
	}
}

func TestImportanceSampleDimMismatch(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	g := stat.StandardMVNormal(3)
	rng := rand.New(rand.NewSource(5))
	if _, err := ImportanceSample(NewEvaluator(lin, 0), g, 100, rng, 0); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, err := ImportanceSample(NewEvaluator(lin, 0), stat.StandardMVNormal(2), 0, rng, 0); err != ErrBadSampleCount {
		t.Fatal("want ErrBadSampleCount")
	}
}

// Importance sampling with the *original* distribution reduces to plain
// MC and must agree with the analytic value on an easy region.
func TestImportanceSampleWithIdentityDistortion(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 1} // Pf = Φ(−1)
	g := stat.StandardMVNormal(2)
	rng := rand.New(rand.NewSource(6))
	res, err := ImportanceSample(NewEvaluator(lin, 0), g, 100000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := stat.NormCDF(-1)
	if math.Abs(res.Pf-want) > 0.004 {
		t.Fatalf("Pf %v want %v", res.Pf, want)
	}
	// Weights must be exactly 0 or 1 here.
	if res.Failures == 0 {
		t.Fatal("no failures")
	}
}

func TestImportanceSampleUntil(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	g, _ := stat.NewMVNormal([]float64{4, 0}, linalg.Identity(2))
	rng := rand.New(rand.NewSource(7))
	res, err := ImportanceSampleUntil(NewEvaluator(lin, 0), g, 0.05, 100, 1000000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelErr99 > 0.05 {
		t.Fatalf("missed target: %v after %d", res.RelErr99, res.N)
	}
	if res.N >= 1000000 {
		t.Fatal("should converge well before maxN")
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.1 {
		t.Fatalf("estimate %v vs %v", res.Pf, exact)
	}
}

func TestImportanceSampleUntilRespectsMaxN(t *testing.T) {
	// A hopeless distortion: target unreachable, must stop at maxN.
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 6}
	g := stat.StandardMVNormal(2) // plain MC on a 1e-9 event: never converges
	rng := rand.New(rand.NewSource(8))
	res, err := ImportanceSampleUntil(NewEvaluator(lin, 0), g, 0.05, 10, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2000 {
		t.Fatalf("should stop at maxN: %d", res.N)
	}
}

func TestWeightESSPlainMC(t *testing.T) {
	// For indicator weights (0/1), Kish ESS equals the failure count.
	m := MetricFunc{M: 1, F: func(x []float64) float64 { return x[0] }}
	rng := rand.New(rand.NewSource(9))
	res, err := PlainMC(m, 10000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.WeightESS-float64(res.Failures)) > 1e-6 {
		t.Fatalf("indicator ESS %v should equal failures %d", res.WeightESS, res.Failures)
	}
}

func TestWeightESSFlagsBadDistortion(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	good, _ := stat.NewMVNormal([]float64{4.3, 0}, linalg.Identity(2))
	bad, _ := stat.NewMVNormal([]float64{8, 0}, linalg.Identity(2)) // overshoots the boundary
	rng := rand.New(rand.NewSource(10))
	rGood, err := ImportanceSample(NewEvaluator(lin, 0), good, 20000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	rBad, err := ImportanceSample(NewEvaluator(lin, 0), bad, 20000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rGood.WeightESS <= rBad.WeightESS {
		t.Fatalf("well-placed distortion should have higher ESS: %v vs %v",
			rGood.WeightESS, rBad.WeightESS)
	}
	if rGood.WeightESS < 1000 {
		t.Fatalf("good distortion ESS suspiciously low: %v", rGood.WeightESS)
	}
}
