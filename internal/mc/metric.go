// Package mc provides the Monte Carlo foundations shared by every
// estimator in the library: the Metric/indicator abstraction with
// simulation counting, the plain Monte Carlo engine, and the
// importance-sampling estimator with 99%-confidence-interval convergence
// traces (the paper's accuracy figure of merit).
package mc

import "sync/atomic"

// Metric is a normalized circuit performance margin over the
// variation space x (independent standard Normal coordinates, paper
// eq. 1): the sample fails exactly when Value(x) < 0. Each Value call
// stands for one transistor-level simulation — the paper's unit of cost.
//
// Thread-safety contract: Value must be safe to call from multiple
// goroutines at once. Every estimator in the library runs its simulation
// batches through the Evaluator worker pool, so a Metric whose Value
// mutates shared state (a cached solver, a shared circuit) must protect
// or replicate that state per call. The built-in metrics comply by
// constructing a fresh spice.Circuit per evaluation and treating the
// Cell/MOSModel cards as read-only.
type Metric interface {
	// Dim returns the dimensionality M of the variation space.
	Dim() int
	// Value returns the margin at x; negative means failure.
	Value(x []float64) float64
}

// Fail reports whether x falls in the failure region Ω of the metric.
func Fail(m Metric, x []float64) bool { return m.Value(x) < 0 }

// BatchMetric is a Metric that can evaluate many samples in one call,
// amortizing per-solve setup (circuit templates, solver workspaces,
// warm-start anchors) across the batch. The contract that keeps
// estimates exact: out[i] must be bit-identical to Value(xs[i]) — each
// sample's result a pure function of its own coordinates, never of its
// batch neighbors. The engine checks for this interface and transparently
// routes whole sample groups through it; everything downstream (chunk
// boundaries, index-ordered reductions, per-sample RNG streams) is
// unchanged, so a batched run reproduces a scalar run bit for bit.
type BatchMetric interface {
	Metric
	// ValueBatch writes Value(xs[i]) into out[i] for 0 ≤ i < len(xs).
	// out has at least len(xs) entries.
	ValueBatch(xs [][]float64, out []float64)
}

// Counter wraps a Metric and counts simulations. All estimators in the
// library draw their cost reports from Counter, so "number of
// transistor-level simulations" is measured, never assumed. The count is
// kept with sync/atomic: concurrent Value calls from the Evaluator pool
// lose no increments, so stage-cost accounting stays exact under any
// worker count.
type Counter struct {
	m Metric
	n atomic.Int64
}

// NewCounter wraps m.
func NewCounter(m Metric) *Counter { return &Counter{m: m} }

// Dim implements Metric.
func (c *Counter) Dim() int { return c.m.Dim() }

// Value implements Metric, incrementing the simulation count.
func (c *Counter) Value(x []float64) float64 {
	c.n.Add(1)
	return c.m.Value(x)
}

// ValueBatch implements BatchMetric, counting one simulation per sample.
// When the wrapped metric batches, the call is delegated wholesale; a
// scalar-only metric is evaluated sample by sample, so wrapping in a
// Counter never changes results — only whether the group dispatch can
// amortize solver state underneath.
func (c *Counter) ValueBatch(xs [][]float64, out []float64) {
	c.n.Add(int64(len(xs)))
	if bm, ok := c.m.(BatchMetric); ok {
		bm.ValueBatch(xs, out)
		return
	}
	for i, x := range xs {
		out[i] = c.m.Value(x)
	}
}

// Count returns the number of simulations performed so far.
func (c *Counter) Count() int64 { return c.n.Load() }

// Reset zeroes the simulation count.
func (c *Counter) Reset() { c.n.Store(0) }

// MetricFunc adapts a plain function to the Metric interface.
type MetricFunc struct {
	M int
	F func(x []float64) float64
}

// Dim implements Metric.
func (f MetricFunc) Dim() int { return f.M }

// Value implements Metric.
func (f MetricFunc) Value(x []float64) float64 { return f.F(x) }
