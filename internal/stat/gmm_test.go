package stat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestGMMValidation(t *testing.T) {
	mv := StandardMVNormal(2)
	if _, err := NewGMM(nil, nil); err == nil {
		t.Fatal("empty GMM should error")
	}
	if _, err := NewGMM([]float64{1, 1}, []*MVNormal{mv}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := NewGMM([]float64{-1}, []*MVNormal{mv}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := NewGMM([]float64{0}, []*MVNormal{mv}); err == nil {
		t.Fatal("zero-sum weights should error")
	}
	if _, err := NewGMM([]float64{1, 1}, []*MVNormal{mv, StandardMVNormal(3)}); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestGMMSingleComponentMatchesNormal(t *testing.T) {
	cov := linalg.NewMatrixFrom([][]float64{{2, 0.5}, {0.5, 1}})
	mv, err := NewMVNormal([]float64{1, -1}, cov)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGMM([]float64{3}, []*MVNormal{mv}) // weight normalizes to 1
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {1, -1}, {3, 2}} {
		if math.Abs(g.LogPDF(x)-mv.LogPDF(x)) > 1e-12 {
			t.Fatalf("single-component GMM disagrees with Normal at %v", x)
		}
	}
}

func TestGMMMixturePDF(t *testing.T) {
	a := StandardMVNormal(1)
	b, _ := NewMVNormal([]float64{4}, linalg.Identity(1))
	g, err := NewGMM([]float64{0.25, 0.75}, []*MVNormal{a, b})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.0}
	want := 0.25*a.PDF(x) + 0.75*b.PDF(x)
	if math.Abs(g.PDF(x)-want) > 1e-15 {
		t.Fatalf("mixture pdf: got %v want %v", g.PDF(x), want)
	}
}

func TestGMMSampleProportions(t *testing.T) {
	a, _ := NewMVNormal([]float64{-10}, linalg.Identity(1))
	b, _ := NewMVNormal([]float64{10}, linalg.Identity(1))
	g, err := NewGMM([]float64{0.3, 0.7}, []*MVNormal{a, b})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 50000
	right := 0
	for i := 0; i < n; i++ {
		if g.Sample(rng)[0] > 0 {
			right++
		}
	}
	if frac := float64(right) / n; math.Abs(frac-0.7) > 0.01 {
		t.Fatalf("component proportion %v, want 0.7", frac)
	}
}

func TestFitGMMTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var samples [][]float64
	for i := 0; i < 600; i++ {
		x := []float64{rng.NormFloat64()*0.5 + 5, rng.NormFloat64() * 0.5}
		samples = append(samples, x)
	}
	for i := 0; i < 400; i++ {
		x := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64()*0.5 + 5}
		samples = append(samples, x)
	}
	g, err := FitGMM(samples, 2, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Components) != 2 {
		t.Fatalf("components: %d", len(g.Components))
	}
	// One component near (5,0), the other near (0,5); weights ≈ .6/.4.
	m0, m1 := g.Components[0].Mean, g.Components[1].Mean
	if m0[0] < m1[0] {
		m0, m1 = m1, m0
		g.Weights[0], g.Weights[1] = g.Weights[1], g.Weights[0]
	}
	if math.Abs(m0[0]-5) > 0.3 || math.Abs(m0[1]) > 0.3 {
		t.Fatalf("component mean off: %v", m0)
	}
	if math.Abs(m1[1]-5) > 0.3 || math.Abs(m1[0]) > 0.3 {
		t.Fatalf("component mean off: %v", m1)
	}
	if math.Abs(g.Weights[0]-0.6) > 0.05 {
		t.Fatalf("weights off: %v", g.Weights)
	}
}

func TestFitGMMOneComponentEqualsMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples [][]float64
	for i := 0; i < 500; i++ {
		samples = append(samples, []float64{rng.NormFloat64() + 2, rng.NormFloat64() - 1})
	}
	g, err := FitGMM(samples, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	mu, _, _ := Covariance(samples)
	for i := range mu {
		if math.Abs(g.Components[0].Mean[i]-mu[i]) > 1e-12 {
			t.Fatalf("k=1 mean should equal the sample mean: %v vs %v",
				g.Components[0].Mean, mu)
		}
	}
}

func TestFitGMMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := FitGMM([][]float64{{1}, {2}}, 0, 5, rng); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := FitGMM([][]float64{{1}, {2}, {3}}, 2, 5, rng); err == nil {
		t.Fatal("too few samples should error")
	}
}

// The fitted mixture must integrate importance weights correctly: using a
// 2-component GMM as the distortion for a bimodal set of means should
// produce finite, sane log densities everywhere between the lobes.
func TestGMMLogPDFStable(t *testing.T) {
	a, _ := NewMVNormal([]float64{-30, 0}, linalg.Identity(2))
	b, _ := NewMVNormal([]float64{30, 0}, linalg.Identity(2))
	g, _ := NewGMM([]float64{0.5, 0.5}, []*MVNormal{a, b})
	for _, x := range [][]float64{{-30, 0}, {0, 0}, {30, 0}, {100, 100}} {
		v := g.LogPDF(x)
		if math.IsNaN(v) || math.IsInf(v, 1) {
			t.Fatalf("unstable logpdf at %v: %v", x, v)
		}
	}
}
