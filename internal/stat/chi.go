package stat

import "math"

// Chi is the Chi distribution with K degrees of freedom: the distribution
// of the radius r = ‖x‖₂ of an M-dimensional standard Normal vector
// (paper eq. 13). The spherical Gibbs chain samples r from truncated Chi
// conditionals, so we need its PDF, CDF and quantile.
type Chi struct {
	K int // degrees of freedom (the dimensionality M)
}

// PDF returns f(r) = 2 r^{K−1} e^{−r²/2} / (2^{K/2} Γ(K/2)) for r ≥ 0.
func (c Chi) PDF(r float64) float64 {
	if r < 0 {
		return 0
	}
	//reprolint:ignore floateq exact boundary of the PDF domain; the K=1 limit applies only at exactly 0
	if r == 0 {
		if c.K == 1 {
			return 2 * invSqrt2Pi // limit of the K=1 half-Normal at 0
		}
		return 0
	}
	k := float64(c.K)
	lg := LogGamma(0.5 * k)
	logf := math.Log(2) + (k-1)*math.Log(r) - 0.5*r*r - 0.5*k*math.Log(2) - lg
	return math.Exp(logf)
}

// CDF returns P(R ≤ r) = P(K/2, r²/2), the regularized lower incomplete
// gamma function.
func (c Chi) CDF(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return RegIncGammaP(0.5*float64(c.K), 0.5*r*r)
}

// SF returns P(R > r), accurately for large r.
func (c Chi) SF(r float64) float64 {
	if r <= 0 {
		return 1
	}
	return RegIncGammaQ(0.5*float64(c.K), 0.5*r*r)
}

// Quantile returns the p-quantile of the Chi distribution.
func (c Chi) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	x := InvRegIncGammaP(0.5*float64(c.K), p)
	return math.Sqrt(2 * x)
}

// Mean returns E[R] = √2 Γ((K+1)/2) / Γ(K/2).
func (c Chi) Mean() float64 {
	k := float64(c.K)
	return sqrt2 * math.Exp(LogGamma(0.5*(k+1))-LogGamma(0.5*k))
}

// Var returns Var[R] = K − E[R]².
func (c Chi) Var() float64 {
	m := c.Mean()
	return float64(c.K) - m*m
}
