// Package stat implements the probability and statistics substrate for the
// SRAM failure-rate library: Normal and Chi distributions with quantiles,
// regularized incomplete gamma functions, multivariate Normal density and
// sampling, moment estimation, and importance-sampling confidence intervals.
//
// Go's standard library provides only math.Erf/Erfc/Gamma/Lgamma; everything
// above that (inverse CDFs, incomplete gamma, Chi(M), covariance fitting) is
// implemented here and validated in the package tests.
package stat

import (
	"errors"
	"math"
)

// ErrDomain is returned when a special-function argument is out of range.
var ErrDomain = errors.New("stat: argument out of domain")

// RegIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x ≥ 0, using the series expansion for
// x < a+1 and the Lentz continued fraction otherwise (Numerical Recipes
// style). Accuracy is ~1e-14 over the ranges used by the Chi CDF.
func RegIncGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0: //reprolint:ignore floateq exact domain boundary: P(a, 0) = 0 by definition
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// RegIncGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x), accurately in the upper tail.
func RegIncGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0: //reprolint:ignore floateq exact domain boundary: Q(a, 0) = 1 by definition
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// InvRegIncGammaP returns x such that P(a, x) = p, via a Newton iteration
// seeded with the Wilson–Hilferty approximation and safeguarded by
// bisection. Used for the Chi(M) quantile in spherical Gibbs sampling.
func InvRegIncGammaP(a, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Wilson–Hilferty starting guess.
	g := 1 - 2/(9*a) + NormQuantile(p)*math.Sqrt(2/(9*a))
	x := a * g * g * g
	if x <= 0 || math.IsNaN(x) {
		x = a
	}
	lo, hi := 0.0, math.Max(4*a+20, 2*x)
	for RegIncGammaP(a, hi) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	for i := 0; i < 200; i++ {
		f := RegIncGammaP(a, x) - p
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// P'(a,x) = x^{a-1} e^{-x} / Γ(a). Take the Newton step when the
		// derivative is usable and the step stays inside the bracket;
		// otherwise (including exp underflow to 0) bisect.
		dp := math.Exp((a-1)*math.Log(x) - x - lg)
		next := 0.5 * (lo + hi)
		if dp > 0 {
			if cand := x - f/dp; cand > lo && cand < hi {
				next = cand
			}
		}
		if math.Abs(next-x) <= 1e-14*(math.Abs(x)+1e-300) {
			return next
		}
		x = next
	}
	return x
}

// LogGamma returns ln Γ(x) for x > 0.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
