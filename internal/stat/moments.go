package stat

import (
	"errors"

	"repro/internal/linalg"
)

// ErrTooFewSamples is returned when moment estimation receives fewer
// samples than required.
var ErrTooFewSamples = errors.New("stat: too few samples")

// MeanVec returns the sample mean of the rows of xs.
func MeanVec(xs [][]float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrTooFewSamples
	}
	d := len(xs[0])
	mu := make([]float64, d)
	for _, x := range xs {
		for i, v := range x {
			mu[i] += v
		}
	}
	inv := 1 / float64(len(xs))
	for i := range mu {
		mu[i] *= inv
	}
	return mu, nil
}

// Covariance returns the unbiased sample covariance matrix of the rows of
// xs (divisor n−1). This implements Algorithm 5 step 4: estimating the
// mean and covariance of g^NOR(x) from the first-stage Gibbs samples.
func Covariance(xs [][]float64) ([]float64, *linalg.Matrix, error) {
	if len(xs) < 2 {
		return nil, nil, ErrTooFewSamples
	}
	mu, err := MeanVec(xs)
	if err != nil {
		return nil, nil, err
	}
	d := len(mu)
	cov := linalg.NewMatrix(d, d)
	for _, x := range xs {
		for i := 0; i < d; i++ {
			di := x[i] - mu[i]
			for j := i; j < d; j++ {
				cov.Add(i, j, di*(x[j]-mu[j]))
			}
		}
	}
	inv := 1 / float64(len(xs)-1)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.At(i, j) * inv
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return mu, cov, nil
}

// Running accumulates a scalar stream with Welford's algorithm and exposes
// mean, variance and Normal-theory confidence intervals. The
// importance-sampling estimators feed their weights through this to report
// the paper's "relative error defined by the 99% confidence interval".
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Push adds an observation.
func (r *Running) Push(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n < 1 {
		return 0
	}
	v := r.Var()
	return sqrtPos(v / float64(r.n))
}

// Z99 is the two-sided 99% Normal critical value used throughout the
// paper's accuracy metric.
const Z99 = 2.5758293035489008

// CIHalfWidth returns z·StdErr, the half-width of the two-sided confidence
// interval at the given critical value.
func (r *Running) CIHalfWidth(z float64) float64 { return z * r.StdErr() }

// RelErr99 returns the paper's accuracy figure of merit: the 99%
// confidence-interval half-width divided by the estimated mean. It returns
// +Inf when the mean is zero (no failures observed yet).
func (r *Running) RelErr99() float64 {
	//reprolint:ignore floateq the running mean of non-negative weights is exactly 0 iff no failing sample has been pushed; "no failures yet" sentinel
	if r.mean == 0 {
		return inf()
	}
	return r.CIHalfWidth(Z99) / r.mean
}

func sqrtPos(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return sqrt(v)
}
