package stat

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// MVNormal is a multivariate Normal distribution N(Mean, Cov) with a cached
// Cholesky factor, used both to sample the distorted distribution g^NOR(x)
// in the second Monte Carlo stage and to evaluate its density in the
// importance-sampling weight I·f/g (paper eq. 33).
type MVNormal struct {
	Mean []float64
	chol *linalg.Cholesky
	dim  int
	// logNormConst = −(M/2)·ln(2π) − (1/2)·ln det Σ
	logNormConst float64
}

// NewMVNormal builds the distribution from a mean vector and covariance
// matrix. The covariance is regularized with escalating diagonal jitter if
// it is not numerically positive definite (covariances estimated from few
// Gibbs samples are routinely near-singular).
func NewMVNormal(mean []float64, cov *linalg.Matrix) (*MVNormal, error) {
	if cov.Rows != cov.Cols || cov.Rows != len(mean) {
		return nil, fmt.Errorf("stat: MVNormal shape mismatch: mean %d, cov %dx%d",
			len(mean), cov.Rows, cov.Cols)
	}
	chol, _, err := linalg.FactorCholeskyRegularized(cov, 1e-12, 60)
	if err != nil {
		return nil, err
	}
	d := len(mean)
	return &MVNormal{
		Mean:         linalg.CopyVec(mean),
		chol:         chol,
		dim:          d,
		logNormConst: -0.5*float64(d)*math.Log(2*math.Pi) - 0.5*chol.LogDet(),
	}, nil
}

// StandardMVNormal returns N(0, I) in dim dimensions — the process-variation
// PDF f(x) of paper eq. (1).
func StandardMVNormal(dim int) *MVNormal {
	mv, err := NewMVNormal(make([]float64, dim), linalg.Identity(dim))
	if err != nil {
		panic(err) // identity covariance cannot fail
	}
	return mv
}

// Dim returns the dimensionality.
func (m *MVNormal) Dim() int { return m.dim }

// LogPDF returns the log density at x.
func (m *MVNormal) LogPDF(x []float64) float64 {
	d := make([]float64, m.dim)
	for i := range d {
		d[i] = x[i] - m.Mean[i]
	}
	// Solve L y = d; the quadratic form is ‖y‖².
	y := m.forwardSolve(d)
	q := 0.0
	for _, v := range y {
		q += v * v
	}
	return m.logNormConst - 0.5*q
}

// PDF returns the density at x.
func (m *MVNormal) PDF(x []float64) float64 { return math.Exp(m.LogPDF(x)) }

// forwardSolve solves L y = d using the lower Cholesky factor.
func (m *MVNormal) forwardSolve(d []float64) []float64 {
	l := m.chol.L
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := d[i]
		for j := 0; j < i; j++ {
			s -= row[j] * y[j]
		}
		y[i] = s / row[i]
	}
	return y
}

// Sample draws one sample x = Mean + L z with z ~ N(0, I).
func (m *MVNormal) Sample(rng *rand.Rand) []float64 {
	z := make([]float64, m.dim)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	x := m.chol.MulVec(z)
	for i := range x {
		x[i] += m.Mean[i]
	}
	return x
}

// StdNormLogPDF returns the log density of the M-dimensional standard
// Normal at x without constructing an MVNormal.
func StdNormLogPDF(x []float64) float64 {
	q := 0.0
	for _, v := range x {
		q += v * v
	}
	return -0.5*float64(len(x))*math.Log(2*math.Pi) - 0.5*q
}

// StdNormPDF returns the density of the M-dimensional standard Normal at x.
func StdNormPDF(x []float64) float64 { return math.Exp(StdNormLogPDF(x)) }
