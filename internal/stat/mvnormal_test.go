package stat

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/linalg"
)

func TestStandardMVNormalPDF(t *testing.T) {
	mv := StandardMVNormal(3)
	x := []float64{0.3, -1.2, 0.7}
	want := NormPDF(0.3) * NormPDF(-1.2) * NormPDF(0.7)
	if math.Abs(mv.PDF(x)-want) > 1e-15 {
		t.Fatalf("PDF: got %v want %v", mv.PDF(x), want)
	}
	if math.Abs(StdNormPDF(x)-want) > 1e-15 {
		t.Fatalf("StdNormPDF: got %v want %v", StdNormPDF(x), want)
	}
}

func TestMVNormalShapeMismatch(t *testing.T) {
	if _, err := NewMVNormal([]float64{0, 0, 0}, linalg.Identity(2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMVNormalDensityKnown(t *testing.T) {
	// 2-D with Σ = [[2,1],[1,2]]: det = 3.
	cov := linalg.NewMatrixFrom([][]float64{{2, 1}, {1, 2}})
	mv, err := NewMVNormal([]float64{1, -1}, cov)
	if err != nil {
		t.Fatal(err)
	}
	// Density at the mean: 1/(2π√det).
	want := 1 / (2 * math.Pi * math.Sqrt(3))
	if got := mv.PDF([]float64{1, -1}); math.Abs(got-want) > 1e-14 {
		t.Fatalf("density at mean: got %v want %v", got, want)
	}
	// Quadratic form at x = mean + (1,0): Σ⁻¹ = (1/3)[[2,−1],[−1,2]],
	// q = 2/3.
	want2 := want * math.Exp(-0.5*2.0/3.0)
	if got := mv.PDF([]float64{2, -1}); math.Abs(got-want2) > 1e-14 {
		t.Fatalf("density off mean: got %v want %v", got, want2)
	}
}

func TestMVNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cov := linalg.NewMatrixFrom([][]float64{{2, 0.8}, {0.8, 1}})
	mean := []float64{3, -2}
	mv, err := NewMVNormal(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = mv.Sample(rng)
	}
	mu, c, err := Covariance(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mean {
		if math.Abs(mu[i]-mean[i]) > 0.02 {
			t.Fatalf("sample mean %d: %v", i, mu[i])
		}
	}
	if c.MaxAbsDiff(cov) > 0.05 {
		t.Fatalf("sample covariance off: %+v", c)
	}
}

func TestMVNormalSingularCovRegularized(t *testing.T) {
	// Perfectly correlated — the regularizer must save it.
	cov := linalg.NewMatrixFrom([][]float64{{1, 1}, {1, 1}})
	mv, err := NewMVNormal([]float64{0, 0}, cov)
	if err != nil {
		t.Fatal(err)
	}
	if v := mv.PDF([]float64{0, 0}); math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		t.Fatalf("regularized density invalid: %v", v)
	}
}

func TestMeanVecAndCovariance(t *testing.T) {
	xs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	mu, err := MeanVec(xs)
	if err != nil {
		t.Fatal(err)
	}
	if mu[0] != 3 || mu[1] != 4 {
		t.Fatalf("mean wrong: %v", mu)
	}
	_, cov, err := Covariance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Var of {1,3,5} = 4 (unbiased), covariance = 4 too (perfectly linear).
	if math.Abs(cov.At(0, 0)-4) > 1e-14 || math.Abs(cov.At(0, 1)-4) > 1e-14 {
		t.Fatalf("cov wrong: %+v", cov)
	}
	if _, err := MeanVec(nil); err != ErrTooFewSamples {
		t.Fatal("want ErrTooFewSamples")
	}
	if _, _, err := Covariance(xs[:1]); err != ErrTooFewSamples {
		t.Fatal("want ErrTooFewSamples for n=1")
	}
}

func TestRunningWelford(t *testing.T) {
	var r Running
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range data {
		r.Push(v)
	}
	if r.N() != len(data) {
		t.Fatal("N wrong")
	}
	if math.Abs(r.Mean()-5) > 1e-14 {
		t.Fatalf("mean: %v", r.Mean())
	}
	// Unbiased variance of the data = 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-13 {
		t.Fatalf("var: %v", r.Var())
	}
	se := math.Sqrt(32.0 / 7.0 / 8.0)
	if math.Abs(r.StdErr()-se) > 1e-13 {
		t.Fatalf("stderr: %v", r.StdErr())
	}
	if math.Abs(r.CIHalfWidth(Z99)-Z99*se) > 1e-13 {
		t.Fatal("CI half width wrong")
	}
	if math.Abs(r.RelErr99()-Z99*se/5) > 1e-13 {
		t.Fatal("RelErr99 wrong")
	}
}

func TestRunningZeroMean(t *testing.T) {
	var r Running
	r.Push(0)
	r.Push(0)
	if !math.IsInf(r.RelErr99(), 1) {
		t.Fatal("RelErr99 with zero mean should be +Inf")
	}
	var empty Running
	if empty.Var() != 0 || empty.StdErr() != 0 {
		t.Fatal("empty Running should report zeros")
	}
}

func TestTruncNormSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lo, hi := 1.5, 2.5
	var r Running
	for i := 0; i < 100000; i++ {
		x := TruncNormSample(lo, hi, rng.Float64())
		if x < lo || x > hi {
			t.Fatalf("sample out of interval: %v", x)
		}
		r.Push(x)
	}
	// Analytic mean of truncated standard Normal on [a,b]:
	// (φ(a) − φ(b)) / (Φ(b) − Φ(a)).
	want := (NormPDF(lo) - NormPDF(hi)) / (NormCDF(hi) - NormCDF(lo))
	if math.Abs(r.Mean()-want) > 5e-3 {
		t.Fatalf("truncated mean: got %v want %v", r.Mean(), want)
	}
}

func TestTruncChiSample(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const k = 6
	lo, hi := 3.0, 5.0
	c := Chi{K: k}
	var r Running
	for i := 0; i < 60000; i++ {
		x := TruncChiSample(k, lo, hi, rng.Float64())
		if x < lo || x > hi {
			t.Fatalf("sample out of interval: %v", x)
		}
		r.Push(x)
	}
	// Numeric mean of the truncated Chi via fine trapezoid integration.
	const h = 1e-4
	num, den := 0.0, 0.0
	for x := lo; x < hi; x += h {
		p0, p1 := c.PDF(x), c.PDF(x+h)
		num += 0.5 * (x*p0 + (x+h)*p1) * h
		den += 0.5 * (p0 + p1) * h
	}
	want := num / den
	if math.Abs(r.Mean()-want) > 5e-3 {
		t.Fatalf("truncated chi mean: got %v want %v", r.Mean(), want)
	}
}

// Sampling (r, α) per paper eqs (13)–(15) and mapping through eq (11) must
// reproduce a standard Normal x — the statement of Theorem 1.
func TestTheorem1SphericalMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m = 4
	const n = 150000
	xs := make([][]float64, n)
	chi := Chi{K: m}
	for i := range xs {
		r := chi.Quantile(rng.Float64())
		alpha := make([]float64, m)
		na := 0.0
		for j := range alpha {
			alpha[j] = rng.NormFloat64()
			na += alpha[j] * alpha[j]
		}
		na = math.Sqrt(na)
		x := make([]float64, m)
		for j := range x {
			x[j] = r * alpha[j] / na
		}
		xs[i] = x
	}
	mu, cov, err := Covariance(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		if math.Abs(mu[i]) > 0.02 {
			t.Fatalf("mean[%d] = %v, want 0", i, mu[i])
		}
		for j := 0; j < m; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(cov.At(i, j)-want) > 0.03 {
				t.Fatalf("cov[%d,%d] = %v, want %v", i, j, cov.At(i, j), want)
			}
		}
	}
	// Marginal normality check via a few quantiles of x_0.
	col := make([]float64, n)
	for i := range xs {
		col[i] = xs[i][0]
	}
	for _, p := range []float64{0.1, 0.25, 0.5, 0.9} {
		if math.Abs(empiricalQuantile(col, p)-NormQuantile(p)) > 0.03 {
			t.Fatalf("marginal quantile %v off: %v vs %v",
				p, empiricalQuantile(col, p), NormQuantile(p))
		}
	}
}

func empiricalQuantile(xs []float64, p float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
