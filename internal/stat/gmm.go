package stat

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// GMM is a Gaussian mixture distribution. The paper's §IV-C notes that
// the optimal distortion g^OPT can be approximated by a Gaussian mixture
// instead of a single Normal at the cost of more first-stage samples;
// this type implements that extension, and the two-stage flow can fit it
// from the Gibbs samples (gibbs.FitDistortionGMM). A mixture matters
// exactly where the single Normal breaks: multi-lobe failure regions like
// the dual read-current workload.
type GMM struct {
	Weights    []float64
	Components []*MVNormal
	dim        int
	logW       []float64
}

// NewGMM assembles a mixture from weights (normalized internally) and
// components of equal dimensionality.
func NewGMM(weights []float64, comps []*MVNormal) (*GMM, error) {
	if len(weights) == 0 || len(weights) != len(comps) {
		return nil, errors.New("stat: GMM needs matching non-empty weights and components")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, errors.New("stat: GMM weights must be non-negative")
		}
		sum += w
	}
	if sum <= 0 {
		return nil, errors.New("stat: GMM weights sum to zero")
	}
	dim := comps[0].Dim()
	g := &GMM{dim: dim}
	for i, c := range comps {
		if c.Dim() != dim {
			return nil, errors.New("stat: GMM component dimensions differ")
		}
		w := weights[i] / sum
		//reprolint:ignore floateq drops only components whose weight is exactly 0; any nonzero weight survives
		if w == 0 {
			continue // drop dead components
		}
		g.Weights = append(g.Weights, w)
		g.Components = append(g.Components, c)
		g.logW = append(g.logW, math.Log(w))
	}
	return g, nil
}

// Dim returns the dimensionality.
func (g *GMM) Dim() int { return g.dim }

// LogPDF evaluates the mixture density via log-sum-exp.
func (g *GMM) LogPDF(x []float64) float64 {
	maxv := math.Inf(-1)
	terms := make([]float64, len(g.Components))
	for i, c := range g.Components {
		terms[i] = g.logW[i] + c.LogPDF(x)
		if terms[i] > maxv {
			maxv = terms[i]
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	sum := 0.0
	for _, t := range terms {
		sum += math.Exp(t - maxv)
	}
	return maxv + math.Log(sum)
}

// PDF returns the density at x.
func (g *GMM) PDF(x []float64) float64 { return math.Exp(g.LogPDF(x)) }

// Sample draws one sample: pick a component by weight, then sample it.
func (g *GMM) Sample(rng *rand.Rand) []float64 {
	u := rng.Float64()
	acc := 0.0
	for i, w := range g.Weights {
		acc += w
		if u <= acc {
			return g.Components[i].Sample(rng)
		}
	}
	return g.Components[len(g.Components)-1].Sample(rng)
}

// FitGMM fits a k-component mixture to samples by expectation
// maximization with k-means++-style seeding. Covariances are regularized
// with a trace-scaled jitter so degenerate components cannot collapse.
// With k = 1 it reduces to the plain mean/covariance fit.
func FitGMM(samples [][]float64, k, iters int, rng *rand.Rand) (*GMM, error) {
	n := len(samples)
	if k <= 0 {
		return nil, errors.New("stat: GMM needs k ≥ 1")
	}
	if n < 2*k {
		return nil, errors.New("stat: too few samples for the requested mixture size")
	}
	dim := len(samples[0])

	// Global moments for seeding and regularization.
	gmean, gcov, err := Covariance(samples)
	if err != nil {
		return nil, err
	}
	jitter := 0.0
	for i := 0; i < dim; i++ {
		jitter += gcov.At(i, i)
	}
	jitter = math.Max(jitter/float64(dim)*1e-6, 1e-12)

	if k == 1 {
		mv, err := NewMVNormal(gmean, gcov)
		if err != nil {
			return nil, err
		}
		return NewGMM([]float64{1}, []*MVNormal{mv})
	}

	// k-means++ seeding of the component means.
	means := make([][]float64, 0, k)
	first := samples[rng.Intn(n)]
	means = append(means, linalg.CopyVec(first))
	d2 := make([]float64, n)
	for len(means) < k {
		total := 0.0
		for i, s := range samples {
			best := math.Inf(1)
			for _, m := range means {
				d := sqDist(s, m)
				if d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		//reprolint:ignore floateq squared distances sum to exactly 0 only when every sample equals a chosen mean; k-means++ degenerate case
		if total == 0 {
			// All samples identical to chosen means: duplicate a mean.
			means = append(means, linalg.CopyVec(means[0]))
			continue
		}
		u := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range d2 {
			acc += d
			if u <= acc {
				pick = i
				break
			}
		}
		means = append(means, linalg.CopyVec(samples[pick]))
	}

	weights := make([]float64, k)
	comps := make([]*MVNormal, k)
	for j := 0; j < k; j++ {
		weights[j] = 1 / float64(k)
		cov := gcov.Clone()
		for i := 0; i < dim; i++ {
			cov.Add(i, i, jitter)
		}
		comps[j], err = NewMVNormal(means[j], cov)
		if err != nil {
			return nil, err
		}
	}

	resp := linalg.NewMatrix(n, k)
	for iter := 0; iter < iters; iter++ {
		// E step: responsibilities.
		for i, s := range samples {
			row := resp.Row(i)
			maxv := math.Inf(-1)
			for j := 0; j < k; j++ {
				row[j] = math.Log(weights[j]) + comps[j].LogPDF(s)
				if row[j] > maxv {
					maxv = row[j]
				}
			}
			sum := 0.0
			for j := 0; j < k; j++ {
				row[j] = math.Exp(row[j] - maxv)
				sum += row[j]
			}
			for j := 0; j < k; j++ {
				row[j] /= sum
			}
		}
		// M step: weighted moments.
		for j := 0; j < k; j++ {
			nj := 0.0
			mean := make([]float64, dim)
			for i, s := range samples {
				r := resp.At(i, j)
				nj += r
				for d := 0; d < dim; d++ {
					mean[d] += r * s[d]
				}
			}
			if nj < 1e-8 {
				// Dead component: reseed on a random sample.
				mean = linalg.CopyVec(samples[rng.Intn(n)])
				nj = 1
			} else {
				linalg.Scale(mean, 1/nj)
			}
			cov := linalg.NewMatrix(dim, dim)
			for i, s := range samples {
				r := resp.At(i, j)
				//reprolint:ignore floateq sparsity fast path: skipping exactly-zero responsibilities cannot change the covariance sums
				if r == 0 {
					continue
				}
				for a := 0; a < dim; a++ {
					da := s[a] - mean[a]
					for bIdx := a; bIdx < dim; bIdx++ {
						cov.Add(a, bIdx, r*da*(s[bIdx]-mean[bIdx]))
					}
				}
			}
			for a := 0; a < dim; a++ {
				for bIdx := a; bIdx < dim; bIdx++ {
					v := cov.At(a, bIdx) / nj
					cov.Set(a, bIdx, v)
					cov.Set(bIdx, a, v)
				}
				cov.Add(a, a, jitter)
			}
			weights[j] = nj / float64(n)
			comps[j], err = NewMVNormal(mean, cov)
			if err != nil {
				return nil, err
			}
		}
	}
	return NewGMM(weights, comps)
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
