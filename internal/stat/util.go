package stat

import "math"

func sqrt(v float64) float64 { return math.Sqrt(v) }
func inf() float64           { return math.Inf(1) }

// TruncNormSample draws one sample from a standard Normal truncated to
// [lo, hi] by inverse-transform: u ~ U(Φ(lo), Φ(hi)), x = Φ⁻¹(u). This is
// the 1-D sampling primitive of paper Algorithm 3 for the x_m and α_m
// conditionals. u01 must be uniform on (0, 1).
func TruncNormSample(lo, hi, u01 float64) float64 {
	flo, fhi := NormCDF(lo), NormCDF(hi)
	u := flo + u01*(fhi-flo)
	x := NormQuantile(u)
	return clamp(x, lo, hi)
}

// TruncChiSample draws one sample from a Chi(K) distribution truncated to
// [lo, hi] by inverse-transform, for the radius conditional of the
// spherical Gibbs chain.
func TruncChiSample(k int, lo, hi, u01 float64) float64 {
	c := Chi{K: k}
	flo, fhi := c.CDF(lo), c.CDF(hi)
	u := flo + u01*(fhi-flo)
	x := c.Quantile(u)
	return clamp(x, lo, hi)
}

func clamp(x, lo, hi float64) float64 {
	// Quantile round-off can land an ulp outside the truncation interval;
	// the Gibbs chain requires in-interval samples.
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
