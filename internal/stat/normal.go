package stat

import "math"

const (
	invSqrt2Pi = 0.3989422804014326779399460599343818684758586311649346 // 1/√(2π)
	sqrt2      = 1.4142135623730950488016887242096980785696718753769
)

// NormPDF returns the standard Normal density φ(x).
func NormPDF(x float64) float64 {
	return invSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormLogPDF returns ln φ(x).
func NormLogPDF(x float64) float64 {
	return -0.5*x*x - 0.9189385332046727417803297364056176398613974736378
}

// NormCDF returns the standard Normal CDF Φ(x), accurate in both tails via
// erfc.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/sqrt2)
}

// NormSF returns the survival function 1 − Φ(x), accurate for large x.
func NormSF(x float64) float64 {
	return 0.5 * math.Erfc(x/sqrt2)
}

// NormQuantile returns Φ⁻¹(p) for p in (0, 1). It uses Acklam's rational
// approximation refined by one Halley step against the erfc-based CDF,
// giving ~1e-15 relative accuracy — enough for inverse-transform sampling
// deep in the tails (|x| up to ~8σ), which the Gibbs engine requires.
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0: //reprolint:ignore floateq exact domain boundary: the quantile is -Inf only at exactly 0, NaN for p < 0
			return math.Inf(-1)
		case p == 1: //reprolint:ignore floateq exact domain boundary: the quantile is +Inf only at exactly 1, NaN for p > 1
			return math.Inf(1)
		}
		return math.NaN()
	}
	x := acklam(p)
	// Halley refinement: e = Φ(x) − p, u = e/φ(x),
	// x ← x − u / (1 + x·u/2).
	for i := 0; i < 2; i++ {
		e := NormCDF(x) - p
		u := e / NormPDF(x)
		x -= u / (1 + 0.5*x*u)
	}
	return x
}

// acklam is Peter Acklam's rational approximation to the Normal quantile,
// with relative error < 1.15e-9 before refinement.
func acklam(p float64) float64 {
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Normal is a scalar Normal distribution with location Mu and scale Sigma.
type Normal struct {
	Mu, Sigma float64
}

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 { return NormPDF((x-n.Mu)/n.Sigma) / n.Sigma }

// CDF returns the cumulative probability at x.
func (n Normal) CDF(x float64) float64 { return NormCDF((x - n.Mu) / n.Sigma) }

// Quantile returns the p-quantile.
func (n Normal) Quantile(p float64) float64 { return n.Mu + n.Sigma*NormQuantile(p) }
