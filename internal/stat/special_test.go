package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncGammaPKnown(t *testing.T) {
	// P(1, x) = 1 − e^{−x} (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 30} {
		want := 1 - math.Exp(-x)
		got := RegIncGammaP(1, x)
		if math.Abs(got-want) > 1e-13 {
			t.Fatalf("P(1,%v): got %v want %v", x, got, want)
		}
	}
	// P(1/2, x) = erf(√x).
	for _, x := range []float64{0.01, 0.25, 1, 4, 9} {
		want := math.Erf(math.Sqrt(x))
		got := RegIncGammaP(0.5, x)
		if math.Abs(got-want) > 1e-13 {
			t.Fatalf("P(0.5,%v): got %v want %v", x, got, want)
		}
	}
}

func TestRegIncGammaEdges(t *testing.T) {
	if RegIncGammaP(2, 0) != 0 {
		t.Fatal("P(a,0) != 0")
	}
	if RegIncGammaQ(2, 0) != 1 {
		t.Fatal("Q(a,0) != 1")
	}
	if !math.IsNaN(RegIncGammaP(-1, 1)) || !math.IsNaN(RegIncGammaP(1, -1)) {
		t.Fatal("domain errors should be NaN")
	}
	// Large x: P → 1.
	if v := RegIncGammaP(3, 1e4); math.Abs(v-1) > 1e-14 {
		t.Fatalf("P(3,1e4) = %v", v)
	}
}

// Property: P + Q == 1 across the switch between series and continued
// fraction.
func TestRegIncGammaComplement(t *testing.T) {
	f := func(ai, xi uint8) bool {
		a := 0.1 + float64(ai%50)*0.37
		x := float64(xi%60) * 0.53
		p, q := RegIncGammaP(a, x), RegIncGammaQ(a, x)
		return math.Abs(p+q-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: P(a, ·) is nondecreasing in x.
func TestRegIncGammaMonotone(t *testing.T) {
	for _, a := range []float64{0.3, 0.5, 1, 2.5, 3, 10} {
		prev := -1.0
		for x := 0.0; x < 40; x += 0.25 {
			v := RegIncGammaP(a, x)
			if v < prev-1e-14 {
				t.Fatalf("P(%v,·) not monotone at x=%v: %v < %v", a, x, v, prev)
			}
			prev = v
		}
	}
}

func TestInvRegIncGammaRoundTrip(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2, 3, 5, 17.5} {
		for _, p := range []float64{1e-10, 1e-6, 0.01, 0.3, 0.5, 0.9, 0.999, 1 - 1e-9} {
			x := InvRegIncGammaP(a, p)
			back := RegIncGammaP(a, x)
			if math.Abs(back-p) > 1e-9*math.Max(1, p) && math.Abs(back-p) > 1e-12 {
				t.Fatalf("a=%v p=%v: x=%v back=%v", a, p, x, back)
			}
		}
	}
	if InvRegIncGammaP(2, 0) != 0 {
		t.Fatal("quantile at 0")
	}
	if !math.IsInf(InvRegIncGammaP(2, 1), 1) {
		t.Fatal("quantile at 1")
	}
}

func TestNormPDFCDF(t *testing.T) {
	if math.Abs(NormPDF(0)-invSqrt2Pi) > 1e-16 {
		t.Fatal("φ(0) wrong")
	}
	if math.Abs(NormCDF(0)-0.5) > 1e-16 {
		t.Fatal("Φ(0) wrong")
	}
	// Known values: Φ(1.96) ≈ 0.9750021048517795.
	if math.Abs(NormCDF(1.96)-0.9750021048517795) > 1e-12 {
		t.Fatalf("Φ(1.96) = %v", NormCDF(1.96))
	}
	// Tail accuracy: Φ(−8) = 6.22096057e−16.
	if v := NormCDF(-8); math.Abs(v-6.220960574271786e-16)/6.22e-16 > 1e-9 {
		t.Fatalf("Φ(−8) = %v", v)
	}
	// Symmetry.
	for _, x := range []float64{0.1, 1, 2.5, 5} {
		if math.Abs(NormCDF(x)+NormCDF(-x)-1) > 1e-15 {
			t.Fatalf("Φ(x)+Φ(−x) != 1 at %v", x)
		}
		if math.Abs(NormSF(x)-NormCDF(-x)) > 1e-18 {
			t.Fatalf("SF mismatch at %v", x)
		}
	}
}

func TestNormLogPDF(t *testing.T) {
	for _, x := range []float64{-3, 0, 1.7, 9} {
		if math.Abs(NormLogPDF(x)-math.Log(NormPDF(x))) > 1e-12 {
			t.Fatalf("log pdf mismatch at %v", x)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-15, 1e-10, 1e-6, 0.001, 0.025, 0.5, 0.975, 0.999999, 1 - 1e-12} {
		x := NormQuantile(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-12*math.Max(p, 1e-3) && math.Abs(back-p) > 1e-15 {
			t.Fatalf("p=%v x=%v back=%v", p, x, back)
		}
	}
	if NormQuantile(0.5) != 0 {
		t.Fatalf("median not 0: %v", NormQuantile(0.5))
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("quantile edges wrong")
	}
	if !math.IsNaN(NormQuantile(-0.1)) || !math.IsNaN(NormQuantile(1.1)) {
		t.Fatal("out-of-range p should be NaN")
	}
}

// Property: quantile is the inverse of the CDF over a dense dyadic grid.
func TestNormQuantileInverseProperty(t *testing.T) {
	f := func(u uint16) bool {
		p := (float64(u) + 0.5) / 65536.0
		x := NormQuantile(p)
		return math.Abs(NormCDF(x)-p) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScalarNormal(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	if math.Abs(n.CDF(3)-0.5) > 1e-15 {
		t.Fatal("shifted CDF wrong")
	}
	if math.Abs(n.Quantile(n.CDF(5.5))-5.5) > 1e-10 {
		t.Fatal("shifted quantile roundtrip wrong")
	}
	if math.Abs(n.PDF(3)-NormPDF(0)/2) > 1e-16 {
		t.Fatal("shifted PDF wrong")
	}
}

func TestChiAgainstNormal(t *testing.T) {
	// Chi(1) is a half-Normal: CDF(r) = 2Φ(r) − 1.
	c := Chi{K: 1}
	for _, r := range []float64{0.1, 0.5, 1, 2, 3.5} {
		want := 2*NormCDF(r) - 1
		if math.Abs(c.CDF(r)-want) > 1e-12 {
			t.Fatalf("Chi(1) CDF(%v): got %v want %v", r, c.CDF(r), want)
		}
	}
}

func TestChiKnownValues(t *testing.T) {
	// Chi(2) is Rayleigh(1): CDF(r) = 1 − e^{−r²/2}, mean √(π/2).
	c := Chi{K: 2}
	for _, r := range []float64{0.2, 1, 2, 4} {
		want := 1 - math.Exp(-0.5*r*r)
		if math.Abs(c.CDF(r)-want) > 1e-13 {
			t.Fatalf("Chi(2) CDF(%v): got %v want %v", r, c.CDF(r), want)
		}
	}
	if math.Abs(c.Mean()-math.Sqrt(math.Pi/2)) > 1e-13 {
		t.Fatalf("Chi(2) mean: %v", c.Mean())
	}
	if math.Abs(c.Var()-(2-math.Pi/2)) > 1e-13 {
		t.Fatalf("Chi(2) var: %v", c.Var())
	}
}

func TestChiPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid integral of the PDF matches the CDF for several K.
	for _, k := range []int{1, 2, 3, 6, 12} {
		c := Chi{K: k}
		const steps = 40000
		const h = 4.0 / steps
		sum := 0.0
		prev := c.PDF(0)
		for i := 1; i <= steps; i++ {
			cur := c.PDF(float64(i) * h)
			sum += 0.5 * (prev + cur) * h
			prev = cur
		}
		if math.Abs(sum-c.CDF(4)) > 1e-6 {
			t.Fatalf("K=%d: ∫pdf=%v cdf=%v", k, sum, c.CDF(4))
		}
	}
}

func TestChiQuantileRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 3, 6, 30} {
		c := Chi{K: k}
		for _, p := range []float64{1e-8, 0.01, 0.5, 0.99, 1 - 1e-8} {
			r := c.Quantile(p)
			if math.Abs(c.CDF(r)-p) > 1e-9 {
				t.Fatalf("K=%d p=%v: r=%v cdf=%v", k, p, r, c.CDF(r))
			}
		}
		if c.Quantile(0) != 0 || !math.IsInf(c.Quantile(1), 1) {
			t.Fatalf("K=%d quantile edges wrong", k)
		}
	}
}

func TestChiSFComplement(t *testing.T) {
	c := Chi{K: 6}
	for _, r := range []float64{0.5, 2, 5, 8} {
		if math.Abs(c.CDF(r)+c.SF(r)-1) > 1e-12 {
			t.Fatalf("CDF+SF != 1 at %v", r)
		}
	}
	// Deep tail must stay positive and tiny.
	if sf := c.SF(12); sf <= 0 || sf > 1e-20 {
		t.Fatalf("deep-tail SF suspicious: %v", sf)
	}
}
