// Package variation implements the paper's §II preprocessing: correlated
// jointly-Normal process variations are transformed to the independent
// standard Normal coordinates that every sampler in the library assumes,
// via principal component analysis (eigendecomposition whitening).
//
// A Model holds x_raw ~ N(Mean, Cov); Whiten wraps a metric defined on
// the raw physical variables into an mc.Metric over whitened coordinates
// z ~ N(0, I), with x_raw = Mean + B·z and B = V·√Λ.
package variation

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/mc"
)

// Model is a correlated jointly-Normal variation model.
type Model struct {
	Mean []float64
	Cov  *linalg.Matrix

	basis *linalg.Matrix // B = V·√Λ, whitened-to-raw map
	dim   int
}

// NewModel validates the covariance (symmetric positive semidefinite;
// tiny negative eigenvalues from round-off are clamped) and precomputes
// the PCA basis.
func NewModel(mean []float64, cov *linalg.Matrix) (*Model, error) {
	d := len(mean)
	if cov.Rows != d || cov.Cols != d {
		return nil, fmt.Errorf("variation: mean dim %d vs cov %dx%d", d, cov.Rows, cov.Cols)
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if math.Abs(cov.At(i, j)-cov.At(j, i)) > 1e-9*(1+math.Abs(cov.At(i, j))) {
				return nil, errors.New("variation: covariance is not symmetric")
			}
		}
	}
	vals, vecs := linalg.SymEigen(cov)
	basis := linalg.NewMatrix(d, d)
	for j := 0; j < d; j++ {
		ev := vals[j]
		if ev < -1e-9*math.Abs(vals[0]) {
			return nil, fmt.Errorf("variation: covariance has negative eigenvalue %v", ev)
		}
		if ev < 0 {
			ev = 0
		}
		s := math.Sqrt(ev)
		for i := 0; i < d; i++ {
			basis.Set(i, j, vecs.At(i, j)*s)
		}
	}
	return &Model{Mean: linalg.CopyVec(mean), Cov: cov.Clone(), basis: basis, dim: d}, nil
}

// Dim returns the number of variation coordinates.
func (m *Model) Dim() int { return m.dim }

// ToRaw maps whitened coordinates z ~ N(0, I) to the raw physical
// variables x = Mean + B·z.
func (m *Model) ToRaw(z []float64) []float64 {
	if len(z) != m.dim {
		panic("variation: wrong whitened dimensionality")
	}
	x := m.basis.MulVec(z)
	for i := range x {
		x[i] += m.Mean[i]
	}
	return x
}

// Whiten wraps a metric over the raw variables into an mc.Metric over
// whitened standard Normal coordinates.
func (m *Model) Whiten(raw func(x []float64) float64) mc.Metric {
	return mc.MetricFunc{M: m.dim, F: func(z []float64) float64 {
		return raw(m.ToRaw(z))
	}}
}

// Equicorrelated returns the covariance σ²·((1−ρ)·I + ρ·J): a global
// (fully correlated) process shift of weight ρ on top of independent
// local mismatch — the standard global+local decomposition of threshold
// variation. ρ must lie in [0, 1).
func Equicorrelated(dim int, sigma, rho float64) (*linalg.Matrix, error) {
	if rho < 0 || rho >= 1 {
		return nil, errors.New("variation: rho must be in [0, 1)")
	}
	cov := linalg.NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			v := sigma * sigma * rho
			if i == j {
				v = sigma * sigma
			}
			cov.Set(i, j, v)
		}
	}
	return cov, nil
}

// SpatialExponential returns the covariance of devices placed at the
// given 1-D positions with an exponential correlation profile:
// Cov(i,j) = σ²·exp(−|p_i − p_j|/length).
func SpatialExponential(positions []float64, sigma, length float64) (*linalg.Matrix, error) {
	if length <= 0 {
		return nil, errors.New("variation: correlation length must be positive")
	}
	d := len(positions)
	cov := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			cov.Set(i, j, sigma*sigma*math.Exp(-math.Abs(positions[i]-positions[j])/length))
		}
	}
	return cov, nil
}
