package variation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/stat"
	"repro/internal/surrogate"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel([]float64{0}, linalg.Identity(2)); err == nil {
		t.Fatal("shape mismatch should error")
	}
	bad := linalg.NewMatrixFrom([][]float64{{1, 0.5}, {0.2, 1}})
	if _, err := NewModel([]float64{0, 0}, bad); err == nil {
		t.Fatal("asymmetric covariance should error")
	}
	indef := linalg.NewMatrixFrom([][]float64{{1, 2}, {2, 1}})
	if _, err := NewModel([]float64{0, 0}, indef); err == nil {
		t.Fatal("indefinite covariance should error")
	}
}

func TestToRawReproducesMoments(t *testing.T) {
	cov := linalg.NewMatrixFrom([][]float64{{4, 1.2, 0}, {1.2, 2, -0.5}, {0, -0.5, 1}})
	mean := []float64{1, -2, 0.5}
	m, err := NewModel(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 150000
	xs := make([][]float64, n)
	z := make([]float64, 3)
	for i := range xs {
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		xs[i] = m.ToRaw(z)
	}
	mu, c, err := stat.Covariance(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mean {
		if math.Abs(mu[i]-mean[i]) > 0.03 {
			t.Fatalf("mean[%d] = %v", i, mu[i])
		}
	}
	if c.MaxAbsDiff(cov) > 0.08 {
		t.Fatalf("raw covariance off: %+v", c)
	}
}

func TestWhitenPreservesFailureProbability(t *testing.T) {
	// A raw-space linear failure with correlated variables has the
	// closed form Pf = Φ(−(b − wᵀμ)/√(wᵀΣw)); the whitened metric must
	// reproduce it through plain MC.
	cov := linalg.NewMatrixFrom([][]float64{{2, 0.8}, {0.8, 1}})
	mean := []float64{0.5, -0.2}
	m, err := NewModel(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 2}
	b := 4.0
	metric := m.Whiten(func(x []float64) float64 {
		return b - (w[0]*x[0] + w[1]*x[1])
	})
	// wᵀΣw = 2 + 2·0.8·2 + 4 = 9.2; wᵀμ = 0.1.
	exact := stat.NormSF((b - 0.1) / math.Sqrt(9.2))
	rng := rand.New(rand.NewSource(2))
	res, err := mc.PlainMC(metric, 300000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	se := math.Sqrt(exact * (1 - exact) / 300000)
	if math.Abs(res.Pf-exact) > 5*se {
		t.Fatalf("whitened MC %v vs exact %v", res.Pf, exact)
	}
}

func TestEquicorrelated(t *testing.T) {
	cov, err := Equicorrelated(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cov.At(0, 0) != 4 || cov.At(0, 1) != 2 {
		t.Fatalf("equicorrelated entries wrong: %v %v", cov.At(0, 0), cov.At(0, 1))
	}
	if _, err := Equicorrelated(3, 1, 1.0); err == nil {
		t.Fatal("rho=1 should error")
	}
	if _, err := Equicorrelated(3, 1, -0.1); err == nil {
		t.Fatal("negative rho should error")
	}
	// Must be a valid model (PSD).
	if _, err := NewModel(make([]float64, 4), cov); err != nil {
		t.Fatal(err)
	}
}

func TestSpatialExponential(t *testing.T) {
	pos := []float64{0, 1, 3}
	cov, err := SpatialExponential(pos, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want01 := 1.5 * 1.5 * math.Exp(-0.5)
	if math.Abs(cov.At(0, 1)-want01) > 1e-12 {
		t.Fatalf("cov(0,1) = %v want %v", cov.At(0, 1), want01)
	}
	if _, err := SpatialExponential(pos, 1, 0); err == nil {
		t.Fatal("zero length should error")
	}
	if _, err := NewModel(make([]float64, 3), cov); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: a correlated global+local variation model pushed through
// the whitening and the G-S estimator must agree with brute-force MC on
// a correlated region of moderate probability.
func TestWhitenedRegionMCAgreement(t *testing.T) {
	cov, err := Equicorrelated(2, 1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel([]float64{0, 0}, cov)
	if err != nil {
		t.Fatal(err)
	}
	shell := &surrogate.Shell{M: 2, R: 3}
	metric := m.Whiten(func(x []float64) float64 { return shell.Value(x) })
	rng := rand.New(rand.NewSource(3))
	res, err := mc.PlainMC(metric, 400000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Correlation concentrates mass along the diagonal, so the raw-space
	// shell exit probability differs from the isotropic one; just verify
	// it is sane and reproducible against a second estimator: importance
	// sampling with an identity distortion equals plain MC.
	g := stat.StandardMVNormal(2)
	res2, err := mc.ImportanceSample(mc.NewEvaluator(metric, 0), g, 400000, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pf <= 0 || math.Abs(res.Pf-res2.Pf)/res.Pf > 0.1 {
		t.Fatalf("estimators disagree: %v vs %v", res.Pf, res2.Pf)
	}
}
