package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro"
)

// Handler builds the estimation service's HTTP/JSON API on a Go 1.22
// pattern mux:
//
//	POST   /v1/jobs             submit a job (Request body); ?wait=1 blocks
//	GET    /v1/jobs             list jobs (?state=, ?limit=, ?offset=; JobList envelope)
//	GET    /v1/jobs/{id}        one job's snapshot (live progress while running)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/metrics  the job's telemetry (Prometheus text)
//	GET    /v1/jobs/{id}/report   the finished job's statistical run-report (JSON)
//	GET    /v1/jobs/{id}/trace    the job's span trace (Chrome trace JSON; ?format=jsonl for span JSONL)
//	GET    /v1/jobs/{id}/events   the job's live event stream (SSE; see sse.go)
//	GET    /v1/events           the server-global event stream (SSE)
//	GET    /v1/methods          the estimator registry
//	GET    /v1/workloads        the workload registry
//	GET    /metrics             the server-wide telemetry (Prometheus text)
//	GET    /healthz             liveness probe
//
// Submissions return 202 with the job snapshot; with ?wait=1 the call
// blocks until the job is terminal and returns 200 with the final
// snapshot — and if the client disconnects while waiting, the job is
// cancelled (the submission's context is the job's lifeline in wait
// mode). An Idempotency-Key request header makes the submission
// at-most-once: a repeat with the same key returns the original job
// (200, with an Idempotent-Replay: true response header), a reuse with
// a different body 409. A result-cache hit likewise returns a job that
// is already done, marked "cached".
//
// Every non-2xx response is an RFC 9457 application/problem+json
// document: a full queue 429, a draining server 503, an unknown
// workload/method or invalid options 400 with the per-field problem
// list in "errors", a distribute request without workers enabled 501.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeProblem(w, badRequest(err))
			return
		}
		job, replay, err := m.SubmitIdempotent(req, r.Header.Get("Idempotency-Key"))
		if err != nil {
			writeProblem(w, err)
			return
		}
		if replay {
			w.Header().Set("Idempotent-Replay", "true")
			writeJSON(w, http.StatusOK, job.Snapshot())
			return
		}
		if r.URL.Query().Get("wait") == "" {
			writeJSON(w, http.StatusAccepted, job.Snapshot())
			return
		}
		// Wait mode: the client's connection is the job's lifeline.
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, job.Snapshot())
		case <-r.Context().Done():
			m.Cancel(job.ID())
			<-job.Done()
			// The client is gone; this write is best-effort.
			writeJSON(w, statusRequestCancelled, job.Snapshot())
		}
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		state := State(q.Get("state"))
		switch state {
		case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		default:
			writeProblem(w, badRequest(fmt.Errorf("jobs: unknown state filter %q", state)))
			return
		}
		limit, err := intParam(q.Get("limit"), 100, maxPageSize)
		if err != nil {
			writeProblem(w, badRequest(err))
			return
		}
		offset, err := intParam(q.Get("offset"), 0, math.MaxInt)
		if err != nil {
			writeProblem(w, badRequest(err))
			return
		}
		writeJSON(w, http.StatusOK, m.ListPage(state, limit, offset))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Snapshot())
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job.Snapshot())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		job.Telemetry().MetricsHandler().ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		rep := job.Report()
		if rep == nil {
			writeError(w, http.StatusConflict, errors.New("jobs: run-report is available once the job is done"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rep.WriteJSON(w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		trace := job.Telemetry().TraceData()
		if trace == nil {
			writeError(w, http.StatusNotFound, errors.New("jobs: no trace recorded for this job"))
			return
		}
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			trace.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChromeTrace(w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", m.handleJobEvents)
	mux.HandleFunc("GET /v1/events", m.handleGlobalEvents)
	mux.HandleFunc("GET /v1/methods", func(w http.ResponseWriter, r *http.Request) {
		type method struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		}
		out := make([]method, 0, len(repro.AllMethods()))
		for _, mth := range repro.AllMethods() {
			out = append(out, method{Name: mth.String(), Description: mth.Describe()})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		type workload struct {
			Name        string `json:"name"`
			Description string `json:"description"`
			Dim         int    `json:"dim"`
		}
		ws := repro.Workloads()
		out := make([]workload, 0, len(ws))
		for _, wl := range ws {
			out = append(out, workload{Name: wl.Name, Description: wl.Description, Dim: wl.Dim})
		}
		writeJSON(w, http.StatusOK, out)
	})
	if m.cfg.Registry != nil {
		mux.Handle("GET /metrics", m.cfg.Registry.MetricsHandler())
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// statusRequestCancelled is the non-standard 499 nginx popularized for
// "client closed request" — the best fit for a wait-mode submission
// whose client hung up (the write rarely reaches anyone).
const statusRequestCancelled = 499

// maxPageSize caps the job-list window.
const maxPageSize = 1000

// intParam parses a non-negative integer query parameter, clamped to
// limit; empty selects def.
func intParam(s string, def, limit int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("jobs: bad query parameter %q (want a non-negative integer)", s)
	}
	return min(v, limit), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError reports a handler-local error as a problem document with
// an explicit status (errors carrying a sentinel go through
// writeProblem directly and classify themselves).
func writeError(w http.ResponseWriter, status int, err error) {
	writeProblem(w, &Problem{
		Type:   ProblemType + statusSlug(status),
		Title:  http.StatusText(status),
		Status: status,
		Detail: err.Error(),
	})
}

func statusSlug(status int) string {
	switch status {
	case http.StatusNotFound:
		return "not-found"
	case http.StatusConflict:
		return "conflict"
	default:
		return "internal"
	}
}
