package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime/debug"
	"sync"

	"repro"
)

// Content-addressed result cache: estimation runs are deterministic
// functions of (code version, workload, canonical options, seed), so a
// completed Result can be replayed for any later request with the same
// key — zero new simulations. The key deliberately includes the fields
// that select a different sequential engine (Workers==1 MC, traced MC)
// or execution path (Distribute), so a hit can never serve bits the
// requested configuration would not itself have produced; it excludes
// pure runtime knobs (TimeoutSeconds).

// cacheSchema versions the key derivation itself.
const cacheSchema = "v1"

// moduleVersion pins cache keys to the running build, so an upgraded
// binary never replays results computed by different code.
var moduleVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		v := bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v += "+" + s.Value
			}
		}
		return v
	}
	return "unknown"
}()

// cacheKey derives the content address of a request's result.
func cacheKey(req Request) string {
	o := req.Options().Canonical()
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s|k=%d|n=%d|target=%g|seed=%d|trace=%d|workers=%d|mix=%d|quad=%t|dist=%t",
		cacheSchema, moduleVersion, req.Workload, o.Method,
		o.K, o.N, o.Target, o.Seed, o.TraceEvery, o.Workers, o.Mixture, o.Quadratic, req.Distribute)
	return hex.EncodeToString(h.Sum(nil))
}

// resultCache is a bounded FIFO map of completed results. Entries are
// immutable *repro.Result values shared by reference — every consumer
// treats a finished Result as read-only.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order []string
	m     map[string]*repro.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{cap: capacity, m: make(map[string]*repro.Result, capacity)}
}

// get returns the cached result for key, or nil. Nil-receiver safe.
func (c *resultCache) get(key string) *repro.Result {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key]
}

// put stores res under key, evicting the oldest entry at capacity.
// Nil-receiver safe; a key is only written once.
func (c *resultCache) put(key string, res *repro.Result) {
	if c == nil || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	if len(c.order) >= c.cap {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	c.m[key] = res
	c.order = append(c.order, key)
}

// len reports the number of cached results. Nil-receiver safe.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
