package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

// postJobFull submits with optional headers and returns the raw
// response (callers close the body).
func postJobFull(t *testing.T, srv *httptest.Server, body string, headers map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs?wait=1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSnap(t *testing.T, resp *http.Response) Snapshot {
	t.Helper()
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// An Idempotency-Key makes submission at-most-once: the duplicate
// returns the original job with the replay header and runs nothing new;
// reusing the key with a different body is a 409 conflict problem.
func TestIdempotencyKey(t *testing.T) {
	m, srv := newTestServer(t, Config{})
	body := `{"workload":"lin","method":"g-s","seed":9,"k":200,"n":1000}`
	hdr := map[string]string{"Idempotency-Key": "k-1"}

	first := postJobFull(t, srv, body, hdr)
	if first.StatusCode != http.StatusOK || first.Header.Get("Idempotent-Replay") != "" {
		t.Fatalf("first submit: status %d, replay %q", first.StatusCode, first.Header.Get("Idempotent-Replay"))
	}
	s1 := decodeSnap(t, first)

	second := postJobFull(t, srv, body, hdr)
	if second.StatusCode != http.StatusOK || second.Header.Get("Idempotent-Replay") != "true" {
		t.Fatalf("replay: status %d, replay header %q", second.StatusCode, second.Header.Get("Idempotent-Replay"))
	}
	s2 := decodeSnap(t, second)
	if s2.ID != s1.ID {
		t.Fatalf("replay returned a different job: %s vs %s", s2.ID, s1.ID)
	}
	if got := len(m.List()); got != 1 {
		t.Fatalf("replay created a job: %d tracked", got)
	}

	conflict := postJobFull(t, srv, `{"workload":"lin","seed":10}`, hdr)
	p := decodeProblem(t, conflict)
	if conflict.StatusCode != http.StatusConflict || p.Type != ProblemType+"idempotency-conflict" {
		t.Fatalf("conflict: status %d, type %s", conflict.StatusCode, p.Type)
	}
}

func decodeProblem(t *testing.T, resp *http.Response) *Problem {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/problem+json" {
		t.Fatalf("error content-type %q", ct)
	}
	var p Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return &p
}

// Every non-2xx response is an RFC 9457 problem document; validation
// failures itemize the offending fields.
func TestProblemDocuments(t *testing.T) {
	_, srv := newTestServer(t, Config{})

	resp := postJobFull(t, srv, `{"workload":"lin","k":-1,"n":-2}`, nil)
	p := decodeProblem(t, resp)
	if resp.StatusCode != http.StatusBadRequest || p.Type != ProblemType+"invalid-request" {
		t.Fatalf("validation: status %d, type %s", resp.StatusCode, p.Type)
	}
	if len(p.Errors) != 2 {
		t.Fatalf("want per-field errors for K and N, got %q", p.Errors)
	}
	if p.Status != http.StatusBadRequest || p.Title == "" {
		t.Fatalf("incomplete problem: %+v", p)
	}

	get, err := http.Get(srv.URL + "/v1/jobs/zzz")
	if err != nil {
		t.Fatal(err)
	}
	p = decodeProblem(t, get)
	if get.StatusCode != http.StatusNotFound || p.Type != ProblemType+"not-found" {
		t.Fatalf("not-found: status %d, type %s", get.StatusCode, p.Type)
	}

	dist := postJobFull(t, srv, `{"workload":"lin","distribute":true}`, nil)
	p = decodeProblem(t, dist)
	if dist.StatusCode != http.StatusNotImplemented || p.Type != ProblemType+"distribution-disabled" {
		t.Fatalf("distribute without workers: status %d, type %s", dist.StatusCode, p.Type)
	}
}

// The job list is a paginated envelope with a state filter.
func TestListPagination(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		resp := postJobFull(t, srv, `{"workload":"lin","seed":`+string(rune('0'+i))+`,"k":100,"n":500}`, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	getList := func(query string) JobList {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: status %d", query, resp.StatusCode)
		}
		var jl JobList
		if err := json.NewDecoder(resp.Body).Decode(&jl); err != nil {
			t.Fatal(err)
		}
		return jl
	}
	all := getList("")
	if all.Total != 5 || len(all.Jobs) != 5 || all.NextOffset != nil {
		t.Fatalf("full list: %+v", all)
	}
	page := getList("?limit=2&offset=2")
	if page.Total != 5 || len(page.Jobs) != 2 || page.NextOffset == nil || *page.NextOffset != 4 {
		t.Fatalf("window: %+v", page)
	}
	if page.Jobs[0].ID != all.Jobs[2].ID {
		t.Fatalf("offset ignored: %s vs %s", page.Jobs[0].ID, all.Jobs[2].ID)
	}
	done := getList("?state=done")
	if done.Total != 5 {
		t.Fatalf("state filter: %+v", done)
	}
	if none := getList("?state=running"); none.Total != 0 || len(none.Jobs) != 0 {
		t.Fatalf("empty filter: %+v", none)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	if p := decodeProblem(t, resp); resp.StatusCode != http.StatusBadRequest || p.Type != ProblemType+"invalid-request" {
		t.Fatalf("bogus state: status %d, type %s", resp.StatusCode, p.Type)
	}
}

// The content-addressed cache replays an identical completed run with
// zero new simulations and an identical result, while a different seed
// misses.
func TestResultCache(t *testing.T) {
	m, srv := newTestServer(t, Config{CacheSize: 8})
	body := `{"workload":"lin","method":"g-s","seed":4,"k":200,"n":1000}`

	first := decodeSnap(t, postJobFull(t, srv, body, nil))
	if first.State != StateDone || first.Cached {
		t.Fatalf("first run: %+v", first)
	}

	second := decodeSnap(t, postJobFull(t, srv, body, nil))
	if second.State != StateDone || !second.Cached || second.ID == first.ID {
		t.Fatalf("cache hit not marked: %+v", second)
	}
	b1, _ := json.Marshal(first.Result)
	b2, _ := json.Marshal(second.Result)
	if string(b1) != string(b2) {
		t.Fatalf("cached result differs:\n%s\n%s", b2, b1)
	}
	if second.Sims != first.Result.TotalSims {
		t.Fatalf("cached snapshot sims %d, want replayed cost %d", second.Sims, first.Result.TotalSims)
	}
	// Zero new simulations: the cached job's own counter never moved.
	job, err := m.Get(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.counter.Count() != 0 {
		t.Fatalf("cache hit simulated %d samples", job.counter.Count())
	}
	if m.cache.len() != 1 {
		t.Fatalf("cache size %d", m.cache.len())
	}

	miss := decodeSnap(t, postJobFull(t, srv, `{"workload":"lin","method":"g-s","seed":5,"k":200,"n":1000}`, nil))
	if miss.Cached {
		t.Fatal("different seed served from cache")
	}
}

// Distribute submissions are validated up front: no distributor is 501
// material, unshardable options reject before anything queues.
func TestDistributeValidation(t *testing.T) {
	drainNow := func(m *Manager) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		m.Drain(ctx)
	}
	m := NewManager(Config{Resolve: testResolve})
	defer drainNow(m)
	if _, err := m.Submit(Request{Workload: "lin", Distribute: true}); !errors.Is(err, ErrDistributionDisabled) {
		t.Fatalf("distribute without distributor: %v", err)
	}
	m2 := NewManager(Config{Resolve: testResolve, Distributor: func(ctx context.Context, job *Job) (*repro.Result, error) {
		panic("unused")
	}})
	defer drainNow(m2)
	if _, err := m2.Submit(Request{Workload: "lin", Distribute: true, Target: 0.5}); !errors.Is(err, repro.ErrNotShardable) {
		t.Fatalf("unshardable distribute: %v", err)
	}
}
