package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/surrogate"
	"repro/internal/telemetry"
)

// spinMetric burns CPU per simulation so jobs stay running long enough
// to observe and cancel.
type spinMetric struct {
	m    repro.Metric
	spin int
}

func (s *spinMetric) Dim() int { return s.m.Dim() }
func (s *spinMetric) Value(x []float64) float64 {
	v := 1.0
	for i := 0; i < s.spin; i++ {
		v = math.Sqrt(v + float64(i))
	}
	if v < 0 {
		panic("unreachable")
	}
	return s.m.Value(x)
}

// testResolve injects synthetic workloads: "lin" is fast and analytic,
// "slow" runs long enough to cancel.
func testResolve(name string) (repro.Metric, error) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 4.5}
	switch name {
	case "lin":
		return lin, nil
	case "slow":
		return &spinMetric{m: lin, spin: 2000}, nil
	}
	return nil, fmt.Errorf("test: unknown workload %q", name)
}

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.Resolve == nil {
		cfg.Resolve = testResolve
	}
	m := NewManager(cfg)
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		m.Drain(ctx)
	})
	return m, srv
}

func postJob(t *testing.T, srv *httptest.Server, body string, wantStatus int) Snapshot {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST /v1/jobs: status %d, want %d: %s", resp.StatusCode, wantStatus, buf.String())
	}
	var snap Snapshot
	if wantStatus < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return snap
}

func getSnapshot(t *testing.T, srv *httptest.Server, id string) Snapshot {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func waitTerminal(t *testing.T, srv *httptest.Server, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		snap := getSnapshot(t, srv, id)
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return Snapshot{}
}

// Submit → progress → result, and the result matches a direct library
// call bit-for-bit (the server adds observation, not perturbation).
func TestJobLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{Registry: telemetry.New()})
	snap := postJob(t, srv, `{"workload":"lin","method":"g-s","seed":5,"k":200,"n":2000}`, http.StatusAccepted)
	if snap.ID == "" || snap.State.Terminal() {
		t.Fatalf("bad submit snapshot: %+v", snap)
	}
	final := waitTerminal(t, srv, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}
	if final.Result == nil || final.Sims <= 0 || final.Result.TotalSims <= 0 {
		t.Fatalf("missing result/cost: %+v", final)
	}

	metric, _ := testResolve("lin")
	direct, err := repro.Estimate(metric, repro.Options{Method: repro.GS, Seed: 5, K: 200, N: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.Pf != direct.Pf || final.Result.TotalSims != direct.TotalSims {
		t.Fatalf("server Pf=%v sims=%d, direct Pf=%v sims=%d",
			final.Result.Pf, final.Result.TotalSims, direct.Pf, direct.TotalSims)
	}

	// Introspection and metrics endpoints.
	for _, path := range []string{"/v1/jobs", "/v1/methods", "/v1/workloads", "/metrics", "/healthz", "/v1/jobs/" + snap.ID + "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// Submit → cancel: the job goes terminal promptly with its partial cost.
func TestJobCancel(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304,"workers":2}`, http.StatusAccepted)

	// Wait for it to actually start consuming budget.
	deadline := time.Now().Add(30 * time.Second)
	for getSnapshot(t, srv, snap.ID).Sims == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+snap.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	final := waitTerminal(t, srv, snap.ID)
	if final.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	if final.Sims <= 0 {
		t.Fatal("cancelled job must report partial cost")
	}
	if final.Result != nil {
		t.Fatal("cancelled job must not carry a result")
	}
}

// A full queue rejects with 429, bad requests with 400, unknown IDs 404.
func TestQueueLimitsAndValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{QueueSize: 1, Executors: 1})
	// Occupy the executor and the single queue slot.
	running := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304}`, http.StatusAccepted)
	deadline := time.Now().Add(30 * time.Second)
	for getSnapshot(t, srv, running.ID).State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	postJob(t, srv, `{"workload":"slow","method":"mc","seed":2,"n":4194304}`, http.StatusAccepted)
	postJob(t, srv, `{"workload":"slow","method":"mc","seed":3,"n":4194304}`, http.StatusTooManyRequests)

	postJob(t, srv, `{"workload":"nope"}`, http.StatusBadRequest)
	postJob(t, srv, `{"workload":"lin","method":"warp-drive"}`, http.StatusBadRequest)
	postJob(t, srv, `{"workload":"lin","k":-4}`, http.StatusBadRequest)
	postJob(t, srv, `{"workload":"lin","unknown_field":1}`, http.StatusBadRequest)

	resp, err := http.Get(srv.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp.StatusCode)
	}
}

// ?wait=1 blocks until the job is terminal and returns the final state.
func TestSubmitWait(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"workload":"lin","method":"g-s","seed":3,"k":200,"n":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || snap.Result == nil {
		t.Fatalf("wait submit: %+v", snap)
	}
}

// In wait mode the client connection is the job's lifeline: a client
// disconnect cancels the job.
func TestSubmitWaitClientDisconnect(t *testing.T) {
	m, srv := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"workload":"slow","method":"mc","seed":1,"n":4194304,"workers":2}`))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait for the job to appear and start, then hang up.
	var job *Job
	deadline := time.Now().Add(30 * time.Second)
	for job == nil && time.Now().Before(deadline) {
		if l := m.List(); len(l) > 0 && l[0].Sims > 0 {
			job, _ = m.Get(l[0].ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job == nil {
		t.Fatal("job never started")
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected client should see an error")
	}
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job not cancelled after client disconnect")
	}
	if !errors.Is(job.Err(), context.Canceled) {
		t.Fatalf("job error %v, want context.Canceled", job.Err())
	}
}

// A per-job deadline fails the job with DeadlineExceeded.
func TestJobDeadline(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304,"timeout_seconds":0.05}`, http.StatusAccepted)
	final := waitTerminal(t, srv, snap.ID)
	if final.State != StateFailed {
		t.Fatalf("state %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Fatalf("error %q, want deadline exceeded", final.Error)
	}
	if final.Sims <= 0 {
		t.Fatal("deadline abort must report partial cost")
	}
}

// Drain: rejects new work, finishes what fits the grace period, cancels
// the rest.
func TestDrain(t *testing.T) {
	m := NewManager(Config{Resolve: testResolve})
	job, err := m.Submit(Request{Workload: "slow", Method: "mc", N: 1 << 22, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.Snapshot().Sims == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: %v, want DeadlineExceeded (job outlives grace period)", err)
	}
	if s := job.Snapshot().State; s != StateCancelled {
		t.Fatalf("job state %s after forced drain", s)
	}
	if _, err := m.Submit(Request{Workload: "lin"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
}

// A graceful drain with no running work returns nil immediately.
func TestDrainIdle(t *testing.T) {
	m := NewManager(Config{Resolve: testResolve})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
}

// The report endpoint serves the finished job's statistical run-report;
// the trace endpoint serves the span tree in both formats.
func TestJobReportAndTrace(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	snap := postJob(t, srv, `{"workload":"lin","method":"g-s","seed":6,"k":200,"n":2000}`, http.StatusAccepted)

	// Until the job is done the report is a 409, never a half-report.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		t.Fatalf("report while running: status %d", resp.StatusCode)
	}

	final := waitTerminal(t, srv, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	var rep struct {
		Method    string   `json:"method"`
		RHat      *float64 `json:"rhat"`
		WeightESS float64  `json:"weight_ess"`
		TotalSims int64    `json:"total_sims"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Method != "g-s" || rep.RHat == nil || rep.WeightESS <= 0 || rep.TotalSims <= 0 {
		t.Fatalf("bad report: %+v", rep)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"estimate", "stage1", "stage2"} {
		if !names[want] {
			t.Fatalf("trace missing %q span; have %v", want, names)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("span JSONL has %d lines, want ≥ 3", len(lines))
	}
	for _, line := range lines {
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
	}

	// Unknown jobs are 404 on both endpoints.
	for _, path := range []string{"/v1/jobs/nope/report", "/v1/jobs/nope/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
