// Package jobs is the estimation-job subsystem behind cmd/sramserverd: a
// bounded queue of failure-rate estimation runs, a fixed pool of
// executors, and per-job cancellation built on repro.EstimateContext.
//
// Every job runs under its own context.Context derived from the
// manager's base context, so a job dies for exactly three reasons: its
// own DELETE/cancel, its per-job deadline, or a manager drain. While a
// job runs, its live progress (simulations consumed, running Pf and 99%
// relative error) is read from the job's private telemetry registry and
// its simulation counter — the estimators publish between evaluation
// chunks, so progress is a snapshot at chunk granularity, never a lock
// on the hot path.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/mc"
	"repro/internal/obslog"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Queue and lifecycle errors. HTTP handlers map these to status codes;
// test with errors.Is.
var (
	// ErrQueueFull is reported by Submit when the bounded queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining is reported by Submit after Drain began (HTTP 503).
	ErrDraining = errors.New("jobs: manager draining")
	// ErrNotFound is reported by Get and Cancel for unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrIdempotencyConflict is reported by SubmitIdempotent when a key
	// is reused with a different request body (HTTP 409).
	ErrIdempotencyConflict = errors.New("jobs: idempotency key reused with a different request")
	// ErrDistributionDisabled is reported by Submit for a distribute
	// request on a manager with no Distributor configured (HTTP 501).
	ErrDistributionDisabled = errors.New("jobs: distributed execution is not enabled")
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. A job moves queued → running → one of the three
// terminal states; a cancel while still queued goes straight to
// StateCancelled without running.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request is one estimation job as submitted over the API. The zero
// value of every tuning field selects the library default, exactly as
// the corresponding repro.Options field does.
type Request struct {
	// Workload names a registered workload (repro.Workloads).
	Workload string `json:"workload"`
	// Method names the estimator (repro.AllMethods); empty selects the
	// library default (g-s).
	Method string `json:"method,omitempty"`
	// K, N, Target, Seed, TraceEvery, Workers, Mixture and Quadratic
	// mirror the repro.Options fields of the same names.
	K          int     `json:"k,omitempty"`
	N          int     `json:"n,omitempty"`
	Target     float64 `json:"target,omitempty"`
	Seed       int64   `json:"seed"`
	TraceEvery int     `json:"trace_every,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Mixture    int     `json:"mixture,omitempty"`
	Quadratic  bool    `json:"quadratic,omitempty"`
	// TimeoutSeconds, when positive, caps the job's wall-clock run time
	// (overriding the server-wide default); the job fails with
	// context.DeadlineExceeded when it expires.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Distribute runs the job sharded across registered worker nodes
	// instead of in-process. Requires a manager with a Distributor (the
	// dist coordinator) and options repro.ShardPlan accepts; the result
	// is bit-identical to an in-process run either way.
	Distribute bool `json:"distribute,omitempty"`
}

// Options converts the request's tuning fields to repro.Options.
func (r Request) Options() repro.Options {
	return repro.Options{
		Method: repro.Method(r.Method), K: r.K, N: r.N, Target: r.Target,
		Seed: r.Seed, TraceEvery: r.TraceEvery, Workers: r.Workers,
		Mixture: r.Mixture, Quadratic: r.Quadratic,
	}
}

// Progress is a live snapshot of a running job, read from the
// estimator's chunk-boundary telemetry gauges: the second-stage running
// estimate plus the throughput numbers ("progress" scope) the stage
// publishes alongside it. SimsPerSec and ETASeconds come from the same
// estimator that feeds the SSE progress events and the CLI -stats
// footer, so every surface reports one consistent rate.
type Progress struct {
	// Stage2N is the number of second-stage samples consumed so far.
	Stage2N int `json:"stage2_n"`
	// Pf and RelErr99 are the running estimate and its 99% relative
	// error; RelErr99 is null until the estimate is non-zero.
	Pf       float64  `json:"pf"`
	RelErr99 *float64 `json:"rel_err99"`
	// SimsPerSec is the measured sampling throughput of the live stage;
	// ETASeconds is the finite remaining-work estimate derived from it.
	SimsPerSec float64 `json:"sims_per_sec,omitempty"`
	ETASeconds float64 `json:"eta_seconds,omitempty"`
}

// Result is the wire form of repro.Result: scalar fields only — traces,
// Gibbs samples and distortion vectors stay server-side (the per-job
// metrics endpoint exposes the run's telemetry instead).
type Result struct {
	Pf         float64  `json:"pf"`
	StdErr     float64  `json:"std_err"`
	RelErr99   *float64 `json:"rel_err99"`
	N          int      `json:"n"`
	Failures   int      `json:"failures"`
	WeightESS  float64  `json:"weight_ess"`
	Stage1Sims int64    `json:"stage1_sims"`
	Stage2Sims int64    `json:"stage2_sims"`
	TotalSims  int64    `json:"total_sims"`
}

// Snapshot is a point-in-time view of a job, safe to serialize.
type Snapshot struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Workload string `json:"workload"`
	Method   string `json:"method"`
	Seed     int64  `json:"seed"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Sims is the live count of transistor-level simulations consumed,
	// including first-stage and Gibbs-chain probes.
	Sims int64 `json:"sims"`
	// Progress is present while the job runs and a stage has started
	// publishing.
	Progress *Progress `json:"progress,omitempty"`
	// Health lists the watchdog alerts fired so far (absent while
	// healthy or when the event bus is disabled).
	Health []telemetry.Alert `json:"health,omitempty"`
	// FlightDump is the path of the flight-recorder dump, once one was
	// written for this job.
	FlightDump string `json:"flight_dump,omitempty"`
	// Result is present once State is done. Elapsed is wall-clock
	// seconds from start to finish (or to now while running).
	Result  *Result `json:"result,omitempty"`
	Elapsed float64 `json:"elapsed_seconds,omitempty"`
	// Cached marks a job served from the result cache: it went terminal
	// at submission with zero new simulations.
	Cached bool `json:"cached,omitempty"`
	// Distributed marks a job that ran sharded across worker nodes.
	Distributed bool `json:"distributed,omitempty"`
	// Error is present once State is failed or cancelled.
	Error string `json:"error,omitempty"`
}

// Job is one tracked estimation run.
type Job struct {
	id  string
	req Request

	// counter wraps the workload metric so live Sims counts every
	// simulation — including Gibbs-chain probes that bypass the
	// evaluation pool. The estimator layers its own counter on top;
	// both are lock-free pass-throughs.
	counter *mc.Counter
	// reg is the job's private telemetry registry, serving the per-job
	// metrics endpoint and the Progress gauges.
	reg *telemetry.Registry
	// bus is the job's private event bus (nil when the manager runs with
	// events disabled): every event the run emits fans out to SSE
	// subscribers and is retained in the flight-recorder ring, and a
	// tagged copy forwards to the manager's global bus.
	bus *telemetry.Bus
	// watchdog evaluates the job's streamed telemetry mid-run (nil when
	// events are disabled).
	watchdog *telemetry.Watchdog

	// flightOnce guards the automatic flight dump (job failure or first
	// watchdog alert — whichever fires first wins).
	flightOnce sync.Once
	flightDir  string

	cacheKey string // content address of the result, "" with caching off
	cached   bool   // served from the result cache at submission

	mu        sync.Mutex
	flight    string             // path of the written flight dump; guarded by mu
	state     State              // guarded by mu
	cancel    context.CancelFunc // set when the job starts running; guarded by mu
	cancelled bool               // cancel requested (possibly while queued); guarded by mu
	result    *repro.Result      // guarded by mu
	err       error              // guarded by mu
	created   time.Time          // guarded by mu
	started   time.Time          // guarded by mu
	finished  time.Time          // guarded by mu

	done chan struct{} // closed on reaching a terminal state
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Request returns the job's submitted request.
func (j *Job) Request() Request { return j.req }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Telemetry returns the job's private registry (live during the run,
// final afterwards).
func (j *Job) Telemetry() *telemetry.Registry { return j.reg }

// Events returns the job's private event bus, or nil when the manager
// runs with the event plane disabled. Subscribe to it for the job's
// live event stream; its ring retains the run's last events (the SSE
// resume window and the flight recorder).
func (j *Job) Events() *telemetry.Bus { return j.bus }

// dumpFlight writes the job's retained event ring as JSONL to the
// manager's flight directory, at most once per job (the first trigger —
// watchdog alert or failure — wins). No-op without a bus or a flight
// directory.
func (j *Job) dumpFlight(reason string) {
	if j.bus == nil || j.flightDir == "" {
		return
	}
	j.flightOnce.Do(func() {
		path := filepath.Join(j.flightDir, fmt.Sprintf("%s-%s.jsonl", j.id, reason))
		f, err := os.Create(path)
		if err != nil {
			return
		}
		defer f.Close()
		if err := j.bus.WriteJSONL(f); err != nil {
			return
		}
		j.mu.Lock()
		j.flight = path
		j.mu.Unlock()
	})
}

// Report returns the finished job's statistical run-report, or nil while
// the job has not completed successfully.
func (j *Job) Report() *repro.RunReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.result == nil {
		return nil
	}
	return j.result.Report
}

// Result returns the finished job's full library estimate, or nil
// while the job has not completed successfully. The returned value is
// shared and read-only.
func (j *Job) Result() *repro.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.result
}

// Err returns the job's terminal error (nil while non-terminal or done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Snapshot captures the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID: j.id, State: j.state,
		Workload: j.req.Workload, Method: j.req.Method, Seed: j.req.Seed,
		Created: j.created.UTC().Format(time.RFC3339Nano),
		Sims:    j.counter.Count(),
	}
	if s.Method == "" {
		s.Method = repro.GS.String()
	}
	if !j.started.IsZero() {
		s.Started = j.started.UTC().Format(time.RFC3339Nano)
		end := time.Now()
		if !j.finished.IsZero() {
			end = j.finished
			s.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		}
		s.Elapsed = end.Sub(j.started).Seconds()
	}
	if j.state == StateRunning {
		mcScope := j.reg.Scope(wire.ScopeMC)
		prog := j.reg.Scope(wire.ScopeProgress)
		if n := int(mcScope.Gauge("stage2_n").Value()); n > 0 {
			s.Progress = &Progress{
				Stage2N:    n,
				Pf:         mcScope.Gauge("stage2_pf").Value(),
				RelErr99:   finitePtr(mcScope.Gauge("stage2_relerr99").Value()),
				SimsPerSec: prog.Gauge("sims_per_sec").Value(),
				ETASeconds: prog.Gauge("eta_seconds").Value(),
			}
		} else if prog.Gauge("n").Value() > 0 {
			// First stage live: no running estimate yet, but the
			// throughput estimator already reports rate and ETA.
			s.Progress = &Progress{
				SimsPerSec: prog.Gauge("sims_per_sec").Value(),
				ETASeconds: prog.Gauge("eta_seconds").Value(),
			}
		}
	}
	s.Health = j.watchdog.Alerts()
	s.FlightDump = j.flight
	s.Cached = j.cached
	s.Distributed = j.req.Distribute
	if j.state == StateDone && j.result != nil {
		r := j.result
		s.Result = &Result{
			Pf: r.Pf, StdErr: r.StdErr, RelErr99: finitePtr(r.RelErr99),
			N: r.N, Failures: r.Failures, WeightESS: finiteOrZero(r.WeightESS),
			Stage1Sims: r.Stage1Sims, Stage2Sims: r.Stage2Sims, TotalSims: r.TotalSims,
		}
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	// A terminal job whose simulations ran outside its own counter —
	// distributed across workers, replayed from the cache, or a
	// partially-cancelled run — still reports the run's own cost.
	if j.state.Terminal() && j.result != nil && j.result.TotalSims > s.Sims {
		s.Sims = j.result.TotalSims
	}
	return s
}

// Config configures a Manager. The zero value is usable: a queue of 64,
// one executor, no default deadline, the built-in workload registry and
// a fresh global telemetry registry.
type Config struct {
	// QueueSize bounds the number of jobs waiting to run (default 64).
	QueueSize int
	// Executors is the number of jobs that run concurrently (default 1 —
	// a single estimation already fans out across the evaluation pool).
	Executors int
	// JobTimeout, when positive, is the default per-job deadline;
	// Request.TimeoutSeconds overrides it per job.
	JobTimeout time.Duration
	// Resolve maps a workload name to a fresh Metric; nil selects
	// repro.WorkloadByName. Tests inject synthetic workloads here.
	Resolve func(workload string) (repro.Metric, error)
	// Registry, when non-nil, receives the manager's own metrics under
	// scope "jobs" (submission counters, queue depth, running gauge),
	// plus per-job mirror gauges under scope "job_<id>" while the event
	// plane is enabled.
	Registry *telemetry.Registry
	// EventRing enables the live event plane: each job gets a private
	// event bus retaining the last EventRing events (the SSE resume
	// window and the flight recorder), forwarding tagged copies to a
	// server-global bus, and a health watchdog evaluates the stream
	// mid-run. Zero disables all of it — no buses, no watchdog, no SSE
	// payloads — restoring the pre-observability behavior exactly.
	EventRing int
	// FlightDir, when non-empty, is where flight-recorder dumps are
	// written (on job failure, first watchdog alert, or SIGQUIT via
	// DumpFlight). The directory must exist.
	FlightDir string
	// Retention, when positive, garbage-collects terminal jobs this long
	// after they finish: the job disappears from the table and its
	// per-job metrics scope is dropped from Registry.
	Retention time.Duration
	// Heartbeat is the SSE comment-heartbeat period (default 15s).
	Heartbeat time.Duration
	// Distributor, when non-nil, executes Distribute jobs: it shards the
	// job across registered worker nodes and returns the folded result
	// (the dist coordinator's Run method). Distribute submissions are
	// rejected with ErrDistributionDisabled when nil. The jobs package
	// never imports the dist package — the coordinator plugs in here.
	Distributor func(ctx context.Context, job *Job) (*repro.Result, error)
	// CacheSize, when positive, enables the content-addressed result
	// cache: up to CacheSize completed results are retained, keyed by
	// (build version, workload, canonical options, seed), and a matching
	// submission goes terminal immediately with the cached result and
	// zero new simulations.
	CacheSize int
	// Log, when non-nil, receives structured records for the job
	// lifecycle (submit, run, terminal state, drain), each carrying the
	// "job" correlation field.
	Log *obslog.Logger
	// AlertProfile, when positive and FlightDir is set, arms the
	// auto-profiler: the first watchdog alert of each kind captures a
	// heap profile plus an AlertProfile-long CPU profile into FlightDir,
	// next to the flight-recorder event dump for the same alert.
	AlertProfile time.Duration
}

// minSweep bounds how often the retention sweeper wakes up.
const minSweep = 100 * time.Millisecond

// Manager owns the queue, the executor pool and the job table.
type Manager struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job // guarded by mu
	order    []string        // submission order, for List; guarded by mu
	queue    chan *Job
	draining bool // guarded by mu

	seq atomic.Int64
	wg  sync.WaitGroup

	// cache is the content-addressed result cache (nil when disabled);
	// idem maps Idempotency-Key → submission, serialized by idemMu so a
	// concurrent duplicate can never double-submit.
	cache  *resultCache
	idemMu sync.Mutex
	idem   map[string]idemEntry // guarded by idemMu

	// bus is the server-global event bus (nil with EventRing 0): every
	// job's events arrive here tagged with the job ID, and the global
	// SSE stream serves it. ownBus records whether the manager created
	// it (and must close it on Drain) or inherited one from cfg.Registry.
	bus    *telemetry.Bus
	ownBus bool

	gcStop     chan struct{}
	gcDone     chan struct{}
	mirrorDone chan struct{}
	stopOnce   sync.Once

	log *obslog.Logger
	// profiler captures pprof profiles into FlightDir on watchdog
	// alerts (nil when auto-profiling is off).
	profiler *telemetry.Profiler

	// "jobs" scope instruments on cfg.Registry (nil-safe).
	submitted, completed, failed, cancelled, rejected *telemetry.Counter
	cacheHits                                         *telemetry.Counter
	queueDepth, running                               *telemetry.Gauge
}

// idemEntry records one idempotency-keyed submission: the job it
// created and a fingerprint of the request body, so a key reused with
// different contents is a conflict rather than a silent replay.
type idemEntry struct {
	jobID       string
	fingerprint string
}

// NewManager starts a manager with cfg.Executors executor goroutines.
// Call Drain to stop it.
func NewManager(cfg Config) *Manager {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 1
	}
	if cfg.Resolve == nil {
		cfg.Resolve = repro.WorkloadByName
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		idem:       make(map[string]idemEntry),
		cache:      newResultCache(cfg.CacheSize),
		queue:      make(chan *Job, cfg.QueueSize),
		gcStop:     make(chan struct{}),
		gcDone:     make(chan struct{}),
		mirrorDone: make(chan struct{}),
		log:        cfg.Log.With("component", "jobs"),
	}
	if cfg.AlertProfile > 0 {
		// NewProfiler returns nil without a directory, keeping the
		// feature inert unless the flight recorder has somewhere to write.
		m.profiler = telemetry.NewProfiler(cfg.FlightDir, cfg.AlertProfile)
	}
	if cfg.EventRing > 0 {
		// Reuse a bus the caller already installed on the registry (the
		// caller then owns its lifecycle); otherwise create and own one.
		if b := cfg.Registry.Bus(); b != nil {
			m.bus = b
		} else {
			m.bus = telemetry.NewBus(cfg.EventRing)
			m.ownBus = true
			cfg.Registry.SetBus(m.bus)
		}
	}
	// One mirror goroutine keeps the per-job "job_<id>" scopes in the
	// server-wide registry fresh from the tagged event stream.
	if m.bus != nil && cfg.Registry != nil {
		go m.mirror(m.bus.Subscribe(256))
	} else {
		close(m.mirrorDone)
	}
	if cfg.Retention > 0 {
		go m.sweep()
	} else {
		close(m.gcDone)
	}
	scope := cfg.Registry.Scope(wire.ScopeJobs)
	m.submitted = scope.Counter("submitted_total")
	m.completed = scope.Counter("completed_total")
	m.failed = scope.Counter("failed_total")
	m.cancelled = scope.Counter("cancelled_total")
	m.rejected = scope.Counter("rejected_total")
	m.cacheHits = scope.Counter("cache_hits_total")
	m.queueDepth = scope.Gauge("queue_depth")
	m.running = scope.Gauge("running")
	for i := 0; i < cfg.Executors; i++ {
		m.wg.Add(1)
		go m.executor()
	}
	return m
}

// Submit validates the request, enqueues a new job and returns it. The
// queue is bounded: a full queue rejects immediately with ErrQueueFull
// rather than blocking the caller.
func (m *Manager) Submit(req Request) (*Job, error) {
	metric, err := m.cfg.Resolve(req.Workload)
	if err != nil {
		m.rejected.Inc()
		// Injected resolvers may return bare errors; make sure every
		// resolve failure classifies as a client problem (400), not 500.
		if !errors.Is(err, repro.ErrUnknownWorkload) {
			err = fmt.Errorf("%w: %v", repro.ErrUnknownWorkload, err)
		}
		return nil, err
	}
	if req.Method != "" {
		if _, err := repro.ParseMethod(req.Method); err != nil {
			m.rejected.Inc()
			return nil, err
		}
	}
	if err := req.Options().Validate(); err != nil {
		m.rejected.Inc()
		return nil, err
	}
	if req.TimeoutSeconds < 0 {
		m.rejected.Inc()
		return nil, fmt.Errorf("%w: timeout_seconds must be ≥ 0, got %v", repro.ErrInvalidOptions, req.TimeoutSeconds)
	}
	if req.Distribute {
		if m.cfg.Distributor == nil {
			m.rejected.Inc()
			return nil, ErrDistributionDisabled
		}
		if _, err := repro.ShardPlan(req.Options()); err != nil {
			m.rejected.Inc()
			return nil, err
		}
	}

	job := &Job{
		id:        fmt.Sprintf("j%06d", m.seq.Add(1)),
		req:       req,
		counter:   mc.NewCounter(metric),
		reg:       telemetry.New(),
		flightDir: m.cfg.FlightDir,
		state:     StateQueued,
		created:   time.Now(),
		done:      make(chan struct{}),
	}
	if m.cache != nil {
		job.cacheKey = cacheKey(req)
	}
	// Every job records a span trace on its private registry: the
	// estimate pipeline nests its stage spans under it, and the
	// /v1/jobs/{id}/trace endpoint serves it live or finished.
	job.reg.SetTrace(telemetry.NewTrace())
	// Pipeline events from the run (run.start, stage1.done, …) stream
	// into the server's JSONL sink, when one is installed; the shared
	// sink's sequence numbers give a total order across jobs.
	job.reg.SetSink(m.cfg.Registry.Sink())
	// With the event plane on, the same events also fan out live: into
	// the job's private bus (SSE per-job stream + flight ring) and, with
	// a {"job": id} tag merged in, the server-global bus.
	if m.bus != nil {
		job.bus = telemetry.NewBus(m.cfg.EventRing).
			WithParent(m.bus, map[string]any{"job": job.id})
		job.reg.SetBus(job.bus)
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.rejected.Inc()
		return nil, ErrDraining
	}
	// Content-addressed replay: an identical completed run goes terminal
	// at submission — no queue slot, no executor, zero new simulations.
	if res := m.cache.get(job.cacheKey); res != nil {
		now := time.Now()
		job.cached = true
		job.result = res
		job.state = StateDone
		job.started, job.finished = now, now
		m.jobs[job.id] = job
		m.order = append(m.order, job.id)
		m.mu.Unlock()
		m.submitted.Inc()
		m.cacheHits.Inc()
		m.completed.Inc()
		job.reg.Emit(wire.EvJobSubmitted, map[string]any{
			"job": job.id, "workload": req.Workload, "method": req.Method, "seed": req.Seed,
		})
		job.reg.Emit(wire.EvJobDone, map[string]any{
			"job": job.id, "state": string(StateDone), "pf": res.Pf, "sims": res.TotalSims, "cached": true,
		})
		close(job.done)
		return job, nil
	}
	select {
	case m.queue <- job:
	default:
		m.mu.Unlock()
		m.rejected.Inc()
		return nil, ErrQueueFull
	}
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.submitted.Inc()
	m.queueDepth.Set(float64(len(m.queue)))
	// Emitting on the job's registry reaches the shared sink and, when
	// enabled, the job bus (so a per-job SSE stream sees its own
	// lifecycle from the first event) plus the tagged global bus.
	job.reg.Emit(wire.EvJobSubmitted, map[string]any{
		"job": job.id, "workload": req.Workload, "method": req.Method, "seed": req.Seed,
	})
	m.mu.Unlock()
	m.log.Info("job submitted", "job", job.id, "workload", req.Workload,
		"method", req.Method, "seed", req.Seed, "distribute", req.Distribute)
	return job, nil
}

// SubmitIdempotent is Submit with at-most-once semantics: a repeated
// submission with the same non-empty key returns the original job and
// replay=true (running zero new simulations); the same key with a
// different request body reports ErrIdempotencyConflict. An empty key
// degrades to plain Submit.
func (m *Manager) SubmitIdempotent(req Request, key string) (job *Job, replay bool, err error) {
	if key == "" {
		job, err = m.Submit(req)
		return job, false, err
	}
	fp, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	// idemMu serializes the lookup with the submission, so two racing
	// requests carrying the same key can never both enqueue.
	m.idemMu.Lock()
	defer m.idemMu.Unlock()
	if e, ok := m.idem[key]; ok {
		if prior, getErr := m.Get(e.jobID); getErr == nil {
			if e.fingerprint != string(fp) {
				return nil, false, fmt.Errorf("%w: %q", ErrIdempotencyConflict, key)
			}
			return prior, true, nil
		}
		// The recorded job was retention-swept; treat the key as fresh.
		delete(m.idem, key)
	}
	job, err = m.Submit(req)
	if err != nil {
		return nil, false, err
	}
	m.idem[key] = idemEntry{jobID: job.ID(), fingerprint: string(fp)}
	return job, false, nil
}

// Get looks up a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return job, nil
}

// List snapshots every job in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// JobList is one page of the job table: the requested window plus the
// paging fields a client needs to walk the rest.
type JobList struct {
	Jobs []Snapshot `json:"jobs"`
	// Total is the number of jobs matching the filter (across all
	// pages); Limit and Offset echo the window that was applied.
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
	// NextOffset is the offset of the following page, absent on the
	// last one.
	NextOffset *int `json:"next_offset,omitempty"`
}

// ListPage snapshots jobs in submission order, optionally filtered to
// one state, windowed by limit (≤ 0 selects the default of 100) and
// offset.
func (m *Manager) ListPage(state State, limit, offset int) JobList {
	filtered := make([]Snapshot, 0)
	for _, s := range m.List() {
		if state == "" || s.State == state {
			filtered = append(filtered, s)
		}
	}
	if limit <= 0 {
		limit = 100
	}
	offset = max(offset, 0)
	total := len(filtered)
	start := min(offset, total)
	end := min(start+limit, total)
	out := JobList{Jobs: filtered[start:end], Total: total, Limit: limit, Offset: offset}
	if end < total {
		next := end
		out.NextOffset = &next
	}
	return out
}

// Cancel requests cancellation of a job. A queued job goes terminal
// without ever running; a running job's context is cancelled and the
// estimator returns within one evaluation chunk; a terminal job is left
// untouched (not an error — cancel is idempotent).
func (m *Manager) Cancel(id string) (*Job, error) {
	job, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	switch {
	case job.state.Terminal():
		job.mu.Unlock()
		return job, nil
	case job.state == StateQueued:
		job.cancelled = true
		job.mu.Unlock()
		return job, nil
	default: // running
		job.cancelled = true
		cancel := job.cancel
		job.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return job, nil
	}
}

// BeginDrain flips the manager into draining mode without waiting: new
// submissions reject with ErrDraining (503 + problem+json at the API)
// and the queue is closed, while queued and running jobs continue.
// Idempotent. The server calls this before shutting its listener down,
// so submissions that cross the drain boundary see clean rejections
// instead of connection errors; Drain then waits for the in-flight
// work.
func (m *Manager) BeginDrain() {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
		m.log.Info("drain started", "queued", len(m.queue))
	}
	m.mu.Unlock()
}

// Drain stops the manager gracefully: new submissions are rejected,
// queued and running jobs are given until ctx expires to finish, then
// everything still running is cancelled. Drain returns nil when all
// jobs finished in time, or ctx's error after the forced cancellation
// completes.
func (m *Manager) Drain(ctx context.Context) error {
	m.BeginDrain()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		m.baseCancel()
		<-idle
		err = ctx.Err()
	}
	// Executors are idle: tear the observability plane down — stop the
	// sweeper and mirror, and close the global bus (ending every SSE
	// stream) if the manager created it.
	m.stopOnce.Do(func() { close(m.gcStop) })
	<-m.gcDone
	if m.ownBus {
		m.bus.Close()
	}
	<-m.mirrorDone
	if err != nil {
		m.log.Warn("drain forced cancellation", "error", err.Error())
	} else {
		m.log.Info("drain complete")
	}
	return err
}

// Bus returns the server-global event bus (nil when the event plane is
// disabled): every job's events, tagged with {"job": id}.
func (m *Manager) Bus() *telemetry.Bus { return m.bus }

// Heartbeat returns the configured SSE heartbeat period.
func (m *Manager) Heartbeat() time.Duration { return m.cfg.Heartbeat }

// Remove deletes a terminal job from the table and drops its per-job
// mirror scope from the server-wide registry, so /metrics stops
// mentioning it. Removing a non-terminal job is an error; removing an
// unknown ID reports ErrNotFound.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	job.mu.Lock()
	state := job.state
	job.mu.Unlock()
	if !state.Terminal() {
		m.mu.Unlock()
		return fmt.Errorf("jobs: job %q is %s — cancel it before removing", id, state)
	}
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	// Drop the job's mirror metrics from /metrics and free its bus
	// subscribers (any still-attached SSE replay stream ends).
	m.cfg.Registry.DropScope("job_" + id)
	job.bus.Close()
	return nil
}

// sweep garbage-collects terminal jobs older than cfg.Retention.
func (m *Manager) sweep() {
	defer close(m.gcDone)
	period := max(m.cfg.Retention/4, minSweep)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.gcStop:
			return
		case <-ticker.C:
			m.sweepOnce(time.Now())
		}
	}
}

// sweepOnce removes every terminal job that finished before
// now−Retention.
func (m *Manager) sweepOnce(now time.Time) {
	cutoff := now.Add(-m.cfg.Retention)
	m.mu.Lock()
	var expired []string
	for id, job := range m.jobs {
		job.mu.Lock()
		if job.state.Terminal() && !job.finished.IsZero() && job.finished.Before(cutoff) {
			expired = append(expired, id)
		}
		job.mu.Unlock()
	}
	m.mu.Unlock()
	for _, id := range expired {
		m.Remove(id)
	}
}

// mirror keeps per-job "job_<id>" scopes on the server-wide registry
// fresh from the tagged global event stream, so one /metrics scrape
// shows every live job's position without touching the per-job
// registries. Runs until the bus closes or the manager drains; Remove
// drops the scopes it creates.
func (m *Manager) mirror(sub *telemetry.Subscription) {
	defer close(m.mirrorDone)
	for {
		select {
		case <-m.gcStop:
			sub.Close()
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			m.mirrorEvent(ev)
		}
	}
}

// mirrorEvent projects one tagged event onto the job's mirror scope.
func (m *Manager) mirrorEvent(ev telemetry.Event) {
	id, _ := ev.Fields["job"].(string)
	if id == "" {
		return
	}
	// Skip jobs already removed — recreating the scope would leak it.
	m.mu.Lock()
	_, tracked := m.jobs[id]
	m.mu.Unlock()
	if !tracked {
		return
	}
	s := m.cfg.Registry.Scope(wire.ScopeJobPrefix + id)
	switch ev.Name {
	case wire.EvProgress:
		if n, ok := numEventField(ev.Fields, "n"); ok {
			s.Gauge("progress_n").Set(n)
		}
		if v, ok := numEventField(ev.Fields, "pf"); ok {
			s.Gauge("pf").Set(v)
		}
		if v, ok := numEventField(ev.Fields, "sims_per_sec"); ok {
			s.Gauge("sims_per_sec").Set(v)
		}
		if v, ok := numEventField(ev.Fields, "eta_seconds"); ok {
			s.Gauge("eta_seconds").Set(v)
		}
	case "job.submitted":
		s.Gauge("state").Set(0)
	case "job.done":
		s.Gauge("state").Set(1)
		if v, ok := numEventField(ev.Fields, "sims"); ok {
			s.Gauge("sims").Set(v)
		}
	}
}

// DumpFlight writes flight-recorder dumps for the global bus and every
// tracked job that has one, returning the written paths. This is the
// SIGQUIT hook: unlike the per-job automatic dump it is not
// once-guarded, so an operator can trigger it repeatedly. No-op without
// a FlightDir or with the event plane disabled.
func (m *Manager) DumpFlight(reason string) []string {
	if m.cfg.FlightDir == "" || m.bus == nil {
		return nil
	}
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	var paths []string
	write := func(name string, bus *telemetry.Bus) {
		path := filepath.Join(m.cfg.FlightDir, name)
		f, err := os.Create(path)
		if err != nil {
			return
		}
		defer f.Close()
		if bus.WriteJSONL(f) == nil {
			paths = append(paths, path)
		}
	}
	write(fmt.Sprintf("server-%s.jsonl", reason), m.bus)
	for _, job := range jobs {
		if job.bus != nil {
			write(fmt.Sprintf("%s-%s.jsonl", job.id, reason), job.bus)
		}
	}
	return paths
}

// numEventField extracts a numeric field from a decoded event payload,
// tolerating the int/int64/float64 mix publishers use.
func numEventField(fields map[string]any, key string) (float64, bool) {
	switch v := fields[key].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	}
	return 0, false
}

// executor pulls jobs off the queue until Drain closes it.
func (m *Manager) executor() {
	defer m.wg.Done()
	for job := range m.queue {
		m.queueDepth.Set(float64(len(m.queue)))
		m.run(job)
	}
}

// run executes one job under its own context.
func (m *Manager) run(job *Job) {
	job.mu.Lock()
	if job.cancelled {
		// Cancelled while queued: terminal without running. The job
		// still gets its terminal event so event streams see it end.
		job.state = StateCancelled
		job.err = context.Canceled
		job.finished = time.Now()
		job.mu.Unlock()
		m.cancelled.Inc()
		job.reg.Emit(wire.EvJobDone, map[string]any{
			"job": job.id, "state": string(StateCancelled), "error": context.Canceled.Error(),
		})
		close(job.done)
		return
	}
	ctx := m.baseCtx
	var timeoutCancel context.CancelFunc
	timeout := m.cfg.JobTimeout
	if job.req.TimeoutSeconds > 0 {
		timeout = time.Duration(job.req.TimeoutSeconds * float64(time.Second))
	}
	if timeout > 0 {
		ctx, timeoutCancel = context.WithTimeout(ctx, timeout)
	}
	ctx, cancel := context.WithCancel(ctx)
	job.cancel = cancel
	job.state = StateRunning
	job.started = time.Now()
	// The watchdog rides the job's private bus (nil bus → nil watchdog,
	// fully inert); its first alert dumps the flight recorder and, with
	// auto-profiling armed, captures pprof CPU+heap profiles next to it.
	// The capture runs off the watchdog goroutine — a CPU profile takes
	// AlertProfile wall time and must not stall alert evaluation.
	job.watchdog = telemetry.StartWatchdog(job.reg, telemetry.WatchdogConfig{
		OnAlert: func(a telemetry.Alert) {
			m.log.Warn("watchdog alert", "job", job.id, "kind", a.Kind, "detail", a.Detail)
			job.dumpFlight("alert-" + a.Kind)
			if m.profiler != nil {
				//reprolint:ignore goroutinelife profile capture self-terminates after the sampling window; joining it would stall alert handling
				go m.profiler.Capture(job.id + "-" + a.Kind)
			}
		},
	})
	job.mu.Unlock()
	m.running.Set(m.running.Value() + 1)
	defer m.running.Set(m.running.Value() - 1)
	defer cancel()
	if timeoutCancel != nil {
		defer timeoutCancel()
	}

	var res *repro.Result
	var err error
	if job.req.Distribute {
		// The coordinator shards the job across worker nodes and folds
		// their partials; the fold is bit-identical to the in-process
		// estimate below.
		res, err = m.cfg.Distributor(ctx, job)
	} else {
		opts := job.req.Options()
		opts.Telemetry = job.reg
		res, err = repro.EstimateContext(ctx, job.counter, opts)
	}

	job.watchdog.Stop()
	job.mu.Lock()
	job.result = res
	job.err = err
	job.finished = time.Now()
	switch {
	case err == nil:
		job.state = StateDone
		m.completed.Inc()
		m.cache.put(job.cacheKey, res)
	case errors.Is(err, context.Canceled):
		job.state = StateCancelled
		m.cancelled.Inc()
	default:
		job.state = StateFailed
		m.failed.Inc()
	}
	state := job.state
	job.mu.Unlock()

	fields := map[string]any{"job": job.id, "state": string(state)}
	if res != nil {
		fields["pf"] = res.Pf
		fields["sims"] = res.TotalSims
	}
	if err != nil {
		fields["error"] = err.Error()
	}
	// The terminal event goes out on the job's registry — sink, job bus
	// (every per-job SSE stream ends on it) and tagged global bus —
	// before the flight dump and the done close, so the dump's ring ends
	// on job.done and a waiter that saw done can rely on both.
	job.reg.Emit(wire.EvJobDone, fields)
	switch {
	case err != nil:
		m.log.Warn("job finished", "job", job.id, "state", string(state), "error", err.Error())
	case res != nil:
		m.log.Info("job finished", "job", job.id, "state", string(state),
			"pf", res.Pf, "sims", res.TotalSims)
	}
	if state == StateFailed {
		job.dumpFlight("failed")
	}
	close(job.done)
}

// finitePtr returns &v for finite v and nil otherwise, so JSON encoding
// renders non-finite floats (RelErr99 is +Inf until the first failure)
// as null instead of failing.
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func finiteOrZero(v float64) float64 {
	if p := finitePtr(v); p != nil {
		return *p
	}
	return 0
}
