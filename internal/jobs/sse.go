package jobs

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Server-Sent Events endpoints — the live half of the jobs API:
//
//	GET /v1/jobs/{id}/events   one job's event stream
//	GET /v1/events             the server-global stream (all jobs, tagged)
//
// Both speak plain SSE: each bus event becomes an "id:" (the bus
// sequence number), "event:" (the dot-namespaced event name) and
// "data:" (the event's JSON object) frame, with comment heartbeats
// every Config.Heartbeat so intermediaries keep the connection alive. A
// reconnecting client sends the standard Last-Event-ID header (or an
// ?after=<seq> query) and resumes from the per-job ring buffer without
// gaps, as long as the gap still fits the ring.
//
// The per-job stream terminates after the job's terminal "job.done"
// event — curl exits on its own once the job finishes, including for
// jobs that finished before the client connected (the ring replays the
// whole lifecycle). The global stream runs until the client disconnects
// or the server drains. A slow client never blocks an estimation loop:
// its queue overflows instead, and the stream reports how many events
// it missed via "stream.dropped" meta events.

// sseEvents serves one subscription as an SSE stream. terminate, when
// non-empty, names the event that ends the stream after being sent.
func (m *Manager) sseEvents(w http.ResponseWriter, r *http.Request, bus *telemetry.Bus, terminate string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("jobs: response writer does not support streaming"))
		return
	}
	after := int64(-1) // default: replay the whole retained ring
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if seq, err := strconv.ParseInt(v, 10, 64); err == nil {
			after = seq
		}
	} else if v := r.URL.Query().Get("after"); v != "" {
		if seq, err := strconv.ParseInt(v, 10, 64); err == nil {
			after = seq
		}
	}
	// Detect a resume gap before subscribing: if the client's cursor
	// fell off the ring (wraparound, or the ring owner was swept), the
	// events in between are gone and the replay silently starts at the
	// ring's tail. The stream.gap meta event makes that visible so the
	// client can resynchronize instead of assuming continuity.
	var gap int64
	oldest := bus.OldestSeq()
	if after >= 0 && oldest > after+1 {
		gap = oldest - after - 1
	}
	sub := bus.SubscribeFrom(after, 256)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	if gap > 0 {
		fmt.Fprintf(w, "event: %s\ndata: {\"requested_after\":%d,\"oldest\":%d,\"missed\":%d}\n\n",
			wire.EvStreamGap, after, oldest, gap)
	}
	flusher.Flush()

	heartbeat := time.NewTicker(m.cfg.Heartbeat)
	defer heartbeat.Stop()
	var reportedDrops int64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			// Comment line: ignored by EventSource, keeps the pipe warm.
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, ok := <-sub.Events():
			if !ok {
				// Bus closed (server drain or job removal).
				return
			}
			if d := sub.Dropped(); d > reportedDrops {
				fmt.Fprintf(w, "event: %s\ndata: {\"dropped\":%d}\n\n", wire.EvStreamDropped, d)
				reportedDrops = d
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Name, ev.Data); err != nil {
				return
			}
			flusher.Flush()
			if terminate != "" && ev.Name == terminate {
				return
			}
		}
	}
}

// handleJobEvents serves GET /v1/jobs/{id}/events.
func (m *Manager) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	bus := job.Events()
	if bus == nil {
		writeError(w, http.StatusNotFound, errors.New("jobs: event streaming is disabled (start the server with -event-ring > 0)"))
		return
	}
	m.sseEvents(w, r, bus, "job.done")
}

// handleGlobalEvents serves GET /v1/events.
func (m *Manager) handleGlobalEvents(w http.ResponseWriter, r *http.Request) {
	if m.bus == nil {
		writeError(w, http.StatusNotFound, errors.New("jobs: event streaming is disabled (start the server with -event-ring > 0)"))
		return
	}
	m.sseEvents(w, r, m.bus, "")
}
