package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestBeginDrainRejectsCleanly checks the drain-boundary guarantee: once
// BeginDrain flips the manager, new submissions are rejected with the
// typed draining problem while the already-running job keeps going —
// the server keeps its listener up through this window so clients see a
// clean 503 instead of a connection error.
func TestBeginDrainRejectsCleanly(t *testing.T) {
	m, srv := newTestServer(t, Config{Registry: telemetry.New()})
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304}`, http.StatusAccepted)

	m.BeginDrain()
	m.BeginDrain() // idempotent: a second call must not double-close the queue

	if _, err := m.Submit(Request{Workload: "lin"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after BeginDrain: %v, want ErrDraining", err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"lin","method":"g-s","seed":5,"k":200,"n":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after BeginDrain: status %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/problem+json" {
		t.Fatalf("drain rejection Content-Type = %q, want application/problem+json", ct)
	}
	var p Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Type != ProblemType+"draining" {
		t.Fatalf("drain rejection type = %q, want %q", p.Type, ProblemType+"draining")
	}

	// The in-flight job survives BeginDrain (only Drain's grace-period
	// expiry cancels it).
	if s := getSnapshot(t, srv, snap.ID).State; s.Terminal() {
		t.Fatalf("running job went %s at BeginDrain, want it to keep running", s)
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, srv, snap.ID)
}

// TestSSEGapDetection forces ring eviction and checks both endpoints
// announce the replay gap: a client resuming from a cursor that fell
// off the ring gets a stream.gap meta event before the tail replay,
// instead of a silent discontinuity.
func TestSSEGapDetection(t *testing.T) {
	// Ring of 8 against a run that publishes dozens of progress events:
	// the early lifecycle is guaranteed evicted by the time we resume.
	m, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 8})
	snap := postJob(t, srv, `{"workload":"lin","method":"g-s","seed":5,"k":200,"n":8000}`, http.StatusAccepted)
	waitTerminal(t, srv, snap.ID)

	job, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	oldest := job.Events().OldestSeq()
	if oldest < 2 {
		t.Fatalf("ring did not wrap (oldest %d) — the gap scenario needs eviction", oldest)
	}

	// Per-job stream, resuming after seq 0.
	resp, closeBody := getSSE(t, srv.URL+"/v1/jobs/"+snap.ID+"/events", "0")
	frames := readSSE(t, resp.Body, 0)
	closeBody()
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want gap + replay", len(frames))
	}
	gap := frames[0]
	if gap.Event != "stream.gap" {
		t.Fatalf("first resumed frame %q, want stream.gap", gap.Event)
	}
	if ra, _ := gap.Data["requested_after"].(float64); ra != 0 {
		t.Fatalf("gap requested_after = %v, want 0", gap.Data["requested_after"])
	}
	reportedOldest, _ := gap.Data["oldest"].(float64)
	missed, _ := gap.Data["missed"].(float64)
	if reportedOldest < 2 || missed != reportedOldest-1 {
		t.Fatalf("gap data = %v, want oldest >= 2 and missed = oldest-1", gap.Data)
	}
	if frames[1].ID != int64(reportedOldest) {
		t.Fatalf("replay after gap starts at %d, want the ring tail %v", frames[1].ID, reportedOldest)
	}
	if frames[len(frames)-1].Event != "job.done" {
		t.Fatalf("resumed stream last event %q, want job.done", frames[len(frames)-1].Event)
	}

	// A resume from within the ring must NOT see a gap event.
	resp2, close2 := getSSE(t, srv.URL+"/v1/jobs/"+snap.ID+"/events", strconv.FormatInt(oldest, 10))
	clean := readSSE(t, resp2.Body, 0)
	close2()
	for _, f := range clean {
		if f.Event == "stream.gap" {
			t.Fatal("in-ring resume reported a spurious gap")
		}
	}

	// Global stream: the same events (tagged) wrapped the global ring
	// too, so resuming from 0 must announce a gap there as well.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/events", nil)
	req.Header.Set("Last-Event-ID", "0")
	gresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	gframes := readSSE(t, gresp.Body, 1) // global stream never self-terminates
	if len(gframes) != 1 || gframes[0].Event != "stream.gap" {
		t.Fatalf("global resume frames = %+v, want a leading stream.gap", gframes)
	}
}

// TestWatchdogAlertCapturesProfiles is the auto-profiling acceptance
// test: a forced watchdog alert on a running job must produce pprof
// heap and CPU captures in the flight-recorder directory, next to the
// event-ring dump for the same alert.
func TestWatchdogAlertCapturesProfiles(t *testing.T) {
	dir := t.TempDir()
	m, srv := newTestServer(t, Config{
		Registry: telemetry.New(), EventRing: 64,
		FlightDir: dir, AlertProfile: 20 * time.Millisecond,
	})
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304}`, http.StatusAccepted)
	job, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The watchdog starts when the job does; wait for Running before
	// forcing the alert so the subscription is guaranteed live.
	deadline := time.Now().Add(30 * time.Second)
	for getSnapshot(t, srv, snap.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A Gibbs chain reporting 500 updates with zero acceptance trips the
	// chain_stalled trigger.
	job.Telemetry().Emit("gibbs.chain", map[string]any{"updates": 500, "acceptance": 0.0})

	// Capture runs on its own goroutine (the CPU window blocks for
	// AlertProfile); poll for both profile files.
	var heap, cpu, dump string
	deadline = time.Now().Add(30 * time.Second)
	for (heap == "" || cpu == "" || dump == "") && time.Now().Before(deadline) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasPrefix(name, snap.ID+"-") || !strings.Contains(name, "chain_stalled") {
				continue
			}
			// The CPU profile file exists (empty) while its sampling window
			// is still open; only accept files with content.
			if info, err := e.Info(); err != nil || info.Size() == 0 {
				continue
			}
			switch {
			case strings.HasSuffix(name, ".heap.pprof"):
				heap = name
			case strings.HasSuffix(name, ".cpu.pprof"):
				cpu = name
			case strings.HasSuffix(name, ".jsonl"):
				dump = name
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if heap == "" || cpu == "" {
		t.Fatalf("alert produced no pprof captures (heap %q, cpu %q) in %s", heap, cpu, dir)
	}
	if dump == "" {
		t.Fatal("alert produced no flight-recorder event dump")
	}
	for _, name := range []string{heap, cpu, dump} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil || info.Size() == 0 {
			t.Fatalf("capture %s missing or empty: %v", name, err)
		}
	}

	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, srv, snap.ID)
}
