package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	ID    int64
	Event string
	Data  map[string]any
}

// readSSE parses frames from an SSE body until EOF or limit frames.
func readSSE(t *testing.T, body io.Reader, limit int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	cur := sseFrame{ID: -1}
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.Event != "" || cur.Data != nil {
				frames = append(frames, cur)
				if limit > 0 && len(frames) >= limit {
					return frames
				}
			}
			cur = sseFrame{ID: -1}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseInt(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.ID = id
		case strings.HasPrefix(line, "event: "):
			cur.Event = line[7:]
		case strings.HasPrefix(line, "data: "):
			var obj map[string]any
			if err := json.Unmarshal([]byte(line[6:]), &obj); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			cur.Data = obj
		case strings.HasPrefix(line, ":"):
			// comment/heartbeat — ignored
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

func getSSE(t *testing.T, url, lastEventID string) (*http.Response, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return resp, func() { resp.Body.Close() }
}

// TestSSEJobStreamLifecycle runs a job to completion, then replays its
// whole event stream: the ring must deliver the lifecycle in order —
// job.submitted, at least one progress event with non-decreasing sample
// counts and a finite ETA, and the terminal job.done, after which the
// stream ends on its own (the reader sees EOF, not a hang).
func TestSSEJobStreamLifecycle(t *testing.T) {
	m, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 512})
	snap := postJob(t, srv, `{"workload":"lin","method":"g-s","seed":5,"k":200,"n":2000}`, http.StatusAccepted)
	waitTerminal(t, srv, snap.ID)

	resp, closeBody := getSSE(t, srv.URL+"/v1/jobs/"+snap.ID+"/events", "")
	defer closeBody()
	frames := readSSE(t, resp.Body, 0) // reads to EOF: the stream must self-terminate

	if len(frames) < 3 {
		t.Fatalf("got %d frames, want at least submitted + progress + done", len(frames))
	}
	if frames[0].Event != "job.submitted" {
		t.Errorf("first event %q, want job.submitted", frames[0].Event)
	}
	last := frames[len(frames)-1]
	if last.Event != "job.done" {
		t.Errorf("last event %q, want job.done (the stream must end on the terminal event)", last.Event)
	}
	if state, _ := last.Data["state"].(string); state != string(StateDone) {
		t.Errorf("job.done state = %v, want %q", last.Data["state"], StateDone)
	}

	progress := 0
	lastN := -1.0
	prevID := int64(-1)
	for _, f := range frames {
		if f.ID <= prevID {
			t.Fatalf("SSE ids not increasing: %d after %d", f.ID, prevID)
		}
		prevID = f.ID
		if f.Event != "progress" {
			continue
		}
		progress++
		n, ok := f.Data["n"].(float64)
		if !ok || n < lastN {
			t.Fatalf("progress n = %v after %v, want monotonically non-decreasing", f.Data["n"], lastN)
		}
		lastN = n
		eta, ok := f.Data["eta_seconds"].(float64)
		if !ok || math.IsNaN(eta) || math.IsInf(eta, 0) || eta < 0 {
			t.Fatalf("progress eta_seconds = %v, want finite and non-negative", f.Data["eta_seconds"])
		}
		if _, ok := f.Data["sims_per_sec"].(float64); !ok {
			t.Fatalf("progress event missing sims_per_sec: %v", f.Data)
		}
		if job, _ := f.Data["job"].(string); job != snap.ID {
			t.Fatalf("progress event job tag = %v, want %q", f.Data["job"], snap.ID)
		}
	}
	if progress < 1 {
		t.Error("stream contained no progress events")
	}

	// Resume: a client that saw the third frame re-connects with
	// Last-Event-ID and must get strictly later events only, still
	// ending with job.done.
	if len(frames) > 3 {
		mid := frames[2].ID
		resp2, close2 := getSSE(t, srv.URL+"/v1/jobs/"+snap.ID+"/events", strconv.FormatInt(mid, 10))
		defer close2()
		resumed := readSSE(t, resp2.Body, 0)
		if len(resumed) == 0 {
			t.Fatal("resume delivered nothing")
		}
		if resumed[0].ID != mid+1 {
			t.Errorf("resume started at id %d, want %d (no gap, no duplicate)", resumed[0].ID, mid+1)
		}
		if resumed[len(resumed)-1].Event != "job.done" {
			t.Errorf("resumed stream last event %q, want job.done", resumed[len(resumed)-1].Event)
		}
	}

	// The global stream carries the same events tagged with the job ID.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/events", nil)
	gresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	gframes := readSSE(t, gresp.Body, 3) // global stream never self-terminates; take a few
	for _, f := range gframes {
		if job, _ := f.Data["job"].(string); job != snap.ID {
			t.Errorf("global event %q missing job tag: %v", f.Event, f.Data)
		}
	}
	cancel()

	_ = m
}

// TestSSEClientDisconnectCleansUp kills the client mid-stream of a live
// job and asserts the handler unsubscribes — no subscription (and hence
// no handler goroutine parked on it) outlives the connection. The
// baseline is whatever the job's own machinery (the watchdog) holds;
// the SSE handler must add exactly one subscription and give it back.
func TestSSEClientDisconnectCleansUp(t *testing.T) {
	m, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 64, Heartbeat: 10 * time.Millisecond})
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304}`, http.StatusAccepted)
	job, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	baseline := job.Events().Subscribers()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/jobs/"+snap.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame to prove the stream is live, then hang up.
	readSSE(t, io.LimitReader(resp.Body, 256), 1)
	if n := job.Events().Subscribers(); n != baseline+1 {
		t.Fatalf("job bus has %d subscribers while streaming, want %d", n, baseline+1)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for job.Events().Subscribers() != baseline {
		if time.Now().After(deadline) {
			t.Fatalf("job bus still has %d subscribers after client disconnect, want %d", job.Events().Subscribers(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, srv, snap.ID)
}

// TestSSEHeartbeat asserts comment heartbeats flow while nothing is
// published.
func TestSSEHeartbeat(t *testing.T) {
	_, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 64, Heartbeat: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	n, err := resp.Body.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), ": hb") {
		t.Errorf("idle stream produced %q, want a heartbeat comment", buf[:n])
	}
}

// TestSSEDisabled pins the off switch: with EventRing 0 both endpoints
// 404 and jobs carry no bus.
func TestSSEDisabled(t *testing.T) {
	m, srv := newTestServer(t, Config{Registry: telemetry.New()})
	snap := postJob(t, srv, `{"workload":"lin","method":"g-s","seed":5,"k":200,"n":2000}`, http.StatusAccepted)
	waitTerminal(t, srv, snap.ID)
	job, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.Events() != nil {
		t.Error("job has an event bus with EventRing 0")
	}
	for _, path := range []string{"/v1/jobs/" + snap.ID + "/events", "/v1/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with events disabled: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// metricsBody scrapes the server-wide /metrics endpoint.
func metricsBody(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJobMetricsUnregisteredOnRemove is the GC regression test: a
// removed job's mirror metrics must disappear from /metrics instead of
// lingering forever.
func TestJobMetricsUnregisteredOnRemove(t *testing.T) {
	m, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 256})
	snap := postJob(t, srv, `{"workload":"lin","method":"g-s","seed":5,"k":200,"n":2000}`, http.StatusAccepted)
	waitTerminal(t, srv, snap.ID)

	// The mirror goroutine consumes the tagged stream asynchronously;
	// wait for the job's scope to appear in the scrape.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(metricsBody(t, srv), "job_"+snap.ID) {
		if time.Now().After(deadline) {
			t.Fatalf("per-job mirror metrics for %s never appeared in /metrics", snap.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := m.Remove(snap.ID); err != nil {
		t.Fatal(err)
	}
	if body := metricsBody(t, srv); strings.Contains(body, "job_"+snap.ID) {
		t.Error("per-job metrics still present in /metrics after Remove")
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET removed job: status %d, want 404", resp.StatusCode)
	}
	if err := m.Remove(snap.ID); err == nil {
		t.Error("removing an unknown job must error")
	}
}

// TestRemoveRejectsLiveJob guards against dropping a running job's
// metrics out from under it.
func TestRemoveRejectsLiveJob(t *testing.T) {
	m, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 64})
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304}`, http.StatusAccepted)
	if err := m.Remove(snap.ID); err == nil {
		t.Error("Remove accepted a non-terminal job")
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, srv, snap.ID)
	if err := m.Remove(snap.ID); err != nil {
		t.Errorf("Remove after terminal state: %v", err)
	}
}

// TestRetentionSweep lets the background sweeper collect a finished job.
func TestRetentionSweep(t *testing.T) {
	m, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 64, Retention: 50 * time.Millisecond})
	snap := postJob(t, srv, `{"workload":"lin","method":"g-s","seed":5,"k":200,"n":2000}`, http.StatusAccepted)
	waitTerminal(t, srv, snap.ID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Get(snap.ID); err != nil {
			break // swept
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job survived the retention sweep")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFlightDumpOnFailure asserts a failing job writes its event ring
// as JSONL and surfaces the path in its snapshot.
func TestFlightDumpOnFailure(t *testing.T) {
	dir := t.TempDir()
	m, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 128, FlightDir: dir})
	// A job timeout fails the run with context.DeadlineExceeded.
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304,"timeout_seconds":0.05}`, http.StatusAccepted)
	final := waitTerminal(t, srv, snap.ID)
	if final.State != StateFailed {
		t.Fatalf("job state %s, want failed", final.State)
	}
	if final.FlightDump == "" {
		t.Fatal("failed job has no flight_dump path in its snapshot")
	}
	b, err := os.ReadFile(final.FlightDump)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("flight dump is empty")
	}
	sawDone := false
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("flight dump line is not JSON: %q", line)
		}
		if obj["event"] == "job.done" {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("flight dump does not contain the terminal job.done event")
	}
	_ = m

	// Server-wide SIGQUIT-path dump.
	paths := m.DumpFlight("test")
	if len(paths) == 0 {
		t.Fatal("DumpFlight wrote nothing")
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("DumpFlight reported %s but it does not exist", p)
		}
		if filepath.Dir(p) != dir {
			t.Errorf("dump %s written outside the flight dir", p)
		}
	}
}

// TestJobStatusETA asserts a running job's status JSON carries the
// throughput estimate and ETA from the progress gauges.
func TestJobStatusETA(t *testing.T) {
	_, srv := newTestServer(t, Config{Registry: telemetry.New(), EventRing: 64})
	snap := postJob(t, srv, `{"workload":"slow","method":"mc","seed":1,"n":4194304,"workers":2}`, http.StatusAccepted)
	deadline := time.Now().Add(60 * time.Second)
	for {
		s := getSnapshot(t, srv, snap.ID)
		if s.State.Terminal() {
			t.Fatal("slow job finished before progress was observed")
		}
		if p := s.Progress; p != nil && p.SimsPerSec > 0 {
			if math.IsInf(p.ETASeconds, 0) || math.IsNaN(p.ETASeconds) || p.ETASeconds < 0 {
				t.Fatalf("ETA = %v, want finite and non-negative", p.ETASeconds)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("running job never reported sims_per_sec in its status JSON")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.NewRequest("DELETE", srv.URL+"/v1/jobs/"+snap.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := http.DefaultClient.Do(resp); err == nil {
		r.Body.Close()
	}
	waitTerminal(t, srv, snap.ID)
}
