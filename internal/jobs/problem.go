package jobs

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro"

	"repro/internal/wire"
)

// RFC 9457 problem details: every non-2xx response from the v1 API is
// an application/problem+json document, so clients branch on a stable
// machine-readable Type instead of parsing English. Type is a URN in
// the "urn:repro:problem:" namespace — the API has no dereferenceable
// documentation host, and 9457 §3.1.1 explicitly allows non-resolvable
// URIs.

// ProblemType is the URN prefix of every problem Type this API emits.
const ProblemType = wire.ProblemURNPrefix

// Problem is the RFC 9457 error document. It implements error, so the
// typed client surfaces API failures as *Problem values callers can
// inspect with errors.As.
type Problem struct {
	// Type identifies the problem class (ProblemType + slug).
	Type string `json:"type"`
	// Title is the short human summary of the class; Status the HTTP
	// status the document traveled with.
	Title  string `json:"title"`
	Status int    `json:"status"`
	// Detail describes this occurrence.
	Detail string `json:"detail,omitempty"`
	// Errors itemizes field-level validation failures (extension member,
	// per 9457 §3.2).
	Errors []string `json:"errors,omitempty"`
}

// Error implements error.
func (p *Problem) Error() string {
	if p.Detail != "" {
		return p.Detail
	}
	return p.Title
}

// problemFrom classifies err into the problem document the API reports.
func problemFrom(err error) *Problem {
	p := &Problem{Detail: err.Error()}
	switch {
	case errors.Is(err, ErrQueueFull):
		p.Type, p.Title, p.Status = wire.ProblemQueueFull, "Job queue is full", http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		p.Type, p.Title, p.Status = wire.ProblemDraining, "Server is draining", http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		p.Type, p.Title, p.Status = wire.ProblemNotFound, "No such job", http.StatusNotFound
	case errors.Is(err, ErrIdempotencyConflict):
		p.Type, p.Title, p.Status = wire.ProblemIdempotencyConflict, "Idempotency key reused with a different request", http.StatusConflict
	case errors.Is(err, ErrDistributionDisabled):
		p.Type, p.Title, p.Status = wire.ProblemDistributionDisabled, "Distributed execution is not enabled", http.StatusNotImplemented
	case errors.Is(err, repro.ErrNotShardable):
		p.Type, p.Title, p.Status = wire.ProblemNotDistributable, "Options cannot run distributed", http.StatusBadRequest
	case errors.Is(err, repro.ErrInvalidOptions),
		errors.Is(err, repro.ErrUnknownMethod),
		errors.Is(err, repro.ErrUnknownWorkload):
		p.Type, p.Title, p.Status = wire.ProblemInvalidRequest, "Request validation failed", http.StatusBadRequest
		p.Errors = leaves(err)
	default:
		p.Type, p.Title, p.Status = wire.ProblemInternal, "Internal error", http.StatusInternalServerError
	}
	return p
}

// badRequest wraps a transport-level failure (malformed JSON, bad query
// parameter) as a 400 problem.
func badRequest(err error) *Problem {
	return &Problem{
		Type: wire.ProblemInvalidRequest, Title: "Request validation failed",
		Status: http.StatusBadRequest, Detail: err.Error(),
	}
}

// leaves flattens a joined validation error into its per-field
// messages: multi-error nodes recurse, single-wrap chains are kept
// whole (their text carries the "Field: reason" prefix), and the bare
// sentinel itself is dropped — it is already the problem Type.
func leaves(err error) []string {
	if multi, ok := err.(interface{ Unwrap() []error }); ok {
		var out []string
		for _, e := range multi.Unwrap() {
			out = append(out, leaves(e)...)
		}
		return out
	}
	msg := err.Error()
	for _, sentinel := range []error{repro.ErrInvalidOptions, repro.ErrUnknownMethod, repro.ErrUnknownWorkload} {
		if msg == sentinel.Error() {
			return nil
		}
	}
	return []string{msg}
}

// writeProblem sends err as its problem document.
func writeProblem(w http.ResponseWriter, err error) {
	var p *Problem
	if !errors.As(err, &p) {
		p = problemFrom(err)
	}
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(p.Status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}
