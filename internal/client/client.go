// Package client is the typed Go client for the sramserverd v1 jobs
// API. Every non-2xx response is decoded into a *jobs.Problem (the
// service's RFC 9457 problem document), so callers branch on problem
// types instead of scraping status text:
//
//	c := client.New("http://localhost:8080")
//	snap, err := c.SubmitWait(ctx, jobs.Request{Workload: "rnm", Method: "g-s", Seed: 1})
//	var p *jobs.Problem
//	if errors.As(err, &p) && p.Status == http.StatusTooManyRequests { … }
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/jobs"
)

// Client talks to one sramserverd instance.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at base (http://host:port). The
// given HTTP client is used when non-nil; the default has no overall
// timeout so that wait-mode submissions and event streams can run
// indefinitely (pass a context to bound individual calls).
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Submit enqueues a job and returns its initial snapshot. A non-empty
// idempotencyKey makes the submission at-most-once: resubmitting with
// the same key and body returns the original job with replayed=true,
// while reusing the key with a different body fails with the
// idempotency-conflict problem.
func (c *Client) Submit(ctx context.Context, req jobs.Request, idempotencyKey string) (snap jobs.Snapshot, replayed bool, err error) {
	hdr := http.Header{}
	if idempotencyKey != "" {
		hdr.Set("Idempotency-Key", idempotencyKey)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", hdr, req, &snap)
	if err != nil {
		return jobs.Snapshot{}, false, err
	}
	return snap, resp.Header.Get("Idempotent-Replay") == "true", nil
}

// SubmitWait submits a job in wait mode: the call blocks until the job
// is terminal and returns its final snapshot. Cancelling ctx cancels
// the job (the connection is the job's lifeline).
func (c *Client) SubmitWait(ctx context.Context, req jobs.Request) (jobs.Snapshot, error) {
	var snap jobs.Snapshot
	_, err := c.do(ctx, http.MethodPost, "/v1/jobs?wait=1", nil, req, &snap)
	return snap, err
}

// Get returns one job's current snapshot (live progress while it runs).
func (c *Client) Get(ctx context.Context, id string) (jobs.Snapshot, error) {
	var snap jobs.Snapshot
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, &snap)
	return snap, err
}

// Wait polls the job until it reaches a terminal state and returns the
// final snapshot. The poll interval defaults to one second when
// non-positive.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (jobs.Snapshot, error) {
	if poll <= 0 {
		poll = time.Second
	}
	for {
		snap, err := c.Get(ctx, id)
		if err != nil {
			return jobs.Snapshot{}, err
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		select {
		case <-ctx.Done():
			return snap, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Cancel cancels a job and returns its snapshot.
func (c *Client) Cancel(ctx context.Context, id string) (jobs.Snapshot, error) {
	var snap jobs.Snapshot
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil, &snap)
	return snap, err
}

// ListOptions filters and pages GET /v1/jobs.
type ListOptions struct {
	State  jobs.State // zero value selects every state
	Limit  int        // 0 selects the server default
	Offset int
}

// List returns one page of jobs.
func (c *Client) List(ctx context.Context, opts ListOptions) (jobs.JobList, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", string(opts.State))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Offset > 0 {
		q.Set("offset", strconv.Itoa(opts.Offset))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var list jobs.JobList
	_, err := c.do(ctx, http.MethodGet, path, nil, nil, &list)
	return list, err
}

// Report fetches the finished job's statistical run-report.
func (c *Client) Report(ctx context.Context, id string) (*repro.RunReport, error) {
	var rep repro.RunReport
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/report", nil, nil, &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Workload describes one entry of GET /v1/workloads.
type Workload struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Dim         int    `json:"dim"`
}

// Workloads returns the server's workload registry.
func (c *Client) Workloads(ctx context.Context) ([]Workload, error) {
	var ws []Workload
	_, err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, nil, &ws)
	return ws, err
}

// Cluster returns the coordinator's fleet summary (GET /v1/cluster):
// per-worker status, lease counters and the folded sampling rate. The
// endpoint exists only when the server runs with -dist.
func (c *Client) Cluster(ctx context.Context) (dist.ClusterSummary, error) {
	var sum dist.ClusterSummary
	_, err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, nil, &sum)
	return sum, err
}

// Event is one frame of a server-sent event stream.
type Event struct {
	// ID is the bus sequence number — pass it as lastID to resume.
	ID int64
	// Name is the dot-namespaced event name ("progress", "job.done", …).
	Name string
	// Data is the event's JSON payload.
	Data json.RawMessage
}

// Events streams a job's live events (or the server-global stream when
// jobID is empty), calling fn for each one until the stream ends, ctx
// is cancelled, or fn returns a non-nil error (which ends the stream
// and is returned). lastID >= 0 resumes after that sequence number.
func (c *Client) Events(ctx context.Context, jobID string, lastID int64, fn func(Event) error) error {
	path := "/v1/events"
	if jobID != "" {
		path = "/v1/jobs/" + url.PathEscape(jobID) + "/events"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	if lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return problemOf(resp)
	}

	// Plain SSE: "id:"/"event:"/"data:" lines per frame, blank-line
	// terminated, ":" comments (heartbeats) ignored.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var ev Event
	flush := func() error {
		if ev.Name == "" && ev.Data == nil {
			return nil
		}
		err := fn(ev)
		ev = Event{}
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.ParseInt(line[4:], 10, 64)
		case strings.HasPrefix(line, "event: "):
			ev.Name = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(line[6:])
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// do sends one JSON request and decodes a 2xx body into out. Non-2xx
// responses become a *jobs.Problem error.
func (c *Client) do(ctx context.Context, method, path string, hdr http.Header, in, out any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp, problemOf(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp, nil
}

// problemOf turns a non-2xx response into a *jobs.Problem, synthesizing
// one when the body is not a problem document.
func problemOf(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	ct, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if ct == "application/problem+json" {
		var p jobs.Problem
		if err := json.Unmarshal(body, &p); err == nil && p.Status != 0 {
			return &p
		}
	}
	return &jobs.Problem{
		Type:   jobs.ProblemType + "http-" + strconv.Itoa(resp.StatusCode),
		Title:  http.StatusText(resp.StatusCode),
		Status: resp.StatusCode,
		Detail: strings.TrimSpace(string(body)),
	}
}

// IsProblem reports whether err is a service problem of the given type
// slug (the part after the "urn:repro:problem:" prefix).
func IsProblem(err error, slug string) bool {
	var p *jobs.Problem
	return errors.As(err, &p) && p.Type == jobs.ProblemType+slug
}
