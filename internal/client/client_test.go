package client

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/surrogate"
	"repro/internal/telemetry"
)

func testResolve(name string) (repro.Metric, error) {
	if name == "lin" {
		return &surrogate.Linear{W: []float64{1, 1}, B: 4.5}, nil
	}
	return nil, fmt.Errorf("test: unknown workload %q", name)
}

func newServer(t *testing.T) *Client {
	t.Helper()
	mgr := jobs.NewManager(jobs.Config{
		Resolve:   testResolve,
		Registry:  telemetry.New(),
		Executors: 2,
		EventRing: 64,
		CacheSize: 8,
	})
	srv := httptest.NewServer(jobs.Handler(mgr))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		mgr.Drain(ctx)
	})
	return New(srv.URL, nil)
}

func TestSubmitWaitGetList(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()
	req := jobs.Request{Workload: "lin", Method: "g-s", Seed: 1, K: 100, N: 1000}

	snap, err := c.SubmitWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != jobs.StateDone || snap.Result == nil || snap.Result.Pf <= 0 {
		t.Fatalf("wait-mode snapshot: %+v", snap)
	}

	got, err := c.Get(ctx, snap.ID)
	if err != nil || got.ID != snap.ID {
		t.Fatalf("Get: %+v, %v", got, err)
	}

	waited, err := c.Wait(ctx, snap.ID, 5*time.Millisecond)
	if err != nil || !waited.State.Terminal() {
		t.Fatalf("Wait: %+v, %v", waited, err)
	}

	list, err := c.List(ctx, ListOptions{State: jobs.StateDone, Limit: 10})
	if err != nil || list.Total != 1 || len(list.Jobs) != 1 {
		t.Fatalf("List: %+v, %v", list, err)
	}

	rep, err := c.Report(ctx, snap.ID)
	if err != nil || rep.Method == "" {
		t.Fatalf("Report: %+v, %v", rep, err)
	}

	ws, err := c.Workloads(ctx)
	if err != nil || len(ws) == 0 {
		t.Fatalf("Workloads: %v, %v", ws, err)
	}
}

func TestSubmitIdempotency(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()
	req := jobs.Request{Workload: "lin", Method: "g-s", Seed: 2, K: 100, N: 1000}

	first, replayed, err := c.Submit(ctx, req, "key-1")
	if err != nil || replayed {
		t.Fatalf("first submit: replayed=%v err=%v", replayed, err)
	}
	second, replayed, err := c.Submit(ctx, req, "key-1")
	if err != nil || !replayed || second.ID != first.ID {
		t.Fatalf("replay: %+v replayed=%v err=%v", second, replayed, err)
	}

	req.Seed = 3
	_, _, err = c.Submit(ctx, req, "key-1")
	if !IsProblem(err, "idempotency-conflict") {
		t.Fatalf("conflict error: %v", err)
	}
	var p *jobs.Problem
	if !errors.As(err, &p) || p.Status != 409 {
		t.Fatalf("conflict problem: %+v", p)
	}
}

func TestProblemErrors(t *testing.T) {
	c := newServer(t)
	ctx := context.Background()

	_, err := c.Get(ctx, "j999999")
	if !IsProblem(err, "not-found") {
		t.Fatalf("missing job: %v", err)
	}

	_, _, err = c.Submit(ctx, jobs.Request{Workload: "lin", K: -1}, "")
	var p *jobs.Problem
	if !errors.As(err, &p) || p.Status != 400 || len(p.Errors) == 0 {
		t.Fatalf("invalid options: %v", err)
	}

	_, _, err = c.Submit(ctx, jobs.Request{Workload: "lin", Distribute: true}, "")
	if !IsProblem(err, "distribution-disabled") {
		t.Fatalf("distribute without workers: %v", err)
	}
}

func TestEvents(t *testing.T) {
	c := newServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	snap, err := c.SubmitWait(ctx, jobs.Request{Workload: "lin", Method: "g-s", Seed: 4, K: 100, N: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// The ring retains the finished job's events; stop at job.done.
	var names []string
	sentinel := errors.New("done")
	err = c.Events(ctx, snap.ID, -1, func(ev Event) error {
		names = append(names, ev.Name)
		if ev.Name == "job.done" {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Events: %v (saw %v)", err, names)
	}
	if len(names) < 2 {
		t.Fatalf("too few events: %v", names)
	}
}
