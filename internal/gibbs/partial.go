package gibbs

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/mc"
)

// TwoStagePartial is the distributed form of TwoStageContext: it runs
// the entire first stage exactly as the single-node flow does — the
// Algorithm 4 starting-point search, the Gibbs chain and the
// distortion fit, all sequential and seeded, consuming rng in the same
// order — and then evaluates only the requested second-stage index
// ranges. The returned TwoStageResult carries the first-stage products
// (Start, Samples, GNor/GMix, Stage1Sims); the mc.Result inside it is
// left zero — the caller folds the partials with
// mc.FoldImportanceSample to reconstruct it.
//
// Because the prefix is deterministic, every node that replays it
// arrives at the same distortion and the same stage-2 sample stream;
// sharding the ranges across nodes and folding in index order is
// bit-identical to one node running TwoStageContext.
func TwoStagePartial(ctx context.Context, counter *mc.Counter, opts TwoStageOptions, rng *rand.Rand, ranges []mc.Range) (*TwoStageResult, []mc.Partial, error) {
	if opts.N <= 0 {
		return nil, nil, errors.New("gibbs: N must be positive")
	}
	res, err := firstStage(ctx, counter, &opts, rng)
	if err != nil {
		return nil, nil, err
	}
	ev := mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry)
	parts, err := mc.ImportanceSamplePartial(ctx, ev, res.distortion(), opts.N, rng, ranges)
	if err != nil {
		return nil, nil, err
	}
	return res, parts, nil
}
