package gibbs

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/surrogate"
)

func TestAutocorrelationIID(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	r0, err := Autocorrelation(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-1) > 1e-2 {
		t.Fatalf("lag-0 autocorrelation %v", r0)
	}
	r1, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1) > 0.03 {
		t.Fatalf("iid lag-1 autocorrelation %v", r1)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with φ = 0.8: ρ(k) = 0.8^k, τ = (1+φ)/(1−φ) = 9.
	rng := rand.New(rand.NewSource(2))
	const phi = 0.8
	xs := make([]float64, 200000)
	x := 0.0
	for i := range xs {
		x = phi*x + rng.NormFloat64()
		xs[i] = x
	}
	r1, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-phi) > 0.02 {
		t.Fatalf("AR1 lag-1 %v, want %v", r1, phi)
	}
	tau, err := IntegratedAutocorrTime(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-9) > 1.5 {
		t.Fatalf("τ = %v, want ≈9", tau)
	}
}

func TestAutocorrelationValidation(t *testing.T) {
	if _, err := Autocorrelation([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("lag out of range should error")
	}
	if _, err := Autocorrelation([]float64{2, 2, 2, 2}, 1); !errors.Is(err, ErrConstantChain) {
		t.Fatalf("constant series: got %v, want ErrConstantChain", err)
	}
	if _, err := IntegratedAutocorrTime([]float64{1, 2}); !errors.Is(err, ErrShortChain) {
		t.Fatalf("short series: got %v, want ErrShortChain", err)
	}
	if _, err := EffectiveSampleSize([][]float64{{1}, {2}}); !errors.Is(err, ErrShortChain) {
		t.Fatalf("short stream: got %v, want ErrShortChain", err)
	}
}

// Satellite edge cases: every degenerate input must surface a typed
// error — never a NaN result.
func TestRHatEdgeCases(t *testing.T) {
	if _, err := RHat([][]float64{{1, 2, 3, 4}}); !errors.Is(err, ErrSingleChain) {
		t.Fatalf("single chain: got %v, want ErrSingleChain", err)
	}
	if _, err := RHat([][]float64{{1, 2, 3}, {4, 5, 6}}); !errors.Is(err, ErrShortChain) {
		t.Fatalf("short chains: got %v, want ErrShortChain", err)
	}
	if _, err := RHat([][]float64{{1, 2, 3, 4}, {1, 2, 3}}); err == nil {
		t.Fatal("unequal chain lengths should error")
	}
	if _, err := RHat([][]float64{{7, 7, 7, 7}, {7, 7, 7, 7}}); !errors.Is(err, ErrConstantChain) {
		t.Fatalf("constant chains: got %v, want ErrConstantChain", err)
	}
	// Frozen at different values still has zero within-chain variance.
	if _, err := RHat([][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}}); !errors.Is(err, ErrConstantChain) {
		t.Fatalf("frozen-apart chains: got %v, want ErrConstantChain", err)
	}
}

func TestSplitRHatEdgeCases(t *testing.T) {
	if _, err := SplitRHat([]float64{1, 2, 3, 4, 5, 6, 7}); !errors.Is(err, ErrShortChain) {
		t.Fatalf("series shorter than split length: got %v, want ErrShortChain", err)
	}
	if _, err := SplitRHat([]float64{3, 3, 3, 3, 3, 3, 3, 3}); !errors.Is(err, ErrConstantChain) {
		t.Fatalf("constant series: got %v, want ErrConstantChain", err)
	}
	// An odd-length series drops the final point rather than comparing
	// unequal halves.
	if r, err := SplitRHat([]float64{0, 1, 0, 2, 1, 0, 2, 1, 99}); err != nil || math.IsNaN(r) {
		t.Fatalf("odd-length series: r=%v err=%v", r, err)
	}
}

func TestSplitRHatWellMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	r, err := SplitRHat(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 || r > 1.05 {
		t.Fatalf("iid split R-hat = %v, want ≈1", r)
	}
}

func TestSplitRHatDetectsDrift(t *testing.T) {
	// A strong linear trend means the halves disagree: R-hat ≫ 1.1.
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 0.01*float64(i) + 0.1*rng.NormFloat64()
	}
	r, err := SplitRHat(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1.5 {
		t.Fatalf("drifting-chain split R-hat = %v, want ≫ 1.1", r)
	}
}

func TestMaxSplitRHat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Coordinate 0 well mixed, coordinate 1 drifting, coordinate 2 frozen
	// (skipped): the max must come from the drifting coordinate.
	samples := make([][]float64, 1000)
	for i := range samples {
		samples[i] = []float64{rng.NormFloat64(), 0.01 * float64(i), 5}
	}
	r, err := MaxSplitRHat(samples)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1.5 {
		t.Fatalf("max split R-hat = %v, want the drifting coordinate's ≫ 1.1", r)
	}
	if _, err := MaxSplitRHat(samples[:4]); !errors.Is(err, ErrShortChain) {
		t.Fatalf("short stream: got %v, want ErrShortChain", err)
	}
	frozen := [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}, {1, 2}}
	if _, err := MaxSplitRHat(frozen); !errors.Is(err, ErrConstantChain) {
		t.Fatalf("all-frozen stream: got %v, want ErrConstantChain", err)
	}
}

// The spherical chain on an arc mixes faster (higher ESS per sample)
// than the Cartesian chain — the quantitative form of Fig. 14.
func TestESSOrderingOnArc(t *testing.T) {
	arc := &surrogate.Arc{R: 3, HalfAngle: 2.5}
	start := []float64{3.3 * math.Cos(2.2), 3.3 * math.Sin(2.2)}
	rngC := rand.New(rand.NewSource(3))
	cart, err := CartesianChain(arc, start, 2000, nil, rngC)
	if err != nil {
		t.Fatal(err)
	}
	rngS := rand.New(rand.NewSource(3))
	sph, err := SphericalChain(arc, start, 2000, nil, rngS)
	if err != nil {
		t.Fatal(err)
	}
	essC, err := EffectiveSampleSize(cart)
	if err != nil {
		t.Fatal(err)
	}
	essS, err := EffectiveSampleSize(sph)
	if err != nil {
		t.Fatal(err)
	}
	if essS <= essC {
		t.Fatalf("spherical ESS %v should exceed Cartesian ESS %v on the arc", essS, essC)
	}
}
