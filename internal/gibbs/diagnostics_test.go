package gibbs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/surrogate"
)

func TestAutocorrelationIID(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	r0, err := Autocorrelation(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-1) > 1e-2 {
		t.Fatalf("lag-0 autocorrelation %v", r0)
	}
	r1, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1) > 0.03 {
		t.Fatalf("iid lag-1 autocorrelation %v", r1)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with φ = 0.8: ρ(k) = 0.8^k, τ = (1+φ)/(1−φ) = 9.
	rng := rand.New(rand.NewSource(2))
	const phi = 0.8
	xs := make([]float64, 200000)
	x := 0.0
	for i := range xs {
		x = phi*x + rng.NormFloat64()
		xs[i] = x
	}
	r1, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-phi) > 0.02 {
		t.Fatalf("AR1 lag-1 %v, want %v", r1, phi)
	}
	tau, err := IntegratedAutocorrTime(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-9) > 1.5 {
		t.Fatalf("τ = %v, want ≈9", tau)
	}
}

func TestAutocorrelationValidation(t *testing.T) {
	if _, err := Autocorrelation([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("lag out of range should error")
	}
	if _, err := Autocorrelation([]float64{2, 2, 2, 2}, 1); err == nil {
		t.Fatal("constant series should error")
	}
	if _, err := IntegratedAutocorrTime([]float64{1, 2}); err == nil {
		t.Fatal("short series should error")
	}
	if _, err := EffectiveSampleSize([][]float64{{1}, {2}}); err == nil {
		t.Fatal("short stream should error")
	}
}

// The spherical chain on an arc mixes faster (higher ESS per sample)
// than the Cartesian chain — the quantitative form of Fig. 14.
func TestESSOrderingOnArc(t *testing.T) {
	arc := &surrogate.Arc{R: 3, HalfAngle: 2.5}
	start := []float64{3.3 * math.Cos(2.2), 3.3 * math.Sin(2.2)}
	rngC := rand.New(rand.NewSource(3))
	cart, err := CartesianChain(arc, start, 2000, nil, rngC)
	if err != nil {
		t.Fatal(err)
	}
	rngS := rand.New(rand.NewSource(3))
	sph, err := SphericalChain(arc, start, 2000, nil, rngS)
	if err != nil {
		t.Fatal(err)
	}
	essC, err := EffectiveSampleSize(cart)
	if err != nil {
		t.Fatal(err)
	}
	essS, err := EffectiveSampleSize(sph)
	if err != nil {
		t.Fatal(err)
	}
	if essS <= essC {
		t.Fatalf("spherical ESS %v should exceed Cartesian ESS %v on the arc", essS, essC)
	}
}
