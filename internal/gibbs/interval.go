package gibbs

// failureInterval implements step 2 of the paper's Algorithm 3: locate a
// contiguous 1-D failure interval [u, v] ⊆ [lo, hi] along the coordinate
// being resampled, by bracketing and bisection against the pass/fail
// indicator. probe(t) reports failure at coordinate value t and costs one
// transistor-level simulation.
//
// The search starts from t0 (the chain's current coordinate value, which
// normally fails). If t0 passes — the chain can drift out when other
// coordinates moved the arc (paper §V-B discussion) — a coarse scan over
// [lo, hi] recovers the failing segment nearest to t0; if the scan finds
// nothing, ok is false and the caller keeps the current value.
//
// When the failure region touches a bound, that bound is returned as the
// boundary (the paper's "bound the high-probability failure region by
// constraining x_m within [−ζ, ζ]").
func failureInterval(probe func(float64) bool, t0, lo, hi float64, o *Options) (u, v float64, ok bool) {
	u, v, st := failureIntervalStat(probe, t0, lo, hi, o)
	return u, v, st != intervalNone
}

// intervalStatus classifies one interval search, the chain-telemetry
// distinction between a healthy update and one that needed rescuing.
type intervalStatus int

const (
	// intervalNone: no failing segment found; the caller keeps the
	// current coordinate value.
	intervalNone intervalStatus = iota
	// intervalAtCurrent: the current value still fails; the interval was
	// bracketed directly from it.
	intervalAtCurrent
	// intervalRecovered: the current value passes and the coarse scan
	// recovered a failing segment elsewhere.
	intervalRecovered
)

// failureIntervalStat is failureInterval with the search outcome
// classified for telemetry.
func failureIntervalStat(probe func(float64) bool, t0, lo, hi float64, o *Options) (u, v float64, st intervalStatus) {
	if t0 < lo {
		t0 = lo
	}
	if t0 > hi {
		t0 = hi
	}
	st = intervalAtCurrent
	if !probe(t0) {
		best, found := 0.0, false
		bestDist := hi - lo + 1
		for i := 0; i < o.ScanPoints; i++ {
			t := lo + (hi-lo)*(float64(i)+0.5)/float64(o.ScanPoints)
			if probe(t) {
				d := t - t0
				if d < 0 {
					d = -d
				}
				if d < bestDist {
					best, bestDist, found = t, d, true
				}
			}
		}
		if !found {
			return 0, 0, intervalNone
		}
		t0 = best
		st = intervalRecovered
	}
	v = expand(probe, t0, hi, +o.ExpandStep, o.Bisections)
	u = expand(probe, t0, lo, -o.ExpandStep, o.Bisections)
	return u, v, st
}

// expand walks from the failing point t0 toward bound in geometrically
// growing steps until the indicator passes or the bound is hit, then
// bisects the boundary. A positive step walks up, negative walks down.
func expand(probe func(float64) bool, t0, bound, step float64, bisections int) float64 {
	tFail := t0
	for {
		tn := tFail + step
		if (step > 0 && tn >= bound) || (step < 0 && tn <= bound) {
			if probe(bound) {
				return bound
			}
			return bisect(probe, tFail, bound, bisections)
		}
		if probe(tn) {
			tFail = tn
			step *= 2
		} else {
			return bisect(probe, tFail, tn, bisections)
		}
	}
}

// bisect refines the boundary between a failing point and a passing point,
// returning the failing-side estimate.
func bisect(probe func(float64) bool, tFail, tPass float64, iters int) float64 {
	for i := 0; i < iters; i++ {
		mid := 0.5 * (tFail + tPass)
		if probe(mid) {
			tFail = mid
		} else {
			tPass = mid
		}
	}
	return tFail
}
