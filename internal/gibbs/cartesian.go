package gibbs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/stat"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ErrStartNotFailing is returned when a chain is started outside the
// failure region: Gibbs sampling of g^OPT requires a failing start
// (Algorithm 4 provides one).
var ErrStartNotFailing = errors.New("gibbs: starting point is not in the failure region")

// CartesianChain runs the paper's Algorithm 1: starting from a failure
// point, it repeatedly resamples one Cartesian coordinate at a time from
// the 1-D conditional g^OPT(x_m | x_\m) — a truncated standard Normal over
// the coordinate's failure interval, sampled by inverse transform
// (Algorithm 3). Every coordinate update appends one sample, so the
// returned slice has exactly k samples (k simulations ≫ k because each
// update performs a bracketing/bisection search).
func CartesianChain(metric mc.Metric, start []float64, k int, opts *Options, rng *rand.Rand) ([][]float64, error) {
	return CartesianChainContext(context.Background(), metric, start, k, opts, rng)
}

// CartesianChainContext is CartesianChain with cancellation: ctx is
// polled before each coordinate update (one update is a handful of
// bracketing/bisection simulations — the chain's natural chunk), so a
// cancel aborts promptly with the context's error while an uncancelled
// chain is bit-identical to CartesianChain.
func CartesianChainContext(ctx context.Context, metric mc.Metric, start []float64, k int, opts *Options, rng *rand.Rand) ([][]float64, error) {
	o := opts.defaults()
	dim := metric.Dim()
	if len(start) != dim {
		return nil, fmt.Errorf("gibbs: start has %d coordinates, metric wants %d", len(start), dim)
	}
	if k <= 0 {
		return nil, errors.New("gibbs: sample count must be positive")
	}
	x := linalg.CopyVec(start)
	if !finiteVec(x) {
		return nil, fmt.Errorf("gibbs: starting point is not finite: %v", x)
	}
	if !mc.Fail(metric, x) {
		return nil, ErrStartNotFailing
	}
	ctx, span := telemetry.StartSpan(ctx, o.Telemetry, wire.EvGibbsChain)
	defer span.End()
	span.SetAttr("coord", Cartesian.String())
	updateAgg, probeAgg := span.Agg("update"), span.Agg("probe")
	ct := newChainTelemetry(o.Telemetry, cartesianCoordNames(dim), k)
	samples := make([][]float64, 0, k)
	m := 0
	for len(samples) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if o.Stop != nil && o.Stop() && len(samples) >= 2 {
			break
		}
		probes := 0
		probe := func(t float64) bool {
			probes++
			old := x[m]
			x[m] = t
			fail := mc.Fail(metric, x)
			x[m] = old
			return fail
		}
		u, v, st := failureIntervalStat(probe, x[m], -o.Zeta, o.Zeta, &o)
		if st != intervalNone {
			x[m] = stat.TruncNormSample(u, v, uniform01(rng))
		}
		ct.update(m, st, probes)
		updateAgg.Add(1)
		probeAgg.Add(int64(probes))
		// Paper Algorithm 1 line 5: each coordinate draw creates a new
		// sampling point (even when the recovery scan found nothing and
		// the coordinate kept its value).
		samples = append(samples, linalg.CopyVec(x))
		m = (m + 1) % dim
	}
	span.SetAttr("samples", len(samples))
	ct.done(Cartesian, samples)
	return samples, nil
}
