package gibbs

import (
	"math"
	"testing"
)

func defOpts() *Options {
	o := (&Options{}).defaults()
	return &o
}

func TestFailureIntervalSimple(t *testing.T) {
	// Failure on [2, 3]; start inside.
	probe := func(x float64) bool { return x >= 2 && x <= 3 }
	u, v, ok := failureInterval(probe, 2.5, -8, 8, defOpts())
	if !ok {
		t.Fatal("interval not found")
	}
	if math.Abs(u-2) > 0.02 || math.Abs(v-3) > 0.02 {
		t.Fatalf("interval [%v, %v], want ≈[2, 3]", u, v)
	}
}

func TestFailureIntervalTouchingBound(t *testing.T) {
	// Failure region extends past the upper bound.
	probe := func(x float64) bool { return x >= 5 }
	u, v, ok := failureInterval(probe, 6, -8, 8, defOpts())
	if !ok {
		t.Fatal("interval not found")
	}
	if v != 8 {
		t.Fatalf("upper boundary should clamp to bound, got %v", v)
	}
	if math.Abs(u-5) > 0.02 {
		t.Fatalf("lower boundary %v, want ≈5", u)
	}
}

func TestFailureIntervalWholeRange(t *testing.T) {
	probe := func(x float64) bool { return true }
	u, v, ok := failureInterval(probe, 0, -8, 8, defOpts())
	if !ok || u != -8 || v != 8 {
		t.Fatalf("whole-range interval: [%v, %v] ok=%v", u, v, ok)
	}
}

func TestFailureIntervalRecoveryScan(t *testing.T) {
	// Start point passes; a failing segment exists at [4, 5].
	probe := func(x float64) bool { return x >= 4 && x <= 5 }
	u, v, ok := failureInterval(probe, 0, -8, 8, defOpts())
	if !ok {
		t.Fatal("scan failed to recover the failing segment")
	}
	if u < 3.8 || v > 5.2 || u > v {
		t.Fatalf("recovered interval [%v, %v]", u, v)
	}
}

func TestFailureIntervalNoFailure(t *testing.T) {
	probe := func(x float64) bool { return false }
	if _, _, ok := failureInterval(probe, 0, -8, 8, defOpts()); ok {
		t.Fatal("found an interval in an all-pass line")
	}
}

func TestFailureIntervalNearestSegment(t *testing.T) {
	// Two failing segments; recovery must pick the one nearest the start.
	probe := func(x float64) bool {
		return (x >= -6 && x <= -5) || (x >= 3 && x <= 4)
	}
	u, v, ok := failureInterval(probe, 2, -8, 8, defOpts())
	if !ok {
		t.Fatal("not found")
	}
	if u < 2.5 || v > 4.5 {
		t.Fatalf("expected the [3,4] segment, got [%v, %v]", u, v)
	}
}

func TestFailureIntervalStartClamped(t *testing.T) {
	probe := func(x float64) bool { return x >= 7 }
	// Start outside the bounds must be clamped, not crash.
	u, v, ok := failureInterval(probe, 12, -8, 8, defOpts())
	if !ok || v != 8 || math.Abs(u-7) > 0.02 {
		t.Fatalf("clamped start: [%v, %v] ok=%v", u, v, ok)
	}
}

func TestBisectionAccuracyScalesWithIters(t *testing.T) {
	probe := func(x float64) bool { return x <= 1.234 }
	coarse := (&Options{Bisections: 3}).defaults()
	fine := (&Options{Bisections: 14}).defaults()
	_, vc, _ := failureInterval(probe, 0, -8, 8, &coarse)
	_, vf, _ := failureInterval(probe, 0, -8, 8, &fine)
	if math.Abs(vf-1.234) > math.Abs(vc-1.234) {
		t.Fatalf("more bisections should not be less accurate: %v vs %v", vf, vc)
	}
	if math.Abs(vf-1.234) > 1e-3 {
		t.Fatalf("fine boundary off: %v", vf)
	}
}
