package gibbs

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/mc"
	"repro/internal/surrogate"
)

// The engine's determinism guarantee, end to end through Algorithm 5:
// the same seed must produce bit-identical estimates for every worker
// count — the first stage is sequential and the second stage seeds each
// sample from its index, never from the worker that ran it.

func workerCounts() []int { return []int{1, 2, 7, runtime.GOMAXPROCS(0)} }

func runTwoStage(t *testing.T, workers int) *TwoStageResult {
	t.Helper()
	lin := &surrogate.Linear{W: []float64{1, 1, 1}, B: 7}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(31))
	res, err := TwoStage(counter, TwoStageOptions{
		Coord: Spherical, K: 300, N: 3000, Workers: workers,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwoStageWorkerCountInvariant(t *testing.T) {
	ref := runTwoStage(t, 1)
	for _, workers := range workerCounts()[1:] {
		res := runTwoStage(t, workers)
		if res.Pf != ref.Pf || res.N != ref.N || res.Failures != ref.Failures {
			t.Fatalf("workers=%d diverged: got (Pf=%v N=%d F=%d), want (Pf=%v N=%d F=%d)",
				workers, res.Pf, res.N, res.Failures, ref.Pf, ref.N, ref.Failures)
		}
		if res.StdErr != ref.StdErr || res.WeightESS != ref.WeightESS {
			t.Fatalf("workers=%d error bars diverged", workers)
		}
		if res.Stage1Sims != ref.Stage1Sims || res.Stage2Sims != ref.Stage2Sims {
			t.Fatalf("workers=%d stage accounting diverged: %d/%d vs %d/%d",
				workers, res.Stage1Sims, res.Stage2Sims, ref.Stage1Sims, ref.Stage2Sims)
		}
	}
}

func runTwoStageUntil(t *testing.T, workers int) *TwoStageResult {
	t.Helper()
	lin := &surrogate.Linear{W: []float64{1, 1, 1}, B: 7}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(32))
	res, err := TwoStageUntil(counter, TwoStageOptions{
		Coord: Spherical, K: 300, Workers: workers,
	}, 0.05, 200, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwoStageUntilWorkerCountInvariant(t *testing.T) {
	ref := runTwoStageUntil(t, 1)
	if ref.RelErr99 > 0.05 {
		t.Fatalf("missed target: %v after %d", ref.RelErr99, ref.N)
	}
	for _, workers := range workerCounts()[1:] {
		res := runTwoStageUntil(t, workers)
		if res.Pf != ref.Pf || res.N != ref.N || res.Failures != ref.Failures {
			t.Fatalf("workers=%d diverged: got (Pf=%v N=%d F=%d), want (Pf=%v N=%d F=%d)",
				workers, res.Pf, res.N, res.Failures, ref.Pf, ref.N, ref.Failures)
		}
		if res.Stage2Sims != ref.Stage2Sims {
			t.Fatalf("workers=%d stage-2 cost diverged: %d vs %d",
				workers, res.Stage2Sims, ref.Stage2Sims)
		}
	}
}
