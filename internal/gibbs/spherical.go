package gibbs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/stat"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SphericalCoords maps a Cartesian point to the paper's redundant
// spherical parameterization (eqs. 30 and 32): r = ‖x‖ and
// α = ε·x/r, the maximum-likelihood orientation representative
// (‖α‖ = ε → 0 maximizes f(α)).
func SphericalCoords(x []float64, eps float64) (r float64, alpha []float64, err error) {
	r = linalg.Norm2(x)
	//reprolint:ignore floateq Norm2 is exactly 0 only for the all-zero vector; degenerate-input guard
	if r == 0 {
		return 0, nil, errors.New("gibbs: cannot map the origin to spherical coordinates")
	}
	alpha = linalg.CopyVec(x)
	linalg.Scale(alpha, eps/r)
	return r, alpha, nil
}

// CartesianFromSpherical applies paper eq. (11): x = r·α/‖α‖₂.
func CartesianFromSpherical(r float64, alpha []float64) ([]float64, error) {
	n := linalg.Norm2(alpha)
	//reprolint:ignore floateq Norm2 is exactly 0 only for the all-zero vector; degenerate-input guard
	if n == 0 {
		return nil, errors.New("gibbs: zero orientation vector")
	}
	x := linalg.CopyVec(alpha)
	linalg.Scale(x, r/n)
	return x, nil
}

// SphericalChain runs the paper's Algorithm 2: Gibbs sampling over the
// (M+1)-dimensional redundant spherical coordinates (r, α₁…α_M). Each
// iteration first resamples the radius r from a truncated Chi(M)
// conditional, then each orientation coordinate α_m from a truncated
// standard Normal conditional; each update lets the Cartesian point slide
// along a probability contour (the arcs of Fig. 3), which is what lets
// the spherical chain traverse failure regions that trap the Cartesian
// chain (§V-B). Every coordinate update appends one sample (in Cartesian
// coordinates, ready for the Algorithm 5 fit).
func SphericalChain(metric mc.Metric, start []float64, k int, opts *Options, rng *rand.Rand) ([][]float64, error) {
	return SphericalChainContext(context.Background(), metric, start, k, opts, rng)
}

// SphericalChainContext is SphericalChain with cancellation: ctx is
// polled before each coordinate update (radius or orientation — a
// handful of simulations each), so a cancel aborts promptly with the
// context's error while an uncancelled chain is bit-identical to
// SphericalChain.
func SphericalChainContext(ctx context.Context, metric mc.Metric, start []float64, k int, opts *Options, rng *rand.Rand) ([][]float64, error) {
	o := opts.defaults()
	dim := metric.Dim()
	if len(start) != dim {
		return nil, fmt.Errorf("gibbs: start has %d coordinates, metric wants %d", len(start), dim)
	}
	if k <= 0 {
		return nil, errors.New("gibbs: sample count must be positive")
	}
	if !finiteVec(start) {
		return nil, fmt.Errorf("gibbs: starting point is not finite: %v", start)
	}
	if !mc.Fail(metric, start) {
		return nil, ErrStartNotFailing
	}
	r, alpha, err := SphericalCoords(start, o.Epsilon)
	if err != nil {
		return nil, err
	}
	rmax := o.rmax(dim)

	cur := func() []float64 {
		x, err := CartesianFromSpherical(r, alpha)
		if err != nil {
			// ‖α‖ can only vanish if every α_m was driven to zero, which
			// truncated-Normal draws cannot do exactly.
			panic("gibbs: orientation collapsed to zero")
		}
		return x
	}

	ctx, span := telemetry.StartSpan(ctx, o.Telemetry, wire.EvGibbsChain)
	defer span.End()
	span.SetAttr("coord", Spherical.String())
	updateAgg, probeAgg := span.Agg("update"), span.Agg("probe")
	ct := newChainTelemetry(o.Telemetry, sphericalCoordNames(dim), k)
	samples := make([][]float64, 0, k)
	record := func() { samples = append(samples, cur()) }

	coord := -1 // -1 = radius, 0..M-1 = α index, cycled in Algorithm 2 order
	for len(samples) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if o.Stop != nil && o.Stop() && len(samples) >= 2 {
			break
		}
		probes := 0
		if coord == -1 {
			probe := func(t float64) bool {
				probes++
				x, err := CartesianFromSpherical(t, alpha)
				if err != nil {
					return false
				}
				return mc.Fail(metric, x)
			}
			u, v, st := failureIntervalStat(probe, r, 0, rmax, &o)
			if st != intervalNone {
				r = stat.TruncChiSample(dim, u, v, uniform01(rng))
			}
			ct.update(0, st, probes)
		} else {
			m := coord
			probe := func(t float64) bool {
				probes++
				old := alpha[m]
				alpha[m] = t
				x, err := CartesianFromSpherical(r, alpha)
				alpha[m] = old
				if err != nil {
					return false
				}
				return mc.Fail(metric, x)
			}
			u, v, st := failureIntervalStat(probe, alpha[m], -o.Zeta, o.Zeta, &o)
			if st != intervalNone {
				alpha[m] = stat.TruncNormSample(u, v, uniform01(rng))
			}
			ct.update(m+1, st, probes)
		}
		updateAgg.Add(1)
		probeAgg.Add(int64(probes))
		record()
		coord++
		if coord == dim {
			coord = -1
		}
	}
	span.SetAttr("samples", len(samples))
	ct.done(Spherical, samples)
	return samples, nil
}
