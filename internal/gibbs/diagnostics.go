package gibbs

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stat"
)

// Chain diagnostics. The paper's Algorithm 4 exists to shrink the
// warm-up interval and its §VI limitation notes slow high-dimensional
// mixing; these estimators quantify both: per-coordinate
// autocorrelation, integrated autocorrelation time, effective sample
// size, and the split-chain Gelman–Rubin statistic of a Gibbs sample
// stream.

// Typed diagnostic failures. Every diagnostic in this file reports a
// degenerate input through one of these (wrapped with context) rather
// than returning NaN; test with errors.Is.
var (
	// ErrShortChain means the series is too short for the requested
	// diagnostic.
	ErrShortChain = errors.New("gibbs: chain too short for diagnostic")
	// ErrConstantChain means the series has no variance, so ratio-based
	// diagnostics (autocorrelation, R-hat) are undefined on it.
	ErrConstantChain = errors.New("gibbs: constant chain has no variance")
	// ErrSingleChain means a multi-chain diagnostic was given fewer than
	// two chains.
	ErrSingleChain = errors.New("gibbs: diagnostic needs at least two chains")
)

// Autocorrelation returns the normalized autocorrelation of xs at the
// given lag (lag 0 ⇒ 1).
func Autocorrelation(xs []float64, lag int) (float64, error) {
	n := len(xs)
	if lag < 0 || lag >= n {
		return 0, errors.New("gibbs: lag out of range")
	}
	var m stat.Running
	for _, v := range xs {
		m.Push(v)
	}
	mu, v := m.Mean(), m.Var()
	//reprolint:ignore floateq Welford variance is exactly 0 only for a constant chain; exact sentinel, not a numeric comparison
	if v == 0 {
		return 0, fmt.Errorf("%w: no autocorrelation", ErrConstantChain)
	}
	s := 0.0
	for i := 0; i+lag < n; i++ {
		s += (xs[i] - mu) * (xs[i+lag] - mu)
	}
	return s / (float64(n-1) * v), nil
}

// IntegratedAutocorrTime estimates τ = 1 + 2·Σ ρ(k), truncating the sum
// at the first non-positive autocorrelation (Geyer's initial positive
// sequence, simplified). τ ≈ 1 for independent samples; K Gibbs samples
// carry roughly K/τ independent ones.
func IntegratedAutocorrTime(xs []float64) (float64, error) {
	if len(xs) < 4 {
		return 0, fmt.Errorf("%w: need ≥ 4 samples, have %d", ErrShortChain, len(xs))
	}
	tau := 1.0
	maxLag := len(xs) / 2
	for k := 1; k < maxLag; k++ {
		rho, err := Autocorrelation(xs, k)
		if err != nil {
			return 0, err
		}
		if rho <= 0 {
			break
		}
		tau += 2 * rho
	}
	return tau, nil
}

// EffectiveSampleSize returns the minimum per-coordinate effective sample
// size of a multivariate sample stream: K/max_j τ_j. It is the honest
// "how many Gibbs samples do I really have" number to compare against
// the covariance-fit requirements of Algorithm 5.
func EffectiveSampleSize(samples [][]float64) (float64, error) {
	if len(samples) < 4 {
		return 0, fmt.Errorf("%w: need ≥ 4 samples, have %d", ErrShortChain, len(samples))
	}
	dim := len(samples[0])
	worst := 1.0
	col := make([]float64, len(samples))
	for j := 0; j < dim; j++ {
		for i, s := range samples {
			col[i] = s[j]
		}
		tau, err := IntegratedAutocorrTime(col)
		if err != nil {
			// A frozen coordinate (constant series) contributes no
			// information; treat its τ as the chain length.
			tau = float64(len(samples))
		}
		if tau > worst {
			worst = tau
		}
	}
	return float64(len(samples)) / worst, nil
}

// minSplitLen is the shortest scalar series SplitRHat accepts: each half
// must carry at least 4 points for a meaningful variance.
const minSplitLen = 8

// RHat computes the Gelman–Rubin potential scale reduction factor over
// two or more scalar chains of equal length: the square root of the
// pooled-over-within variance ratio. Values near 1 indicate the chains
// sample the same distribution; > 1.1 is the conventional
// "not converged" threshold. Degenerate inputs report typed errors
// (ErrSingleChain, ErrShortChain, ErrConstantChain) rather than NaN.
func RHat(chains [][]float64) (float64, error) {
	m := len(chains)
	if m < 2 {
		return 0, fmt.Errorf("%w: have %d", ErrSingleChain, m)
	}
	n := len(chains[0])
	for _, c := range chains[1:] {
		if len(c) != n {
			return 0, errors.New("gibbs: R-hat chains must have equal length")
		}
	}
	if n < 4 {
		return 0, fmt.Errorf("%w: need ≥ 4 samples per chain, have %d", ErrShortChain, n)
	}
	var between stat.Running // of chain means
	w := 0.0                 // mean within-chain variance
	for _, c := range chains {
		var run stat.Running
		for _, v := range c {
			run.Push(v)
		}
		between.Push(run.Mean())
		w += run.Var()
	}
	w /= float64(m)
	//reprolint:ignore floateq within-chain variance is exactly 0 only when every split chain is constant; exact sentinel
	if w == 0 {
		return 0, fmt.Errorf("%w: within-chain variance is zero", ErrConstantChain)
	}
	b := float64(n) * between.Var()
	nf := float64(n)
	varPlus := (nf-1)/nf*w + b/nf
	return math.Sqrt(varPlus / w), nil
}

// SplitRHat computes the split-chain Gelman–Rubin statistic of a single
// scalar series: the series is halved and the halves compared as two
// chains, which detects within-chain trends (slow drift toward the
// stationary distribution) without needing multiple runs. Series shorter
// than minSplitLen report ErrShortChain; constant series report
// ErrConstantChain.
func SplitRHat(xs []float64) (float64, error) {
	if len(xs) < minSplitLen {
		return 0, fmt.Errorf("%w: split R-hat needs ≥ %d samples, have %d", ErrShortChain, minSplitLen, len(xs))
	}
	h := len(xs) / 2
	return RHat([][]float64{xs[:h], xs[h : 2*h]})
}

// MaxSplitRHat returns the worst per-coordinate split R-hat of a
// multivariate sample stream — the run-report's convergence headline.
// Frozen (constant) coordinates are skipped the way EffectiveSampleSize
// treats them: they carry no convergence signal of their own; when every
// coordinate is frozen the stream reports ErrConstantChain.
func MaxSplitRHat(samples [][]float64) (float64, error) {
	if len(samples) < minSplitLen {
		return 0, fmt.Errorf("%w: split R-hat needs ≥ %d samples, have %d", ErrShortChain, minSplitLen, len(samples))
	}
	dim := len(samples[0])
	worst := 0.0
	seen := false
	col := make([]float64, len(samples))
	for j := 0; j < dim; j++ {
		for i, s := range samples {
			col[i] = s[j]
		}
		r, err := SplitRHat(col)
		if err != nil {
			if errors.Is(err, ErrConstantChain) {
				continue
			}
			return 0, err
		}
		seen = true
		if r > worst {
			worst = r
		}
	}
	if !seen {
		return 0, fmt.Errorf("%w: every coordinate is frozen", ErrConstantChain)
	}
	return worst, nil
}
