package gibbs

import (
	"errors"

	"repro/internal/stat"
)

// Chain diagnostics. The paper's Algorithm 4 exists to shrink the
// warm-up interval and its §VI limitation notes slow high-dimensional
// mixing; these estimators quantify both: per-coordinate
// autocorrelation, integrated autocorrelation time, and effective sample
// size of a Gibbs sample stream.

// Autocorrelation returns the normalized autocorrelation of xs at the
// given lag (lag 0 ⇒ 1).
func Autocorrelation(xs []float64, lag int) (float64, error) {
	n := len(xs)
	if lag < 0 || lag >= n {
		return 0, errors.New("gibbs: lag out of range")
	}
	var m stat.Running
	for _, v := range xs {
		m.Push(v)
	}
	mu, v := m.Mean(), m.Var()
	if v == 0 {
		return 0, errors.New("gibbs: constant series has no autocorrelation")
	}
	s := 0.0
	for i := 0; i+lag < n; i++ {
		s += (xs[i] - mu) * (xs[i+lag] - mu)
	}
	return s / (float64(n-1) * v), nil
}

// IntegratedAutocorrTime estimates τ = 1 + 2·Σ ρ(k), truncating the sum
// at the first non-positive autocorrelation (Geyer's initial positive
// sequence, simplified). τ ≈ 1 for independent samples; K Gibbs samples
// carry roughly K/τ independent ones.
func IntegratedAutocorrTime(xs []float64) (float64, error) {
	if len(xs) < 4 {
		return 0, errors.New("gibbs: series too short")
	}
	tau := 1.0
	maxLag := len(xs) / 2
	for k := 1; k < maxLag; k++ {
		rho, err := Autocorrelation(xs, k)
		if err != nil {
			return 0, err
		}
		if rho <= 0 {
			break
		}
		tau += 2 * rho
	}
	return tau, nil
}

// EffectiveSampleSize returns the minimum per-coordinate effective sample
// size of a multivariate sample stream: K/max_j τ_j. It is the honest
// "how many Gibbs samples do I really have" number to compare against
// the covariance-fit requirements of Algorithm 5.
func EffectiveSampleSize(samples [][]float64) (float64, error) {
	if len(samples) < 4 {
		return 0, errors.New("gibbs: too few samples")
	}
	dim := len(samples[0])
	worst := 1.0
	col := make([]float64, len(samples))
	for j := 0; j < dim; j++ {
		for i, s := range samples {
			col[i] = s[j]
		}
		tau, err := IntegratedAutocorrTime(col)
		if err != nil {
			// A frozen coordinate (constant series) contributes no
			// information; treat its τ as the chain length.
			tau = float64(len(samples))
		}
		if tau > worst {
			worst = tau
		}
	}
	return float64(len(samples)) / worst, nil
}
