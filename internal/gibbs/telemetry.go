package gibbs

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Chain telemetry lives in the "gibbs" scope:
//
//	updates_total                  coordinate updates attempted
//	resampled_total                updates that drew from a failure interval
//	recovered_total                resampled updates that needed the
//	                               coarse recovery scan (chain drifted out)
//	kept_total                     updates where no interval was found
//	coord_<name>_resampled_total   per-coordinate resample counts
//	probes_per_update              simulations per interval search
//	chain_ess / chain_acceptance   gauges refreshed at chain end
//
// plus one "gibbs.chain" event per finished chain carrying the mixing
// diagnostics (ESS, worst integrated autocorrelation time, acceptance,
// per-coordinate resample counts).

var probeBuckets = telemetry.ExpBuckets(1, 2, 8) // 1 .. 128 sims/update

// chainTelemetry accumulates one chain's interval-search statistics.
// The live counters feed /metrics; the plain-int tallies (the chain is
// single-goroutine) feed the end-of-chain event. A nil *chainTelemetry
// is fully inert.
type chainTelemetry struct {
	reg        *telemetry.Registry
	coordNames []string

	updates, resampled, recovered, kept *telemetry.Counter
	perCoord                            []*telemetry.Counter
	probes                              *telemetry.Histogram

	nUpdates, nResampled, nRecovered, nKept int
	byCoord                                 []int64

	// Stage-1 progress: the chain produces one sample per coordinate
	// update, so nUpdates doubles as the samples-done count against the
	// target K. Every progressStride updates a "progress" event goes
	// out with the measured update throughput and the ETA to K, and the
	// shared "progress" scope gauges are refreshed (the same gauges the
	// second stage writes — the job status API reads whichever stage is
	// live).
	target  int
	start   time.Time
	nProbes int64
	gRate   *telemetry.Gauge
	gETA    *telemetry.Gauge
	gN      *telemetry.Gauge
	gTotal  *telemetry.Gauge
}

// progressStride throttles stage-1 progress events: one per this many
// coordinate updates (a K=1000 chain emits ~31).
const progressStride = 32

// cartesianCoordNames labels Algorithm 1's coordinates x0..x{M-1};
// sphericalCoordNames labels Algorithm 2's redundant set r, a0..a{M-1}.
func cartesianCoordNames(dim int) []string {
	names := make([]string, dim)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	return names
}

func sphericalCoordNames(dim int) []string {
	names := make([]string, dim+1)
	names[0] = "r"
	for i := 0; i < dim; i++ {
		names[i+1] = fmt.Sprintf("a%d", i)
	}
	return names
}

func newChainTelemetry(reg *telemetry.Registry, coordNames []string, target int) *chainTelemetry {
	if reg == nil {
		return nil
	}
	s := reg.Scope(wire.ScopeGibbs)
	prog := reg.Scope(wire.ScopeProgress)
	ct := &chainTelemetry{
		reg:        reg,
		coordNames: coordNames,
		updates:    s.Counter("updates_total"),
		resampled:  s.Counter("resampled_total"),
		recovered:  s.Counter("recovered_total"),
		kept:       s.Counter("kept_total"),
		probes:     s.Histogram("probes_per_update", probeBuckets),
		byCoord:    make([]int64, len(coordNames)),
		target:     target,
		start:      time.Now(),
		gRate:      prog.Gauge("sims_per_sec"),
		gETA:       prog.Gauge("eta_seconds"),
		gN:         prog.Gauge("n"),
		gTotal:     prog.Gauge("total"),
	}
	for _, n := range coordNames {
		ct.perCoord = append(ct.perCoord, s.Counter("coord_"+n+"_resampled_total"))
	}
	ct.gTotal.Set(float64(target))
	return ct
}

// update records one coordinate update: which coordinate, how the
// interval search ended, and how many simulations it probed.
func (t *chainTelemetry) update(coord int, st intervalStatus, probes int) {
	if t == nil {
		return
	}
	t.nUpdates++
	t.updates.Inc()
	t.probes.Observe(float64(probes))
	switch st {
	case intervalNone:
		t.nKept++
		t.kept.Inc()
	default:
		t.nResampled++
		t.resampled.Inc()
		t.perCoord[coord].Inc()
		t.byCoord[coord]++
		if st == intervalRecovered {
			t.nRecovered++
			t.recovered.Inc()
		}
	}
	t.nProbes += int64(probes)
	if t.nUpdates%progressStride == 0 {
		t.progress()
	}
}

// progress publishes a throttled stage-1 snapshot: the chain's position
// against its sample target, the measured simulation throughput (the
// interval search runs several simulations per update, so sims/sec is
// tallied from probe counts, not updates), and the finite ETA to the
// target. Reads only the wall clock and tallies — the chain's random
// stream is untouched.
func (t *chainTelemetry) progress() {
	elapsed := time.Since(t.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(t.nProbes) / elapsed
	}
	eta := 0.0
	if t.nUpdates > 0 && t.target > t.nUpdates {
		perUpdate := elapsed / float64(t.nUpdates)
		eta = float64(t.target-t.nUpdates) * perUpdate
	}
	t.gN.Set(float64(t.nUpdates))
	t.gRate.Set(rate)
	t.gETA.Set(eta)
	t.reg.Emit(wire.EvProgress, map[string]any{
		"stage": "stage1", "n": t.nUpdates, "total": t.target,
		"resampled": t.nResampled, "sims": t.nProbes,
		"sims_per_sec": rate, "eta_seconds": eta,
	})
}

// done computes the mixing diagnostics of the finished chain and emits
// the "gibbs.chain" event (also refreshing the chain_ess and
// chain_acceptance gauges).
func (t *chainTelemetry) done(coord Coord, samples [][]float64) {
	if t == nil {
		return
	}
	acceptance := 0.0
	if t.nUpdates > 0 {
		acceptance = float64(t.nResampled) / float64(t.nUpdates)
	}
	fields := map[string]any{
		"coord":              coord.String(),
		"k":                  len(samples),
		"updates":            t.nUpdates,
		"resampled":          t.nResampled,
		"recovered":          t.nRecovered,
		"kept":               t.nKept,
		"acceptance":         acceptance,
		"coords":             t.coordNames,
		"resampled_by_coord": t.byCoord,
	}
	t.gETA.Set(0)
	s := t.reg.Scope(wire.ScopeGibbs)
	s.Gauge("chain_acceptance").Set(acceptance)
	if ess, err := EffectiveSampleSize(samples); err == nil {
		fields["ess"] = ess
		fields["tau_max"] = float64(len(samples)) / ess
		s.Gauge("chain_ess").Set(ess)
	}
	t.reg.Emit(wire.EvGibbsChain, fields)
}
