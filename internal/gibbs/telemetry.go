package gibbs

import (
	"fmt"

	"repro/internal/telemetry"
)

// Chain telemetry lives in the "gibbs" scope:
//
//	updates_total                  coordinate updates attempted
//	resampled_total                updates that drew from a failure interval
//	recovered_total                resampled updates that needed the
//	                               coarse recovery scan (chain drifted out)
//	kept_total                     updates where no interval was found
//	coord_<name>_resampled_total   per-coordinate resample counts
//	probes_per_update              simulations per interval search
//	chain_ess / chain_acceptance   gauges refreshed at chain end
//
// plus one "gibbs.chain" event per finished chain carrying the mixing
// diagnostics (ESS, worst integrated autocorrelation time, acceptance,
// per-coordinate resample counts).

var probeBuckets = telemetry.ExpBuckets(1, 2, 8) // 1 .. 128 sims/update

// chainTelemetry accumulates one chain's interval-search statistics.
// The live counters feed /metrics; the plain-int tallies (the chain is
// single-goroutine) feed the end-of-chain event. A nil *chainTelemetry
// is fully inert.
type chainTelemetry struct {
	reg        *telemetry.Registry
	coordNames []string

	updates, resampled, recovered, kept *telemetry.Counter
	perCoord                            []*telemetry.Counter
	probes                              *telemetry.Histogram

	nUpdates, nResampled, nRecovered, nKept int
	byCoord                                 []int64
}

// cartesianCoordNames labels Algorithm 1's coordinates x0..x{M-1};
// sphericalCoordNames labels Algorithm 2's redundant set r, a0..a{M-1}.
func cartesianCoordNames(dim int) []string {
	names := make([]string, dim)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	return names
}

func sphericalCoordNames(dim int) []string {
	names := make([]string, dim+1)
	names[0] = "r"
	for i := 0; i < dim; i++ {
		names[i+1] = fmt.Sprintf("a%d", i)
	}
	return names
}

func newChainTelemetry(reg *telemetry.Registry, coordNames []string) *chainTelemetry {
	if reg == nil {
		return nil
	}
	s := reg.Scope("gibbs")
	ct := &chainTelemetry{
		reg:        reg,
		coordNames: coordNames,
		updates:    s.Counter("updates_total"),
		resampled:  s.Counter("resampled_total"),
		recovered:  s.Counter("recovered_total"),
		kept:       s.Counter("kept_total"),
		probes:     s.Histogram("probes_per_update", probeBuckets),
		byCoord:    make([]int64, len(coordNames)),
	}
	for _, n := range coordNames {
		ct.perCoord = append(ct.perCoord, s.Counter("coord_"+n+"_resampled_total"))
	}
	return ct
}

// update records one coordinate update: which coordinate, how the
// interval search ended, and how many simulations it probed.
func (t *chainTelemetry) update(coord int, st intervalStatus, probes int) {
	if t == nil {
		return
	}
	t.nUpdates++
	t.updates.Inc()
	t.probes.Observe(float64(probes))
	switch st {
	case intervalNone:
		t.nKept++
		t.kept.Inc()
	default:
		t.nResampled++
		t.resampled.Inc()
		t.perCoord[coord].Inc()
		t.byCoord[coord]++
		if st == intervalRecovered {
			t.nRecovered++
			t.recovered.Inc()
		}
	}
}

// done computes the mixing diagnostics of the finished chain and emits
// the "gibbs.chain" event (also refreshing the chain_ess and
// chain_acceptance gauges).
func (t *chainTelemetry) done(coord Coord, samples [][]float64) {
	if t == nil {
		return
	}
	acceptance := 0.0
	if t.nUpdates > 0 {
		acceptance = float64(t.nResampled) / float64(t.nUpdates)
	}
	fields := map[string]any{
		"coord":              coord.String(),
		"k":                  len(samples),
		"updates":            t.nUpdates,
		"resampled":          t.nResampled,
		"recovered":          t.nRecovered,
		"kept":               t.nKept,
		"acceptance":         acceptance,
		"coords":             t.coordNames,
		"resampled_by_coord": t.byCoord,
	}
	s := t.reg.Scope("gibbs")
	s.Gauge("chain_acceptance").Set(acceptance)
	if ess, err := EffectiveSampleSize(samples); err == nil {
		fields["ess"] = ess
		fields["tau_max"] = float64(len(samples)) / ess
		s.Gauge("chain_ess").Set(ess)
	}
	t.reg.Emit("gibbs.chain", fields)
}
