package gibbs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mc"
	"repro/internal/surrogate"
)

// The §IV-C mixture extension on a genuinely two-lobe region: the
// series-stack union {x₀ > A} ∪ {x₁ > A}. A single-Normal G-S fit covers
// both lobes only through an inflated covariance; a two-component mixture
// matches each lobe. Both must be unbiased; the mixture must be more
// efficient (smaller relative error at equal budgets).
func TestMixtureDistortionOnTwoLobes(t *testing.T) {
	region := &surrogate.SeriesStack{A: 4.2}
	exact := region.ExactPf()

	run := func(mixture int, seed int64) (pf, relerr float64) {
		counter := mc.NewCounter(region)
		rng := rand.New(rand.NewSource(seed))
		res, err := TwoStage(counter, TwoStageOptions{
			Coord: Spherical, K: 1200, N: 8000, Mixture: mixture,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if mixture >= 2 && res.GMix == nil {
			t.Fatal("mixture requested but not fitted")
		}
		return res.Pf, res.RelErr99
	}

	var pfN, pfM, reN, reM float64
	const nSeeds = 3
	for s := int64(0); s < nSeeds; s++ {
		p, r := run(0, 300+s)
		pfN += p / nSeeds
		reN += r / nSeeds
		p, r = run(2, 400+s)
		pfM += p / nSeeds
		reM += r / nSeeds
	}
	if math.Abs(pfM-exact)/exact > 0.2 {
		t.Fatalf("mixture G-S biased: %v vs exact %v", pfM, exact)
	}
	if math.Abs(pfN-exact)/exact > 0.5 {
		t.Fatalf("normal G-S wildly off: %v vs exact %v", pfN, exact)
	}
	if reM >= reN {
		t.Fatalf("mixture should be more efficient: relerr %v vs %v", reM, reN)
	}
}

func TestMixtureValidation(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(1))
	// Mixture with too few samples for the requested components errors.
	_, err := TwoStage(counter, TwoStageOptions{
		Coord: Cartesian, K: 3, N: 100, Mixture: 2,
	}, rng)
	if err == nil {
		t.Fatal("expected mixture-fit error with K=3")
	}
}

func TestMixtureSingleComponentDegenerates(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(2))
	res, err := TwoStage(counter, TwoStageOptions{
		Coord: Spherical, K: 300, N: 3000, Mixture: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.GMix != nil {
		t.Fatal("Mixture=1 should keep the plain Normal path")
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.15 {
		t.Fatalf("estimate %v vs %v", res.Pf, exact)
	}
}
