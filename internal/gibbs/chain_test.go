package gibbs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/stat"
	"repro/internal/surrogate"
)

func TestCartesianChainStaysInFailureRegion(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 4}
	rng := rand.New(rand.NewSource(1))
	samples, err := CartesianChain(lin, []float64{3, 3}, 200, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 200 {
		t.Fatalf("got %d samples", len(samples))
	}
	for i, s := range samples {
		if lin.Value(s) >= 0 {
			t.Fatalf("sample %d outside failure region: %v", i, s)
		}
	}
}

func TestCartesianChainRejectsPassingStart(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	rng := rand.New(rand.NewSource(2))
	if _, err := CartesianChain(lin, []float64{0, 0}, 10, nil, rng); err != ErrStartNotFailing {
		t.Fatalf("want ErrStartNotFailing, got %v", err)
	}
}

func TestCartesianChainBadArgs(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 0}, B: 4}
	rng := rand.New(rand.NewSource(3))
	if _, err := CartesianChain(lin, []float64{5}, 10, nil, rng); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := CartesianChain(lin, []float64{5, 0}, 0, nil, rng); err == nil {
		t.Fatal("expected bad-k error")
	}
}

// Statistical correctness: for the half-space failure region the Gibbs
// chain must converge to g^OPT(x) = I(x)·f(x)/P_f. Projected on the
// direction w/‖w‖, g^OPT is a standard Normal truncated to (β, ∞) with
// β = B/‖w‖, whose mean is φ(β)/Φ(−β). Orthogonal directions stay
// standard Normal with mean 0.
func TestCartesianChainMatchesOptimalPDF(t *testing.T) {
	b := 2.0
	lin := &surrogate.Linear{W: []float64{1, 0}, B: b} // fail: x₁ > 2
	rng := rand.New(rand.NewSource(4))
	samples, err := CartesianChain(lin, []float64{2.5, 0}, 60000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	var m0, m1 stat.Running
	for _, s := range samples {
		m0.Push(s[0])
		m1.Push(s[1])
	}
	wantMean := stat.NormPDF(b) / stat.NormSF(b) // ≈ 2.373 for b=2
	if math.Abs(m0.Mean()-wantMean) > 0.02 {
		t.Fatalf("truncated mean: got %v want %v", m0.Mean(), wantMean)
	}
	if math.Abs(m1.Mean()) > 0.03 {
		t.Fatalf("orthogonal mean should be ≈0: %v", m1.Mean())
	}
	// Orthogonal variance stays ≈1.
	if math.Abs(m1.Var()-1) > 0.05 {
		t.Fatalf("orthogonal variance: %v", m1.Var())
	}
}

func TestSphericalCoordsRoundTrip(t *testing.T) {
	x := []float64{1.5, -2, 0.5}
	r, alpha, err := SphericalCoords(x, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linalg.Norm2(alpha)-1e-2) > 1e-15 {
		t.Fatalf("‖α‖ should equal ε: %v", linalg.Norm2(alpha))
	}
	back, err := CartesianFromSpherical(r, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-12 {
			t.Fatalf("roundtrip mismatch: %v vs %v", back, x)
		}
	}
	if _, _, err := SphericalCoords([]float64{0, 0}, 1e-2); err == nil {
		t.Fatal("expected error at origin")
	}
	if _, err := CartesianFromSpherical(1, []float64{0, 0}); err == nil {
		t.Fatal("expected error for zero orientation")
	}
}

func TestSphericalChainStaysInFailureRegion(t *testing.T) {
	sh := &surrogate.Shell{M: 3, R: 3}
	rng := rand.New(rand.NewSource(5))
	start := []float64{3.2, 0.1, 0}
	samples, err := SphericalChain(sh, start, 300, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		if sh.Value(s) >= 0 {
			t.Fatalf("sample %d outside failure region: %v", i, s)
		}
	}
}

// On the shell region the spherical chain's radius conditional is exactly
// a truncated Chi; the orientation must become uniform. Check the radial
// mean and the symmetry of each coordinate.
func TestSphericalChainShellDistribution(t *testing.T) {
	const m = 3
	R := 3.0
	sh := &surrogate.Shell{M: m, R: R}
	rng := rand.New(rand.NewSource(6))
	samples, err := SphericalChain(sh, []float64{R + 0.2, 0.05, -0.02}, 40000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	chi := stat.Chi{K: m}
	// Truncated Chi mean on [R, ∞) by numeric integration.
	const h = 1e-3
	num, den := 0.0, 0.0
	for r := R; r < R+6; r += h {
		p0, p1 := chi.PDF(r), chi.PDF(r+h)
		num += 0.5 * (r*p0 + (r+h)*p1) * h
		den += 0.5 * (p0 + p1) * h
	}
	want := num / den
	var rad stat.Running
	var coord [m]stat.Running
	for _, s := range samples {
		rad.Push(linalg.Norm2(s))
		for j := 0; j < m; j++ {
			coord[j].Push(s[j])
		}
	}
	if math.Abs(rad.Mean()-want) > 0.03 {
		t.Fatalf("radial mean: got %v want %v", rad.Mean(), want)
	}
	for j := 0; j < m; j++ {
		if math.Abs(coord[j].Mean()) > 0.12 {
			t.Fatalf("coordinate %d mean should be ≈0 (uniform orientation): %v", j, coord[j].Mean())
		}
	}
}

func TestSphericalChainRejectsPassingStart(t *testing.T) {
	sh := &surrogate.Shell{M: 2, R: 3}
	rng := rand.New(rand.NewSource(7))
	if _, err := SphericalChain(sh, []float64{0.1, 0}, 10, nil, rng); err != ErrStartNotFailing {
		t.Fatalf("want ErrStartNotFailing, got %v", err)
	}
}

// The arc traversal property (paper Fig. 14): on a wide-arc region, the
// spherical chain must reach angular positions far from its start.
func TestSphericalChainTraversesArc(t *testing.T) {
	arc := &surrogate.Arc{R: 3, HalfAngle: 2.5}
	rng := rand.New(rand.NewSource(8))
	start := []float64{3.3 * math.Cos(2.2), 3.3 * math.Sin(2.2)} // near one arc end
	samples, err := SphericalChain(arc, start, 3000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	minTheta, maxTheta := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		th := math.Atan2(s[1], s[0])
		minTheta = math.Min(minTheta, th)
		maxTheta = math.Max(maxTheta, th)
	}
	if maxTheta-minTheta < 3.0 {
		t.Fatalf("spherical chain failed to traverse the arc: span %v", maxTheta-minTheta)
	}
}

// By contrast the Cartesian chain on the same arc explores a much smaller
// angular span from the same start within the same sample budget — the
// §V-B mechanism. (It is not strictly pinned, so just compare spans.)
func TestCartesianVsSphericalArcCoverage(t *testing.T) {
	arc := &surrogate.Arc{R: 3, HalfAngle: 2.5}
	start := []float64{3.3 * math.Cos(2.2), 3.3 * math.Sin(2.2)}
	span := func(samples [][]float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			th := math.Atan2(s[1], s[0])
			lo, hi = math.Min(lo, th), math.Max(hi, th)
		}
		return hi - lo
	}
	rngC := rand.New(rand.NewSource(9))
	cart, err := CartesianChain(arc, start, 400, nil, rngC)
	if err != nil {
		t.Fatal(err)
	}
	rngS := rand.New(rand.NewSource(9))
	sph, err := SphericalChain(arc, start, 400, nil, rngS)
	if err != nil {
		t.Fatal(err)
	}
	if span(sph) <= span(cart) {
		t.Fatalf("spherical span %v should exceed Cartesian span %v", span(sph), span(cart))
	}
}

func TestTwoStageOnLinearMetric(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1, 1}, B: 7} // Pf = Φ(−7/√3) ≈ 2.66e-5
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(10))
	res, err := TwoStage(counter, TwoStageOptions{Coord: Cartesian, K: 400, N: 4000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.15 {
		t.Fatalf("G-C estimate %v, exact %v", res.Pf, exact)
	}
	if res.Stage1Sims <= 0 || res.Stage2Sims != 4000 {
		t.Fatalf("stage accounting wrong: %d / %d", res.Stage1Sims, res.Stage2Sims)
	}
	if res.N != 4000 {
		t.Fatalf("result N = %d", res.N)
	}
}

func TestTwoStageSphericalOnLinearMetric(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{2, -1}, B: 9} // Pf = Φ(−9/√5) ≈ 2.86e-5
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(11))
	res, err := TwoStage(counter, TwoStageOptions{Coord: Spherical, K: 400, N: 4000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.15 {
		t.Fatalf("G-S estimate %v, exact %v", res.Pf, exact)
	}
}

// The headline §V-B behavior on the analytic arc: G-S recovers the true
// probability; G-C (same budget, same start) underestimates it.
func TestArcRegionGSBeatsGC(t *testing.T) {
	arc := &surrogate.Arc{R: 4.2, HalfAngle: 2.8}
	exact := arc.ExactPf()
	start := []float64{4.4 * math.Cos(2.6), 4.4 * math.Sin(2.6)}

	run := func(coord Coord, seed int64) float64 {
		counter := mc.NewCounter(arc)
		rng := rand.New(rand.NewSource(seed))
		res, err := TwoStage(counter, TwoStageOptions{
			Coord: coord, K: 500, N: 6000, StartPoint: start,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res.Pf
	}
	// Average a few seeds to smooth estimator noise.
	var gs, gc float64
	const nSeeds = 3
	for s := int64(0); s < nSeeds; s++ {
		gs += run(Spherical, 100+s) / nSeeds
		gc += run(Cartesian, 200+s) / nSeeds
	}
	if math.Abs(gs-exact)/exact > 0.25 {
		t.Fatalf("G-S should match exact: got %v want %v", gs, exact)
	}
	if gc > 0.8*exact {
		t.Fatalf("G-C should underestimate on the arc: got %v vs exact %v", gc, exact)
	}
}

func TestTwoStageUntilReachesTarget(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(12))
	res, err := TwoStageUntil(counter, TwoStageOptions{Coord: Spherical, K: 300}, 0.05, 200, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelErr99 > 0.05 {
		t.Fatalf("did not reach 5%% target: %v after %d", res.RelErr99, res.N)
	}
	exact := lin.ExactPf()
	if math.Abs(res.Pf-exact)/exact > 0.15 {
		t.Fatalf("estimate %v, exact %v", res.Pf, exact)
	}
}

func TestTwoStageValidation(t *testing.T) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	counter := mc.NewCounter(lin)
	rng := rand.New(rand.NewSource(13))
	if _, err := TwoStage(counter, TwoStageOptions{K: 0, N: 10}, rng); err == nil {
		t.Fatal("expected K validation error")
	}
	if _, err := TwoStage(counter, TwoStageOptions{K: 10, N: 0}, rng); err == nil {
		t.Fatal("expected N validation error")
	}
	if _, err := TwoStage(counter, TwoStageOptions{K: 10, N: 10, Coord: Coord(9)}, rng); err == nil {
		t.Fatal("expected coord validation error")
	}
}

func TestFitDistortionTooFewSamples(t *testing.T) {
	if _, err := FitDistortion([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for single sample")
	}
}

func TestCoordString(t *testing.T) {
	if Cartesian.String() != "G-C" || Spherical.String() != "G-S" {
		t.Fatal("Coord names wrong")
	}
	if Coord(7).String() == "" {
		t.Fatal("unknown coord should still print")
	}
}
