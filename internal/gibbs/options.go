// Package gibbs implements the paper's primary contribution: Gibbs
// sampling of the optimal importance-sampling distribution
// g^OPT(x) = I(x)·f(x)/P_f without explicit knowledge of the indicator
// I(x), in both Cartesian (Algorithm 1) and spherical (Algorithm 2)
// coordinate systems, with 1-D inverse-transform sampling of the
// conditionals (Algorithm 3), model-based starting-point selection
// (Algorithm 4), and the two-stage Monte Carlo flow (Algorithm 5).
package gibbs

import (
	"math"
	"math/rand"

	"repro/internal/stat"
	"repro/internal/telemetry"
)

// Options tunes the Gibbs chain. The zero value (or nil) selects the
// defaults used in the experiments.
type Options struct {
	// Zeta bounds every Cartesian/orientation coordinate to [−Zeta, Zeta]
	// (paper §IV-A suggests ζ = 8–10; default 8). The probability mass
	// outside is negligible (< 1e-15 per coordinate).
	Zeta float64
	// RMax bounds the radius coordinate of the spherical chain; when
	// zero it defaults to the Chi(M) quantile at 1−1e−12 plus 2.
	RMax float64
	// ExpandStep is the initial bracketing step of the 1-D failure
	// interval search (default 0.5σ).
	ExpandStep float64
	// Bisections refines each interval boundary (default 6; each
	// bisection is one transistor-level simulation).
	Bisections int
	// ScanPoints is the coarse-scan budget used to recover when the
	// current chain point has drifted out of the failure region
	// (default 12).
	ScanPoints int
	// Epsilon is the ‖α‖ used when mapping the starting point into the
	// redundant spherical coordinates (paper eq. 32; default 1e-2).
	Epsilon float64
	// Stop, when non-nil, is polled before each coordinate update; the
	// chain ends early when it returns true. The two-stage flow uses it
	// to cap the first stage at a fixed simulation budget, which is how
	// the paper sizes its comparisons (e.g., 5000 stage-1 simulations in
	// Table I).
	Stop func() bool
	// Telemetry, when non-nil, receives per-coordinate interval-search
	// counters, mixing gauges and a "gibbs.chain" event per chain. It
	// only observes — the chain's draws are identical with it on or off.
	Telemetry *telemetry.Registry
}

func (o *Options) defaults() Options {
	d := Options{Zeta: 8, ExpandStep: 0.5, Bisections: 6, ScanPoints: 12, Epsilon: 1e-2}
	if o == nil {
		return d
	}
	out := *o
	if out.Zeta <= 0 {
		out.Zeta = d.Zeta
	}
	if out.ExpandStep <= 0 {
		out.ExpandStep = d.ExpandStep
	}
	if out.Bisections <= 0 {
		out.Bisections = d.Bisections
	}
	if out.ScanPoints <= 0 {
		out.ScanPoints = d.ScanPoints
	}
	if out.Epsilon <= 0 {
		out.Epsilon = d.Epsilon
	}
	return out
}

func (o *Options) rmax(dim int) float64 {
	if o.RMax > 0 {
		return o.RMax
	}
	return stat.Chi{K: dim}.Quantile(1-1e-12) + 2
}

// finiteVec reports whether every coordinate is a normal float.
func finiteVec(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// uniform01 draws from the open interval (0, 1); the inverse-transform
// endpoints map to the interval boundaries, which we keep sampleable but
// never exactly hit.
func uniform01(rng *rand.Rand) float64 {
	for {
		u := rng.Float64()
		if u > 0 && u < 1 {
			return u
		}
	}
}
