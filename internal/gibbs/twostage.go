package gibbs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/stat"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Coord selects the Gibbs chain's coordinate system.
type Coord int

// Coordinate systems (the paper's G-C and G-S variants).
const (
	Cartesian Coord = iota
	Spherical
)

func (c Coord) String() string {
	switch c {
	case Cartesian:
		return "G-C"
	case Spherical:
		return "G-S"
	default:
		return fmt.Sprintf("Coord(%d)", int(c))
	}
}

// TwoStageOptions configures the paper's Algorithm 5.
type TwoStageOptions struct {
	// Coord selects Algorithm 1 (Cartesian) or Algorithm 2 (spherical)
	// for the first stage.
	Coord Coord
	// K is the number of first-stage Gibbs samples (paper: 1e2–1e3).
	K int
	// N is the number of second-stage importance-sampling simulations
	// (paper: 1e3–1e4). Ignored by TwoStageUntil.
	N int
	// Stage1Budget, when positive, caps the whole first stage (starting
	// point search + Gibbs chain) at this many simulations, the way the
	// paper sizes its comparisons; K then acts as an upper bound on the
	// sample count.
	Stage1Budget int64
	// Chain tunes the Gibbs chain; nil selects defaults.
	Chain *Options
	// Start tunes the Algorithm 4 model-based starting-point search;
	// nil selects defaults.
	Start *model.StartOptions
	// StartPoint, when non-nil, skips Algorithm 4 and starts the chain
	// here (used by the ablation benchmarks).
	StartPoint []float64
	// Mixture, when ≥ 2, fits a Gaussian mixture with that many
	// components instead of the single Normal g^NOR — the paper's §IV-C
	// extension, useful on multi-lobe failure regions. 0 or 1 keeps the
	// plain Algorithm 5 fit.
	Mixture int
	// Workers sizes the second-stage evaluation pool (0 = GOMAXPROCS).
	// The first stage is inherently sequential (a Markov chain) and
	// always runs on one goroutine; the estimate is identical for every
	// worker count.
	Workers int
	// TraceEvery records a convergence snapshot every so many
	// second-stage samples (0 disables).
	TraceEvery mc.TraceEvery
	// Telemetry, when non-nil, observes the whole flow: chain counters
	// and mixing gauges from stage 1, evaluator throughput and running
	// Pf/error-bar gauges from stage 2, plus stage1.*/stage2.* events.
	// It never touches the random draws — estimates are bit-identical
	// with telemetry on or off.
	Telemetry *telemetry.Registry
}

// TwoStageResult reports the estimate with the paper's cost accounting.
type TwoStageResult struct {
	mc.Result
	// Start is the Algorithm 4 starting point.
	Start []float64
	// Samples are the K first-stage Gibbs samples (Cartesian
	// coordinates).
	Samples [][]float64
	// GNor is the fitted Normal distortion g^NOR(x) (always computed).
	GNor *stat.MVNormal
	// GMix is the fitted Gaussian-mixture distortion when
	// Options.Mixture ≥ 2 (nil otherwise); when present it is the
	// distribution the second stage sampled.
	GMix *stat.GMM
	// Stage1Sims and Stage2Sims split the total simulation count: stage
	// 1 covers the starting-point search plus the Gibbs chain; stage 2
	// is the importance-sampling run.
	Stage1Sims, Stage2Sims int64
	// Stage1Seconds and Stage2Seconds split the wall time the same way
	// (for the run-report; they carry no statistical meaning).
	Stage1Seconds, Stage2Seconds float64
}

// firstStage runs Algorithm 4 (unless a start point is given), the chosen
// Gibbs chain, and the g^NOR fit, recording stage-1 cost in res.
func firstStage(ctx context.Context, counter *mc.Counter, opts *TwoStageOptions, rng *rand.Rand) (*TwoStageResult, error) {
	if opts.K <= 0 {
		return nil, errors.New("gibbs: K must be positive")
	}
	res := &TwoStageResult{}

	t0 := time.Now()
	ctx, span := telemetry.StartSpan(ctx, opts.Telemetry, "stage1")
	defer func() {
		res.Stage1Seconds = time.Since(t0).Seconds()
		span.End()
	}()
	span.SetAttr("coord", opts.Coord.String())
	span.SetAttr("k", opts.K)
	opts.Telemetry.Emit(wire.EvStage1Start, map[string]any{
		"coord": opts.Coord.String(), "k": opts.K, "budget": opts.Stage1Budget,
	})
	start := opts.StartPoint
	if start == nil {
		spCtx, spSpan := telemetry.StartSpan(ctx, opts.Telemetry, "start_point")
		var err error
		start, err = model.FindFailurePointContext(spCtx, counter, opts.Start, rng)
		spSpan.SetAttr("sims", counter.Count())
		spSpan.End()
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return nil, fmt.Errorf("gibbs: starting-point selection: %w", err)
		}
	}
	res.Start = start
	opts.Telemetry.Emit(wire.EvStage1StartPoint, map[string]any{
		"sims": counter.Count(), "norm": linalg.Norm2(start),
	})

	chainOpts := opts.Chain
	if opts.Stage1Budget > 0 || (opts.Telemetry != nil && (chainOpts == nil || chainOpts.Telemetry == nil)) {
		var co Options
		if chainOpts != nil {
			co = *chainOpts
		}
		if opts.Stage1Budget > 0 {
			budget := opts.Stage1Budget
			co.Stop = func() bool { return counter.Count() >= budget }
		}
		if co.Telemetry == nil {
			co.Telemetry = opts.Telemetry
		}
		chainOpts = &co
	}
	var (
		samples [][]float64
		err     error
	)
	switch opts.Coord {
	case Cartesian:
		samples, err = CartesianChainContext(ctx, counter, start, opts.K, chainOpts, rng)
	case Spherical:
		samples, err = SphericalChainContext(ctx, counter, start, opts.K, chainOpts, rng)
	default:
		return nil, fmt.Errorf("gibbs: unknown coordinate system %v", opts.Coord)
	}
	if err != nil {
		return nil, err
	}
	res.Samples = samples
	res.Stage1Sims = counter.Count()
	span.SetAttr("sims", res.Stage1Sims)
	opts.Telemetry.Emit(wire.EvStage1Done, map[string]any{
		"sims": res.Stage1Sims, "samples": len(samples),
	})

	_, fitSpan := telemetry.StartSpan(ctx, opts.Telemetry, "fit")
	fitSpan.SetAttr("mixture", opts.Mixture)
	defer fitSpan.End()
	res.GNor, err = FitDistortion(samples)
	if err != nil {
		return nil, err
	}
	if opts.Mixture >= 2 {
		res.GMix, err = FitDistortionGMM(samples, opts.Mixture, rng)
		if err != nil {
			return nil, fmt.Errorf("gibbs: fitting mixture distortion: %w", err)
		}
	}
	return res, nil
}

// distortion returns the distribution the second stage samples from.
func (r *TwoStageResult) distortion() mc.Distortion {
	if r.GMix != nil {
		return r.GMix
	}
	return r.GNor
}

// TwoStage runs the paper's Algorithm 5 end to end:
//
//  1. Algorithm 4: model-based starting-point selection (skipped when
//     StartPoint is given).
//  2. Algorithm 1 or 2 (+3): generate K Gibbs samples in the failure
//     region.
//  3. Fit the multivariate Normal g^NOR from the samples' mean and
//     covariance.
//  4. Draw N samples from g^NOR and estimate P_f by eq. (33).
//
// The metric must be wrapped in a Counter so the stage costs can be
// reported the way the paper reports them (Tables I and II).
func TwoStage(counter *mc.Counter, opts TwoStageOptions, rng *rand.Rand) (*TwoStageResult, error) {
	return TwoStageContext(context.Background(), counter, opts, rng)
}

// TwoStageContext is TwoStage with cancellation threaded through every
// stage: the Algorithm 4 starting-point search, the Gibbs chain (checked
// per coordinate update) and the second-stage sampling loop (checked per
// evaluation chunk). A cancel returns the context's error; an
// uncancelled run is bit-identical to TwoStage for every worker count.
func TwoStageContext(ctx context.Context, counter *mc.Counter, opts TwoStageOptions, rng *rand.Rand) (*TwoStageResult, error) {
	if opts.N <= 0 {
		return nil, errors.New("gibbs: N must be positive")
	}
	res, err := firstStage(ctx, counter, &opts, rng)
	if err != nil {
		return nil, err
	}
	ev := mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry)
	opts.Telemetry.Emit(wire.EvStage2Start, map[string]any{
		"n": opts.N, "workers": ev.Workers(), "mixture": opts.Mixture,
	})
	t0 := time.Now()
	res.Result, err = mc.ImportanceSampleContext(ctx, ev, res.distortion(), opts.N, rng, opts.TraceEvery)
	if err != nil {
		return nil, err
	}
	res.Stage2Seconds = time.Since(t0).Seconds()
	res.Stage2Sims = counter.Count() - res.Stage1Sims
	return res, nil
}

// TwoStageUntil runs the same flow but replaces the fixed N with a
// convergence target: the second stage stops as soon as the 99% relative
// error reaches target (or maxN simulations). This regenerates the
// paper's Table I ("number of simulations to achieve 5% error").
func TwoStageUntil(counter *mc.Counter, opts TwoStageOptions, target float64, minN, maxN int, rng *rand.Rand) (*TwoStageResult, error) {
	return TwoStageUntilContext(context.Background(), counter, opts, target, minN, maxN, rng)
}

// TwoStageUntilContext is TwoStageUntil with cancellation threaded
// through both stages the same way as TwoStageContext.
func TwoStageUntilContext(ctx context.Context, counter *mc.Counter, opts TwoStageOptions, target float64, minN, maxN int, rng *rand.Rand) (*TwoStageResult, error) {
	res, err := firstStage(ctx, counter, &opts, rng)
	if err != nil {
		return nil, err
	}
	ev := mc.NewEvaluator(counter, opts.Workers).WithTelemetry(opts.Telemetry)
	opts.Telemetry.Emit(wire.EvStage2Start, map[string]any{
		"target": target, "min_n": minN, "max_n": maxN, "workers": ev.Workers(), "mixture": opts.Mixture,
	})
	t0 := time.Now()
	res.Result, err = mc.ImportanceSampleUntilContext(ctx, ev, res.distortion(), target, minN, maxN, rng)
	if err != nil {
		return nil, err
	}
	res.Stage2Seconds = time.Since(t0).Seconds()
	res.Stage2Sims = counter.Count() - res.Stage1Sims
	return res, nil
}

// FitDistortion performs Algorithm 5 step 4: estimate the mean and
// covariance of the Gibbs samples and build the Normal approximation
// g^NOR of the optimal distortion g^OPT. Near-singular covariances (short
// or poorly mixed chains) are regularized with diagonal jitter inside
// stat.NewMVNormal.
func FitDistortion(samples [][]float64) (*stat.MVNormal, error) {
	mu, cov, err := stat.Covariance(samples)
	if err != nil {
		return nil, fmt.Errorf("gibbs: fitting g^NOR: %w", err)
	}
	return stat.NewMVNormal(mu, cov)
}

// FitDistortionGMM fits a k-component Gaussian mixture to the Gibbs
// samples (the §IV-C extension of Algorithm 5 step 4). The paper warns
// that non-Normal distortions "often require more Gibbs samples to fit";
// callers should raise K accordingly.
func FitDistortionGMM(samples [][]float64, k int, rng *rand.Rand) (*stat.GMM, error) {
	return stat.FitGMM(samples, k, 60, rng)
}
