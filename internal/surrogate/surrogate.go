// Package surrogate provides analytic variation-space metrics whose exact
// failure probabilities are known in closed form. They serve three roles:
// ground truth for validating every estimator in the library, cheap
// stand-ins for circuit metrics in property-based tests, and the
// irregular-region stress cases (quadrant, arc) that the paper uses to
// demonstrate where Cartesian Gibbs sampling and mean-shift importance
// sampling break down (§III-B and §V-B).
package surrogate

import (
	"math"

	"repro/internal/stat"
)

// Linear is the half-space failure region {x : wᵀx > b}; the margin is
// b − wᵀx. The exact failure probability is Φ(−b/‖w‖).
type Linear struct {
	W []float64
	B float64
}

// Dim implements mc.Metric.
func (l *Linear) Dim() int { return len(l.W) }

// Value implements mc.Metric.
func (l *Linear) Value(x []float64) float64 {
	s := 0.0
	for i, w := range l.W {
		s += w * x[i]
	}
	return l.B - s
}

// ExactPf returns the closed-form failure probability.
func (l *Linear) ExactPf() float64 {
	n := 0.0
	for _, w := range l.W {
		n += w * w
	}
	return stat.NormSF(l.B / math.Sqrt(n))
}

// Quadrant is the shifted-quadrant failure region
// {x : x_i ≥ A for all i}, the paper's eq. (18) example when A = 0.
// Exact failure probability: Φ(−A)^M.
type Quadrant struct {
	M int
	A float64
}

// Dim implements mc.Metric.
func (q *Quadrant) Dim() int { return q.M }

// Value implements mc.Metric: fail iff min_i(x_i − A) ≥ 0, so the margin
// is −min_i(x_i − A).
func (q *Quadrant) Value(x []float64) float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v-q.A < m {
			m = v - q.A
		}
	}
	return -m
}

// ExactPf returns Φ(−A)^M.
func (q *Quadrant) ExactPf() float64 {
	return math.Pow(stat.NormSF(q.A), float64(q.M))
}

// Shell is the spherical-shell failure region {x : ‖x‖₂ ≥ R}; margin
// R − ‖x‖. Exact failure probability is the Chi(M) survival function at R.
type Shell struct {
	M int
	R float64
}

// Dim implements mc.Metric.
func (s *Shell) Dim() int { return s.M }

// Value implements mc.Metric.
func (s *Shell) Value(x []float64) float64 {
	n := 0.0
	for _, v := range x {
		n += v * v
	}
	return s.R - math.Sqrt(n)
}

// ExactPf returns Chi(M).SF(R).
func (s *Shell) ExactPf() float64 { return stat.Chi{K: s.M}.SF(s.R) }

// Arc is a 2-D failure region spread along a probability contour:
// {x : ‖x‖ ≥ R and |atan2(x₂, x₁)| ≤ HalfAngle}. For wide half-angles it
// is strongly non-convex around the origin — the geometry for which the
// paper shows spherical Gibbs sampling succeeding while Cartesian Gibbs
// and mean-shift methods get stuck in one angular lobe (§V-B, Fig. 13).
// Exact failure probability: Chi(2).SF(R)·HalfAngle/π (the standard
// 2-D Normal is isotropic, so angle and radius are independent).
type Arc struct {
	R         float64
	HalfAngle float64 // radians, in (0, π]
}

// Dim implements mc.Metric.
func (a *Arc) Dim() int { return 2 }

// Value implements mc.Metric: fail iff both the radial and the angular
// conditions hold, so the margin is −min(radial slack, angular slack).
// The angular slack is expressed in radius-scaled units to keep the
// margin continuous at the origin.
func (a *Arc) Value(x []float64) float64 {
	r := math.Hypot(x[0], x[1])
	theta := math.Abs(math.Atan2(x[1], x[0]))
	radial := r - a.R
	angular := (a.HalfAngle - theta) * math.Max(r, 1e-12)
	return -math.Min(radial, angular)
}

// ExactPf returns the closed-form failure probability.
func (a *Arc) ExactPf() float64 {
	return stat.Chi{K: 2}.SF(a.R) * a.HalfAngle / math.Pi
}

// SeriesStack mimics the read-current failure mechanism of a series
// transistor stack: the current is limited by the weaker of two devices,
// so the cell fails when either coordinate pushes its device's threshold
// up too far — the union of two half-planes, a non-convex L-shaped
// region. Margin: min(A − x₁, A − x₂)... the cell fails when
// min over devices of (A − x_i) < 0, i.e. max_i x_i > A.
// Exact failure probability: 1 − Φ(A)².
type SeriesStack struct {
	A float64
}

// Dim implements mc.Metric.
func (s *SeriesStack) Dim() int { return 2 }

// Value implements mc.Metric.
func (s *SeriesStack) Value(x []float64) float64 {
	return math.Min(s.A-x[0], s.A-x[1])
}

// ExactPf returns 1 − Φ(A)².
func (s *SeriesStack) ExactPf() float64 {
	c := stat.NormCDF(s.A)
	return 1 - c*c
}
