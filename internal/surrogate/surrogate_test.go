package surrogate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mc"
	"repro/internal/stat"
)

// Compile-time interface checks (kept out of the library to avoid a
// package cycle with mc).
var (
	_ mc.Metric = (*Linear)(nil)
	_ mc.Metric = (*Quadrant)(nil)
	_ mc.Metric = (*Shell)(nil)
	_ mc.Metric = (*Arc)(nil)
	_ mc.Metric = (*SeriesStack)(nil)
)

// mcCheck validates a surrogate's ExactPf by direct Monte Carlo at
// moderate probability levels.
func mcCheck(t *testing.T, m mc.Metric, exact float64, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	res, err := mc.PlainMC(m, n, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	se := math.Sqrt(exact * (1 - exact) / float64(n))
	if math.Abs(res.Pf-exact) > 5*se+1e-12 {
		t.Fatalf("MC %v vs exact %v (5se = %v)", res.Pf, exact, 5*se)
	}
}

func TestLinearExactPf(t *testing.T) {
	l := &Linear{W: []float64{1, 2, -1}, B: 2}
	want := stat.NormSF(2 / math.Sqrt(6))
	if math.Abs(l.ExactPf()-want) > 1e-15 {
		t.Fatalf("exact: %v want %v", l.ExactPf(), want)
	}
	mcCheck(t, l, l.ExactPf(), 200000, 1)
	if l.Dim() != 3 {
		t.Fatal("dim")
	}
}

func TestQuadrantExactPf(t *testing.T) {
	q := &Quadrant{M: 2, A: 1}
	want := stat.NormSF(1) * stat.NormSF(1)
	if math.Abs(q.ExactPf()-want) > 1e-15 {
		t.Fatal("exact wrong")
	}
	mcCheck(t, q, q.ExactPf(), 200000, 2)
	// The paper's eq. (18) case: A=0 → Pf = 1/4.
	q0 := &Quadrant{M: 2, A: 0}
	if math.Abs(q0.ExactPf()-0.25) > 1e-15 {
		t.Fatal("quadrant Pf should be 1/4")
	}
	// Margin convention: inside fails.
	if q0.Value([]float64{1, 1}) >= 0 || q0.Value([]float64{-1, 1}) < 0 {
		t.Fatal("quadrant margin convention broken")
	}
}

func TestShellExactPf(t *testing.T) {
	s := &Shell{M: 3, R: 2}
	mcCheck(t, s, s.ExactPf(), 200000, 3)
	if s.Value([]float64{3, 0, 0}) >= 0 || s.Value([]float64{1, 0, 0}) < 0 {
		t.Fatal("shell margin convention broken")
	}
}

func TestArcExactPf(t *testing.T) {
	a := &Arc{R: 1.5, HalfAngle: 1.0}
	mcCheck(t, a, a.ExactPf(), 400000, 4)
	// Inside the wedge and beyond R fails.
	if a.Value([]float64{2, 0}) >= 0 {
		t.Fatal("on-axis far point should fail")
	}
	// Beyond R but outside the wedge passes.
	th := 1.2
	if a.Value([]float64{2 * math.Cos(th), 2 * math.Sin(th)}) < 0 {
		t.Fatal("outside-wedge point should pass")
	}
	// Inside R passes.
	if a.Value([]float64{0.5, 0}) < 0 {
		t.Fatal("near-origin point should pass")
	}
	if a.Dim() != 2 {
		t.Fatal("dim")
	}
}

func TestArcFullCircleMatchesShell(t *testing.T) {
	a := &Arc{R: 2, HalfAngle: math.Pi}
	s := &Shell{M: 2, R: 2}
	if math.Abs(a.ExactPf()-s.ExactPf()) > 1e-14 {
		t.Fatalf("full-circle arc %v vs shell %v", a.ExactPf(), s.ExactPf())
	}
}

func TestSeriesStackExactPf(t *testing.T) {
	s := &SeriesStack{A: 1.5}
	want := 1 - stat.NormCDF(1.5)*stat.NormCDF(1.5)
	if math.Abs(s.ExactPf()-want) > 1e-15 {
		t.Fatal("exact wrong")
	}
	mcCheck(t, s, s.ExactPf(), 200000, 5)
	// Non-convexity: two single-coordinate failures whose midpoint
	// passes.
	p1 := []float64{2, -2}
	p2 := []float64{-2, 2}
	mid := []float64{0, 0}
	if s.Value(p1) >= 0 || s.Value(p2) >= 0 || s.Value(mid) < 0 {
		t.Fatal("series stack should form a non-convex union")
	}
}

func TestQuadrantHigherDim(t *testing.T) {
	q := &Quadrant{M: 4, A: 0.5}
	mcCheck(t, q, q.ExactPf(), 400000, 6)
}
