package spice

import (
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Telemetry metric names live in the "spice" scope:
//
//	solves_total              converged DC solves
//	unconverged_total         solves that exhausted every strategy
//	fallback_gmin_total       solves rescued by gmin stepping
//	fallback_source_total     solves rescued by source stepping
//	warm_hit_total            warm-start attempts that converged
//	warm_fallback_total       warm-start attempts that fell back cold
//	solve_seconds             wall time per solve (histogram; sampled
//	                          1-in-8 unless a trace span is active —
//	                          see startSolveClock)
//	newton_iterations         Newton iterations per solve, all attempts
//	residual                  max-|KCL| residual at convergence
//
// plus the rare events "spice.fallback" and "spice.unconverged".

// Bucket layouts, precomputed so the per-solve path never allocates.
var (
	solveSecondsBuckets = telemetry.ExpBuckets(1e-6, 10, 7)  // 1µs .. 1s
	newtonIterBuckets   = telemetry.ExpBuckets(1, 2, 10)     // 1 .. 512
	residualBuckets     = telemetry.ExpBuckets(1e-15, 10, 9) // 1e-15 .. 1e-7
)

// dcTelemetry holds the per-solve metric handles; the zero value (from a
// nil registry) is fully inert.
type dcTelemetry struct {
	solves, unconverged    *telemetry.Counter
	gminFalls, sourceFalls *telemetry.Counter
	warmHits, warmFalls    *telemetry.Counter
	solveSeconds           *telemetry.Histogram
	newtonIters            *telemetry.Histogram
	residual               *telemetry.Histogram
}

// dcTel returns the solve-metric handles for reg, memoized on the
// circuit: repeated solves against the same registry (sweeps, batches)
// resolve the scope and metric names once instead of per solve.
func (c *Circuit) dcTel(reg *telemetry.Registry) dcTelemetry {
	if reg == nil {
		return dcTelemetry{}
	}
	if c.telReg != reg {
		c.telCache = newDCTelemetry(reg)
		c.telReg = reg
	}
	return c.telCache
}

// solveClockPeriod is the sampling period of the per-solve wall-time
// stopwatch: batch workloads run tens of thousands of ~100µs solves,
// where two clock reads per solve are a measurable fraction of the
// solve itself. solve_seconds is only consumed as a latency quantile
// estimate, so a 1-in-8 systematic sample preserves p50/p99 fidelity at
// an eighth of the overhead. Counters and the iteration/residual
// histograms still see every solve.
const solveClockPeriod = 8

// startSolveClock starts the (possibly inert) stopwatch for one solve
// and reports the active trace span, if any. The first of every
// solveClockPeriod solves is timed; an active span forces timing so
// per-stage "spice.solve" aggregates stay complete while tracing.
func (c *Circuit) startSolveClock(tel dcTelemetry, reg *telemetry.Registry) (telemetry.Stopwatch, *telemetry.Span) {
	span := reg.ActiveSpan()
	c.solveTick++
	if span == nil && c.solveTick%solveClockPeriod != 1 {
		return telemetry.Stopwatch{}, nil
	}
	return tel.solveSeconds.Start(), span
}

func newDCTelemetry(reg *telemetry.Registry) dcTelemetry {
	if reg == nil {
		return dcTelemetry{}
	}
	s := reg.Scope(wire.ScopeSpice)
	return dcTelemetry{
		solves:       s.Counter("solves_total"),
		unconverged:  s.Counter("unconverged_total"),
		gminFalls:    s.Counter("fallback_gmin_total"),
		sourceFalls:  s.Counter("fallback_source_total"),
		warmHits:     s.Counter("warm_hit_total"),
		warmFalls:    s.Counter("warm_fallback_total"),
		solveSeconds: s.Histogram("solve_seconds", solveSecondsBuckets),
		newtonIters:  s.Histogram("newton_iterations", newtonIterBuckets),
		residual:     s.Histogram("residual", residualBuckets),
	}
}
