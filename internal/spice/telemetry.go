package spice

import "repro/internal/telemetry"

// Telemetry metric names live in the "spice" scope:
//
//	solves_total              converged DC solves
//	unconverged_total         solves that exhausted every strategy
//	fallback_gmin_total       solves rescued by gmin stepping
//	fallback_source_total     solves rescued by source stepping
//	solve_seconds             wall time per solve (histogram)
//	newton_iterations         Newton iterations per solve, all attempts
//	residual                  max-|KCL| residual at convergence
//
// plus the rare events "spice.fallback" and "spice.unconverged".

// Bucket layouts, precomputed so the per-solve path never allocates.
var (
	solveSecondsBuckets = telemetry.ExpBuckets(1e-6, 10, 7)  // 1µs .. 1s
	newtonIterBuckets   = telemetry.ExpBuckets(1, 2, 10)     // 1 .. 512
	residualBuckets     = telemetry.ExpBuckets(1e-15, 10, 9) // 1e-15 .. 1e-7
)

// dcTelemetry holds the per-solve metric handles; the zero value (from a
// nil registry) is fully inert.
type dcTelemetry struct {
	solves, unconverged    *telemetry.Counter
	gminFalls, sourceFalls *telemetry.Counter
	solveSeconds           *telemetry.Histogram
	newtonIters            *telemetry.Histogram
	residual               *telemetry.Histogram
}

func newDCTelemetry(reg *telemetry.Registry) dcTelemetry {
	if reg == nil {
		return dcTelemetry{}
	}
	s := reg.Scope("spice")
	return dcTelemetry{
		solves:       s.Counter("solves_total"),
		unconverged:  s.Counter("unconverged_total"),
		gminFalls:    s.Counter("fallback_gmin_total"),
		sourceFalls:  s.Counter("fallback_source_total"),
		solveSeconds: s.Histogram("solve_seconds", solveSecondsBuckets),
		newtonIters:  s.Histogram("newton_iterations", newtonIterBuckets),
		residual:     s.Histogram("residual", residualBuckets),
	}
}
