// Package spice implements the transistor-level simulation substrate: a
// nonlinear DC circuit solver in the style of SPICE, built on modified
// nodal analysis (MNA) with Newton–Raphson iteration, gmin stepping and
// source stepping for robust convergence, plus DC sweeps with continuation.
//
// The paper evaluates every Monte Carlo sample with a transistor-level
// simulation of a 90 nm 6-T SRAM cell; this package is the from-scratch
// stand-in for that simulator (see DESIGN.md, substitution table). Device
// models live in mosfet.go; the SRAM netlists are assembled by package
// sram.
package spice

import (
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// Ground is the reserved name of the reference node (0 V).
const Ground = "0"

// Circuit is a flat netlist of devices connected at named nodes.
// The zero value is not usable; create circuits with NewCircuit.
type Circuit struct {
	nodeIndex  map[string]int // node name -> unknown index; Ground -> -1
	nodeNames  []string       // index -> name
	devices    []Device
	vsources   []*VSource // sources that own an MNA branch current
	capacitors []*Capacitor
	byName     map[string]Device

	// plan and ws cache the solver's symbolic structure (which unknowns
	// are actually solved for) and its numeric workspace. Both depend
	// only on the netlist topology, never on device values, and are
	// rebuilt lazily after any device or node is added. They make a
	// Circuit single-goroutine for solving, which has always been the
	// contract (sweeps mutate source values between solves).
	plan *solvePlan
	ws   *newtonWorkspace

	// telReg/telCache memoize the resolved telemetry metric handles for
	// the last registry seen, so sweep- and batch-heavy callers don't
	// pay ~10 locked map lookups per solve. solveTick drives the sampled
	// solve_seconds stopwatch (see startSolveClock). Purely
	// observational; covered by the same single-goroutine contract as
	// plan/ws.
	telReg    *telemetry.Registry
	telCache  dcTelemetry
	solveTick uint
}

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit {
	return &Circuit{
		nodeIndex: map[string]int{Ground: -1, "gnd": -1, "GND": -1},
		byName:    map[string]Device{},
	}
}

// Node interns a node name and returns its unknown index (-1 for ground).
func (c *Circuit) Node(name string) int {
	if idx, ok := c.nodeIndex[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[name] = idx
	c.nodeNames = append(c.nodeNames, name)
	c.plan = nil
	return idx
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NumUnknowns returns the MNA system size: nodes plus V-source branch
// currents.
func (c *Circuit) NumUnknowns() int { return len(c.nodeNames) + len(c.vsources) }

// NodeNames returns the non-ground node names in index order.
func (c *Circuit) NodeNames() []string {
	out := make([]string, len(c.nodeNames))
	copy(out, c.nodeNames)
	return out
}

// add registers a device under its name, panicking on duplicates (netlist
// construction bugs should fail fast).
func (c *Circuit) add(d Device) {
	name := d.Name()
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("spice: duplicate device name %q", name))
	}
	c.byName[name] = d
	c.devices = append(c.devices, d)
	c.plan = nil
}

// AddResistor connects a linear resistor of the given ohms between nodes
// a and b.
func (c *Circuit) AddResistor(name, a, b string, ohms float64) *Resistor {
	if ohms <= 0 {
		panic(fmt.Sprintf("spice: resistor %q with non-positive resistance", name))
	}
	r := &Resistor{name: name, p: c.Node(a), m: c.Node(b), g: 1 / ohms}
	c.add(r)
	return r
}

// AddVSource connects an independent voltage source (plus terminal first).
// Its branch current becomes an MNA unknown.
func (c *Circuit) AddVSource(name, plus, minus string, volts float64) *VSource {
	v := &VSource{name: name, p: c.Node(plus), m: c.Node(minus), E: volts}
	v.branch = len(c.nodeNames) // provisional; fixed up in indexBranches
	c.vsources = append(c.vsources, v)
	c.add(v)
	return v
}

// AddISource connects an independent current source pushing the given
// current from plus, through itself, out of minus.
func (c *Circuit) AddISource(name, plus, minus string, amps float64) *ISource {
	i := &ISource{name: name, p: c.Node(plus), m: c.Node(minus), I: amps}
	c.add(i)
	return i
}

// AddMOSFET connects a MOSFET with terminals drain, gate, source, bulk and
// the given model card.
func (c *Circuit) AddMOSFET(name, d, g, s, b string, model *MOSModel) *MOSFET {
	if model == nil {
		panic("spice: nil MOSFET model")
	}
	m := &MOSFET{
		name: name, d: c.Node(d), g: c.Node(g), s: c.Node(s), b: c.Node(b),
		Model: model,
	}
	c.add(m)
	return m
}

// Device looks up a device by name.
func (c *Circuit) Device(name string) (Device, bool) {
	d, ok := c.byName[name]
	return d, ok
}

// VSourceByName returns the named voltage source, or an error naming the
// available sources — sweep configuration typos should be loud.
func (c *Circuit) VSourceByName(name string) (*VSource, error) {
	d, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("spice: no device %q (have %s)", name, c.deviceList())
	}
	v, ok := d.(*VSource)
	if !ok {
		return nil, fmt.Errorf("spice: device %q is not a voltage source", name)
	}
	return v, nil
}

// MOSFETByName returns the named MOSFET.
func (c *Circuit) MOSFETByName(name string) (*MOSFET, error) {
	d, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("spice: no device %q (have %s)", name, c.deviceList())
	}
	m, ok := d.(*MOSFET)
	if !ok {
		return nil, fmt.Errorf("spice: device %q is not a MOSFET", name)
	}
	return m, nil
}

func (c *Circuit) deviceList() string {
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

// indexBranches assigns final MNA branch indices to the voltage sources.
// Node interning can continue after sources are added, so branch indices
// are (re)assigned immediately before each solve.
func (c *Circuit) indexBranches() {
	for i, v := range c.vsources {
		v.branch = len(c.nodeNames) + i
	}
}

// voltageAt reads a node voltage from the unknown vector (ground is 0).
func voltageAt(x []float64, idx int) float64 {
	if idx < 0 {
		return 0
	}
	return x[idx]
}
