package spice

import (
	"math"

	"repro/internal/linalg"
)

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

// MOSFET channel polarities.
const (
	NMOS MOSType = iota
	PMOS
)

// MOSModel is a charge-sheet (EKV-style) compact model card. The model is
// continuous from weak through strong inversion and symmetric in
// drain/source, which keeps Newton iteration robust — the property that
// matters for the tens of thousands of operating-point solves behind each
// failure-rate estimate.
//
// Large-signal current (bulk-referenced, NMOS polarity):
//
//	vp  = (Vgb − (VT0 + ΔVth)) / N
//	F(u) = softplus(u / (2·Vt))²
//	Id  = 2·N·β·Vt² · (F(vp − Vsb) − F(vp − Vdb)) · (1 + λ·|Vds|)
//
// with β = KP·W/L. In strong-inversion saturation this reduces to the
// square law Id ≈ β/(2N)·(Vgs − VthEff)², with an effective body-effect
// slope dVthEff/dVsb = N − 1. Subthreshold behaviour is exponential with
// slope factor N.
type MOSModel struct {
	Type MOSType
	// VT0 is the zero-bias threshold voltage magnitude in volts (positive
	// for both polarities).
	VT0 float64
	// KP is the transconductance parameter µ·Cox in A/V².
	KP float64
	// W and L are the drawn width and length in meters.
	W, L float64
	// Lambda is the channel-length-modulation coefficient in 1/V.
	Lambda float64
	// N is the subthreshold slope factor (typically 1.2–1.5).
	N float64
	// Vt is the thermal voltage kT/q (defaults to 25.85 mV at 300 K when
	// zero).
	Vt float64
}

// Beta returns KP·W/L.
func (m *MOSModel) Beta() float64 { return m.KP * m.W / m.L }

func (m *MOSModel) vt() float64 {
	if m.Vt > 0 {
		return m.Vt
	}
	return 0.02585
}

func (m *MOSModel) slope() float64 {
	if m.N > 0 {
		return m.N
	}
	return 1.3
}

// MOSFET is a model instance bound to circuit nodes. DeltaVth is the
// per-instance local threshold-voltage mismatch — the random variable of
// the paper's variation space (ΔVth1 … ΔVth6 for the 6-T cell).
type MOSFET struct {
	name       string
	d, g, s, b int
	Model      *MOSModel
	DeltaVth   float64
}

// Name returns the device name.
func (t *MOSFET) Name() string { return t.name }

// mosEval computes the drain current and its partial derivatives with
// respect to the terminal voltages for NMOS polarity. Voltages are
// absolute node voltages.
func (t *MOSFET) mosEval(vd, vg, vs, vb float64) (id, dId_dVd, dId_dVg, dId_dVs, dId_dVb float64) {
	m := t.Model
	vt := m.vt()
	n := m.slope()
	beta := m.Beta()

	vgb := vg - vb
	vsb := vs - vb
	vdb := vd - vb
	vds := vd - vs

	vp := (vgb - (m.VT0 + t.DeltaVth)) / n

	fF, dF := softplusSq((vp - vsb) / (2 * vt)) // forward
	fR, dR := softplusSq((vp - vdb) / (2 * vt)) // reverse
	// d/du of F wrt its voltage argument u carries the 1/(2vt) factor.
	dFdu := dF / (2 * vt)
	dRdu := dR / (2 * vt)

	i0 := 2 * n * beta * vt * vt
	iCh := i0 * (fF - fR)

	// Smooth channel-length modulation, symmetric in Vds.
	const clmEps = 1e-4
	sabs := math.Sqrt(vds*vds + clmEps*clmEps)
	clm := 1 + m.Lambda*sabs
	dClm_dVds := m.Lambda * vds / sabs

	id = iCh * clm

	// Derivatives of iCh with respect to the bulk-referenced arguments.
	diCh_dVgb := i0 * (dFdu - dRdu) / n
	diCh_dVsb := i0 * (-dFdu)
	diCh_dVdb := i0 * (dRdu)

	dId_dVg = diCh_dVgb * clm
	dId_dVs = diCh_dVsb*clm - iCh*dClm_dVds
	dId_dVd = diCh_dVdb*clm + iCh*dClm_dVds
	dId_dVb = -(dId_dVg + dId_dVs + dId_dVd)
	return id, dId_dVd, dId_dVg, dId_dVs, dId_dVb
}

// softplusSq returns f = softplus(u)² and df = d f / d u = 2·softplus(u)·σ(u),
// with overflow-safe asymptotics.
func softplusSq(u float64) (f, df float64) {
	switch {
	case u > 34:
		// softplus(u) ≈ u, σ(u) ≈ 1.
		return u * u, 2 * u
	case u < -34:
		// softplus(u) ≈ e^u → squares underflow harmlessly.
		e := math.Exp(u)
		return e * e, 2 * e * e
	default:
		sp := math.Log1p(math.Exp(u))
		sg := 1 / (1 + math.Exp(-u))
		return sp * sp, 2 * sp * sg
	}
}

// Eval returns the drain current and terminal conductances at absolute
// node voltages, handling polarity. For PMOS the returned current keeps
// the NMOS sign convention of current flowing into the drain terminal
// (so a conducting PMOS pulling its drain up has negative id).
func (t *MOSFET) Eval(vd, vg, vs, vb float64) (id, gd, gg, gs, gb float64) {
	if t.Model.Type == NMOS {
		return t.mosEval(vd, vg, vs, vb)
	}
	// PMOS: mirror voltages; Id' (into drain) = −IdN(−V...); derivatives
	// keep their sign: dId'/dV = −dIdN/d(−V)·(−1)... which equals dIdN/dV
	// evaluated at mirrored voltages.
	id, gd, gg, gs, gb = t.mosEval(-vd, -vg, -vs, -vb)
	return -id, gd, gg, gs, gb
}

// Stamp implements Device: current id flows drain→source through the
// channel, leaving the drain node and entering the source node.
func (t *MOSFET) Stamp(x []float64, f []float64, j *linalg.Matrix) {
	vd := voltageAt(x, t.d)
	vg := voltageAt(x, t.g)
	vs := voltageAt(x, t.s)
	vb := voltageAt(x, t.b)
	id, gd, gg, gs, gb := t.Eval(vd, vg, vs, vb)

	nodes := [4]int{t.d, t.g, t.s, t.b}
	grads := [4]float64{gd, gg, gs, gb}
	if t.d >= 0 {
		f[t.d] += id
		for k, nk := range nodes {
			if nk >= 0 {
				j.Add(t.d, nk, grads[k])
			}
		}
	}
	if t.s >= 0 {
		f[t.s] -= id
		for k, nk := range nodes {
			if nk >= 0 {
				j.Add(t.s, nk, -grads[k])
			}
		}
	}
}

// Current returns the drain current at a solved operating point.
func (t *MOSFET) Current(op *OperatingPoint) float64 {
	id, _, _, _, _ := t.Eval(
		voltageAt(op.x, t.d), voltageAt(op.x, t.g),
		voltageAt(op.x, t.s), voltageAt(op.x, t.b))
	return id
}
