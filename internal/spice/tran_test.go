package spice

import (
	"math"
	"testing"
)

// RC discharge: V(t) = V0·e^{−t/RC}, the canonical transient check.
func TestTranRCDischarge(t *testing.T) {
	const (
		r  = 1e3
		cf = 1e-9
		v0 = 1.0
	)
	tau := r * cf
	c := NewCircuit()
	c.AddResistor("r", "n", "0", r)
	c.AddCapacitor("c", "n", "0", cf)
	var worst float64
	err := c.SolveTran(TranOptions{
		Stop: 3 * tau, Step: tau / 200, Method: Trapezoidal,
		InitialConditions: map[string]float64{"n": v0},
	}, func(p TranPoint) bool {
		want := v0 * math.Exp(-p.T/tau)
		if d := math.Abs(p.OP.Voltage("n") - want); d > worst {
			worst = d
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 2e-3 {
		t.Fatalf("RC discharge worst error %v", worst)
	}
}

// RC charging through a stepped source reaches (1−e^{−t/RC})·V.
func TestTranRCCharge(t *testing.T) {
	const (
		r  = 2e3
		cf = 0.5e-9
	)
	tau := r * cf
	c := NewCircuit()
	src := c.AddVSource("vin", "in", "0", 0)
	src.Waveform = StepWaveform(0, 1, 0, tau/100)
	c.AddResistor("r", "in", "n", r)
	c.AddCapacitor("c", "n", "0", cf)
	var last float64
	err := c.SolveTran(TranOptions{Stop: 5 * tau, Step: tau / 100}, func(p TranPoint) bool {
		last = p.OP.Voltage("n")
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-5)
	if math.Abs(last-want) > 0.01 {
		t.Fatalf("RC charge endpoint %v, want %v", last, want)
	}
}

// Backward Euler and trapezoidal must agree to first order and
// trapezoidal must be more accurate on the smooth RC case.
func TestTranMethodsAgree(t *testing.T) {
	run := func(m Integration, step float64) float64 {
		c := NewCircuit()
		c.AddResistor("r", "n", "0", 1e3)
		c.AddCapacitor("c", "n", "0", 1e-9)
		tau := 1e-6
		var at float64
		err := c.SolveTran(TranOptions{
			Stop: tau, Step: step, Method: m,
			InitialConditions: map[string]float64{"n": 1},
		}, func(p TranPoint) bool {
			at = p.OP.Voltage("n")
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	want := math.Exp(-1)
	be := run(BackwardEuler, 1e-8)
	tr := run(Trapezoidal, 1e-8)
	if math.Abs(be-want) > 0.01 || math.Abs(tr-want) > 0.01 {
		t.Fatalf("methods disagree with analytic: BE %v, TR %v, want %v", be, tr, want)
	}
	if math.Abs(tr-want) > math.Abs(be-want) {
		t.Fatalf("trapezoidal (%v) should beat backward Euler (%v)", tr-want, be-want)
	}
}

func TestTranValidation(t *testing.T) {
	c := NewCircuit()
	c.AddResistor("r", "n", "0", 1e3)
	c.AddCapacitor("c", "n", "0", 1e-9)
	if err := c.SolveTran(TranOptions{Stop: 0, Step: 1e-9}, nil); err == nil {
		t.Fatal("expected Stop validation error")
	}
	if err := c.SolveTran(TranOptions{Stop: 1e-9, Step: 1e-6}, nil); err == nil {
		t.Fatal("expected Step validation error")
	}
	if err := c.SolveTran(TranOptions{
		Stop: 1e-8, Step: 1e-9,
		InitialConditions: map[string]float64{"nope": 1},
	}, func(TranPoint) bool { return true }); err == nil {
		t.Fatal("expected unknown-node error")
	}
	if c.AddCapacitor("c2", "n", "0", 1e-12) == nil {
		t.Fatal("AddCapacitor returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive capacitance")
		}
	}()
	c.AddCapacitor("bad", "n", "0", -1)
}

func TestTranEarlyStop(t *testing.T) {
	c := NewCircuit()
	c.AddResistor("r", "n", "0", 1e3)
	c.AddCapacitor("c", "n", "0", 1e-9)
	n := 0
	err := c.SolveTran(TranOptions{Stop: 1e-6, Step: 1e-8}, func(p TranPoint) bool {
		n++
		return n < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop visited %d points", n)
	}
}

// A CMOS inverter driving a load capacitor must produce a finite,
// positive propagation delay that grows with the load.
func TestTranInverterDelayGrowsWithLoad(t *testing.T) {
	delay := func(load float64) float64 {
		c := NewCircuit()
		c.AddVSource("vdd", "vdd", "0", 1.0)
		vin := c.AddVSource("vin", "in", "0", 0)
		vin.Waveform = StepWaveform(0, 1, 1e-10, 2e-11)
		c.AddMOSFET("mn", "out", "in", "0", "0", nmosModel())
		c.AddMOSFET("mp", "out", "in", "vdd", "vdd", pmosModel())
		c.AddCapacitor("cl", "out", "0", load)
		var crossed float64 = -1
		err := c.SolveTran(TranOptions{Stop: 3e-9, Step: 5e-12}, func(p TranPoint) bool {
			if crossed < 0 && p.T > 1e-10 && p.OP.Voltage("out") < 0.5 {
				crossed = p.T
				return false
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if crossed < 0 {
			t.Fatal("output never crossed VDD/2")
		}
		return crossed
	}
	d1 := delay(1e-15)
	d2 := delay(5e-15)
	if d2 <= d1 {
		t.Fatalf("delay should grow with load: %v vs %v", d1, d2)
	}
}

// Waveform helpers.
func TestWaveforms(t *testing.T) {
	s := StepWaveform(0, 1, 1e-9, 1e-10)
	if s(0) != 0 || s(2e-9) != 1 {
		t.Fatal("step endpoints wrong")
	}
	if mid := s(1.05e-9); mid <= 0 || mid >= 1 {
		t.Fatalf("step ramp wrong: %v", mid)
	}
	p := PulseWaveform(0, 1, 1e-9, 2e-9, 1e-10)
	if p(0) != 0 || math.Abs(p(1.5e-9)-1) > 1e-12 || math.Abs(p(3e-9)) > 1e-12 {
		t.Fatalf("pulse wrong: %v %v %v", p(0), p(1.5e-9), p(3e-9))
	}
}

// DC analyses must be unaffected by capacitors (open circuit).
func TestCapacitorOpenInDC(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("v", "a", "0", 2)
	c.AddResistor("r1", "a", "b", 1e3)
	c.AddResistor("r2", "b", "0", 1e3)
	c.AddCapacitor("c", "b", "0", 1e-9)
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage("b")-1) > 1e-6 {
		t.Fatalf("capacitor loaded the DC divider: %v", op.Voltage("b"))
	}
}

// Charge conservation: with no resistive path, a capacitor divider holds
// its node voltage through the transient.
func TestTranFloatingCapHolds(t *testing.T) {
	c := NewCircuit()
	c.AddCapacitor("c1", "n", "0", 1e-12)
	// gmin provides the only leakage; over a short window the droop is
	// negligible.
	err := c.SolveTran(TranOptions{
		Stop: 1e-9, Step: 1e-11,
		InitialConditions: map[string]float64{"n": 0.8},
	}, func(p TranPoint) bool {
		if math.Abs(p.OP.Voltage("n")-0.8) > 1e-3 {
			t.Fatalf("floating cap drooped to %v at t=%v", p.OP.Voltage("n"), p.T)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}
