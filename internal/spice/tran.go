package spice

import (
	"errors"
	"fmt"

	"repro/internal/linalg"
)

// This file adds transient analysis to the DC engine: capacitors with
// backward-Euler / trapezoidal companion models, time-varying sources,
// and a fixed-step integrator. The SRAM package uses it for the dynamic
// metrics (bitline discharge / access time, write delay) that motivate
// the paper's read-current experiment.

// Capacitor is a linear two-terminal capacitor. During DC analysis it is
// an open circuit; during transient analysis the integrator replaces it
// with a conductance + history-current companion model.
type Capacitor struct {
	name string
	p, m int
	C    float64

	// Integrator state (set between steps by SolveTran).
	active bool
	geq    float64 // companion conductance
	ieq    float64 // companion history current (flows p → m)
}

// AddCapacitor connects a capacitor of the given farads between a and b.
func (c *Circuit) AddCapacitor(name, a, b string, farads float64) *Capacitor {
	if farads <= 0 {
		panic(fmt.Sprintf("spice: capacitor %q with non-positive capacitance", name))
	}
	cap := &Capacitor{name: name, p: c.Node(a), m: c.Node(b), C: farads}
	c.add(cap)
	c.capacitors = append(c.capacitors, cap)
	return cap
}

// Name returns the device name.
func (c *Capacitor) Name() string { return c.name }

// Stamp implements Device. In DC mode the capacitor contributes nothing
// (open circuit); in transient mode it stamps its companion model.
func (c *Capacitor) Stamp(x []float64, f []float64, j *linalg.Matrix) {
	if !c.active {
		return
	}
	v := voltageAt(x, c.p) - voltageAt(x, c.m)
	i := c.geq*v - c.ieq
	if c.p >= 0 {
		f[c.p] += i
		j.Add(c.p, c.p, c.geq)
		if c.m >= 0 {
			j.Add(c.p, c.m, -c.geq)
		}
	}
	if c.m >= 0 {
		f[c.m] -= i
		j.Add(c.m, c.m, c.geq)
		if c.p >= 0 {
			j.Add(c.m, c.p, -c.geq)
		}
	}
}

// Integration selects the transient integration method.
type Integration int

// Supported integration methods.
const (
	// BackwardEuler is L-stable and robust (default).
	BackwardEuler Integration = iota
	// Trapezoidal is second-order accurate (but can ring on stiff
	// discontinuities).
	Trapezoidal
)

// TranOptions configures a transient run.
type TranOptions struct {
	// Stop is the end time in seconds (required).
	Stop float64
	// Step is the fixed time step in seconds (required).
	Step float64
	// Method selects the integration formula.
	Method Integration
	// DC tunes the per-step Newton solves; InitialGuess/Warm seed the
	// operating point at t = 0.
	DC *DCOptions
	// InitialConditions force node voltages at t = 0 (".ic"): the
	// circuit starts from a DC solve with these nodes pinned, then
	// releases them.
	InitialConditions map[string]float64
	// CoarseStep/CoarseUntil enable a two-rate (adaptive) schedule: when
	// both are positive and CoarseStep > Step, the integrator walks from
	// t = 0 to (approximately) CoarseUntil with CoarseStep, then
	// finishes with Step. The intended use is a known-quiescent lead-in
	// — e.g. an SRAM access transient before the wordline edge — where
	// nothing moves and fine resolution is wasted. The coarse segment
	// rounds to whole coarse steps, so set CoarseUntil at or before the
	// first waveform breakpoint.
	CoarseStep  float64
	CoarseUntil float64
}

// TranPoint is the solution at one time point.
type TranPoint struct {
	T  float64
	OP *OperatingPoint
}

// SolveTran runs a fixed-step transient analysis, calling fn after every
// accepted step (including t = 0). fn returning false stops early
// without error. Sources with a Waveform follow it; others hold their DC
// value.
func (c *Circuit) SolveTran(opts TranOptions, fn func(TranPoint) bool) error {
	if opts.Stop <= 0 || opts.Step <= 0 {
		return errors.New("spice: transient needs positive Stop and Step")
	}
	if opts.Step > opts.Stop {
		return errors.New("spice: transient step exceeds stop time")
	}

	// t = 0 operating point, with initial conditions enforced by
	// temporary voltage sources' worth of stiff conductances (pinning
	// via large gmin is fragile; instead solve with the guess and pin
	// capacitor history directly).
	dc := opts.DC.defaults()
	// Closed via defer so an early-exiting callback (fn returning false)
	// cannot leave the trace with an open span.
	span := dc.Telemetry.StartSpan("spice.tran")
	defer span.End()
	for _, src := range c.vsources {
		if src.Waveform != nil {
			src.E = src.Waveform(0)
		}
	}
	var op *OperatingPoint
	var err error
	if len(opts.InitialConditions) > 0 {
		op, err = c.solveWithPinnedNodes(&dc, opts.InitialConditions)
	} else {
		op, err = c.SolveDC(&dc)
	}
	if err != nil {
		return fmt.Errorf("spice: transient t=0 solve: %w", err)
	}
	if !fn(TranPoint{T: 0, OP: op}) {
		return nil
	}

	// Prime capacitor history with the t = 0 voltages and currents.
	type capState struct {
		v float64 // voltage at previous accepted step
		i float64 // current at previous accepted step (for trapezoidal)
	}
	states := make([]capState, len(c.capacitors))
	for k, cap := range c.capacitors {
		states[k].v = voltageAt(op.x, cap.p) - voltageAt(op.x, cap.m)
		states[k].i = 0 // DC: no capacitor current
	}
	defer func() {
		for _, cap := range c.capacitors {
			cap.active = false
		}
	}()

	// The step schedule: one fixed-step segment by default; a coarse
	// lead-in segment followed by the fine segment when the two-rate
	// options are set. Companion conductances are rebuilt per step from
	// the segment's step size, so a rate change needs no special
	// handling beyond the history already kept in states.
	type segment struct {
		t0    float64 // segment start time
		h     float64 // step size
		steps int
	}
	segs := []segment{{t0: 0, h: opts.Step, steps: int(opts.Stop/opts.Step + 0.5)}}
	if opts.CoarseStep > opts.Step && opts.CoarseUntil > 0 && opts.CoarseUntil < opts.Stop {
		coarse := int(opts.CoarseUntil / opts.CoarseStep)
		if coarse >= 1 {
			t1 := float64(coarse) * opts.CoarseStep
			fine := int((opts.Stop-t1)/opts.Step + 0.5)
			segs = []segment{
				{t0: 0, h: opts.CoarseStep, steps: coarse},
				{t0: t1, h: opts.Step, steps: fine},
			}
		}
	}

	first := true
	for _, seg := range segs {
		h := seg.h
		for n := 1; n <= seg.steps; n++ {
			t := seg.t0 + float64(n)*h
			for _, src := range c.vsources {
				if src.Waveform != nil {
					src.E = src.Waveform(t)
				}
			}
			// The DC solution carries no capacitor-current history, so the
			// first step always uses backward Euler (which needs none);
			// trapezoidal integration takes over once a consistent branch
			// current exists. This is the standard breakpoint treatment.
			method := opts.Method
			if first {
				method = BackwardEuler
			}
			for k, cap := range c.capacitors {
				cap.active = true
				switch method {
				case Trapezoidal:
					cap.geq = 2 * cap.C / h
					cap.ieq = cap.geq*states[k].v + states[k].i
				default: // backward Euler
					cap.geq = cap.C / h
					cap.ieq = cap.geq * states[k].v
				}
			}
			local := dc
			local.Warm = op
			next, err := c.SolveDC(&local)
			if err != nil {
				return fmt.Errorf("spice: transient step at t=%.3g: %w", t, err)
			}
			for k, cap := range c.capacitors {
				v := voltageAt(next.x, cap.p) - voltageAt(next.x, cap.m)
				states[k].i = cap.geq*v - cap.ieq
				states[k].v = v
			}
			op = next
			first = false
			if !fn(TranPoint{T: t, OP: op}) {
				return nil
			}
		}
	}
	return nil
}

// solveWithPinnedNodes computes a DC solution with the given nodes forced
// to fixed voltages through temporary ideal sources, then removes the
// pins. The returned operating point keeps the pinned values at the
// pinned nodes (the release happens on the first transient step).
func (c *Circuit) solveWithPinnedNodes(dc *DCOptions, pins map[string]float64) (*OperatingPoint, error) {
	// Pin via a huge conductance to the target voltage: equivalent to a
	// Norton source, avoids mutating the source list.
	var ps []nodePin
	for name, v := range pins {
		idx, ok := c.nodeIndex[name]
		if !ok {
			return nil, fmt.Errorf("spice: initial condition for unknown node %q", name)
		}
		if idx >= 0 {
			ps = append(ps, nodePin{idx: idx, v: v})
		}
	}
	// The pin device is appended outside c.add, so the cached solve plan
	// must be invalidated by hand — both for the pinned solve (the plan's
	// active-device list must include the pins) and after removal (it
	// must not keep stamping them).
	pinDev := &pinStamp{pins: ps, g: 1e6}
	c.devices = append(c.devices, pinDev)
	c.plan = nil
	defer func() {
		c.devices = c.devices[:len(c.devices)-1]
		c.plan = nil
	}()

	local := *dc
	if local.InitialGuess == nil {
		local.InitialGuess = map[string]float64{}
	}
	for name, v := range pins {
		local.InitialGuess[name] = v
	}
	return c.SolveDC(&local)
}

// nodePin forces one node toward a voltage during initial-condition
// solves.
type nodePin struct {
	idx int
	v   float64
}

// pinStamp is the internal device used by initial-condition pinning.
type pinStamp struct {
	pins []nodePin
	g    float64
}

// Name implements Device.
func (p *pinStamp) Name() string { return "__ic_pins__" }

// Stamp implements Device.
func (p *pinStamp) Stamp(x []float64, f []float64, j *linalg.Matrix) {
	for _, pin := range p.pins {
		f[pin.idx] += p.g * (x[pin.idx] - pin.v)
		j.Add(pin.idx, pin.idx, p.g)
	}
}
