package spice

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestNodeNamesAndClone(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("v", "a", "0", 1)
	c.AddResistor("r", "a", "b", 1e3)
	c.AddResistor("r2", "b", "0", 1e3)
	names := c.NodeNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("node names: %v", names)
	}
	// Mutating the returned slice must not corrupt the circuit.
	names[0] = "zz"
	if c.NodeNames()[0] != "a" {
		t.Fatal("NodeNames aliases internal state")
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := op.Clone()
	cl.x[0] = 99
	if op.Voltage("a") == 99 {
		t.Fatal("Clone aliases the solution vector")
	}
}

func TestOperatingPointUnknownNodePanics(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("v", "a", "0", 1)
	c.AddResistor("r", "a", "0", 1e3)
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown node")
		}
	}()
	op.Voltage("missing")
}

func TestMOSFETCurrentAtOP(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("vd", "d", "0", 1.0)
	c.AddVSource("vg", "g", "0", 0.8)
	m := c.AddMOSFET("m1", "d", "g", "0", "0", nmosModel())
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	i := m.Current(op)
	// Saturated NMOS with Vov ≈ 0.45: tens of µA for this geometry.
	if i < 1e-6 || i > 1e-3 {
		t.Fatalf("implausible drain current %v", i)
	}
	// Must equal the source branch current (KCL through the ammeter).
	vd, _ := c.VSourceByName("vd")
	if math.Abs(vd.Current(op)+i) > 1e-9 {
		t.Fatalf("branch current %v vs device current %v", vd.Current(op), i)
	}
}

func TestSoftplusSqAsymptotes(t *testing.T) {
	// Large positive: f = u², df = 2u.
	f, df := softplusSq(50)
	if f != 2500 || df != 100 {
		t.Fatalf("positive asymptote: %v %v", f, df)
	}
	// Large negative: ≈ e^{2u}, tiny but positive.
	f, df = softplusSq(-50)
	if f <= 0 || f > 1e-40 || df <= 0 {
		t.Fatalf("negative asymptote: %v %v", f, df)
	}
	// Continuity across the switch points.
	for _, u := range []float64{33.999, 34.001, -33.999, -34.001} {
		f1, d1 := softplusSq(u)
		if math.IsNaN(f1) || math.IsNaN(d1) {
			t.Fatalf("NaN at %v", u)
		}
	}
	// Branch agreement at the switch point: the asymptotic branch must
	// match the exact formula to near machine precision where it takes
	// over (softplus(34) − 34 ≈ 1.7e-15).
	fAsym, _ := softplusSq(34.5)
	spExact := math.Log1p(math.Exp(34.5-34.5)) + 34.5 // log1p(e^0)+u == softplus via shift
	_ = spExact
	if math.Abs(fAsym-34.5*34.5)/fAsym > 1e-12 {
		t.Fatalf("asymptotic branch off: %v", fAsym)
	}
}

func TestThermalVoltageOverride(t *testing.T) {
	m := nmosModel()
	m.Vt = 0.030 // hot device
	if m.vt() != 0.030 {
		t.Fatal("Vt override ignored")
	}
	m.Vt = 0
	if m.vt() != 0.02585 {
		t.Fatal("Vt default wrong")
	}
	m.N = 0
	if m.slope() != 1.3 {
		t.Fatal("slope default wrong")
	}
}

// Source stepping fallback: a circuit whose cold-start Newton diverges
// (bistable latch with an all-zero guess lands between basins) must still
// solve via the homotopy path.
func TestSolveDCHomotopyFallback(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("vdd", "vdd", "0", 1.0)
	c.AddMOSFET("mn1", "q", "qb", "0", "0", nmosModel())
	c.AddMOSFET("mp1", "q", "qb", "vdd", "vdd", pmosModel())
	c.AddMOSFET("mn2", "qb", "q", "0", "0", nmosModel())
	c.AddMOSFET("mp2", "qb", "q", "vdd", "vdd", pmosModel())
	// Deliberately hostile options: few plain-Newton iterations force the
	// fallback machinery to do the work.
	op, err := c.SolveDC(&DCOptions{MaxIter: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, qb := op.Voltage("q"), op.Voltage("qb")
	// Any valid DC solution of the latch satisfies KCL; the two nodes
	// must be complementary or metastable-equal.
	if math.IsNaN(q) || math.IsNaN(qb) {
		t.Fatal("NaN solution")
	}
}

func TestCapacitorStampInactiveIsOpen(t *testing.T) {
	cap := &Capacitor{p: 0, m: -1, C: 1e-12}
	f := make([]float64, 1)
	x := []float64{0.7}
	cap.Stamp(x, f, zeroMat(1))
	if f[0] != 0 {
		t.Fatal("inactive capacitor stamped current")
	}
	cap.active = true
	cap.geq = 1e-3
	cap.ieq = 0
	cap.Stamp(x, f, zeroMat(1))
	if math.Abs(f[0]-0.7e-3) > 1e-18 {
		t.Fatalf("active companion current wrong: %v", f[0])
	}
}

func TestPinStampName(t *testing.T) {
	p := &pinStamp{}
	if p.Name() == "" {
		t.Fatal("pin stamp must have a name")
	}
}

// zeroMat builds a zeroed Jacobian for direct stamp tests.
func zeroMat(n int) *linalg.Matrix { return linalg.NewMatrix(n, n) }
