package spice

import (
	"fmt"
	"math/rand"
	"testing"
)

// FuzzSolveDCBatch drives the batch kernel with pseudo-random circuit
// topologies, sample counts and ΔVth mixes derived from the fuzz seed,
// and checks the kernel's structural invariants:
//
//   - never panics, whatever the topology or sample set;
//   - dimension-mismatched rows produce per-sample errors, not aborts;
//   - Ops[i] is nil exactly when Errs[i] is non-nil, and the stats
//     buckets partition the batch;
//   - caller-owned sample rows are never written (sentinel copies);
//   - no solution state aliases across samples — each converged
//     operating point owns its vector, and re-solving any single sample
//     as a batch of one reproduces it bit for bit (so later samples
//     cannot have scribbled on earlier results).
func FuzzSolveDCBatch(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), false)
	f.Add(int64(7), uint8(0), uint8(0), false)
	f.Add(int64(42), uint8(8), uint8(4), true)
	f.Add(int64(-3), uint8(3), uint8(1), true)
	f.Fuzz(func(t *testing.T, seed int64, nsRaw, ndRaw uint8, badRow bool) {
		rng := rand.New(rand.NewSource(seed))
		ns := int(nsRaw) % 9   // 0..8 samples
		nd := 1 + int(ndRaw)%5 // 1..5 MOSFETs
		c := NewCircuit()
		c.AddVSource("vdd", "vdd", "0", 1.0)
		c.AddResistor("ra", "a", "0", 1e5)
		c.AddResistor("rb", "b", "0", 1e5)
		c.AddResistor("rs", "vdd", "a", 1e5)
		nodes := []string{"0", "vdd", "a", "b"}
		mosfets := make([]*MOSFET, nd)
		for i := range mosfets {
			model, bulk := nmosModel(), "0"
			if rng.Intn(2) == 1 {
				model, bulk = pmosModel(), "vdd"
			}
			mosfets[i] = c.AddMOSFET(fmt.Sprintf("m%d", i),
				nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))],
				nodes[rng.Intn(len(nodes))], bulk, model)
		}

		var anchors []BatchAnchor
		if op, err := c.SolveDC(nil); err == nil {
			anchors = []BatchAnchor{{DeltaVth: make([]float64, nd), OP: op}}
		}
		samples := make([][]float64, ns)
		for i := range samples {
			row := make([]float64, nd)
			for j := range row {
				row[j] = 0.1 * rng.NormFloat64()
			}
			samples[i] = row
		}
		if badRow && ns > 0 {
			samples[ns-1] = make([]float64, nd+1)
		}
		sentinel := make([][]float64, ns)
		for i, row := range samples {
			sentinel[i] = append([]float64(nil), row...)
		}

		opts := &BatchOptions{MOSFETs: mosfets, Anchors: anchors}
		res := c.SolveDCBatch(samples, opts)

		if len(res.Ops) != ns || len(res.Errs) != ns {
			t.Fatalf("result sized %d/%d for %d samples", len(res.Ops), len(res.Errs), ns)
		}
		if got := res.Stats.WarmHits + res.Stats.Fallbacks + res.Stats.Cold + res.Stats.Skipped; got != ns {
			t.Fatalf("stats buckets sum to %d, want %d (%+v)", got, ns, res.Stats)
		}
		for i := range samples {
			if (res.Ops[i] == nil) != (res.Errs[i] != nil) {
				t.Fatalf("sample %d: op/err disagree: %v / %v", i, res.Ops[i], res.Errs[i])
			}
			if len(samples[i]) != len(sentinel[i]) {
				t.Fatalf("sample %d: row resized", i)
			}
			for j := range samples[i] {
				if samples[i][j] != sentinel[i][j] {
					t.Fatalf("sample %d coordinate %d mutated", i, j)
				}
			}
		}
		if badRow && ns > 0 && res.Errs[ns-1] == nil {
			t.Fatal("dimension-mismatched row did not error")
		}
		for i := range res.Ops {
			for j := i + 1; j < len(res.Ops); j++ {
				if res.Ops[i] != nil && res.Ops[j] != nil && &res.Ops[i].x[0] == &res.Ops[j].x[0] {
					t.Fatalf("samples %d and %d share solution storage", i, j)
				}
			}
		}
		names := c.NodeNames()
		for i, op := range res.Ops {
			if op == nil {
				continue
			}
			single := c.SolveDCBatch(samples[i:i+1], opts)
			if single.Errs[0] != nil {
				t.Fatalf("sample %d: batch converged but re-solve failed: %v", i, single.Errs[0])
			}
			for _, n := range names {
				if got, want := single.Ops[0].Voltage(n), op.Voltage(n); got != want {
					t.Fatalf("sample %d node %s: re-solve %v != batch %v", i, n, got, want)
				}
			}
		}
	})
}
