package spice

import (
	"strings"
	"testing"
)

// FuzzParseNetlist asserts the parser's contract: any input — valid,
// malformed, or adversarial — yields either a circuit or a diagnostic
// error, never a panic. Run with `go test -fuzz=FuzzParseNetlist
// ./internal/spice` to explore beyond the seed corpus.
func FuzzParseNetlist(f *testing.F) {
	seeds := []string{
		// A well-formed inverter deck.
		`* inverter
.model nm nmos vt0=0.32 kp=300u w=240n l=100n
.model pm pmos vt0=-0.32 kp=120u w=480n l=100n
vdd vdd 0 1.0
vin in 0 0.5
mn out in 0 0 nm
mp out in vdd vdd pm dvth=10m
.end`,
		// Two-terminal elements with engineering suffixes.
		"r1 a b 1.5k\nc1 b 0 10f\nv1 a 0 1.0\ni1 b 0 1u\n",
		// Comments and blank lines.
		"* comment\n; also a comment\n\nr1 a 0 1k ; trailing\n",
		// Malformed: wrong arity, bad values, unknown elements.
		"r1 a 0\n",
		"r1 a 0 bogus\n",
		"x1 a 0 1k\n",
		".model\n",
		".model m1 njfet\n",
		".model m1 nmos vt0=\n",
		".model m1 nmos kp=300u w=240n l=100n frob=1\n",
		// Duplicate names must error, not panic.
		"r1 a 0 1k\nr1 b 0 2k\n",
		".model nm nmos vt0=0.3 kp=300u w=240n l=100n\nm1 d g 0 0 nm\nm1 d g 0 0 nm\n",
		// MOSFET referencing a missing model, bad options.
		"m1 d g s b nosuch\n",
		".model nm nmos vt0=0.3 kp=300u w=240n l=100n\nm1 d g 0 0 nm vth=1\n",
		".model nm nmos vt0=0.3 kp=300u w=240n l=100n\nm1 d g 0 0 nm dvth=zz\n",
		// Invalid element values (negative R panics in Circuit.AddResistor).
		"r1 a 0 -5\n",
		"c1 a 0 -1f\n",
		// Suffix-only and pathological numbers.
		"r1 a 0 meg\n",
		"r1 a 0 1e309\n",
		"v1 a 0 -0\n",
		// .end mid-stream.
		"r1 a 0 1k\n.end\nr1 a 0 1k\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, deck string) {
		c, err := ParseNetlist(strings.NewReader(deck))
		if err == nil && c == nil {
			t.Fatal("nil circuit without error")
		}
		if err != nil && !strings.Contains(err.Error(), "spice") && err.Error() != "" {
			// Errors escaping without package context are fine as long as
			// they are diagnostics, not panics — nothing further to check.
			_ = err
		}
	})
}
