package spice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseNetlist reads a SPICE-flavored netlist and builds a Circuit.
//
// Supported syntax (case-insensitive, one element per line):
//
//   - comment                      ; comment
//     .model NAME nmos|pmos vt0=0.32 kp=300u w=240n l=100n [lambda=0.1] [n=1.3]
//     Rname n1 n2 VALUE              resistor (ohms)
//     Cname n1 n2 VALUE              capacitor (farads)
//     Vname n+ n- VALUE              DC voltage source
//     Iname n+ n- VALUE              DC current source
//     Mname nd ng ns nb MODEL [dvth=VALUE]
//     .end                           optional terminator
//
// Values accept engineering suffixes: f p n u m k meg g t (e.g. 10f,
// 300u, 1.5k). Node "0", "gnd" and "GND" are ground.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	c := NewCircuit()
	models := map[string]*MOSModel{}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, ";") {
			continue
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
			if line == "" {
				continue
			}
		}
		fields := strings.Fields(line)
		head := strings.ToLower(fields[0])
		var err error
		switch {
		case head == ".end":
			return c, scanner.Err()
		case head == ".model":
			err = parseModel(fields, models)
		case head[0] == 'r':
			err = parseTwoTerminal(c, fields, func(name, a, b string, v float64) {
				c.AddResistor(name, a, b, v)
			})
		case head[0] == 'c':
			err = parseTwoTerminal(c, fields, func(name, a, b string, v float64) {
				c.AddCapacitor(name, a, b, v)
			})
		case head[0] == 'v':
			err = parseTwoTerminal(c, fields, func(name, a, b string, v float64) {
				c.AddVSource(name, a, b, v)
			})
		case head[0] == 'i':
			err = parseTwoTerminal(c, fields, func(name, a, b string, v float64) {
				c.AddISource(name, a, b, v)
			})
		case head[0] == 'm':
			err = parseMOSFET(c, fields, models)
		default:
			err = fmt.Errorf("unknown element %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("spice: netlist line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseNetlistString is ParseNetlist on a string.
func ParseNetlistString(s string) (*Circuit, error) {
	return ParseNetlist(strings.NewReader(s))
}

func parseTwoTerminal(c *Circuit, fields []string, add func(name, a, b string, v float64)) (err error) {
	if len(fields) != 4 {
		return fmt.Errorf("%s: want NAME N1 N2 VALUE", fields[0])
	}
	v, err := ParseValue(fields[3])
	if err != nil {
		return err
	}
	defer func() {
		// AddResistor/AddCapacitor panic on invalid values and duplicate
		// names; surface those as parse errors.
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	add(strings.ToLower(fields[0]), fields[1], fields[2], v)
	return nil
}

func parseModel(fields []string, models map[string]*MOSModel) error {
	if len(fields) < 3 {
		return fmt.Errorf(".model: want NAME nmos|pmos params...")
	}
	name := strings.ToLower(fields[1])
	if _, dup := models[name]; dup {
		return fmt.Errorf(".model: duplicate model %q", name)
	}
	m := &MOSModel{}
	switch strings.ToLower(fields[2]) {
	case "nmos":
		m.Type = NMOS
	case "pmos":
		m.Type = PMOS
	default:
		return fmt.Errorf(".model: unknown type %q", fields[2])
	}
	for _, kv := range fields[3:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf(".model: bad parameter %q", kv)
		}
		v, err := ParseValue(parts[1])
		if err != nil {
			return err
		}
		switch strings.ToLower(parts[0]) {
		case "vt0":
			m.VT0 = v
		case "kp":
			m.KP = v
		case "w":
			m.W = v
		case "l":
			m.L = v
		case "lambda":
			m.Lambda = v
		case "n":
			m.N = v
		case "vt":
			m.Vt = v
		default:
			return fmt.Errorf(".model: unknown parameter %q", parts[0])
		}
	}
	if m.KP <= 0 || m.W <= 0 || m.L <= 0 {
		return fmt.Errorf(".model %s: kp, w and l must be positive", name)
	}
	models[name] = m
	return nil
}

func parseMOSFET(c *Circuit, fields []string, models map[string]*MOSModel) (err error) {
	if len(fields) < 6 {
		return fmt.Errorf("%s: want NAME ND NG NS NB MODEL [dvth=V]", fields[0])
	}
	model, ok := models[strings.ToLower(fields[5])]
	if !ok {
		return fmt.Errorf("%s: unknown model %q", fields[0], fields[5])
	}
	defer func() {
		// AddMOSFET panics on duplicate device names; surface that as a
		// parse error like the two-terminal elements do.
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	m := c.AddMOSFET(strings.ToLower(fields[0]), fields[1], fields[2], fields[3], fields[4], model)
	for _, kv := range fields[6:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 || strings.ToLower(parts[0]) != "dvth" {
			return fmt.Errorf("%s: unknown option %q", fields[0], kv)
		}
		v, err := ParseValue(parts[1])
		if err != nil {
			return err
		}
		m.DeltaVth = v
	}
	return nil
}

// ParseValue parses a number with an optional engineering suffix
// (f p n u m k meg g t) in SPICE tradition, e.g. "10f", "300u", "1.5k",
// "4meg".
func ParseValue(s string) (float64, error) {
	low := strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	switch {
	case strings.HasSuffix(low, "meg"):
		mult, low = 1e6, strings.TrimSuffix(low, "meg")
	case strings.HasSuffix(low, "f"):
		mult, low = 1e-15, strings.TrimSuffix(low, "f")
	case strings.HasSuffix(low, "p"):
		mult, low = 1e-12, strings.TrimSuffix(low, "p")
	case strings.HasSuffix(low, "n"):
		mult, low = 1e-9, strings.TrimSuffix(low, "n")
	case strings.HasSuffix(low, "u"):
		mult, low = 1e-6, strings.TrimSuffix(low, "u")
	case strings.HasSuffix(low, "m"):
		mult, low = 1e-3, strings.TrimSuffix(low, "m")
	case strings.HasSuffix(low, "k"):
		mult, low = 1e3, strings.TrimSuffix(low, "k")
	case strings.HasSuffix(low, "g"):
		mult, low = 1e9, strings.TrimSuffix(low, "g")
	case strings.HasSuffix(low, "t"):
		mult, low = 1e12, strings.TrimSuffix(low, "t")
	}
	v, err := strconv.ParseFloat(low, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v * mult, nil
}
