package spice

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestStrategyRecordedOnPlainNewton: a well-conditioned circuit must
// converge without convergence aids, and the operating point must report
// how it got there — plain Newton, a positive iteration count and a
// residual within the KCL tolerance.
func TestStrategyRecordedOnPlainNewton(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("vin", "in", "0", 3.0)
	c.AddResistor("r1", "in", "mid", 1000)
	c.AddResistor("r2", "mid", "0", 2000)
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if op.Strategy() != StrategyNewton {
		t.Fatalf("strategy = %v, want %v", op.Strategy(), StrategyNewton)
	}
	if op.NewtonIterations() <= 0 {
		t.Fatalf("NewtonIterations = %d, want > 0", op.NewtonIterations())
	}
	if op.Residual() > 1e-9 {
		t.Fatalf("residual %v above ITol", op.Residual())
	}
}

// TestStrategySurvivesClone: warm-start flows clone operating points; the
// diagnostic fields must ride along.
func TestStrategySurvivesClone(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("v", "a", "0", 1)
	c.AddResistor("r", "a", "0", 100)
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	cl := op.Clone()
	if cl.Strategy() != op.Strategy() || cl.NewtonIterations() != op.NewtonIterations() || cl.Residual() != op.Residual() {
		t.Fatalf("clone lost diagnostics: %v/%d/%v vs %v/%d/%v",
			cl.Strategy(), cl.NewtonIterations(), cl.Residual(),
			op.Strategy(), op.NewtonIterations(), op.Residual())
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		StrategyNewton: "newton",
		StrategyGmin:   "gmin-stepping",
		StrategySource: "source-stepping",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", int(s), got, want)
		}
	}
	if got := Strategy(99).String(); got != "Strategy(99)" {
		t.Errorf("unknown strategy = %q", got)
	}
}

// TestSolveTelemetry checks the spice-scope metrics for a successful
// solve: one solve counted, one Newton-iteration and one wall-time
// observation, no fallback counters touched.
func TestSolveTelemetry(t *testing.T) {
	reg := telemetry.New()
	c := NewCircuit()
	c.AddVSource("vin", "in", "0", 3.0)
	c.AddResistor("r1", "in", "mid", 1000)
	c.AddResistor("r2", "mid", "0", 2000)
	op, err := c.SolveDC(&DCOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Scope("spice")
	if got := s.Counter("solves_total").Value(); got != 1 {
		t.Fatalf("solves_total = %d, want 1", got)
	}
	if got := s.Counter("unconverged_total").Value(); got != 0 {
		t.Fatalf("unconverged_total = %d, want 0", got)
	}
	if got := s.Counter("fallback_gmin_total").Value() + s.Counter("fallback_source_total").Value(); got != 0 {
		t.Fatalf("fallback counters = %d on a plain-Newton solve", got)
	}
	h := s.Histogram("newton_iterations", nil)
	if h.Count() != 1 || h.Sum() != float64(op.NewtonIterations()) {
		t.Fatalf("newton_iterations histogram: count=%d sum=%v, want 1/%d",
			h.Count(), h.Sum(), op.NewtonIterations())
	}
	if got := s.Histogram("solve_seconds", nil).Count(); got != 1 {
		t.Fatalf("solve_seconds count = %d, want 1", got)
	}
}

// TestUnconvergedTelemetry drives the full escalation chain to failure: a
// current source into a node whose only DC path to ground is the 1e-12 S
// gmin shunt wants ~1e9 V, far beyond MaxStep×MaxIter for plain Newton,
// every gmin relaxation level and every source-stepping fraction. The
// error must wrap ErrNoConvergence and be counted and emitted.
func TestUnconvergedTelemetry(t *testing.T) {
	var buf strings.Builder
	reg := telemetry.New()
	reg.SetSink(telemetry.NewEventSink(&buf))
	c := NewCircuit()
	c.AddISource("i1", "0", "n", 1e-3)
	_, err := c.SolveDC(&DCOptions{Telemetry: reg, MaxIter: 25})
	if err == nil {
		t.Fatal("expected convergence failure")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("error %v does not wrap ErrNoConvergence", err)
	}
	s := reg.Scope("spice")
	if got := s.Counter("unconverged_total").Value(); got != 1 {
		t.Fatalf("unconverged_total = %d, want 1", got)
	}
	if got := s.Counter("solves_total").Value(); got != 0 {
		t.Fatalf("solves_total = %d after a failed solve", got)
	}
	if !strings.Contains(buf.String(), `"event":"spice.unconverged"`) {
		t.Fatalf("no spice.unconverged event emitted:\n%s", buf.String())
	}
}
