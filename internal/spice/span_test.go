package spice

import (
	"errors"
	"testing"

	"repro/internal/telemetry"
)

// assertNoRunningSpans fails if any span in the trace is still open —
// the regression the early-exit paths used to leak.
func assertNoRunningSpans(t *testing.T, tr *telemetry.Trace) {
	t.Helper()
	for _, s := range tr.Snapshot() {
		if s.Running {
			t.Errorf("span %q leaked open", s.Name)
		}
	}
}

// TestSweepEarlyExitClosesSpan: a sweep callback returning false stops
// the sweep mid-run; the "spice.sweep" span must still be closed, not
// left dangling in the trace.
func TestSweepEarlyExitClosesSpan(t *testing.T) {
	reg := telemetry.New()
	tr := telemetry.NewTrace()
	reg.SetTrace(tr)
	c, _ := inverterChain()
	opts := &DCOptions{Telemetry: reg}
	calls := 0
	err := c.Sweep("vin", 0, 1, 11, opts, func(v float64, op *OperatingPoint) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("sweep ran %d points after an early exit", calls)
	}
	assertNoRunningSpans(t, tr)
}

// TestTranEarlyExitClosesSpan: same contract for the transient span
// when the per-point callback aborts the run.
func TestTranEarlyExitClosesSpan(t *testing.T) {
	reg := telemetry.New()
	tr := telemetry.NewTrace()
	reg.SetTrace(tr)
	c := NewCircuit()
	c.AddVSource("vin", "in", "0", 1.0)
	c.AddResistor("r", "in", "n", 1e3)
	c.AddCapacitor("c", "n", "0", 1e-9)
	opts := TranOptions{Stop: 1e-5, Step: 1e-7, DC: &DCOptions{Telemetry: reg}}
	calls := 0
	err := c.SolveTran(opts, func(p TranPoint) bool {
		calls++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("transient ran %d points after an early exit", calls)
	}
	assertNoRunningSpans(t, tr)
}

// TestSweepErrorExitClosesSpan: a sweep that dies on an unsolvable
// point (every free node driven to a singular system) must also close
// its span on the error path.
func TestSweepErrorExitClosesSpan(t *testing.T) {
	reg := telemetry.New()
	tr := telemetry.NewTrace()
	reg.SetTrace(tr)
	c := NewCircuit()
	c.AddVSource("vin", "in", "0", 0)
	// A floating node with no DC path to ground: the gmin shunt keeps
	// the matrix formally nonsingular, but an absurd MaxIter budget of
	// one iteration forces the escalation ladder to exhaust.
	c.AddResistor("r", "in", "n", 1e3)
	c.AddMOSFET("m", "n", "n", "0", "0", nmosModel())
	opts := &DCOptions{Telemetry: reg, MaxIter: 1}
	err := c.Sweep("vin", 0, 1, 5, opts, func(v float64, op *OperatingPoint) bool { return true })
	if err == nil {
		t.Skip("circuit converged in one iteration; error path not reachable here")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("sweep failed with unexpected error: %v", err)
	}
	assertNoRunningSpans(t, tr)
}
