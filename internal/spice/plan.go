package spice

import "repro/internal/linalg"

// This file holds the solver's cached symbolic analysis. Profiling the
// SRAM workloads showed most Newton time going into factoring Jacobian
// rows that are not really unknowns: every supply/wordline/bitline source
// in the cell has one terminal grounded, so its node voltage is known
// before the solve starts and its branch current is recoverable from KCL
// afterwards. The plan identifies those pinned nodes once per topology;
// the Newton loop then factors only the genuinely free unknowns (2 of 10
// for the read cell, 1 of 11 for a forced transfer-curve point).
//
// The plan and workspace are cached on the Circuit and rebuilt lazily
// whenever a device or node is added. Solving a Circuit was always a
// single-goroutine affair (sweeps mutate source values in place); the
// cache relies on that existing contract.

// pinInfo records one eliminated voltage source: a source with exactly
// one grounded terminal pins its other node to sign*E, and its branch
// current drops out of the unknown set (recovered after convergence).
type pinInfo struct {
	vs   *VSource
	node int     // full-system index of the pinned node
	sign float64 // +1 when node is the plus terminal, -1 when minus
}

// solvePlan is the symbolic structure of one circuit topology: which
// unknowns the Newton iteration actually solves for.
type solvePlan struct {
	// free lists the full-system indices of the reduced unknowns: free
	// nodes first, then the branch currents of sources that could not be
	// eliminated. freeNodes is the length of the node prefix.
	free      []int
	freeNodes int
	pins      []pinInfo
	// active lists the devices that stamp at least one free row. The
	// others only write rows outside the reduced system (e.g. a MOSFET
	// whose drain and source both sit on pinned nodes), so the Newton
	// loop skips them without changing a single bit of the iteration; a
	// forced transfer-curve point needs only half the cell's transistor
	// evaluations this way. Branch recovery still stamps every device.
	active []Device
}

// newtonWorkspace holds the per-circuit numeric scratch space so the
// Newton loop allocates nothing per iteration (or per solve).
type newtonWorkspace struct {
	f     []float64 // full-size residual
	neg   []float64 // reduced negated residual
	dx    []float64 // reduced Newton update
	jFull *linalg.Matrix
	jRed  *linalg.Matrix
	lu    linalg.LU
}

// buildPlan performs the symbolic analysis. A voltage source is
// eliminated when exactly one terminal is grounded and no earlier source
// already claimed its other node; everything else (floating sources,
// second sources on a claimed node, degenerate ground-to-ground sources)
// keeps its branch unknown and inherits the full MNA behavior — in the
// conflicting cases that is a structurally singular system, exactly as
// the unreduced formulation reported.
func (c *Circuit) buildPlan() *solvePlan {
	c.indexBranches()
	nn := c.NumNodes()
	p := &solvePlan{}
	claimed := make([]bool, nn)
	kept := make([]*VSource, 0, len(c.vsources))
	for _, v := range c.vsources {
		var node int
		var sign float64
		switch {
		case v.p >= 0 && v.m < 0:
			node, sign = v.p, 1
		case v.m >= 0 && v.p < 0:
			node, sign = v.m, -1
		default:
			kept = append(kept, v)
			continue
		}
		if claimed[node] {
			kept = append(kept, v)
			continue
		}
		claimed[node] = true
		p.pins = append(p.pins, pinInfo{vs: v, node: node, sign: sign})
	}
	for i := 0; i < nn; i++ {
		if !claimed[i] {
			p.free = append(p.free, i)
		}
	}
	p.freeNodes = len(p.free)
	for _, v := range kept {
		p.free = append(p.free, v.branch)
	}
	isFree := make([]bool, c.NumUnknowns())
	for _, i := range p.free {
		isFree[i] = true
	}
	for _, d := range c.devices {
		if stampsFreeRow(d, isFree) {
			p.active = append(p.active, d)
		}
	}
	return p
}

// stampsFreeRow reports whether the device writes any residual row in
// the reduced unknown set. The row sets mirror each Stamp method:
// current-carrying terminals for two-terminal devices and MOSFETs
// (drain/source; the gate and bulk draw no current), plus the branch row
// for sources. Unknown device types are conservatively kept active.
func stampsFreeRow(d Device, isFree []bool) bool {
	hit := func(idx int) bool { return idx >= 0 && isFree[idx] }
	switch t := d.(type) {
	case *MOSFET:
		return hit(t.d) || hit(t.s)
	case *Resistor:
		return hit(t.p) || hit(t.m)
	case *Capacitor:
		return hit(t.p) || hit(t.m)
	case *ISource:
		return hit(t.p) || hit(t.m)
	case *VSource:
		return hit(t.p) || hit(t.m) || hit(t.branch)
	case *pinStamp:
		for _, pin := range t.pins {
			if hit(pin.idx) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// solverState returns the current plan and a workspace sized for it,
// rebuilding both after any topology change.
func (c *Circuit) solverState() (*solvePlan, *newtonWorkspace) {
	if c.plan == nil {
		c.plan = c.buildPlan()
		c.ws = nil
	}
	if c.ws == nil {
		n := c.NumUnknowns()
		r := len(c.plan.free)
		c.ws = &newtonWorkspace{
			f:     make([]float64, n),
			neg:   make([]float64, r),
			dx:    make([]float64, r),
			jFull: linalg.NewMatrix(n, n),
			jRed:  linalg.NewMatrix(r, r),
		}
	}
	return c.plan, c.ws
}

// recoverPinnedBranches computes the branch currents of eliminated
// sources at the converged solution. With the eliminated branch current
// held at zero during stamping, the full-system node residual at a
// pinned node is exactly the device current that the source must supply:
// f[node] + sign*I = 0. One fresh stamp at the final iterate keeps the
// recovered currents consistent with the solution the caller sees.
func (c *Circuit) recoverPinnedBranches(plan *solvePlan, ws *newtonWorkspace, x []float64) {
	if len(plan.pins) == 0 {
		return
	}
	f := ws.f
	for i := range f {
		f[i] = 0
	}
	ws.jFull.Zero()
	for _, d := range c.devices {
		d.Stamp(x, f, ws.jFull)
	}
	for _, pin := range plan.pins {
		x[pin.vs.branch] = -pin.sign * f[pin.node]
	}
}
