package spice

import (
	"math"
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := map[string]float64{
		"10":   10,
		"10f":  10e-15,
		"3p":   3e-12,
		"240n": 240e-9,
		"300u": 300e-6,
		"2.5m": 2.5e-3,
		"1.5k": 1500,
		"4meg": 4e6,
		"2g":   2e9,
		"1t":   1e12,
		"-0.5": -0.5,
	}
	for s, want := range cases {
		got, err := ParseValue(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("%q: got %v want %v", s, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1.2.3", "10x"} {
		if _, err := ParseValue(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestParseNetlistDivider(t *testing.T) {
	c, err := ParseNetlistString(`
* a resistor divider
V1 in 0 3.0
R1 in mid 1k
R2 mid 0 2k  ; bottom leg
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage("mid")-2.0) > 1e-6 {
		t.Fatalf("divider mid = %v", op.Voltage("mid"))
	}
}

func TestParseNetlistInverter(t *testing.T) {
	c, err := ParseNetlistString(`
.model nfast nmos vt0=0.35 kp=200u w=200n l=100n lambda=0.08 n=1.3
.model pstd  pmos vt0=0.35 kp=80u  w=200n l=100n lambda=0.1
Vdd vdd 0 1.0
Vin in 0 0
Mn out in 0 0 nfast
Mp out in vdd vdd pstd
`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if op.Voltage("out") < 0.95 {
		t.Fatalf("inverter with low input should output high: %v", op.Voltage("out"))
	}
	// dvth option must apply.
	c2, err := ParseNetlistString(`
.model nfast nmos vt0=0.35 kp=200u w=200n l=100n
V1 d 0 1.0
Vg g 0 1.0
M1 d g 0 0 nfast dvth=0.1
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c2.MOSFETByName("m1")
	if err != nil {
		t.Fatal(err)
	}
	if m.DeltaVth != 0.1 {
		t.Fatalf("dvth = %v", m.DeltaVth)
	}
}

func TestParseNetlistCapAndISource(t *testing.T) {
	c, err := ParseNetlistString(`
I1 0 n 1m
R1 n 0 1k
C1 n 0 10f
`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage("n")-1.0) > 1e-6 {
		t.Fatalf("node = %v", op.Voltage("n"))
	}
}

func TestParseNetlistErrors(t *testing.T) {
	bad := []string{
		"R1 a 0",                                // missing value
		"R1 a 0 zz",                             // bad value
		"R1 a 0 -5",                             // negative resistance panics→error
		"Q1 a b c",                              // unknown element
		".model m1 njfet vt0=1 kp=1u w=1n l=1n", // unknown type
		".model m1 nmos vt0=1 kp=1u",            // missing geometry
		".model m1 nmos vt0=1 kp=1u w=1n l=1n zz=3",                                  // unknown param
		".model m1 nmos vt0=1 kp=1u w=1n l=1n\n.model m1 nmos vt0=1 kp=1u w=1n l=1n", // dup
		"M1 d g s b nomodel", // unknown model
		"M1 d g s b",         // short
		".model m1 nmos vt0=1 kp=1u w=1n l=1n\nM1 d g s b m1 foo=1", // bad option
		"R1 a 0 1k\nR1 b 0 1k", // duplicate name
	}
	for _, n := range bad {
		if _, err := ParseNetlistString(n); err == nil {
			t.Fatalf("netlist %q should fail", n)
		}
	}
}

func TestParseNetlistEndStops(t *testing.T) {
	c, err := ParseNetlistString("R1 a 0 1k\n.end\ngarbage beyond end")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Device("r1"); !ok {
		t.Fatal("r1 missing")
	}
}

func TestParseNetlistFromReader(t *testing.T) {
	r := strings.NewReader("V1 a 0 2\nR1 a 0 1k\n")
	c, err := ParseNetlist(r)
	if err != nil {
		t.Fatal(err)
	}
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage("a")-2) > 1e-9 {
		t.Fatal("reader netlist broken")
	}
}
