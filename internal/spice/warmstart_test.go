package spice

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

// inverterChain builds a two-stage CMOS inverter chain biased past the
// switching threshold (0.7 V in), so the stage outputs sit near the
// rails: small ΔVth perturbations barely move the operating point — the
// regime mismatch sampling lives in, and the one where a nominal anchor
// is provably closer than the zero-voltage cold guess. Returns the
// circuit and its MOSFET templates in ΔVth-vector order.
func inverterChain() (*Circuit, []*MOSFET) {
	c := NewCircuit()
	c.AddVSource("vdd", "vdd", "0", 1.0)
	c.AddVSource("vin", "in", "0", 0.7)
	mn1 := c.AddMOSFET("mn1", "out1", "in", "0", "0", nmosModel())
	mp1 := c.AddMOSFET("mp1", "out1", "in", "vdd", "vdd", pmosModel())
	mn2 := c.AddMOSFET("mn2", "out2", "out1", "0", "0", nmosModel())
	mp2 := c.AddMOSFET("mp2", "out2", "out1", "vdd", "vdd", pmosModel())
	return c, []*MOSFET{mn1, mp1, mn2, mp2}
}

// TestWarmStartProperty is the satellite property suite for the
// warm-start kernel: over seeded random ΔVth perturbations (the same
// mismatch statistics the Monte Carlo estimators draw), Newton from the
// nominal anchor must (a) converge as StrategyWarm, (b) spend no more
// iterations than the cold escalation, and (c) land on the same
// operating point to within the solver's own residual tolerance.
func TestWarmStartProperty(t *testing.T) {
	c, mosfets := inverterChain()
	nominal, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	nodes := c.NodeNames()
	for trial := 0; trial < 100; trial++ {
		for _, m := range mosfets {
			m.DeltaVth = 0.01 * rng.NormFloat64()
		}
		cold, err := c.SolveDC(nil)
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		warm, err := c.SolveDCFrom(nominal, 0, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		if warm.Strategy() != StrategyWarm {
			t.Fatalf("trial %d: warm solve used %v, want StrategyWarm", trial, warm.Strategy())
		}
		if warm.NewtonIterations() > cold.NewtonIterations() {
			t.Fatalf("trial %d: warm start took %d iterations, cold only %d",
				trial, warm.NewtonIterations(), cold.NewtonIterations())
		}
		if warm.Residual() > 1e-8 {
			t.Fatalf("trial %d: warm residual %v above tolerance", trial, warm.Residual())
		}
		for _, n := range nodes {
			if d := math.Abs(warm.Voltage(n) - cold.Voltage(n)); d > 1e-7 {
				t.Fatalf("trial %d: node %s differs by %v between warm and cold", trial, n, d)
			}
		}
	}
}

// TestWarmStartDivergentFallsBack: a deliberately hopeless anchor (node
// voltages at 10^6 V, far beyond what MaxStep·WarmMaxIter damped Newton
// can walk back) must not poison the solve — the kernel falls back to
// the cold escalation, converges to the true operating point, and the
// fallback is visible in telemetry.
func TestWarmStartDivergentFallsBack(t *testing.T) {
	c, _ := inverterChain()
	reg := telemetry.New()
	opts := &DCOptions{Telemetry: reg}
	cold, err := c.SolveDC(opts)
	if err != nil {
		t.Fatal(err)
	}
	bad := cold.Clone()
	for i := range bad.x {
		bad.x[i] = 1e6
	}
	fallsBefore := reg.Scope("spice").Counter("warm_fallback_total").Value()
	op, err := c.SolveDCFrom(bad, 0, nil, opts)
	if err != nil {
		t.Fatalf("divergent warm start must recover cold: %v", err)
	}
	if op.Strategy() == StrategyWarm {
		t.Fatal("divergent anchor reported StrategyWarm")
	}
	for _, n := range c.NodeNames() {
		if op.Voltage(n) != cold.Voltage(n) {
			t.Fatalf("node %s: fallback %v != cold %v", n, op.Voltage(n), cold.Voltage(n))
		}
	}
	if got := reg.Scope("spice").Counter("warm_fallback_total").Value(); got != fallsBefore+1 {
		t.Fatalf("warm_fallback_total = %d, want %d", got, fallsBefore+1)
	}
}

// TestWarmStartGuardRejection: a guard veto counts as a fallback even
// though the warm Newton converged, and the result is the cold path's
// bit for bit.
func TestWarmStartGuardRejection(t *testing.T) {
	c, _ := inverterChain()
	reg := telemetry.New()
	opts := &DCOptions{Telemetry: reg}
	cold, err := c.SolveDC(opts)
	if err != nil {
		t.Fatal(err)
	}
	never := func(*OperatingPoint) bool { return false }
	op, err := c.SolveDCFrom(cold.Clone(), 0, never, opts)
	if err != nil {
		t.Fatal(err)
	}
	if op.Strategy() == StrategyWarm {
		t.Fatal("guard-rejected solve reported StrategyWarm")
	}
	for _, n := range c.NodeNames() {
		if op.Voltage(n) != cold.Voltage(n) {
			t.Fatalf("node %s: guarded fallback %v != cold %v", n, op.Voltage(n), cold.Voltage(n))
		}
	}
	if reg.Scope("spice").Counter("warm_fallback_total").Value() == 0 {
		t.Fatal("guard rejection not recorded as a fallback")
	}
	if reg.Scope("spice").Counter("warm_hit_total").Value() != 0 {
		t.Fatal("guard rejection recorded as a warm hit")
	}
}

// TestWarmStartNilAnchorIsNotAFallback: offering no anchor at all is a
// plain cold solve, not a failed warm start — the fallback counter must
// stay untouched.
func TestWarmStartNilAnchorIsNotAFallback(t *testing.T) {
	c, _ := inverterChain()
	reg := telemetry.New()
	opts := &DCOptions{Telemetry: reg}
	if _, err := c.SolveDCFrom(nil, 0, nil, opts); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope("spice").Counter("warm_fallback_total").Value(); got != 0 {
		t.Fatalf("nil anchor counted %d fallbacks", got)
	}
}
