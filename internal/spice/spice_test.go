package spice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func nmosModel() *MOSModel {
	return &MOSModel{Type: NMOS, VT0: 0.35, KP: 200e-6, W: 200e-9, L: 100e-9, Lambda: 0.08, N: 1.3}
}

func pmosModel() *MOSModel {
	return &MOSModel{Type: PMOS, VT0: 0.35, KP: 80e-6, W: 200e-9, L: 100e-9, Lambda: 0.10, N: 1.35}
}

func TestResistorDivider(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("vin", "in", "0", 3.0)
	c.AddResistor("r1", "in", "mid", 1000)
	c.AddResistor("r2", "mid", "0", 2000)
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance reflects the gmin shunt (1e-12 S) loading the 2 kΩ node.
	if math.Abs(op.Voltage("mid")-2.0) > 1e-7 {
		t.Fatalf("divider mid = %v, want 2.0", op.Voltage("mid"))
	}
	// Source current = −3/3000 through the branch (flows p→m inside).
	src, _ := c.VSourceByName("vin")
	if math.Abs(src.Current(op)+1e-3) > 1e-8 {
		t.Fatalf("source current = %v, want -1e-3", src.Current(op))
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := NewCircuit()
	c.AddISource("i1", "0", "n", 1e-3) // pushes 1 mA out of node n... into n
	c.AddResistor("r", "n", "0", 500)
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage("n")-0.5) > 1e-9 {
		t.Fatalf("node = %v, want 0.5", op.Voltage("n"))
	}
}

func TestGroundAliases(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("v", "a", "gnd", 1)
	c.AddResistor("r", "a", "GND", 100)
	op, err := c.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage("a")-1) > 1e-9 {
		t.Fatal("gnd alias broken")
	}
}

func TestDuplicateDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate device name")
		}
	}()
	c := NewCircuit()
	c.AddResistor("r", "a", "0", 1)
	c.AddResistor("r", "b", "0", 1)
}

func TestBadLookups(t *testing.T) {
	c := NewCircuit()
	c.AddResistor("r", "a", "0", 1)
	if _, err := c.VSourceByName("nope"); err == nil {
		t.Fatal("expected error for missing source")
	}
	if _, err := c.VSourceByName("r"); err == nil {
		t.Fatal("expected error for wrong device kind")
	}
	if _, err := c.MOSFETByName("r"); err == nil {
		t.Fatal("expected error for wrong device kind")
	}
}

// A diode-connected NMOS from a current source: solved Vgs must satisfy the
// model's own I-V relation.
func TestNMOSDiodeConnected(t *testing.T) {
	c := NewCircuit()
	m := c.AddMOSFET("m1", "d", "d", "0", "0", nmosModel())
	c.AddISource("ibias", "0", "d", 10e-6) // push 10 µA into the drain
	op, err := c.SolveDC(&DCOptions{InitialGuess: map[string]float64{"d": 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	v := op.Voltage("d")
	if v < 0.2 || v > 1.2 {
		t.Fatalf("implausible diode voltage %v", v)
	}
	id, _, _, _, _ := m.Eval(v, v, 0, 0)
	if math.Abs(id-10e-6)/10e-6 > 1e-6 {
		t.Fatalf("device current %v does not match bias 10µA", id)
	}
}

// Saturation current should follow the square law ≈ β/(2N)·Vov² well above
// threshold.
func TestNMOSSquareLawRegion(t *testing.T) {
	m := &MOSFET{d: -1, g: -1, s: -1, b: -1, Model: nmosModel()}
	vgs, vds := 0.9, 1.0 // strongly saturated
	id, _, _, _, _ := m.Eval(vds, vgs, 0, 0)
	mod := m.Model
	vov := vgs - mod.VT0
	want := mod.Beta() / (2 * mod.slope()) * vov * vov * (1 + mod.Lambda*vds)
	if math.Abs(id-want)/want > 0.05 {
		t.Fatalf("saturation current %v, square law %v", id, want)
	}
}

// Subthreshold current must be exponential in Vgs with slope factor N.
func TestNMOSSubthresholdSlope(t *testing.T) {
	m := &MOSFET{d: -1, g: -1, s: -1, b: -1, Model: nmosModel()}
	// Deep subthreshold (Vgs well below VT0) so the EKV interpolation has
	// reached its exponential asymptote.
	i1, _, _, _, _ := m.Eval(1.0, 0.00, 0, 0)
	i2, _, _, _, _ := m.Eval(1.0, 0.10, 0, 0)
	gotSlope := 0.1 / math.Log(i2/i1) // V per e-fold
	wantSlope := m.Model.slope() * m.Model.vt()
	if math.Abs(gotSlope-wantSlope)/wantSlope > 0.05 {
		t.Fatalf("subthreshold slope %v V/e-fold, want %v", gotSlope, wantSlope)
	}
}

// Raising DeltaVth must reduce current at fixed bias (monotone sensitivity
// used everywhere by the samplers).
func TestDeltaVthMonotone(t *testing.T) {
	m := &MOSFET{d: -1, g: -1, s: -1, b: -1, Model: nmosModel()}
	prev := math.Inf(1)
	for dv := -0.1; dv <= 0.1; dv += 0.02 {
		m.DeltaVth = dv
		id, _, _, _, _ := m.Eval(1.0, 0.6, 0, 0)
		if id >= prev {
			t.Fatalf("current not decreasing in DeltaVth at %v", dv)
		}
		prev = id
	}
}

// The analytic Jacobian must match finite differences over random bias
// points — this is the correctness core of the Newton solver.
func TestMOSFETGradientsFiniteDifference(t *testing.T) {
	check := func(model *MOSModel, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &MOSFET{d: -1, g: -1, s: -1, b: -1, Model: model, DeltaVth: 0.05 * rng.NormFloat64()}
		vd := 1.2 * rng.Float64()
		vg := 1.2 * rng.Float64()
		vs := 0.6 * rng.Float64()
		vb := 0.0
		id0, gd, gg, gs, gb := m.Eval(vd, vg, vs, vb)
		const h = 1e-7
		fd := func(dd, dg, ds, db float64) float64 {
			ip, _, _, _, _ := m.Eval(vd+dd*h, vg+dg*h, vs+ds*h, vb+db*h)
			im, _, _, _, _ := m.Eval(vd-dd*h, vg-dg*h, vs-ds*h, vb-db*h)
			return (ip - im) / (2 * h)
		}
		grads := []float64{gd, gg, gs, gb}
		nums := []float64{fd(1, 0, 0, 0), fd(0, 1, 0, 0), fd(0, 0, 1, 0), fd(0, 0, 0, 1)}
		for k := range grads {
			scale := math.Max(math.Abs(nums[k]), math.Abs(id0)/0.01)
			if scale < 1e-15 {
				continue
			}
			if math.Abs(grads[k]-nums[k]) > 1e-4*scale+1e-15 {
				t.Logf("grad %d: analytic %v numeric %v (id=%v)", k, grads[k], nums[k], id0)
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(seed int64) bool { return check(nmosModel(), seed) },
		&quick.Config{MaxCount: 60}); err != nil {
		t.Fatalf("NMOS gradients: %v", err)
	}
	if err := quick.Check(func(seed int64) bool { return check(pmosModel(), seed) },
		&quick.Config{MaxCount: 60}); err != nil {
		t.Fatalf("PMOS gradients: %v", err)
	}
}

// Drain/source symmetry: swapping D and S must negate the current.
func TestMOSFETDSSymmetry(t *testing.T) {
	m := &MOSFET{d: -1, g: -1, s: -1, b: -1, Model: nmosModel()}
	for _, bias := range [][3]float64{{0.8, 1.0, 0.2}, {0.3, 0.7, 0.5}, {1.1, 0.5, 0.9}} {
		vd, vg, vs := bias[0], bias[1], bias[2]
		i1, _, _, _, _ := m.Eval(vd, vg, vs, 0)
		i2, _, _, _, _ := m.Eval(vs, vg, vd, 0)
		if math.Abs(i1+i2) > 1e-12+1e-9*math.Abs(i1) {
			t.Fatalf("D/S symmetry broken: %v vs %v", i1, i2)
		}
	}
}

// PMOS mirror: a PMOS biased with mirrored voltages must carry the
// opposite current of the equivalent NMOS.
func TestPMOSMirror(t *testing.T) {
	nm := nmosModel()
	pmod := *nm
	pmod.Type = PMOS
	n := &MOSFET{d: -1, g: -1, s: -1, b: -1, Model: nm}
	p := &MOSFET{d: -1, g: -1, s: -1, b: -1, Model: &pmod}
	in, _, _, _, _ := n.Eval(0.8, 1.0, 0.0, 0.0)
	ip, _, _, _, _ := p.Eval(-0.8, -1.0, 0.0, 0.0)
	if math.Abs(in+ip) > 1e-15 {
		t.Fatalf("PMOS mirror broken: %v vs %v", in, ip)
	}
}

// A CMOS inverter VTC must be monotonically decreasing and rail-to-rail.
func TestInverterVTC(t *testing.T) {
	const vdd = 1.0
	c := NewCircuit()
	c.AddVSource("vdd", "vdd", "0", vdd)
	c.AddVSource("vin", "in", "0", 0)
	c.AddMOSFET("mn", "out", "in", "0", "0", nmosModel())
	c.AddMOSFET("mp", "out", "in", "vdd", "vdd", pmosModel())

	var prev float64 = math.Inf(1)
	var first, last float64
	i := 0
	err := c.Sweep("vin", 0, vdd, 51, nil, func(v float64, op *OperatingPoint) bool {
		out := op.Voltage("out")
		if out > prev+1e-6 {
			t.Fatalf("VTC not monotone at vin=%v: %v > %v", v, out, prev)
		}
		prev = out
		if i == 0 {
			first = out
		}
		last = out
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if first < 0.95*vdd {
		t.Fatalf("VTC(0) = %v, want ≈ VDD", first)
	}
	if last > 0.05*vdd {
		t.Fatalf("VTC(VDD) = %v, want ≈ 0", last)
	}
}

// Property: at any solved operating point the KCL residual of every node
// is tiny — the solver's own invariant, checked externally.
func TestKCLResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCircuit()
		c.AddVSource("vdd", "vdd", "0", 1.0)
		c.AddVSource("vin", "in", "0", rng.Float64())
		mn := c.AddMOSFET("mn", "out", "in", "0", "0", nmosModel())
		mp := c.AddMOSFET("mp", "out", "in", "vdd", "vdd", pmosModel())
		mn.DeltaVth = 0.06 * rng.NormFloat64()
		mp.DeltaVth = 0.06 * rng.NormFloat64()
		c.AddResistor("rl", "out", "0", 1e7)
		op, err := c.SolveDC(nil)
		if err != nil {
			return false
		}
		// Recompute the residual at the solution.
		c.indexBranches()
		n := c.NumUnknowns()
		fres := make([]float64, n)
		j := linalg.NewMatrix(n, n)
		for _, d := range c.devices {
			d.Stamp(op.x, fres, j)
		}
		for i := 0; i < c.NumNodes(); i++ {
			if math.Abs(fres[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepErrors(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("v", "a", "0", 1)
	c.AddResistor("r", "a", "0", 100)
	if err := c.Sweep("v", 0, 1, 1, nil, func(float64, *OperatingPoint) bool { return true }); err == nil {
		t.Fatal("expected error for <2 steps")
	}
	if err := c.Sweep("nope", 0, 1, 3, nil, func(float64, *OperatingPoint) bool { return true }); err == nil {
		t.Fatal("expected error for missing source")
	}
	// Early stop must not error.
	n := 0
	if err := c.Sweep("v", 0, 1, 11, nil, func(float64, *OperatingPoint) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d points", n)
	}
	// Source value restored.
	src, _ := c.VSourceByName("v")
	if src.E != 1 {
		t.Fatalf("sweep did not restore source: %v", src.E)
	}
}

func TestSweepRestoresOnError(t *testing.T) {
	c := NewCircuit()
	c.AddVSource("v", "a", "0", 2)
	c.AddResistor("r", "a", "0", 50)
	vals := []float64{}
	err := c.Sweep("v", -1, 1, 5, nil, func(v float64, op *OperatingPoint) bool {
		vals = append(vals, op.Voltage("a"))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		want := -1 + 2*float64(i)/4
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("sweep point %d: %v want %v", i, v, want)
		}
	}
}

// Bistable latch: the initial guess must select the basin.
func TestLatchBistability(t *testing.T) {
	build := func() *Circuit {
		c := NewCircuit()
		c.AddVSource("vdd", "vdd", "0", 1.0)
		c.AddMOSFET("mn1", "q", "qb", "0", "0", nmosModel())
		c.AddMOSFET("mp1", "q", "qb", "vdd", "vdd", pmosModel())
		c.AddMOSFET("mn2", "qb", "q", "0", "0", nmosModel())
		c.AddMOSFET("mp2", "qb", "q", "vdd", "vdd", pmosModel())
		return c
	}
	c := build()
	op0, err := c.SolveDC(&DCOptions{InitialGuess: map[string]float64{"q": 0, "qb": 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	if op0.Voltage("q") > 0.1 || op0.Voltage("qb") < 0.9 {
		t.Fatalf("state 0 not held: q=%v qb=%v", op0.Voltage("q"), op0.Voltage("qb"))
	}
	op1, err := c.SolveDC(&DCOptions{InitialGuess: map[string]float64{"q": 1.0, "qb": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if op1.Voltage("q") < 0.9 || op1.Voltage("qb") > 0.1 {
		t.Fatalf("state 1 not held: q=%v qb=%v", op1.Voltage("q"), op1.Voltage("qb"))
	}
}

func TestWarmStartSizeMismatch(t *testing.T) {
	c1 := NewCircuit()
	c1.AddVSource("v", "a", "0", 1)
	c1.AddResistor("r", "a", "0", 10)
	op, err := c1.SolveDC(nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCircuit()
	c2.AddVSource("v", "a", "0", 1)
	c2.AddResistor("r1", "a", "b", 10)
	c2.AddResistor("r2", "b", "0", 10)
	if _, err := c2.SolveDC(&DCOptions{Warm: op}); err == nil {
		t.Fatal("expected warm-start size mismatch error")
	}
}
