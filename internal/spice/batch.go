package spice

import (
	"fmt"

	"repro/internal/linalg"
)

// This file is the batched solve kernel (ROADMAP item 1). A batch is many
// Monte Carlo samples of the same circuit topology that differ only in
// per-device threshold mismatch: the kernel applies each sample's ΔVth
// vector to shared MOSFET templates (no per-sample netlist rebuild),
// reuses the circuit's cached symbolic plan and Newton workspace across
// the whole batch, and warm-starts each solve from the nearest anchor
// solution instead of the cold gmin/source-stepping escalation.
//
// Determinism: anchors are a fixed, caller-supplied set (in practice the
// nominal-corner solutions computed once per metric), not solutions
// accumulated from earlier samples in the batch. Nearest-anchor selection
// is therefore a pure function of the sample's own ΔVth vector, so a
// sample's solve sequence — and its bit-exact result — is independent of
// batch size, sample order and worker count. See DESIGN.md §12.

// DefaultWarmMaxIter is the Newton budget for a warm-start attempt. Warm
// starts that are going to converge do so in a handful of iterations;
// anything still wandering after this budget is cheaper to restart cold
// than to keep polishing.
const DefaultWarmMaxIter = 40

// SolveDCFrom computes the DC operating point, first attempting damped
// Newton from the anchor solution with a warmIter iteration budget
// (<= 0 selects DefaultWarmMaxIter). A converged warm attempt must also
// pass guard (when non-nil) — guards reject warm solutions that left the
// intended basin of a bistable circuit. On any warm failure the solve
// falls back to the full cold escalation of SolveDC, and the fallback is
// recorded in the "spice" telemetry scope (warm_fallback_total); warm
// successes record warm_hit_total and report StrategyWarm.
//
// A nil anchor (or one sized for a different topology) skips straight to
// SolveDC without counting a fallback: the caller had no warm start to
// offer, which is different from offering one that failed.
func (c *Circuit) SolveDCFrom(anchor *OperatingPoint, warmIter int, guard func(*OperatingPoint) bool, opts *DCOptions) (*OperatingPoint, error) {
	if anchor == nil || len(anchor.x) != c.NumUnknowns() {
		return c.SolveDC(opts)
	}
	o := opts.defaults()
	tel := c.dcTel(o.Telemetry)
	w := o
	w.MaxIter = warmIter
	if w.MaxIter <= 0 {
		w.MaxIter = DefaultWarmMaxIter
	}
	sw, span := c.startSolveClock(tel, o.Telemetry)
	c.indexBranches()
	x := linalg.CopyVec(anchor.x)
	st, err := c.newton(x, &w, w.Gmin, 1.0)
	secs := sw.Stop()
	if span != nil {
		span.Agg("spice.solve").Observe(secs)
	}
	if err == nil {
		op := &OperatingPoint{circuit: c, x: x, strategy: StrategyWarm,
			iters: st.iters, residual: st.residual}
		if guard == nil || guard(op) {
			tel.warmHits.Inc()
			tel.solves.Inc()
			tel.newtonIters.Observe(float64(op.iters))
			tel.residual.Observe(op.residual)
			return op, nil
		}
	}
	tel.warmFalls.Inc()
	return c.SolveDC(opts)
}

// BatchAnchor is one candidate warm start: a converged solution labeled
// with the ΔVth vector it was solved at.
type BatchAnchor struct {
	DeltaVth []float64
	OP       *OperatingPoint
}

// BatchOptions configures SolveDCBatch.
type BatchOptions struct {
	// DC tunes the per-sample solves (nil picks defaults).
	DC *DCOptions
	// MOSFETs are the shared device templates, in the order matching
	// each sample's ΔVth vector. The kernel writes DeltaVth in place;
	// values are left at the final sample's state.
	MOSFETs []*MOSFET
	// Anchors are the candidate warm starts. Empty means every sample
	// solves cold. The set must be identical for every invocation that
	// should reproduce the same results — see the determinism note in
	// the file comment.
	Anchors []BatchAnchor
	// WarmMaxIter bounds warm-start Newton iterations
	// (<= 0: DefaultWarmMaxIter).
	WarmMaxIter int
	// Guard, when non-nil, must accept a warm-converged operating point
	// for it to count; rejection falls back to the cold path.
	Guard func(*OperatingPoint) bool
}

// BatchStats summarizes how a batch converged.
type BatchStats struct {
	// WarmHits counts samples solved by a warm start (StrategyWarm).
	WarmHits int
	// Fallbacks counts samples whose warm attempt failed (or was
	// rejected by the guard) and that re-solved via the cold path.
	Fallbacks int
	// Cold counts samples that never had an anchor to warm from.
	Cold int
	// Skipped counts samples rejected before any solve was attempted
	// (ΔVth vector sized for a different device set).
	Skipped int
}

// BatchResult holds per-sample outcomes; Ops[i] is nil exactly when
// Errs[i] is non-nil.
type BatchResult struct {
	Ops   []*OperatingPoint
	Errs  []error
	Stats BatchStats
}

// SolveDCBatch solves the DC operating point for every sample in the
// batch. samples[i] is the ΔVth vector applied to opts.MOSFETs for
// sample i. Samples are solved sequentially in index order on the shared
// circuit (parallelism belongs one level up, across circuits); each
// sample's result is bit-identical to a scalar SolveDCFrom call with the
// same anchors, because it is the same code path.
func (c *Circuit) SolveDCBatch(samples [][]float64, opts *BatchOptions) *BatchResult {
	res := &BatchResult{
		Ops:  make([]*OperatingPoint, len(samples)),
		Errs: make([]error, len(samples)),
	}
	for i, dv := range samples {
		if len(dv) != len(opts.MOSFETs) {
			res.Errs[i] = fmt.Errorf("spice: batch sample %d has %d ΔVth values for %d devices", i, len(dv), len(opts.MOSFETs))
			res.Stats.Skipped++
			continue
		}
		for k, m := range opts.MOSFETs {
			m.DeltaVth = dv[k]
		}
		anchor := nearestAnchor(opts.Anchors, dv)
		var op *OperatingPoint
		var err error
		if anchor != nil {
			op, err = c.SolveDCFrom(anchor.OP, opts.WarmMaxIter, opts.Guard, opts.DC)
		} else {
			op, err = c.SolveDC(opts.DC)
		}
		res.Ops[i], res.Errs[i] = op, err
		switch {
		case anchor == nil:
			res.Stats.Cold++
		case err == nil && op.Strategy() == StrategyWarm:
			res.Stats.WarmHits++
		default:
			res.Stats.Fallbacks++
		}
	}
	return res
}

// nearestAnchor picks the anchor whose ΔVth label is closest to dv in
// Euclidean distance, preferring the lowest index on ties so selection
// is deterministic. Anchors with mismatched dimensionality are skipped.
func nearestAnchor(anchors []BatchAnchor, dv []float64) *BatchAnchor {
	var best *BatchAnchor
	bestD := 0.0
	for i := range anchors {
		a := &anchors[i]
		if len(a.DeltaVth) != len(dv) {
			continue
		}
		d := 0.0
		for k, v := range dv {
			diff := v - a.DeltaVth[k]
			d += diff * diff
		}
		if best == nil || d < bestD {
			best, bestD = a, d
		}
	}
	return best
}

// TranBatchOptions configures SolveTranBatch.
type TranBatchOptions struct {
	// Tran is the per-sample transient configuration (shared).
	Tran TranOptions
	// MOSFETs are the shared device templates, matching each sample's
	// ΔVth vector, as in BatchOptions.
	MOSFETs []*MOSFET
}

// SolveTranBatch runs the transient analysis once per sample, applying
// samples[i] to the shared MOSFET templates first. fn receives the
// sample index with every accepted time point; returning false stops
// that sample's run early (the metric-driven early exit) and moves on to
// the next sample. errs[i] reports sample i's failure, if any.
//
// Waveform-driven sources are re-evaluated from t=0 for each sample, so
// the template needs no reset between samples beyond what SolveTran
// already restores.
func (c *Circuit) SolveTranBatch(samples [][]float64, opts *TranBatchOptions, fn func(sample int, p TranPoint) bool) []error {
	errs := make([]error, len(samples))
	for i, dv := range samples {
		if len(dv) != len(opts.MOSFETs) {
			errs[i] = fmt.Errorf("spice: batch sample %d has %d ΔVth values for %d devices", i, len(dv), len(opts.MOSFETs))
			continue
		}
		for k, m := range opts.MOSFETs {
			m.DeltaVth = dv[k]
		}
		errs[i] = c.SolveTran(opts.Tran, func(p TranPoint) bool { return fn(i, p) })
	}
	return errs
}
