package spice

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ErrNoConvergence is returned when the operating-point solve exhausts
// Newton iterations, gmin stepping and source stepping.
var ErrNoConvergence = errors.New("spice: DC operating point did not converge")

// Strategy identifies which convergence aid (if any) rescued a DC solve.
// Production flows care about the difference: a clean Newton solve and a
// source-stepped one land on the same operating point, but the latter
// flags a bias point near a bifurcation where the model is working hard.
type Strategy int

// Solve strategies, in escalation order.
const (
	// StrategyNewton: plain damped Newton from the initial guess.
	StrategyNewton Strategy = iota
	// StrategyGmin: rescued by gmin stepping (heavy shunt, relaxed).
	StrategyGmin
	// StrategySource: rescued by source stepping (supplies ramped from 0).
	StrategySource
	// StrategyWarm: converged from a warm start supplied by the batch
	// kernel (a neighboring sample's solution), skipping the cold path.
	StrategyWarm
)

func (s Strategy) String() string {
	switch s {
	case StrategyNewton:
		return "newton"
	case StrategyGmin:
		return "gmin-stepping"
	case StrategySource:
		return "source-stepping"
	case StrategyWarm:
		return "warm-start"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// OperatingPoint is a solved DC solution.
type OperatingPoint struct {
	circuit *Circuit
	x       []float64
	// strategy records which convergence aid produced the solution;
	// iters counts the Newton iterations consumed across every attempt
	// of the solve, and residual is the max-|KCL| residual at the final
	// converged iterate.
	strategy Strategy
	iters    int
	residual float64
}

// Strategy reports which solve strategy converged: plain Newton, gmin
// stepping or source stepping.
func (op *OperatingPoint) Strategy() Strategy { return op.strategy }

// NewtonIterations returns the total Newton iterations the solve
// consumed, including failed attempts before a fallback succeeded.
func (op *OperatingPoint) NewtonIterations() int { return op.iters }

// Residual returns the maximum absolute KCL residual at convergence.
func (op *OperatingPoint) Residual() float64 { return op.residual }

// Voltage returns the solved voltage of a named node (0 for ground);
// asking for an unknown node is a netlist bug and panics.
func (op *OperatingPoint) Voltage(node string) float64 {
	idx, ok := op.circuit.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", node))
	}
	return voltageAt(op.x, idx)
}

// Clone deep-copies the operating point (for use as a later initial guess).
func (op *OperatingPoint) Clone() *OperatingPoint {
	c := *op
	c.x = linalg.CopyVec(op.x)
	return &c
}

// PredictFrom linearly extrapolates the unknown vector one step past op
// along the secant from prev to op (2·op − prev): the classic
// continuation predictor for sweeps, where consecutive solutions evolve
// smoothly with the swept parameter. The result is only an initial
// guess — hand it to SolveDCFrom. prev must come from the same circuit;
// mismatched sizes return op itself (predicting is best-effort).
func (op *OperatingPoint) PredictFrom(prev *OperatingPoint) *OperatingPoint {
	if prev == nil || len(prev.x) != len(op.x) {
		return op
	}
	p := *op
	p.x = make([]float64, len(op.x))
	for i, v := range op.x {
		p.x[i] = 2*v - prev.x[i]
	}
	return &p
}

// DCOptions tunes the Newton solve. The zero value picks robust defaults.
type DCOptions struct {
	// MaxIter bounds Newton iterations per attempt (default 150).
	MaxIter int
	// VTol is the voltage-update convergence tolerance (default 1e-9 V).
	VTol float64
	// ITol is the KCL residual tolerance (default 1e-9 A; node currents
	// in the SRAM cell are µA-scale).
	ITol float64
	// MaxStep limits the per-iteration voltage update (default 0.4 V).
	MaxStep float64
	// Gmin is the shunt conductance from every node to ground
	// (default 1e-12 S).
	Gmin float64
	// InitialGuess seeds node voltages by name. Nodes not listed start at
	// 0 V. This is how callers select a bistable cell's state.
	InitialGuess map[string]float64
	// Warm, if non-nil, seeds the full unknown vector from a previous
	// solution of the same circuit (used by sweeps); it overrides
	// InitialGuess.
	Warm *OperatingPoint
	// Telemetry, when non-nil, records per-solve metrics (strategy
	// fallbacks, Newton iterations, residuals, wall time) into the
	// "spice" scope and emits fallback warning events. Nil is a no-op:
	// the solve path pays only a nil check.
	Telemetry *telemetry.Registry
	// NoBranchCurrents skips the post-convergence recovery of eliminated
	// sources' branch currents (they read as zero via VSource.Current).
	// Node voltages are unaffected bit-for-bit. Sweep-heavy callers that
	// only consume voltages set this to drop one full device stamp per
	// solve.
	NoBranchCurrents bool
}

func (o *DCOptions) defaults() DCOptions {
	d := DCOptions{MaxIter: 150, VTol: 1e-9, ITol: 1e-9, MaxStep: 0.4, Gmin: 1e-12}
	if o == nil {
		return d
	}
	out := *o
	if out.MaxIter <= 0 {
		out.MaxIter = d.MaxIter
	}
	if out.VTol <= 0 {
		out.VTol = d.VTol
	}
	if out.ITol <= 0 {
		out.ITol = d.ITol
	}
	if out.MaxStep <= 0 {
		out.MaxStep = d.MaxStep
	}
	if out.Gmin <= 0 {
		out.Gmin = d.Gmin
	}
	return out
}

// SolveDC computes the DC operating point. It first tries plain damped
// Newton from the initial guess; on failure it falls back to gmin stepping
// and then source stepping, mirroring production SPICE practice. The
// returned operating point records which strategy converged (Strategy),
// the Newton iterations consumed and the residual at convergence.
func (c *Circuit) SolveDC(opts *DCOptions) (*OperatingPoint, error) {
	o := opts.defaults()
	tel := c.dcTel(o.Telemetry)
	sw, span := c.startSolveClock(tel, o.Telemetry)
	op, err := c.solveDC(&o)
	secs := sw.Stop()
	// With span tracing on, credit the solve to the innermost pipeline
	// stage (the solver has no context of its own).
	if span != nil {
		span.Agg("spice.solve").Observe(secs)
	}
	if err != nil {
		tel.unconverged.Inc()
		if o.Telemetry.Enabled() {
			o.Telemetry.Emit(wire.EvSpiceUnconverged, map[string]any{"error": err.Error()})
		}
		return nil, err
	}
	tel.solves.Inc()
	tel.newtonIters.Observe(float64(op.iters))
	tel.residual.Observe(op.residual)
	switch op.strategy {
	case StrategyGmin:
		tel.gminFalls.Inc()
	case StrategySource:
		tel.sourceFalls.Inc()
	}
	if op.strategy != StrategyNewton && o.Telemetry.Enabled() {
		o.Telemetry.Emit(wire.EvSpiceFallback, map[string]any{
			"strategy": op.strategy.String(), "newton_iterations": op.iters,
		})
	}
	return op, nil
}

// solveDC runs the strategy escalation; o must already have defaults
// applied.
func (c *Circuit) solveDC(o *DCOptions) (*OperatingPoint, error) {
	c.indexBranches()
	n := c.NumUnknowns()
	x := make([]float64, n)
	if o.Warm != nil {
		if len(o.Warm.x) != n {
			return nil, fmt.Errorf("spice: warm start size %d does not match system size %d", len(o.Warm.x), n)
		}
		copy(x, o.Warm.x)
	} else {
		for name, v := range o.InitialGuess {
			idx, ok := c.nodeIndex[name]
			if !ok {
				return nil, fmt.Errorf("spice: initial guess for unknown node %q", name)
			}
			if idx >= 0 {
				x[idx] = v
			}
		}
	}

	totalIters := 0
	if st, err := c.newton(x, o, o.Gmin, 1.0); err == nil {
		return &OperatingPoint{circuit: c, x: x, strategy: StrategyNewton,
			iters: st.iters, residual: st.residual}, nil
	} else {
		totalIters += st.iters
	}

	// Gmin stepping: solve with a heavy shunt, then relax it.
	xg := linalg.CopyVec(x)
	ok := true
	for gmin := 1e-2; gmin >= o.Gmin; gmin /= 10 {
		st, err := c.newton(xg, o, gmin, 1.0)
		totalIters += st.iters
		if err != nil {
			ok = false
			break
		}
	}
	if ok {
		st, err := c.newton(xg, o, o.Gmin, 1.0)
		totalIters += st.iters
		if err == nil {
			return &OperatingPoint{circuit: c, x: xg, strategy: StrategyGmin,
				iters: totalIters, residual: st.residual}, nil
		}
	}

	// Source stepping: ramp all sources from 0 with an adaptive step, so
	// bifurcation-adjacent operating points (where a fixed ramp stalls)
	// are approached gradually.
	xs := make([]float64, n)
	frac, step := 0.0, 0.1
	residual := 0.0
	trial := make([]float64, n)
	for frac < 1.0 {
		next := math.Min(frac+step, 1.0)
		copy(trial, xs)
		st, err := c.newton(trial, o, o.Gmin, next)
		totalIters += st.iters
		if err != nil {
			step /= 2
			if step < 1e-4 {
				return nil, fmt.Errorf("%w (source stepping stalled at %.1f%%)", ErrNoConvergence, 100*frac)
			}
			continue
		}
		copy(xs, trial)
		frac = next
		residual = st.residual
		if step < 0.2 {
			step *= 1.5
		}
	}
	return &OperatingPoint{circuit: c, x: xs, strategy: StrategySource,
		iters: totalIters, residual: residual}, nil
}

// newtonStats reports one Newton attempt: the iterations consumed and
// the max-|KCL| residual at the last iterate (meaningful on success).
type newtonStats struct {
	iters    int
	residual float64
}

// newton runs damped Newton iteration in place on x with the given gmin
// shunt and source scale factor. It solves only the plan's free unknowns:
// nodes pinned by single-ended voltage sources are set once up front and
// their branch currents recovered after convergence, which shrinks the
// factored system from NumUnknowns to a handful of genuinely nonlinear
// voltages.
func (c *Circuit) newton(x []float64, o *DCOptions, gmin, srcScale float64) (newtonStats, error) {
	plan, ws := c.solverState()
	f, jFull, jRed := ws.f, ws.jFull, ws.jRed
	neg, dx := ws.neg, ws.dx

	// Temporarily scale sources for source stepping.
	//reprolint:ignore floateq srcScale is assigned from the stepping schedule, never computed; 1.0 is the exact "no scaling" sentinel
	if srcScale != 1.0 {
		orig := make([]float64, len(c.vsources))
		for i, v := range c.vsources {
			orig[i] = v.E
			v.E *= srcScale
		}
		defer func() {
			for i, v := range c.vsources {
				v.E = orig[i]
			}
		}()
	}

	// Pin eliminated nodes to their (possibly scaled) source values and
	// hold their branch currents at zero until recovery. Warm starts may
	// have seeded nonzero branch currents; they are not unknowns here.
	for _, pin := range plan.pins {
		x[pin.node] = pin.sign * pin.vs.E
		x[pin.vs.branch] = 0
	}

	for iter := 0; iter < o.MaxIter; iter++ {
		for i := range f {
			f[i] = 0
		}
		jFull.Zero()
		for _, d := range plan.active {
			d.Stamp(x, f, jFull)
		}
		// gmin shunts keep the Jacobian nonsingular with off devices.
		// Pinned rows never enter the factored system, so only free
		// nodes need them.
		for a := 0; a < plan.freeNodes; a++ {
			i := plan.free[a]
			f[i] += gmin * x[i]
			jFull.Add(i, i, gmin)
		}

		maxRes := 0.0
		for _, i := range plan.free {
			if a := math.Abs(f[i]); a > maxRes {
				maxRes = a
			}
		}

		// Gather the reduced system over the free unknowns.
		for a, ia := range plan.free {
			src := jFull.Row(ia)
			dst := jRed.Row(a)
			for b, ib := range plan.free {
				dst[b] = src[ib]
			}
			neg[a] = -f[ia]
		}
		if err := linalg.FactorInto(&ws.lu, jRed); err != nil {
			return newtonStats{iters: iter + 1}, fmt.Errorf("spice: singular Jacobian at iteration %d: %w", iter, err)
		}
		ws.lu.SolveInto(dx, neg)

		// Damp: limit the largest node-voltage step.
		maxDx := 0.0
		for a := 0; a < plan.freeNodes; a++ {
			if v := math.Abs(dx[a]); v > maxDx {
				maxDx = v
			}
		}
		scale := 1.0
		if maxDx > o.MaxStep {
			scale = o.MaxStep / maxDx
		}
		for a, ia := range plan.free {
			x[ia] += scale * dx[a]
		}
		if maxDx*scale < o.VTol && maxRes < o.ITol {
			if !o.NoBranchCurrents {
				c.recoverPinnedBranches(plan, ws, x)
			}
			return newtonStats{iters: iter + 1, residual: maxRes}, nil
		}
		for _, ia := range plan.free {
			if math.IsNaN(x[ia]) || math.IsInf(x[ia], 0) {
				return newtonStats{iters: iter + 1}, fmt.Errorf("spice: iterate diverged at iteration %d", iter)
			}
		}
	}
	return newtonStats{iters: o.MaxIter}, ErrNoConvergence
}

// Sweep solves the circuit repeatedly while stepping the named voltage
// source from start to stop in steps points (inclusive), warm-starting
// each solve from the previous solution. It calls fn with the source value
// and operating point after each successful solve; fn returning false
// stops the sweep early. The source value is restored afterwards.
func (c *Circuit) Sweep(sourceName string, start, stop float64, steps int, opts *DCOptions, fn func(v float64, op *OperatingPoint) bool) error {
	if steps < 2 {
		return errors.New("spice: sweep needs at least 2 points")
	}
	src, err := c.VSourceByName(sourceName)
	if err != nil {
		return err
	}
	orig := src.E
	defer func() { src.E = orig }()

	o := opts.defaults()
	// The span is closed via defer so every exit — error, completion, or
	// the callback stopping the sweep early — leaves the trace balanced.
	span := o.Telemetry.StartSpan("spice.sweep")
	defer span.End()

	var warm *OperatingPoint
	for i := 0; i < steps; i++ {
		v := start + (stop-start)*float64(i)/float64(steps-1)
		src.E = v
		local := o
		if warm != nil {
			local.Warm = warm
		}
		op, err := c.SolveDC(&local)
		if err != nil {
			return fmt.Errorf("spice: sweep %s=%.4f: %w", sourceName, v, err)
		}
		warm = op
		if !fn(v, op) {
			return nil
		}
	}
	return nil
}
