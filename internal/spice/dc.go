package spice

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrNoConvergence is returned when the operating-point solve exhausts
// Newton iterations, gmin stepping and source stepping.
var ErrNoConvergence = errors.New("spice: DC operating point did not converge")

// OperatingPoint is a solved DC solution.
type OperatingPoint struct {
	circuit *Circuit
	x       []float64
}

// Voltage returns the solved voltage of a named node (0 for ground);
// asking for an unknown node is a netlist bug and panics.
func (op *OperatingPoint) Voltage(node string) float64 {
	idx, ok := op.circuit.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", node))
	}
	return voltageAt(op.x, idx)
}

// Clone deep-copies the operating point (for use as a later initial guess).
func (op *OperatingPoint) Clone() *OperatingPoint {
	return &OperatingPoint{circuit: op.circuit, x: linalg.CopyVec(op.x)}
}

// DCOptions tunes the Newton solve. The zero value picks robust defaults.
type DCOptions struct {
	// MaxIter bounds Newton iterations per attempt (default 150).
	MaxIter int
	// VTol is the voltage-update convergence tolerance (default 1e-9 V).
	VTol float64
	// ITol is the KCL residual tolerance (default 1e-9 A; node currents
	// in the SRAM cell are µA-scale).
	ITol float64
	// MaxStep limits the per-iteration voltage update (default 0.4 V).
	MaxStep float64
	// Gmin is the shunt conductance from every node to ground
	// (default 1e-12 S).
	Gmin float64
	// InitialGuess seeds node voltages by name. Nodes not listed start at
	// 0 V. This is how callers select a bistable cell's state.
	InitialGuess map[string]float64
	// Warm, if non-nil, seeds the full unknown vector from a previous
	// solution of the same circuit (used by sweeps); it overrides
	// InitialGuess.
	Warm *OperatingPoint
}

func (o *DCOptions) defaults() DCOptions {
	d := DCOptions{MaxIter: 150, VTol: 1e-9, ITol: 1e-9, MaxStep: 0.4, Gmin: 1e-12}
	if o == nil {
		return d
	}
	out := *o
	if out.MaxIter <= 0 {
		out.MaxIter = d.MaxIter
	}
	if out.VTol <= 0 {
		out.VTol = d.VTol
	}
	if out.ITol <= 0 {
		out.ITol = d.ITol
	}
	if out.MaxStep <= 0 {
		out.MaxStep = d.MaxStep
	}
	if out.Gmin <= 0 {
		out.Gmin = d.Gmin
	}
	return out
}

// SolveDC computes the DC operating point. It first tries plain damped
// Newton from the initial guess; on failure it falls back to gmin stepping
// and then source stepping, mirroring production SPICE practice.
func (c *Circuit) SolveDC(opts *DCOptions) (*OperatingPoint, error) {
	o := opts.defaults()
	c.indexBranches()
	n := c.NumUnknowns()
	x := make([]float64, n)
	if o.Warm != nil {
		if len(o.Warm.x) != n {
			return nil, fmt.Errorf("spice: warm start size %d does not match system size %d", len(o.Warm.x), n)
		}
		copy(x, o.Warm.x)
	} else {
		for name, v := range o.InitialGuess {
			idx, ok := c.nodeIndex[name]
			if !ok {
				return nil, fmt.Errorf("spice: initial guess for unknown node %q", name)
			}
			if idx >= 0 {
				x[idx] = v
			}
		}
	}

	if err := c.newton(x, &o, o.Gmin, 1.0); err == nil {
		return &OperatingPoint{circuit: c, x: x}, nil
	}

	// Gmin stepping: solve with a heavy shunt, then relax it.
	xg := linalg.CopyVec(x)
	ok := true
	for gmin := 1e-2; gmin >= o.Gmin; gmin /= 10 {
		if err := c.newton(xg, &o, gmin, 1.0); err != nil {
			ok = false
			break
		}
	}
	if ok {
		if err := c.newton(xg, &o, o.Gmin, 1.0); err == nil {
			return &OperatingPoint{circuit: c, x: xg}, nil
		}
	}

	// Source stepping: ramp all sources from 0 with an adaptive step, so
	// bifurcation-adjacent operating points (where a fixed ramp stalls)
	// are approached gradually.
	xs := make([]float64, n)
	frac, step := 0.0, 0.1
	trial := make([]float64, n)
	for frac < 1.0 {
		next := math.Min(frac+step, 1.0)
		copy(trial, xs)
		if err := c.newton(trial, &o, o.Gmin, next); err != nil {
			step /= 2
			if step < 1e-4 {
				return nil, fmt.Errorf("%w (source stepping stalled at %.1f%%)", ErrNoConvergence, 100*frac)
			}
			continue
		}
		copy(xs, trial)
		frac = next
		if step < 0.2 {
			step *= 1.5
		}
	}
	return &OperatingPoint{circuit: c, x: xs}, nil
}

// newton runs damped Newton iteration in place on x with the given gmin
// shunt and source scale factor.
func (c *Circuit) newton(x []float64, o *DCOptions, gmin, srcScale float64) error {
	n := c.NumUnknowns()
	nn := c.NumNodes()
	f := make([]float64, n)
	j := linalg.NewMatrix(n, n)

	// Temporarily scale sources for source stepping.
	if srcScale != 1.0 {
		orig := make([]float64, len(c.vsources))
		for i, v := range c.vsources {
			orig[i] = v.E
			v.E *= srcScale
		}
		defer func() {
			for i, v := range c.vsources {
				v.E = orig[i]
			}
		}()
	}

	for iter := 0; iter < o.MaxIter; iter++ {
		for i := range f {
			f[i] = 0
		}
		j.Zero()
		for _, d := range c.devices {
			d.Stamp(x, f, j)
		}
		// gmin shunts keep the Jacobian nonsingular with off devices.
		for i := 0; i < nn; i++ {
			f[i] += gmin * x[i]
			j.Add(i, i, gmin)
		}

		maxRes := 0.0
		for _, v := range f {
			if a := math.Abs(v); a > maxRes {
				maxRes = a
			}
		}

		lu, err := linalg.FactorLU(j)
		if err != nil {
			return fmt.Errorf("spice: singular Jacobian at iteration %d: %w", iter, err)
		}
		neg := make([]float64, n)
		for i := range f {
			neg[i] = -f[i]
		}
		dx := lu.Solve(neg)

		// Damp: limit the largest node-voltage step.
		maxDx := 0.0
		for i := 0; i < nn; i++ {
			if a := math.Abs(dx[i]); a > maxDx {
				maxDx = a
			}
		}
		scale := 1.0
		if maxDx > o.MaxStep {
			scale = o.MaxStep / maxDx
		}
		for i := range x {
			x[i] += scale * dx[i]
		}
		if maxDx*scale < o.VTol && maxRes < o.ITol {
			return nil
		}
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return fmt.Errorf("spice: iterate diverged at iteration %d", iter)
			}
		}
	}
	return ErrNoConvergence
}

// Sweep solves the circuit repeatedly while stepping the named voltage
// source from start to stop in steps points (inclusive), warm-starting
// each solve from the previous solution. It calls fn with the source value
// and operating point after each successful solve; fn returning false
// stops the sweep early. The source value is restored afterwards.
func (c *Circuit) Sweep(sourceName string, start, stop float64, steps int, opts *DCOptions, fn func(v float64, op *OperatingPoint) bool) error {
	if steps < 2 {
		return errors.New("spice: sweep needs at least 2 points")
	}
	src, err := c.VSourceByName(sourceName)
	if err != nil {
		return err
	}
	orig := src.E
	defer func() { src.E = orig }()

	var warm *OperatingPoint
	for i := 0; i < steps; i++ {
		v := start + (stop-start)*float64(i)/float64(steps-1)
		src.E = v
		local := opts.defaults()
		if warm != nil {
			local.Warm = warm
		}
		op, err := c.SolveDC(&local)
		if err != nil {
			return fmt.Errorf("spice: sweep %s=%.4f: %w", sourceName, v, err)
		}
		warm = op
		if !fn(v, op) {
			return nil
		}
	}
	return nil
}
