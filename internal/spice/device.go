package spice

import "repro/internal/linalg"

// Device is anything that stamps residual currents and Jacobian
// conductances into the MNA system. The residual convention is
// f(node) = Σ currents *leaving* the node through devices; Newton solves
// f(x) = 0.
type Device interface {
	Name() string
	// Stamp adds the device's contribution at operating point x to the
	// residual f and Jacobian j.
	Stamp(x []float64, f []float64, j *linalg.Matrix)
}

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	name string
	p, m int
	g    float64 // conductance
}

// Name returns the device name.
func (r *Resistor) Name() string { return r.name }

// Stamp implements Device.
func (r *Resistor) Stamp(x []float64, f []float64, j *linalg.Matrix) {
	i := r.g * (voltageAt(x, r.p) - voltageAt(x, r.m))
	if r.p >= 0 {
		f[r.p] += i
		j.Add(r.p, r.p, r.g)
		if r.m >= 0 {
			j.Add(r.p, r.m, -r.g)
		}
	}
	if r.m >= 0 {
		f[r.m] -= i
		j.Add(r.m, r.m, r.g)
		if r.p >= 0 {
			j.Add(r.m, r.p, -r.g)
		}
	}
}

// VSource is an independent voltage source with an MNA branch current.
type VSource struct {
	name   string
	p, m   int
	branch int
	// E is the source value in volts; sweeps mutate it between solves.
	E float64
	// Waveform, when non-nil, makes the source time-varying during
	// transient analysis: E is set to Waveform(t) at every step. DC
	// analyses use E directly.
	Waveform func(t float64) float64
}

// StepWaveform returns a waveform that switches from v0 to v1 at tStep
// with a linear ramp of length tRise.
func StepWaveform(v0, v1, tStep, tRise float64) func(float64) float64 {
	return func(t float64) float64 {
		switch {
		case t <= tStep:
			return v0
		case t >= tStep+tRise:
			return v1
		default:
			return v0 + (v1-v0)*(t-tStep)/tRise
		}
	}
}

// PulseWaveform returns a waveform that pulses from v0 to v1 between
// tOn and tOff with symmetric linear ramps of length tRise.
func PulseWaveform(v0, v1, tOn, tOff, tRise float64) func(float64) float64 {
	up := StepWaveform(v0, v1, tOn, tRise)
	down := StepWaveform(0, v0-v1, tOff, tRise)
	return func(t float64) float64 { return up(t) + down(t) }
}

// Name returns the device name.
func (v *VSource) Name() string { return v.name }

// Stamp implements Device. The branch current x[branch] flows from the
// plus terminal through the source to the minus terminal.
func (v *VSource) Stamp(x []float64, f []float64, j *linalg.Matrix) {
	i := x[v.branch]
	if v.p >= 0 {
		f[v.p] += i
		j.Add(v.p, v.branch, 1)
	}
	if v.m >= 0 {
		f[v.m] -= i
		j.Add(v.m, v.branch, -1)
	}
	// Branch equation: V(p) − V(m) − E = 0.
	f[v.branch] += voltageAt(x, v.p) - voltageAt(x, v.m) - v.E
	if v.p >= 0 {
		j.Add(v.branch, v.p, 1)
	}
	if v.m >= 0 {
		j.Add(v.branch, v.m, -1)
	}
}

// Current returns the branch current at a solved operating point.
func (v *VSource) Current(op *OperatingPoint) float64 { return op.x[v.branch] }

// ISource is an independent current source pushing I from plus to minus
// through itself.
type ISource struct {
	name string
	p, m int
	I    float64
}

// Name returns the device name.
func (s *ISource) Name() string { return s.name }

// Stamp implements Device.
func (s *ISource) Stamp(x []float64, f []float64, j *linalg.Matrix) {
	if s.p >= 0 {
		f[s.p] += s.I
	}
	if s.m >= 0 {
		f[s.m] -= s.I
	}
}
