package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point (or complex) operands
// in non-test code, including float switch cases, which compile to the
// same comparison. Exact float equality is almost never what estimator
// code means: two mathematically equal quantities computed along
// different paths differ in their last bits, so such comparisons are
// either dead (never true) or, worse, true on some worker schedules and
// false on others. Compare against a tolerance, use math.Signbit, or
// compare bit patterns via math.Float64bits — or suppress with a reason
// when exact equality is genuinely intended (sentinel values, checking a
// value that was assigned rather than computed).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floating-point operands outside _test.go " +
		"files; use a tolerance, math.Signbit, or bit-pattern comparison",
	Run: runFloatEq,
}

func runFloatEq(p *Package, report Reporter) {
	walkFiles(p, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op != token.EQL && e.Op != token.NEQ {
				return true
			}
			if !floatOperand(p, e.X) && !floatOperand(p, e.Y) {
				return true
			}
			if isConstExpr(p, e.X) && isConstExpr(p, e.Y) {
				return true // compile-time constant comparison is exact
			}
			report(e.OpPos,
				"%s between floating-point operands; compare against a tolerance or use math.Signbit/math.Float64bits", e.Op)
		case *ast.SwitchStmt:
			if e.Tag == nil || !floatOperand(p, e.Tag) {
				return true
			}
			for _, stmt := range e.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok || len(cc.List) == 0 {
					continue
				}
				report(cc.Pos(),
					"switch case on floating-point tag compiles to ==; compare against a tolerance instead")
			}
		}
		return true
	})
}

func floatOperand(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Type != nil && isFloat(tv.Type)
}

func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
