package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseIgnoreComment holds the directive parser to its contract:
// never panic, and on success always produce at least one non-empty
// analyzer name and a non-empty reason — the property the mandatory-
// justification satellite depends on.
func FuzzParseIgnoreComment(f *testing.F) {
	f.Add(" floateq exact sentinel")
	f.Add(" floateq,maporder covered elsewhere")
	f.Add("")
	f.Add("   ")
	f.Add("\t\t")
	f.Add(" ,,, ")
	f.Add("floateq glued")
	f.Add(" floateq")
	f.Add(" \x00weird\xff bytes")
	f.Add(" a,b,c,d,e,f reason")
	f.Fuzz(func(t *testing.T, text string) {
		got, err := ParseIgnoreComment(text)
		if err != nil {
			return
		}
		if len(got.Analyzers) == 0 {
			t.Fatalf("ParseIgnoreComment(%q) succeeded with no analyzers", text)
		}
		for _, n := range got.Analyzers {
			if n == "" {
				t.Fatalf("ParseIgnoreComment(%q) returned an empty analyzer name", text)
			}
			if strings.ContainsAny(n, " \t") {
				t.Fatalf("ParseIgnoreComment(%q) returned name %q containing whitespace", text, n)
			}
		}
		if got.Reason == "" {
			t.Fatalf("ParseIgnoreComment(%q) succeeded without a reason", text)
		}
	})
}

// FuzzDirectiveText pairs the comment-shape scanner with the parser:
// arbitrary comment text must never panic, and anything not claimed as
// a directive must be left alone.
func FuzzDirectiveText(f *testing.F) {
	f.Add("//reprolint:ignore floateq why")
	f.Add("// reprolint:ignore floateq why")
	f.Add("//reprolint:ignorefloateq why")
	f.Add("/* block */")
	f.Add("//")
	f.Add("not a comment at all")
	f.Add("//\xf0\x28\x8c\x28 invalid utf8")
	f.Fuzz(func(t *testing.T, comment string) {
		rest, claimed := directiveText(comment)
		if !claimed {
			return
		}
		// Whatever was claimed must flow through the parser without
		// panicking, whichever way it resolves.
		_, _ = ParseIgnoreComment(rest)
	})
}

// FuzzFormatDiagnostic feeds adversarial analyzer names, paths,
// positions and messages through both output formats: no panics, and
// the JSON mode must stay machine-parseable whatever the content.
func FuzzFormatDiagnostic(f *testing.F) {
	f.Add("floateq", "a.go", 1, 1, "plain", "reason")
	f.Add("", "", 0, 0, "", "")
	f.Add("x", "weird\nfile\x00.go", -5, 1<<30, "message with \"quotes\" and \\ slashes", "r")
	f.Add("α", "путь.go", 7, -1, "ünïcode £ message", "ßecause")
	f.Fuzz(func(t *testing.T, analyzer, file string, line, col int, msg, reason string) {
		res := Result{
			Diags: []Diagnostic{{Analyzer: analyzer, File: file, Line: line, Col: col, Message: msg}},
			Suppressed: []Diagnostic{{
				Analyzer: analyzer, File: file, Line: line, Col: col, Message: msg,
				Suppressed: true, Reason: reason,
			}},
		}
		var text bytes.Buffer
		if err := WriteText(&text, res.Diags); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, res); err != nil {
			// json.Marshal only fails on invalid UTF-8 being coerced;
			// encoding/json replaces those, so any error is a bug —
			// unless the strings were not valid UTF-8 to begin with.
			if utf8.ValidString(analyzer) && utf8.ValidString(file) &&
				utf8.ValidString(msg) && utf8.ValidString(reason) {
				t.Fatalf("WriteJSON on valid UTF-8: %v", err)
			}
			return
		}
		var rep map[string]any
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatalf("WriteJSON emitted unparseable JSON: %v\n%s", err, buf.String())
		}
		if rep["schema"] != JSONSchema {
			t.Fatalf("schema tag lost: %v", rep["schema"])
		}
	})
}

// FuzzParseGuardedBy holds the annotation grammar to its contract:
// never panic, and any accepted guard name is a single clean token —
// no whitespace, no leftover punctuation that collectGuards would then
// fail to resolve against a real field name.
func FuzzParseGuardedBy(f *testing.F) {
	f.Add("guarded by mu")
	f.Add("jobs is guarded by mu.")
	f.Add("(guarded by rw)")
	f.Add("guarded by")
	f.Add("guarded  by\tmu")
	f.Add("guardedby mu")
	f.Add("guarded by ...")
	f.Add("guarded by mu, among other things; guarded by other")
	f.Add("\x00guarded by \xffmu")
	f.Fuzz(func(t *testing.T, text string) {
		name, ok := parseGuardedBy(text)
		if !ok {
			if name != "" {
				t.Fatalf("parseGuardedBy(%q) = %q, false — name must be empty on miss", text, name)
			}
			return
		}
		if name == "" {
			t.Fatalf("parseGuardedBy(%q) accepted an empty guard name", text)
		}
		if strings.ContainsAny(name, " \t\n") {
			t.Fatalf("parseGuardedBy(%q) returned name %q containing whitespace", text, name)
		}
	})
}

// FuzzDataflowAnalyzers feeds arbitrary (often ill-typed) Go source
// through the full dataflow suite. The type checker runs in tolerant
// mode, so the analyzers see exactly the partial types.Info they would
// get from broken code — and must not panic on it.
func FuzzDataflowAnalyzers(f *testing.F) {
	f.Add(`package mc
import "math/rand"
import "time"
func bad() { _ = rand.NewSource(time.Now().UnixNano()) }`)
	f.Add(`package mc
import "sync"
type s struct {
	mu sync.Mutex
	// n is guarded by mu
	n int
}
func (x *s) get() int { return x.n }`)
	f.Add(`package mc
func spawn() { go func() { for { } }() }`)
	f.Add(`package telemetry
type Registry struct{}
func (r *Registry) Emit(name string) {}
func use(r *Registry) { r.Emit("literal.event") }`)
	f.Add(`package mc
const u = "urn:repro:problem:late"`)
	f.Add(`package mc
func broken() { undeclared(, }`)
	f.Add("package mc\nvar x = guarded by mu")
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		// No importer and errors swallowed: imports fail to resolve and
		// ill-typed expressions leave holes in info — the adversarial
		// input surface for the analyzers.
		conf := types.Config{Error: func(error) {}}
		pkg, _ := conf.Check("repro/internal/mc", fset, []*ast.File{file}, info)
		p := &Package{
			ImportPath: "repro/internal/mc",
			Fset:       fset,
			Files:      []*ast.File{file},
			Pkg:        pkg,
			Info:       info,
		}
		Run([]*Package{p}, []*Analyzer{Seedflow, LockGuard, GoroutineLife, WireStable})
	})
}
