package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife enforces goroutine accountability: every go statement
// must carry a visible lifetime signal — a join (WaitGroup.Done, a
// channel send/close the spawner can wait on) or a cancellation path
// (a select, a channel receive, or any use of a context). A goroutine
// with neither outlives its spawner silently, which in the serving
// path means leaked renew loops and executors that survive drain.
//
// The check follows calls into module functions (two hops): `go
// m.sweep()` is accountable when sweep's body selects on the manager's
// done channel. External callees it cannot see into (go srv.Serve(ln))
// are flagged with their own message — wrap them in a literal that
// owns the shutdown path, or suppress with a reason.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: "every go statement must be joined (WaitGroup/channel) or " +
		"cancellable (select, channel receive, context use), directly " +
		"or inside a module callee up to two hops away",
	RunModule: runGoroutineLife,
}

// maxLifeHops bounds how far through module callees the signal search
// descends from the spawned body.
const maxLifeHops = 2

func runGoroutineLife(pkgs []*Package, report Reporter) {
	ix := buildIndex(pkgs)
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		pkg := p
		for _, fd := range enclosingFuncs(p) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pkg, ix, gs, report)
				return true
			})
		}
	}
}

func checkGoStmt(p *Package, ix *moduleIndex, gs *ast.GoStmt, report Reporter) {
	call := gs.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		seen := make(map[*types.Func]bool)
		if bodySignals(p, ix, lit.Body, 0, seen) {
			return
		}
		if loop := unconditionalLoop(lit.Body); loop != nil {
			report(gs.Pos(), "goroutine loops forever with no select, channel operation, or context use; it can never be joined or cancelled")
			return
		}
		report(gs.Pos(), "goroutine has no join or cancellation signal (no WaitGroup.Done, channel operation, select, or context use)")
		return
	}
	// go expr() with a named callee: a context argument makes it
	// cancellable; a module callee is searched for signals; anything
	// else is opaque.
	for _, arg := range call.Args {
		if tv, ok := p.Info.Types[arg]; ok && isContextType(tv.Type) {
			return
		}
	}
	callee := calleeFunc(p, call)
	if callee != nil {
		if info, ok := ix.funcs[callee]; ok && info.decl.Body != nil {
			seen := map[*types.Func]bool{callee: true}
			if bodySignals(info.pkg, ix, info.decl.Body, 1, seen) {
				return
			}
			report(gs.Pos(), "goroutine running %s has no join or cancellation signal (no WaitGroup.Done, channel operation, select, or context use in the callee)",
				callee.Name())
			return
		}
	}
	report(gs.Pos(), "goroutine calls %s, which this module cannot see into; wrap it in a func literal that owns its shutdown path",
		types.ExprString(call.Fun))
}

// bodySignals scans a function body for lifetime signals, descending
// into module callees up to maxLifeHops away. Nested function literals
// inside the body belong to further goroutines or callbacks and are
// not scanned — their signals do not bound this goroutine's life.
func bodySignals(p *Package, ix *moduleIndex, body *ast.BlockStmt, hops int, seen map[*types.Func]bool) bool {
	found := false
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
			if fn := calleeFunc(p, x); fn != nil {
				if fn.Name() == "Done" && recvIsWaitGroup(fn) {
					found = true
					return false
				}
				if _, inModule := ix.funcs[fn]; inModule && !seen[fn] {
					callees = append(callees, fn)
				}
			}
		case *ast.Ident:
			if obj, ok := p.Info.Uses[x].(*types.Var); ok && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	if found {
		return true
	}
	if hops >= maxLifeHops {
		return false
	}
	for _, fn := range callees {
		if seen[fn] {
			continue
		}
		seen[fn] = true
		info := ix.funcs[fn]
		if info.decl.Body == nil {
			continue
		}
		if bodySignals(info.pkg, ix, info.decl.Body, hops+1, seen) {
			return true
		}
	}
	return false
}

// recvIsWaitGroup reports whether fn is a method on sync.WaitGroup.
func recvIsWaitGroup(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// unconditionalLoop returns a `for {}` loop (no condition) found at
// any depth of the body, for the sharper "loops forever" message.
func unconditionalLoop(body *ast.BlockStmt) *ast.ForStmt {
	var loop *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if loop != nil {
			return false
		}
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			loop = f
			return false
		}
		return true
	})
	return loop
}
