package lint

import (
	"errors"
	"strings"
)

// ignorePrefix is the directive marker. Like go:build directives it must
// appear immediately after "//" with no space, so ordinary prose that
// happens to mention reprolint is never parsed as a directive.
const ignorePrefix = "reprolint:ignore"

// IgnoreComment is a parsed //reprolint:ignore directive: the analyzers
// it silences and the mandatory human-readable justification.
type IgnoreComment struct {
	Analyzers []string
	Reason    string
}

// AnalyzerList renders the analyzer names as they appeared, for
// diagnostics about the directive itself.
func (c IgnoreComment) AnalyzerList() string { return strings.Join(c.Analyzers, ",") }

// directiveText extracts the directive body from a raw comment.
// It returns ok=false for comments that are not ignore directives at
// all (including /* */ comments, which are never directives). A "//"
// comment whose text starts with the marker returns the remainder for
// strict parsing.
func directiveText(comment string) (string, bool) {
	rest, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	// A directive comment has no space between // and the marker.
	// "// reprolint:ignore" is also claimed (and then rejected as
	// malformed by ParseIgnoreComment's caller contract below) so that
	// a stray space cannot silently disable a suppression.
	trimmed := strings.TrimLeft(rest, " \t")
	if !strings.HasPrefix(trimmed, ignorePrefix) {
		return "", false
	}
	if trimmed != rest {
		// Marker present but indented: claim it as a directive so the
		// malformed-directive diagnostic fires instead of the
		// suppression silently not applying.
		return "", true
	}
	return strings.TrimPrefix(rest, ignorePrefix), true
}

// Errors returned by ParseIgnoreComment. They are distinct values so the
// fuzz target and tests can assert on the failure mode.
var (
	errDirectiveSpace     = errors.New(`marker must start the comment: write "//reprolint:ignore" with no space after //`)
	errDirectiveNoNames   = errors.New("missing analyzer name(s) after //reprolint:ignore")
	errDirectiveNoReason  = errors.New("missing justification: //reprolint:ignore <analyzer> <reason>")
	errDirectiveEmptyName = errors.New("empty analyzer name in comma-separated list")
)

// ParseIgnoreComment parses the text after the "reprolint:ignore"
// marker (as returned by directiveText): a comma-separated analyzer
// list, whitespace, then a free-form non-empty reason. It never panics,
// whatever the input — the fuzz target FuzzParseIgnoreComment holds it
// to that.
func ParseIgnoreComment(text string) (IgnoreComment, error) {
	if text == "" {
		// directiveText signalled an indented marker.
		return IgnoreComment{}, errDirectiveSpace
	}
	// The marker must be followed by whitespace, not glued to the
	// analyzer name ("//reprolint:ignorefloateq").
	if text[0] != ' ' && text[0] != '\t' {
		return IgnoreComment{}, errDirectiveNoNames
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return IgnoreComment{}, errDirectiveNoNames
	}
	names := strings.Split(fields[0], ",")
	for _, n := range names {
		if n == "" {
			return IgnoreComment{}, errDirectiveEmptyName
		}
	}
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimLeft(text, " \t"), fields[0]))
	if reason == "" {
		return IgnoreComment{}, errDirectiveNoReason
	}
	return IgnoreComment{Analyzers: names, Reason: reason}, nil
}
