// Package dist is the lockguard golden fixture: struct fields
// annotated "// guarded by <mu>" accessed with and without their
// mutexes held, plus the PR 9 leaseCtx capture-reassign race.
package dist

import (
	"context"
	"sync"
)

// tracker mirrors the coordinator shape: a plain mutex over the lease
// tables and a reader/writer mutex over the stats.
type tracker struct {
	mu    sync.Mutex
	jobs  map[string]int // guarded by mu
	order []string       // guarded by mu

	rw    sync.RWMutex
	stats map[string]int // guarded by rw

	phantom int // guarded by missing // want lockguard `annotated "guarded by missing", but the struct has no sync\.Mutex or sync\.RWMutex field named missing`
}

type ctxKey struct{}

func renew(ctx context.Context) { <-ctx.Done() }

// readNoLock reads a guarded map with no lock at all.
func (t *tracker) readNoLock() int {
	return len(t.jobs) // want lockguard `t\.jobs is read without holding t\.mu`
}

// writeNoLock mutates a guarded map with no lock at all.
func (t *tracker) writeNoLock(id string) {
	t.jobs[id] = 1 // want lockguard `t\.jobs is written without holding t\.mu`
}

// writeUnderRLock holds only the read half of an RWMutex for a write.
func (t *tracker) writeUnderRLock(k string) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.stats[k]++ // want lockguard `t\.stats is written while holding only t\.rw\.RLock`
}

// renewLease reproduces the PR 9 worker bug: the renewal goroutine
// captures leaseCtx, and the spawning function then reassigns it for
// the next phase — a data race on the variable itself.
func (t *tracker) renewLease(ctx context.Context) {
	leaseCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		renew(leaseCtx)
	}()
	leaseCtx = context.WithValue(ctx, ctxKey{}, "next") // want lockguard `leaseCtx is reassigned after being captured by the goroutine started on line \d+`
	_ = leaseCtx
	cancel()
	<-done
}

// locked is the sanctioned shape: every access under the mutex, the
// unlock deferred.
func (t *tracker) locked(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jobs[id] = 2
	t.order = append(t.order, id)
}

// branches exercises branch-aware state: the early-return arm unlocks
// and leaves; the fallthrough arm still holds the lock.
func (t *tracker) branches(id string) int {
	t.mu.Lock()
	if id == "" {
		t.mu.Unlock()
		return 0
	}
	n := t.jobs[id]
	t.mu.Unlock()
	return n
}

// appendLocked asserts by suffix convention that the caller holds t.mu.
func (t *tracker) appendLocked(id string) {
	t.order = append(t.order, id)
}

// newTracker writes guarded fields of a freshly constructed, not yet
// shared object.
func newTracker() *tracker {
	t := &tracker{jobs: make(map[string]int)}
	t.jobs["boot"] = 1
	return t
}

// stat holds the read half for a read — enough.
func (t *tracker) stat(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.stats[k]
}
