// Package model is the seedflow golden fixture: RNG constructors whose
// seed arguments derive — through locals, helpers, struct fields and
// cross-function calls — from nondeterministic roots, next to the
// sanctioned index-seeded shapes that must stay clean.
package model

import (
	"math/rand"
	"os"
	"time"
)

// lastSeed is package-level mutable state: reading it for a seed makes
// the stream depend on call order.
var lastSeed int64

type opts struct {
	Seed int64
}

// clockSeed launders the wall clock through a local variable — the
// shape globalrand's syntactic check cannot see.
func clockSeed() *rand.Rand {
	seed := time.Now().UnixNano()
	return rand.New(rand.NewSource(seed)) // want seedflow `rand\.NewSource is seeded from the wall clock \(time\.Now\)`
}

// pidSeed launders process identity through a helper's return value.
func pidSeed() rand.Source {
	return rand.NewSource(noise()) // want seedflow `rand\.NewSource is seeded from process identity \(os\.Getpid\)`
}

func noise() int64 { return int64(os.Getpid()) }

// globalSeed reads mutable package state.
func globalSeed() rand.Source {
	return rand.NewSource(lastSeed) // want seedflow `rand\.NewSource is seeded from package-level mutable state \(lastSeed\)`
}

// build's seed parameter is tainted by its caller below; the finding is
// reported here, at the constructor, citing the call site.
func build(seed int64) rand.Source {
	return rand.NewSource(seed) // want seedflow `rand\.NewSource is seeded from the wall clock \(time\.Now\).*tainted via the call at`
}

func misuse() rand.Source {
	return build(time.Now().UnixNano())
}

// chunkSource is the sanctioned scheme: every stream derives from the
// run seed and the chunk index. mix's parameters trace back through
// chunkSource's module callers — all clean.
func chunkSource(o opts, i int) rand.Source {
	return rand.NewSource(mix(o.Seed, int64(i)))
}

func mix(seed, i int64) int64 {
	z := seed + i*0x5851f42d4c957f2d
	z ^= z >> 30
	return z
}

// fromOptions exercises the field-sensitive composite-literal trace:
// o.Seed carries only what the literal put into Seed.
func fromOptions(base int64) rand.Source {
	o := opts{Seed: base + 17}
	return rand.NewSource(o.Seed)
}
