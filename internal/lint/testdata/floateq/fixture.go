// Package fixture exercises the floateq analyzer (applies to every
// non-test package; loaded under "repro/internal/sram").
package fixture

import "math"

func badEq(a, b float64) bool {
	return a == b // want floateq `== between floating-point operands`
}

func badNeq(a float64) bool {
	return a != 0 // want floateq `!= between floating-point operands`
}

func badFloat32(a, b float32) bool {
	return a == b // want floateq `== between floating-point operands`
}

func badComplex(a, b complex128) bool {
	return a == b // want floateq `== between floating-point operands`
}

// want[+3] floateq `switch case on floating-point tag`
func badSwitch(x float64) int {
	switch x {
	case 0:
		return 0
	default:
		return 1
	}
}

// Tolerance comparison is the sanctioned pattern.
func goodTolerance(a, b float64) bool {
	return math.Abs(a-b) < 1e-12
}

// Bit-pattern comparison is exact by construction.
func goodBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Signed-zero discrimination has a dedicated primitive.
func goodSignbit(a float64) bool {
	return math.Signbit(a)
}

// Integer equality is exact; not the analyzer's business.
func goodInt(a, b int) bool {
	return a == b
}

// Compile-time constant comparisons are folded exactly.
func goodConst() bool {
	const eps = 1e-9
	return eps == 1e-9
}

// Ordering comparisons are fine; only ==/!= lose to rounding.
func goodOrdering(a, b float64) bool {
	return a < b || a > b
}

// A switch without a float tag is untouched.
func goodSwitch(n int) int {
	switch n {
	case 0:
		return 1
	}
	return 0
}
