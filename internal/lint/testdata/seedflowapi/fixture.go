// Package surrogate is the provider half of the cross-package seedflow
// fixture: the RNG constructor lives here, behind an exported API; the
// tainted caller lives in testdata/seedflowcaller. The finding must be
// reported at this constructor, citing the foreign call site.
package surrogate

import "math/rand"

// NewSampler builds a per-chunk generator from the caller's seed.
func NewSampler(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
