// Package distcall is the consumer half of the cross-package seedflow
// fixture: it feeds a wall-clock seed into the surrogate package's
// constructor. The diagnostic lands in seedflowapi, not here.
package distcall

import (
	"time"

	"repro/internal/surrogate"
)

// Boot seeds the sampler from the clock — across a package boundary.
func Boot() any {
	return surrogate.NewSampler(time.Now().UnixNano())
}
