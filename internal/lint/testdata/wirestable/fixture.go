// Package telemetry is the wirestable golden fixture. Registry and Bus
// mirror the real telemetry API surface — the analyzer matches
// Emit/Scope/Publish by receiver type name inside a package named
// telemetry, so the fixture needs no imports of the real module.
package telemetry

type Registry struct{}

func (r *Registry) Emit(event string, fields map[string]any) {}
func (r *Registry) Scope(name string) *Scope                 { return nil }

type Scope struct{}

type Bus struct{}

func (b *Bus) Publish(event string, fields map[string]any) {}

// localName lives outside the registry file: using it as a wire name
// defeats the one-registry guarantee.
const localName = "local.event"

func emits(r *Registry, b *Bus, kind string) {
	r.Emit("progress", nil)    // want wirestable `event name "progress" is a string literal`
	r.Emit(localName, nil)     // want wirestable `event name comes from constant localName declared in fixture\.go`
	b.Publish("job.done", nil) // want wirestable `event name "job\.done" is a string literal`
	_ = r.Scope("mc")          // want wirestable `scope name "mc" is a string literal`

	// Sanctioned shapes: registry constants, prefix composition,
	// parameter forwarding.
	r.Emit(EvProgress, nil)
	r.Emit(EvHealthPrefix+kind, nil)
	forward(r, kind)
	_ = r.Scope(ScopeMC)
}

// forward re-emits a name someone upstream already validated.
func forward(r *Registry, event string) {
	r.Emit(event, nil)
}

// problem composes a URN from a raw literal instead of the registry.
func problem() string {
	return "urn:repro:problem:queue-full" // want wirestable `problem URN literal "urn:repro:problem:queue-full" must be composed from constants`
}

// problemOK composes from the registry prefix.
func problemOK() string {
	return ProblemPrefix + "not-found"
}
