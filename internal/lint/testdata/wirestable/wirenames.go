package telemetry

// The fixture's wire-name registry: constants declared in this file —
// matched by basename, exactly like internal/wire/wirenames.go — are
// the sanctioned spellings.
const (
	EvProgress     = "progress"
	EvHealthPrefix = "health."
	ScopeMC        = "mc"
	ProblemPrefix  = "urn:repro:problem:"
)
