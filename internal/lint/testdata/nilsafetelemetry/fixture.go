// Package telemetry exercises the nilsafetelemetry analyzer, which
// applies to any package named "telemetry" (it is loaded under the
// synthetic import path "repro/internal/telemetry").
package telemetry

// Meter mimics a nil-safe metric handle: a nil *Meter must no-op.
type Meter struct {
	n int64
	v float64
}

// Add carries the canonical guard.
func (m *Meter) Add(x float64) {
	if m == nil {
		return
	}
	m.n++
	m.v += x
}

// Enabled's whole body is the nil comparison: accepted single-return form.
func (m *Meter) Enabled() bool { return m != nil }

// ReversedGuard spells the comparison nil-first; still a guard.
func (m *Meter) ReversedGuard() int64 {
	if nil == m {
		return 0
	}
	return m.n
}

// GuardWithOr may fold further disabled conditions into the same branch.
func (m *Meter) GuardWithOr(limit int64) int64 {
	if m == nil || limit <= 0 {
		return 0
	}
	return m.n
}

// want[+1] nilsafetelemetry `exported method Count on pointer receiver \*Meter`
func (m *Meter) Count() int64 {
	return m.n
}

// want[+1] nilsafetelemetry `exported method LateGuard on pointer receiver \*Meter`
func (m *Meter) LateGuard() float64 {
	total := 0.0
	if m == nil {
		return total
	}
	return m.v
}

// unexported methods are internal plumbing; callers have already passed
// a guard on the exported surface.
func (m *Meter) reset() {
	m.n = 0
	m.v = 0
}

// Value receivers cannot be reached through a nil pointer dereference
// of the handle itself.
func (m Meter) Snapshot() float64 { return m.v }

// A blank receiver cannot be dereferenced.
func (_ *Meter) Hint() string { return "meter" }
