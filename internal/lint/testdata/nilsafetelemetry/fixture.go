// Package telemetry exercises the nilsafetelemetry analyzer, which
// applies to any package named "telemetry" (it is loaded under the
// synthetic import path "repro/internal/telemetry").
package telemetry

// Meter mimics a nil-safe metric handle: a nil *Meter must no-op.
type Meter struct {
	n int64
	v float64
}

// Add carries the canonical guard.
func (m *Meter) Add(x float64) {
	if m == nil {
		return
	}
	m.n++
	m.v += x
}

// Enabled's whole body is the nil comparison: accepted single-return form.
func (m *Meter) Enabled() bool { return m != nil }

// ReversedGuard spells the comparison nil-first; still a guard.
func (m *Meter) ReversedGuard() int64 {
	if nil == m {
		return 0
	}
	return m.n
}

// GuardWithOr may fold further disabled conditions into the same branch.
func (m *Meter) GuardWithOr(limit int64) int64 {
	if m == nil || limit <= 0 {
		return 0
	}
	return m.n
}

// want[+1] nilsafetelemetry `exported method Count on pointer receiver \*Meter`
func (m *Meter) Count() int64 {
	return m.n
}

// want[+1] nilsafetelemetry `exported method LateGuard on pointer receiver \*Meter`
func (m *Meter) LateGuard() float64 {
	total := 0.0
	if m == nil {
		return total
	}
	return m.v
}

// unexported methods are internal plumbing; callers have already passed
// a guard on the exported surface.
func (m *Meter) reset() {
	m.n = 0
	m.v = 0
}

// Value receivers cannot be reached through a nil pointer dereference
// of the handle itself.
func (m Meter) Snapshot() float64 { return m.v }

// A blank receiver cannot be dereferenced.
func (_ *Meter) Hint() string { return "meter" }

// Feed mimics the event-bus shape: a pub/sub handle whose exported
// surface (publish, subscribe, drain) must all be reachable through a
// nil pointer without panicking — a subscriber on a disabled plane gets
// a closed stream, not a crash.
type Feed struct {
	events []string
	closed bool
}

// Post carries the canonical guard before touching the slice.
func (f *Feed) Post(event string) {
	if f == nil {
		return
	}
	f.events = append(f.events, event)
}

// Listen guards even though it could "just return a value": the closed
// check dereferences the receiver.
func (f *Feed) Listen(from int) []string {
	if f == nil || from < 0 {
		return nil
	}
	if f.closed {
		return nil
	}
	return f.events[from:]
}

// want[+2] nilsafetelemetry `exported method Drain on pointer receiver \*Feed`
// Drain validates its argument before the receiver — the guard is late.
func (f *Feed) Drain(limit int) []string {
	if limit <= 0 {
		return nil
	}
	if f == nil {
		return nil
	}
	return f.events[:min(limit, len(f.events))]
}

// want[+1] nilsafetelemetry `exported method Shutdown on pointer receiver \*Feed`
func (f *Feed) Shutdown() {
	f.closed = true
}
