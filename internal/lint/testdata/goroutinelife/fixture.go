// Package serve is the goroutinelife golden fixture: spawned
// goroutines with no join or cancellation path, next to the accounted
// shapes (WaitGroup, channel close, context, module callee signals).
package serve

import (
	"context"
	"sync"
)

type runner interface{ Run() }

func step() {}

func churn() { step() }

// spawnForever leaks the sharpest way: an unconditional loop with no
// exit signal.
func spawnForever() {
	go func() { // want goroutinelife `goroutine loops forever with no select, channel operation, or context use`
		for {
			step()
		}
	}()
}

// spawnFireAndForget does bounded work, but nothing can wait for it.
func spawnFireAndForget(items []int) {
	go func() { // want goroutinelife `goroutine has no join or cancellation signal`
		for range items {
			step()
		}
	}()
}

// spawnOpaque hands the goroutine to a callee the module cannot see
// into.
func spawnOpaque(r runner) {
	go r.Run() // want goroutinelife `goroutine calls r\.Run, which this module cannot see into`
}

// spawnNamedLeak spawns a module function that has no signal either.
func spawnNamedLeak() {
	go churn() // want goroutinelife `goroutine running churn has no join or cancellation signal`
}

// spawnJoined is the WaitGroup shape.
func spawnJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
	wg.Wait()
}

// spawnCtx selects on the context.
func spawnCtx(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

// spawnChannel closes a done channel the spawner receives on.
func spawnChannel() {
	done := make(chan struct{})
	go func() {
		step()
		close(done)
	}()
	<-done
}

// spawnCtxArg passes a context to the callee: cancellable by contract.
func spawnCtxArg(ctx context.Context) {
	go hop1(ctx)
}

func hop1(ctx context.Context) { hop2(ctx) }
func hop2(ctx context.Context) { <-ctx.Done() }

// spawnPump's callee ranges over a channel — the signal is one module
// hop away from the go statement.
func spawnPump() {
	go pump(make(chan int))
}

func pump(ch chan int) {
	for range ch {
		step()
	}
}
