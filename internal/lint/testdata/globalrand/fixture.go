// Package fixture exercises the globalrand analyzer. It is loaded under
// the synthetic import path "repro/internal/mc" so the path-scoped
// analyzer fires exactly as it would on the real estimator packages.
package fixture

import (
	"math/rand"
	"time"
)

// Top-level draws consume the shared global source in scheduler order.
func badGlobalDraw() float64 {
	return rand.Float64() // want globalrand `top-level rand\.Float64`
}

func badGlobalInt(n int) int {
	return rand.Intn(n) // want globalrand `top-level rand\.Intn`
}

// Wall-clock seeding is unreproducible even through a local generator.
func badClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want globalrand `wall clock`
}

// Passing a global draw function as a callback is the same bug.
func badFuncRef() func() float64 {
	return rand.NormFloat64 // want globalrand `reference to top-level rand\.NormFloat64`
}

// The sanctioned pattern: explicitly seeded local generators.
func goodSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodLocalDraw(rng *rand.Rand) float64 {
	return rng.Float64() // method on a seeded generator: fine
}

// Type references must not be flagged.
func goodTypeUse(rng *rand.Rand, src rand.Source) (*rand.Rand, rand.Source) {
	return rng, src
}
