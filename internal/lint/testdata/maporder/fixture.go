// Package fixture exercises the maporder analyzer. It is loaded under
// the synthetic import path "repro/internal/gibbs" (estimator scope).
package fixture

import "sort"

// Accumulating floats across randomised map order changes the bits.
func badFloatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want maporder `float \+= into "total"`
	}
	return total
}

// Self-referencing float updates are the same accumulation in disguise.
func badSelfAssign(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want maporder `float update of "total"`
	}
	return total
}

// Work items appended in map order run in map order downstream.
func badWorkAppend(m map[int][]float64, lo float64) [][]float64 {
	var work [][]float64
	for _, block := range m {
		if block[0] > lo {
			work = append(work, block) // want maporder `append to "work"`
		}
	}
	return work
}

// Accumulating into entries keyed by something other than the range key
// can collapse keys, so order matters.
func badRekeyedAccum(m map[int]float64, bucket func(int) int) map[int]float64 {
	out := make(map[int]float64)
	for k, v := range m {
		out[bucket(k)] *= v // want maporder `float \*= into "out"`
	}
	return out
}

// The sanctioned remedy: collect the keys, sort, range the slice.
func goodSortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort: not flagged
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Integer accumulation is exactly associative: order cannot matter.
func goodIntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Per-iteration locals reset each pass; nothing accumulates.
func goodLocalFloat(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		scaled := 0.0
		scaled += v * 2
		out[k] = scaled
	}
}

// Writing the entry for the range key touches each key exactly once.
func goodKeyedWrite(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v * v
	}
}
