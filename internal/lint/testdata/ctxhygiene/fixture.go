// Package fixture exercises the ctxhygiene analyzer. It is loaded under
// the synthetic import path "repro/internal/jobs", which is both inside
// internal/ (fresh-context check) and in the solver-loop package set
// (unconsulted-ctx check).
package fixture

import "context"

// Minting a fresh context inside a ctx-receiving function detaches the
// work from the caller's cancellation.
func badFreshContext(ctx context.Context) context.Context {
	return context.Background() // want ctxhygiene `context\.Background\(\) inside badFreshContext`
}

func badFreshTODO(ctx context.Context, f func(context.Context)) {
	f(context.TODO()) // want ctxhygiene `context\.TODO\(\) inside badFreshTODO`
}

// Closures inherit the enclosing ctx, so the rule applies inside them.
func badFreshInClosure(ctx context.Context) func() context.Context {
	return func() context.Context {
		return context.Background() // want ctxhygiene `context\.Background\(\) inside badFreshInClosure`
	}
}

// want[+1] ctxhygiene `exported BadLoop accepts a ctx and loops but never consults it`
func BadLoop(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Consulting ctx.Err in the loop is the sanctioned pattern.
func GoodLoop(ctx context.Context, xs []float64) (float64, error) {
	s := 0.0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return s, err
		}
		s += x
	}
	return s, nil
}

// Passing ctx to the dispatched work also counts as consulting it.
func GoodDelegating(ctx context.Context, n int, run func(context.Context) error) error {
	for i := 0; i < n; i++ {
		if err := run(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Unexported looping functions are the callee side of the contract; the
// exported entry point is responsible for cancellation.
func unexportedLoop(ctx context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// No loop: accepting-but-ignoring ctx is a smell, not a gated invariant.
func Instant(ctx context.Context, x float64) float64 {
	return x * 2
}

// A function without a ctx of its own may mint the root context.
func GoodRootContext() context.Context {
	return context.Background()
}
