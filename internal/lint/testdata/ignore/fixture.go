// Package fixture exercises the //reprolint:ignore directive machinery:
// trailing and line-above suppression, mandatory reasons, unknown
// analyzer names, and stale-directive detection. It is analyzed with
// floateq only.
package fixture

// A trailing directive with a reason suppresses the finding on its line.
func suppressedTrailing(a, b float64) bool {
	return a == b //reprolint:ignore floateq fixture: exact comparison is intended here
}

// A directive on the line above covers the next line.
func suppressedAbove(a, b float64) bool {
	//reprolint:ignore floateq fixture: exact comparison is intended here
	return a == b
}

// A comma-separated analyzer list may suppress several analyzers, and
// each name must earn its keep individually: maporder is not run in
// this fixture, so its entry is reported stale even though floateq
// keeps the directive alive.
func suppressedList(a, b float64) bool {
	// want[+1] reprolint `ignore directive names "maporder" but suppresses no maporder finding`
	//reprolint:ignore floateq,maporder fixture: list form covers this line for both analyzers
	return a == b
}

// A directive without a justification is itself a finding, and the
// original diagnostic stays live.
func missingReason(a, b float64) bool {
	// want[+2] reprolint `malformed ignore directive: missing justification`
	// want[+1] floateq `== between floating-point operands`
	return a == b //reprolint:ignore floateq
}

// Unknown analyzer names are reported (typos must not silently disable
// a suppression), and nothing is suppressed.
func unknownAnalyzer(a, b float64) bool {
	// want[+2] reprolint `unknown analyzer "floateqq"`
	// want[+1] floateq `== between floating-point operands`
	return a == b //reprolint:ignore floateqq fixture: typo in the analyzer name
}

// A space between // and the marker is claimed and rejected, so a
// mistyped directive cannot silently stop suppressing.
func indentedMarker(a, b float64) bool {
	// want[+2] reprolint `malformed ignore directive: marker must start the comment`
	// want[+1] floateq `== between floating-point operands`
	return a == b // reprolint:ignore floateq fixture: the leading space disarms this
}

// A directive that matches no finding is stale and must be deleted.
// want[+2] reprolint `ignore directive for "floateq" suppresses nothing`
//
//reprolint:ignore floateq fixture: there is no finding on the next line
func stale(a, b int) bool {
	return a == b
}
