// Package lint is reprolint: a project-specific static-analysis suite,
// built on the standard library's go/parser, go/ast and go/types (with
// go/importer supplying stdlib type information from source), that
// mechanically enforces the repository's determinism, cancellation and
// nil-safety invariants. The paper's two-stage Gibbs flow is an
// importance-sampling estimator whose audit trail depends on
// reproducible sample streams; the analyzers turn the conventions that
// protect that reproducibility — index-seeded RNG streams, order-stable
// accumulation, ctx threading, nil-safe telemetry, tolerance-based float
// comparison — into CI-gated diagnostics.
//
// The suite has two analyzer shapes. AST-local analyzers (globalrand,
// maporder, ctxhygiene, nilsafetelemetry, floateq, wirestable) inspect
// one package at a time. Dataflow analyzers (seedflow, lockguard,
// goroutinelife) run once over the whole loaded package set: they build
// a module-wide function/call index and chase values across function
// and package boundaries — seed provenance through helper calls,
// lock-guarded field discipline, goroutine lifetime.
//
// Findings can be suppressed one line at a time with
//
//	//reprolint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either trailing the offending line or on the line directly above it.
// The reason is mandatory, and directives that suppress nothing are
// themselves reported, so stale suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding: an analyzer name, a position, and a
// message. Suppressed findings are retained (with the directive's
// reason) so callers can audit what the ignore comments are hiding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`

	// Suppressed and Reason are set when an ignore directive matched.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Reporter records one finding at a position. Analyzers call it for
// every violation they see; suppression is applied afterwards by Run.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one invariant check. Applies (optional) gates the
// analyzer to the packages whose invariant it protects; Run walks one
// package and reports findings. Dataflow analyzers set RunModule
// instead: they receive the whole package set in one call (all loaded
// through a single Loader, so positions share one FileSet) and may
// follow calls across package boundaries. When RunModule is set, Run
// and Applies are ignored.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the analyzer runs on this package. Nil
	// means "every package".
	Applies func(p *Package) bool
	Run     func(p *Package, report Reporter)
	// RunModule, when non-nil, marks a module-level dataflow analyzer.
	RunModule func(pkgs []*Package, report Reporter)
}

// DirectiveAnalyzer is the pseudo-analyzer name under which reprolint
// reports problems with ignore directives themselves (malformed text,
// unknown analyzer names, suppressions that match nothing).
const DirectiveAnalyzer = "reprolint"

// Analyzers returns the full registry, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		GlobalRand,
		MapOrder,
		CtxHygiene,
		NilSafeTelemetry,
		FloatEq,
		Seedflow,
		LockGuard,
		GoroutineLife,
		WireStable,
	}
}

// AnalyzerNames returns the registered analyzer names, plus the
// directive pseudo-analyzer, for directive validation.
func AnalyzerNames() map[string]bool {
	names := map[string]bool{DirectiveAnalyzer: true}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Result is the outcome of running analyzers over a set of packages.
type Result struct {
	// Diags are the unsuppressed findings, sorted by file, line,
	// column, then analyzer. A non-empty slice means the gate fails.
	Diags []Diagnostic
	// Suppressed are findings matched by an ignore directive.
	Suppressed []Diagnostic
}

// Run executes the analyzers over the packages and applies ignore
// directives. Per-package analyzers run on each package they apply to;
// module-level dataflow analyzers run once over the whole set. All
// directives are collected up front and matched against the combined
// finding stream by file position, so a module analyzer's diagnostics
// are suppressible exactly like a local analyzer's.
//
// Directive hygiene problems (malformed directives, unused
// suppressions, analyzer names in a directive's list that suppress
// nothing) are reported as findings of the "reprolint" pseudo-analyzer
// and cannot themselves be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var res Result
	known := AnalyzerNames()
	var raw []Diagnostic
	diagAt := func(name string) Reporter {
		var fset *token.FileSet
		if len(pkgs) > 0 {
			// Every Loader shares one FileSet across the packages it
			// loads, so any package's Fset resolves any position.
			fset = pkgs[0].Fset
		}
		return func(pos token.Pos, format string, args ...any) {
			position := fset.Position(pos)
			raw = append(raw, Diagnostic{
				Analyzer: name,
				File:     position.Filename,
				Line:     position.Line,
				Col:      position.Column,
				Message:  fmt.Sprintf(format, args...),
			})
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(pkgs, diagAt(a.Name))
			continue
		}
		for _, p := range pkgs {
			if a.Applies != nil && !a.Applies(p) {
				continue
			}
			a.Run(p, diagAt(a.Name))
		}
	}

	var directives []*directive
	for _, p := range pkgs {
		dirs, dirDiags := collectDirectives(p, known)
		directives = append(directives, dirs...)
		raw = append(raw, dirDiags...)
	}

	for i := range raw {
		d := &raw[i]
		if d.Analyzer == DirectiveAnalyzer {
			// Directive hygiene findings are never suppressible.
			res.Diags = append(res.Diags, *d)
			continue
		}
		if dir := match(directives, d); dir != nil {
			dir.used[d.Analyzer] = true
			d.Suppressed = true
			d.Reason = dir.Reason
			res.Suppressed = append(res.Suppressed, *d)
		} else {
			res.Diags = append(res.Diags, *d)
		}
	}
	for _, dir := range directives {
		switch {
		case len(dir.used) == 0:
			res.Diags = append(res.Diags, Diagnostic{
				Analyzer: DirectiveAnalyzer,
				File:     dir.File,
				Line:     dir.Line,
				Col:      dir.Col,
				Message: fmt.Sprintf("ignore directive for %q suppresses nothing; delete it",
					dir.AnalyzerList()),
			})
		case len(dir.used) < len(dir.Analyzers):
			// The directive earns its keep, but part of its analyzer
			// list is stale: report each name that suppressed nothing.
			for _, name := range dir.Analyzers {
				if !dir.used[name] {
					res.Diags = append(res.Diags, Diagnostic{
						Analyzer: DirectiveAnalyzer,
						File:     dir.File,
						Line:     dir.Line,
						Col:      dir.Col,
						Message: fmt.Sprintf("ignore directive names %q but suppresses no %[1]s finding; drop it from the list",
							name),
					})
				}
			}
		}
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

// match returns the first directive that covers the diagnostic: same
// file, naming the diagnostic's analyzer, on the same line as the
// finding or on the line directly above it.
func match(dirs []*directive, d *Diagnostic) *directive {
	for _, dir := range dirs {
		if dir.File != d.File {
			continue
		}
		if dir.Line != d.Line && dir.Line != d.Line-1 {
			continue
		}
		for _, name := range dir.Analyzers {
			if name == d.Analyzer {
				return dir
			}
		}
	}
	return nil
}

// collectDirectives parses every ignore directive in the package's
// files, returning them plus diagnostics for malformed ones.
func collectDirectives(p *Package, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				parsed, err := ParseIgnoreComment(text)
				if err != nil {
					diags = append(diags, Diagnostic{
						Analyzer: DirectiveAnalyzer,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  fmt.Sprintf("malformed ignore directive: %v", err),
					})
					continue
				}
				anyKnown := false
				for _, name := range parsed.Analyzers {
					if known[name] {
						anyKnown = true
						continue
					}
					diags = append(diags, Diagnostic{
						Analyzer: DirectiveAnalyzer,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  fmt.Sprintf("ignore directive names unknown analyzer %q", name),
					})
				}
				if !anyKnown {
					// Already reported as unknown; registering it would
					// only add a redundant "suppresses nothing" finding.
					continue
				}
				dirs = append(dirs, &directive{
					IgnoreComment: parsed,
					File:          pos.Filename,
					Line:          pos.Line,
					Col:           pos.Column,
					used:          make(map[string]bool),
				})
			}
		}
	}
	return dirs, diags
}

// directive is a parsed ignore comment anchored at a position. used
// tracks, per analyzer name in the directive's list, whether at least
// one finding was suppressed under that name — so a stale name in a
// multi-analyzer directive is detected even when a sibling name still
// earns the directive its keep.
type directive struct {
	IgnoreComment
	File string
	Line int
	Col  int
	used map[string]bool
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// walkFiles applies fn to every node of every file in the package.
func walkFiles(p *Package, fn func(n ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
