package lint

import (
	"strings"
	"testing"
)

func TestParseIgnoreComment(t *testing.T) {
	cases := []struct {
		name    string
		text    string // text after the "reprolint:ignore" marker
		wantErr string
		names   []string
		reason  string
	}{
		{
			name:   "single analyzer",
			text:   " floateq exact sentinel check",
			names:  []string{"floateq"},
			reason: "exact sentinel check",
		},
		{
			name:   "analyzer list",
			text:   " floateq,maporder covered by the sorted-keys refactor",
			names:  []string{"floateq", "maporder"},
			reason: "covered by the sorted-keys refactor",
		},
		{
			name:   "tabs and extra spaces",
			text:   "\tfloateq \t reason   with   gaps",
			names:  []string{"floateq"},
			reason: "reason   with   gaps",
		},
		{name: "missing everything", text: "", wantErr: "marker must start the comment"},
		{name: "glued name", text: "floateq reason", wantErr: "missing analyzer name"},
		{name: "only spaces", text: "   ", wantErr: "missing analyzer name"},
		{name: "missing reason", text: " floateq", wantErr: "missing justification"},
		{name: "missing reason with spaces", text: " floateq   ", wantErr: "missing justification"},
		{name: "empty list entry", text: " floateq,,maporder reason", wantErr: "empty analyzer name"},
		{name: "leading comma", text: " ,floateq reason", wantErr: "empty analyzer name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseIgnoreComment(tc.text)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(got.Analyzers) != len(tc.names) {
				t.Fatalf("analyzers = %v, want %v", got.Analyzers, tc.names)
			}
			for i := range tc.names {
				if got.Analyzers[i] != tc.names[i] {
					t.Errorf("analyzers[%d] = %q, want %q", i, got.Analyzers[i], tc.names[i])
				}
			}
			if got.Reason != tc.reason {
				t.Errorf("reason = %q, want %q", got.Reason, tc.reason)
			}
		})
	}
}

func TestDirectiveText(t *testing.T) {
	cases := []struct {
		comment string
		rest    string
		claimed bool
	}{
		{"//reprolint:ignore floateq why", " floateq why", true},
		{"//reprolint:ignore", "", true}, // claimed; parser rejects next
		{"// reprolint:ignore floateq why", "", true},
		{"//\treprolint:ignore floateq why", "", true},
		{"// plain comment", "", false},
		{"// want floateq `x`", "", false},
		{"/* reprolint:ignore floateq why */", "", false},
		{"//go:build ignore", "", false},
	}
	for _, tc := range cases {
		rest, claimed := directiveText(tc.comment)
		if claimed != tc.claimed {
			t.Errorf("directiveText(%q) claimed = %v, want %v", tc.comment, claimed, tc.claimed)
			continue
		}
		if claimed && tc.rest != "" && rest != tc.rest {
			t.Errorf("directiveText(%q) rest = %q, want %q", tc.comment, rest, tc.rest)
		}
	}
}

func TestAnalyzerRegistryNames(t *testing.T) {
	names := AnalyzerNames()
	for _, wantName := range []string{
		"globalrand", "maporder", "ctxhygiene", "nilsafetelemetry", "floateq",
		"seedflow", "lockguard", "goroutinelife", "wirestable", DirectiveAnalyzer,
	} {
		if !names[wantName] {
			t.Errorf("registry is missing analyzer %q", wantName)
		}
	}
	if len(names) != 10 {
		t.Errorf("registry has %d names, want 10: %v", len(names), names)
	}
}
