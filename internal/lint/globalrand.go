package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the shared top-level math/rand generator — and
// wall-clock seeding — in the packages whose outputs must be
// bit-identical across runs and worker counts. Every draw in estimator
// code must flow through an explicitly seeded *rand.Rand (the
// index-seeded per-sample streams of mc.Evaluator): a single
// rand.Float64() against the package-level source consumes shared state
// in scheduler order and silently breaks the worker-count-invariance
// property the determinism test suites lean on.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid top-level math/rand calls and time-based seeding in " +
		"deterministic estimator packages; all randomness must flow " +
		"through explicitly seeded *rand.Rand streams",
	Applies: func(p *Package) bool {
		return pathIn(p, true, "mc", "gibbs", "baselines", "model", "sram", "spice", "surrogate")
	},
	Run: runGlobalRand,
}

// randConstructors are the math/rand package-level functions that do not
// touch the shared global source: they build explicitly seeded
// generators, which is exactly the sanctioned pattern.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2
	"NewPCG":     true,
	"NewChaCha8": true,
}

// seedTakingConstructors take a raw seed value, so a wall-clock argument
// is checked there — not at rand.New, whose Source argument gets its own
// diagnostic, avoiding double reports on nested constructor calls.
var seedTakingConstructors = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalRand(p *Package, report Reporter) {
	// Call sites are checked first (so a seeded-from-the-clock
	// rand.NewSource(time.Now().UnixNano()) gets the sharper message),
	// then any remaining reference to a global rand function — e.g.
	// passing rand.Float64 as a callback — is flagged too.
	inCall := make(map[*ast.SelectorExpr]bool)
	walkFiles(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, _ := pkgMember(p, sel, "math/rand", "math/rand/v2")
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		inCall[sel] = true
		name := fn.Name()
		switch {
		case !randConstructors[name]:
			report(call.Pos(),
				"call to top-level %s.%s uses the shared global generator; draw from an explicitly seeded *rand.Rand instead",
				fn.Pkg().Name(), name)
		case seedTakingConstructors[name] && nondeterministicSeed(p, call):
			report(call.Pos(),
				"%s.%s seeded from the wall clock is unreproducible; derive the seed from the run seed and sample index",
				fn.Pkg().Name(), name)
		}
		return true
	})

	walkFiles(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || inCall[sel] {
			return true
		}
		obj, _ := pkgMember(p, sel, "math/rand", "math/rand/v2")
		if fn, ok := obj.(*types.Func); ok && !randConstructors[fn.Name()] {
			report(sel.Pos(),
				"reference to top-level %s.%s uses the shared global generator; pass a seeded *rand.Rand method instead",
				fn.Pkg().Name(), fn.Name())
		}
		return true
	})
}

// nondeterministicSeed reports whether any argument of the constructor
// call derives from the wall clock or process identity.
func nondeterministicSeed(p *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		bad := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if bad {
				return false
			}
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			obj, path := pkgMember(p, expr, "time", "os")
			if fn, ok := obj.(*types.Func); ok {
				switch {
				case path == "time" && fn.Name() == "Now",
					path == "os" && (fn.Name() == "Getpid" || fn.Name() == "Getppid"):
					bad = true
				}
			}
			return !bad
		})
		if bad {
			return true
		}
	}
	return false
}
