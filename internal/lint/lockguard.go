package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuard is a checklocks-style analyzer driven by "// guarded by
// <mu>" field annotations (see guardedby.go). For every function it
// interprets the lock state of each (receiver object, mutex field)
// pair across the statement graph — branch-aware, defer-aware — and
// flags reads or writes of a guarded field while the guard is not
// held, writes while only a read lock is held, and local variables
// reassigned after a goroutine captured them (the PR 9 worker leaseCtx
// race: a `go func(){...}` closure read leaseCtx while the spawning
// function reassigned it).
//
// Two exemptions keep the analysis single-function and honest:
// functions whose name ends in "Locked" assert by convention that the
// caller holds the receiver's locks, and objects freshly constructed
// in the same function (composite literal or new) are not yet shared.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "reads and writes of struct fields annotated \"// guarded by " +
		"<mu>\" must happen with the mutex held in the same function " +
		"(Lock for writes, at least RLock for reads); also flags " +
		"variables reassigned after being captured by a goroutine",
	RunModule: runLockGuard,
}

// lockLevel encodes how strongly a mutex is held.
const (
	lockNone  = 0
	lockRead  = 1 // RLock: reads of guarded fields are safe
	lockWrite = 2 // Lock: writes too
)

// lockKey identifies one mutex instance: the object the selector chain
// is rooted at plus the mutex field variable. A package-level mutex
// variable is its own root.
type lockKey struct {
	root  types.Object
	mutex *types.Var
}

type lockState map[lockKey]int

func copyState(st lockState) lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// mergeStates intersects two branch outcomes, keeping the weaker hold.
func mergeStates(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		if bv, ok := b[k]; ok {
			if bv < v {
				v = bv
			}
			out[k] = v
		}
	}
	return out
}

func runLockGuard(pkgs []*Package, report Reporter) {
	guards := collectGuards(pkgs, report)
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, fd := range enclosingFuncs(p) {
			w := &lockWalker{p: p, guards: guards, report: report}
			w.analyzeFunc(fd)
			checkCaptureReassign(p, fd, report)
		}
	}
}

type lockWalker struct {
	p      *Package
	guards map[*types.Var]guardInfo
	report Reporter
	// fresh holds locals constructed in this function (composite
	// literal or new): not yet shared, so access is exempt.
	fresh map[types.Object]bool
	// lockedRecv is the receiver object of a function whose name ends
	// in "Locked" — the caller-holds-the-lock convention.
	lockedRecv types.Object
}

func (w *lockWalker) analyzeFunc(fd *ast.FuncDecl) {
	if len(w.guards) == 0 {
		return
	}
	w.fresh = make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				if isFreshExpr(w.p, st.Rhs[i]) {
					if obj := w.p.Info.Defs[id]; obj != nil {
						w.fresh[obj] = true
					} else if obj := w.p.Info.Uses[id]; obj != nil {
						w.fresh[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) && isFreshExpr(w.p, st.Values[i]) {
					if obj := w.p.Info.Defs[name]; obj != nil {
						w.fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 &&
		hasSuffix(fd.Name.Name, "Locked") {
		w.lockedRecv = w.p.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	w.stmts(fd.Body.List, make(lockState))
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// isFreshExpr reports whether e constructs a new object: &T{...},
// T{...}, or new(T).
func isFreshExpr(p *Package, e ast.Expr) bool {
	if compositeLitOf(e) != nil {
		return true
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}

// stmts interprets a statement list sequentially; terminated reports
// whether control cannot fall off the end (return, break, ...).
func (w *lockWalker) stmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *lockWalker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch x := s.(type) {
	case nil:
		return st, false
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if key, op, ok := w.lockOp(call); ok {
				return applyLockOp(st, key, op), false
			}
		}
		w.expr(x.X, st)
		return st, false
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			w.expr(rhs, st)
		}
		for _, lhs := range x.Lhs {
			w.exprW(lhs, st)
		}
		return st, false
	case *ast.IncDecStmt:
		w.exprW(x.X, st)
		return st, false
	case *ast.DeferStmt:
		if key, op, ok := w.lockOp(x.Call); ok {
			// defer mu.Unlock() releases at return: the lock stays
			// held for the remainder of this function's statements.
			// defer mu.Lock() is nonsense we leave to vet.
			_ = key
			_ = op
			return st, false
		}
		if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
			// Deferred closures run at return; interpreting them with
			// the current state is an approximation that accepts the
			// dominant cleanup idiom.
			w.stmts(lit.Body.List, copyState(st))
		} else {
			w.expr(x.Call.Fun, st)
		}
		for _, arg := range x.Call.Args {
			w.expr(arg, st)
		}
		return st, false
	case *ast.GoStmt:
		// Arguments are evaluated synchronously; the body runs on a
		// new goroutine that holds no locks.
		for _, arg := range x.Call.Args {
			w.expr(arg, st)
		}
		if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, make(lockState))
		} else {
			w.expr(x.Call.Fun, st)
		}
		return st, false
	case *ast.SendStmt:
		w.expr(x.Chan, st)
		w.expr(x.Value, st)
		return st, false
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
		return st, false
	case *ast.BlockStmt:
		return w.stmts(x.List, st)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)
	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		w.expr(x.Cond, st)
		thenSt, thenTerm := w.stmts(x.Body.List, copyState(st))
		elseSt, elseTerm := copyState(st), false
		if x.Else != nil {
			elseSt, elseTerm = w.stmt(x.Else, copyState(st))
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeStates(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		if x.Cond != nil {
			w.expr(x.Cond, st)
		}
		// The body is interpreted once from the loop-entry state; its
		// effects on the post-loop state are discarded (a lock/unlock
		// pair inside the body is still checked sequentially within).
		body := copyState(st)
		body, _ = w.stmts(x.Body.List, body)
		if x.Post != nil {
			w.stmt(x.Post, body)
		}
		return st, false
	case *ast.RangeStmt:
		w.expr(x.X, st)
		w.stmts(x.Body.List, copyState(st))
		return st, false
	case *ast.SwitchStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		if x.Tag != nil {
			w.expr(x.Tag, st)
		}
		return w.caseClauses(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		if as, ok := x.Assign.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				w.expr(rhs, st)
			}
		} else if es, ok := x.Assign.(*ast.ExprStmt); ok {
			w.expr(es.X, st)
		}
		return w.caseClauses(x.Body, st)
	case *ast.SelectStmt:
		var merged lockState
		allTerm := true
		for _, c := range x.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := copyState(st)
			if comm.Comm != nil {
				branch, _ = w.stmt(comm.Comm, branch)
			}
			branch, term := w.stmts(comm.Body, branch)
			if term {
				continue
			}
			allTerm = false
			if merged == nil {
				merged = branch
			} else {
				merged = mergeStates(merged, branch)
			}
		}
		if len(x.Body.List) == 0 {
			return st, false
		}
		if allTerm {
			return st, true
		}
		return merged, false
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.expr(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; treating
		// them as terminators keeps merges honest.
		return st, x.Tok != token.FALLTHROUGH
	default:
		return st, false
	}
}

// caseClauses interprets switch bodies: each case on a copy of the
// entry state, merged with the entry state itself unless a default
// clause makes the switch exhaustive.
func (w *lockWalker) caseClauses(body *ast.BlockStmt, st lockState) (lockState, bool) {
	merged := (lockState)(nil)
	hasDefault := false
	allTerm := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.expr(e, st)
		}
		branch, term := w.stmts(cc.Body, copyState(st))
		if term {
			continue
		}
		allTerm = false
		if merged == nil {
			merged = branch
		} else {
			merged = mergeStates(merged, branch)
		}
	}
	if !hasDefault {
		if merged == nil {
			return st, false
		}
		return mergeStates(merged, st), false
	}
	if allTerm {
		return st, true
	}
	return merged, false
}

func applyLockOp(st lockState, key lockKey, op string) lockState {
	st = copyState(st)
	switch op {
	case "Lock":
		st[key] = lockWrite
	case "RLock":
		if st[key] < lockRead {
			st[key] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(st, key)
	}
	return st
}

// lockOp recognizes x.mu.Lock() / mu.RLock() / ... calls on mutex
// fields or package-level mutex variables.
func (w *lockWalker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		fv, _ := w.p.Info.Uses[recv.Sel].(*types.Var)
		if fv == nil {
			return lockKey{}, "", false
		}
		if _, isMu := isMutexType(fv.Type()); !isMu {
			return lockKey{}, "", false
		}
		root := rootObjOf(w.p, recv.X)
		if root == nil {
			return lockKey{}, "", false
		}
		return lockKey{root: root, mutex: fv}, op, true
	case *ast.Ident:
		v, _ := w.p.Info.Uses[recv].(*types.Var)
		if v == nil {
			return lockKey{}, "", false
		}
		if _, isMu := isMutexType(v.Type()); !isMu {
			return lockKey{}, "", false
		}
		return lockKey{root: v, mutex: v}, op, true
	}
	return lockKey{}, "", false
}

// rootObjOf resolves the object at the base of a selector chain.
func rootObjOf(p *Package, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// expr checks guarded-field reads in an expression tree. Function
// literals are interpreted with a copy of the current state (the
// synchronous-call assumption); go-statement literals never reach here
// (the statement walker hands them an empty state).
func (w *lockWalker) expr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.FuncLit:
		w.stmts(x.Body.List, copyState(st))
	case *ast.SelectorExpr:
		w.checkAccess(x, st, false)
		w.expr(x.X, st)
	case *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		w.expr(x.X, st)
	case *ast.StarExpr:
		w.expr(x.X, st)
	case *ast.UnaryExpr:
		w.expr(x.X, st)
	case *ast.BinaryExpr:
		w.expr(x.X, st)
		w.expr(x.Y, st)
	case *ast.CallExpr:
		w.expr(x.Fun, st)
		for _, a := range x.Args {
			w.expr(a, st)
		}
	case *ast.IndexExpr:
		w.expr(x.X, st)
		w.expr(x.Index, st)
	case *ast.IndexListExpr:
		w.expr(x.X, st)
		for _, idx := range x.Indices {
			w.expr(idx, st)
		}
	case *ast.SliceExpr:
		w.expr(x.X, st)
		w.expr(x.Low, st)
		w.expr(x.High, st)
		w.expr(x.Max, st)
	case *ast.TypeAssertExpr:
		w.expr(x.X, st)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			w.expr(elt, st)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Key, st)
		w.expr(x.Value, st)
	}
}

// exprW checks an assignment target: the outermost guarded selector —
// reached through index, star and paren wrappers — needs the write
// lock; everything below it is a read.
func (w *lockWalker) exprW(e ast.Expr, st lockState) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if w.checkAccess(x, st, true) {
			w.expr(x.X, st)
			return
		}
		// Not itself guarded: writing c.inner.field also mutates
		// c.inner, so the write requirement cascades down the chain.
		w.exprW(x.X, st)
	case *ast.IndexExpr:
		w.exprW(x.X, st) // m.jobs[id] = v mutates the guarded map
		w.expr(x.Index, st)
	case *ast.StarExpr:
		// Writing through a pointer mutates the pointee, not the
		// variable holding the pointer: reads only from here down.
		w.expr(x.X, st)
	default:
		w.expr(e, st)
	}
}

// checkAccess reports a guarded access made without the required hold;
// it returns true when sel resolves to a guarded field (whether or not
// it was reported).
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, st lockState, write bool) bool {
	fv, _ := w.p.Info.Uses[sel.Sel].(*types.Var)
	if fv == nil {
		return false
	}
	g, guarded := w.guards[fv]
	if !guarded {
		return false
	}
	root := rootObjOf(w.p, sel.X)
	if root == nil {
		return true // unkeyable chain (method-call base): accept
	}
	if w.fresh[root] || (w.lockedRecv != nil && root == w.lockedRecv) {
		return true
	}
	held := st[lockKey{root: root, mutex: g.mutex}]
	switch {
	case write && held == lockRead:
		w.report(sel.Pos(), "%s.%s is written while holding only %s.%s.RLock; writes need the full Lock",
			root.Name(), fv.Name(), root.Name(), g.mutex.Name())
	case write && held < lockWrite:
		w.report(sel.Pos(), "%s.%s is written without holding %s.%s",
			root.Name(), fv.Name(), root.Name(), g.mutex.Name())
	case !write && held < lockRead:
		w.report(sel.Pos(), "%s.%s is read without holding %s.%s",
			root.Name(), fv.Name(), root.Name(), g.mutex.Name())
	}
	return true
}

// checkCaptureReassign flags the PR 9 leaseCtx shape: a local variable
// read by a go-statement closure and then reassigned later in the
// spawning function. The goroutine reads the variable concurrently, so
// the reassignment is a data race regardless of any mutex — the fix is
// to give the continuation its own variable.
func checkCaptureReassign(p *Package, fd *ast.FuncDecl, report Reporter) {
	type capture struct {
		goPos token.Pos
		lit   *ast.FuncLit
	}
	captured := make(map[types.Object][]capture)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() {
				return true
			}
			// Free variable of the closure: declared inside the
			// enclosing function but outside the literal.
			if v.Pos() < fd.Pos() || v.Pos() >= fd.End() {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
				return true
			}
			captured[v] = append(captured[v], capture{goPos: gs.Pos(), lit: lit})
			return true
		})
		return true
	})
	if len(captured) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if p.Info.Defs[id] != nil {
				continue // a fresh declaration, not a reassignment
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			for _, c := range captured[v] {
				if as.Pos() <= c.goPos {
					continue
				}
				if as.Pos() >= c.lit.Pos() && as.Pos() < c.lit.End() {
					continue // the goroutine writing its own capture
				}
				goLine := p.Fset.Position(c.goPos).Line
				report(as.Pos(), "%s is reassigned after being captured by the goroutine started on line %d; the goroutine reads it concurrently — give the continuation its own variable",
					id.Name, goLine)
				break
			}
		}
		return true
	})
}
