package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// WireStable pins the cluster wire format to one registry file. Event
// names (Registry.Emit, Bus.Publish), metric scope names
// (Registry.Scope) and problem URNs (urn:repro:problem:*) are protocol:
// coordinator and workers match on them across process boundaries, the
// dashboard and clients parse them, and DESIGN.md §15 freezes them. A
// string literal at a call site can drift without any reviewer noticing
// — so every wire name must be (or be composed from) a constant
// declared in a file named wirenames.go, and every constant used as a
// wire name must come from that file. Runtime composition around the
// constants (prefix + variable, parameter forwarding) stays legal.
var WireStable = &Analyzer{
	Name: "wirestable",
	Doc: "telemetry event names, metric scope names and problem URNs " +
		"must come from constants declared in the wire-name registry " +
		"(a file named wirenames.go); string literals at Emit/Scope/" +
		"Publish call sites and urn:repro:problem literals elsewhere drift silently",
	Run: runWireStable,
}

// wireRegistryFile is the basename every wire-name constant must be
// declared in. The real registry is internal/wire/wirenames.go;
// fixtures carry their own.
const wireRegistryFile = "wirenames.go"

// problemURNMarker is matched inside string literals: composing a
// problem URN from a raw literal bypasses the registry.
const problemURNMarker = "urn:repro:problem"

func runWireStable(p *Package, report Reporter) {
	if p.Info == nil {
		return
	}
	// The analyzer's own implementation necessarily spells the URN
	// namespace it polices; exempt the lint package from the
	// URN-literal rule (fixtures load under other synthetic paths).
	selfExempt := pathIn(p, false, "lint")
	for _, f := range p.Files {
		inRegistry := filepath.Base(p.Fset.Position(f.Pos()).Filename) == wireRegistryFile
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if kind := wireNameCall(p, x); kind != "" && len(x.Args) > 0 {
					checkWireName(p, x.Args[0], kind, report)
				}
			case *ast.BasicLit:
				if inRegistry || selfExempt || x.Kind != token.STRING {
					return true
				}
				if s, err := strconv.Unquote(x.Value); err == nil && strings.Contains(s, problemURNMarker) {
					report(x.Pos(), "problem URN literal %q must be composed from constants in the wire-name registry (%s)",
						s, wireRegistryFile)
				}
			}
			return true
		})
	}
}

// wireNameCall classifies a call whose first argument is a wire name:
// Emit/Scope on a telemetry Registry, Publish on a telemetry Bus.
// Matching is by receiver type name within a package named "telemetry"
// so fixtures (which cannot import the real module) participate.
func wireNameCall(p *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "telemetry" {
		return ""
	}
	switch {
	case obj.Name() == "Registry" && fn.Name() == "Emit":
		return "event name"
	case obj.Name() == "Registry" && fn.Name() == "Scope":
		return "scope name"
	case obj.Name() == "Bus" && fn.Name() == "Publish":
		return "event name"
	}
	return ""
}

// checkWireName validates one wire-name argument: no string literals
// anywhere in the expression, and every constant it references must be
// declared in the registry file. Plain variables and parameters pass —
// forwarding a name someone else validated is not a new name.
func checkWireName(p *Package, arg ast.Expr, kind string, report Reporter) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BasicLit:
			if x.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(x.Value)
			if err != nil {
				s = x.Value
			}
			report(x.Pos(), "%s %q is a string literal; declare it as a constant in the wire-name registry (%s)",
				kind, s, wireRegistryFile)
		case *ast.Ident:
			c, ok := p.Info.Uses[x].(*types.Const)
			if !ok || c.Pkg() == nil {
				return true
			}
			declFile := filepath.Base(p.Fset.Position(c.Pos()).Filename)
			if declFile != wireRegistryFile {
				report(x.Pos(), "%s comes from constant %s declared in %s, not the wire-name registry (%s)",
					kind, c.Name(), declFile, wireRegistryFile)
			}
		}
		return true
	})
}
