package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops in estimator and fit code whose
// bodies accumulate into floating-point state or append work items
// declared outside the loop. Go randomises map iteration order, and
// float addition is not associative, so such a loop produces run-to-run
// different bits for the same inputs — exactly the failure mode the
// bit-identical-across-worker-counts guarantee exists to catch. The
// deterministic pattern is to collect the keys, sort them, and range
// over the sorted slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops that accumulate floats or append " +
		"work items in estimator/fit code; iteration order is randomised, " +
		"so sort the keys first",
	Applies: func(p *Package) bool {
		return pathIn(p, true, "mc", "gibbs", "baselines", "model", "stat", "surrogate")
	},
	Run: runMapOrder,
}

func runMapOrder(p *Package, report Reporter) {
	walkFiles(p, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		keyObj := rangeKeyObject(p, rng)
		ast.Inspect(rng.Body, func(b ast.Node) bool {
			as, ok := b.(*ast.AssignStmt)
			if !ok {
				return true
			}
			checkMapOrderAssign(p, rng, keyObj, as, report)
			return true
		})
		return true
	})
}

// rangeKeyObject returns the object of the range key variable, if the
// statement declares one.
func rangeKeyObject(p *Package, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

func checkMapOrderAssign(p *Package, rng *ast.RangeStmt, keyObj types.Object, as *ast.AssignStmt, report Reporter) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if flagged, why := orderDependentTarget(p, rng, keyObj, lhs); flagged {
				report(as.Pos(),
					"float %s into %s inside range-over-map: iteration order is randomised and float ops are not associative; sort the keys and range over the slice", as.Tok, why)
			}
		}
	case token.ASSIGN, token.DEFINE:
		// x = x + v  (self-referencing float update), and
		// s = append(s, ...) into an outer slice.
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			rhs := as.Rhs[i]
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) {
				root := rootIdent(lhs)
				obj := objectOf(p, root)
				if obj != nil && declaredOutside(obj, rng, rng) && !appendsOnlyRangeKey(p, keyObj, call) {
					report(as.Pos(),
						"append to %q inside range-over-map: element order follows the randomised iteration order; sort the keys and range over the slice", root.Name)
				}
				continue
			}
			if flagged, why := orderDependentTarget(p, rng, keyObj, lhs); flagged {
				root := rootIdent(lhs)
				if root != nil && usesObject(p, rhs, objectOf(p, root)) {
					report(as.Pos(),
						"float update of %s from its own value inside range-over-map: iteration order is randomised and float ops are not associative; sort the keys and range over the slice", why)
				}
			}
		}
	}
}

// orderDependentTarget reports whether assigning to lhs accumulates
// order-dependent float state: the target is float-typed, its root
// variable outlives the loop, and — for map-index targets — the entry is
// not keyed by the range key itself (m[k] is touched once per key, so
// order cannot matter).
func orderDependentTarget(p *Package, rng *ast.RangeStmt, keyObj types.Object, lhs ast.Expr) (bool, string) {
	tv, ok := p.Info.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return false, ""
	}
	root := rootIdent(lhs)
	obj := objectOf(p, root)
	if obj == nil || !declaredOutside(obj, rng, rng) {
		return false, ""
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
		if id, ok := idx.Index.(*ast.Ident); ok && p.Info.Uses[id] == keyObj {
			return false, ""
		}
	}
	return true, "\"" + root.Name + "\""
}

func objectOf(p *Package, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// appendsOnlyRangeKey reports whether every appended element is the
// range key itself — the collect-keys-then-sort remedy, which is the
// sanctioned deterministic pattern and must not be flagged.
func appendsOnlyRangeKey(p *Package, keyObj types.Object, call *ast.CallExpr) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || p.Info.Uses[id] != keyObj {
			return false
		}
	}
	return true
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
