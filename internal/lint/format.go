package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONSchema identifies the machine-readable diagnostic format, so CI
// consumers can detect incompatible changes.
const JSONSchema = "reprolint/v1"

// jsonReport is the envelope written by WriteJSON.
type jsonReport struct {
	Schema      string       `json:"schema"`
	Count       int          `json:"count"`
	Diagnostics []Diagnostic `json:"diagnostics"`
	Suppressed  []Diagnostic `json:"suppressed,omitempty"`
}

// WriteText writes one "file:line:col: [analyzer] message" line per
// diagnostic — the editor-friendly format.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the reprolint/v1 machine-readable report: schema tag,
// unsuppressed count, all diagnostics, and (for auditing) the findings
// hidden by ignore directives together with their justifications.
func WriteJSON(w io.Writer, res Result) error {
	rep := jsonReport{
		Schema:      JSONSchema,
		Count:       len(res.Diags),
		Diagnostics: res.Diags,
		Suppressed:  res.Suppressed,
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
