package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// guardedby.go implements the "// guarded by <mu>" annotation grammar
// shared by the lockguard analyzer and the -fix-annotations helper.
//
// A struct field is annotated by placing the phrase "guarded by <name>"
// in its doc comment or trailing line comment, where <name> is a
// sibling field of type sync.Mutex, sync.RWMutex, or a pointer to
// either. The phrase may appear anywhere in the comment, so prose like
// "// jobs is the queue index, guarded by mu." works; trailing
// punctuation after the mutex name is ignored.

// guardInfo describes the mutex protecting one annotated struct field.
type guardInfo struct {
	mutex *types.Var // the sibling mutex field
	rw    bool       // true for sync.RWMutex: RLock satisfies reads
}

// parseGuardedBy extracts the mutex name from comment text (as
// returned by ast.CommentGroup.Text, i.e. with comment markers
// stripped). It returns the first "guarded by <name>" phrase found.
func parseGuardedBy(text string) (string, bool) {
	words := strings.Fields(text)
	for i := 0; i+2 < len(words); i++ {
		if words[i] != "guarded" || words[i+1] != "by" {
			continue
		}
		name := strings.TrimRight(words[i+2], ".,;:!?)")
		name = strings.TrimLeft(name, "(")
		if name != "" {
			return name, true
		}
	}
	return "", false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one); rw distinguishes the reader/writer variant.
func isMutexType(t types.Type) (rw, ok bool) {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// fieldComment joins a struct field's doc and line comments.
func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// collectGuards walks every struct type in the package set, resolving
// "guarded by" annotations to their mutex fields. Annotations naming a
// sibling that does not exist or is not a mutex are reported — a typo
// in an annotation must not silently disable checking.
func collectGuards(pkgs []*Package, report Reporter) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		pkg := p
		walkFiles(p, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			// Index the struct's mutex fields by name first, so guard
			// annotations can resolve regardless of field order.
			mutexes := make(map[string]guardInfo)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fv, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if rw, isMu := isMutexType(fv.Type()); isMu {
						mutexes[name.Name] = guardInfo{mutex: fv, rw: rw}
					}
				}
			}
			for _, f := range st.Fields.List {
				muName, ok := parseGuardedBy(fieldComment(f))
				if !ok {
					continue
				}
				g, found := mutexes[muName]
				for _, name := range f.Names {
					if !found {
						report(name.Pos(),
							"field %s is annotated \"guarded by %s\", but the struct has no sync.Mutex or sync.RWMutex field named %s",
							name.Name, muName, muName)
						continue
					}
					if fv, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[fv] = g
					}
				}
			}
			return true
		})
	}
	return guards
}

// AnnotationCandidate is one struct field that sits next to a mutex but
// carries no "guarded by" annotation — the raw material for adopting
// lockguard in a package (cmd/reprolint -fix-annotations).
type AnnotationCandidate struct {
	Pos    string // file:line of the field
	Struct string // declared struct type name ("" for anonymous)
	Field  string
	Mutex  string // suggested guard: the struct's mutex field name
}

// AnnotationCandidates lists, across the package set, every named
// non-mutex field of a struct that has exactly one mutex field and no
// annotation on that field. Structs with several mutexes are skipped —
// the right guard is ambiguous and needs a human.
func AnnotationCandidates(pkgs []*Package) []AnnotationCandidate {
	var out []AnnotationCandidate
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		pkg := p
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				var muNames []string
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						fv, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if _, isMu := isMutexType(fv.Type()); isMu {
							muNames = append(muNames, name.Name)
						}
					}
				}
				if len(muNames) != 1 {
					return true
				}
				for _, f := range st.Fields.List {
					if _, annotated := parseGuardedBy(fieldComment(f)); annotated {
						continue
					}
					for _, name := range f.Names {
						fv, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if _, isMu := isMutexType(fv.Type()); isMu {
							continue
						}
						pos := pkg.Fset.Position(name.Pos())
						out = append(out, AnnotationCandidate{
							Pos:    fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
							Struct: ts.Name.Name,
							Field:  name.Name,
							Mutex:  muNames[0],
						})
					}
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Field < out[j].Field
	})
	return out
}
