package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathIn reports whether the package's import path is the module root
// (no "/internal/" segment and no slash beyond the module name is not
// reliable across fixtures, so root is matched exactly) or ends with one
// of the given "/internal/<name>" suffixes. Fixtures are loaded under
// synthetic "repro/..." paths so they match identically.
func pathIn(p *Package, root bool, internals ...string) bool {
	ip := p.ImportPath
	if root && !strings.Contains(ip, "/") {
		return true
	}
	for _, name := range internals {
		if strings.HasSuffix(ip, "/internal/"+name) {
			return true
		}
	}
	return false
}

// useOf resolves an identifier to the object it refers to, or nil.
func useOf(p *Package, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	return p.Info.Uses[id]
}

// pkgFuncCallee reports whether expr is a selector x.Sel where x names
// an imported package with the given path, returning the selected
// package-level object (function, var, type) if so.
func pkgMember(p *Package, expr ast.Expr, pkgPaths ...string) (types.Object, string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	pn, ok := useOf(p, x).(*types.PkgName)
	if !ok {
		return nil, ""
	}
	path := pn.Imported().Path()
	for _, want := range pkgPaths {
		if path == want {
			return useOf(p, sel.Sel), path
		}
	}
	return nil, ""
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type (complex equality has the same exactness trap).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rootIdent returns the leftmost identifier of an lvalue expression:
// x, x.f, x[i], x.f[i].g all yield x.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the object was declared outside the
// [lo, hi] node span — i.e. it survives across iterations of a loop
// spanning that range.
func declaredOutside(obj types.Object, lo, hi ast.Node) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < lo.Pos() || obj.Pos() > hi.End()
}

// ctxParam returns the *types.Var of the first parameter whose type is
// context.Context, along with its declared name ("" when anonymous).
func ctxParam(p *Package, fn *ast.FuncDecl) (*types.Var, string) {
	if fn.Type.Params == nil {
		return nil, ""
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			return nil, ""
		}
		name := field.Names[0]
		if v, ok := p.Info.Defs[name].(*types.Var); ok {
			return v, name.Name
		}
		return nil, name.Name
	}
	return nil, ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(p *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(child ast.Node) bool {
		if found {
			return false
		}
		if id, ok := child.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
