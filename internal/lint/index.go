package lint

import (
	"go/ast"
	"go/types"
)

// index.go is the module-wide function/call index shared by the
// dataflow analyzers (seedflow, lockguard, goroutinelife). It maps
// every declared function to its AST and every resolvable call
// expression to its callee, across all packages of one Run — the seam
// that lets an analyzer chase a value from a call argument in one
// package to a parameter use in another.

// funcInfo locates one function declaration.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// callSite is one resolved call: the package and enclosing function
// declaration it appears in (caller is nil for package-level
// initializer expressions).
type callSite struct {
	pkg    *Package
	caller *ast.FuncDecl
	call   *ast.CallExpr
}

// moduleIndex is the cross-package lookup structure.
type moduleIndex struct {
	pkgs  []*Package
	funcs map[*types.Func]funcInfo
	calls map[*types.Func][]callSite
}

// buildIndex walks every file of every package once. Packages that
// failed to type-check (fuzzing feeds those) contribute nothing.
func buildIndex(pkgs []*Package) *moduleIndex {
	ix := &moduleIndex{
		pkgs:  pkgs,
		funcs: make(map[*types.Func]funcInfo),
		calls: make(map[*types.Func][]callSite),
	}
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok && obj != nil {
					ix.funcs[obj] = funcInfo{pkg: p, decl: fd}
				}
			}
		}
	}
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				encl, _ := decl.(*ast.FuncDecl)
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeFunc(p, call); fn != nil {
						ix.calls[fn] = append(ix.calls[fn], callSite{pkg: p, caller: encl, call: call})
					}
					return true
				})
			}
		}
	}
	return ix
}

// calleeFunc resolves the function object a call expression invokes:
// plain identifiers, package selectors and method calls all resolve
// through the Uses table. Conversions, builtins and indirect calls
// through function values yield nil.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// enclosingFuncs pairs every function declaration of a package with its
// file, in source order, for analyzers that walk function bodies.
func enclosingFuncs(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
