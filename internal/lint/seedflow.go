package lint

import (
	"go/ast"
	"go/types"
)

// Seedflow is the seed-provenance dataflow analyzer. GlobalRand already
// rejects the syntactically obvious rand.NewSource(time.Now().UnixNano())
// — but the PR-9 class of bug hides the nondeterminism behind a local
// variable, a helper function, or a caller in another package. Seedflow
// chases the seed argument of every explicitly seeded RNG constructor in
// the deterministic estimator packages backwards through assignments,
// function returns, and cross-package call sites, and flags any path
// that bottoms out in a nondeterministic root:
//
//   - the wall clock (time.Now)
//   - process identity (os.Getpid / os.Getppid)
//   - pointer identity (unsafe.Pointer→uintptr, reflect Pointer/UnsafeAddr)
//   - package-level mutable state (a global variable read)
//
// Everything else — constants, Options.Seed fields, function parameters
// whose module-visible callers all pass clean values — is accepted: the
// sanctioned scheme derives every stream from (run seed, sample index),
// and those inputs arrive exactly through such paths.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc: "RNG seeds in deterministic estimator packages must derive from " +
		"the run seed and sample index; flag seeds tainted by the wall " +
		"clock, process or pointer identity, or global mutable state, " +
		"chasing values through locals, helpers and cross-package callers",
	RunModule: runSeedflow,
}

// seedflowPackage gates where constructor calls are checked. The whole
// module still participates in the dataflow as callers and callees.
func seedflowPackage(p *Package) bool {
	return pathIn(p, true, "mc", "gibbs", "baselines", "model", "sram", "spice", "surrogate")
}

// seedTaint describes one nondeterministic root a seed derives from.
type seedTaint struct {
	what string // human description ("the wall clock (time.Now)")
	via  string // optional "file:line" of the cross-function call that carried it
}

// maxSeedHops bounds the caller/callee chase; deeper provenance chains
// are accepted rather than risking quadratic blowup on hot helpers.
const maxSeedHops = 8

type seedflowPass struct {
	ix *moduleIndex
	// paramMemo caches parameter verdicts so a hot helper's callers are
	// classified once; paramBusy breaks recursion cycles.
	paramMemo map[seedParamKey]*seedTaint
	paramBusy map[seedParamKey]bool
	// retBusy breaks cycles when classifying function return values.
	retBusy map[*types.Func]bool
}

type seedParamKey struct {
	fn  *types.Func
	idx int
}

func runSeedflow(pkgs []*Package, report Reporter) {
	s := &seedflowPass{
		ix:        buildIndex(pkgs),
		paramMemo: make(map[seedParamKey]*seedTaint),
		paramBusy: make(map[seedParamKey]bool),
		retBusy:   make(map[*types.Func]bool),
	}
	for _, p := range pkgs {
		if p.Info == nil || !seedflowPackage(p) {
			continue
		}
		for _, fd := range enclosingFuncs(p) {
			fn := fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				s.checkConstructor(p, fn, call, report)
				return true
			})
		}
	}
}

// checkConstructor classifies the seed arguments of explicitly seeded
// RNG constructors (math/rand NewSource/NewPCG/NewChaCha8) and of Seed
// methods on module-declared rand sources.
func (s *seedflowPass) checkConstructor(p *Package, fn *ast.FuncDecl, call *ast.CallExpr, report Reporter) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	target := ""
	if obj, _ := pkgMember(p, sel, "math/rand", "math/rand/v2"); obj != nil {
		f, ok := obj.(*types.Func)
		if !ok || !seedTakingConstructors[f.Name()] {
			return
		}
		target = f.Pkg().Name() + "." + f.Name()
	} else {
		// A Seed method on a module-declared source (the index-seeded
		// engine's custom splitmix sources) takes the same contract.
		callee := calleeFunc(p, call)
		if callee == nil || callee.Name() != "Seed" || len(call.Args) != 1 {
			return
		}
		if _, inModule := s.ix.funcs[callee]; !inModule {
			return
		}
		target = types.ExprString(sel.X) + ".Seed"
	}
	for _, arg := range call.Args {
		if t := s.taintOf(p, fn, arg, make(map[types.Object]bool), 0); t != nil {
			msg := "%s is seeded from %s; derive the seed from the run seed and sample index"
			if t.via != "" {
				msg += " (tainted via the call at " + t.via + ")"
			}
			report(call.Pos(), msg, target, t.what)
			return // one report per constructor call
		}
	}
}

// taintOf classifies one expression's provenance in the context of the
// enclosing function declaration (nil for closures' own parameters,
// which are then treated as opaque locals).
func (s *seedflowPass) taintOf(p *Package, fn *ast.FuncDecl, expr ast.Expr, seen map[types.Object]bool, hops int) *seedTaint {
	if hops > maxSeedHops || expr == nil {
		return nil
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return nil
	case *ast.BinaryExpr:
		if t := s.taintOf(p, fn, e.X, seen, hops); t != nil {
			return t
		}
		return s.taintOf(p, fn, e.Y, seen, hops)
	case *ast.UnaryExpr:
		return s.taintOf(p, fn, e.X, seen, hops)
	case *ast.StarExpr:
		return s.taintOf(p, fn, e.X, seen, hops)
	case *ast.CallExpr:
		return s.taintOfCall(p, fn, e, seen, hops)
	case *ast.Ident:
		return s.taintOfIdent(p, fn, e, seen, hops)
	case *ast.SelectorExpr:
		return s.taintOfSelector(p, fn, e, seen, hops)
	}
	return nil
}

// taintOfCall handles the nondeterministic roots that are calls, plus
// interprocedural forwarding: a module function's return value carries
// whatever its return expressions carry.
func (s *seedflowPass) taintOfCall(p *Package, fn *ast.FuncDecl, call *ast.CallExpr, seen map[types.Object]bool, hops int) *seedTaint {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, path := pkgMember(p, sel, "time", "os", "math/rand", "math/rand/v2"); obj != nil {
			if f, ok := obj.(*types.Func); ok {
				switch {
				case path == "time" && f.Name() == "Now":
					return &seedTaint{what: "the wall clock (time.Now)"}
				case path == "os" && (f.Name() == "Getpid" || f.Name() == "Getppid"):
					return &seedTaint{what: "process identity (os." + f.Name() + ")"}
				default:
					// math/rand members are either sanctioned
					// constructors (their own seed arguments get their
					// own check) or globalrand's problem, not ours.
					return nil
				}
			}
		}
		// reflect.Value.Pointer / UnsafeAddr expose pointer identity.
		if m, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "reflect" {
			if m.Name() == "Pointer" || m.Name() == "UnsafeAddr" {
				return &seedTaint{what: "pointer identity (reflect." + m.Name() + ")"}
			}
		}
	}
	// Conversions: uintptr(unsafe.Pointer(...)) is pointer identity.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if at, ok := p.Info.Types[call.Args[0]]; ok {
				if ab, ok := at.Type.Underlying().(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
					return &seedTaint{what: "pointer identity (unsafe.Pointer)"}
				}
			}
		}
		return s.taintOf(p, fn, call.Args[0], seen, hops)
	}
	// A call into the module: classify what the callee returns.
	if callee := calleeFunc(p, call); callee != nil {
		if info, ok := s.ix.funcs[callee]; ok {
			return s.taintOfReturns(info, callee, hops)
		}
	}
	// Unknown callee (stdlib helper, function value): the result is as
	// tainted as its arguments — hash(time.Now().String()) stays dirty.
	for _, arg := range call.Args {
		if t := s.taintOf(p, fn, arg, seen, hops); t != nil {
			return t
		}
	}
	// Method calls carry their receiver's taint too:
	// time.Now().UnixNano() has no arguments, only a dirty receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return s.taintOf(p, fn, sel.X, seen, hops)
	}
	return nil
}

// taintOfReturns classifies every return expression of a module
// function; any tainted return taints the call.
func (s *seedflowPass) taintOfReturns(info funcInfo, fn *types.Func, hops int) *seedTaint {
	if s.retBusy[fn] || info.decl.Body == nil {
		return nil
	}
	s.retBusy[fn] = true
	defer delete(s.retBusy, fn)
	var taint *seedTaint
	ast.Inspect(info.decl.Body, func(n ast.Node) bool {
		if taint != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if t := s.taintOf(info.pkg, info.decl, res, make(map[types.Object]bool), hops+1); t != nil {
				taint = t
				return false
			}
		}
		return true
	})
	return taint
}

// taintOfIdent resolves a bare identifier: constants are clean, global
// variables are mutable state, parameters propagate to every module
// call site, and locals are classified by their assignments.
func (s *seedflowPass) taintOfIdent(p *Package, fn *ast.FuncDecl, id *ast.Ident, seen map[types.Object]bool, hops int) *seedTaint {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || seen[v] {
		return nil
	}
	seen[v] = true
	if isPackageLevel(v) {
		return &seedTaint{what: "package-level mutable state (" + v.Name() + ")"}
	}
	if fn != nil {
		if idx, isParam := paramIndex(p, fn, v); isParam {
			if fnObj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
				return s.taintOfParam(fnObj, idx, hops)
			}
			return nil
		}
		for _, rhs := range assignmentsTo(p, fn, v) {
			if t := s.taintOf(p, fn, rhs, seen, hops); t != nil {
				return t
			}
		}
	}
	return nil
}

// taintOfSelector handles field reads x.f: a read through a global
// container is mutable state; a read from a locally built struct is
// classified field-sensitively through its composite literal.
func (s *seedflowPass) taintOfSelector(p *Package, fn *ast.FuncDecl, sel *ast.SelectorExpr, seen map[types.Object]bool, hops int) *seedTaint {
	// Imported package members: pkg.Var is global state, pkg.Const clean.
	if x, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := p.Info.Uses[x].(*types.PkgName); isPkg {
			if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && isPackageLevel(v) {
				return &seedTaint{what: "package-level mutable state (" + v.Name() + ")"}
			}
			return nil
		}
	}
	root := rootIdent(sel.X)
	if root == nil {
		return nil
	}
	rootObj, _ := p.Info.Uses[root].(*types.Var)
	if rootObj == nil {
		return nil
	}
	if isPackageLevel(rootObj) {
		return &seedTaint{what: "package-level mutable state (" + rootObj.Name() + ")"}
	}
	// Field-sensitive trace through local composite literals: for
	// o := Options{Seed: <expr>}, o.Seed carries only <expr>'s taint.
	if fn == nil || seen[rootObj] {
		return nil
	}
	fieldName := sel.Sel.Name
	for _, rhs := range assignmentsTo(p, fn, rootObj) {
		lit := compositeLitOf(rhs)
		if lit == nil {
			continue
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == fieldName {
				childSeen := map[types.Object]bool{rootObj: true}
				if t := s.taintOf(p, fn, kv.Value, childSeen, hops); t != nil {
					return t
				}
			}
		}
	}
	return nil
}

// taintOfParam classifies a function parameter by classifying the
// corresponding argument at every module-visible call site. A parameter
// with no module callers (an exported API boundary) is clean: the CLI
// layers feed it flag values.
func (s *seedflowPass) taintOfParam(fn *types.Func, idx int, hops int) *seedTaint {
	key := seedParamKey{fn: fn, idx: idx}
	if t, ok := s.paramMemo[key]; ok {
		return t
	}
	if s.paramBusy[key] || hops > maxSeedHops {
		return nil
	}
	s.paramBusy[key] = true
	defer delete(s.paramBusy, key)
	var taint *seedTaint
	for _, site := range s.ix.calls[fn] {
		if idx >= len(site.call.Args) {
			continue // variadic or mismatched call shape: skip
		}
		if t := s.taintOf(site.pkg, site.caller, site.call.Args[idx], make(map[types.Object]bool), hops+1); t != nil {
			pos := site.pkg.Fset.Position(site.call.Pos())
			taint = &seedTaint{what: t.what, via: pos.String()}
			break
		}
	}
	s.paramMemo[key] = taint
	return taint
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// paramIndex returns v's position in fn's flattened parameter list.
func paramIndex(p *Package, fn *ast.FuncDecl, v *types.Var) (int, bool) {
	if fn.Type.Params == nil {
		return 0, false
	}
	idx := 0
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if p.Info.Defs[name] == v {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// assignmentsTo collects the right-hand sides assigned to obj anywhere
// in fn's body (both := and =, including parallel assignment).
func assignmentsTo(p *Package, fn *ast.FuncDecl, obj types.Object) []ast.Expr {
	var out []ast.Expr
	if fn.Body == nil {
		return nil
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lobj := p.Info.Defs[id]
				if lobj == nil {
					lobj = p.Info.Uses[id]
				}
				if lobj != obj {
					continue
				}
				if len(st.Rhs) == len(st.Lhs) {
					out = append(out, st.Rhs[i])
				} else if len(st.Rhs) == 1 {
					out = append(out, st.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if p.Info.Defs[name] == obj && i < len(st.Values) {
					out = append(out, st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// compositeLitOf unwraps &T{...} and T{...} to the literal.
func compositeLitOf(e ast.Expr) *ast.CompositeLit {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return x
	case *ast.UnaryExpr:
		if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
			return lit
		}
	}
	return nil
}
