package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module: the
// parsed files, the go/types object graph, and the expression/identifier
// resolution tables the analyzers consult. Test files (_test.go) are
// deliberately not loaded — every invariant reprolint enforces is about
// production code, and several analyzers (floateq, ctxhygiene) exempt
// tests by definition.
type Package struct {
	// ImportPath is the package's import path ("repro/internal/mc").
	// Fixture packages are loaded under a caller-chosen path so that
	// path-scoped analyzers exercise the same matching logic as on the
	// real module.
	ImportPath string
	// Dir is the directory the files were parsed from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	imports []string // intra-run import paths, for topo ordering
}

// Loader parses and type-checks packages with a shared FileSet and a
// shared stdlib importer, so repeated LoadDir calls (the fixture driver)
// amortise the cost of type-checking the standard library from source.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // by import path, for intra-module imports
}

// NewLoader returns a loader backed by the pure-source stdlib importer.
// Cgo is disabled on the build context so that packages like net resolve
// to their pure-Go fallbacks — reprolint must run without invoking cgo.
func NewLoader() *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*Package),
	}
}

// Import implements types.Importer: intra-run packages come from the
// loader's cache (LoadModule type-checks in dependency order, so they are
// complete by the time an importer sees them); everything else is
// delegated to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// ImportFrom implements types.ImporterFrom for the type-checker.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadModule loads every non-test package under the module rooted at
// root (the directory containing go.mod), type-checking them in
// dependency order. Directories named testdata, out, or starting with
// "." or "_" are skipped, matching the go tool's conventions.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "out" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse every package directory first so the import graph is known
	// before any type-checking starts.
	var parsed []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.parseDir(dir, ip)
		if err != nil {
			return nil, err
		}
		if p != nil {
			parsed = append(parsed, p)
		}
	}

	ordered, err := topoSort(parsed, modPath)
	if err != nil {
		return nil, err
	}
	for _, p := range ordered {
		if err := l.check(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Fixture packages use this with a synthetic path
// (e.g. "repro/internal/mc") so path-scoped analyzers fire exactly as
// they would on the real package.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	p, err := l.parseDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	if err := l.check(p); err != nil {
		return nil, err
	}
	return p, nil
}

// parseDir parses the non-test .go files of dir. It returns (nil, nil)
// when the directory contains no buildable non-test Go files.
func (l *Loader) parseDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
	}
	for ip := range imports {
		p.imports = append(p.imports, ip)
	}
	sort.Strings(p.imports)
	return p, nil
}

// check type-checks a parsed package and records it in the loader cache.
func (l *Loader) check(p *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(p.ImportPath, l.fset, p.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	p.Pkg = pkg
	p.Info = info
	l.pkgs[p.ImportPath] = p
	return nil
}

// topoSort orders packages so that every intra-module import precedes
// its importer. Only edges within modPath matter; stdlib imports are
// resolved by the source importer on demand.
func topoSort(pkgs []*Package, modPath string) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var ordered []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, ip := range p.imports {
			if dep, ok := byPath[ip]; ok && (ip == modPath || strings.HasPrefix(ip, modPath+"/")) {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			mp = strings.Trim(mp, `"`)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
