package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxHygiene enforces the two halves of the repository's cancellation
// contract. First, a function that already receives a ctx must thread
// it: minting context.Background() or context.TODO() inside such a
// function detaches the work from its caller's deadline and cancel
// signal (the job service's per-job cancellation depends on the chain
// being unbroken down to chunk granularity). Second, in the long-running
// solver packages, an exported function that accepts a ctx and loops
// must actually consult it — ctx.Done()/ctx.Err() directly, or by
// passing ctx to the code it calls; accepting a ctx and ignoring it
// advertises cancellability the implementation does not deliver.
var CtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc: "flag context.Background()/TODO() inside functions that already " +
		"receive a ctx, and exported looping functions in solver packages " +
		"that accept a ctx but never consult it",
	Applies: func(p *Package) bool {
		return !strings.Contains(p.ImportPath, "/") ||
			strings.Contains(p.ImportPath, "/internal/")
	},
	Run: runCtxHygiene,
}

// loopPackages are the packages whose exported entry points run the
// long solver/estimator loops — the ones part two of the check gates.
func inLoopPackages(p *Package) bool {
	return pathIn(p, false, "mc", "gibbs", "baselines", "jobs")
}

func runCtxHygiene(p *Package, report Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxObj, ctxName := ctxParam(p, fn)
			if ctxName == "" {
				continue
			}
			if ctxName != "_" {
				reportFreshContexts(p, fn, report)
			}
			if inLoopPackages(p) && fn.Name.IsExported() && ctxObj != nil {
				reportUnconsultedCtx(p, fn, ctxObj, report)
			}
		}
	}
}

// reportFreshContexts flags every context.Background()/context.TODO()
// call in the body of a function that already has a ctx in scope.
// Function literals declared inside inherit that scope, so they are
// walked too.
func reportFreshContexts(p *Package, fn *ast.FuncDecl, report Reporter) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, _ := pkgMember(p, call.Fun, "context")
		if f, ok := obj.(*types.Func); ok && (f.Name() == "Background" || f.Name() == "TODO") {
			report(call.Pos(),
				"context.%s() inside %s, which already receives a ctx: thread the caller's ctx instead of detaching from its cancellation",
				f.Name(), fn.Name.Name)
		}
		return true
	})
}

// reportUnconsultedCtx flags an exported function that takes a ctx,
// contains a loop, and never references the ctx at all — neither
// checking Done/Err nor passing it on.
func reportUnconsultedCtx(p *Package, fn *ast.FuncDecl, ctxObj *types.Var, report Reporter) {
	hasLoop := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		}
		return !hasLoop
	})
	if !hasLoop {
		return
	}
	if !usesObject(p, fn.Body, ctxObj) {
		report(fn.Pos(),
			"exported %s accepts a ctx and loops but never consults it; check ctx.Err()/ctx.Done() in the loop or pass ctx to the work it dispatches",
			fn.Name.Name)
	}
}
