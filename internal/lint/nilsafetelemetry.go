package lint

import (
	"go/ast"
	"go/token"
)

// NilSafeTelemetry enforces the telemetry package's core contract: a nil
// *Registry — and every handle derived from one — turns all recording
// into no-ops, so instrumented hot paths pay one nil check when
// telemetry is disabled and zero allocations. That only holds if every
// exported method on every pointer-receiver type begins with a
// nil-receiver guard; one unguarded method is a latent panic on the
// disabled path that no amount of sampling-based testing reliably
// catches.
//
// The obslog package adopts the same contract for its *Logger (library
// code logs unconditionally; a nil logger is "logging off"), so the
// analyzer covers both packages. The telemetry wire types the dist
// protocol uploads (SpanSnapshot, MetricPoint, ClockSync, Profiler)
// live in telemetry and are checked by the same sweep.
var NilSafeTelemetry = &Analyzer{
	Name: "nilsafetelemetry",
	Doc: "every exported method on a telemetry or obslog pointer-receiver " +
		"type must begin with a nil-receiver guard (the zero-alloc " +
		"disabled path depends on it)",
	Applies: func(p *Package) bool {
		if p.Pkg == nil {
			return false
		}
		name := p.Pkg.Name()
		return name == "telemetry" || name == "obslog"
	},
	Run: runNilSafeTelemetry,
}

func runNilSafeTelemetry(p *Package, report Reporter) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv := fn.Recv.List[0]
			if _, ok := recv.Type.(*ast.StarExpr); !ok {
				continue // value receiver: a nil pointer can't reach it
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // receiver unused; nothing to dereference
			}
			name := recv.Names[0].Name
			if !beginsWithNilGuard(fn.Body, name) {
				report(fn.Pos(),
					"exported method %s on pointer receiver *%s does not begin with an `if %s == nil` guard; the nil-disabled telemetry path would panic",
					fn.Name.Name, receiverTypeName(recv.Type), name)
			}
		}
	}
}

// beginsWithNilGuard reports whether the body starts with a recognised
// nil-receiver guard:
//
//	if r == nil { return ... }       (possibly `r == nil || more`)
//	return r == nil / r != nil ...   (single-return bodies like Enabled)
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	switch first := body.List[0].(type) {
	case *ast.IfStmt:
		if first.Init != nil {
			return false
		}
		if !condGuardsNil(first.Cond, recv) {
			return false
		}
		// The guarded branch must leave the method.
		if n := len(first.Body.List); n > 0 {
			_, ok := first.Body.List[n-1].(*ast.ReturnStmt)
			return ok
		}
		return false
	case *ast.ReturnStmt:
		// A one-liner whose result is derived from the nil comparison
		// itself (e.g. `return r != nil`).
		if len(body.List) != 1 {
			return false
		}
		for _, res := range first.Results {
			if exprComparesNil(res, recv) {
				return true
			}
		}
		return false
	}
	return false
}

// condGuardsNil accepts `recv == nil` and `recv == nil || <anything>`:
// in both, a nil receiver is guaranteed to take the branch.
func condGuardsNil(cond ast.Expr, recv string) bool {
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condGuardsNil(e.X, recv)
		}
		return e.Op == token.EQL && isRecvNilComparison(e, recv)
	case *ast.ParenExpr:
		return condGuardsNil(e.X, recv)
	}
	return false
}

// exprComparesNil reports whether expr contains `recv == nil` or
// `recv != nil`.
func exprComparesNil(expr ast.Expr, recv string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok &&
			(be.Op == token.EQL || be.Op == token.NEQ) && isRecvNilComparison(be, recv) {
			found = true
		}
		return !found
	})
	return found
}

// isRecvNilComparison reports whether the binary expression compares the
// named receiver against nil (either operand order).
func isRecvNilComparison(be *ast.BinaryExpr, recv string) bool {
	return (isIdent(be.X, recv) && isIdent(be.Y, "nil")) ||
		(isIdent(be.X, "nil") && isIdent(be.Y, recv))
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// receiverTypeName extracts T from *T (handling generics' *T[P]).
func receiverTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return "?"
}
