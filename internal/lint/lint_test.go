package lint_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixtureLoader is shared across fixture subtests so the stdlib source
// importer's cache is paid for once.
var fixtureLoader = lint.NewLoader()

// fixtureCases maps each golden fixture package to the synthetic import
// path it is loaded under and the analyzer it exercises. The ignore
// fixture reuses floateq as the finding source for the directive
// machinery.
var fixtureCases = []struct {
	dir      string
	path     string
	analyzer *lint.Analyzer
}{
	{"globalrand", "repro/internal/mc", lint.GlobalRand},
	{"maporder", "repro/internal/gibbs", lint.MapOrder},
	{"ctxhygiene", "repro/internal/jobs", lint.CtxHygiene},
	{"nilsafetelemetry", "repro/internal/telemetry", lint.NilSafeTelemetry},
	{"floateq", "repro/internal/sram", lint.FloatEq},
	{"ignore", "repro/internal/sram", lint.FloatEq},
	{"seedflow", "repro/internal/model", lint.Seedflow},
	{"lockguard", "repro/internal/dist", lint.LockGuard},
	{"goroutinelife", "repro/internal/serve", lint.GoroutineLife},
	{"wirestable", "repro/internal/telwire", lint.WireStable},
}

// TestFixtures runs each analyzer over its golden fixture package and
// asserts the exact file:line:analyzer set of diagnostics, with every
// message matched against its want regexp.
func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			pkg, err := fixtureLoader.LoadDir(dir, tc.path)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			res := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{tc.analyzer})
			wants, err := parseWants(dir)
			if err != nil {
				t.Fatalf("parsing want annotations: %v", err)
			}
			checkDiags(t, res.Diags, wants)
		})
	}
}

// TestSeedflowCrossPackage proves the taint chase crosses package
// boundaries: the caller package feeds time.Now into the provider
// package's constructor, and the diagnostic lands at the constructor
// with the foreign call site cited. The provider must load first so
// the caller's import resolves through the loader cache.
func TestSeedflowCrossPackage(t *testing.T) {
	api, err := fixtureLoader.LoadDir(filepath.Join("testdata", "seedflowapi"), "repro/internal/surrogate")
	if err != nil {
		t.Fatalf("loading provider fixture: %v", err)
	}
	caller, err := fixtureLoader.LoadDir(filepath.Join("testdata", "seedflowcaller"), "repro/internal/distcall")
	if err != nil {
		t.Fatalf("loading caller fixture: %v", err)
	}
	res := lint.Run([]*lint.Package{api, caller}, []*lint.Analyzer{lint.Seedflow})
	if len(res.Diags) != 1 {
		t.Fatalf("diags = %d, want exactly 1:\n%v", len(res.Diags), res.Diags)
	}
	d := res.Diags[0]
	if !strings.Contains(d.File, "seedflowapi") {
		t.Errorf("finding reported in %s; want the provider package (seedflowapi)", d.File)
	}
	for _, needle := range []string{"the wall clock (time.Now)", "tainted via the call at", "seedflowcaller"} {
		if !strings.Contains(d.Message, needle) {
			t.Errorf("message %q missing %q", d.Message, needle)
		}
	}
}

// TestAnnotationCandidates exercises the -fix-annotations helper: the
// lockguard fixture's tracker struct has two mutexes (ambiguous guard,
// skipped); a single-mutex struct in the real module must surface its
// unannotated mutex-adjacent fields.
func TestAnnotationCandidates(t *testing.T) {
	pkg, err := fixtureLoader.LoadDir(filepath.Join("testdata", "ctxhygiene"), "repro/internal/jobs")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	// The ctxhygiene fixture has no mutexes at all: no candidates.
	if got := lint.AnnotationCandidates([]*lint.Package{pkg}); len(got) != 0 {
		t.Errorf("candidates in mutex-free fixture: %v", got)
	}
	lg, err := fixtureLoader.LoadDir(filepath.Join("testdata", "lockguard"), "repro/internal/dist")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	// tracker has two mutexes: ambiguous, so still no candidates.
	if got := lint.AnnotationCandidates([]*lint.Package{lg}); len(got) != 0 {
		t.Errorf("candidates despite ambiguous guards: %v", got)
	}
}

// TestSuppressedCarryReasons asserts that suppressed findings surface
// the directive's justification, so the JSON audit trail is complete.
func TestSuppressedCarryReasons(t *testing.T) {
	pkg, err := fixtureLoader.LoadDir(filepath.Join("testdata", "ignore"), "repro/internal/sram")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	res := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.FloatEq})
	if len(res.Suppressed) != 3 {
		t.Fatalf("suppressed = %d findings, want 3 (trailing, above, list)", len(res.Suppressed))
	}
	for _, d := range res.Suppressed {
		if !d.Suppressed || d.Reason == "" {
			t.Errorf("%s: suppressed finding lost its reason: %+v", d.String(), d)
		}
		if !strings.HasPrefix(d.Reason, "fixture:") {
			t.Errorf("%s: reason %q does not carry the directive text", d.String(), d.Reason)
		}
	}
}

// TestRealModuleClean is the gate the CI lint job re-runs through the
// CLI: the full analyzer registry over the real module must be clean.
func TestRealModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module discovery is broken", len(pkgs))
	}
	res := lint.Run(pkgs, lint.Analyzers())
	for _, d := range res.Diags {
		t.Errorf("unexpected finding: %s", d.String())
	}
	// The suppression inventory only shrinks deliberately: if this
	// fails low, suppressions were deleted without removing the code
	// they covered (or an analyzer regressed and stopped firing).
	if len(res.Suppressed) == 0 {
		t.Error("no suppressed findings recorded; expected the audited floateq/nilsafetelemetry suppressions")
	}
}

// TestJSONRoundTrip locks the reprolint/v1 envelope shape.
func TestJSONRoundTrip(t *testing.T) {
	res := lint.Result{
		Diags: []lint.Diagnostic{{
			Analyzer: "floateq", File: "x.go", Line: 3, Col: 7, Message: "m",
		}},
		Suppressed: []lint.Diagnostic{{
			Analyzer: "maporder", File: "y.go", Line: 9, Col: 2, Message: "n",
			Suppressed: true, Reason: "because",
		}},
	}
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, res); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var rep struct {
		Schema      string            `json:"schema"`
		Count       int               `json:"count"`
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
		Suppressed  []lint.Diagnostic `json:"suppressed"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.Schema != lint.JSONSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, lint.JSONSchema)
	}
	if rep.Count != 1 || len(rep.Diagnostics) != 1 || len(rep.Suppressed) != 1 {
		t.Errorf("count/diags/suppressed = %d/%d/%d, want 1/1/1",
			rep.Count, len(rep.Diagnostics), len(rep.Suppressed))
	}
	if rep.Suppressed[0].Reason != "because" {
		t.Errorf("suppressed reason lost in round trip: %+v", rep.Suppressed[0])
	}
}

// TestEmptyJSONHasDiagnosticsArray guards the CI consumer contract: a
// clean run emits "diagnostics": [] rather than null.
func TestEmptyJSONHasDiagnosticsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, lint.Result{}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty result must serialise an empty array, got:\n%s", buf.String())
	}
}

// want is one expected diagnostic parsed from a fixture annotation.
type want struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	raw      string
}

// wantRx matches the comment tail: `want` or `want[+N]`, then one or
// more `analyzer `regexp“ pairs.
var (
	wantHeadRx = regexp.MustCompile(`//\s*want(\[([+-]?\d+)\])?\s+(.*)$`)
	wantPairRx = regexp.MustCompile("^([a-z][a-z0-9_-]*)\\s+`([^`]*)`\\s*")
)

// parseWants scans every fixture file for want annotations. The
// optional [N] offset anchors the expectation N lines away from the
// comment (trailing annotations omit it).
func parseWants(dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			m := wantHeadRx.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			offset := 0
			if m[2] != "" {
				offset, err = strconv.Atoi(m[2])
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want offset: %v", path, lineNo, err)
				}
			}
			rest := m[3]
			matched := false
			for {
				pm := wantPairRx.FindStringSubmatch(rest)
				if pm == nil {
					break
				}
				matched = true
				re, err := regexp.Compile(pm[2])
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, lineNo, pm[2], err)
				}
				abs, err := filepath.Abs(path)
				if err != nil {
					f.Close()
					return nil, err
				}
				wants = append(wants, want{
					file: abs, line: lineNo + offset,
					analyzer: pm[1], re: re, raw: pm[2],
				})
				rest = rest[len(pm[0]):]
			}
			if !matched {
				f.Close()
				return nil, fmt.Errorf("%s:%d: want annotation with no analyzer/regexp pairs", path, lineNo)
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return wants, nil
}

// checkDiags asserts a perfect bipartite match between diagnostics and
// wants: same file, same line, same analyzer, message matching the
// regexp — no extras on either side.
func checkDiags(t *testing.T, diags []lint.Diagnostic, wants []want) {
	t.Helper()
	type key struct {
		file     string
		line     int
		analyzer string
	}
	unmatched := make(map[key][]want)
	for _, w := range wants {
		k := key{w.file, w.line, w.analyzer}
		unmatched[k] = append(unmatched[k], w)
	}
	for _, d := range diags {
		abs, err := filepath.Abs(d.File)
		if err != nil {
			t.Fatalf("abs(%q): %v", d.File, err)
		}
		k := key{abs, d.Line, d.Analyzer}
		ws := unmatched[k]
		hit := -1
		for i, w := range ws {
			if w.re.MatchString(d.Message) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected diagnostic: %s", d.String())
			continue
		}
		ws = append(ws[:hit], ws[hit+1:]...)
		if len(ws) == 0 {
			delete(unmatched, k)
		} else {
			unmatched[k] = ws
		}
	}
	var missing []string
	for _, ws := range unmatched {
		for _, w := range ws {
			missing = append(missing, fmt.Sprintf("%s:%d: [%s] matching %q", w.file, w.line, w.analyzer, w.raw))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing expected diagnostic: %s", m)
	}
}
