package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestEventOrdering emits events concurrently and checks the sink's core
// contract: every line is a complete JSON object, lines never
// interleave, and the seq field matches file order exactly.
func TestEventOrdering(t *testing.T) {
	var buf strings.Builder
	r := New()
	sink := NewEventSink(&syncWriter{w: &buf})
	r.SetSink(sink)

	const workers = 4
	const perWorker = 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit("test.event", map[string]any{"worker": id, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != workers*perWorker {
		t.Fatalf("got %d lines, want %d", len(lines), workers*perWorker)
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if seq := int(obj["seq"].(float64)); seq != i {
			t.Fatalf("line %d has seq %d: seq order must match file order", i, seq)
		}
		if obj["event"] != "test.event" {
			t.Fatalf("line %d has event %v", i, obj["event"])
		}
	}
}

// syncWriter makes a strings.Builder safe for the concurrent sink test;
// it also detects torn writes (every Write must be one full line).
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(p) == 0 || p[len(p)-1] != '\n' {
		panic("torn write: event line missing trailing newline")
	}
	return s.w.Write(p)
}

// TestEventSanitize checks that NaN and ±Inf — which JSON cannot encode —
// come out as their string spellings instead of failing the marshal. The
// running relative error is +Inf until the first failure lands, so this
// path is hit by every real run.
func TestEventSanitize(t *testing.T) {
	var buf strings.Builder
	sink := NewEventSink(&buf)
	sink.Emit("e", map[string]any{
		"inf":    math.Inf(1),
		"neginf": math.Inf(-1),
		"nan":    math.NaN(),
		"series": []float64{1, math.Inf(1)},
		"plain":  2.5,
	})
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if obj["inf"] != "+Inf" || obj["neginf"] != "-Inf" || obj["nan"] != "NaN" {
		t.Fatalf("non-finite floats not sanitized: %v", obj)
	}
	series := obj["series"].([]any)
	if series[0].(float64) != 1 || series[1] != "+Inf" {
		t.Fatalf("series not sanitized: %v", series)
	}
	if obj["plain"].(float64) != 2.5 {
		t.Fatalf("finite value altered: %v", obj["plain"])
	}
}

// TestEmitWithoutSink checks that a registry with no sink swallows
// events (instrumented code never branches on sink presence).
func TestEmitWithoutSink(t *testing.T) {
	r := New()
	r.Emit("no.sink", map[string]any{"k": 1}) // must not panic
}
