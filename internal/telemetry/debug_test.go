package telemetry

import (
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
)

// TestServeDebug boots the debug listener on an ephemeral port and
// checks the live surface: /metrics serves the Prometheus exposition of
// the current registry state, and the pprof index answers.
func TestServeDebug(t *testing.T) {
	r := New()
	r.Scope("spice").Counter("solves_total").Add(3)

	d, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer d.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "repro_spice_solves_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	// Live updates must show on the next scrape.
	r.Scope("spice").Counter("solves_total").Add(2)
	if m := get("/metrics"); !strings.Contains(m, "repro_spice_solves_total 5") {
		t.Fatalf("/metrics not live:\n%s", m)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "profile") {
		t.Fatalf("pprof index unexpected:\n%s", idx)
	}
	if root := get("/"); !strings.Contains(root, "/metrics") {
		t.Fatalf("index page unexpected:\n%s", root)
	}
}

// TestStartCLI checks the flag-level bundle: no flags → inert nil
// registry; a JSONL path → events land in the file after Close.
func TestStartCLI(t *testing.T) {
	c, err := StartCLI("", "", "", false)
	if err != nil {
		t.Fatalf("inert StartCLI: %v", err)
	}
	if c.Registry != nil {
		t.Fatal("inert CLI created a registry")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("inert Close: %v", err)
	}

	path := t.TempDir() + "/events.jsonl"
	c, err = StartCLI(path, "", "", false)
	if err != nil {
		t.Fatalf("StartCLI(%s): %v", path, err)
	}
	if c.Registry == nil {
		t.Fatal("JSONL StartCLI returned nil registry")
	}
	c.Registry.Emit("cli.test", map[string]any{"k": 1})
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if !strings.Contains(string(data), `"event":"cli.test"`) {
		t.Fatalf("event log missing event:\n%s", data)
	}
}
