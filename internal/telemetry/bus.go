package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Bus is the live half of the observability plane: an in-process
// publish/subscribe fan-out of the same structured events the JSONL
// EventSink serializes, built for mid-run consumers — SSE streams, the
// health watchdog, the -watch terminal renderer — that need events while
// the run is still going, not after it ends.
//
// Design constraints, in order:
//
//   - Publishers never block. Every subscriber owns a bounded queue; a
//     full queue drops the event for that subscriber and counts the drop
//     (per subscriber and bus-wide). A slow SSE client can therefore
//     never stall an estimation chunk loop.
//   - The last ringSize events are retained in a ring buffer, which is
//     both the Last-Event-ID resume source for reconnecting stream
//     clients (SubscribeFrom) and the flight recorder dumped on job
//     failure, watchdog alert or SIGQUIT (WriteJSONL).
//   - Everything is nil-safe: a nil *Bus no-ops every method, so the
//     disabled path costs one nil check and zero allocations, matching
//     the rest of the package.
//
// Events are marshaled to their JSONL line once, at publish time, and
// the same bytes are shared by every subscriber and the ring, so the
// per-subscriber cost is one bounded-channel send.
type Bus struct {
	start time.Time

	// parent, when set, receives a copy of every published event with
	// tags merged into the fields — how per-job buses feed the server's
	// global stream with a "job" label attached.
	parent *Bus
	tags   map[string]any

	published atomic.Int64
	dropped   atomic.Int64

	mu     sync.Mutex
	seq    int64                      // guarded by mu
	ring   []Event                    // capacity fixed at NewBus; oldest overwritten first; guarded by mu
	next   int                        // ring write cursor; guarded by mu
	filled bool                       // ring wrapped at least once; guarded by mu
	subs   map[*Subscription]struct{} // guarded by mu
	closed bool                       // guarded by mu
}

// Event is one published bus event. Fields is the publisher's map —
// subscribers must treat it as read-only — and Data is the event's
// JSONL line (envelope keys seq, t_ms, event merged with Fields),
// marshaled once and shared by every consumer.
type Event struct {
	// Seq is the bus-local monotonically increasing sequence number
	// (0-based) — the SSE event id and the resume cursor.
	Seq int64
	// TMS is wall milliseconds since the bus was created.
	TMS int64
	// Name is the dot-namespaced event name ("progress", "health.…").
	Name string
	// Fields holds the publisher's payload (read-only; may be nil).
	Fields map[string]any
	// Data is the marshaled JSON object, without a trailing newline.
	Data []byte
}

// defaultRing is the ring capacity when NewBus is given a non-positive
// size: enough to hold the full tail of a failing run (every chunk
// progress event of a 100k-sample stage-2 at ChunkSize 256 is ~400
// events) without holding megabytes per job.
const defaultRing = 256

// NewBus returns an empty bus retaining the last ringSize events
// (ringSize <= 0 selects a 256-event ring).
func NewBus(ringSize int) *Bus {
	if ringSize <= 0 {
		ringSize = defaultRing
	}
	return &Bus{
		start: time.Now(),
		ring:  make([]Event, ringSize),
		subs:  make(map[*Subscription]struct{}),
	}
}

// WithParent chains b to a parent bus: every event published on b is
// republished on parent with the given tags merged into the fields
// (publisher fields win on key collision). Returns b for chaining;
// nil-safe on both sides.
func (b *Bus) WithParent(parent *Bus, tags map[string]any) *Bus {
	if b == nil {
		return nil
	}
	b.parent = parent
	b.tags = tags
	return b
}

// Publish fans one event out to every subscriber, appends it to the
// ring, and forwards it (with tags) to the parent bus. Fields must not
// be mutated after the call. Marshal failures drop the event — the bus,
// like the sink, must never fail a run.
func (b *Bus) Publish(event string, fields map[string]any) {
	if b == nil {
		return
	}
	var payload map[string]any
	if b.parent != nil || b.tags != nil {
		// Merge tags now so the local and forwarded payloads agree.
		payload = make(map[string]any, len(fields)+len(b.tags))
		for k, v := range b.tags {
			payload[k] = v
		}
		for k, v := range fields {
			payload[k] = v
		}
	} else {
		payload = fields
	}
	b.publish(event, payload)
	if b.parent != nil {
		b.parent.publish(event, payload)
	}
}

// publish delivers one event locally (no parent forwarding).
func (b *Bus) publish(event string, fields map[string]any) {
	if b == nil {
		return
	}
	obj := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		obj[k] = sanitizeJSON(v)
	}
	tms := time.Since(b.start).Milliseconds()
	obj["t_ms"] = tms
	obj["event"] = event

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	seq := b.seq
	obj["seq"] = seq
	data, err := json.Marshal(obj)
	if err != nil {
		return
	}
	b.seq++
	ev := Event{Seq: seq, TMS: tms, Name: event, Fields: fields, Data: data}
	b.ring[b.next] = ev
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
		b.filled = true
	}
	b.published.Add(1)
	for sub := range b.subs {
		sub.deliver(ev, &b.dropped)
	}
}

// Subscribe registers a new subscriber with a bounded queue of the given
// capacity (<= 0 selects 64). Events published after the call are
// delivered in order; when the queue is full events are dropped and
// counted, never blocking the publisher. Close the subscription when
// done — an abandoned subscription keeps dropping (cheaply) forever.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if b == nil {
		return closedSubscription()
	}
	return b.SubscribeFrom(b.Seq()-1, buffer)
}

// closedSubscription is what subscribing to a nil or closed bus yields:
// already closed, so consumers need no special case.
func closedSubscription() *Subscription {
	sub := &Subscription{ch: make(chan Event), closed: true}
	close(sub.ch)
	return sub
}

// SubscribeFrom is Subscribe plus ring replay: retained events with
// Seq > afterSeq are queued before live delivery begins, with no gap or
// duplication in between (registration and replay happen under one
// lock). afterSeq < 0 replays the whole ring; to skip history pass the
// bus's current Seq. A reconnecting SSE client passes its Last-Event-ID
// here. On a nil or closed bus the subscription is returned already
// closed (its channel is closed), so consumers need no special case.
func (b *Bus) SubscribeFrom(afterSeq int64, buffer int) *Subscription {
	if b == nil {
		return closedSubscription()
	}
	if buffer <= 0 {
		buffer = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return closedSubscription()
	}
	sub := &Subscription{ch: make(chan Event, buffer)}
	sub.bus = b
	for _, ev := range b.ringLocked() {
		if ev.Seq > afterSeq {
			sub.deliver(ev, &b.dropped)
		}
	}
	b.subs[sub] = struct{}{}
	return sub
}

// ringLocked returns the retained events oldest-first. Callers hold b.mu.
func (b *Bus) ringLocked() []Event {
	if !b.filled {
		return b.ring[:b.next]
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Ring returns a snapshot of the retained events, oldest first — the
// flight-recorder view of the run's last moments.
func (b *Bus) Ring() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.ring))
	return append(out, b.ringLocked()...)
}

// WriteJSONL dumps the retained events as JSON Lines, oldest first —
// the flight-recorder dump written on job failure, watchdog alert or
// SIGQUIT. Each line is the event exactly as published (bus-local seq,
// t_ms, event name, fields).
func (b *Bus) WriteJSONL(w io.Writer) error {
	if b == nil {
		return nil
	}
	for _, ev := range b.Ring() {
		if _, err := w.Write(append(ev.Data, '\n')); err != nil {
			return fmt.Errorf("telemetry: flight dump: %w", err)
		}
	}
	return nil
}

// Seq returns the next sequence number to be assigned — equivalently,
// the number of events ever published (0 on nil).
func (b *Bus) Seq() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// OldestSeq returns the sequence number of the oldest event the ring
// still retains, or the bus's next sequence number when the ring is
// empty (0 on nil). An SSE resume asking for events after a seq below
// OldestSeq()-1 has a replay gap: events between the requested cursor
// and the ring's tail were evicted and cannot be delivered.
func (b *Bus) OldestSeq() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.filled {
		if b.next == 0 {
			return b.seq
		}
		return b.ring[0].Seq
	}
	return b.ring[b.next].Seq
}

// Dropped returns the total events dropped across all subscribers since
// the bus was created (0 on nil).
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Subscribers returns the number of live subscriptions (0 on nil) —
// what the SSE leak tests assert against.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close closes every subscription (their channels drain then close) and
// rejects further publishes. The ring is retained: flight-recorder
// dumps still work after Close. Idempotent and nil-safe.
func (b *Bus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		sub.closed = true
		close(sub.ch)
	}
	b.subs = make(map[*Subscription]struct{})
}

// Subscription is one subscriber's bounded event queue. Receive from
// Events; the channel closes when the subscription (or the bus) is
// closed. All methods are nil-safe.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	closed  bool // protected by the owning bus.mu (true only while unregistered)
	dropped atomic.Int64
}

// deliver enqueues ev without blocking, counting a drop on overflow.
// Callers hold the bus lock, which is what makes Close safe: the channel
// can only be closed under the same lock.
func (s *Subscription) deliver(ev Event, busDropped *atomic.Int64) {
	select {
	case s.ch <- ev:
	default:
		s.dropped.Add(1)
		busDropped.Add(1)
	}
}

// Events returns the receive channel. It closes after Close (or bus
// Close); events already queued are still delivered first. Nil-safe: a
// nil subscription returns a closed channel.
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		ch := make(chan Event)
		close(ch)
		return ch
	}
	return s.ch
}

// Dropped returns how many events this subscription missed because its
// queue was full (0 on nil). SSE handlers surface it to the client as a
// stream.dropped meta event.
func (s *Subscription) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscription and closes its channel. Safe to
// call concurrently with publishes and idempotent; nil-safe.
func (s *Subscription) Close() {
	if s == nil || s.bus == nil {
		return
	}
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(b.subs, s)
	close(s.ch)
}
