package telemetry

import (
	"testing"
	"time"
)

// TestTraceGraft checks the cross-process stitch: remote snapshot ids
// are remapped into the local trace's id space, in-batch parent links
// survive the remap, orphans attach to the graft parent, Running is
// cleared, and every span is clamped into the enclosing window.
func TestTraceGraft(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(nil, "dist")
	leaseSpan := root.Child("lease")
	time.Sleep(3 * time.Millisecond) // give the lease window real width
	leaseSpan.End()
	root.End()
	lo, hi := leaseSpan.StartUS(), leaseSpan.EndUS()
	if hi <= lo {
		t.Fatalf("lease window [%d,%d] has no width", lo, hi)
	}

	remote := []SpanSnapshot{
		// A worker root still marked running at snapshot time.
		{ID: 7, Name: "worker.lease", StartUS: lo, DurUS: hi - lo, Running: true,
			Attrs: map[string]any{"worker": "w0"}},
		// Its child, linked by the remote trace's ids.
		{ID: 8, ParentID: 7, Name: "stage1", StartUS: lo + 1, DurUS: 1},
		// An orphan (parent not in the batch) with a badly shifted clock:
		// starts before the window and overruns its end.
		{ID: 9, ParentID: 1234, Name: "orphan", StartUS: lo - 500000, DurUS: (hi - lo) + 900000},
	}
	if n := tr.Graft(leaseSpan, remote, lo, hi); n != 3 {
		t.Fatalf("Graft returned %d, want 3", n)
	}

	byName := map[string]SpanSnapshot{}
	localIDs := map[int64]bool{root.ID(): true, leaseSpan.ID(): true}
	for _, s := range tr.Snapshot() {
		byName[s.Name] = s
	}
	workerSpan, stage, orphan := byName["worker.lease"], byName["stage1"], byName["orphan"]

	if workerSpan.ID == 7 || localIDs[workerSpan.ID] {
		t.Fatalf("grafted id %d not remapped into a fresh local id", workerSpan.ID)
	}
	if workerSpan.ParentID != leaseSpan.ID() {
		t.Fatalf("worker.lease parent = %d, want lease span %d", workerSpan.ParentID, leaseSpan.ID())
	}
	if stage.ParentID != workerSpan.ID {
		t.Fatalf("stage1 parent = %d, want remapped worker.lease %d", stage.ParentID, workerSpan.ID)
	}
	if orphan.ParentID != leaseSpan.ID() {
		t.Fatalf("orphan parent = %d, want graft parent %d", orphan.ParentID, leaseSpan.ID())
	}
	if workerSpan.Running {
		t.Fatal("grafted span still marked running")
	}
	if got, _ := workerSpan.Attrs["worker"].(string); got != "w0" {
		t.Fatalf("grafted attrs lost: %v", workerSpan.Attrs)
	}
	for _, s := range []SpanSnapshot{workerSpan, stage, orphan} {
		if s.StartUS < lo || s.StartUS+s.DurUS > hi {
			t.Fatalf("span %s [%d,%d] escapes lease window [%d,%d]",
				s.Name, s.StartUS, s.StartUS+s.DurUS, lo, hi)
		}
		if s.DurUS < 1 {
			t.Fatalf("span %s duration %d, want >= 1", s.Name, s.DurUS)
		}
	}
}

// TestTraceGraftUnclamped checks the maxEndUS<=minStartUS escape hatch
// (no clamping) and root attachment when parent is nil.
func TestTraceGraftUnclamped(t *testing.T) {
	tr := NewTrace()
	n := tr.Graft(nil, []SpanSnapshot{{ID: 3, Name: "free", StartUS: -10, DurUS: 5}}, 0, 0)
	if n != 1 {
		t.Fatalf("Graft returned %d, want 1", n)
	}
	snaps := tr.Snapshot()
	if len(snaps) != 1 || snaps[0].ParentID != 0 {
		t.Fatalf("snapshot = %+v, want one root span", snaps)
	}
	if snaps[0].StartUS != -10 {
		t.Fatalf("unclamped StartUS = %d, want -10 untouched", snaps[0].StartUS)
	}

	var nilTrace *Trace
	if nilTrace.Graft(nil, snaps, 0, 0) != 0 {
		t.Fatal("nil trace grafted spans")
	}
	if tr.Graft(nil, nil, 0, 0) != 0 {
		t.Fatal("empty batch grafted spans")
	}
}
