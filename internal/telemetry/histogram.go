package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free fixed-bucket histogram: per-bucket atomic
// counts plus atomically accumulated count/sum/min/max. Observations
// never take a lock, so concurrent workers (the evaluation pool, the
// SPICE solver under it) record without contention. All methods are
// nil-safe.
type Histogram struct {
	// bounds are the bucket upper bounds (sorted); counts has
	// len(bounds)+1 entries, the last being the +Inf overflow bucket.
	bounds []float64
	counts []atomic.Int64

	count            atomic.Int64
	sumBits          atomic.Uint64
	minBits, maxBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v (le is inclusive, matching
	// Prometheus); all bounds smaller means the overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min and Max return the observed extremes (±Inf before any
// observation).
func (h *Histogram) Min() float64 {
	if h == nil {
		return math.Inf(1)
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observed value (−Inf before any observation).
func (h *Histogram) Max() float64 {
	if h == nil {
		return math.Inf(-1)
	}
	return math.Float64frombits(h.maxBits.Load())
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below UpperBound but above the previous bound.
type BucketCount struct {
	UpperBound float64 `json:"le"` // +Inf for the overflow bucket
	Count      int64   `json:"count"`
}

// Buckets returns a consistent-enough snapshot of the per-bucket counts
// (individual loads are atomic; the set is not, which is fine for
// monitoring).
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	out := make([]BucketCount, len(h.counts))
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out[i] = BucketCount{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return out
}

// Quantile returns the approximate q-quantile (0 < q < 1) of the
// observed values, reconstructed from the bucket counts: the target rank
// is located in the cumulative bucket distribution and interpolated
// linearly inside its bucket. The first bucket's lower edge is the
// observed minimum and the overflow bucket spans [last bound, observed
// max], so the approximation degrades gracefully at the extremes instead
// of inventing mass. Returns NaN with no observations (or on nil).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	// rank is the (fractional) number of observations at or below the
	// quantile point.
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// Interpolation edges: the bucket's bounds, tightened by the
		// observed min/max (every observation lies inside [min, max], so
		// the tighter edge is always valid). For a single observation or
		// an all-equal stream the edges collapse and the quantile comes
		// back exact instead of smeared across the bucket.
		lo := h.Min()
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := h.Max()
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Max()
}

// Start returns a running Stopwatch that will Observe the elapsed
// seconds into h. On a nil histogram the stopwatch is inert and Stop
// does nothing — callers need no separate enabled check.
func (h *Histogram) Start() Stopwatch {
	if h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: h, t0: time.Now()}
}

// Stopwatch measures a wall-time span on the monotonic clock
// (time.Now/time.Since carry a monotonic reading) and records it into a
// histogram in seconds. The zero value is inert.
type Stopwatch struct {
	h  *Histogram
	t0 time.Time
}

// Stop records the elapsed seconds and returns them (0 when inert).
func (s Stopwatch) Stop() float64 {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0).Seconds()
	s.h.Observe(d)
	return d
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start: start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds starting at
// start with the given step.
func LinearBuckets(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// atomicAddFloat adds v to the float64 stored in bits via CAS.
func atomicAddFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// atomicMinFloat lowers the float64 stored in bits to v if v is smaller.
func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises the float64 stored in bits to v if v is larger.
func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
